package bashsim_test

// One benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its artifact through the experiment harness at
// Quick scale and logs the rows/series; `go run ./cmd/bashsim -scale full`
// produces the EXPERIMENTS.md configurations. The benchmark metric is the
// wall time to regenerate the artifact; custom metrics report simulated
// throughput where meaningful.

import (
	"testing"

	bashsim "repro"
)

// BenchmarkKernelScheduleStep measures the event kernel's hot path: 64
// schedule/step pairs per iteration against a warm queue. The 4-ary
// concrete-typed heap runs this with zero steady-state allocations
// (container/heap boxing previously cost 2 allocs per event).
func BenchmarkKernelScheduleStep(b *testing.B) {
	k := bashsim.NewKernel()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			k.Schedule(bashsim.Time(j%7), fn)
		}
		for j := 0; j < 64; j++ {
			k.Step()
		}
	}
}

// BenchmarkRunnerSweep measures the orchestration layer itself: a 32-shard
// sweep of small independent event-kernel workloads per iteration, fanned
// out and folded deterministically. The per-job cost is dominated by the
// simulated work, so this bounds the runner's dispatch+fold overhead.
func BenchmarkRunnerSweep(b *testing.B) {
	seeds := bashsim.ShardSeeds(7, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fired, err := bashsim.ParallelMap(len(seeds), bashsim.RunnerOptions{},
			func(j int) (uint64, error) {
				k := bashsim.NewKernel()
				var tick func()
				n := bashsim.Time(seeds[j] % 7)
				tick = func() {
					if k.Fired() < 512 {
						k.Schedule(1+n, tick)
					}
				}
				k.Schedule(0, tick)
				k.Drain()
				return k.Fired(), nil
			})
		if err != nil {
			b.Fatal(err)
		}
		for _, f := range fired {
			if f == 0 {
				b.Fatal("empty shard")
			}
		}
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		// Drop the cross-figure cell memo so every iteration simulates;
		// without this, iterations after the first would measure cache
		// lookups and TSV rendering instead of simulation.
		b.StopTimer()
		bashsim.ResetExperimentMemo()
		b.StartTimer()
		arts, err := bashsim.RunExperiment(id, bashsim.ExperimentOptions{Scale: bashsim.Quick})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, a := range arts {
				b.Log("\n" + a.TSV())
			}
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: performance vs. available bandwidth
// for the locking microbenchmark.
func BenchmarkFig1(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2 regenerates Figure 2: queueing delay vs. utilization of the
// closed queueing model.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3 regenerates Figure 3: the utilization counter trace.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4: the six protocol transaction
// walkthroughs.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkTable1 regenerates Table 1: protocol complexity counts.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig5 regenerates Figure 5: normalized performance vs. bandwidth.
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6: endpoint utilization vs. bandwidth.
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: utilization threshold sensitivity.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: performance per processor vs. system
// size.
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: miss latency vs. think time.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: the six workload panels at 16
// processors.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: Figure 10 with 4x broadcast cost.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: per-workload comparison at 1600
// MB/s with 4x broadcast cost.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkStability regenerates the Section 2.1 probabilistic-vs-switch
// comparison (the all-or-nothing mechanism oscillates).
func BenchmarkStability(b *testing.B) { benchExperiment(b, "stability") }

// BenchmarkAblation regenerates the design-choice ablations (static masks,
// sampling interval, policy width).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkSystemReuse measures what the pooled simulation lifecycle saves:
// one complete sweep cell (preheat, warm-up, measurement) per iteration on
// the paper's default 16-node configuration, constructing a fresh System
// each time versus leasing a re-seeded one from a SystemPool. Construction
// dominates short cells — a fresh 16-node System allocates the kernel, 32
// bandwidth channels, and per node a 16384-set cache array table, line and
// directory maps, histograms and an adaptive unit — all of which a pooled
// lease retains. Results are byte-identical either way (the determinism
// tests assert it); run with -benchmem to see the allocation gap.
func BenchmarkSystemReuse(b *testing.B) {
	const nodes = 16
	cfg := bashsim.Config{
		Protocol:     bashsim.BASH,
		Nodes:        nodes,
		BandwidthMBs: 1600,
		Seed:         11,
	}
	cell := func(sys *bashsim.System) {
		lk := bashsim.NewLockingWorkload(128*nodes, 0)
		for i, a := range lk.WarmBlocks() {
			sys.PreheatOwned(a, bashsim.NodeID(i%nodes), uint64(i)+1)
		}
		sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
		if m := sys.Measure(200, 600); m.Ops == 0 {
			b.Fatal("cell measured no operations")
		}
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cell(bashsim.NewSystem(cfg))
		}
	})
	b.Run("pooled", func(b *testing.B) {
		pool := bashsim.NewSystemPool()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sys := pool.Get(cfg)
			cell(sys)
			pool.Put(sys)
		}
	})
}

// BenchmarkSteadyStateOps measures the per-operation cost of a *warmed*
// System — the paper-sweep inner loop after the pooled lifecycle and the
// reset-aware free lists have done their work. Geometry is sized so the
// whole working set warms quickly; after warm-up every packet, message,
// line/txn record and directory entry recycles, so -benchmem reports zero
// allocations per operation for all three protocols. The NoRecycle
// sub-benchmarks run the identical simulation with the free lists disabled
// — the delta is what the recycling buys.
func BenchmarkSteadyStateOps(b *testing.B) {
	const nodes = 16
	run := func(b *testing.B, p bashsim.Protocol, noRecycle bool) {
		sys := bashsim.NewSystem(bashsim.Config{
			Protocol:     p,
			Nodes:        nodes,
			BandwidthMBs: 1600,
			Cache:        bashsim.CacheConfig{Sets: 32, Ways: 4},
			Seed:         11,
			NoRecycle:    noRecycle,
		})
		lk := bashsim.NewLockingWorkload(8*nodes, 0)
		for i, a := range lk.WarmBlocks() {
			sys.PreheatOwned(a, bashsim.NodeID(i%nodes), uint64(i)+1)
		}
		sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
		sys.Start()
		target := sys.TotalOps() + 20000 // warm free lists and map buckets
		cond := func() bool { return sys.TotalOps() >= target }
		sys.Kernel.RunUntil(cond)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target += 100
			sys.Kernel.RunUntil(cond)
		}
		b.StopTimer()
		b.ReportMetric(100, "simops/op")
	}
	for _, p := range []bashsim.Protocol{bashsim.Snooping, bashsim.Directory, bashsim.BASH} {
		b.Run(p.String(), func(b *testing.B) { run(b, p, false) })
		b.Run(p.String()+"-norecycle", func(b *testing.B) { run(b, p, true) })
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// lock-acquire transactions per wall second on a 16-node BASH system.
func BenchmarkSimulatorThroughput(b *testing.B) {
	const nodes = 16
	sys := bashsim.NewSystem(bashsim.Config{
		Protocol:     bashsim.BASH,
		Nodes:        nodes,
		BandwidthMBs: 1600,
	})
	lk := bashsim.NewLockingWorkload(128*nodes, 0)
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, bashsim.NodeID(i%nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
	sys.Start()
	b.ResetTimer()
	target := sys.TotalOps()
	for i := 0; i < b.N; i++ {
		target += 100
		sys.Kernel.RunUntil(func() bool { return sys.TotalOps() >= target })
	}
	b.StopTimer()
	b.ReportMetric(100, "txns/op")
}
