package bashsim

import (
	"repro/internal/adaptive"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/network"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/tester"
	"repro/internal/workload"
)

// System construction and measurement (internal/core).
type (
	// Config describes a simulated machine.
	Config = core.Config
	// System is a complete simulated machine.
	System = core.System
	// Node is one integrated processor/memory node.
	Node = core.Node
	// Metrics is the result of one measured run.
	Metrics = core.Metrics
	// Protocol selects a coherence protocol.
	Protocol = core.Protocol
	// Workload generates one processor's reference stream.
	Workload = core.Workload
	// Trace records message deliveries for walkthroughs.
	Trace = core.Trace
)

// Protocols.
const (
	Snooping            = core.Snooping
	Directory           = core.Directory
	BASH                = core.BASH
	BashAlwaysBroadcast = core.BashAlwaysBroadcast
	BashAlwaysUnicast   = core.BashAlwaysUnicast
	BashSwitch          = core.BashSwitch
)

// Identifiers and simulated time.
type (
	// NodeID identifies a node.
	NodeID = network.NodeID
	// Addr is a cache block address.
	Addr = cache.Addr
	// Time is simulated nanoseconds (= cycles).
	Time = sim.Time
	// Op is one processor memory operation.
	Op = coherence.Op
)

// NewSystem builds a simulated machine.
func NewSystem(cfg Config) *System { return core.NewSystem(cfg) }

// Workloads (internal/workload).
type (
	// LockingWorkload is the paper's locking microbenchmark.
	LockingWorkload = workload.Locking
	// SyntheticWorkload models one of the paper's full-system workloads.
	SyntheticWorkload = workload.Synthetic
)

// NewLockingWorkload returns the Section 4.1 microbenchmark.
func NewLockingWorkload(locks int, think Time) *LockingWorkload {
	return workload.NewLocking(locks, think)
}

// Workload constructors for the five Table 2 workloads.
var (
	OLTP      = workload.OLTP
	Apache    = workload.Apache
	SPECjbb   = workload.SPECjbb
	Slashcode = workload.Slashcode
	BarnesHut = workload.BarnesHut
)

// WorkloadByName resolves a Table 2 workload by name (nil if unknown).
func WorkloadByName(name string) *SyntheticWorkload { return workload.ByName(name) }

// Adaptive mechanism (internal/adaptive).
type (
	// AdaptiveConfig parameterizes the Section 2 mechanism.
	AdaptiveConfig = adaptive.Config
	// UtilizationCounter is the signed saturating counter of Figure 3.
	UtilizationCounter = adaptive.UtilizationCounter
	// PolicyCounter is the unsigned saturating policy counter.
	PolicyCounter = adaptive.PolicyCounter
	// LFSR is the hardware pseudo-random number generator.
	LFSR = adaptive.LFSR
)

// NewUtilizationCounter returns the Figure 3 counter for a threshold.
func NewUtilizationCounter(thresholdPercent int, limit int64) *UtilizationCounter {
	return adaptive.NewUtilizationCounter(thresholdPercent, limit)
}

// NewPolicyCounter returns a saturating policy counter of the given width.
func NewPolicyCounter(bits uint) *PolicyCounter { return adaptive.NewPolicyCounter(bits) }

// NewLFSR returns the 16-bit Galois LFSR used for request decisions.
func NewLFSR(seed uint16) *LFSR { return adaptive.NewLFSR(seed) }

// Experiments (internal/experiments): regenerate the paper's artifacts.
type (
	// ExperimentOptions selects scale and seeds.
	ExperimentOptions = experiments.Options
	// Figure is a reproduced figure.
	Figure = experiments.Figure
	// TableResult is a reproduced table.
	TableResult = experiments.TableResult
	// Renderable is any reproduced artifact.
	Renderable = experiments.Renderable
)

// Experiment scales.
const (
	Quick = experiments.Quick
	Full  = experiments.Full
)

// RunExperiment regenerates one table or figure by id ("fig1".."fig12",
// "table1", "stability", "ablation").
func RunExperiment(id string, o ExperimentOptions) ([]Renderable, error) {
	return experiments.Run(id, o)
}

// ExperimentIDs lists the available experiments.
func ExperimentIDs() []string { return experiments.IDs() }

// Random protocol tester (internal/tester).
type (
	// TesterConfig parameterizes a random protocol test.
	TesterConfig = tester.Config
	// TesterReport is the outcome.
	TesterReport = tester.Report
)

// RunTester executes one randomized protocol test (Section 3.4).
func RunTester(cfg TesterConfig) TesterReport { return tester.Run(cfg) }

// Queueing model (internal/queueing, Figure 2).
type QueueResult = queueing.Result

// QueueAnalytic solves the closed machine-repairman model exactly.
func QueueAnalytic(n int, meanThink float64) QueueResult {
	return queueing.Analytic(n, meanThink)
}

// QueueSimulate runs the same model by discrete-event simulation.
func QueueSimulate(n int, meanThink float64, completions int, seed uint64) QueueResult {
	return queueing.Simulate(n, meanThink, completions, seed)
}
