package bashsim

import (
	"context"
	"time"

	"repro/internal/adaptive"
	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/cellstore"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/queueing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/tester"
	"repro/internal/workload"
)

// System construction and measurement (internal/core).
type (
	// Config describes a simulated machine.
	Config = core.Config
	// System is a complete simulated machine.
	System = core.System
	// Node is one integrated processor/memory node.
	Node = core.Node
	// Metrics is the result of one measured run.
	Metrics = core.Metrics
	// Protocol selects a coherence protocol.
	Protocol = core.Protocol
	// Workload generates one processor's reference stream.
	Workload = core.Workload
	// Trace records message deliveries for walkthroughs.
	Trace = core.Trace
)

// Protocols.
const (
	Snooping            = core.Snooping
	Directory           = core.Directory
	BASH                = core.BASH
	BashAlwaysBroadcast = core.BashAlwaysBroadcast
	BashAlwaysUnicast   = core.BashAlwaysUnicast
	BashSwitch          = core.BashSwitch
)

// Identifiers and simulated time.
type (
	// NodeID identifies a node.
	NodeID = network.NodeID
	// Addr is a cache block address.
	Addr = cache.Addr
	// CacheConfig sizes the L2 array (Config.Cache; zero selects the
	// paper's 4 MB 4-way 64 B geometry).
	CacheConfig = cache.Config
	// Time is simulated nanoseconds (= cycles).
	Time = sim.Time
	// Op is one processor memory operation.
	Op = coherence.Op
	// Recycler bundles a System's shared hot-path free lists (packets,
	// line/txn records, directory entries); System.Recycler exposes it for
	// leak checks (Live) and diagnostics. Config.NoRecycle disables it.
	Recycler = coherence.Recycler
	// Kernel is the deterministic discrete-event scheduler: a
	// concrete-typed 4-ary heap ordered by (time, schedule-order) with
	// zero steady-state allocations per Schedule/Step and a Reset method
	// for reuse across runs.
	Kernel = sim.Kernel
)

// NewKernel returns an empty event kernel at time zero.
func NewKernel() *Kernel { return sim.NewKernel() }

// Sharded run orchestration (internal/runner): the worker-pool layer the
// experiment harness, the protocol tester, and the CLIs all schedule their
// fleets of independent simulations through. Results fold in job order, so
// serial and parallel execution produce identical output; panicking jobs
// are captured as *RunnerPanicError with their config label.
type (
	// RunnerOptions bounds workers and wires cancellation, timeouts, and
	// progress callbacks for one parallel invocation.
	RunnerOptions = runner.Options
	// RunnerPanicError reports a job that panicked, with its label, index
	// and captured stack.
	RunnerPanicError = runner.PanicError
	// ShardRange is a half-open index interval of a sharded job list.
	ShardRange = runner.Range
)

// ParallelMap runs fn(0..n-1) across a bounded worker pool, returning the
// results in job-index order regardless of completion order.
func ParallelMap[T any](n int, opt RunnerOptions, fn func(i int) (T, error)) ([]T, error) {
	return runner.Map(n, opt, fn)
}

// ParallelEach is ParallelMap without per-job results.
func ParallelEach(n int, opt RunnerOptions, fn func(i int) error) error {
	return runner.Each(n, opt, fn)
}

// ShardSeeds derives n deterministic, well-spread RNG seeds from base
// (SplitMix64), so shard i of a sweep replays identically at any worker
// count.
func ShardSeeds(base uint64, n int) []uint64 { return runner.Seeds(base, n) }

// ShardChunks splits [0, total) into at most shards near-equal ranges for
// batch-sharding job lists whose items are too cheap to dispatch singly.
func ShardChunks(total, shards int) []ShardRange { return runner.Chunks(total, shards) }

// Distributed execution (internal/dist + the runner backend seam): fan
// simulation cells across worker processes and machines with byte-identical
// results. See the "Distributed sweeps" section of the package
// documentation and `bashsim -serve` / `bashsim -worker`.
type (
	// Backend executes batches of serializable jobs: the in-process pool
	// (LocalBackend) or a distributed coordinator. ExperimentOptions.Backend
	// selects one for experiment sweeps; nil keeps the direct in-process
	// path.
	Backend = runner.Backend
	// RunnerJob is one remotely executable unit of work: a registered
	// executor kind, a content-address key, and an opaque serialized spec.
	RunnerJob = runner.Job
	// DistOptions tunes the coordinator's lease-based job protocol:
	// LeaseTTL and MaxLeaseExpiries bound dead-worker recovery, LeaseBatch
	// sets how many jobs one lease grants (with result-reply refills and
	// adaptive shrink near queue exhaustion), Secret authenticates every
	// request with a constant-time shared-secret check, CoExecute runs
	// loopback worker slots on the coordinator itself so a lone
	// coordinator still makes progress, Wire selects the transports
	// served ("" offers both the binary framed protocol and HTTP/JSON;
	// "http" disables the binary endpoint), and CacheDir opens the
	// coordinator's own cell store for the peer cell exchange (fetches are
	// served from it before relaying to an advertised holder).
	DistOptions = dist.CoordinatorOptions
	// DistCoordinator owns the job queue and lease table, serves the wire
	// protocol (binary frames over one persistent connection per worker,
	// with an HTTP/JSON fallback), and implements Backend. Serve it with
	// its Serve method so /dist/status reports socket-level byte counters.
	DistCoordinator = dist.Coordinator
	// DistWorkerOptions configures one worker process (Secret must match
	// the coordinator's; MaxBatch caps accepted batch sizes; Wire forces
	// "binary" or "http", defaulting to negotiation; CacheDir names the
	// worker's cell store and enables the peer cell exchange, whose
	// advertisement traffic AdvertBudget caps in bytes per second;
	// PeerAddr additionally serves that store to other workers directly,
	// enabling the worker-to-worker data path).
	DistWorkerOptions = dist.WorkerOptions
	// DistStats are a coordinator's lifetime dispatch counters, including
	// lease/refill round-trip counts, expired-lease reassignments, the
	// peer-cell-exchange counters (adverts, fetches, served, relayed,
	// false positives), and the direct-data-path counters (worker-reported
	// direct fetches, relay fallbacks, replica puts, owner-preferred
	// grants, and current placement-ring size).
	DistStats = dist.Stats
	// DistAuthError is the terminal error a worker returns when the
	// coordinator rejects its shared secret (HTTP 401, or an auth-failed
	// ERROR frame on the binary wire): unlike connection errors, it is
	// not retried.
	DistAuthError = dist.AuthError
)

// NewLocalBackend returns the in-process Backend: jobs run through their
// registered executors on the goroutine pool, with Map's exact semantics.
func NewLocalBackend() Backend { return runner.LocalBackend{} }

// NewDistCoordinator returns an idle distributed-sweep coordinator; mount
// its Handler on an HTTP server and pass it as ExperimentOptions.Backend.
func NewDistCoordinator(o DistOptions) *DistCoordinator { return dist.NewCoordinator(o) }

// RunDistWorker leases and executes jobs from a coordinator until ctx is
// canceled. Call RegisterDistExecutors (or the internal registrars) first so
// the worker has kinds to advertise.
func RunDistWorker(ctx context.Context, o DistWorkerOptions) error { return dist.RunWorker(ctx, o) }

// RegisterDistExecutors registers this process's executors for both
// distributed job kinds — experiment cells and tester trials — publishing
// results into the cell store under cacheDir (empty disables persistence).
// Worker processes call it at startup; a coordinator using
// DistOptions.CoExecute must call it too, since its loopback worker
// executes through the same registry.
func RegisterDistExecutors(cacheDir string) {
	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cacheDir})
	tester.RegisterTrialExecutor(cacheDir)
}

// Sweep service and observability (internal/svc + internal/obs): the
// long-lived multi-tenant layer over the distributed coordinator. A
// SweepService stays up with an empty queue, accepts named sweep
// submissions from separate processes (`bashsim -submit URL -exp fig1`,
// POST /dist/submit, or a SUBMIT frame on the binary wire), runs them
// FIFO within priority over one shared worker fleet, and serves results,
// a Prometheus-style /metrics endpoint, and a no-JavaScript live status
// page. See the "Observability" and "Service mode" sections of the
// package documentation and `bashsim -serve` without `-exp`.
type (
	// MetricsRegistry is the dependency-free metrics registry behind GET
	// /metrics: Counter/Gauge/Histogram instruments backed by atomics
	// (safe to update from simulation hot paths), read-through
	// CounterFunc/GaugeFunc/Collect registrations for sampling existing
	// counters at scrape time, and an Expose method emitting the
	// Prometheus text exposition format. (Named MetricsRegistry because
	// Metrics — a simulation run's measured results — was here first.)
	MetricsRegistry = obs.Registry
	// ServeOptions configures a sweep service: the embedded coordinator
	// (DistOptions), the base experiment options every sweep inherits
	// (scale and priority come from each submission), MaxActive
	// concurrently running sweeps (default 2; queued sweeps start
	// highest-priority-first as slots free), an optional shared
	// MetricsRegistry, and a log sink.
	ServeOptions = svc.Options
	// SweepService is the long-lived coordinator service. It owns one
	// DistCoordinator, schedules each accepted sweep as one prioritized
	// run over the shared fleet, and serves the HTTP surface: /dist/*
	// (the wire protocol plus submissions), /sweeps and /sweeps/{id}
	// (JSON), /sweeps/{id}/result.tsv (bytes identical to `bashsim -exp`
	// output), /metrics, and the live status page at /. Drain stops
	// admissions and grants, lets leased batches finish or expire, and
	// persists nothing by itself — WriteStatus captures the final
	// snapshot.
	SweepService = svc.Service
	// SweepServiceStatus is one sweep's externally visible lifecycle
	// record, as served by GET /sweeps.
	SweepServiceStatus = svc.SweepStatus
	// SweepSubmitRequest names one sweep to submit: an experiment id (or
	// "all"), a scale, and a priority (higher preempts queue order, not
	// running sweeps).
	SweepSubmitRequest = dist.SubmitRequest
	// SweepSubmitResponse is the service's acceptance decision: the
	// assigned sweep id and queue position, or a rejection reason.
	SweepSubmitResponse = dist.SubmitResponse
)

// NewSweepService returns a sweep service ready to Serve; its embedded
// coordinator, registry and HTTP handler are reachable via accessors.
func NewSweepService(o ServeOptions) *SweepService { return svc.New(o) }

// NewMetricsRegistry returns an empty metrics registry. SweepService
// creates its own when ServeOptions.Registry is nil; create one explicitly
// to add process-specific instruments next to the built-in bashsim_*
// families.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// SubmitSweep submits one named sweep to the running sweep service at
// o.Coordinator (a base URL such as "http://host:8497") and returns the
// service's acceptance decision. It uses the same transport negotiation
// and authentication as RunDistWorker (`bashsim -submit URL` from the
// command line).
func SubmitSweep(ctx context.Context, o DistWorkerOptions, req SweepSubmitRequest) (SweepSubmitResponse, error) {
	return dist.SubmitSweep(ctx, o, req)
}

// CellStoreGC evicts stale-format and older-than-maxAge entries from the
// cell store under dir (`bashsim -cache-gc` from the command line).
func CellStoreGC(dir string, maxAge time.Duration) (cellstore.GCResult, error) {
	st, err := cellstore.Open(dir)
	if err != nil {
		return cellstore.GCResult{}, err
	}
	return st.GC(maxAge)
}

// LoadCellStoreManifest reads the per-experiment cache-effectiveness
// manifest persisted alongside the store under dir.
func LoadCellStoreManifest(dir string) *cellstore.Manifest { return cellstore.LoadManifest(dir) }

// NewSystem builds a simulated machine.
func NewSystem(cfg Config) *System { return core.NewSystem(cfg) }

// SystemPool recycles Systems across runs (the pooled simulation
// lifecycle). Systems are bucketed by structural configuration — protocol,
// node count, cache geometry, retry buffer, predictor and checker/watchdog
// presence — and a leased System is re-seeded via System.Reset, which
// guarantees results byte-identical to fresh construction while skipping
// its allocation cost (see BenchmarkSystemReuse). Per-run parameters
// (bandwidth, broadcast cost, seeds, jitter, adaptive tuning, watchdog
// interval) may vary freely within a bucket. Safe for concurrent use; each
// leased System remains single-threaded. The experiment harness and the
// protocol tester lease every simulation through pools of this type.
type SystemPool = core.Pool

// NewSystemPool returns an empty System pool.
func NewSystemPool() *SystemPool { return core.NewPool() }

// Workloads (internal/workload).
type (
	// LockingWorkload is the paper's locking microbenchmark.
	LockingWorkload = workload.Locking
	// SyntheticWorkload models one of the paper's full-system workloads.
	SyntheticWorkload = workload.Synthetic
	// MigratoryWorkload is the migratory-sharing microbenchmark from the
	// destination-set-prediction follow-up work.
	MigratoryWorkload = workload.Migratory
	// WorkloadGenerator is any registered workload: a reference stream
	// plus its warm-start block list.
	WorkloadGenerator = workload.Generator
)

// NewLockingWorkload returns the Section 4.1 microbenchmark.
func NewLockingWorkload(locks int, think Time) *LockingWorkload {
	return workload.NewLocking(locks, think)
}

// Workload constructors for the five Table 2 workloads and the
// sharing-pattern microbenchmarks (migratory and producer-consumer).
var (
	OLTP                = workload.OLTP
	Apache              = workload.Apache
	SPECjbb             = workload.SPECjbb
	Slashcode           = workload.Slashcode
	BarnesHut           = workload.BarnesHut
	NewMigratory        = workload.NewMigratory
	NewProducerConsumer = workload.NewProducerConsumer
)

// WorkloadByName resolves a registered workload by name (nil if unknown).
func WorkloadByName(name string) WorkloadGenerator { return workload.ByName(name) }

// WorkloadNames lists the registered named workloads.
func WorkloadNames() []string { return workload.Names() }

// Adaptive mechanism (internal/adaptive).
type (
	// AdaptiveConfig parameterizes the Section 2 mechanism.
	AdaptiveConfig = adaptive.Config
	// UtilizationCounter is the signed saturating counter of Figure 3.
	UtilizationCounter = adaptive.UtilizationCounter
	// PolicyCounter is the unsigned saturating policy counter.
	PolicyCounter = adaptive.PolicyCounter
	// LFSR is the hardware pseudo-random number generator.
	LFSR = adaptive.LFSR
)

// NewUtilizationCounter returns the Figure 3 counter for a threshold.
func NewUtilizationCounter(thresholdPercent int, limit int64) *UtilizationCounter {
	return adaptive.NewUtilizationCounter(thresholdPercent, limit)
}

// NewPolicyCounter returns a saturating policy counter of the given width.
func NewPolicyCounter(bits uint) *PolicyCounter { return adaptive.NewPolicyCounter(bits) }

// NewLFSR returns the 16-bit Galois LFSR used for request decisions.
func NewLFSR(seed uint16) *LFSR { return adaptive.NewLFSR(seed) }

// Experiments (internal/experiments): regenerate the paper's artifacts.
type (
	// ExperimentOptions selects scale and seeds.
	ExperimentOptions = experiments.Options
	// Figure is a reproduced figure.
	Figure = experiments.Figure
	// TableResult is a reproduced table.
	TableResult = experiments.TableResult
	// Renderable is any reproduced artifact.
	Renderable = experiments.Renderable
)

// Experiment scales.
const (
	Quick = experiments.Quick
	Full  = experiments.Full
)

// RunExperiment regenerates one table or figure by id ("fig1".."fig12",
// "table1", "stability", "ablation").
func RunExperiment(id string, o ExperimentOptions) ([]Renderable, error) {
	return experiments.Run(id, o)
}

// ExperimentIDs lists the available experiments.
func ExperimentIDs() []string { return experiments.IDs() }

// ResetExperimentMemo drops the process-wide cache of simulated experiment
// cells. Identical (protocol, bandwidth, seed) cells shared across figures
// are normally simulated once per process; reset when repeated invocations
// must re-simulate (benchmarks, timing comparisons).
func ResetExperimentMemo() { experiments.ResetMemo() }

// ParseSeeds parses a comma-separated seed list ("11,23,37") as accepted
// by the -seeds flag, with descriptive errors for non-integers.
func ParseSeeds(s string) ([]uint64, error) { return experiments.ParseSeeds(s) }

// ValidateSeeds rejects empty and duplicate-bearing seed lists with
// descriptive errors.
func ValidateSeeds(seeds []uint64) error { return experiments.ValidateSeeds(seeds) }

// Campaigns (internal/campaign): the long-running, resumable full-scale
// figure campaign with CoV-targeted seed escalation (`bashsim -campaign`
// from the command line; see doc.go, section Campaigns).
type (
	// ExperimentScale selects per-cell operation counts and default seed
	// lists (Quick or Full).
	ExperimentScale = experiments.Scale
	// SimulationCell describes one simulation point for
	// RunSimulationCells: the public mirror of the harness's internal cell
	// spec — equal cells are guaranteed equal Metrics.
	SimulationCell = experiments.Cell
	// CampaignOptions configures one campaign: harness options, grid,
	// CoV target, seed cap, checkpoint path, priority, and log sink.
	CampaignOptions = campaign.Options
	// Campaign is one configured campaign run: New, optionally
	// RegisterMetrics, then Run once.
	Campaign = campaign.Campaign
	// CampaignGrid is a named, ordered set of panels — the campaign's
	// unit of definition and of checkpoint compatibility.
	CampaignGrid = campaign.Grid
	// CampaignPanel is one declarative sub-grid: all three protocols over
	// its Xs with every other cell coordinate fixed.
	CampaignPanel = campaign.Panel
	// CampaignResult summarizes a completed campaign.
	CampaignResult = campaign.Result
	// CampaignPanelResult is one finished panel's artifact.
	CampaignPanelResult = campaign.PanelResult
)

// NewCampaign validates the grid and knobs and prepares the deterministic
// per-campaign seed sequence.
func NewCampaign(o CampaignOptions) (*Campaign, error) { return campaign.New(o) }

// DefaultCampaignGrid returns the built-in campaign grid for a scale: the
// paper's full evaluation (dense log-spaced bandwidth grids, scaling to
// 256 nodes, both broadcast costs across every workload) for Full, a
// small same-shaped grid for Quick.
func DefaultCampaignGrid(scale ExperimentScale) *CampaignGrid {
	return campaign.DefaultGrid(scale)
}

// RunSimulationCells evaluates one simulation cell per entry and returns
// their metrics in input order, serving repeats from the memo and the
// persistent cell store and dispatching misses through o.Backend when one
// is set. Unlike RunExperiment it reports failure as an error rather than
// a panic, so long-running callers can checkpoint and retry.
func RunSimulationCells(o ExperimentOptions, cells []SimulationCell) ([]Metrics, error) {
	return experiments.RunCells(o, cells)
}

// Random protocol tester (internal/tester).
type (
	// TesterConfig parameterizes a random protocol test.
	TesterConfig = tester.Config
	// TesterReport is the outcome.
	TesterReport = tester.Report
)

// RunTester executes one randomized protocol test (Section 3.4).
func RunTester(cfg TesterConfig) TesterReport { return tester.Run(cfg) }

// RunTesterMany shards one tester config across seeds (trial i runs with
// Seed=seeds[i]) over the orchestration layer, returning reports in seed
// order regardless of worker count.
func RunTesterMany(cfg TesterConfig, seeds []uint64, opt RunnerOptions) ([]TesterReport, error) {
	return tester.RunMany(cfg, seeds, opt)
}

// RunTesterConfigs executes one randomized trial per config in parallel,
// folding reports back in config order.
func RunTesterConfigs(cfgs []TesterConfig, opt RunnerOptions) ([]TesterReport, error) {
	return tester.RunConfigs(cfgs, opt)
}

// RunTesterConfigsOn executes the trials through an arbitrary Backend (nil
// selects the in-process cached path), serving and publishing reports via
// the store under cacheDir; reports fold in config order either way.
func RunTesterConfigsOn(backend Backend, cfgs []TesterConfig, opt RunnerOptions, cacheDir string) ([]TesterReport, error) {
	return tester.RunConfigsOn(backend, cfgs, opt, cacheDir)
}

// Queueing model (internal/queueing, Figure 2).
type QueueResult = queueing.Result

// QueueAnalytic solves the closed machine-repairman model exactly.
func QueueAnalytic(n int, meanThink float64) QueueResult {
	return queueing.Analytic(n, meanThink)
}

// QueueSimulate runs the same model by discrete-event simulation.
func QueueSimulate(n int, meanThink float64, completions int, seed uint64) QueueResult {
	return queueing.Simulate(n, meanThink, completions, seed)
}
