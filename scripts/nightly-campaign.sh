#!/bin/sh
# nightly-campaign.sh: the scheduled figure-campaign run (the nightly CI
# job). Runs the full quick-grid campaign through the distributed path — a
# -serve coordinator whose -co-execute slots do all the work (the topology a
# user starts with before pointing real workers at the port) — then proves
# the checkpoint is honest
# by re-running the identical command against the same state and caches:
# the resume must simulate zero new cells and reproduce every TSV byte for
# byte. A drifting checkpoint (or a non-deterministic cell) fails the job.
#
# The figure TSVs, the checkpoint, and BENCH_campaign.json (cells/sec,
# seeds, escalations from the reference run) land in
# $NIGHTLY_CAMPAIGN_ARTIFACTS (default ./nightly-campaign-artifacts) for
# the workflow to upload.
set -eu

WORK="$(mktemp -d)"
ART="${NIGHTLY_CAMPAIGN_ARTIFACTS:-nightly-campaign-artifacts}"
trap 'rm -rf "$WORK"' EXIT INT TERM

# summary_field LOG NAME: value of NAME=... in the campaign summary line.
summary_field() {
    sed -n 's/.*campaign summary:.* '"$2"'=\([0-9.]*\).*/\1/p' "$1" | head -n 1
}

echo "==> building bashsim"
go build -o "$WORK/bashsim" ./cmd/bashsim

echo "==> nightly quick campaign (co-executing coordinator)"
"$WORK/bashsim" -campaign -scale quick -serve 127.0.0.1:0 -co-execute 2 \
    -campaign-state "$WORK/state.json" -cache-dir "$WORK/cache" \
    -out "$WORK/figures.tsv" 2>"$WORK/campaign.log"
cat "$WORK/campaign.log"
SIMS="$(summary_field "$WORK/campaign.log" simulated)"
SEEDS="$(summary_field "$WORK/campaign.log" seeds)"
CELLS="$(summary_field "$WORK/campaign.log" cells)"
[ -n "$SIMS" ] && [ "$SIMS" -gt 0 ] || {
    echo "FAIL: nightly campaign simulated nothing" >&2
    exit 1
}

echo "==> checkpoint-resume consistency: identical command must replay, not recompute"
"$WORK/bashsim" -campaign -scale quick -serve 127.0.0.1:0 -co-execute 2 \
    -campaign-state "$WORK/state.json" -cache-dir "$WORK/cache" \
    -out "$WORK/figures-resume.tsv" 2>"$WORK/resume.log"
cat "$WORK/resume.log"
RESUME_SIMS="$(summary_field "$WORK/resume.log" simulated)"
if [ "${RESUME_SIMS:-0}" -ne 0 ]; then
    echo "FAIL: resume against a complete checkpoint simulated $RESUME_SIMS cells, want 0" >&2
    exit 1
fi
cmp "$WORK/figures.tsv" "$WORK/figures-resume.tsv" || {
    echo "FAIL: checkpoint-resume TSV differs from the reference run" >&2
    exit 1
}
echo "OK: resume simulated 0 cells; TSVs byte-identical"

mkdir -p "$ART"
cp "$WORK/figures.tsv" "$ART/campaign-figures.tsv"
cp "$WORK/state.json" "$ART/campaign-state.json"
ELAPSED="$(summary_field "$WORK/campaign.log" elapsed)"
RATE="$(summary_field "$WORK/campaign.log" cells_per_sec)"
ESCALATED="$(summary_field "$WORK/campaign.log" escalated)"
cat >"$ART/BENCH_campaign.json" <<EOF
{
  "bench": "campaign_quick_nightly",
  "cells": $CELLS,
  "seeds": $SEEDS,
  "escalated": $ESCALATED,
  "simulated": $SIMS,
  "elapsed_s": $ELAPSED,
  "cells_per_sec": $RATE
}
EOF
cat "$ART/BENCH_campaign.json"

echo "PASS: nightly campaign"
