#!/bin/sh
# campaign-smoke.sh: end-to-end resumable-campaign smoke test (the CI job).
#
# Builds bashsim once, then exercises the campaign runner's whole contract
# at the process level:
#
#   * an uninterrupted quick campaign is the reference: its TSV file and its
#     summary-line counters (simulated cells, seeds) are captured;
#   * a second campaign against fresh caches is SIGTERMed as soon as its
#     first panel checkpoints done; it must exit non-zero and print the
#     resume hint naming the checkpoint;
#   * re-running the identical command must complete, and the two runs'
#     simulated-cell counts must sum exactly to the reference's — the
#     resumed campaign re-simulated nothing;
#   * the resumed campaign's TSV file must be byte-identical to the
#     reference (finished panels replay from the checkpoint, unfinished
#     cells come back from the cell store);
#   * a campaign with an unreachable CoV target (-cov-target -1) must run
#     strictly more seeds than one with a loose target (-cov-target 99) —
#     the convergence knob provably controls per-cell seed counts.
#
# The reference summary is archived as BENCH_campaign.json (cells/sec,
# seeds, escalations) and the checkpoint + TSVs are copied to
# $CAMPAIGN_SMOKE_ARTIFACTS (default ./campaign-smoke-artifacts) for CI.
set -eu

WORK="$(mktemp -d)"
ART="${CAMPAIGN_SMOKE_ARTIFACTS:-campaign-smoke-artifacts}"

PID=""
cleanup() {
    [ -z "$PID" ] || kill "$PID" 2>/dev/null || true
    [ -z "$PID" ] || wait "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# summary_field LOG NAME: value of NAME=... in the campaign summary line.
summary_field() {
    sed -n 's/.*campaign summary:.* '"$2"'=\([0-9.]*\).*/\1/p' "$1" | head -n 1
}

echo "==> building bashsim"
go build -o "$WORK/bashsim" ./cmd/bashsim

echo "==> uninterrupted reference campaign"
"$WORK/bashsim" -campaign -scale quick -parallel 2 \
    -campaign-state "$WORK/ref-state.json" -cache-dir "$WORK/ref-cache" \
    -out "$WORK/ref.tsv" 2>"$WORK/ref.log"
cat "$WORK/ref.log"
REF_SIMS="$(summary_field "$WORK/ref.log" simulated)"
REF_SEEDS="$(summary_field "$WORK/ref.log" seeds)"
[ -n "$REF_SIMS" ] && [ "$REF_SIMS" -gt 0 ] || {
    echo "FAIL: reference campaign simulated nothing" >&2; exit 1; }

echo "==> campaign to be SIGTERMed after its first panel (serial, fresh caches)"
"$WORK/bashsim" -campaign -scale quick -parallel 1 \
    -campaign-state "$WORK/state.json" -cache-dir "$WORK/cache" \
    -out "$WORK/interrupted.tsv" 2>"$WORK/interrupted.log" &
PID=$!
KILLED=0
# Deadline-based poll (not iteration-counted): a slow runner whose greps
# each take a while still gets the full window before we declare the
# campaign finished too fast to interrupt.
DEADLINE=$(($(date +%s) + 60))
while [ "$(date +%s)" -le "$DEADLINE" ]; do
    if grep -q "done:" "$WORK/interrupted.log" 2>/dev/null; then
        kill -TERM "$PID"
        KILLED=1
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        break
    fi
    sleep 0.01
done
[ "$KILLED" = 1 ] || { echo "FAIL: campaign finished before it could be interrupted" >&2; exit 1; }
if wait "$PID"; then
    echo "FAIL: SIGTERMed campaign exited zero" >&2; exit 1
fi
PID=""
cat "$WORK/interrupted.log"
grep -q "re-run the same command to resume" "$WORK/interrupted.log" || {
    echo "FAIL: interrupted campaign printed no resume hint" >&2; exit 1; }
KILLED_SIMS="$(sed -n 's/.*simulated \([0-9]*\) cells this run.*/\1/p' "$WORK/interrupted.log" | head -n 1)"
echo "==> interrupted after $KILLED_SIMS of $REF_SIMS simulations"

echo "==> resuming the identical command"
"$WORK/bashsim" -campaign -scale quick -parallel 1 \
    -campaign-state "$WORK/state.json" -cache-dir "$WORK/cache" \
    -out "$WORK/resumed.tsv" 2>"$WORK/resumed.log"
cat "$WORK/resumed.log"
grep -q "replayed from checkpoint" "$WORK/resumed.log" || {
    echo "FAIL: resumed campaign replayed no panel from the checkpoint" >&2; exit 1; }
RESUME_SIMS="$(summary_field "$WORK/resumed.log" simulated)"
if [ "$((KILLED_SIMS + RESUME_SIMS))" -ne "$REF_SIMS" ]; then
    echo "FAIL: interrupted ($KILLED_SIMS) + resumed ($RESUME_SIMS) simulations != reference ($REF_SIMS): the resume re-simulated completed cells" >&2
    exit 1
fi
cmp "$WORK/ref.tsv" "$WORK/resumed.tsv" || {
    echo "FAIL: resumed campaign TSV differs from the uninterrupted reference" >&2; exit 1; }
echo "==> resume simulated $RESUME_SIMS cells, none repeated; TSVs byte-identical"

echo "==> CoV target controls seed counts (loose vs unreachable target)"
"$WORK/bashsim" -campaign -scale quick -parallel 2 -cov-target 99 \
    -campaign-state "$WORK/loose-state.json" -cache-dir "$WORK/cov-cache" \
    -out /dev/null 2>"$WORK/loose.log"
"$WORK/bashsim" -campaign -scale quick -parallel 2 -cov-target -1 -max-seeds 4 \
    -campaign-state "$WORK/strict-state.json" -cache-dir "$WORK/cov-cache" \
    -out /dev/null 2>"$WORK/strict.log"
LOOSE_SEEDS="$(summary_field "$WORK/loose.log" seeds)"
STRICT_SEEDS="$(summary_field "$WORK/strict.log" seeds)"
if [ "$LOOSE_SEEDS" -ge "$STRICT_SEEDS" ]; then
    echo "FAIL: loose target ran $LOOSE_SEEDS seeds, unreachable target ran $STRICT_SEEDS" >&2
    exit 1
fi
echo "==> loose target ran $LOOSE_SEEDS seeds, unreachable target $STRICT_SEEDS"

mkdir -p "$ART"
cp "$WORK/ref-state.json" "$ART/campaign-state.json"
cp "$WORK/ref.tsv" "$ART/campaign-figures.tsv"
ELAPSED="$(summary_field "$WORK/ref.log" elapsed)"
RATE="$(summary_field "$WORK/ref.log" cells_per_sec)"
ESCALATED="$(summary_field "$WORK/ref.log" escalated)"
CELLS="$(summary_field "$WORK/ref.log" cells)"
cat >"$ART/BENCH_campaign.json" <<EOF
{
  "bench": "campaign_quick",
  "cells": $CELLS,
  "seeds": $REF_SEEDS,
  "escalated": $ESCALATED,
  "simulated": $REF_SIMS,
  "elapsed_s": $ELAPSED,
  "cells_per_sec": $RATE,
  "interrupted_sims": $KILLED_SIMS,
  "resumed_sims": $RESUME_SIMS
}
EOF
cat "$ART/BENCH_campaign.json"

echo "PASS: campaign smoke"
