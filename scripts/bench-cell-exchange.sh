#!/bin/sh
# bench-cell-exchange.sh: run BenchmarkCellFetchVsSimulate (download one
# published 16-node cell over HTTP + fail-closed decode + raw install, vs
# re-simulating the same cell) and convert the output into a small JSON
# artifact, so the exchange's headline speedup is trackable per commit.
#
# Usage: bench-cell-exchange.sh [output.json]  (default BENCH_cell_exchange.json)
#
# It also asserts the tentpole claim so a regression fails the CI step
# instead of silently shipping: fetching must be at least 10x faster than
# simulating the cell.
set -eu

OUT="${1:-BENCH_cell_exchange.json}"
COUNT="${BENCH_EXCHANGE_ITERS:-30x}"
TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT INT TERM

go test -run '^$' -bench BenchmarkCellFetchVsSimulate -benchtime "$COUNT" ./internal/experiments/ | tee "$TXT"

awk -v out="$OUT" '
    / ns\/op/ {
        split($1, parts, "/")
        mode = parts[length(parts)]
        sub(/-[0-9]+$/, "", mode)
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op") ns[mode] = $(i - 1)
        }
    }
    END {
        if (!("fetch" in ns) || !("simulate" in ns)) {
            print "FAIL: benchmark output missing fetch or simulate results" > "/dev/stderr"
            exit 1
        }
        printf "{\n" > out
        printf "  \"fetch\": {\"ns_per_op\": %s},\n", ns["fetch"] > out
        printf "  \"simulate\": {\"ns_per_op\": %s},\n", ns["simulate"] > out
        printf "  \"speedup\": %.1f\n", ns["simulate"] / ns["fetch"] > out
        printf "}\n" > out
        if (ns["fetch"] * 10 > ns["simulate"] + 0) {
            printf "FAIL: fetch %s ns/op vs simulate %s ns/op (want >= 10x speedup)\n", ns["fetch"], ns["simulate"] > "/dev/stderr"
            exit 1
        }
        printf "OK: fetch %s ns/op vs simulate %s ns/op (%.1fx)\n", ns["fetch"], ns["simulate"], ns["simulate"] / ns["fetch"]
    }
' "$TXT"
echo "wrote $OUT"
