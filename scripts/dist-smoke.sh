#!/bin/sh
# dist-smoke.sh: end-to-end distributed-sweep smoke test (the CI job).
#
# Builds bashsim once, runs a small sweep serially, then re-runs it through
# a coordinator with two separate worker processes over the job protocol,
# and asserts the TSVs are byte-identical. Then kills the workers and
# re-runs the coordinator against the populated cell store: the sweep must
# complete from published cells alone — zero workers, zero simulations —
# and still match byte for byte.
#
# The same binary must serve every role: cell cache keys embed the binary
# fingerprint, so a rebuilt binary deliberately misses the old store.
set -eu

PORT="${DIST_SMOKE_PORT:-8497}"
WORK="$(mktemp -d)"
trap 'kill $W1 $W2 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "==> building bashsim"
go build -o "$WORK/bashsim" ./cmd/bashsim

echo "==> serial reference sweep"
"$WORK/bashsim" -exp fig1 -parallel 1 -no-cache -out "$WORK/serial.tsv"

echo "==> starting two workers"
"$WORK/bashsim" -worker "http://127.0.0.1:$PORT" -cache-dir "$WORK/cache" >"$WORK/w1.log" 2>&1 &
W1=$!
"$WORK/bashsim" -worker "http://127.0.0.1:$PORT" -cache-dir "$WORK/cache" >"$WORK/w2.log" 2>&1 &
W2=$!

echo "==> distributed sweep (coordinator + 2 workers)"
"$WORK/bashsim" -exp fig1 -serve "127.0.0.1:$PORT" -cache-dir "$WORK/cache" \
    -timeout 120s -out "$WORK/dist.tsv" 2>"$WORK/serve.log"
grep '^dist:' "$WORK/serve.log" || true
cmp "$WORK/serial.tsv" "$WORK/dist.tsv"
echo "OK: distributed TSV is byte-identical to serial"

echo "==> killing workers; resuming from the shared cell store"
kill $W1 $W2
wait $W1 2>/dev/null || true
wait $W2 2>/dev/null || true
"$WORK/bashsim" -exp fig1 -serve "127.0.0.1:$((PORT + 1))" -cache-dir "$WORK/cache" \
    -timeout 60s -out "$WORK/resume.tsv" 2>"$WORK/resume.log"
cmp "$WORK/serial.tsv" "$WORK/resume.tsv"
grep -q ' 0 cells simulated' "$WORK/resume.log"
echo "OK: resume completed from the store with zero simulations and no workers"

echo "==> cache-gc on the populated store"
"$WORK/bashsim" -cache-gc -cache-dir "$WORK/cache"
echo "dist smoke passed"
