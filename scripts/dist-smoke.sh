#!/bin/sh
# dist-smoke.sh: end-to-end distributed-sweep smoke test (the CI job).
#
# Builds bashsim once, runs a small sweep serially, then re-runs it through
# the hardened distributed path — a shared-secret coordinator with batched
# leases (-lease-batch 4) and one co-execution slot, plus two separate
# single-slot worker processes over the job protocol — and asserts:
#
#   * a worker started with the WRONG secret exits non-zero with nothing
#     published to its cell store;
#   * the authed sweep's TSV is byte-identical to the serial one;
#   * batching collapsed protocol round-trips: the coordinator's final
#     /dist/status shows at least 4x fewer leases than completed cells;
#   * the workers negotiated the binary framed transport (frames_in > 0 in
#     the final status).
#
# Then a paired byte measurement: the same sweep twice against fresh
# caches with co-execution off (every cell crosses the wire), once with
# binary-transport workers and once with -wire http workers. Both must
# complete the same cell count and match the serial TSV, and the binary
# run's coordinator-side socket bytes must be at most 1/3 of the HTTP
# run's.
#
# Then a peer-cell-exchange phase: a warm holder-only worker (populated
# store, no executable kinds) plus a cold worker against a coordinator with
# a fresh cache. The cold worker must complete the sweep by fetching
# published cells through the exchange — "simulated 0 cells" in its exit
# line, at least half the sweep fetched — with the TSV still byte-identical
# and the advertisement bytes under the -advert-budget cap.
#
# Then the same topology with the holder serving its store on -peer-addr:
# the cold worker must warm up entirely over direct worker-to-worker
# fetches (fetch_direct > 0, fetch_relayed == 0, "simulated 0 cells"), the
# TSV stays byte-identical, and the coordinator's socket bytes must not
# exceed the relayed phase's — the regression gate archived as
# BENCH_peer_fetch.json.
#
# Then kills the workers and re-runs the coordinator against the populated
# cell store: the sweep must complete from published cells alone — zero
# workers, zero co-execution, zero simulations — and still match byte for
# byte.
#
# Then a service-mode phase: a long-lived `bashsim -serve` (no -exp) takes
# two concurrent `bashsim -submit` sweeps from separate processes; a
# mid-run /metrics scrape must show bashsim_leases_total moving and the
# peer-exchange families exposed; both /sweeps/{id}/result.tsv downloads
# must be byte-identical to serial runs; and SIGTERM must drain — exit 0,
# "draining" logged, the final status JSON persisted with completed > 0.
#
# The coordinator status JSONs, the final service /metrics scrape, and the
# cell store's manifest.json are copied to $DIST_SMOKE_ARTIFACTS (default
# ./dist-smoke-artifacts) for CI to upload.
#
# The same binary must serve every role: cell cache keys embed the binary
# fingerprint, so a rebuilt binary deliberately misses the old store.
set -eu

PORT="${DIST_SMOKE_PORT:-8497}"
SECRET="dist-smoke-$$"
WORK="$(mktemp -d)"
ART="${DIST_SMOKE_ARTIFACTS:-dist-smoke-artifacts}"

# Kill every background worker we spawned (the whole group, not just the
# ones a happy path would reach) even when an assertion aborts the script
# mid-way; before this trap, a failed `cmp` leaked two polling workers.
PIDS=""
cleanup() {
    [ -z "$PIDS" ] || kill $PIDS 2>/dev/null || true
    [ -z "$PIDS" ] || wait $PIDS 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

# status_field FILE NAME: first (top-level) occurrence of a numeric field.
status_field() {
    sed -n 's/.*"'"$2"'": *\([0-9][0-9]*\).*/\1/p' "$1" | head -n 1
}

# wait_until SECS DESC CMD...: poll CMD (output silenced) every 0.1s until
# it succeeds or SECS of wall clock elapse. Deadline-based rather than
# iteration-counted, so a slow CI runner whose probes each take hundreds of
# milliseconds still gets the full window instead of flaking early.
wait_until() {
    wu_deadline=$(($(date +%s) + $1))
    wu_desc="$2"
    shift 2
    until "$@" >/dev/null 2>&1; do
        if [ "$(date +%s)" -gt "$wu_deadline" ]; then
            echo "FAIL: timed out waiting for $wu_desc" >&2
            return 1
        fi
        sleep 0.1
    done
}

# proc_gone PID: true once the process no longer exists.
proc_gone() {
    ! kill -0 "$1" 2>/dev/null
}

echo "==> building bashsim"
go build -o "$WORK/bashsim" ./cmd/bashsim

echo "==> serial reference sweep"
"$WORK/bashsim" -exp fig1 -parallel 1 -no-cache -out "$WORK/serial.tsv"

echo "==> starting two authed workers and one wrong-secret worker"
"$WORK/bashsim" -worker "http://127.0.0.1:$PORT" -dist-secret "$SECRET" -parallel 1 \
    -poll 50ms -cache-dir "$WORK/cache" >"$WORK/w1.log" 2>&1 &
W1=$!
"$WORK/bashsim" -worker "http://127.0.0.1:$PORT" -dist-secret "$SECRET" -parallel 1 \
    -poll 50ms -cache-dir "$WORK/cache" >"$WORK/w2.log" 2>&1 &
W2=$!
"$WORK/bashsim" -worker "http://127.0.0.1:$PORT" -dist-secret "wrong-$SECRET" -parallel 1 \
    -poll 50ms -cache-dir "$WORK/badcache" >"$WORK/bad.log" 2>&1 &
BAD=$!
PIDS="$W1 $W2 $BAD"

echo "==> hardened distributed sweep (authed coordinator, -lease-batch 4, co-execution, 2 workers)"
"$WORK/bashsim" -exp fig1 -serve "127.0.0.1:$PORT" -dist-secret "$SECRET" \
    -lease-batch 4 -co-execute 1 -cache-dir "$WORK/cache" \
    -dist-status "$WORK/status.json" -timeout 120s -out "$WORK/dist.tsv" 2>"$WORK/serve.log"
grep '^dist:' "$WORK/serve.log" || true
cmp "$WORK/serial.tsv" "$WORK/dist.tsv"
echo "OK: hardened distributed TSV is byte-identical to serial"

echo "==> wrong-secret worker must have been rejected"
wait_until 30 "wrong-secret worker to exit" proc_gone "$BAD"
BADRC=0
wait "$BAD" || BADRC=$?
if [ "$BADRC" -eq 0 ]; then
    echo "FAIL: wrong-secret worker exited 0" >&2
    exit 1
fi
grep -q '401' "$WORK/bad.log"
if [ "$(find "$WORK/badcache" -type f | wc -l)" -ne 0 ]; then
    echo "FAIL: wrong-secret worker published cells:" >&2
    find "$WORK/badcache" -type f >&2
    exit 1
fi
echo "OK: wrong-secret worker exited $BADRC with no cells published"

echo "==> batching must collapse lease round-trips (>= 4x fewer leases than cells)"
leases="$(sed -n 's/.*"leases": *\([0-9][0-9]*\).*/\1/p' "$WORK/status.json")"
completed="$(sed -n 's/.*"completed": *\([0-9][0-9]*\).*/\1/p' "$WORK/status.json")"
[ -n "$leases" ] && [ -n "$completed" ] && [ "$completed" -gt 0 ]
if [ "$completed" -lt $((4 * leases)) ]; then
    echo "FAIL: $leases leases for $completed cells (want >= 4x fewer)" >&2
    cat "$WORK/status.json" >&2
    exit 1
fi
echo "OK: $leases leases for $completed cells"

echo "==> workers must have negotiated the binary framed transport"
frames="$(sed -n 's/.*"frames_in": *\([0-9][0-9]*\).*/\1/p' "$WORK/status.json" | head -n 1)"
if [ -z "$frames" ] || [ "$frames" -eq 0 ]; then
    echo "FAIL: frames_in = ${frames:-missing}: no binary frames flowed" >&2
    cat "$WORK/status.json" >&2
    exit 1
fi
echo "OK: $frames binary frames received"

echo "==> killing workers; resuming from the shared cell store"
kill $W1 $W2
wait $W1 2>/dev/null || true
wait $W2 2>/dev/null || true
PIDS=""
"$WORK/bashsim" -exp fig1 -serve "127.0.0.1:$((PORT + 1))" -dist-secret "$SECRET" \
    -co-execute 0 -cache-dir "$WORK/cache" \
    -timeout 60s -out "$WORK/resume.tsv" 2>"$WORK/resume.log"
cmp "$WORK/serial.tsv" "$WORK/resume.tsv"
grep -q ' 0 cells simulated' "$WORK/resume.log"
echo "OK: resume completed from the store with zero simulations and no workers"

echo "==> peer cell exchange: cold second worker fetches instead of simulating"
# A warm holder-only worker (its kind list matches no job, so it only
# advertises its populated store and answers relayed fetches) plus a cold
# executing worker with a fresh store. The coordinator's own cache is fresh
# too, so every cell is dispatched to the cold worker and every fetch must
# relay through the holder: the cold worker completes the sweep simulating
# nothing, and the TSV still matches serial byte for byte.
COLD_BUDGET=8192
COLD_T0="$(date +%s)"
"$WORK/bashsim" -worker "http://127.0.0.1:$((PORT + 4))" -dist-secret "$SECRET" -parallel 1 \
    -poll 250ms -wire binary -worker-kinds exchange.holder-only \
    -advert-budget "$COLD_BUDGET" -cache-dir "$WORK/cache" >"$WORK/warmworker.log" 2>&1 &
WARM=$!
"$WORK/bashsim" -worker "http://127.0.0.1:$((PORT + 4))" -dist-secret "$SECRET" -parallel 1 \
    -poll 50ms -wire binary \
    -advert-budget "$COLD_BUDGET" -cache-dir "$WORK/coldcache" >"$WORK/coldworker.log" 2>&1 &
COLD=$!
PIDS="$WARM $COLD"
"$WORK/bashsim" -exp fig1 -serve "127.0.0.1:$((PORT + 4))" -dist-secret "$SECRET" \
    -co-execute 0 -wait-workers 2 -advert-budget "$COLD_BUDGET" -cache-dir "$WORK/coordcache" \
    -dist-status "$WORK/status-cold.json" -timeout 120s -out "$WORK/dist-cold.tsv" 2>"$WORK/serve-cold.log"
COLD_T1="$(date +%s)"
kill $WARM $COLD 2>/dev/null || true
wait $WARM 2>/dev/null || true
wait $COLD 2>/dev/null || true
PIDS=""
cmp "$WORK/serial.tsv" "$WORK/dist-cold.tsv"

grep 'worker stopped' "$WORK/coldworker.log"
if ! grep -q 'simulated 0 cells' "$WORK/coldworker.log"; then
    echo "FAIL: the cold worker simulated published cells:" >&2
    cat "$WORK/coldworker.log" >&2
    exit 1
fi
fetched="$(sed -n 's/.*fetched \([0-9][0-9]*\) from peers.*/\1/p' "$WORK/coldworker.log")"
if [ -z "$fetched" ] || [ "$fetched" -lt 8 ]; then
    echo "FAIL: cold worker fetched ${fetched:-0} cells, want >= 8 (half the sweep)" >&2
    exit 1
fi
fetches="$(status_field "$WORK/status-cold.json" fetches)"
relayed="$(status_field "$WORK/status-cold.json" fetch_relayed)"
adverts="$(status_field "$WORK/status-cold.json" adverts)"
if [ "${fetches:-0}" -eq 0 ] || [ "${relayed:-0}" -eq 0 ] || [ "${adverts:-0}" -eq 0 ]; then
    echo "FAIL: exchange counters: fetches=$fetches relayed=$relayed adverts=$adverts (want all > 0)" >&2
    cat "$WORK/status-cold.json" >&2
    exit 1
fi
advert_bytes="$(status_field "$WORK/status-cold.json" advert_bytes)"
advert_cap=$((2 * COLD_BUDGET * (COLD_T1 - COLD_T0 + 5)))
if [ "${advert_bytes:-0}" -gt "$advert_cap" ]; then
    echo "FAIL: $advert_bytes advert bytes over ~$((COLD_T1 - COLD_T0))s exceeds 2 workers x ${COLD_BUDGET}B/s (cap $advert_cap)" >&2
    exit 1
fi
echo "OK: cold worker fetched $fetched cells (simulated 0), $relayed relayed of $fetches fetches, $advert_bytes advert bytes under budget"

echo "==> direct fetch: holder serves its store peer-to-peer, coordinator off the data path"
# Same topology as the relay phase above — warm holder-only worker plus a
# cold executing worker, fresh coordinator cache — but the holder now serves
# its store on -peer-addr, so grants carry its peer address and the cold
# worker fetches every published cell worker-to-worker: fetch_direct > 0,
# fetch_relayed == 0 (the coordinator never touches a cell payload), the
# TSV still byte-identical, and the coordinator's socket-byte total must
# not exceed the relayed phase's for the same sweep.
"$WORK/bashsim" -worker "http://127.0.0.1:$((PORT + 6))" -dist-secret "$SECRET" -parallel 1 \
    -poll 250ms -wire binary -worker-kinds exchange.holder-only \
    -peer-addr "127.0.0.1:$((PORT + 7))" \
    -advert-budget "$COLD_BUDGET" -cache-dir "$WORK/cache" >"$WORK/peerwarm.log" 2>&1 &
WARM=$!
"$WORK/bashsim" -worker "http://127.0.0.1:$((PORT + 6))" -dist-secret "$SECRET" -parallel 1 \
    -poll 50ms -wire binary \
    -advert-budget "$COLD_BUDGET" -cache-dir "$WORK/directcache" >"$WORK/directworker.log" 2>&1 &
DIRECT=$!
PIDS="$WARM $DIRECT"
"$WORK/bashsim" -exp fig1 -serve "127.0.0.1:$((PORT + 6))" -dist-secret "$SECRET" \
    -co-execute 0 -wait-workers 2 -advert-budget "$COLD_BUDGET" -cache-dir "$WORK/coorddirect" \
    -dist-status "$WORK/status-direct.json" -timeout 120s -out "$WORK/dist-direct.tsv" 2>"$WORK/serve-direct.log"
kill $WARM $DIRECT 2>/dev/null || true
wait $WARM 2>/dev/null || true
wait $DIRECT 2>/dev/null || true
PIDS=""
cmp "$WORK/serial.tsv" "$WORK/dist-direct.tsv"

grep 'worker stopped' "$WORK/directworker.log"
if ! grep -q 'simulated 0 cells' "$WORK/directworker.log"; then
    echo "FAIL: the cold worker simulated published cells on the direct path:" >&2
    cat "$WORK/directworker.log" >&2
    exit 1
fi
direct="$(status_field "$WORK/status-direct.json" fetch_direct)"
direct_relayed="$(status_field "$WORK/status-direct.json" fetch_relayed)"
if [ "${direct:-0}" -eq 0 ]; then
    echo "FAIL: fetch_direct=$direct: no cell went worker-to-worker" >&2
    cat "$WORK/status-direct.json" >&2
    exit 1
fi
if [ "${direct_relayed:-0}" -ne 0 ]; then
    echo "FAIL: fetch_relayed=$direct_relayed on the direct path (want 0: the holder's peer listener must serve everything)" >&2
    cat "$WORK/status-direct.json" >&2
    exit 1
fi
direct_bytes=$(($(status_field "$WORK/status-direct.json" bytes_in) + $(status_field "$WORK/status-direct.json" bytes_out)))
relay_bytes=$(($(status_field "$WORK/status-cold.json" bytes_in) + $(status_field "$WORK/status-cold.json" bytes_out)))
if [ "$direct_bytes" -le 0 ] || [ "$relay_bytes" -le 0 ]; then
    echo "FAIL: byte counters missing (direct=$direct_bytes relay=$relay_bytes)" >&2
    exit 1
fi
if [ "$direct_bytes" -gt "$relay_bytes" ]; then
    echo "FAIL: direct-fetch warm-up moved $direct_bytes coordinator bytes vs $relay_bytes relayed (want <=: the payloads must bypass the coordinator)" >&2
    exit 1
fi
echo "OK: $direct cells fetched worker-to-worker (0 relayed); coordinator moved $direct_bytes bytes vs $relay_bytes when relaying"

echo "==> cache-gc on the populated store"
"$WORK/bashsim" -cache-gc -cache-dir "$WORK/cache"

# measure_bytes: run the sweep on a fresh cache with no co-execution (every
# cell crosses the wire) through two workers on the given transport, check
# the TSV against serial, and leave the final status in status-$tag.json.
measure_bytes() {
    tag="$1"
    port="$2"
    wiremode="$3"
    "$WORK/bashsim" -worker "http://127.0.0.1:$port" -dist-secret "$SECRET" -parallel 1 \
        -poll 50ms -wire "$wiremode" -cache-dir "$WORK/cache-$tag" >"$WORK/mw1-$tag.log" 2>&1 &
    M1=$!
    "$WORK/bashsim" -worker "http://127.0.0.1:$port" -dist-secret "$SECRET" -parallel 1 \
        -poll 50ms -wire "$wiremode" -cache-dir "$WORK/cache-$tag" >"$WORK/mw2-$tag.log" 2>&1 &
    M2=$!
    PIDS="$M1 $M2"
    "$WORK/bashsim" -exp fig1 -serve "127.0.0.1:$port" -dist-secret "$SECRET" \
        -lease-batch 4 -co-execute 0 -cache-dir "$WORK/cache-$tag" \
        -dist-status "$WORK/status-$tag.json" -timeout 120s -out "$WORK/dist-$tag.tsv" 2>"$WORK/serve-$tag.log"
    kill $M1 $M2 2>/dev/null || true
    wait $M1 2>/dev/null || true
    wait $M2 2>/dev/null || true
    PIDS=""
    cmp "$WORK/serial.tsv" "$WORK/dist-$tag.tsv"
}

echo "==> paired byte measurement: binary vs http transport (fresh caches, no co-execution)"
measure_bytes bin "$((PORT + 2))" auto
measure_bytes http "$((PORT + 3))" http

bin_done="$(status_field "$WORK/status-bin.json" completed)"
http_done="$(status_field "$WORK/status-http.json" completed)"
if [ -z "$bin_done" ] || [ "$bin_done" -eq 0 ] || [ "$bin_done" -ne "$http_done" ]; then
    echo "FAIL: completed counts differ (binary=$bin_done http=$http_done)" >&2
    exit 1
fi
bin_bytes=$(($(status_field "$WORK/status-bin.json" bytes_in) + $(status_field "$WORK/status-bin.json" bytes_out)))
http_bytes=$(($(status_field "$WORK/status-http.json" bytes_in) + $(status_field "$WORK/status-http.json" bytes_out)))
if [ "$bin_bytes" -le 0 ] || [ "$http_bytes" -le 0 ]; then
    echo "FAIL: byte counters missing (binary=$bin_bytes http=$http_bytes)" >&2
    exit 1
fi
if [ $((3 * bin_bytes)) -gt "$http_bytes" ]; then
    echo "FAIL: binary transport used $bin_bytes coordinator bytes vs $http_bytes over HTTP for $bin_done cells (want <= 1/3)" >&2
    exit 1
fi
echo "OK: $bin_done cells took $bin_bytes coordinator bytes over binary vs $http_bytes over HTTP ($((http_bytes / bin_bytes))x fewer)"

echo "==> service mode: long-lived coordinator, two concurrent submits, /metrics, SIGTERM drain"
"$WORK/bashsim" -exp fig2 -parallel 1 -no-cache -out "$WORK/serial-fig2.tsv"
SVCPORT=$((PORT + 5))
"$WORK/bashsim" -serve "127.0.0.1:$SVCPORT" -dist-secret "$SECRET" \
    -co-execute 2 -cache-dir "$WORK/svccache" \
    -dist-status "$WORK/status-svc.json" >"$WORK/svc.log" 2>&1 &
SVC=$!
PIDS="$SVC"

wait_until 30 "sweep service to come up" \
    curl -sf "http://127.0.0.1:$SVCPORT/sweeps" || {
    cat "$WORK/svc.log" >&2
    exit 1
}

# Two named submissions from separate concurrent processes.
"$WORK/bashsim" -submit "http://127.0.0.1:$SVCPORT" -exp fig1 \
    -dist-secret "$SECRET" >"$WORK/submit1.log" 2>&1 &
S1=$!
"$WORK/bashsim" -submit "http://127.0.0.1:$SVCPORT" -exp fig2 \
    -dist-secret "$SECRET" >"$WORK/submit2.log" 2>&1 &
S2=$!
wait "$S1"
wait "$S2"
ID1="$(sed -n 's/^queued \(s[0-9][0-9]*\):.*/\1/p' "$WORK/submit1.log")"
ID2="$(sed -n 's/^queued \(s[0-9][0-9]*\):.*/\1/p' "$WORK/submit2.log")"
if [ -z "$ID1" ] || [ -z "$ID2" ]; then
    echo "FAIL: concurrent submissions not both accepted" >&2
    cat "$WORK/submit1.log" "$WORK/submit2.log" >&2
    exit 1
fi
echo "OK: accepted $ID1 (fig1) and $ID2 (fig2) concurrently"

# Mid-run scrape: the fleet counters must already be moving while the
# sweeps execute, and the exchange family must be exposed.
leases_moving() {
    curl -sf "http://127.0.0.1:$SVCPORT/metrics" >"$WORK/metrics-mid.txt" || return 1
    svc_leases="$(sed -n 's/^bashsim_leases_total \([0-9][0-9]*\).*/\1/p' "$WORK/metrics-mid.txt")"
    [ "${svc_leases:-0}" -gt 0 ]
}
wait_until 60 "bashsim_leases_total to move mid-run" leases_moving || {
    cat "$WORK/metrics-mid.txt" >&2
    exit 1
}
grep -q '^bashsim_fetch_false_positive_total ' "$WORK/metrics-mid.txt"
echo "OK: mid-run scrape shows bashsim_leases_total=$svc_leases and the exchange counters"

# Both results must appear and match the serial references byte for byte.
svc_result() {
    wait_until 180 "sweep $1 result" \
        curl -sf "http://127.0.0.1:$SVCPORT/sweeps/$1/result.tsv" -o "$2" || {
        curl -s "http://127.0.0.1:$SVCPORT/sweeps/$1" >&2 || true
        exit 1
    }
}
svc_result "$ID1" "$WORK/svc-fig1.tsv"
svc_result "$ID2" "$WORK/svc-fig2.tsv"
cmp "$WORK/serial.tsv" "$WORK/svc-fig1.tsv"
cmp "$WORK/serial-fig2.tsv" "$WORK/svc-fig2.tsv"
echo "OK: both service results byte-identical to serial"

"$WORK/bashsim" -status "http://127.0.0.1:$SVCPORT" -dist-secret "$SECRET" >"$WORK/svc-status.txt"
grep -qi 'workers' "$WORK/svc-status.txt"
curl -sf "http://127.0.0.1:$SVCPORT/metrics" >"$WORK/metrics-final.txt"

kill -TERM "$SVC"
wait_until 60 "service to drain after SIGTERM" proc_gone "$SVC" || {
    cat "$WORK/svc.log" >&2
    exit 1
}
SVCRC=0
wait "$SVC" || SVCRC=$?
PIDS=""
if [ "$SVCRC" -ne 0 ]; then
    echo "FAIL: service exited $SVCRC after SIGTERM drain" >&2
    cat "$WORK/svc.log" >&2
    exit 1
fi
grep -q 'draining' "$WORK/svc.log"
[ -s "$WORK/status-svc.json" ]
grep -q '"draining": *true' "$WORK/status-svc.json"
svc_completed="$(status_field "$WORK/status-svc.json" completed)"
if [ "${svc_completed:-0}" -eq 0 ]; then
    echo "FAIL: drained service persisted zero completed jobs" >&2
    cat "$WORK/status-svc.json" >&2
    exit 1
fi
echo "OK: SIGTERM drained cleanly; persisted status shows $svc_completed completed jobs"

echo "==> exporting artifacts to $ART"
mkdir -p "$ART"
cp "$WORK/status.json" "$ART/dist-status.json"
cp "$WORK/status-cold.json" "$ART/dist-status-cold-worker.json"
cp "$WORK/status-direct.json" "$ART/dist-status-direct-fetch.json"
cat >"$ART/BENCH_peer_fetch.json" <<EOF
{
  "bench": "peer_fetch_warmup",
  "cells": $completed,
  "fetch_direct": $direct,
  "direct_coordinator_bytes": $direct_bytes,
  "relay_coordinator_bytes": $relay_bytes
}
EOF
cat "$ART/BENCH_peer_fetch.json"
cp "$WORK/status-bin.json" "$ART/dist-status-binary.json"
cp "$WORK/status-http.json" "$ART/dist-status-http.json"
cp "$WORK/cache/manifest.json" "$ART/manifest.json"
cp "$WORK/status-svc.json" "$ART/service-status.json"
cp "$WORK/metrics-final.txt" "$ART/service-metrics-scrape.txt"
echo "dist smoke passed"
