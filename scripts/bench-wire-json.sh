#!/bin/sh
# bench-wire-json.sh: run BenchmarkWireRoundTrip (binary vs HTTP transport,
# one lease->execute->result cycle per op) and convert the output into a
# small JSON artifact, so the per-commit transport latency and
# coordinator-bytes-per-op are trackable without parsing bench text.
#
# Usage: bench-wire-json.sh [output.json]   (default BENCH_dist_wire.json)
#
# It also asserts the binary transport's headline win so a regression fails
# the CI step instead of silently shipping: binary must move at most half
# the coordinator bytes per op of HTTP, at equal-or-better ns/op.
set -eu

OUT="${1:-BENCH_dist_wire.json}"
COUNT="${BENCH_WIRE_ITERS:-2000x}"
TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT INT TERM

go test -run '^$' -bench BenchmarkWireRoundTrip -benchtime "$COUNT" ./internal/dist/ | tee "$TXT"

awk -v out="$OUT" '
    / ns\/op/ {
        split($1, parts, "/")
        mode = parts[length(parts)]
        sub(/-[0-9]+$/, "", mode)
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op") ns[mode] = $(i - 1)
            if ($(i) == "coordB/op") bytes[mode] = $(i - 1)
        }
    }
    END {
        if (!("binary" in ns) || !("http" in ns)) {
            print "FAIL: benchmark output missing binary or http results" > "/dev/stderr"
            exit 1
        }
        printf "{\n" > out
        printf "  \"binary\": {\"ns_per_op\": %s, \"coord_bytes_per_op\": %s},\n", ns["binary"], bytes["binary"] > out
        printf "  \"http\": {\"ns_per_op\": %s, \"coord_bytes_per_op\": %s}\n", ns["http"], bytes["http"] > out
        printf "}\n" > out
        if (bytes["binary"] * 2 > bytes["http"]) {
            printf "FAIL: binary moved %s coordinator B/op vs %s over HTTP (want <= 1/2)\n", bytes["binary"], bytes["http"] > "/dev/stderr"
            exit 1
        }
        if (ns["binary"] + 0 > ns["http"] + 0) {
            printf "FAIL: binary %s ns/op slower than HTTP %s ns/op\n", ns["binary"], ns["http"] > "/dev/stderr"
            exit 1
        }
        printf "OK: binary %s B/op, %s ns/op vs HTTP %s B/op, %s ns/op\n", bytes["binary"], ns["binary"], bytes["http"], ns["http"]
    }
' "$TXT"
echo "wrote $OUT"
