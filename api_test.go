package bashsim_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	bashsim "repro"
)

// TestPublicQuickstart exercises the facade the way examples/quickstart
// does: build a BASH system, warm it, measure, and sanity-check the
// headline numbers.
func TestPublicQuickstart(t *testing.T) {
	const nodes = 16
	sys := bashsim.NewSystem(bashsim.Config{
		Protocol:     bashsim.BASH,
		Nodes:        nodes,
		BandwidthMBs: 1600,
	})
	lk := bashsim.NewLockingWorkload(128*nodes, 0)
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, bashsim.NodeID(i%nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
	m := sys.Measure(1000, 5000)

	if m.Throughput <= 0 {
		t.Fatalf("throughput %v", m.Throughput)
	}
	// At 1600 MB/s the mechanism should be pinned near its 75% target.
	if m.Utilization < 0.65 || m.Utilization > 0.85 {
		t.Errorf("utilization %.2f, want ~0.75", m.Utilization)
	}
	if m.AvgMissLatency < 125 {
		t.Errorf("miss latency %.0f below the uncontended cache-to-cache floor", m.AvgMissLatency)
	}
	if m.BytesPerOp <= 0 {
		t.Errorf("traffic accounting broken: %v bytes/op", m.BytesPerOp)
	}
	h := sys.LatencyHistogram()
	if h.N() == 0 {
		t.Error("latency histogram empty")
	}
	if p95 := h.Percentile(0.95); p95 < m.AvgMissLatency {
		t.Errorf("p95 %.0f below mean %.0f", p95, m.AvgMissLatency)
	}
}

// TestPublicProtocolComparison is the examples/locking flow at one
// bandwidth: the protocols rank correctly at plentiful bandwidth.
func TestPublicProtocolComparison(t *testing.T) {
	run := func(p bashsim.Protocol) bashsim.Metrics {
		const nodes = 8
		sys := bashsim.NewSystem(bashsim.Config{
			Protocol:     p,
			Nodes:        nodes,
			BandwidthMBs: 8000,
		})
		lk := bashsim.NewLockingWorkload(128*nodes, 0)
		for i, a := range lk.WarmBlocks() {
			sys.PreheatOwned(a, bashsim.NodeID(i%nodes), uint64(i)+1)
		}
		sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
		return sys.Measure(500, 3000)
	}
	snoop := run(bashsim.Snooping)
	dir := run(bashsim.Directory)
	bash := run(bashsim.BASH)
	if snoop.Throughput <= dir.Throughput {
		t.Errorf("plentiful bandwidth: snooping %.4f <= directory %.4f",
			snoop.Throughput, dir.Throughput)
	}
	if bash.Throughput < 0.9*snoop.Throughput {
		t.Errorf("BASH %.4f should track snooping %.4f when bandwidth is plentiful",
			bash.Throughput, snoop.Throughput)
	}
}

// TestPublicTester drives the random protocol tester through the facade.
func TestPublicTester(t *testing.T) {
	rep := bashsim.RunTester(bashsim.TesterConfig{
		Protocol: bashsim.BASH,
		Ops:      8000,
		JitterNs: 100,
		Seed:     3,
	})
	if !rep.OK() {
		t.Fatalf("tester violations: %v %v", rep.Violations, rep.FinalStateErrors)
	}
	if !strings.Contains(rep.Summary(), "no violations") {
		t.Fatalf("summary: %s", rep.Summary())
	}
}

// TestPublicRunner drives the orchestration facade: a sharded tester fleet
// via RunTesterMany, plus the generic ParallelMap/ShardSeeds helpers.
func TestPublicRunner(t *testing.T) {
	seeds := bashsim.ShardSeeds(9, 3)
	reps, err := bashsim.RunTesterMany(bashsim.TesterConfig{
		Protocol: bashsim.BASH, Ops: 4000, JitterNs: 100,
	}, seeds, bashsim.RunnerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep.Config.Seed != seeds[i] {
			t.Fatalf("report %d: seed %d, want %d (job-order fold)", i, rep.Config.Seed, seeds[i])
		}
		if !rep.OK() {
			t.Fatalf("seed %d violations: %v", seeds[i], rep.Violations)
		}
	}

	squares, err := bashsim.ParallelMap(5, bashsim.RunnerOptions{},
		func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range squares {
		if v != i*i {
			t.Fatalf("ParallelMap out of order: %v", squares)
		}
	}
	if chunks := bashsim.ShardChunks(10, 3); len(chunks) != 3 || chunks[2].End != 10 {
		t.Fatalf("ShardChunks(10,3) = %v", chunks)
	}
}

// TestPublicKernel exercises the re-exported event kernel, including Reset.
func TestPublicKernel(t *testing.T) {
	k := bashsim.NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Drain()
	k.Reset()
	k.Schedule(5, func() { fired += 10 })
	k.Drain()
	if fired != 11 || k.Now() != 5 {
		t.Fatalf("fired=%d now=%d after reset/reuse", fired, k.Now())
	}
}

// TestPublicQueueing checks the Figure 2 facade.
func TestPublicQueueing(t *testing.T) {
	a := bashsim.QueueAnalytic(16, 4)
	s := bashsim.QueueSimulate(16, 4, 30000, 1)
	if d := a.Utilization - s.Utilization; d > 0.05 || d < -0.05 {
		t.Errorf("analytic %.3f vs simulated %.3f utilization", a.Utilization, s.Utilization)
	}
}

// TestPublicExperimentIDs ensures the registry lists the full reproduction.
func TestPublicExperimentIDs(t *testing.T) {
	ids := bashsim.ExperimentIDs()
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "table1", "stability",
		"ablation", "predictive", "migratory"}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
}

// TestPublicWorkloads resolves every registered workload.
func TestPublicWorkloads(t *testing.T) {
	for _, name := range bashsim.WorkloadNames() {
		if bashsim.WorkloadByName(name) == nil {
			t.Errorf("workload %q unresolved", name)
		}
	}
	if w := bashsim.OLTP(); w.SharingFraction <= bashsim.SPECjbb().SharingFraction {
		t.Error("OLTP must share more than SPECjbb (the paper's contrast)")
	}
	if bashsim.NewMigratory().Blocks <= 0 {
		t.Error("migratory workload has no block pool")
	}
}

// TestPublicDistSurface exercises the distributed-execution facade: the
// local backend runs registered jobs, and the coordinator + worker pair
// drains a batch end to end.
func TestPublicDistSurface(t *testing.T) {
	bashsim.RegisterDistExecutors("") // cell + trial executors, no persistence

	coord := bashsim.NewDistCoordinator(bashsim.DistOptions{LeaseTTL: time.Second})
	if n := coord.Workers(); n != 0 {
		t.Fatalf("idle coordinator reports %d workers", n)
	}
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go bashsim.RunDistWorker(ctx, bashsim.DistWorkerOptions{
		Coordinator: srv.URL, Name: "api-test", Poll: 10 * time.Millisecond,
	})

	cfg := bashsim.TesterConfig{Protocol: bashsim.BASH, Ops: 2000, Seed: 7}
	viaDist, err := bashsim.RunTesterConfigsOn(coord, []bashsim.TesterConfig{cfg}, bashsim.RunnerOptions{}, "")
	if err != nil {
		t.Fatalf("RunTesterConfigsOn(coordinator): %v", err)
	}
	direct := bashsim.RunTester(cfg)
	if !reflect.DeepEqual(viaDist[0], direct) {
		t.Error("distributed tester report differs from the in-process report")
	}
	if st := coord.Stats(); st.Completed != 1 {
		t.Errorf("coordinator completed %d jobs, want 1", st.Completed)
	}
}

// TestPublicCellStoreHygiene drives GC and the manifest through the facade.
func TestPublicCellStoreHygiene(t *testing.T) {
	dir := t.TempDir()
	m := bashsim.LoadCellStoreManifest(dir)
	m.Record("fig1", 3, 1, 1)
	if err := m.Save(dir); err != nil {
		t.Fatalf("manifest save: %v", err)
	}
	if got := bashsim.LoadCellStoreManifest(dir).Experiments["fig1"].Hits; got != 3 {
		t.Errorf("manifest hits = %d, want 3", got)
	}
	res, err := bashsim.CellStoreGC(dir, 0)
	if err != nil {
		t.Fatalf("CellStoreGC: %v", err)
	}
	if res.Removed() != 0 {
		t.Errorf("GC of an empty store removed %d files", res.Removed())
	}
}
