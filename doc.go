// Package bashsim is a from-scratch Go reproduction of "Bandwidth Adaptive
// Snooping" (Milo M. K. Martin, Daniel J. Sorin, Mark D. Hill, David A.
// Wood — HPCA 2002): an execution-driven memory-system simulator with three
// MOSI cache coherence protocols (broadcast Snooping, a GS320-style
// Directory protocol, and BASH, the Bandwidth Adaptive Snooping Hybrid), the
// per-processor bandwidth adaptive mechanism, the paper's workloads, and a
// harness that regenerates every table and figure of its evaluation.
//
// This package is the public facade: it re-exports the system construction
// API from internal/core, the workload generators, the experiment runners,
// the random protocol tester, and the sharded run-orchestration layer.
// ExperimentIDs lists the reproducible artifacts; `cmd/bashsim -list` does
// the same from the command line.
//
// Four layers make large evaluations fast and exactly reproducible:
//
//   - The event kernel (Kernel, internal/sim) is a concrete-typed 4-ary
//     heap ordered by (time, schedule-order): zero allocations per
//     Schedule/Step in steady state, with Reset for reuse across runs.
//     Identical runs replay exactly.
//   - The run orchestrator (ParallelMap/ParallelEach, RunnerOptions;
//     internal/runner) fans fleets of independent simulations out across a
//     bounded worker pool and folds results in job order, so serial and
//     parallel execution produce byte-identical artifacts. It captures
//     per-job panics with config context, honors context cancellation and
//     timeouts, reports progress, and shards seeds deterministically
//     (ShardSeeds). The experiment harness additionally memoizes identical
//     (protocol, bandwidth, seed) cells shared across figures, so each
//     distinct cell is simulated once per process.
//   - The pooled simulation lifecycle (SystemPool, System.Reset) reuses
//     whole Systems across runs instead of rebuilding them per cell, and a
//     persistent content-addressed cell store replays finished cells across
//     process invocations. Both are exact: a leased System is re-seeded to
//     byte-identical behaviour, and a stored cell is keyed by a hash of its
//     complete configuration.
//   - The distributed sweep backend (Backend, DistCoordinator,
//     RunDistWorker; internal/dist) fans the same cells across worker
//     processes and machines through a lease-based job protocol, folding
//     results from the shared cell store in job order — so a fleet of
//     machines produces the same bytes one goroutine would.
//   - The zero-allocation hot path: a warmed, pooled System executes
//     operations with zero steady-state heap allocations. Protocol packets
//     are reference-counted and recycled through the System's shared
//     Recycler; network messages and scheduling tasks free-list inside the
//     interconnect; line, transaction and directory-entry records drain
//     back on invalidation, completion and Reset; and every per-event
//     closure is a bound-once function or a free-listed kernel Task.
//     Allocation-budget tests pin 0 allocs/op per protocol at 4, 16 and 64
//     nodes, and determinism tests diff recycled against fresh-allocation
//     runs (Config.NoRecycle) byte for byte.
//
// # The pooled simulation lifecycle
//
// Every structure in the simulation stack can be returned to its
// just-constructed state in place: the kernel, network channels and masks,
// the cache arrays, the coherence controllers (lines, directory tables,
// retry buffers, transition-coverage counts), the checker, the predictor
// and the adaptive units. System.Reset(cfg) runs that pass and re-applies
// cfg's per-run parameters; SystemPool buckets idle Systems by structural
// configuration and leases them through Reset.
//
// Reuse is structural-config-safe: a System may be re-seeded for any config
// with the same protocol, node count, cache geometry, retry buffer, and
// predictor/checker/watchdog presence. Everything else — endpoint
// bandwidth, broadcast cost, workload seed, jitter, adaptive threshold /
// interval / counter width, watchdog interval — is per-run state that Reset
// re-applies, which covers every cell of a bandwidth sweep. Reset returns
// an error (leaving the System untouched) for structurally incompatible
// configs; Pool.Get transparently builds a fresh System instead.
//
// # The allocation lifecycle contract
//
// Who may hold what, after the free lists are in play:
//
//   - A Packet's reference count equals its pending deliveries plus
//     retained uses. The Env send helpers set it at send time; core.Node
//     releases one reference per delivery after both controllers return.
//     Controllers that park a packet past their handler (deferred foreign
//     instances, MemWB waiting lists, delayed directory applies) retain
//     and later release it. Double release panics descriptively.
//   - A *network.Message is valid only for the duration of the
//     DeliverOrdered/DeliverUnordered call (with network.Config.Recycle,
//     as core sets it); handlers copy what they need.
//   - line records recycle on release (Invalid, no txn, no deferrals), txn
//     records at transaction completion, pended queues when the blocking
//     writeback retires, directory entries and everything still live at
//     System.Reset — which drains records into the free lists rather than
//     freeing them, so pooled reuse keeps the warmed capacity. Packets
//     still parked at Reset are dropped to the GC (a parked packet may be
//     shared by several nodes; recycling it twice would corrupt the pool).
//   - Config.NoRecycle disables all of it (fresh allocation everywhere,
//     reference counting still checked) for byte-for-byte comparison runs;
//     results are identical either way.
//
// # The persistent cell store
//
// With ExperimentOptions.CacheDir set (the bashsim CLI defaults it to
// .cache/, -no-cache disables), every simulated cell's Metrics is persisted
// under <dir>/<hh>/<sha256(key)>.gob, where the key string encodes a format
// version plus every field of the cell's configuration, and <hh> is the
// hash's first two hex digits. Files carry a versioned envelope with the
// full key and are written atomically (temp + rename); a missing, corrupt,
// stale-version or colliding entry is treated as a miss and re-simulated,
// never as an error. Re-running an unchanged experiment therefore costs
// zero simulations, and an interrupted `bashsim -exp all -scale full`
// resumes where it stopped. bashtest persists tester trial Reports the same
// way. Bumping a key's format version (cellFormat in internal/experiments,
// reportFormat in internal/tester) orphans stale entries wholesale.
//
// # Distributed sweeps
//
// With ExperimentOptions.Backend set, sweep cells become serializable jobs
// (RunnerJob: an executor kind, a content-address key, a gob spec) executed
// by whatever implements Backend. NewLocalBackend routes them through the
// in-process pool; NewDistCoordinator fans them across worker processes
// started with RunDistWorker — `bashsim -serve ADDR` and `bashsim -worker
// URL` from the command line. The coordinator leases a batch of up to
// DistOptions.LeaseBatch jobs per worker slot (grants shrink to the pending
// jobs' fair share across live workers near queue exhaustion, so a sweep's
// tail rebalances instead of queueing behind one straggler); workers
// heartbeat every held lease while simulating and stream each result back
// the moment it completes, with the reply refilling their batch — a
// saturated worker needs one lease round-trip per sweep. An expired lease
// (worker crashed, hung, or partitioned) requeues that job — and only that
// job; streamed results stay completed — for another worker, a bounded
// number of times. Worker-side panics surface coordinator-side as
// *RunnerPanicError with the job's label and the remote stack, exactly like
// in-process pool panics.
//
// The protocol runs over one of two transports behind a common state
// machine. By default a worker negotiates the binary framed wire: one
// persistent TCP connection per worker (upgraded via POST /dist/wire),
// every slot's actions multiplexed over it as CRC-checked frames whose
// payloads compress against a per-connection dictionary — no per-action
// connection setup, no JSON/base64 envelope, several times fewer
// coordinator-side bytes per cell. A coordinator that does not speak it
// (an older build, or DistOptions.Wire = "http") makes the worker fall
// back to the original JSON-over-HTTP path; DistWorkerOptions.Wire (the
// -wire flag) forces either transport. Dropped connections redial with
// capped exponential backoff plus jitter, and leases lost in the gap
// reassign through the normal TTL machinery. Serve the coordinator with
// its Serve method and /dist/status reports socket-level byte and frame
// counters for both transports.
//
// DistOptions.Secret (the -dist-secret flag, on both roles) authenticates
// the protocol: every HTTP request must carry the shared secret in the
// X-Bashsim-Secret header, and every binary connection must open with a
// HELLO frame carrying its SHA-256 digest (both compared in constant
// time). Mismatches are rejected — 401, or a terminal auth-flagged ERROR
// frame — and a rejected worker exits with a descriptive
// *dist.AuthError instead of retrying. DistOptions.CoExecute (the
// -co-execute flag, default one slot per CPU on the CLI) runs that many
// in-process loopback worker slots on the coordinator for the duration of
// every batch — same wire protocol, auth included — so a lone coordinator
// makes progress with no external workers; register executors first
// (RegisterDistExecutors), exactly as a worker process would.
//
// The peer cell exchange makes the content-addressed store fleet-wide.
// Workers advertise compact Bloom-filter indicators over their store keys
// (paced and sized against DistWorkerOptions.AdvertBudget, deltas
// preferred over full re-sends); the coordinator tables them per worker
// and marks each granted job with a likely-holder hint. Before simulating
// a hinted cell, the worker fetches it — directly from an advertised
// holder's peer listener when one is known, else served from the
// coordinator's own store (DistOptions.CacheDir) or relayed from the
// holder — and installs the raw entry after the same fail-closed envelope
// checks as a local store read. Indicator false positives, departed
// holders, and relay timeouts all degrade tier by tier (direct fetch,
// coordinator relay, local simulation), never to a wrong result; a cold
// worker joining a published sweep simulates nothing (the e2e tests
// assert exactly zero). DistStats and /dist/status report advert, fetch,
// served, relayed, false-positive, direct, fallback, and replica-put
// counters.
//
// The direct data path takes the coordinator off the bulk-data transfer:
// a worker started with DistWorkerOptions.PeerAddr (requires CacheDir)
// serves its cell store to other workers over the framed wire — the same
// shared-secret handshake, then FETCH/CELL and PUT/PUT_ACK only. The
// coordinator places cells on a consistent-hash ring over live workers
// (64 virtual nodes each, so membership changes remap about 1/workers of
// the keyspace), prefers a key's ring owner when granting its job, hands
// fetching workers up to two holders' peer addresses per hinted job, and
// tells finishing workers which ring owners to replicate each published
// cell to.
//
// Three properties make the fleet exact and restartable:
//
//   - Determinism: every cell is a pure function of its spec, and results
//     fold in job order, so the TSV is byte-identical at any fleet size,
//     worker death included (the test suite kills a worker mid-sweep and
//     diffs the bytes).
//   - Placement independence: workers publish finished cells into the
//     shared content-addressed store, so it never matters who simulated
//     what; cells already in the coordinator's memo or store are served
//     locally and never dispatched.
//   - Resume: killing anything mid-sweep loses only in-flight cells. A
//     re-run serves published cells from the store and simulates just the
//     remainder — zero re-simulation of anything published, even with no
//     workers left.
//
// Coordinator and workers must run the same binary: cache keys embed the
// binary fingerprint, so mismatched builds never exchange stale results
// (they simply miss). The protocol (binary frames or JSON over HTTP, gob
// payloads either way) trusts its network unless a shared secret is
// configured — run it on a private cluster or set one.
//
// # Service mode
//
// `bashsim -serve ADDR` without `-exp` starts the coordinator as a
// long-lived multi-tenant sweep service (SweepService, internal/svc)
// instead of running one sweep and exiting. The service stays up with an
// empty queue; separate processes submit named sweeps with `bashsim
// -submit URL -exp fig1 -scale quick [-priority N]` (POST /dist/submit
// over HTTP/JSON, or a SUBMIT frame when the binary wire negotiates), and
// each accepted sweep gets an id, a queue position, and a result URL.
// Sweeps run highest-priority-first (FIFO within a priority) over the one
// shared worker fleet, up to ServeOptions.MaxActive at a time — a running
// sweep's remaining cells and a newly submitted higher-priority sweep's
// cells compete per lease grant, so priorities take effect without
// killing anything. The HTTP surface: GET /sweeps and /sweeps/{id} serve
// JSON lifecycle records, GET /sweeps/{id}/result.tsv serves bytes
// identical to what `bashsim -exp` would have written, GET / is a
// no-JavaScript live status page (progress bars via meta-refresh), and
// /dist/* remains the worker protocol. Only /dist/* requires the shared
// secret; the read-only surface is open.
//
// SIGINT or SIGTERM drains rather than kills: the service stops accepting
// submissions and granting jobs, leased batches finish or expire through
// the normal TTL machinery (nothing is lost or double-counted), queued
// sweeps are canceled, and the final status snapshot persists to the
// -dist-status file. `bashsim -status URL` prints an aligned table of the
// same snapshot for a quick look from the terminal.
//
// # Campaigns
//
// `bashsim -campaign` (Campaign, internal/campaign) runs the paper's
// full-scale figure set — dense log-spaced bandwidth grids, scaling to
// 256 nodes, every workload at both broadcast costs, all three protocols
// — as one long-running, resumable campaign over whatever backend the
// harness is given: the in-process pool, a dist fleet, or the sweep
// service's shared fleet (Priority tags its cells at the lease queue).
// Instead of a fixed seed count, each cell's seeds escalate (×1.5 per
// round, from the base seed list up to -max-seeds) until the panel
// metric's coefficient of variation drops under -cov-target (default the
// paper's 1%) — noisy contended cells earn more seeds, quiet ones stop
// early — and the rendered figures draw one-standard-deviation error bars
// exactly where CoV exceeds 1%, the paper's reporting rule. Progress
// checkpoints atomically to -campaign-state after every completed round:
// a killed campaign re-run with the identical command replays finished
// panels byte for byte from the checkpoint, refolds unfinished cells from
// the content-addressed cell store, and simulates only never-run
// (cell, seed) points (the e2e test and the CI smoke assert the strong
// form: interrupted + resumed simulation counts sum exactly to an
// uninterrupted run's). The checkpoint embeds a hash of the grid
// definition, knobs, seed sequence, scale, and binary fingerprint, so
// resuming under any other configuration is refused with the remedy
// spelled out. From code: NewCampaign(CampaignOptions) with
// DefaultCampaignGrid or a custom CampaignGrid, then Run; RegisterMetrics
// exposes live per-panel convergence gauges
// (bashsim_campaign_panel_cov_max and friends) on a MetricsRegistry.
// RunSimulationCells is the underlying exported cell funnel.
//
// # Observability
//
// MetricsRegistry (internal/obs) is a dependency-free metrics subsystem:
// Counter, Gauge and Histogram instruments backed by atomics (cheap
// enough for simulation hot paths), plus read-through CounterFunc /
// GaugeFunc / Collect registrations that sample existing counters only at
// scrape time — the instrumented layers (dist, cellstore, runner,
// experiments) keep their own plain atomics and pay nothing when no one
// is scraping. Expose emits the Prometheus text exposition format with
// families sorted, labels escaped, and histogram buckets cumulative; GET
// /metrics on a sweep service serves it. The bashsim_* families cover the
// coordinator's lease and job counters, the wire transports' byte/frame
// counters per direction and per connection, the peer cell exchange
// (adverts, fetches, served/relayed/false-positive), the cell store
// (hits, misses, writes, evictions), the run orchestrator (jobs in
// flight, captured panics), and per-sweep progress gauges
// (bashsim_sweep_done/bashsim_sweep_total labeled by sweep id and
// experiment). Scrapes are allocation-bounded and race-clean against
// concurrent updates; the exposition format is pinned by escaping,
// cumulativity and golden-file tests.
//
// Cell-store hygiene: `bashsim -cache-gc` evicts entries whose on-disk
// format is stale or whose age exceeds -cache-max-age (CellStoreGC from
// code), and a per-experiment hit/miss manifest (LoadCellStoreManifest) is
// persisted alongside the store and printed after runs.
//
// Quick start:
//
//	sys := bashsim.NewSystem(bashsim.Config{
//		Protocol:     bashsim.BASH,
//		Nodes:        16,
//		BandwidthMBs: 1600,
//	})
//	lk := bashsim.NewLockingWorkload(2048, 0)
//	for i, a := range lk.WarmBlocks() {
//		sys.PreheatOwned(a, bashsim.NodeID(i%16), uint64(i)+1)
//	}
//	sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
//	m := sys.Measure(1000, 5000)
//	fmt.Println(m)
package bashsim
