// Package bashsim is a from-scratch Go reproduction of "Bandwidth Adaptive
// Snooping" (Milo M. K. Martin, Daniel J. Sorin, Mark D. Hill, David A.
// Wood — HPCA 2002): an execution-driven memory-system simulator with three
// MOSI cache coherence protocols (broadcast Snooping, a GS320-style
// Directory protocol, and BASH, the Bandwidth Adaptive Snooping Hybrid), the
// per-processor bandwidth adaptive mechanism, the paper's workloads, and a
// harness that regenerates every table and figure of its evaluation.
//
// This package is the public facade: it re-exports the system construction
// API from internal/core, the workload generators, the experiment runners,
// the random protocol tester, and the sharded run-orchestration layer.
// ExperimentIDs lists the reproducible artifacts; `cmd/bashsim -list` does
// the same from the command line.
//
// Two layers make large evaluations fast and exactly reproducible:
//
//   - The event kernel (Kernel, internal/sim) is a concrete-typed 4-ary
//     heap ordered by (time, schedule-order): zero allocations per
//     Schedule/Step in steady state, with Reset for reuse across runs.
//     Identical runs replay exactly.
//   - The run orchestrator (ParallelMap/ParallelEach, RunnerOptions;
//     internal/runner) fans fleets of independent simulations out across a
//     bounded worker pool and folds results in job order, so serial and
//     parallel execution produce byte-identical artifacts. It captures
//     per-job panics with config context, honors context cancellation and
//     timeouts, reports progress, and shards seeds deterministically
//     (ShardSeeds). The experiment harness additionally memoizes identical
//     (protocol, bandwidth, seed) cells shared across figures, so each
//     distinct cell is simulated once per process.
//
// Quick start:
//
//	sys := bashsim.NewSystem(bashsim.Config{
//		Protocol:     bashsim.BASH,
//		Nodes:        16,
//		BandwidthMBs: 1600,
//	})
//	lk := bashsim.NewLockingWorkload(2048, 0)
//	for i, a := range lk.WarmBlocks() {
//		sys.PreheatOwned(a, bashsim.NodeID(i%16), uint64(i)+1)
//	}
//	sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
//	m := sys.Measure(1000, 5000)
//	fmt.Println(m)
package bashsim
