// Package bashsim is a from-scratch Go reproduction of "Bandwidth Adaptive
// Snooping" (Milo M. K. Martin, Daniel J. Sorin, Mark D. Hill, David A.
// Wood — HPCA 2002): an execution-driven memory-system simulator with three
// MOSI cache coherence protocols (broadcast Snooping, a GS320-style
// Directory protocol, and BASH, the Bandwidth Adaptive Snooping Hybrid), the
// per-processor bandwidth adaptive mechanism, the paper's workloads, and a
// harness that regenerates every table and figure of its evaluation.
//
// This package is the public facade: it re-exports the system construction
// API from internal/core, the workload generators, the experiment runners,
// and the random protocol tester. See README.md for a tour, DESIGN.md for
// the architecture and experiment index, and EXPERIMENTS.md for
// paper-versus-measured results.
//
// Quick start:
//
//	sys := bashsim.NewSystem(bashsim.Config{
//		Protocol:     bashsim.BASH,
//		Nodes:        16,
//		BandwidthMBs: 1600,
//	})
//	lk := bashsim.NewLockingWorkload(2048, 0)
//	for i, a := range lk.WarmBlocks() {
//		sys.PreheatOwned(a, bashsim.NodeID(i%16), uint64(i)+1)
//	}
//	sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
//	m := sys.Measure(1000, 5000)
//	fmt.Println(m)
package bashsim
