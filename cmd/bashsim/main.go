// Command bashsim regenerates the tables and figures of "Bandwidth Adaptive
// Snooping" (Martin, Sorin, Hill, Wood — HPCA 2002).
//
// Usage:
//
//	bashsim -exp fig1            # one experiment, quick scale
//	bashsim -exp all -scale full # every experiment at paper scale
//	bashsim -exp fig10 -parallel 8 -progress  # bounded fan-out, live progress
//	bashsim -list                # list experiment ids
//	bashsim -run -protocol bash -nodes 64 -bandwidth 800   # one ad-hoc run
//
// Distributed mode fans sweep cells across worker processes (same binary,
// any machine) through the lease-based job protocol of internal/dist.
// Leases carry batches of cells (-lease-batch), the protocol optionally
// authenticates with a shared secret (-dist-secret on both roles), and the
// coordinator's own idle cores execute jobs too (-co-execute, default one
// slot per CPU), so a lone coordinator makes progress without any workers:
//
//	bashsim -worker http://coord:8497 -dist-secret s3 &  # on each worker machine
//	bashsim -exp all -serve :8497 -dist-secret s3        # coordinator: dispatches cells
//
// Service mode — `-serve` without an explicit `-exp` — keeps the
// coordinator alive across sweeps: it accepts named sweep submissions,
// schedules them across the shared fleet by priority, and serves a live
// status page and Prometheus metrics (see internal/svc). SIGINT/SIGTERM
// drains gracefully:
//
//	bashsim -serve :8497 &                            # long-lived sweep service
//	bashsim -submit http://localhost:8497 -exp fig1   # queue a named sweep
//	bashsim -status http://localhost:8497             # one-line fleet/sweep table
//	curl http://localhost:8497/sweeps/s001/result.tsv # retrieve its artifacts
//
// Campaign mode drives the full-scale figure grid as a long-running,
// resumable run: seeds escalate per cell until the metric's coefficient of
// variation drops under -cov-target (or -max-seeds), and progress
// checkpoints atomically to -campaign-state after every round, so a killed
// campaign resumes without re-simulating anything:
//
//	bashsim -campaign -scale full -campaign-state campaign.json
//	bashsim -campaign -serve :8497 ...    # same, dispatching to a fleet
//
// Cell-store hygiene:
//
//	bashsim -cache-gc                     # evict stale/aged cache entries
//
// Output is TSV on stdout (or -out FILE), one block per artifact. Sweeps
// fan out across the run-orchestration layer; results are folded in job
// order, so the TSV is byte-identical at any -parallel setting — and, via
// the content-addressed cell store, at any worker-fleet composition.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/campaign"
	"repro/internal/cellstore"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/network"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/svc"
	"repro/internal/tester"
	"repro/internal/workload"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale = flag.String("scale", "quick", "quick | full")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		out   = flag.String("out", "", "write output to a file instead of stdout")

		parallel = flag.Int("parallel", 0, "sweep worker goroutines (0 = one per CPU, 1 = serial); worker job slots in -worker mode")
		timeout  = flag.Duration("timeout", 0, "abort experiments after this long (0 = no limit)")
		progress = flag.Bool("progress", false, "report per-cell sweep progress on stderr")
		cacheDir = flag.String("cache-dir", ".cache", "persistent cell-result cache directory")
		noCache  = flag.Bool("no-cache", false, "disable the persistent cell-result cache")
		noReuse  = flag.Bool("no-reuse", false, "disable System pooling (fresh construction per cell)")
		watchdog = flag.Duration("watchdog", 0, "per-cell forward-progress watchdog interval in simulated time (0 = 500ms default)")

		serve      = flag.String("serve", "", "coordinate a distributed run: serve the job protocol on this address (e.g. :8497) and dispatch sweep cells to workers")
		worker     = flag.String("worker", "", "run as a distributed worker against this coordinator URL (e.g. http://host:8497)")
		leaseTTL   = flag.Duration("lease-ttl", 0, "distributed job lease TTL before reassignment (0 = 15s default)")
		leaseBatch = flag.Int("lease-batch", 4, "max jobs granted per distributed lease (1 = one cell per round-trip)")
		workerPoll = flag.Duration("poll", 0, "with -worker: idle re-poll interval when the coordinator has no work (0 = 500ms default)")
		distSecret = flag.String("dist-secret", "", "shared secret authenticating the distributed job protocol (both -serve and -worker; empty = unauthenticated)")
		coExecute  = flag.Int("co-execute", runtime.NumCPU(), "in-process worker slots the coordinator runs alongside dispatching (0 = dispatch only)")
		distStatus = flag.String("dist-status", "", "with -serve: write the coordinator's final /dist/status JSON to this file")
		distWire   = flag.String("wire", "", "distributed transport: auto (default: negotiate binary frames, fall back to JSON), binary, or http; with -serve, http disables the binary endpoint")
		advBudget  = flag.Int("advert-budget", 65536, "peer cell exchange: approximate bytes/sec each worker may spend advertising its cell-store indicator (0 = unpaced)")
		workerKind = flag.String("worker-kinds", "", "with -worker: comma-separated job kinds to lease (empty = every registered executor); a kind matching no jobs makes a holder-only worker that just advertises and serves its cell store")
		peerAddr   = flag.String("peer-addr", "", "with -worker: serve this worker's cell store to other workers on this address (e.g. :9102; must be dialable by peers); empty disables the direct data path")
		waitWork   = flag.Int("wait-workers", 0, "with -serve: wait for this many live workers (and their first indicator adverts) before dispatching")

		submit    = flag.String("submit", "", "submit a named sweep (-exp, -scale, -priority) to a sweep-service coordinator at this URL and exit")
		statusURL = flag.String("status", "", "query a running coordinator's /dist/status at this URL, print an aligned table, and exit")
		priority  = flag.Int("priority", 0, "with -submit: sweep priority (higher runs first; equal priorities run FIFO)")
		maxSweeps = flag.Int("max-sweeps", 0, "with -serve service mode: concurrently running sweeps (0 = 2)")

		cacheGC     = flag.Bool("cache-gc", false, "evict stale-format and aged cell-store entries, print a report, and exit")
		cacheMaxAge = flag.Duration("cache-max-age", 30*24*time.Hour, "with -cache-gc: evict entries older than this (0 = stale formats only)")

		campaignMode  = flag.Bool("campaign", false, "run the resumable figure campaign for -scale (its own grid; excludes -exp)")
		covTarget     = flag.Float64("cov-target", 0, "with -campaign: per-cell CoV convergence target (0 = the paper's 1%; negative = never, run every cell to -max-seeds)")
		maxSeeds      = flag.Int("max-seeds", 0, "with -campaign: seed cap per cell (0 = 16)")
		campaignState = flag.String("campaign-state", "campaign.json", "with -campaign: checkpoint file for resumable progress (empty disables)")
		seedsFlag     = flag.String("seeds", "", "comma-separated seed list for sweeps (e.g. 11,23,37; empty = per-scale defaults); applies to -exp, -submit, and -campaign")

		single    = flag.Bool("run", false, "single ad-hoc run instead of an experiment")
		protoName = flag.String("protocol", "bash", "snooping | directory | bash | bash-pred | bash-bcast | bash-ucast")
		nodes     = flag.Int("nodes", 16, "processors (single run)")
		bandwidth = flag.Float64("bandwidth", 1600, "endpoint MB/s (single run)")
		bcost     = flag.Float64("bcost", 1, "broadcast cost multiplier (single run)")
		wlName    = flag.String("workload", "locking", "locking | oltp | apache | specjbb | slashcode | barnes | migratory")
		think     = flag.Int64("think", 0, "locking think time in cycles (single run)")
		ops       = flag.Uint64("ops", 20000, "measured operations (single run)")
	)
	flag.Parse()

	switch *distWire {
	case "", "auto", "binary", "http":
	default:
		fmt.Fprintf(os.Stderr, "bashsim: -wire %q: want auto, binary, or http\n", *distWire)
		os.Exit(2)
	}
	// Reject contradictory flag combinations up front with a description of
	// the conflict, instead of silently ignoring one side.
	expSet, seedsSet, campaignKnob := false, false, ""
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "exp":
			expSet = true
		case "seeds":
			seedsSet = true
		case "cov-target", "max-seeds", "campaign-state":
			campaignKnob = "-" + f.Name
		}
	})
	switch {
	case *worker != "" && *serve != "":
		fatalUsage("-worker and -serve are mutually exclusive: a process either leases jobs from a coordinator or is one")
	case *waitWork > 0 && *serve == "":
		fatalUsage("-wait-workers only applies to a coordinator; add -serve ADDR")
	case *submit != "" && *single:
		fatalUsage("-submit and -run are mutually exclusive: -submit queues a named sweep on a remote service, -run simulates one ad-hoc configuration locally")
	case *submit != "" && *serve != "":
		fatalUsage("-submit and -serve are mutually exclusive: start the service first, then submit to it from another process")
	case *campaignMode && expSet:
		fatalUsage("-campaign runs its own figure grid and excludes -exp; drop one of them")
	case *campaignMode && *single:
		fatalUsage("-campaign and -run are mutually exclusive")
	case *campaignMode && *submit != "":
		fatalUsage("-campaign and -submit are mutually exclusive: a campaign drives its own sweeps")
	case *campaignMode && *worker != "":
		fatalUsage("-campaign and -worker are mutually exclusive: point workers at the campaign's -serve address instead")
	case campaignKnob != "" && !*campaignMode:
		fatalUsage(campaignKnob + " only applies to a campaign; add -campaign")
	case *peerAddr != "" && *worker == "":
		fatalUsage("-peer-addr only applies to a worker; add -worker URL")
	case *peerAddr != "" && *noCache:
		fatalUsage("-peer-addr needs the cell store that -no-cache disables: a peer listener with no store has nothing to serve")
	}
	var seedList []uint64
	if seedsSet {
		var err error
		if seedList, err = experiments.ParseSeeds(*seedsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: -seeds: %v\n", err)
			os.Exit(2)
		}
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *cacheGC {
		runCacheGC(*cacheDir, *cacheMaxAge)
		return
	}
	if *statusURL != "" {
		runStatus(*statusURL, *distSecret)
		return
	}
	if *submit != "" {
		runSubmit(*submit, *exp, *scale, *priority, seedList, *distSecret, *distWire)
		return
	}
	if *worker != "" {
		runWorker(*worker, *cacheDir, *noCache, *noReuse, *parallel, *distSecret, *workerPoll, *distWire, *advBudget, *workerKind, *peerAddr)
		return
	}
	if *single {
		singleRun(*protoName, *nodes, *bandwidth, *bcost, *wlName, *think, *ops)
		return
	}

	opts := experiments.Options{
		Parallel:         *parallel,
		Seeds:            seedList,
		NoReuse:          *noReuse,
		WatchdogInterval: sim.Time(watchdog.Nanoseconds()),
	}
	if !*noCache {
		// Probe the directory up front so an unusable -cache-dir warns
		// loudly instead of silently running uncached.
		if _, err := cellstore.Open(*cacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: cell cache disabled: %v\n", err)
		} else {
			opts.CacheDir = *cacheDir
		}
	}
	switch *scale {
	case "quick":
		opts.Scale = experiments.Quick
	case "full":
		opts.Scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "bashsim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	// -serve with no explicit -exp enters service mode: the coordinator
	// stays up, runs submitted sweeps, and drains on SIGINT/SIGTERM. An
	// explicit -exp (even "-exp all") keeps the classic one-shot behavior:
	// serve, run that experiment across the fleet, exit.
	if *serve != "" && !expSet && !*campaignMode {
		runService(*serve, dist.CoordinatorOptions{
			LeaseTTL:   *leaseTTL,
			LeaseBatch: *leaseBatch,
			Secret:     *distSecret,
			CoExecute:  *coExecute,
			Wire:       *distWire,
			CacheDir:   opts.CacheDir,
		}, opts, *maxSweeps, *distStatus)
		return
	}
	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		opts.Context = ctx
	}

	if *campaignMode {
		runCampaign(opts, *serve, dist.CoordinatorOptions{
			LeaseTTL:   *leaseTTL,
			LeaseBatch: *leaseBatch,
			Secret:     *distSecret,
			CoExecute:  *coExecute,
			Wire:       *distWire,
			CacheDir:   opts.CacheDir,
		}, campaign.Options{
			CovTarget: *covTarget,
			MaxSeeds:  *maxSeeds,
			StatePath: *campaignState,
			Priority:  *priority,
		}, *waitWork, *progress, *out)
		return
	}

	var coord *dist.Coordinator
	if *serve != "" {
		coord = serveCoordinator(*serve, dist.CoordinatorOptions{
			LeaseTTL:   *leaseTTL,
			LeaseBatch: *leaseBatch,
			Secret:     *distSecret,
			CoExecute:  *coExecute,
			Wire:       *distWire,
			CacheDir:   opts.CacheDir,
		}, opts)
		opts.Backend = coord
		if *waitWork > 0 {
			awaitWorkers(coord, *waitWork)
		}
	}
	if *progress {
		opts.Progress = func(done, total int) {
			if coord != nil {
				fmt.Fprintf(os.Stderr, "\r%d/%d cells (%d workers)", done, total, coord.Workers())
			} else {
				fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var manifest *cellstore.Manifest
	if opts.CacheDir != "" {
		manifest = cellstore.LoadManifest(opts.CacheDir)
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		prevHits, prevMisses, prevWrites := experiments.CacheCounters(opts.CacheDir)
		arts, err := experiments.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: %v\n", err)
			os.Exit(1)
		}
		for _, a := range arts {
			fmt.Fprintln(w, a.TSV())
		}
		line := fmt.Sprintf("%-10s %6.1fs", id, time.Since(start).Seconds())
		if opts.CacheDir != "" {
			hits, misses, writes := experiments.CacheCounters(opts.CacheDir)
			line += fmt.Sprintf("   cache %d hits / %d misses", hits-prevHits, misses-prevMisses)
			manifest.Record(id, hits-prevHits, misses-prevMisses, writes-prevWrites)
		}
		fmt.Fprintln(os.Stderr, line)
	}
	if opts.CacheDir != "" {
		hits, misses, writes := experiments.CacheCounters(opts.CacheDir)
		fmt.Fprintf(os.Stderr, "cell cache (%s): %d hits, %d misses, %d written, %d cells simulated\n",
			opts.CacheDir, hits, misses, writes, experiments.Simulations())
		if err := manifest.Save(opts.CacheDir); err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: manifest not saved: %v\n", err)
		}
		fmt.Fprint(os.Stderr, manifest)
	}
	if coord != nil {
		st := coord.Stats()
		fmt.Fprintf(os.Stderr, "dist: %d jobs dispatched over %d leases + %d refills, %d completed, %d leases reassigned, %d failed\n",
			st.Dispatched, st.Leases, st.Refills, st.Completed, st.Reassigned, st.Failed)
		if st.Fetches > 0 || st.Adverts > 0 {
			fmt.Fprintf(os.Stderr, "exchange: %d adverts (%d bytes), %d fetches (%d served locally, %d relayed, %d missed)\n",
				st.Adverts, st.AdvertBytes, st.Fetches, st.FetchServed, st.FetchRelayed, st.FetchFalsePos)
		}
		if *distStatus != "" {
			if err := writeDistStatus(coord, *distStatus); err != nil {
				fmt.Fprintf(os.Stderr, "bashsim: -dist-status: %v\n", err)
				os.Exit(1)
			}
		}
	}
}

// fatalUsage reports a flag-combination error and exits with the usage
// status.
func fatalUsage(msg string) {
	fmt.Fprintf(os.Stderr, "bashsim: %s\n", msg)
	os.Exit(2)
}

// runService runs the long-lived sweep service until a SIGINT/SIGTERM,
// then drains: submissions are refused, queued sweeps cancel, leased
// batches finish or expire, and the combined final status is persisted to
// -dist-status.
func runService(addr string, copt dist.CoordinatorOptions, opts experiments.Options, maxSweeps int, statusPath string) {
	if copt.CoExecute > 0 {
		// The cell executor is registered by svc.New; trials only matter if
		// a tester coordinator shares the fleet, but registering is free.
		tester.RegisterTrialExecutor(opts.CacheDir)
	}
	s := svc.New(svc.Options{
		Coordinator: copt,
		Experiments: opts,
		MaxActive:   maxSweeps,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: -serve %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bashsim: sweep service on %s\n  submit: bashsim -submit http://%s -exp fig1\n  status: http://%s/ (HTML) · /metrics (Prometheus) · /sweeps (JSON)\n",
		l.Addr(), l.Addr(), l.Addr())
	go s.Serve(l)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	<-ctx.Done()
	stop() // a second signal now kills outright instead of queueing behind the drain

	ttl := copt.LeaseTTL
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	drainBudget := 4 * ttl
	fmt.Fprintf(os.Stderr, "bashsim: draining: leased batches finish or expire (up to %s)\n", drainBudget)
	dctx, cancel := context.WithTimeout(context.Background(), drainBudget)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: drain: %v\n", err)
	}
	l.Close()

	if statusPath != "" {
		f, err := os.Create(statusPath)
		if err == nil {
			err = s.WriteStatus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: -dist-status: %v\n", err)
			os.Exit(1)
		}
	}
	st := s.Coordinator().Stats()
	fmt.Fprintf(os.Stderr, "dist: %d jobs dispatched over %d leases + %d refills, %d completed, %d leases reassigned, %d failed\n",
		st.Dispatched, st.Leases, st.Refills, st.Completed, st.Reassigned, st.Failed)
}

// runCampaign runs the resumable figure campaign: optionally coordinating
// a fleet (with campaign CoV gauges on /metrics alongside the dist
// counters), escalating seeds per cell to the CoV target, checkpointing to
// -campaign-state after every round, and printing one TSV block per panel.
// SIGINT/SIGTERM cancel the run gracefully — in-flight cells finish and
// land in the cell store, the checkpoint keeps the frontier, and re-running
// the same command resumes with zero re-simulation.
func runCampaign(opts experiments.Options, serveAddr string, copt dist.CoordinatorOptions,
	camp campaign.Options, waitWorkers int, progress bool, outPath string) {

	base := opts.Context
	if base == nil {
		base = context.Background()
	}
	ctx, stop := signal.NotifyContext(base, os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Context = ctx

	var coord *dist.Coordinator
	if serveAddr != "" {
		if copt.CoExecute > 0 {
			experiments.RegisterCellExecutor(experiments.Options{CacheDir: opts.CacheDir, NoReuse: opts.NoReuse})
			tester.RegisterTrialExecutor(opts.CacheDir)
		}
		coord = dist.NewCoordinator(copt)
		opts.Backend = coord
	}
	if progress {
		opts.Progress = func(done, total int) {
			if coord != nil {
				fmt.Fprintf(os.Stderr, "\r%d/%d cells (%d workers)", done, total, coord.Workers())
			} else {
				fmt.Fprintf(os.Stderr, "\r%d/%d cells", done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	camp.Experiments = opts
	camp.Log = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	c, err := campaign.New(camp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: %v\n", err)
		os.Exit(2)
	}
	if coord != nil {
		reg := obs.NewRegistry()
		coord.RegisterMetrics(reg)
		c.RegisterMetrics(reg)
		reg.CounterFunc("bashsim_cells_simulated_total", "simulation cells actually executed", experiments.Simulations)
		mux := http.NewServeMux()
		mux.Handle("/dist/", coord.Handler())
		mux.Handle("GET /metrics", reg.Handler())
		l, err := net.Listen("tcp", serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: -serve %s: %v\n", serveAddr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bashsim: campaign coordinating on %s (workers: bashsim -worker http://%s; metrics: http://%s/metrics)\n",
			l.Addr(), l.Addr(), l.Addr())
		go coord.ServeHandler(l, mux)
		defer l.Close()
		if waitWorkers > 0 {
			awaitWorkers(coord, waitWorkers)
		}
	}

	var w io.Writer = os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bashsim: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	sims0 := experiments.Simulations()
	res, err := c.Run()
	elapsed := time.Since(start).Seconds()
	sims := experiments.Simulations() - sims0
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: %v\n", err)
		if camp.StatePath != "" {
			fmt.Fprintf(os.Stderr, "bashsim: campaign checkpoint %s holds the frontier (simulated %d cells this run); re-run the same command to resume\n",
				camp.StatePath, sims)
		}
		os.Exit(1)
	}
	for _, p := range res.Panels {
		fmt.Fprintln(w, p.TSV)
	}
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	fmt.Fprintf(os.Stderr, "campaign summary: panels=%d resumed=%d cells=%d converged=%d seeds=%d escalated=%d simulated=%d elapsed=%.2fs cells_per_sec=%.1f\n",
		len(res.Panels), res.PanelsResumed, res.Cells, res.Converged, res.SeedsRun, res.Escalated, sims, elapsed, float64(res.Cells)/elapsed)
	if coord != nil {
		st := coord.Stats()
		fmt.Fprintf(os.Stderr, "dist: %d jobs dispatched over %d leases + %d refills, %d completed, %d leases reassigned, %d failed\n",
			st.Dispatched, st.Leases, st.Refills, st.Completed, st.Reassigned, st.Failed)
	}
}

// runSubmit queues one named sweep on a sweep-service coordinator and
// prints the acknowledged id and queue position.
func runSubmit(coordinator, exp, scale string, priority int, seeds []uint64, secret, wire string) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, err := dist.SubmitSweep(ctx, dist.WorkerOptions{
		Coordinator: coordinator,
		Secret:      secret,
		Wire:        wire,
	}, dist.SubmitRequest{Exp: exp, Scale: scale, Priority: priority, Seeds: seeds})
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: -submit: %v\n", err)
		os.Exit(1)
	}
	base := strings.TrimRight(coordinator, "/")
	fmt.Printf("queued %s: %s -scale %s at position %d\n", resp.ID, exp, scale, resp.Position)
	fmt.Printf("watch %s/sweeps/%s — result at %s/sweeps/%s/result.tsv\n", base, resp.ID, base, resp.ID)
}

// runStatus fetches a running coordinator's /dist/status and prints it as
// the aligned table humans previously only got from the final JSON file.
func runStatus(coordinator, secret string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := dist.FetchStatus(ctx, nil, coordinator, secret)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: -status: %v\n", err)
		os.Exit(1)
	}
	state := "idle"
	if st.Active {
		state = fmt.Sprintf("active, %d/%d cells", st.Done, st.Total)
	}
	if st.Draining {
		state += ", draining"
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintf(w, "coordinator\t%s (%s)\n", coordinator, state)
	fmt.Fprintf(w, "workers\t%d live\n", st.Workers)
	fmt.Fprintf(w, "leases\t%d grants, %d refills, %d reassigned\n", st.Leases, st.Refills, st.Reassigned)
	fmt.Fprintf(w, "jobs\t%d dispatched, %d completed, %d failed\n", st.Dispatched, st.Completed, st.Failed)
	fmt.Fprintf(w, "socket\t%d B in, %d B out\n", st.BytesIn, st.BytesOut)
	fmt.Fprintf(w, "frames\t%d in, %d out\n", st.FramesIn, st.FramesOut)
	fmt.Fprintf(w, "exchange\t%d adverts (%d B), %d fetches: %d served, %d relayed, %d false-pos\n",
		st.Adverts, st.AdvertBytes, st.Fetches, st.FetchServed, st.FetchRelayed, st.FetchFalsePos)
	fmt.Fprintf(w, "direct\t%d peer fetches, %d relay fallbacks, %d replica puts\n",
		st.FetchDirect, st.FetchFallback, st.PeerPuts)
	fmt.Fprintf(w, "ring\t%d workers, %d owner-preferred grants\n",
		st.RingWorkers, st.RingOwnerGrants)
	if len(st.WireConns) > 0 {
		fmt.Fprintf(w, "\nWORKER\tREMOTE\tFRAMES IN/OUT\tBYTES IN/OUT\t\n")
		for _, c := range st.WireConns {
			note := ""
			if c.Closed {
				note = "closed"
			}
			fmt.Fprintf(w, "%s\t%s\t%d/%d\t%d/%d\t%s\n",
				c.Worker, c.Remote, c.FramesIn, c.FramesOut, c.BytesIn, c.BytesOut, note)
		}
	}
	w.Flush()
}

// serveCoordinator starts the distributed job protocol on addr and returns
// the coordinator backend. With co-execution enabled it also registers this
// process's executors, so the coordinator's idle cores lease jobs through
// the same protocol path as external workers — a lone `bashsim -serve`
// still makes progress.
func serveCoordinator(addr string, copt dist.CoordinatorOptions, opts experiments.Options) *dist.Coordinator {
	if copt.CoExecute > 0 {
		experiments.RegisterCellExecutor(experiments.Options{CacheDir: opts.CacheDir, NoReuse: opts.NoReuse})
		tester.RegisterTrialExecutor(opts.CacheDir)
	}
	coord := dist.NewCoordinator(copt)
	l, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: -serve %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bashsim: coordinating on %s (workers: bashsim -worker http://%s)\n",
		l.Addr(), l.Addr())
	// coord.Serve (not a bare http.Serve) so the socket-level byte counters
	// in /dist/status cover every connection, HTTP and binary alike.
	go coord.Serve(l)
	return coord
}

// awaitWorkers blocks dispatch until n workers have contacted the
// coordinator, plus a short settle so their first indicator adverts land
// before the first grants' held hints are computed (a cold fleet that
// starts dispatching instantly would compute every hint against an empty
// indicator table). Capped: missing workers must not hang a run forever.
func awaitWorkers(coord *dist.Coordinator, n int) {
	deadline := time.Now().Add(2 * time.Minute)
	for coord.Workers() < n {
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "bashsim: -wait-workers %d: only %d appeared within 2m; dispatching anyway\n",
				n, coord.Workers())
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	// Workers with cache-less stores never advertise, so this wait is
	// bounded short rather than required.
	advertDeadline := time.Now().Add(2 * time.Second)
	for coord.Stats().Adverts == 0 && time.Now().Before(advertDeadline) {
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(500 * time.Millisecond)
}

// writeDistStatus persists the coordinator's final /dist/status JSON — the
// CI smoke uploads it so per-commit lease and reassignment counts are
// inspectable.
func writeDistStatus(coord *dist.Coordinator, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := coord.WriteStatus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runWorker executes distributed jobs until interrupted. The worker
// registers both executors — experiment cells and tester trials — and
// publishes results into its cell store, which coordinators sharing the
// directory (or just this worker, across restarts) serve as cache hits.
// The store also feeds the peer cell exchange: its keys are advertised to
// the coordinator (paced by -advert-budget) and hinted cells are fetched
// from the fleet instead of simulated.
func runWorker(coordinator, cacheDir string, noCache, noReuse bool, slots int, secret string, poll time.Duration, wire string, advertBudget int, kindList, peerAddr string) {
	var kinds []string
	for _, k := range strings.Split(kindList, ",") {
		if k = strings.TrimSpace(k); k != "" {
			kinds = append(kinds, k)
		}
	}
	dir := cacheDir
	if noCache {
		dir = ""
	} else if _, err := cellstore.Open(dir); err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: worker cache disabled: %v\n", err)
		dir = ""
	}
	experiments.RegisterCellExecutor(experiments.Options{CacheDir: dir, NoReuse: noReuse})
	tester.RegisterTrialExecutor(dir)

	if slots <= 0 {
		slots = runtime.NumCPU() // match the -parallel flag's "0 = one per CPU"
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "bashsim: worker polling %s (%d slot(s), cache %q)\n", coordinator, slots, dir)
	if err := dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator:  coordinator,
		Slots:        slots,
		Secret:       secret,
		Poll:         poll,
		Wire:         wire,
		Kinds:        kinds,
		CacheDir:     dir,
		AdvertBudget: advertBudget,
		PeerAddr:     peerAddr,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}); err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "bashsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bashsim: worker stopped: simulated %d cells, fetched %d from peers\n",
		experiments.Simulations(), experiments.Fetched())
}

// runCacheGC evicts unusable and aged cell-store entries and reports.
func runCacheGC(dir string, maxAge time.Duration) {
	st, err := cellstore.Open(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: -cache-gc: %v\n", err)
		os.Exit(1)
	}
	res, err := st.GC(maxAge)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashsim: -cache-gc: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("cell cache (%s): kept %d entries (%d bytes)\n", dir, res.Kept, res.KeptBytes)
	fmt.Printf("evicted %d (%d bytes): %d stale-format, %d older than %s, %d abandoned temp files\n",
		res.Removed(), res.RemovedBytes, res.RemovedStale, res.RemovedExpired, maxAge, res.RemovedTemp)
}

// singleRun simulates one ad-hoc configuration and prints the full metric
// set: throughput, latency distribution, utilization, broadcast mix, and
// the per-kind traffic breakdown.
func singleRun(protoName string, nodes int, bandwidth, bcost float64, wlName string, think int64, ops uint64) {
	protos := map[string]core.Protocol{
		"snooping":   core.Snooping,
		"directory":  core.Directory,
		"bash":       core.BASH,
		"bash-pred":  core.BashPredictive,
		"bash-bcast": core.BashAlwaysBroadcast,
		"bash-ucast": core.BashAlwaysUnicast,
	}
	p, ok := protos[strings.ToLower(protoName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "bashsim: unknown protocol %q\n", protoName)
		os.Exit(2)
	}
	sys := core.NewSystem(core.Config{
		Protocol:         p,
		Nodes:            nodes,
		BandwidthMBs:     bandwidth,
		BroadcastCost:    bcost,
		WatchdogInterval: 2_000_000_000,
	})
	var wl core.Workload
	if strings.EqualFold(wlName, "locking") {
		lk := workload.NewLocking(128*nodes, 0)
		if think > 0 {
			lk.ThinkTime = sim.Time(think)
		}
		for i, a := range lk.WarmBlocks() {
			sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
		}
		wl = lk
	} else {
		w := workload.ByName(wlName)
		if w == nil {
			fmt.Fprintf(os.Stderr, "bashsim: unknown workload %q\n", wlName)
			os.Exit(2)
		}
		for i, a := range w.WarmBlocks() {
			sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
		}
		wl = w
	}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return wl })
	warm := ops / 4
	m := sys.Measure(warm, ops)
	st := sys.CacheStats()
	h := sys.LatencyHistogram()

	fmt.Printf("protocol      %s (%d processors, %.0f MB/s, %gx broadcast cost, %s)\n",
		p, nodes, bandwidth, bcost, wlName)
	fmt.Printf("throughput    %.5f ops/ns over %d ops (%d ns simulated)\n", m.Throughput, m.Ops, m.Elapsed)
	fmt.Printf("miss latency  mean %.0f ns, p50 %.0f, p95 %.0f, max %.0f\n",
		m.AvgMissLatency, h.Percentile(0.5), h.Percentile(0.95), h.Max())
	fmt.Printf("utilization   %.1f%% inbound-link average\n", 100*m.Utilization)
	fmt.Printf("request mix   %.1f%% broadcast, %.1f%% unicast (%d reissues)\n",
		100*m.BroadcastFraction, 100*(1-m.BroadcastFraction), st.Reissues)
	fmt.Printf("misses        %d sharing, %d memory, %d upgrades, %d writebacks\n",
		st.SharingMisses, st.MemoryMisses, st.Upgrades, st.Writebacks)
	if st.Predicted > 0 {
		fmt.Printf("prediction    %d predicted, %d first-instance hits (%.0f%%)\n",
			st.Predicted, st.PredictedHits, 100*float64(st.PredictedHits)/float64(st.Predicted))
	}
	fmt.Printf("bash recovery %d retries, %d nacks\n", m.Retries, m.Nacks)
	fmt.Printf("traffic       %.0f B/op (%.0f control)\n", m.BytesPerOp, m.ControlBytesPerOp)
	fmt.Print(sys.Traffic())
}
