// Command bashtest is the stand-alone random protocol tester of the paper's
// Section 3.4: false sharing, random action/check pairs, and widely variable
// message latencies, run for millions of operations with value and SWMR
// checking, reporting transition coverage.
//
// Trials are independent single-threaded simulations, sharded one per
// (protocol, seed) across the run-orchestration layer; reports print in
// protocol-major, seed-minor order no matter how many workers run them, so
// the output is identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cellstore"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/tester"
)

func main() {
	var (
		protoName = flag.String("protocol", "all", "snooping | directory | bash | bash-bcast | bash-ucast | all")
		nodes     = flag.Int("nodes", 8, "processors")
		blocks    = flag.Int("blocks", 12, "falsely shared blocks")
		ops       = flag.Uint64("ops", 200000, "operations per run")
		seedsFlag = flag.String("seeds", "", "comma-separated trial seeds like 11,23,37 (default: four derived seeds)")
		jitter    = flag.Int("jitter", 150, "max extra message latency (ns)")
		retryBuf  = flag.Int("retrybuf", 0, "BASH retry buffer (0 = default)")
		tiny      = flag.Bool("tiny", false, "tiny caches (replacement races)")
		uncovered = flag.Bool("uncovered", false, "print never-fired transitions")
		parallel  = flag.Int("parallel", 0, "trial worker goroutines (0 = one per CPU, 1 = serial)")
		timeout   = flag.Duration("timeout", 0, "abort the test after this long (0 = no limit)")
		progress  = flag.Bool("progress", false, "report per-trial progress on stderr")
		cacheDir  = flag.String("cache-dir", ".cache", "persistent trial-report cache directory")
		noCache   = flag.Bool("no-cache", false, "disable the persistent trial-report cache")
	)
	flag.Parse()

	protos := map[string]core.Protocol{
		"snooping":   core.Snooping,
		"directory":  core.Directory,
		"bash":       core.BASH,
		"bash-bcast": core.BashAlwaysBroadcast,
		"bash-ucast": core.BashAlwaysUnicast,
	}
	var run []core.Protocol
	if *protoName == "all" {
		run = []core.Protocol{core.Snooping, core.Directory, core.BASH,
			core.BashAlwaysBroadcast, core.BashAlwaysUnicast}
	} else {
		p, ok := protos[strings.ToLower(*protoName)]
		if !ok {
			fmt.Fprintf(os.Stderr, "bashtest: unknown protocol %q\n", *protoName)
			os.Exit(2)
		}
		run = []core.Protocol{p}
	}

	// The default seed list reproduces the historical four derived trials;
	// an explicit -seeds list replaces the seeds but keeps the per-index
	// think/bandwidth variation so trials still differ in timing shape.
	var seedList []uint64
	if *seedsFlag != "" {
		var serr error
		if seedList, serr = experiments.ParseSeeds(*seedsFlag); serr == nil {
			serr = experiments.ValidateSeeds(seedList)
		}
		if serr != nil {
			fmt.Fprintf(os.Stderr, "bashtest: -seeds: %v\n", serr)
			os.Exit(2)
		}
	} else {
		for s := 0; s < 4; s++ {
			seedList = append(seedList, uint64(s)*104729+13)
		}
	}

	// One trial per (protocol, seed), protocol-major.
	var cfgs []tester.Config
	for _, p := range run {
		for s, seed := range seedList {
			cfgs = append(cfgs, tester.Config{
				Protocol:     p,
				Nodes:        *nodes,
				Blocks:       *blocks,
				Ops:          *ops,
				MaxThink:     sim.Time(100 + 40*s),
				JitterNs:     *jitter,
				RetryBuffer:  *retryBuf,
				TinyCache:    *tiny,
				Seed:         seed,
				BandwidthMBs: 600 + 300*float64(s%3),
			})
		}
	}

	opt := runner.Options{Workers: *parallel, Timeout: *timeout}
	if *progress {
		opt.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	dir := *cacheDir
	if *noCache {
		dir = ""
	} else if _, cerr := cellstore.Open(dir); cerr != nil {
		// Warn loudly instead of silently running uncached.
		fmt.Fprintf(os.Stderr, "bashtest: trial cache disabled: %v\n", cerr)
		dir = ""
	}
	reps, err := tester.RunConfigsCached(cfgs, opt, dir)
	// On cancellation (e.g. -timeout) the runner still returns every
	// completed report; print them before failing, so violations found by
	// finished trials are not discarded with the error.
	failed := false
	for i, rep := range reps {
		if rep.Ops == 0 {
			continue // trial never ran (canceled before dispatch)
		}
		fmt.Printf("seed %d: %s", i%len(seedList), rep.Summary())
		if *uncovered {
			for _, u := range rep.UncoveredCache {
				fmt.Printf("  uncovered cache: %s\n", u)
			}
			for _, u := range rep.UncoveredMem {
				fmt.Printf("  uncovered mem:   %s\n", u)
			}
		}
		if !rep.OK() {
			failed = true
			for _, v := range rep.Violations {
				fmt.Printf("  VIOLATION: %s\n", v)
			}
			for _, v := range rep.FinalStateErrors {
				fmt.Printf("  FINAL-STATE: %s\n", v)
			}
		}
	}
	if dir != "" {
		if st := cellstore.For(dir); st != nil {
			hits, misses, writes := st.Counters()
			fmt.Fprintf(os.Stderr, "trial cache (%s): %d hits, %d misses, %d written\n",
				dir, hits, misses, writes)
			manifest := cellstore.LoadManifest(dir)
			manifest.Record("bashtest", hits, misses, writes)
			if merr := manifest.Save(dir); merr != nil {
				fmt.Fprintf(os.Stderr, "bashtest: manifest not saved: %v\n", merr)
			}
			fmt.Fprint(os.Stderr, manifest)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bashtest: %v\n", err)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}
