// Queueing reproduces Figure 2's motivation curve: in a closed queueing
// network (N=16, S~exp(1)), mean queueing delay explodes past a knee near
// 75-80% utilization — the reason BASH targets 75% link utilization.
package main

import (
	"fmt"
	"math"

	bashsim "repro"
)

func main() {
	fmt.Println("Closed queue, N=16 customers, service ~ exp(1):")
	fmt.Printf("%-12s%-14s%-16s%-16s\n", "E[Z]", "utilization", "delay (exact)", "delay (simulated)")
	for i := 0; i <= 10; i++ {
		z := 120 * math.Pow(0.02, float64(i)/10)
		a := bashsim.QueueAnalytic(16, z)
		s := bashsim.QueueSimulate(16, z, 40000, 7)
		fmt.Printf("%-12.2f%-14.3f%-16.3f%-16.3f\n",
			z, a.Utilization, a.QueueDelay, s.QueueDelay)
	}
	fmt.Println("\nthe knee: delay is negligible below ~60% utilization and grows")
	fmt.Println("toward N-1 service times as utilization approaches 100%.")
}
