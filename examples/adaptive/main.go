// Adaptive demonstrates the Section 2 mechanism in isolation: the Figure 3
// utilization-counter trace, the policy counter integrating pressure, and
// the LFSR-driven probabilistic broadcast/unicast decision.
package main

import (
	"fmt"

	bashsim "repro"
)

func main() {
	// Figure 3: the signed saturating utilization counter at a 75% target.
	// The implementation scales the paper's +1/-3 by 25 (+25/-75), which
	// preserves the sign the sampler uses.
	fmt.Println("Figure 3 — utilization counter, threshold 75%:")
	u := bashsim.NewUtilizationCounter(75, 0)
	pattern := []bool{true, false, true, true, false, false, true} // 4 of 7 busy
	for i, busy := range pattern {
		u.Tick(busy)
		state := "idle"
		if busy {
			state = "busy"
		}
		fmt.Printf("  cycle %d: link %s  counter %+d\n", i+1, state, u.Value())
	}
	fmt.Printf("  sample: above threshold? %v (4/7 = 57%% < 75%%)\n\n", func() bool {
		v := u.Value() > 0
		u.SampleAndReset()
		return v
	}())

	// The policy counter integrates persistent congestion: each sample above
	// threshold nudges the system toward unicast by 1/255.
	fmt.Println("Policy counter under 200 consecutive over-threshold samples:")
	p := bashsim.NewPolicyCounter(8)
	for i := 1; i <= 200; i++ {
		p.Inc()
		if i%50 == 0 {
			fmt.Printf("  after %3d samples: policy=%3d  P(unicast)=%.2f\n",
				i, p.Value(), p.UnicastProbability())
		}
	}

	// The off-critical-path LFSR makes the per-request decision.
	fmt.Println("\nLFSR-driven decisions at policy=128 (P(unicast) ~ 0.5):")
	l := bashsim.NewLFSR(0xACE1)
	unicasts := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if uint32(l.NextBits(8)) < 128 {
			unicasts++
		}
	}
	fmt.Printf("  %d of %d requests unicast (%.1f%%)\n",
		unicasts, trials, 100*float64(unicasts)/trials)
}
