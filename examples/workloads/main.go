// Workloads compares the three protocols on the paper's five commercial and
// scientific workloads at 1600 MB/s with 4x broadcast cost — the Figure 12
// scenario in which no static protocol choice wins everywhere, but the
// bandwidth adaptive hybrid matches the best choice per workload.
package main

import (
	"fmt"

	bashsim "repro"
)

func main() {
	const nodes = 16
	names := []string{"Apache", "Barnes-Hut", "OLTP", "Slashcode", "SPECjbb"}
	protocols := []bashsim.Protocol{bashsim.BASH, bashsim.Snooping, bashsim.Directory}

	fmt.Println("16 processors, 1600 MB/s endpoint bandwidth, 4x broadcast cost")
	fmt.Printf("%-12s", "workload")
	for _, p := range protocols {
		fmt.Printf("%12s", p)
	}
	fmt.Println("   winner")

	for _, name := range names {
		var thr [3]float64
		for i, p := range protocols {
			sys := bashsim.NewSystem(bashsim.Config{
				Protocol:      p,
				Nodes:         nodes,
				BandwidthMBs:  1600,
				BroadcastCost: 4,
			})
			wl := bashsim.WorkloadByName(name)
			for j, a := range wl.WarmBlocks() {
				sys.PreheatOwned(a, bashsim.NodeID(j%nodes), uint64(j)+1)
			}
			sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return wl })
			thr[i] = sys.Measure(1000, 5000).Throughput
		}
		// Normalize to BASH, the paper's Figure 12 presentation.
		fmt.Printf("%-12s", name)
		for i := range protocols {
			fmt.Printf("%12.3f", thr[i]/thr[0])
		}
		winner := "Snooping"
		if thr[2] > thr[1] {
			winner = "Directory"
		}
		fmt.Printf("   %s (of the static pair)\n", winner)
	}
	fmt.Println("\nexpected: Snooping wins OLTP and Barnes-Hut, Directory wins SPECjbb,")
	fmt.Println("and BASH matches or exceeds the static winner on every workload.")
}
