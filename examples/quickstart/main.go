// Quickstart: build a 16-processor BASH system, run the locking
// microbenchmark, and print throughput, miss latency, link utilization and
// the adaptive mechanism's broadcast mix.
package main

import (
	"fmt"

	bashsim "repro"
)

func main() {
	const nodes = 16
	sys := bashsim.NewSystem(bashsim.Config{
		Protocol:     bashsim.BASH,
		Nodes:        nodes,
		BandwidthMBs: 1600, // the paper's per-processor endpoint bandwidth
	})

	// The locking microbenchmark: every acquire is a cache-to-cache
	// transfer once lock ownership is spread across the machine.
	lk := bashsim.NewLockingWorkload(128*nodes, 0)
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, bashsim.NodeID(i%nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })

	m := sys.Measure(2000, 10000)
	fmt.Println("BASH on the locking microbenchmark (16 processors, 1600 MB/s):")
	fmt.Printf("  throughput:        %.4f lock acquires/ns\n", m.Throughput)
	fmt.Printf("  avg miss latency:  %.0f ns\n", m.AvgMissLatency)
	fmt.Printf("  link utilization:  %.1f%% (target 75%%)\n", 100*m.Utilization)
	fmt.Printf("  broadcast mix:     %.0f%% broadcast / %.0f%% unicast\n",
		100*m.BroadcastFraction, 100*(1-m.BroadcastFraction))
	fmt.Printf("  memory retries:    %d (nacks: %d)\n", m.Retries, m.Nacks)

	st := sys.CacheStats()
	fmt.Printf("  sharing misses:    %d of %d misses\n", st.SharingMisses, st.Misses)
}
