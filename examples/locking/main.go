// Locking sweeps endpoint bandwidth on the locking microbenchmark and
// prints the Figure 1 comparison: Snooping vs. BASH vs. Directory. Watch
// BASH track Directory when bandwidth is scarce, beat both in the
// mid-range, and converge to Snooping when bandwidth is plentiful.
package main

import (
	"fmt"

	bashsim "repro"
)

func main() {
	const nodes = 16
	bandwidths := []float64{200, 400, 800, 1600, 3200, 6400, 12800}
	protocols := []bashsim.Protocol{bashsim.Snooping, bashsim.BASH, bashsim.Directory}

	fmt.Println("Locking microbenchmark, 16 processors (lock acquires/ns):")
	fmt.Printf("%-10s", "MB/s")
	for _, p := range protocols {
		fmt.Printf("%12s", p)
	}
	fmt.Println()

	for _, bw := range bandwidths {
		fmt.Printf("%-10.0f", bw)
		for _, p := range protocols {
			sys := bashsim.NewSystem(bashsim.Config{
				Protocol:     p,
				Nodes:        nodes,
				BandwidthMBs: bw,
			})
			lk := bashsim.NewLockingWorkload(128*nodes, 0)
			for i, a := range lk.WarmBlocks() {
				sys.PreheatOwned(a, bashsim.NodeID(i%nodes), uint64(i)+1)
			}
			sys.AttachWorkload(func(bashsim.NodeID) bashsim.Workload { return lk })
			m := sys.Measure(1000, 5000)
			fmt.Printf("%12.4f", m.Throughput)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected: Directory leads at the top rows, BASH leads the middle,")
	fmt.Println("Snooping and BASH tie at the bottom (plentiful bandwidth).")
}
