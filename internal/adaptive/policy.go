package adaptive

import "repro/internal/sim"

// Paper defaults (Section 2.2): 75% utilization threshold, 512-cycle
// sampling interval, 8-bit policy counter. With these values the mechanism
// swings over its full range in 512*255 ≈ 130,000 cycles of consistent
// pressure, about 1000 cache misses on the target system.
const (
	DefaultThresholdPercent = 75
	DefaultInterval         = sim.Time(512)
	DefaultPolicyBits       = 8
)

// Policy decides, per outgoing request, whether to broadcast. Writebacks
// bypass the policy (always unicast, Section 3.3).
type Policy interface {
	// ShouldBroadcast makes the probabilistic (or static) decision for one
	// request.
	ShouldBroadcast() bool
}

// AlwaysBroadcast is the static snooping-like policy (also the
// always-broadcast ablation of the hybrid engine).
type AlwaysBroadcast struct{}

// ShouldBroadcast always returns true.
func (AlwaysBroadcast) ShouldBroadcast() bool { return true }

// AlwaysUnicast is the static directory-like policy (also the always-unicast
// ablation of the hybrid engine).
type AlwaysUnicast struct{}

// ShouldBroadcast always returns false.
func (AlwaysUnicast) ShouldBroadcast() bool { return false }

// UtilizationSource exposes cumulative link occupancy; network.Channel
// satisfies it.
type UtilizationSource interface {
	BusyNs() float64
}

// Config parameterizes the adaptive mechanism.
type Config struct {
	ThresholdPercent int      // target link utilization (default 75)
	Interval         sim.Time // sampling interval in cycles (default 512)
	PolicyBits       uint     // policy counter width (default 8)
	Seed             uint16   // LFSR seed (default 1)
	// Switch selects the non-probabilistic all-or-nothing ablation the paper
	// reports as unstable (Section 2.1): the policy broadcasts iff the last
	// sample was below threshold, with no integration.
	Switch bool
}

func (c Config) withDefaults() Config {
	if c.ThresholdPercent == 0 {
		c.ThresholdPercent = DefaultThresholdPercent
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.PolicyBits == 0 {
		c.PolicyBits = DefaultPolicyBits
	}
	return c
}

// Adaptive is the per-processor bandwidth adaptive mechanism: it samples a
// local utilization source every Interval cycles, integrates the
// above/below-threshold signal into the policy counter, and decides
// broadcast vs. unicast by comparing the policy counter to LFSR output.
type Adaptive struct {
	cfg           Config
	util          *UtilizationCounter
	policy        *PolicyCounter
	lfsr          *LFSR
	src           UtilizationSource
	lastBusy      float64
	switchUnicast bool // Switch-mode state
	stopped       bool
	kernel        *sim.Kernel
	tickFn        func() // recurring sampler, bound once per kernel

	// Samples counts sampling events (stats/diagnostics).
	Samples uint64
	// Broadcasts and Unicasts count decisions taken.
	Broadcasts uint64
	Unicasts   uint64
}

// New builds the mechanism reading from src. Call Start to arm the sampler.
func New(cfg Config, src UtilizationSource) *Adaptive {
	cfg = cfg.withDefaults()
	return &Adaptive{
		cfg:    cfg,
		util:   NewUtilizationCounter(cfg.ThresholdPercent, 0),
		policy: NewPolicyCounter(cfg.PolicyBits),
		lfsr:   NewLFSR(cfg.Seed),
		src:    src,
	}
}

// Reset re-parameterizes the mechanism for a new run — possibly with a
// different threshold, interval, width or seed — and returns every counter
// to its initial state in place, exactly as if freshly constructed with cfg
// but without allocating (retain-on-Reset, pooled-lifecycle support). The
// utilization source binding is structural and survives (the underlying
// channel is reset in place by the network). Call Start afterwards to
// re-arm the sampler on the (reset) kernel.
func (a *Adaptive) Reset(cfg Config) {
	cfg = cfg.withDefaults()
	a.cfg = cfg
	a.util.Reinit(cfg.ThresholdPercent, 0)
	a.policy.Reinit(cfg.PolicyBits)
	a.lfsr.Reseed(cfg.Seed)
	a.lastBusy = 0
	a.switchUnicast = false
	a.stopped = false
	a.Samples = 0
	a.Broadcasts = 0
	a.Unicasts = 0
}

// Start schedules the recurring sampling event on the kernel. The tick
// closure is created once per Adaptive and reused across Resets, so
// re-arming a pooled system's samplers costs no allocation.
func (a *Adaptive) Start(k *sim.Kernel) {
	if a.kernel != k {
		a.kernel = k
		a.tickFn = func() {
			if a.stopped {
				return
			}
			a.Sample()
			a.kernel.Schedule(a.cfg.Interval, a.tickFn)
		}
	}
	k.Schedule(a.cfg.Interval, a.tickFn)
}

// Stop halts the recurring sampler (quiesce support).
func (a *Adaptive) Stop() { a.stopped = true }

// Sample reads the utilization source, updates the counters, and resets the
// utilization counter, exactly as at the paper's sampling interval.
func (a *Adaptive) Sample() {
	busy := a.src.BusyNs()
	delta := busy - a.lastBusy
	a.lastBusy = busy
	a.util.Observe(delta, float64(a.cfg.Interval))
	above := a.util.SampleAndReset()
	a.Samples++
	if a.cfg.Switch {
		a.switchUnicast = above
		return
	}
	if above {
		a.policy.Inc()
	} else {
		a.policy.Dec()
	}
}

// ShouldBroadcast makes the per-request decision: the processor unicasts if
// the policy counter exceeds a pseudo-random number of the same width.
// (The paper's prose says "unicasts if the policy counter is smaller than
// the random number" but its own example — policy 100 of 255 means unicast
// with probability 100/255 — fixes the intended direction, which we follow.)
func (a *Adaptive) ShouldBroadcast() bool {
	var bcast bool
	if a.cfg.Switch {
		bcast = !a.switchUnicast
	} else {
		r := uint32(a.lfsr.NextBits(a.cfg.PolicyBits))
		bcast = r >= a.policy.Value()
	}
	if bcast {
		a.Broadcasts++
	} else {
		a.Unicasts++
	}
	return bcast
}

// PolicyValue returns the current policy counter value (diagnostics).
func (a *Adaptive) PolicyValue() uint32 { return a.policy.Value() }

// UnicastProbability returns the current probability of unicasting.
func (a *Adaptive) UnicastProbability() float64 {
	if a.cfg.Switch {
		if a.switchUnicast {
			return 1
		}
		return 0
	}
	return a.policy.UnicastProbability()
}
