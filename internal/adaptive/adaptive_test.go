package adaptive

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLFSRFullPeriod(t *testing.T) {
	l := NewLFSR(0xACE1)
	seen := make(map[uint16]bool)
	for i := 0; i < 70000; i++ {
		s := l.Next()
		if s == 0 {
			t.Fatal("LFSR reached the all-zero fixed point")
		}
		if seen[s] && len(seen) != 65535 {
			break
		}
		seen[s] = true
	}
	if len(seen) != 65535 {
		t.Fatalf("period %d, want 65535 (maximal)", len(seen))
	}
}

func TestLFSRZeroSeedReplaced(t *testing.T) {
	l := NewLFSR(0)
	if l.Next() == 0 {
		t.Fatal("zero-seeded LFSR stuck at zero")
	}
}

func TestLFSRByteUniformity(t *testing.T) {
	l := NewLFSR(1)
	var counts [256]int
	const n = 65535
	for i := 0; i < n; i++ {
		counts[l.NextBits(8)]++
	}
	for v, c := range counts {
		// Expect ~256 each over one full period.
		if c < 128 || c > 512 {
			t.Fatalf("byte %d occurred %d times of %d", v, c, n)
		}
	}
}

func TestUtilizationCounterPaperExample(t *testing.T) {
	// Figure 3: 4 busy of 7 cycles at 75% gives the sign of -5 (ours is
	// scaled by 25: -125).
	u := NewUtilizationCounter(75, 0)
	for _, busy := range []bool{true, false, true, true, false, false, true} {
		u.Tick(busy)
	}
	if got := u.Value(); got != -125 {
		t.Fatalf("counter = %d, want -125", got)
	}
	if u.SampleAndReset() {
		t.Fatal("57%% utilization sampled as above a 75%% threshold")
	}
	if u.Value() != 0 {
		t.Fatal("counter not reset after sample")
	}
}

func TestUtilizationCounterZeroMeanAtThreshold(t *testing.T) {
	// Exactly 3 busy of 4 at 75%: counter ends at zero.
	u := NewUtilizationCounter(75, 0)
	for _, busy := range []bool{true, true, true, false} {
		u.Tick(busy)
	}
	if u.Value() != 0 {
		t.Fatalf("counter = %d at exactly the threshold", u.Value())
	}
}

// TestObserveEquivalence: the analytic window observation has the same sign
// as the equivalent cycle-by-cycle ticks, for arbitrary busy patterns.
func TestObserveEquivalence(t *testing.T) {
	f := func(pattern []bool, thr uint8) bool {
		threshold := int(thr)%98 + 1
		if len(pattern) == 0 {
			return true
		}
		ticked := NewUtilizationCounter(threshold, 0)
		busy := 0
		for _, b := range pattern {
			ticked.Tick(b)
			if b {
				busy++
			}
		}
		observed := NewUtilizationCounter(threshold, 0)
		observed.Observe(float64(busy), float64(len(pattern)))
		return ticked.Value() == observed.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationCounterSaturates(t *testing.T) {
	u := NewUtilizationCounter(75, 100)
	for i := 0; i < 1000; i++ {
		u.Tick(false)
	}
	if u.Value() != -100 {
		t.Fatalf("counter = %d, want saturation at -100", u.Value())
	}
	for i := 0; i < 1000; i++ {
		u.Tick(true)
	}
	if u.Value() != 100 {
		t.Fatalf("counter = %d, want saturation at +100", u.Value())
	}
}

func TestPolicyCounterSaturation(t *testing.T) {
	p := NewPolicyCounter(8)
	for i := 0; i < 300; i++ {
		p.Inc()
	}
	if p.Value() != 255 {
		t.Fatalf("value = %d, want 255", p.Value())
	}
	for i := 0; i < 300; i++ {
		p.Dec()
	}
	if p.Value() != 0 {
		t.Fatalf("value = %d, want 0", p.Value())
	}
}

func TestPolicyCounterPaperExample(t *testing.T) {
	// "an 8-bit policy counter with the value of 100 implies that a request
	// should be unicast with probability of 100/255 or 39%".
	p := NewPolicyCounter(8)
	for i := 0; i < 100; i++ {
		p.Inc()
	}
	if got := p.UnicastProbability(); got < 0.38 || got > 0.40 {
		t.Fatalf("P(unicast) = %.3f, want ~0.39", got)
	}
}

func TestAdaptiveFullSwing(t *testing.T) {
	// Under persistent over-threshold pressure the mechanism swings from
	// always-broadcast to (almost) always-unicast in 255 samples — the
	// paper's 512*255 ≈ 130k cycles.
	src := &fakeSource{}
	a := New(Config{Seed: 9}, src)
	for i := 0; i < 255; i++ {
		src.busy += 512 // fully busy window
		a.Sample()
	}
	if a.PolicyValue() != 255 {
		t.Fatalf("policy = %d after 255 saturating samples", a.PolicyValue())
	}
	uni := 0
	for i := 0; i < 1000; i++ {
		if !a.ShouldBroadcast() {
			uni++
		}
	}
	if uni < 950 {
		t.Fatalf("only %d/1000 unicasts at saturated policy", uni)
	}
	// And back down under idle links.
	for i := 0; i < 255; i++ {
		a.Sample() // zero busy delta
	}
	if a.PolicyValue() != 0 {
		t.Fatalf("policy = %d after idle samples", a.PolicyValue())
	}
	bc := 0
	for i := 0; i < 1000; i++ {
		if a.ShouldBroadcast() {
			bc++
		}
	}
	if bc != 1000 {
		t.Fatalf("%d/1000 broadcasts at policy 0", bc)
	}
}

func TestAdaptiveProbabilityMatchesPolicy(t *testing.T) {
	src := &fakeSource{}
	a := New(Config{Seed: 5}, src)
	// Drive policy to ~128.
	for i := 0; i < 128; i++ {
		src.busy += 512
		a.Sample()
	}
	uni := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if !a.ShouldBroadcast() {
			uni++
		}
	}
	got := float64(uni) / n
	if got < 0.45 || got > 0.55 {
		t.Fatalf("P(unicast) = %.3f at policy 128, want ~0.5", got)
	}
}

func TestSwitchModeIsAllOrNothing(t *testing.T) {
	src := &fakeSource{}
	a := New(Config{Seed: 5, Switch: true}, src)
	src.busy += 512
	a.Sample() // above threshold -> all unicast
	for i := 0; i < 50; i++ {
		if a.ShouldBroadcast() {
			t.Fatal("switch mode broadcast while above threshold")
		}
	}
	a.Sample() // idle window -> all broadcast
	for i := 0; i < 50; i++ {
		if !a.ShouldBroadcast() {
			t.Fatal("switch mode unicast while below threshold")
		}
	}
}

func TestAdaptiveSamplerScheduling(t *testing.T) {
	k := sim.NewKernel()
	src := &fakeSource{}
	a := New(Config{Interval: 512, Seed: 2}, src)
	a.Start(k)
	k.Run(512 * 10)
	if a.Samples != 10 {
		t.Fatalf("samples = %d after 10 intervals", a.Samples)
	}
	a.Stop()
	k.Drain()
	if a.Samples != 10 {
		t.Fatalf("sampler kept running after Stop: %d", a.Samples)
	}
}

type fakeSource struct{ busy float64 }

func (f *fakeSource) BusyNs() float64 { return f.busy }
