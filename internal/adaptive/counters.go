package adaptive

// UtilizationCounter is the signed saturating counter of Section 2.2 and
// Figure 3. Each cycle it is incremented when the link is busy and
// decremented when idle, with magnitudes chosen so the counter is zero-mean
// exactly at the target utilization: +(100-T) per busy cycle and -T per idle
// cycle for a threshold of T percent. At the paper's 75% threshold this is
// the +1/-3 scheme of Figure 3 scaled by 25, which preserves the sign — the
// only property the sampler uses.
type UtilizationCounter struct {
	threshold int   // percent, e.g. 75
	limit     int64 // saturation magnitude
	value     int64
}

// NewUtilizationCounter returns a counter for a threshold in (0, 100).
// limit bounds the magnitude (saturation); 0 selects a generous default.
func NewUtilizationCounter(thresholdPercent int, limit int64) *UtilizationCounter {
	u := &UtilizationCounter{}
	u.Reinit(thresholdPercent, limit)
	return u
}

// Reinit re-parameterizes the counter in place, exactly as if freshly
// constructed (pooled-lifecycle support: no allocation on Reset).
func (u *UtilizationCounter) Reinit(thresholdPercent int, limit int64) {
	if thresholdPercent <= 0 || thresholdPercent >= 100 {
		panic("adaptive: threshold must be in (0,100)")
	}
	if limit <= 0 {
		limit = 1 << 20
	}
	u.threshold = thresholdPercent
	u.limit = limit
	u.value = 0
}

// Threshold returns the target utilization in percent.
func (u *UtilizationCounter) Threshold() int { return u.threshold }

// Tick records one cycle of link observation.
func (u *UtilizationCounter) Tick(busy bool) {
	if busy {
		u.add(int64(100 - u.threshold))
	} else {
		u.add(-int64(u.threshold))
	}
}

// Observe records a whole sampling window analytically: busyNs of the
// windowNs were occupied. This is exactly equivalent to windowNs Tick calls
// with the corresponding busy fraction (the event-driven simulator does not
// tick every cycle).
func (u *UtilizationCounter) Observe(busyNs, windowNs float64) {
	if windowNs <= 0 {
		return
	}
	if busyNs > windowNs {
		busyNs = windowNs
	}
	delta := 100*busyNs - float64(u.threshold)*windowNs
	u.add(int64(delta))
}

// Value returns the current counter value.
func (u *UtilizationCounter) Value() int64 { return u.value }

// SampleAndReset returns whether utilization exceeded the threshold over the
// window (counter sign) and resets the counter to zero, as the paper's
// mechanism does at each sampling interval.
func (u *UtilizationCounter) SampleAndReset() (aboveThreshold bool) {
	above := u.value > 0
	u.value = 0
	return above
}

func (u *UtilizationCounter) add(d int64) {
	u.value += d
	if u.value > u.limit {
		u.value = u.limit
	}
	if u.value < -u.limit {
		u.value = -u.limit
	}
}

// PolicyCounter is the unsigned saturating counter of Section 2.2. A larger
// value corresponds to a lower probability of broadcast; the paper uses 8
// bits. The width is configurable for the ablation studies.
type PolicyCounter struct {
	value uint32
	max   uint32
	bits  uint
}

// NewPolicyCounter returns a counter of the given bit width (1..16),
// starting at 0 (always broadcast — the snooping-optimist initial state).
func NewPolicyCounter(bits uint) *PolicyCounter {
	p := &PolicyCounter{}
	p.Reinit(bits)
	return p
}

// Reinit re-parameterizes the counter in place, exactly as if freshly
// constructed (pooled-lifecycle support: no allocation on Reset).
func (p *PolicyCounter) Reinit(bits uint) {
	if bits == 0 || bits > 16 {
		panic("adaptive: policy counter width must be 1..16")
	}
	p.value = 0
	p.max = 1<<bits - 1
	p.bits = bits
}

// Bits returns the counter width.
func (p *PolicyCounter) Bits() uint { return p.bits }

// Max returns the saturation value (2^bits - 1).
func (p *PolicyCounter) Max() uint32 { return p.max }

// Value returns the current value.
func (p *PolicyCounter) Value() uint32 { return p.value }

// Inc saturating-increments (utilization above threshold: unicast more).
func (p *PolicyCounter) Inc() {
	if p.value < p.max {
		p.value++
	}
}

// Dec saturating-decrements (utilization below threshold: broadcast more).
func (p *PolicyCounter) Dec() {
	if p.value > 0 {
		p.value--
	}
}

// UnicastProbability returns the fraction of requests that will be unicast.
func (p *PolicyCounter) UnicastProbability() float64 {
	return float64(p.value) / float64(p.max+1)
}
