// Package adaptive implements the bandwidth adaptive mechanism of Section 2
// of the paper: a per-processor estimate of interconnect utilization (signed
// saturating utilization counter), an unsigned saturating policy counter that
// integrates the estimate, and a probabilistic broadcast/unicast decision
// driven by a linear feedback shift register.
package adaptive

// LFSR is a 16-bit Galois linear feedback shift register, the hardware
// pseudo-random number generator the paper proposes (citing Golomb) for the
// off-critical-path broadcast/unicast decision. The taps (0xB400:
// x^16 + x^14 + x^13 + x^11 + 1) give a maximal period of 65535.
type LFSR struct {
	state uint16
}

// NewLFSR returns an LFSR seeded with the given non-zero value (a zero seed
// is replaced with 1, since the all-zero state is a fixed point).
func NewLFSR(seed uint16) *LFSR {
	l := &LFSR{}
	l.Reseed(seed)
	return l
}

// Reseed restarts the register from the given seed, exactly as if freshly
// constructed (a zero seed is again replaced with 1).
func (l *LFSR) Reseed(seed uint16) {
	if seed == 0 {
		seed = 1
	}
	l.state = seed
}

// Next advances the register one step and returns the new state.
func (l *LFSR) Next() uint16 {
	lsb := l.state & 1
	l.state >>= 1
	if lsb != 0 {
		l.state ^= 0xB400
	}
	return l.state
}

// NextBits advances the register n times and returns the low n bits of the
// final state (n <= 16). The policy comparison uses as many bits as the
// policy counter is wide.
func (l *LFSR) NextBits(n uint) uint16 {
	if n > 16 {
		panic("adaptive: LFSR width exceeds 16 bits")
	}
	var s uint16
	for i := uint(0); i < n; i++ {
		s = l.Next()
	}
	return s & (1<<n - 1)
}
