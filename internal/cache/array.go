// Package cache models the finite L2 cache array of the target system:
// set-associative residency tracking with LRU replacement. Coherence state
// lives in the protocol controllers; the array answers "is this block
// resident" and "which block must be evicted to make room".
//
// The paper's target configuration is a 4 MB, 4-way set-associative unified
// L2 with 64-byte blocks (Section 5.2).
package cache

import "fmt"

// Addr is a block (line) address: the byte address divided by the block size.
type Addr uint64

// Config sizes the array.
type Config struct {
	Sets int // number of sets (power of two recommended, not required)
	Ways int // associativity
}

// DefaultConfig is the paper's 4 MB / 4-way / 64 B L2: 16384 sets x 4 ways.
func DefaultConfig() Config { return Config{Sets: 16384, Ways: 4} }

// Lines returns total capacity in blocks.
func (c Config) Lines() int { return c.Sets * c.Ways }

type way struct {
	addr  Addr
	valid bool
	lru   uint64 // larger = more recently used
}

// Array is a set-associative residency map. The zero value is unusable; use
// New.
//
// Sets materialize lazily on first insert: the paper's 16384-set
// configuration is 1.5 MB of way state per node, and a short sweep cell
// touches a small fraction of it, so eagerly zeroing every set dominated
// the per-run setup cost of fleet-style experiment sweeps.
type Array struct {
	cfg   Config
	sets  [][]way // nil per entry until first insert into that set
	clock uint64
	size  int
}

// New builds an array for the configuration.
func New(cfg Config) *Array {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic(fmt.Sprintf("cache: invalid config %+v", cfg))
	}
	return &Array{cfg: cfg, sets: make([][]way, cfg.Sets)}
}

// Config returns the array geometry.
func (a *Array) Config() Config { return a.cfg }

// Reset empties the array without releasing its storage: already
// materialized sets are zeroed in place rather than dropped, so a reused
// array skips both the top-level table allocation and the per-set
// materialization cost for sets the previous run touched. Behaviour after
// Reset is indistinguishable from a fresh array (a zeroed way is invalid,
// exactly like a way in a never-materialized set).
func (a *Array) Reset() {
	for _, s := range a.sets {
		for i := range s {
			s[i] = way{}
		}
	}
	a.clock = 0
	a.size = 0
}

// Len returns the number of resident blocks.
func (a *Array) Len() int { return a.size }

// set returns the (possibly nil) set for addr; read paths range over it
// directly, since a nil set holds no blocks.
func (a *Array) set(addr Addr) []way {
	return a.sets[int(addr%Addr(a.cfg.Sets))]
}

// materialize returns the set for addr, allocating its ways on first use.
func (a *Array) materialize(addr Addr) []way {
	i := int(addr % Addr(a.cfg.Sets))
	if a.sets[i] == nil {
		a.sets[i] = make([]way, a.cfg.Ways)
	}
	return a.sets[i]
}

// Contains reports whether the block is resident, without touching LRU state.
func (a *Array) Contains(addr Addr) bool {
	s := a.set(addr)
	for i := range s {
		if s[i].valid && s[i].addr == addr {
			return true
		}
	}
	return false
}

// Touch marks the block most recently used and reports whether it was
// resident.
func (a *Array) Touch(addr Addr) bool {
	s := a.set(addr)
	for i := range s {
		if s[i].valid && s[i].addr == addr {
			a.clock++
			s[i].lru = a.clock
			return true
		}
	}
	return false
}

// Insert makes the block resident, evicting the least recently used
// non-pinned way if the set is full. pinned may be nil. It returns the
// evicted block address and whether an eviction happened. Inserting a block
// that is already resident only touches it. If every way in the set is
// pinned, Insert reports failure with ok=false and does not insert.
func (a *Array) Insert(addr Addr, pinned func(Addr) bool) (victim Addr, evicted, ok bool) {
	s := a.materialize(addr)
	a.clock++
	// Already resident?
	for i := range s {
		if s[i].valid && s[i].addr == addr {
			s[i].lru = a.clock
			return 0, false, true
		}
	}
	// Free way?
	for i := range s {
		if !s[i].valid {
			s[i] = way{addr: addr, valid: true, lru: a.clock}
			a.size++
			return 0, false, true
		}
	}
	// Evict LRU among non-pinned ways.
	vi := -1
	for i := range s {
		if pinned != nil && pinned(s[i].addr) {
			continue
		}
		if vi == -1 || s[i].lru < s[vi].lru {
			vi = i
		}
	}
	if vi == -1 {
		return 0, false, false
	}
	victim = s[vi].addr
	s[vi] = way{addr: addr, valid: true, lru: a.clock}
	return victim, true, true
}

// Remove makes the block non-resident (silent drop or invalidation) and
// reports whether it was resident.
func (a *Array) Remove(addr Addr) bool {
	s := a.set(addr)
	for i := range s {
		if s[i].valid && s[i].addr == addr {
			s[i].valid = false
			a.size--
			return true
		}
	}
	return false
}
