package cache

import (
	"testing"
	"testing/quick"
)

func TestInsertAndContains(t *testing.T) {
	a := New(Config{Sets: 4, Ways: 2})
	if a.Contains(5) {
		t.Fatal("empty array contains block")
	}
	if _, ev, ok := a.Insert(5, nil); ev || !ok {
		t.Fatal("first insert evicted or failed")
	}
	if !a.Contains(5) {
		t.Fatal("inserted block not resident")
	}
	if a.Len() != 1 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	a := New(Config{Sets: 1, Ways: 2})
	a.Insert(1, nil)
	a.Insert(2, nil)
	a.Touch(1) // 2 becomes LRU
	victim, ev, ok := a.Insert(3, nil)
	if !ok || !ev || victim != 2 {
		t.Fatalf("victim = %d (evicted=%v), want 2", victim, ev)
	}
	if a.Contains(2) || !a.Contains(1) || !a.Contains(3) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestInsertExistingTouches(t *testing.T) {
	a := New(Config{Sets: 1, Ways: 2})
	a.Insert(1, nil)
	a.Insert(2, nil)
	// Reinserting 1 must touch it, making 2 the victim.
	if _, ev, _ := a.Insert(1, nil); ev {
		t.Fatal("reinsert evicted")
	}
	victim, _, _ := a.Insert(3, nil)
	if victim != 2 {
		t.Fatalf("victim = %d, want 2", victim)
	}
}

func TestPinnedBlocksSurvive(t *testing.T) {
	a := New(Config{Sets: 1, Ways: 2})
	a.Insert(1, nil)
	a.Insert(2, nil)
	pinned := func(x Addr) bool { return x == 2 } // 2 is in flight
	victim, ev, ok := a.Insert(3, pinned)
	if !ok || !ev || victim != 1 {
		t.Fatalf("victim = %d, want 1 (2 pinned)", victim)
	}
	// All pinned: insert must fail.
	a2 := New(Config{Sets: 1, Ways: 1})
	a2.Insert(9, nil)
	if _, _, ok := a2.Insert(10, func(Addr) bool { return true }); ok {
		t.Fatal("insert succeeded with every way pinned")
	}
}

func TestRemove(t *testing.T) {
	a := New(Config{Sets: 2, Ways: 1})
	a.Insert(4, nil)
	if !a.Remove(4) {
		t.Fatal("remove failed")
	}
	if a.Remove(4) {
		t.Fatal("double remove succeeded")
	}
	if a.Len() != 0 {
		t.Fatalf("Len = %d", a.Len())
	}
}

// TestCapacityInvariant: residency never exceeds capacity and a block maps
// to exactly one set, under arbitrary insert/remove sequences.
func TestCapacityInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := Config{Sets: 8, Ways: 2}
		a := New(cfg)
		resident := map[Addr]bool{}
		for _, op := range ops {
			addr := Addr(op % 64)
			if op&0x8000 != 0 {
				if a.Remove(addr) != resident[addr] {
					return false
				}
				delete(resident, addr)
				continue
			}
			victim, ev, ok := a.Insert(addr, nil)
			if !ok {
				return false
			}
			if ev {
				if !resident[victim] {
					return false // evicted a non-resident block
				}
				if victim%Addr(cfg.Sets) != addr%Addr(cfg.Sets) {
					return false // victim from the wrong set
				}
				delete(resident, victim)
			}
			resident[addr] = true
			if a.Len() != len(resident) || a.Len() > cfg.Lines() {
				return false
			}
		}
		for b := range resident {
			if !a.Contains(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigGeometry(t *testing.T) {
	// 4 MB / 64 B blocks / 4 ways = 16384 sets.
	c := DefaultConfig()
	if c.Lines()*64 != 4<<20 {
		t.Fatalf("default capacity = %d bytes, want 4 MiB", c.Lines()*64)
	}
}
