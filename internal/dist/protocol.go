// Package dist is the distributed sweep backend: a coordinator/worker
// subsystem that fans simulation cells across processes and machines. It
// implements runner.Backend over a lease-based job protocol (JSON over
// HTTP; specs and results are opaque gob payloads), so any sweep the
// in-process goroutine pool can run, a fleet of worker processes can run
// with byte-identical output.
//
// Protocol (all endpoints under one HTTP mux, see Coordinator.Handler):
//
//	POST /dist/lease     {worker, kinds}        -> one job + lease TTL, or 204
//	POST /dist/heartbeat {worker, job_ids}      -> extends the jobs' leases
//	POST /dist/result    {worker, job_id, ...}  -> completes (or fails) a job
//	GET  /dist/status                           -> batch progress + live workers
//
// A worker leases one job at a time per slot, heartbeats while executing,
// and posts the gob-encoded result. A lease that expires — worker crashed,
// hung, or partitioned — puts the job back in the queue for another worker
// (bounded by MaxLeaseExpiries, so a job cannot ping-pong forever between
// dying workers). Worker-side panics are captured with their stack and
// surface on the coordinator as *runner.PanicError, mirroring the
// in-process pool. Results are folded in job-index order once the batch
// drains, so which worker produced which cell never influences output.
//
// Determinism and placement-independence lean on the content-addressed cell
// store (internal/cellstore): every job carries its store Key, workers
// publish finished cells into the shared store, and every cell is a pure
// function of its spec — so a re-run after any interruption serves
// already-published cells from the store instead of re-simulating, and it
// does not matter which worker (or how many) executed what.
//
// The protocol trusts its network: coordinator and workers are assumed to
// run the same binary (cache keys embed the binary fingerprint, so
// mismatched builds waste work but never corrupt results) on a private
// cluster; there is no authentication.
package dist

import "time"

// Wire messages. Byte slices ([]byte) travel base64-encoded by
// encoding/json; specs and results are gob payloads produced by the
// registered executors and their callers.

// leaseRequest asks for one job executable by any of the worker's kinds.
type leaseRequest struct {
	Worker string   `json:"worker"`
	Kinds  []string `json:"kinds"`
}

// leaseResponse grants one job. JobID is never zero; a 204 response (no
// body) means no work is available right now.
type leaseResponse struct {
	JobID       int64  `json:"job_id"`
	Kind        string `json:"kind"`
	Key         string `json:"key"`
	Label       string `json:"label"`
	Spec        []byte `json:"spec"`
	LeaseMillis int64  `json:"lease_millis"`
}

// heartbeatRequest extends the leases of the worker's in-flight jobs.
type heartbeatRequest struct {
	Worker string  `json:"worker"`
	JobIDs []int64 `json:"job_ids"`
}

// heartbeatResponse tells the worker whether a batch is active (an idle
// worker may poll more slowly when not).
type heartbeatResponse struct {
	Active bool `json:"active"`
}

// resultRequest completes one leased job. Exactly one of Result, Error, or
// Panic is meaningful: Result carries the serialized value on success,
// Error a worker-side failure message, and Panic (with Stack) a captured
// executor panic.
type resultRequest struct {
	Worker string `json:"worker"`
	JobID  int64  `json:"job_id"`
	Result []byte `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
	Panic  string `json:"panic,omitempty"`
	Stack  []byte `json:"stack,omitempty"`
}

// statusResponse reports batch progress for dashboards and the CLI's
// aggregated progress line.
type statusResponse struct {
	Active  bool `json:"active"`
	Done    int  `json:"done"`
	Total   int  `json:"total"`
	Workers int  `json:"workers"`
}

// Stats are the coordinator's lifetime counters.
type Stats struct {
	// Dispatched counts granted leases (re-dispatch after an expiry counts
	// again); Completed counts successful results, Failed jobs that ended
	// in an error or exhausted their lease budget, and Reassigned leases
	// that expired and were requeued.
	Dispatched, Completed, Failed, Reassigned uint64
}

// workerTTL is how long after its last contact a worker still counts as
// alive in status reports, expressed in lease TTLs.
const workerTTLFactor = 3

// defaults for CoordinatorOptions.
const (
	defaultLeaseTTL         = 15 * time.Second
	defaultMaxLeaseExpiries = 3
)
