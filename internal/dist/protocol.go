// Package dist is the distributed sweep backend: a coordinator/worker
// subsystem that fans simulation cells across processes and machines. It
// implements runner.Backend over a lease-based job protocol (specs and
// results are opaque gob payloads), so any sweep the in-process goroutine
// pool can run, a fleet of worker processes can run with byte-identical
// output.
//
// Protocol actions (all endpoints under one HTTP mux, see
// Coordinator.Handler):
//
//	POST /dist/lease     {worker, kinds, max}    -> a batch of jobs + lease TTL, or 204
//	POST /dist/heartbeat {worker, job_ids}       -> extends the jobs' leases; replies with sweep progress
//	POST /dist/result    {worker, job_id, ...}   -> completes (or fails) one job; reply may refill the batch
//	POST /dist/advert    {worker, gen, bits...}  -> records the worker's cell-store indicator
//	POST /dist/fetch     {worker, key}           -> raw cell entry bytes from any holder, or found=false
//	POST /dist/submit    {exp, scale, priority}  -> queues one named sweep on a sweep-service coordinator
//	POST /dist/wire      Upgrade: bashsim-wire/3 -> 101; the connection becomes binary frames
//	GET  /dist/status                            -> batch progress, live workers, lifetime counters
//
// Submissions also travel the binary wire as a SUBMIT/SWEEP frame pair (see
// submit.go); a coordinator that is not running as a sweep service answers
// either plane with an in-band error rather than queueing anything.
//
// The same actions run over two transports behind one state machine. By
// default a worker upgrades to the binary framed wire (internal/dist/wire):
// one persistent connection, every slot's request/reply pairs multiplexed
// by stream id, payloads encoded by codec.go and compressed against a
// per-connection dictionary — no per-action connection setup, no JSON
// envelope, no base64. A coordinator that refuses the upgrade (an older
// build, or CoordinatorOptions.Wire = "http") leaves the worker on the
// original JSON-over-HTTP path; WorkerOptions.Wire forces either. Dropped
// binary connections redial with capped exponential backoff plus jitter,
// and leases lost in the gap reassign through the lease-TTL machinery like
// any other worker death.
//
// A worker leases a batch of up to CoordinatorOptions.LeaseBatch jobs per
// slot (adaptive: grants shrink to ceil(pending/liveWorkers) near queue
// exhaustion, so the tail of a sweep spreads across the fleet instead of
// piling onto one straggler), heartbeats every in-flight job while
// executing, and streams each job's gob-encoded result back the moment it
// completes — one slow cell never holds the rest of its batch's results
// hostage. A result post doubles as a lease request: its reply can carry
// refill jobs, so a saturated worker needs no further /dist/lease
// round-trips for the life of a sweep. Each job's lease is individual: a
// lease that expires — worker crashed, hung, or partitioned — puts that job
// (and only that job; results already streamed back stay completed) back in
// the queue for another worker, bounded by MaxLeaseExpiries so a job cannot
// ping-pong forever between dying workers. Worker-side panics are captured
// with their stack and surface on the coordinator as *runner.PanicError,
// mirroring the in-process pool. Results are folded in job-index order once
// the batch drains, so which worker produced which cell never influences
// output.
//
// Determinism and placement-independence lean on the content-addressed cell
// store (internal/cellstore): every job carries its store Key, workers
// publish finished cells into the shared store, and every cell is a pure
// function of its spec — so a re-run after any interruption serves
// already-published cells from the store instead of re-simulating, and it
// does not matter which worker (or how many) executed what.
//
// The peer cell exchange (protocol v4) makes that store fleet-wide without
// shared disk. Workers with a store periodically advertise a Bloom-filter
// indicator over their keys (ADVERT frames / POST /dist/advert, deltas
// preferred, paced against WorkerOptions.AdvertBudget); the coordinator
// keeps a per-worker indicator table and marks each granted job with a
// likely-holder hint. Before simulating a hinted cell a worker issues a
// FETCH; the coordinator serves it from its own store (CacheDir) or relays
// the FETCH down an advertised holder's live wire connection, streaming the
// raw entry bytes back as a CELL frame. The requester verifies the entry —
// envelope format and exact key, which embeds the binary fingerprint —
// before installing and using it (cellstore.DecodeRaw, fail closed), so an
// indicator false positive, a stale advert, or a hostile peer degrades to
// the pre-exchange behavior (simulate locally), never to a wrong result.
//
// Protocol v5 adds deterministic placement and a direct worker-to-worker
// data path on top of the exchange. The coordinator keeps a consistent-hash
// ring (ring.go) over the registered workers and prefers granting each job
// to the worker that owns its Key, so in the steady state cells are
// published where fetches will look for them. Workers may serve their store
// to peers directly: WorkerOptions.PeerAddr starts a listener speaking the
// same framed wire (HELLO-authenticated, FETCH→CELL and PUT→PUT-ACK only),
// and the address is advertised at registration — in the HELLO frame on
// binary connections, in the lease request over HTTP. Grants then carry
// each hinted job's holder peer addresses (Holders, freshest advertisement
// first) and the ring owners' addresses (Owners, the replication targets a
// publisher pushes finished cells to). A worker resolves a hinted key
// direct→relay→simulate: dial a holder and FETCH, fall back to the
// coordinator relay on connect failure, timeout, or verification failure,
// and finally simulate locally — the TSV is byte-identical on every path,
// the paths differ only in bandwidth. With placement converged,
// fetch_relayed stays ~0 and the coordinator is off the data path.
//
// Coordinator and workers are assumed to run the same binary (cache keys
// embed the binary fingerprint, so mismatched builds waste work but never
// corrupt results). The protocol optionally authenticates with a shared
// secret (CoordinatorOptions.Secret / WorkerOptions.Secret, compared in
// constant time): HTTP requests carry it in the X-Bashsim-Secret header
// and get 401 on a mismatch, binary connections open with a HELLO frame
// carrying its SHA-256 digest and get a terminal auth-flagged ERROR frame;
// either way the worker exits with the same descriptive *AuthError instead
// of retrying. Without a secret the protocol trusts its network; run it on
// a private cluster.
package dist

import "time"

// Wire messages. Byte slices ([]byte) travel base64-encoded by
// encoding/json; specs and results are gob payloads produced by the
// registered executors and their callers.

// secretHeader carries the optional shared secret on every request.
const secretHeader = "X-Bashsim-Secret"

// leaseRequest asks for a batch of jobs executable by any of the worker's
// kinds. Max, when positive, caps the batch below the coordinator's
// configured LeaseBatch (a worker with bounded queue memory); zero accepts
// the coordinator's default.
type leaseRequest struct {
	Worker string   `json:"worker"`
	Kinds  []string `json:"kinds"`
	Max    int      `json:"max,omitempty"`
	// Peer is the worker's peer listener address, registered with the
	// coordinator for consistent-hash placement and direct fetch routing
	// ("" when the worker serves no peers).
	Peer string `json:"peer,omitempty"`
}

// leasedJob is one granted job inside a lease or refill reply. Held is the
// coordinator's likely-holder hint: true when the job's Key matched the
// coordinator's own store or some other worker's advertised indicator, so
// the worker should try a FETCH before simulating; false means the fleet is
// cold for this key and the worker skips the round-trip (bandwidth-aware
// cache selection — never fetch what nobody claims to hold).
type leasedJob struct {
	JobID int64  `json:"job_id"`
	Kind  string `json:"kind"`
	Key   string `json:"key"`
	Label string `json:"label"`
	Spec  []byte `json:"spec"`
	Held  bool   `json:"held,omitempty"`
	// Holders lists peer listener addresses of advertised holders (freshest
	// advertisement first, excluding the leased worker) for a Held job: the
	// worker tries a direct FETCH against each before falling back to the
	// coordinator relay. Empty when no holder serves peers.
	Holders []string `json:"holders,omitempty"`
	// Owners lists the peer addresses of the job Key's consistent-hash ring
	// owners (excluding the leased worker): after publishing the finished
	// cell the worker best-effort PUTs it to these, converging placement
	// even when a non-owner ran the job.
	Owners []string `json:"owners,omitempty"`
}

// leaseResponse grants a batch of jobs (each with its own lease, all
// expiring LeaseMillis from the grant). A 204 response (no body) means no
// work is available right now. Done/Total report sweep-wide progress so
// worker logs can show fleet state.
type leaseResponse struct {
	Jobs        []leasedJob `json:"jobs"`
	LeaseMillis int64       `json:"lease_millis"`
	Done        int         `json:"done"`
	Total       int         `json:"total"`
}

// heartbeatRequest extends the leases of the worker's in-flight jobs —
// every job it holds, queued or executing.
type heartbeatRequest struct {
	Worker string  `json:"worker"`
	JobIDs []int64 `json:"job_ids"`
}

// heartbeatResponse tells the worker whether a batch is active (an idle
// worker may poll more slowly when not) and how far the sweep has
// progressed, so worker logs show fleet-wide progress between their own
// completions.
type heartbeatResponse struct {
	Active bool `json:"active"`
	Done   int  `json:"done"`
	Total  int  `json:"total"`
}

// resultRequest completes one leased job. Exactly one of Result, Error, or
// Panic is meaningful: Result carries the serialized value on success,
// Error a worker-side failure message, and Panic (with Stack) a captured
// executor panic. Refill, when positive, asks the coordinator to grant up
// to that many replacement jobs (matching Kinds) in the reply — a result
// post doubles as a lease request, keeping a saturated worker off the
// /dist/lease endpoint entirely.
type resultRequest struct {
	Worker string   `json:"worker"`
	JobID  int64    `json:"job_id"`
	Result []byte   `json:"result,omitempty"`
	Error  string   `json:"error,omitempty"`
	Panic  string   `json:"panic,omitempty"`
	Stack  []byte   `json:"stack,omitempty"`
	Kinds  []string `json:"kinds,omitempty"`
	Refill int      `json:"refill,omitempty"`
	// Fetch-path delta counters since the worker's last report: cells
	// fetched directly from a peer, direct attempts that fell back to the
	// coordinator relay, and replication PUTs pushed to ring owners. The
	// coordinator folds them into its exchange totals so /dist/status sees
	// traffic that never touched its socket. Advisory: deltas lost to a
	// result retry undercount, never double-count.
	FetchDirect   uint64 `json:"fetch_direct,omitempty"`
	FetchFallback uint64 `json:"fetch_fallback,omitempty"`
	PeerPuts      uint64 `json:"peer_puts,omitempty"`
}

// resultResponse acknowledges a result and, when the worker asked for a
// refill and pending work matched, grants replacement jobs.
type resultResponse struct {
	Jobs        []leasedJob `json:"jobs,omitempty"`
	LeaseMillis int64       `json:"lease_millis,omitempty"`
	Done        int         `json:"done"`
	Total       int         `json:"total"`
}

// advertRequest is one worker's cell-store indicator advertisement: a
// Bloom filter over its store keys (see indicator.go). Gen increments per
// send from that worker; a delta (Full=false) carries the XOR of the new
// and previous bit arrays and applies only when geometry matches and Gen is
// exactly the successor of the last applied generation — anything else
// makes the coordinator ask for a full resend (HTTP) or simply awaits one
// (binary connections always open with a full send, and frames on one
// connection cannot reorder).
type advertRequest struct {
	Worker string `json:"worker"`
	Gen    uint64 `json:"gen"`
	Full   bool   `json:"full"`
	M      uint32 `json:"m"`
	K      uint8  `json:"k"`
	Bits   []byte `json:"bits"`
}

// advertResponse acknowledges an HTTP advert; NeedFull asks the worker to
// resend a full filter (generation gap or geometry change the coordinator
// could not apply). The binary ADVERT frame has no reply.
type advertResponse struct {
	NeedFull bool `json:"need_full,omitempty"`
}

// fetchRequest asks the coordinator for one raw cell entry by store key.
// Worker names the requester so routing never bounces a fetch back to it.
type fetchRequest struct {
	Worker string `json:"worker"`
	Key    string `json:"key"`
}

// fetchResponse carries the raw entry bytes when some holder produced
// them. Found=false — the indicator's false positive, a departed holder, a
// relay timeout — tells the requester to simulate locally: the exchange
// degrades to the pre-exchange behavior, never to a wrong result.
type fetchResponse struct {
	Found bool   `json:"found"`
	Raw   []byte `json:"raw,omitempty"`
}

// putRequest replicates one raw cell entry onto a peer (PUT frames on a
// peer connection): the receiver verifies the entry against its key before
// installing it, exactly like a fetched cell.
type putRequest struct {
	Worker string `json:"worker"`
	Key    string `json:"key"`
	Raw    []byte `json:"raw"`
}

// putResponse acknowledges a PUT. Accepted=false means the receiver
// declined (no store, or the entry failed verification); the sender never
// retries — replication is best-effort, the relay path covers misses.
type putResponse struct {
	Accepted bool `json:"accepted"`
}

// StatusSnapshot reports batch progress and the coordinator's lifetime
// counters, for dashboards, the CLI's aggregated progress line, the sweep
// service's status page, and the CI smoke's per-commit artifact (lease,
// reassignment, and byte counts). It is the decoded GET /dist/status
// payload; FetchStatus retrieves one from a running coordinator. With
// concurrent sweeps active, Done/Total aggregate across every batch in
// flight.
type StatusSnapshot struct {
	Active     bool   `json:"active"`
	Draining   bool   `json:"draining,omitempty"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Workers    int    `json:"workers"`
	Leases     uint64 `json:"leases"`
	Refills    uint64 `json:"refills"`
	Dispatched uint64 `json:"dispatched"`
	Completed  uint64 `json:"completed"`
	Failed     uint64 `json:"failed"`
	Reassigned uint64 `json:"reassigned"`
	// Socket-level byte totals across every connection Serve accepted
	// (HTTP and binary alike), and binary frame totals; the CI smoke's
	// bytes-per-cell assertion reads these.
	BytesIn   uint64 `json:"bytes_in"`
	BytesOut  uint64 `json:"bytes_out"`
	FramesIn  uint64 `json:"frames_in"`
	FramesOut uint64 `json:"frames_out"`
	// Peer cell exchange counters: indicator adverts received (and their
	// on-wire payload bytes — the smoke's budget assertion reads this),
	// fetches requested, fetches served from the coordinator's own store,
	// fetches relayed from an advertised holder, and fetches that found
	// nothing anywhere (the indicator false-positive counter: the requester
	// fell back to simulating).
	Adverts       uint64 `json:"adverts"`
	AdvertBytes   uint64 `json:"advert_bytes"`
	Fetches       uint64 `json:"fetches"`
	FetchServed   uint64 `json:"fetch_served"`
	FetchRelayed  uint64 `json:"fetch_relayed"`
	FetchFalsePos uint64 `json:"fetch_false_pos"`
	// Direct data path counters (worker-reported deltas folded in via
	// result posts, plus the coordinator's own ring state): cells fetched
	// worker-to-worker without touching the coordinator, direct attempts
	// that fell back to the relay, replication PUTs to ring owners, jobs
	// granted to their ring owner, and current ring membership.
	FetchDirect     uint64 `json:"fetch_direct"`
	FetchFallback   uint64 `json:"fetch_fallback"`
	PeerPuts        uint64 `json:"peer_puts"`
	RingOwnerGrants uint64 `json:"ring_owner_grants"`
	RingWorkers     int    `json:"ring_workers"`
	// WireConns details each live binary connection, followed by a bounded
	// history of recently closed ones (Closed=true): the retention cap and
	// age window in conn.go keep a week-long service's status payload and
	// status-page table from growing with every reconnect.
	WireConns []WireConnStatus `json:"wire_conns,omitempty"`
}

// WireConnStatus is one binary connection's counters in /dist/status.
type WireConnStatus struct {
	Worker    string `json:"worker"`
	Remote    string `json:"remote"`
	FramesIn  uint64 `json:"frames_in"`
	FramesOut uint64 `json:"frames_out"`
	BytesIn   uint64 `json:"bytes_in"`
	BytesOut  uint64 `json:"bytes_out"`
	Closed    bool   `json:"closed,omitempty"`
}

// Stats are the coordinator's lifetime counters.
type Stats struct {
	// Leases counts non-empty lease grants and Refills jobs granted
	// piggybacked on result replies; Dispatched counts every job handed out
	// either way (re-dispatch after an expiry counts again). With batching,
	// Leases stays far below Dispatched: the CI smoke asserts the ratio.
	// Completed counts successful results, Failed jobs that ended in an
	// error or exhausted their lease budget, and Reassigned leases that
	// expired and were requeued.
	Leases, Refills, Dispatched, Completed, Failed, Reassigned uint64
	// BytesIn/BytesOut count socket-level traffic across every connection
	// accepted by Coordinator.Serve — HTTP framing and binary frames
	// measured at the same place. Zero when the handler is mounted on a
	// server that bypasses Serve (httptest and the loopback transport).
	BytesIn, BytesOut uint64
	// FramesIn/FramesOut count binary wire frames across all /dist/wire
	// connections, live and closed (handshake frames included). Zero means
	// no worker ever negotiated the binary transport.
	FramesIn, FramesOut uint64
	// Peer cell exchange: Adverts counts indicator advertisements received
	// (AdvertBytes their on-wire payload bytes), Fetches every FETCH
	// request, FetchServed those answered from the coordinator's own store,
	// FetchRelayed those answered by relaying to an advertised holder, and
	// FetchFalsePos those that found nothing anywhere — the indicator's
	// false positives (plus departed holders), each of which degraded to a
	// local simulation on the requester.
	Adverts, AdvertBytes, Fetches, FetchServed, FetchRelayed, FetchFalsePos uint64
	// Direct data path: FetchDirect counts cells fetched worker-to-worker
	// (reported by workers as deltas on result posts — this traffic never
	// touches the coordinator's socket), FetchFallback direct attempts that
	// degraded to the coordinator relay, PeerPuts replication pushes to
	// ring owners, and RingOwnerGrants jobs granted to the worker the
	// consistent-hash ring assigns their Key to.
	FetchDirect, FetchFallback, PeerPuts, RingOwnerGrants uint64
	// RingWorkers is the current placement-ring membership (live workers).
	RingWorkers int
}

// workerTTL is how long after its last contact a worker still counts as
// alive in status reports, expressed in lease TTLs.
const workerTTLFactor = 3

// defaults for CoordinatorOptions.
const (
	defaultLeaseTTL         = 15 * time.Second
	defaultMaxLeaseExpiries = 3
)
