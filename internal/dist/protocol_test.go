package dist

// White-box protocol tests: drive the coordinator's HTTP endpoints the way
// a (possibly dying) worker would, and assert the lease machinery —
// reassignment after expiry, the expiry budget, status reporting — without
// any simulator involvement.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
)

// testContext returns a cancelable context for in-process workers.
func testContext(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithCancel(context.Background())
}

const echoKind = "dist-test.echo"

func init() {
	runner.RegisterExecutor(echoKind, func(spec []byte) ([]byte, error) {
		return append([]byte("ok:"), spec...), nil
	})
}

func echoJobs(n int) []runner.Job {
	jobs := make([]runner.Job, n)
	for i := range jobs {
		jobs[i] = runner.Job{
			Kind:  echoKind,
			Key:   fmt.Sprintf("echo-%d", i),
			Label: fmt.Sprintf("echo job %d", i),
			Spec:  []byte{byte('a' + i)},
		}
	}
	return jobs
}

// postJSON sends one wire message and decodes the reply when out is non-nil.
func postJSON(t *testing.T, url string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// waitActive polls until the coordinator reports an active batch.
func waitActive(t *testing.T, srvURL string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(srvURL + "/dist/status")
		if err == nil {
			var st StatusSnapshot
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if st.Active {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("batch never became active")
}

// TestLeaseReassignment: a worker that leases a job and dies (never
// heartbeats, never posts) only delays it — the lease expires and another
// worker completes the batch with correct, in-order results.
func TestLeaseReassignment(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 150 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	jobs := echoJobs(3)
	type runOut struct {
		outs [][]byte
		err  error
	}
	done := make(chan runOut, 1)
	go func() {
		outs, err := coord.Run(jobs, runner.Options{})
		done <- runOut{outs, err}
	}()
	waitActive(t, srv.URL)

	// The doomed worker takes one job and is never heard from again.
	var lease leaseResponse
	if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: "doomed", Kinds: []string{echoKind}}, &lease); st != http.StatusOK {
		t.Fatalf("doomed lease: HTTP %d", st)
	}

	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{
		Coordinator: srv.URL, Name: "healthy", Poll: 10 * time.Millisecond,
		Kinds: []string{echoKind},
	})

	res := <-done
	if res.err != nil {
		t.Fatalf("Run: %v", res.err)
	}
	for i, out := range res.outs {
		want := "ok:" + string(jobs[i].Spec)
		if string(out) != want {
			t.Errorf("job %d result %q, want %q", i, out, want)
		}
	}
	if got := coord.Stats().Reassigned; got < 1 {
		t.Errorf("Reassigned = %d, want >= 1 (the doomed worker's lease)", got)
	}
}

// TestExpiryBudget: a job whose lease keeps expiring fails the batch with a
// descriptive error instead of ping-ponging between dying workers forever.
func TestExpiryBudget(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 60 * time.Millisecond, MaxLeaseExpiries: 1})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(echoJobs(1), runner.Options{})
		done <- err
	}()
	waitActive(t, srv.URL)

	// A stream of doomed workers: lease, die, repeat.
	go func() {
		for i := 0; ; i++ {
			var lease leaseResponse
			body, _ := json.Marshal(leaseRequest{Worker: fmt.Sprintf("doomed-%d", i), Kinds: []string{echoKind}})
			resp, err := http.Post(srv.URL+"/dist/lease", "application/json", bytes.NewReader(body))
			if err != nil {
				return // server closed: test over
			}
			if resp.StatusCode == http.StatusOK {
				json.NewDecoder(resp.Body).Decode(&lease)
			}
			resp.Body.Close()
			time.Sleep(20 * time.Millisecond)
		}
	}()

	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "lease expired") {
			t.Fatalf("Run error = %v, want lease-expiry failure", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("batch never failed")
	}
}

// TestWorkerPanicSurfacesAsPanicError: a worker-side executor panic comes
// back as *runner.PanicError carrying the job label and the remote stack,
// exactly like an in-process pool panic.
func TestWorkerPanicSurfacesAsPanicError(t *testing.T) {
	const kind = "dist-test.panic"
	runner.RegisterExecutor(kind, func(spec []byte) ([]byte, error) {
		panic("simulated cell blew up")
	})
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{Coordinator: srv.URL, Name: "w", Poll: 10 * time.Millisecond, Kinds: []string{kind}})

	_, err := coord.Run([]runner.Job{{Kind: kind, Key: "p", Label: "exploding job"}}, runner.Options{})
	pe, ok := err.(*runner.PanicError)
	if !ok {
		t.Fatalf("Run error = %v (%T), want *runner.PanicError", err, err)
	}
	if pe.Label != "exploding job" || !strings.Contains(fmt.Sprint(pe.Value), "simulated cell blew up") {
		t.Errorf("PanicError = label %q value %v", pe.Label, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError carries no remote stack")
	}
}

// TestRunCanceledReturnsPartialResults: canceling the batch context returns
// the context error with whatever completed; pending jobs are dropped.
func TestRunCanceledReturnsPartialResults(t *testing.T) {
	const kind = "dist-test.slow"
	gate := make(chan struct{})
	runner.RegisterExecutor(kind, func(spec []byte) ([]byte, error) {
		if spec[0] != 0 {
			<-gate // all but the first job block
		}
		return []byte("done"), nil
	})
	defer close(gate)

	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{Coordinator: srv.URL, Name: "w", Slots: 2, Poll: 5 * time.Millisecond, Kinds: []string{kind}})

	jobs := []runner.Job{
		{Kind: kind, Key: "fast", Label: "fast", Spec: []byte{0}},
		{Kind: kind, Key: "slow", Label: "slow", Spec: []byte{1}},
	}
	runCtx, runCancel := testContext(t)
	var sawFast bool
	outs, err := coord.Run(jobs, runner.Options{
		Context: runCtx,
		Progress: func(done, total int) {
			sawFast = true
			runCancel() // cancel as soon as the fast job lands
		},
	})
	if err == nil {
		t.Fatal("canceled Run returned nil error")
	}
	if !sawFast {
		t.Fatal("fast job never completed")
	}
	if string(outs[0]) != "done" {
		t.Errorf("fast job result lost: %q", outs[0])
	}
	if outs[1] != nil {
		t.Errorf("blocked job has a result: %q", outs[1])
	}
}

// TestProgressCallbackMayReenterCoordinator: the progress callback is user
// code and may call back into the Coordinator (the CLI's progress line asks
// Workers() and Stats()); it must therefore never run under the coordinator
// mutex. Before the fix this deadlocked on the first completed job.
func TestProgressCallbackMayReenterCoordinator(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{Coordinator: srv.URL, Name: "w", Poll: 5 * time.Millisecond, Kinds: []string{echoKind}})

	var last, peakWorkers int
	outs, err := coord.Run(echoJobs(4), runner.Options{
		Progress: func(done, total int) {
			last = done
			if w := coord.Workers(); w > peakWorkers { // re-enters the coordinator
				peakWorkers = w
			}
			coord.Stats()
		},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if last != 4 || len(outs) != 4 {
		t.Errorf("progress ended at %d with %d results, want 4/4", last, len(outs))
	}
	if peakWorkers < 1 {
		t.Errorf("Workers() inside the callback saw %d workers, want >= 1", peakWorkers)
	}
}

// TestReassignedCountsOnlyRequeues: a terminal expiry (budget exhausted)
// counts as Failed, not as another reassignment.
func TestReassignedCountsOnlyRequeues(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 50 * time.Millisecond, MaxLeaseExpiries: 1})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(echoJobs(1), runner.Options{})
		done <- err
	}()
	waitActive(t, srv.URL)
	// Two doomed leases: the first expiry requeues, the second is terminal.
	for i := 0; i < 2; i++ {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			var lease leaseResponse
			if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: fmt.Sprintf("doomed-%d", i), Kinds: []string{echoKind}}, &lease); st == http.StatusOK {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if err := <-done; err == nil {
		t.Fatal("budget-exhausted batch did not fail")
	}
	st := coord.Stats()
	if st.Reassigned != 1 {
		t.Errorf("Reassigned = %d, want 1 (only the requeue counts)", st.Reassigned)
	}
	if st.Failed != 1 {
		t.Errorf("Failed = %d, want 1", st.Failed)
	}
}

// TestBareWorkerLeasesNothing: a worker advertising no kinds is granted no
// jobs (one misconfigured worker must not steal and terminally fail a
// healthy fleet's jobs), and RunWorker refuses to start kindless.
func TestBareWorkerLeasesNothing(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := testContext(t)
		defer cancel()
		go RunWorker(ctx, WorkerOptions{Coordinator: srv.URL, Name: "healthy", Poll: 5 * time.Millisecond, Kinds: []string{echoKind}})
		if _, err := coord.Run(echoJobs(2), runner.Options{}); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	// A bare worker hammers the queue the whole time and must get nothing.
	for {
		select {
		case <-done:
			return
		default:
		}
		var lease leaseResponse
		if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: "bare"}, &lease); st == http.StatusOK {
			t.Fatalf("kindless worker was granted %d job(s) (first: %+v)", len(lease.Jobs), lease.Jobs[0])
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRunWorkerRefusesWithoutKinds: starting a worker with no executors
// registered and no Kinds configured is a configuration error.
func TestRunWorkerRefusesWithoutKinds(t *testing.T) {
	err := RunWorker(context.Background(), WorkerOptions{Coordinator: "http://127.0.0.1:1", Kinds: []string{}})
	if err == nil || !strings.Contains(err.Error(), "no job kinds") {
		t.Errorf("kindless RunWorker returned %v, want a configuration error", err)
	}
}

// TestStatusReportsProgressAndWorkers exercises the status endpoint and the
// worker-liveness window.
func TestStatusReportsProgressAndWorkers(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	if n := coord.Workers(); n != 0 {
		t.Fatalf("idle coordinator reports %d workers", n)
	}
	var hb heartbeatResponse
	postJSON(t, srv.URL+"/dist/heartbeat", heartbeatRequest{Worker: "w1"}, &hb)
	if hb.Active {
		t.Error("heartbeat reports an active batch on an idle coordinator")
	}
	if n := coord.Workers(); n != 1 {
		t.Errorf("Workers = %d after heartbeat, want 1", n)
	}
	done, total, workers, active, err := Status(nil, nil, srv.URL, "")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if active || done != 0 || total != 0 || workers != 1 {
		t.Errorf("Status = done %d total %d workers %d active %t", done, total, workers, active)
	}
}
