package dist

// Coordinator side of the binary wire transport. A worker POSTs to
// /dist/wire with an Upgrade header; the coordinator hijacks the
// connection, answers 101 Switching Protocols, and from then on the
// connection speaks wire frames: one HELLO (name + secret digest, checked
// in constant time before any protocol state is touched), one WELCOME, and
// then one request/reply frame pair per protocol action, multiplexed by
// stream id across the worker's slots. The frame handlers call the same
// leaseRPC/heartbeatRPC/resultRPC state machine as the HTTP/JSON
// endpoints, so every batching, reassignment, and auth guarantee holds
// identically on both transports.

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/dist/wire"
)

// wireHandshakeTimeout bounds how long an upgraded connection may sit
// without completing its HELLO (drive-by connections must not pin
// goroutines).
const wireHandshakeTimeout = 10 * time.Second

// serverStreamBit marks coordinator-initiated streams (relayed FETCHes);
// worker-chosen stream ids stay below it, so the two id spaces never
// collide on one connection.
const serverStreamBit = uint32(1) << 31

// wireConn is one established binary connection.
type wireConn struct {
	worker string
	remote string
	rd     *wire.Reader
	wr     *wire.Writer

	// Relay state: coordinator-initiated FETCH streams awaiting the
	// worker's CELL reply. The Writer serializes concurrent frames itself;
	// this mutex only guards the waiter table.
	mu         sync.Mutex
	dead       bool
	nextStream uint32
	relays     map[uint32]chan []byte
}

// newRelay registers a coordinator-initiated stream and its reply channel
// (buffered so a late CELL never blocks the read loop after a timeout).
func (wc *wireConn) newRelay() (uint32, chan []byte, bool) {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if wc.dead {
		return 0, nil, false
	}
	wc.nextStream++
	id := serverStreamBit | (wc.nextStream &^ serverStreamBit)
	ch := make(chan []byte, 1)
	wc.relays[id] = ch
	return id, ch, true
}

func (wc *wireConn) dropRelay(id uint32) {
	wc.mu.Lock()
	delete(wc.relays, id)
	wc.mu.Unlock()
}

// deliverRelay hands a CELL payload to its waiter. Unknown streams (already
// timed out, or a confused worker) are dropped silently — relays are
// best-effort by design.
func (wc *wireConn) deliverRelay(id uint32, payload []byte) {
	wc.mu.Lock()
	ch, ok := wc.relays[id]
	if ok {
		delete(wc.relays, id)
	}
	wc.mu.Unlock()
	if ok {
		ch <- append([]byte(nil), payload...)
	}
}

// failRelays marks the connection dead and wakes every pending relay with
// a closed channel (their fetches fall through to the next holder).
func (wc *wireConn) failRelays() {
	wc.mu.Lock()
	wc.dead = true
	for id, ch := range wc.relays {
		delete(wc.relays, id)
		close(ch)
	}
	wc.mu.Unlock()
}

func (wc *wireConn) status() WireConnStatus {
	fi, bi := wc.rd.Stats()
	fo, bo := wc.wr.Stats()
	return WireConnStatus{
		Worker: wc.worker, Remote: wc.remote,
		FramesIn: fi, FramesOut: fo, BytesIn: bi, BytesOut: bo,
	}
}

// handleWire upgrades a worker's HTTP request to the binary framed
// protocol and serves frames until the connection dies.
func (c *Coordinator) handleWire(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get("Upgrade") != wireProtoName {
		// An old worker (or a curious client) that does not speak the
		// protocol gets a plain HTTP error it can fall back on.
		http.Error(w, "upgrade required: set Upgrade: "+wireProtoName, http.StatusUpgradeRequired)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "binary wire unavailable: server cannot hijack connections", http.StatusNotImplemented)
		return
	}
	conn, brw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "hijack: "+err.Error(), http.StatusInternalServerError)
		return
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: "+
		wireProtoName+"\r\nConnection: Upgrade\r\n\r\n"); err != nil {
		return
	}
	// brw.Reader may hold bytes the worker pipelined behind the upgrade
	// request; frames must drain it before touching the socket.
	c.serveWireConn(conn, brw.Reader)
}

// serveWireConn runs one binary connection: handshake, then a
// read-dispatch-reply loop. Any protocol violation — malformed payload,
// unexpected frame type — is terminal: the worker gets an ERROR frame and
// the connection closes (fail closed, like the frame decoder itself).
func (c *Coordinator) serveWireConn(conn net.Conn, r io.Reader) {
	rd := wire.NewReader(r)
	wr := wire.NewWriter(conn)
	count := func(err error) error {
		c.framesOut.Add(1)
		return err
	}

	conn.SetReadDeadline(time.Now().Add(wireHandshakeTimeout))
	h, payload, err := rd.ReadFrame()
	if err != nil {
		return
	}
	c.framesIn.Add(1)
	if h.Type != wire.FrameHello {
		count(wr.WriteFrame(wire.FrameError, 0, 0, []byte("dist: expected HELLO, got "+wire.TypeName(h.Type))))
		return
	}
	worker, digest, peer, err := parseHello(payload)
	if err != nil {
		count(wr.WriteFrame(wire.FrameError, 0, 0, []byte(err.Error())))
		return
	}
	if !c.digestOK(digest) {
		// The terminal auth frame is what lets a binary worker exit with
		// *dist.AuthError exactly like an HTTP 401 would make it.
		count(wr.WriteFrame(wire.FrameError, wire.FlagAuthFailed, 0,
			[]byte("unauthorized: shared secret mismatch on HELLO")))
		return
	}
	if err := count(wr.WriteFrame(wire.FrameWelcome, 0, 0, appendWelcome(nil))); err != nil {
		return
	}

	wc := &wireConn{
		worker: worker, remote: conn.RemoteAddr().String(), rd: rd, wr: wr,
		relays: map[uint32]chan []byte{},
	}
	c.wireMu.Lock()
	c.wireConns[wc] = struct{}{}
	c.wireMu.Unlock()
	defer func() {
		c.retireWireConn(wc)
		wc.failRelays()
	}()
	c.mu.Lock()
	c.registerWorkerLocked(worker, peer, time.Now())
	c.mu.Unlock()

	idle := workerTTLFactor * c.opt.leaseTTL()
	for {
		// A connection that goes silent past the worker-liveness window is
		// dead weight: time it out rather than pin it forever.
		conn.SetReadDeadline(time.Now().Add(idle))
		h, payload, err := rd.ReadFrame()
		if err != nil {
			return
		}
		c.framesIn.Add(1)
		switch h.Type {
		case wire.FrameAdvert:
			// Fire-and-forget: the worker paces itself against the budget;
			// malformed indicators are terminal like any other bad frame.
			req, err := parseAdvert(payload)
			if err != nil {
				count(wr.WriteFrame(wire.FrameError, 0, h.Stream, []byte(err.Error())))
				return
			}
			c.advertRPC(req, int(h.Length))
			continue
		case wire.FrameCell:
			// Reply to a coordinator-initiated relay stream: hand the raw
			// payload to the waiting fetch (parse happens there).
			wc.deliverRelay(h.Stream, payload)
			continue
		case wire.FrameFetch:
			req, err := parseFetchRequest(payload)
			if err != nil {
				count(wr.WriteFrame(wire.FrameError, 0, h.Stream, []byte(err.Error())))
				return
			}
			req.Worker = worker
			// Served off the read loop: a fetch that relays to another
			// holder blocks up to relayTimeout, and this worker's lease and
			// result frames must not queue behind it. The Writer serializes
			// concurrent frames.
			go func(stream uint32, req fetchRequest) {
				resp := c.fetchRPC(context.Background(), req)
				buf := wire.GetBuffer()
				*buf = appendCell(*buf, resp)
				count(wr.WriteFrame(wire.FrameCell, 0, stream, *buf))
				wire.PutBuffer(buf)
			}(h.Stream, req)
			continue
		}
		replyType, reply, err := c.dispatchFrame(h, payload)
		if err != nil {
			count(wr.WriteFrame(wire.FrameError, 0, h.Stream, []byte(err.Error())))
			return
		}
		err = count(wr.WriteFrame(replyType, 0, h.Stream, *reply))
		wire.PutBuffer(reply)
		if err != nil {
			return
		}
	}
}

// relayFetch forwards one FETCH down an established worker connection and
// waits (bounded) for its CELL. Returns the raw entry bytes, unverified —
// the caller checks them against the key before trusting anything.
func (c *Coordinator) relayFetch(ctx context.Context, wc *wireConn, key string) ([]byte, bool) {
	id, ch, ok := wc.newRelay()
	if !ok {
		return nil, false
	}
	buf := wire.GetBuffer()
	*buf = appendFetchRequest(*buf, fetchRequest{Key: key})
	err := wc.wr.WriteFrame(wire.FrameFetch, 0, id, *buf)
	wire.PutBuffer(buf)
	c.framesOut.Add(1)
	if err != nil {
		wc.dropRelay(id)
		return nil, false
	}
	timer := time.NewTimer(relayTimeout)
	defer timer.Stop()
	select {
	case payload, ok := <-ch:
		if !ok {
			return nil, false // connection died mid-relay
		}
		resp, err := parseCell(payload)
		if err != nil || !resp.Found {
			return nil, false
		}
		return resp.Raw, true
	case <-timer.C:
		wc.dropRelay(id)
		return nil, false
	case <-ctx.Done():
		wc.dropRelay(id)
		return nil, false
	}
}

// dispatchFrame decodes one request frame, runs the shared RPC state
// machine, and encodes the reply into a pooled buffer (the caller writes
// the frame and returns the buffer).
func (c *Coordinator) dispatchFrame(h wire.Header, payload []byte) (byte, *[]byte, error) {
	buf := wire.GetBuffer()
	switch h.Type {
	case wire.FrameLease:
		req, err := parseLeaseRequest(payload)
		if err != nil {
			wire.PutBuffer(buf)
			return 0, nil, err
		}
		*buf = appendGrant(*buf, c.leaseRPC(req))
		return wire.FrameGrant, buf, nil
	case wire.FrameHeartbeat:
		req, err := parseHeartbeatRequest(payload)
		if err != nil {
			wire.PutBuffer(buf)
			return 0, nil, err
		}
		*buf = appendHeartbeatResponse(*buf, c.heartbeatRPC(req))
		return wire.FrameBeatAck, buf, nil
	case wire.FrameResult:
		req, err := parseResultRequest(payload)
		if err != nil {
			wire.PutBuffer(buf)
			return 0, nil, err
		}
		// resultResponse and leaseResponse are the same grant shape.
		*buf = appendGrant(*buf, leaseResponse(c.resultRPC(req)))
		return wire.FrameResultAck, buf, nil
	case wire.FrameSubmit:
		req, err := parseSubmit(payload)
		if err != nil {
			wire.PutBuffer(buf)
			return 0, nil, err
		}
		// The reply carries rejection in-band (SubmitResponse.Err), so a
		// client on a non-service coordinator gets a description, not a
		// dropped connection.
		*buf = appendSweep(*buf, c.submitRPC(req))
		return wire.FrameSweep, buf, nil
	default:
		wire.PutBuffer(buf)
		return 0, nil, fmt.Errorf("dist: unexpected %s frame on an established connection", wire.TypeName(h.Type))
	}
}

// digestOK compares a HELLO's secret digest against the coordinator's in
// constant time. A coordinator with no secret accepts any HELLO, mirroring
// the HTTP middleware being absent.
func (c *Coordinator) digestOK(digest []byte) bool {
	if c.opt.Secret == "" {
		return true
	}
	want := sha256.Sum256([]byte(c.opt.Secret))
	if len(digest) != sha256.Size {
		return false
	}
	return subtle.ConstantTimeCompare(want[:], digest) == 1
}
