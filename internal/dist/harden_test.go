package dist

// White-box tests for the hardened protocol: batched leases with adaptive
// shrink near queue exhaustion, result-reply refills, worker death
// mid-batch (only unfinished jobs reassigned), shared-secret auth, and
// coordinator co-execution. All run in -short (the CI race job).

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
)

// postJSONAuth is postJSON with a shared secret attached.
func postJSONAuth(t *testing.T, url, secret string, in, out any) int {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if secret != "" {
		req.Header.Set(secretHeader, secret)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestBatchedLeaseStreamsAndRefills: one worker drains a whole batch run
// through a single /dist/lease round-trip — the initial lease grants
// LeaseBatch jobs and every streamed result's reply refills the queue —
// with results folded correctly in job order.
func TestBatchedLeaseStreamsAndRefills(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, LeaseBatch: 3})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	jobs := echoJobs(8)
	type runOut struct {
		outs [][]byte
		err  error
	}
	done := make(chan runOut, 1)
	go func() {
		outs, err := coord.Run(jobs, runner.Options{})
		done <- runOut{outs, err}
	}()
	waitActive(t, srv.URL)

	var lease leaseResponse
	if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: "w", Kinds: []string{echoKind}}, &lease); st != http.StatusOK {
		t.Fatalf("lease: HTTP %d", st)
	}
	if len(lease.Jobs) != 3 {
		t.Fatalf("initial lease granted %d jobs, want LeaseBatch=3", len(lease.Jobs))
	}
	// Stream results one by one, asking for a refill with each; the queue
	// should stay fed without ever touching /dist/lease again.
	queue := lease.Jobs
	for len(queue) > 0 {
		job := queue[0]
		queue = queue[1:]
		var resp resultResponse
		if st := postJSON(t, srv.URL+"/dist/result", resultRequest{
			Worker: "w", JobID: job.JobID,
			Result: append([]byte("ok:"), job.Spec...),
			Kinds:  []string{echoKind}, Refill: 1,
		}, &resp); st != http.StatusOK {
			t.Fatalf("result: HTTP %d", st)
		}
		if len(resp.Jobs) > 1 {
			t.Fatalf("refill granted %d jobs, want at most the 1 asked for", len(resp.Jobs))
		}
		queue = append(queue, resp.Jobs...)
	}

	res := <-done
	if res.err != nil {
		t.Fatalf("Run: %v", res.err)
	}
	for i, out := range res.outs {
		if want := "ok:" + string(jobs[i].Spec); string(out) != want {
			t.Errorf("job %d result %q, want %q", i, out, want)
		}
	}
	st := coord.Stats()
	if st.Leases != 1 {
		t.Errorf("Leases = %d, want 1 (refills keep the worker off the lease endpoint)", st.Leases)
	}
	if st.Refills != 5 {
		t.Errorf("Refills = %d, want 5 (8 jobs - 3 in the initial batch)", st.Refills)
	}
	if st.Dispatched != 8 {
		t.Errorf("Dispatched = %d, want 8", st.Dispatched)
	}
}

// TestLeaseShrinksNearExhaustion: a batch larger than the remaining queue
// is cut to the pending jobs' fair share across live workers, so the tail
// of a sweep spreads over the fleet instead of piling onto one straggler;
// a worker's own Max caps the grant too.
func TestLeaseShrinksNearExhaustion(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, LeaseBatch: 8})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(echoJobs(3), runner.Options{})
		done <- err
	}()
	waitActive(t, srv.URL)

	// Register a second live worker, then lease as the first: 3 pending
	// split over 2 live workers is ceil(3/2) = 2, not the full batch of 8.
	var hb heartbeatResponse
	postJSON(t, srv.URL+"/dist/heartbeat", heartbeatRequest{Worker: "b"}, &hb)
	var leaseA leaseResponse
	if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: "a", Kinds: []string{echoKind}}, &leaseA); st != http.StatusOK {
		t.Fatalf("lease a: HTTP %d", st)
	}
	if len(leaseA.Jobs) != 2 {
		t.Errorf("near-exhaustion lease granted %d jobs, want ceil(3 pending / 2 workers) = 2", len(leaseA.Jobs))
	}
	// The other worker asks with Max=1 and gets exactly one.
	var leaseB leaseResponse
	if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: "b", Kinds: []string{echoKind}, Max: 1}, &leaseB); st != http.StatusOK {
		t.Fatalf("lease b: HTTP %d", st)
	}
	if len(leaseB.Jobs) != 1 {
		t.Errorf("Max=1 lease granted %d jobs, want 1", len(leaseB.Jobs))
	}

	for _, job := range append(append([]leasedJob(nil), leaseA.Jobs...), leaseB.Jobs...) {
		postJSON(t, srv.URL+"/dist/result", resultRequest{
			Worker: job.Label, JobID: job.JobID, Result: append([]byte("ok:"), job.Spec...),
		}, nil)
	}
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestWorkerDeathMidBatchReassignsOnlyUnfinished: a worker that leased a
// batch of 4, streamed back 2 results, and died loses only the 2 unfinished
// jobs to reassignment — the streamed results stay completed and are never
// re-executed.
func TestWorkerDeathMidBatchReassignsOnlyUnfinished(t *testing.T) {
	const kind = "dist-test.count"
	var executed atomic.Uint64
	runner.RegisterExecutor(kind, func(spec []byte) ([]byte, error) {
		executed.Add(1)
		return append([]byte("exec:"), spec...), nil
	})
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 150 * time.Millisecond, LeaseBatch: 4})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	jobs := make([]runner.Job, 4)
	for i := range jobs {
		jobs[i] = runner.Job{Kind: kind, Key: fmt.Sprintf("c%d", i), Label: fmt.Sprintf("count job %d", i), Spec: []byte{byte('a' + i)}}
	}
	type runOut struct {
		outs [][]byte
		err  error
	}
	done := make(chan runOut, 1)
	go func() {
		outs, err := coord.Run(jobs, runner.Options{})
		done <- runOut{outs, err}
	}()
	waitActive(t, srv.URL)

	// The doomed worker takes the whole batch, streams back the first two
	// results without asking for refills, and is never heard from again.
	var lease leaseResponse
	if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: "doomed", Kinds: []string{kind}}, &lease); st != http.StatusOK {
		t.Fatalf("doomed lease: HTTP %d", st)
	}
	if len(lease.Jobs) != 4 {
		t.Fatalf("doomed lease granted %d jobs, want the whole batch of 4", len(lease.Jobs))
	}
	for _, job := range lease.Jobs[:2] {
		postJSON(t, srv.URL+"/dist/result", resultRequest{
			Worker: "doomed", JobID: job.JobID, Result: append([]byte("doomed:"), job.Spec...),
		}, nil)
	}

	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{Coordinator: srv.URL, Name: "healthy", Poll: 10 * time.Millisecond, Kinds: []string{kind}})

	res := <-done
	if res.err != nil {
		t.Fatalf("Run: %v", res.err)
	}
	for i, out := range res.outs {
		want := "doomed:" + string(jobs[i].Spec)
		if i >= 2 {
			want = "exec:" + string(jobs[i].Spec)
		}
		if string(out) != want {
			t.Errorf("job %d result %q, want %q", i, out, want)
		}
	}
	if got := coord.Stats().Reassigned; got != 2 {
		t.Errorf("Reassigned = %d, want 2 (only the unfinished half of the batch)", got)
	}
	if got := executed.Load(); got != 2 {
		t.Errorf("healthy worker executed %d jobs, want 2 (streamed results never re-run)", got)
	}
}

// TestAuthRejectsWrongSecret: with a coordinator secret set, every endpoint
// rejects missing or wrong secrets with 401 and untouched state, and a
// worker started with the wrong secret exits with a descriptive *AuthError
// instead of polling forever.
func TestAuthRejectsWrongSecret(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, Secret: "s3cret"})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	for _, secret := range []string{"", "wrong", "s3cret-but-longer"} {
		if st := postJSONAuth(t, srv.URL+"/dist/lease", secret, leaseRequest{Worker: "w", Kinds: []string{echoKind}}, nil); st != http.StatusUnauthorized {
			t.Errorf("lease with secret %q: HTTP %d, want 401", secret, st)
		}
		if st := postJSONAuth(t, srv.URL+"/dist/heartbeat", secret, heartbeatRequest{Worker: "w"}, nil); st != http.StatusUnauthorized {
			t.Errorf("heartbeat with secret %q: HTTP %d, want 401", secret, st)
		}
		if st := postJSONAuth(t, srv.URL+"/dist/result", secret, resultRequest{Worker: "w", JobID: 1}, nil); st != http.StatusUnauthorized {
			t.Errorf("result with secret %q: HTTP %d, want 401", secret, st)
		}
	}
	if _, _, _, _, err := Status(nil, nil, srv.URL, "wrong"); !errors.As(err, new(*AuthError)) {
		t.Errorf("Status with wrong secret returned %v, want *AuthError", err)
	}
	if coord.Workers() != 0 || coord.Stats().Dispatched != 0 {
		t.Error("rejected requests mutated coordinator state")
	}

	// A wrong-secret worker fails fast with the descriptive error.
	err := RunWorker(context.Background(), WorkerOptions{
		Coordinator: srv.URL, Name: "intruder", Kinds: []string{echoKind},
		Secret: "wrong", Poll: 5 * time.Millisecond,
	})
	var ae *AuthError
	if !errors.As(err, &ae) {
		t.Fatalf("wrong-secret RunWorker returned %v (%T), want *AuthError", err, err)
	}
	if !strings.Contains(err.Error(), "401") || !strings.Contains(err.Error(), "secret") {
		t.Errorf("AuthError %q not descriptive", err)
	}
}

// TestAuthedFleetCompletes: a correctly authed worker fleet (batched)
// drains a run; the status endpoint answers with the secret attached.
func TestAuthedFleetCompletes(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, LeaseBatch: 2, Secret: "s3cret"})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{
		Coordinator: srv.URL, Name: "w", Poll: 5 * time.Millisecond,
		Kinds: []string{echoKind}, Secret: "s3cret",
	})
	jobs := echoJobs(5)
	outs, err := coord.Run(jobs, runner.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, out := range outs {
		if want := "ok:" + string(jobs[i].Spec); string(out) != want {
			t.Errorf("job %d result %q, want %q", i, out, want)
		}
	}
	if _, _, workers, _, err := Status(nil, nil, srv.URL, "s3cret"); err != nil || workers < 1 {
		t.Errorf("authed Status = %d workers, err %v; want >= 1 worker, nil error", workers, err)
	}
}

// TestCoExecuteAloneDrainsBatch: with co-execution enabled, a lone
// coordinator — no external workers anywhere — completes its own batch
// through the loopback protocol path, auth included.
func TestCoExecuteAloneDrainsBatch(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{
		LeaseTTL: time.Second, LeaseBatch: 2, Secret: "s3cret", CoExecute: 2,
	})
	jobs := echoJobs(6)
	outs, err := coord.Run(jobs, runner.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, out := range outs {
		if want := "ok:" + string(jobs[i].Spec); string(out) != want {
			t.Errorf("job %d result %q, want %q", i, out, want)
		}
	}
	st := coord.Stats()
	if st.Completed != 6 {
		t.Errorf("Completed = %d, want 6", st.Completed)
	}
	if st.Leases < 1 {
		t.Error("co-execution never leased (did the loopback worker run?)")
	}
	if coord.Workers() < 1 {
		t.Error("loopback worker not counted live")
	}
}

// TestCoExecutionRacesExternalWorkers: co-execution slots and external
// workers compete for the same queue — including the last job — and the
// fold is still correct and complete. Runs under -race in CI.
func TestCoExecutionRacesExternalWorkers(t *testing.T) {
	const kind = "dist-test.tiny"
	runner.RegisterExecutor(kind, func(spec []byte) ([]byte, error) {
		time.Sleep(time.Millisecond) // enough to interleave slots
		return append([]byte("ok:"), spec...), nil
	})
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Second, LeaseBatch: 4, CoExecute: 2})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	ctx, cancel := testContext(t)
	defer cancel()
	for i := 0; i < 2; i++ {
		go RunWorker(ctx, WorkerOptions{
			Coordinator: srv.URL, Name: fmt.Sprintf("ext-%d", i),
			Poll: 2 * time.Millisecond, Kinds: []string{kind},
		})
	}
	jobs := make([]runner.Job, 30)
	for i := range jobs {
		jobs[i] = runner.Job{Kind: kind, Key: fmt.Sprintf("t%d", i), Label: fmt.Sprintf("tiny %d", i), Spec: []byte{byte(i)}}
	}
	outs, err := coord.Run(jobs, runner.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, out := range outs {
		if want := "ok:" + string(jobs[i].Spec); string(out) != want {
			t.Errorf("job %d result %q, want %q", i, out, want)
		}
	}
	if st := coord.Stats(); st.Completed != 30 {
		t.Errorf("Completed = %d, want 30", st.Completed)
	}
}

// TestProgressStreamsToWorkers: lease, heartbeat, and result replies carry
// sweep-wide done/total, and a worker's log shows the fleet progress.
func TestProgressStreamsToWorkers(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 300 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	done := make(chan error, 1)
	go func() {
		_, err := coord.Run(echoJobs(2), runner.Options{})
		done <- err
	}()
	waitActive(t, srv.URL)

	// Complete job 1 by hand, then observe its completion on every reply
	// kind the protocol has.
	var lease leaseResponse
	if st := postJSON(t, srv.URL+"/dist/lease", leaseRequest{Worker: "manual", Kinds: []string{echoKind}, Max: 1}, &lease); st != http.StatusOK {
		t.Fatalf("lease: HTTP %d", st)
	}
	if lease.Total != 2 || lease.Done != 0 {
		t.Errorf("lease reply progress %d/%d, want 0/2", lease.Done, lease.Total)
	}
	var rres resultResponse
	postJSON(t, srv.URL+"/dist/result", resultRequest{
		Worker: "manual", JobID: lease.Jobs[0].JobID,
		Result: append([]byte("ok:"), lease.Jobs[0].Spec...),
	}, &rres)
	if rres.Done != 1 || rres.Total != 2 {
		t.Errorf("result reply progress %d/%d, want 1/2", rres.Done, rres.Total)
	}
	var hb heartbeatResponse
	postJSON(t, srv.URL+"/dist/heartbeat", heartbeatRequest{Worker: "manual"}, &hb)
	if !hb.Active || hb.Done != 1 || hb.Total != 2 {
		t.Errorf("heartbeat reply = active %t %d/%d, want active 1/2", hb.Active, hb.Done, hb.Total)
	}

	// A real worker finishes the rest and logs fleet progress.
	var logMu sync.Mutex
	var logs []string
	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{
		Coordinator: srv.URL, Name: "w", Poll: 5 * time.Millisecond, Kinds: []string{echoKind},
		Log: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Run returns the moment the last result lands server-side; give the
	// worker a beat to process the reply that carries the 2/2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		logMu.Lock()
		for _, line := range logs {
			if strings.Contains(line, "2/2 cells done fleet-wide") {
				logMu.Unlock()
				return
			}
		}
		if time.Now().After(deadline) {
			t.Errorf("worker log shows no fleet progress line; got %q", logs)
			logMu.Unlock()
			return
		}
		logMu.Unlock()
		time.Sleep(5 * time.Millisecond)
	}
}
