package dist

// Binary codec for the wire protocol's message payloads: hand-rolled
// uvarint + length-prefixed fields instead of JSON, so gob specs and
// results pass through as raw bytes — no envelope, no base64. Encoders
// append into caller-provided buffers (wire.GetBuffer free list); parsers
// are strict and fail closed: any unknown shape, overrun length, or
// trailing garbage is a terminal connection error, never a guess.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dist/wire"
)

// wireProtoName is the HTTP Upgrade token that negotiates the binary
// transport on /dist/wire. The "/3" tracks wire.Version: a worker offering
// a token the coordinator does not speak gets a plain HTTP refusal and
// negotiates down to JSON — mixed builds degrade gracefully at the upgrade
// instead of failing on a frame parse mid-sweep.
const wireProtoName = "bashsim-wire/3"

// Parse bounds: generous multiples of anything the protocol produces, tight
// enough that a malformed length fails immediately instead of allocating.
const (
	maxWireStr   = 1 << 20 // worker names, kinds, labels, error/panic text
	maxWireKinds = 1 << 10
	maxWireJobs  = 1 << 16
	maxWireSeeds = 1 << 12 // per-sweep seed-list override
	maxWireAddrs = 1 << 4  // holder/owner peer addresses per granted job
)

// byteReader is a strict cursor over one message payload.
type byteReader struct {
	p   []byte
	off int
	err error
}

func (r *byteReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *byteReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 {
		r.fail("dist: malformed %s varint at offset %d", what, r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *byteReader) count(what string, max int) int {
	v := r.uvarint(what)
	if r.err == nil && v > uint64(max) {
		r.fail("dist: %s count %d exceeds bound %d", what, v, max)
		return 0
	}
	return int(v)
}

// bytes returns the next length-prefixed field, copied: wire.Reader reuses
// its payload buffer across frames, so anything retained must own its bytes.
func (r *byteReader) bytes(what string, max int) []byte {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return nil
	}
	if n > uint64(max) || n > uint64(len(r.p)-r.off) {
		r.fail("dist: %s length %d overruns payload (%d bytes left, bound %d)", what, n, len(r.p)-r.off, max)
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, r.p[r.off:r.off+int(n)])
	r.off += int(n)
	return out
}

func (r *byteReader) str(what string, max int) string {
	n := r.uvarint(what + " length")
	if r.err != nil {
		return ""
	}
	if n > uint64(max) || n > uint64(len(r.p)-r.off) {
		r.fail("dist: %s length %d overruns payload (%d bytes left, bound %d)", what, n, len(r.p)-r.off, max)
		return ""
	}
	s := string(r.p[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// bool reads a strict boolean: exactly 0 or 1, anything else fails (a
// sloppy "nonzero is true" would let corrupt payloads parse as valid).
func (r *byteReader) bool(what string) bool {
	v := r.uvarint(what)
	if r.err == nil && v > 1 {
		r.fail("dist: bogus %s value %d (want 0 or 1)", what, v)
		return false
	}
	return v == 1
}

// finish asserts the payload was consumed exactly.
func (r *byteReader) finish(msg string) error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.p) {
		return fmt.Errorf("dist: %s message: %d trailing bytes after payload", msg, len(r.p)-r.off)
	}
	return nil
}

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// --- HELLO / WELCOME / ERROR -------------------------------------------

// appendHello encodes the connection handshake: protocol version, worker
// name, the SHA-256 digest of the shared secret (the server compares
// digests in constant time; an empty secret digests the empty string), and
// the worker's peer listener address ("" when it serves no peers). The same
// handshake opens both coordinator connections and worker-to-worker peer
// connections.
func appendHello(b []byte, worker string, digest []byte, peer string) []byte {
	b = appendUvarint(b, wire.Version)
	b = appendString(b, worker)
	b = appendBytes(b, digest)
	return appendString(b, peer)
}

func parseHello(p []byte) (worker string, digest []byte, peer string, err error) {
	r := &byteReader{p: p}
	if v := r.uvarint("hello version"); r.err == nil && v != wire.Version {
		return "", nil, "", fmt.Errorf("dist: hello for protocol version %d (this build speaks %d)", v, wire.Version)
	}
	worker = r.str("worker name", maxWireStr)
	digest = r.bytes("secret digest", 64)
	peer = r.str("peer address", maxWireStr)
	return worker, digest, peer, r.finish("hello")
}

func appendWelcome(b []byte) []byte { return appendUvarint(b, wire.Version) }

func parseWelcome(p []byte) error {
	r := &byteReader{p: p}
	if v := r.uvarint("welcome version"); r.err == nil && v != wire.Version {
		return fmt.Errorf("dist: coordinator speaks protocol version %d (this build speaks %d)", v, wire.Version)
	}
	return r.finish("welcome")
}

// parseErrorFrame extracts the message of a FrameError payload (plain text).
func parseErrorFrame(p []byte) string { return string(p) }

// --- LEASE --------------------------------------------------------------

func appendLeaseRequest(b []byte, req leaseRequest) []byte {
	b = appendString(b, req.Worker)
	b = appendString(b, req.Peer)
	b = appendUvarint(b, uint64(req.Max))
	b = appendUvarint(b, uint64(len(req.Kinds)))
	for _, k := range req.Kinds {
		b = appendString(b, k)
	}
	return b
}

func parseLeaseRequest(p []byte) (leaseRequest, error) {
	r := &byteReader{p: p}
	var req leaseRequest
	req.Worker = r.str("worker name", maxWireStr)
	req.Peer = r.str("peer address", maxWireStr)
	req.Max = int(r.uvarint("lease max"))
	if n := r.count("kinds", maxWireKinds); r.err == nil && n > 0 {
		req.Kinds = make([]string, n)
		for i := range req.Kinds {
			req.Kinds[i] = r.str("kind", maxWireStr)
		}
	}
	return req, r.finish("lease request")
}

// --- GRANT (lease and refill replies share one shape) -------------------

// appendGrant encodes a leaseResponse; resultResponse converts to it (the
// structs have identical fields, differing only in which endpoint replies).
func appendGrant(b []byte, resp leaseResponse) []byte {
	b = appendUvarint(b, uint64(resp.LeaseMillis))
	b = appendUvarint(b, uint64(resp.Done))
	b = appendUvarint(b, uint64(resp.Total))
	b = appendUvarint(b, uint64(len(resp.Jobs)))
	for _, j := range resp.Jobs {
		b = appendUvarint(b, uint64(j.JobID))
		b = appendString(b, j.Kind)
		b = appendString(b, j.Key)
		b = appendString(b, j.Label)
		b = appendBytes(b, j.Spec)
		b = appendBool(b, j.Held)
		b = appendUvarint(b, uint64(len(j.Holders)))
		for _, a := range j.Holders {
			b = appendString(b, a)
		}
		b = appendUvarint(b, uint64(len(j.Owners)))
		for _, a := range j.Owners {
			b = appendString(b, a)
		}
	}
	return b
}

func parseGrant(p []byte) (leaseResponse, error) {
	r := &byteReader{p: p}
	var resp leaseResponse
	resp.LeaseMillis = int64(r.uvarint("lease millis"))
	resp.Done = int(r.uvarint("done"))
	resp.Total = int(r.uvarint("total"))
	if n := r.count("jobs", maxWireJobs); r.err == nil && n > 0 {
		resp.Jobs = make([]leasedJob, n)
		for i := range resp.Jobs {
			j := &resp.Jobs[i]
			id := r.uvarint("job id")
			if r.err == nil && id > math.MaxInt64 {
				r.fail("dist: job id %d overflows int64", id)
			}
			j.JobID = int64(id)
			j.Kind = r.str("job kind", maxWireStr)
			j.Key = r.str("job key", maxWireStr)
			j.Label = r.str("job label", maxWireStr)
			j.Spec = r.bytes("job spec", wire.MaxPayload)
			j.Held = r.bool("job held hint")
			if n := r.count("holder addresses", maxWireAddrs); r.err == nil && n > 0 {
				j.Holders = make([]string, n)
				for i := range j.Holders {
					j.Holders[i] = r.str("holder address", maxWireStr)
				}
			}
			if n := r.count("owner addresses", maxWireAddrs); r.err == nil && n > 0 {
				j.Owners = make([]string, n)
				for i := range j.Owners {
					j.Owners[i] = r.str("owner address", maxWireStr)
				}
			}
		}
	}
	return resp, r.finish("grant")
}

// --- HEARTBEAT ----------------------------------------------------------

func appendHeartbeatRequest(b []byte, req heartbeatRequest) []byte {
	b = appendString(b, req.Worker)
	b = appendUvarint(b, uint64(len(req.JobIDs)))
	for _, id := range req.JobIDs {
		b = appendUvarint(b, uint64(id))
	}
	return b
}

func parseHeartbeatRequest(p []byte) (heartbeatRequest, error) {
	r := &byteReader{p: p}
	var req heartbeatRequest
	req.Worker = r.str("worker name", maxWireStr)
	if n := r.count("job ids", maxWireJobs); r.err == nil && n > 0 {
		req.JobIDs = make([]int64, n)
		for i := range req.JobIDs {
			req.JobIDs[i] = int64(r.uvarint("job id"))
		}
	}
	return req, r.finish("heartbeat request")
}

func appendHeartbeatResponse(b []byte, resp heartbeatResponse) []byte {
	active := uint64(0)
	if resp.Active {
		active = 1
	}
	b = appendUvarint(b, active)
	b = appendUvarint(b, uint64(resp.Done))
	return appendUvarint(b, uint64(resp.Total))
}

func parseHeartbeatResponse(p []byte) (heartbeatResponse, error) {
	r := &byteReader{p: p}
	var resp heartbeatResponse
	resp.Active = r.uvarint("active") != 0
	resp.Done = int(r.uvarint("done"))
	resp.Total = int(r.uvarint("total"))
	return resp, r.finish("heartbeat response")
}

// --- RESULT -------------------------------------------------------------

func appendResultRequest(b []byte, req resultRequest) []byte {
	b = appendString(b, req.Worker)
	b = appendUvarint(b, uint64(req.JobID))
	b = appendUvarint(b, uint64(req.Refill))
	b = appendUvarint(b, req.FetchDirect)
	b = appendUvarint(b, req.FetchFallback)
	b = appendUvarint(b, req.PeerPuts)
	b = appendUvarint(b, uint64(len(req.Kinds)))
	for _, k := range req.Kinds {
		b = appendString(b, k)
	}
	b = appendString(b, req.Error)
	b = appendString(b, req.Panic)
	b = appendBytes(b, req.Stack)
	// The gob result rides last so the encoder appends it in one copy.
	return appendBytes(b, req.Result)
}

func parseResultRequest(p []byte) (resultRequest, error) {
	r := &byteReader{p: p}
	var req resultRequest
	req.Worker = r.str("worker name", maxWireStr)
	req.JobID = int64(r.uvarint("job id"))
	req.Refill = int(r.uvarint("refill"))
	req.FetchDirect = r.uvarint("direct fetches")
	req.FetchFallback = r.uvarint("fallback fetches")
	req.PeerPuts = r.uvarint("peer puts")
	if n := r.count("kinds", maxWireKinds); r.err == nil && n > 0 {
		req.Kinds = make([]string, n)
		for i := range req.Kinds {
			req.Kinds[i] = r.str("kind", maxWireStr)
		}
	}
	req.Error = r.str("error", maxWireStr)
	req.Panic = r.str("panic", maxWireStr)
	req.Stack = r.bytes("stack", maxWireStr)
	req.Result = r.bytes("result", wire.MaxPayload)
	return req, r.finish("result request")
}

// --- ADVERT / FETCH / CELL (peer cell exchange) --------------------------

func appendAdvert(b []byte, req advertRequest) []byte {
	b = appendString(b, req.Worker)
	b = appendUvarint(b, req.Gen)
	b = appendBool(b, req.Full)
	b = appendUvarint(b, uint64(req.M))
	b = appendUvarint(b, uint64(req.K))
	return appendBytes(b, req.Bits)
}

func parseAdvert(p []byte) (advertRequest, error) {
	r := &byteReader{p: p}
	var req advertRequest
	req.Worker = r.str("worker name", maxWireStr)
	req.Gen = r.uvarint("advert generation")
	req.Full = r.bool("advert full flag")
	m := r.uvarint("filter bits")
	if r.err == nil && m > maxFilterBytes*8 {
		r.fail("dist: filter of %d bits exceeds the %d-bit bound", m, maxFilterBytes*8)
	}
	req.M = uint32(m)
	k := r.uvarint("filter hash count")
	if r.err == nil && (k < 1 || k > maxFilterHashes) {
		r.fail("dist: bogus filter hash count %d (want 1..%d)", k, maxFilterHashes)
	}
	req.K = uint8(k)
	req.Bits = r.bytes("filter bit array", maxFilterBytes)
	if r.err == nil && uint64(len(req.Bits)) != (m+7)/8 {
		r.fail("dist: filter bit array of %d bytes does not match its %d-bit geometry", len(req.Bits), m)
	}
	return req, r.finish("advert")
}

func appendFetchRequest(b []byte, req fetchRequest) []byte {
	b = appendString(b, req.Worker)
	return appendString(b, req.Key)
}

func parseFetchRequest(p []byte) (fetchRequest, error) {
	r := &byteReader{p: p}
	var req fetchRequest
	req.Worker = r.str("worker name", maxWireStr)
	req.Key = r.str("cell key", maxWireStr)
	return req, r.finish("fetch request")
}

func appendCell(b []byte, resp fetchResponse) []byte {
	b = appendBool(b, resp.Found)
	// The raw entry rides last so large cells append in one copy.
	return appendBytes(b, resp.Raw)
}

func parseCell(p []byte) (fetchResponse, error) {
	r := &byteReader{p: p}
	var resp fetchResponse
	resp.Found = r.bool("cell found flag")
	resp.Raw = r.bytes("raw cell entry", wire.MaxPayload)
	if err := r.finish("cell"); err != nil {
		return resp, err
	}
	if !resp.Found && len(resp.Raw) > 0 {
		return resp, fmt.Errorf("dist: cell message: %d payload bytes on a not-found reply", len(resp.Raw))
	}
	return resp, nil
}

// --- SUBMIT / SWEEP (sweep service submissions) --------------------------

// maxSweepPriority bounds the priority a submission may carry: enough for
// any sane scheduling scheme, tight enough that a corrupt varint fails the
// parse instead of minting a sweep that preempts everything forever.
const maxSweepPriority = 1 << 20

func appendSubmit(b []byte, req SubmitRequest) []byte {
	b = appendString(b, req.Exp)
	b = appendString(b, req.Scale)
	b = appendUvarint(b, uint64(req.Priority))
	b = appendUvarint(b, uint64(len(req.Seeds)))
	for _, s := range req.Seeds {
		b = appendUvarint(b, s)
	}
	return b
}

func parseSubmit(p []byte) (SubmitRequest, error) {
	r := &byteReader{p: p}
	var req SubmitRequest
	req.Exp = r.str("experiment id", maxWireStr)
	req.Scale = r.str("sweep scale", maxWireStr)
	prio := r.uvarint("sweep priority")
	if r.err == nil && prio > maxSweepPriority {
		r.fail("dist: sweep priority %d exceeds bound %d", prio, maxSweepPriority)
	}
	req.Priority = int(prio)
	if n := r.count("seeds", maxWireSeeds); r.err == nil && n > 0 {
		req.Seeds = make([]uint64, n)
		for i := range req.Seeds {
			req.Seeds[i] = r.uvarint("seed")
		}
	}
	return req, r.finish("submit")
}

// appendSweep encodes a SUBMIT reply; rejection travels in-band as the Err
// string so the connection survives a refused submission.
func appendSweep(b []byte, resp SubmitResponse) []byte {
	b = appendString(b, resp.ID)
	b = appendUvarint(b, uint64(resp.Position))
	return appendString(b, resp.Err)
}

func parseSweep(p []byte) (SubmitResponse, error) {
	r := &byteReader{p: p}
	var resp SubmitResponse
	resp.ID = r.str("sweep id", maxWireStr)
	resp.Position = int(r.uvarint("queue position"))
	resp.Err = r.str("submit error", maxWireStr)
	return resp, r.finish("sweep")
}

// --- PUT / PUT-ACK (peer-to-peer cell replication) -----------------------

func appendPut(b []byte, req putRequest) []byte {
	b = appendString(b, req.Worker)
	b = appendString(b, req.Key)
	// The raw entry rides last so large cells append in one copy.
	return appendBytes(b, req.Raw)
}

func parsePut(p []byte) (putRequest, error) {
	r := &byteReader{p: p}
	var req putRequest
	req.Worker = r.str("worker name", maxWireStr)
	req.Key = r.str("cell key", maxWireStr)
	req.Raw = r.bytes("raw cell entry", wire.MaxPayload)
	if err := r.finish("put"); err != nil {
		return req, err
	}
	if len(req.Raw) == 0 {
		return req, fmt.Errorf("dist: put message: empty cell payload")
	}
	return req, nil
}

func appendPutAck(b []byte, resp putResponse) []byte {
	return appendBool(b, resp.Accepted)
}

func parsePutAck(p []byte) (putResponse, error) {
	r := &byteReader{p: p}
	var resp putResponse
	resp.Accepted = r.bool("put accepted flag")
	return resp, r.finish("put ack")
}
