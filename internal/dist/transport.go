package dist

// Worker-side transport seam. The worker's protocol logic (slot loops,
// batching, heartbeats, retries) speaks to an abstract transport; three
// implementations exist:
//
//   - binaryTransport: one persistent TCP connection carrying wire frames,
//     multiplexed by stream id across the worker's slots. Connection drops
//     reconnect with capped exponential backoff plus jitter; an auth
//     rejection is sticky and terminal.
//   - httpTransport: the original JSON-over-HTTP path, one request per
//     protocol action. Retained for /dist/status, old coordinators, and
//     -wire=http; also what the coordinator's loopback co-execution uses
//     (WorkerOptions.Client routes through the coordinator's own handler
//     without a socket).
//
// Selection: WorkerOptions.Wire forces one; the default negotiates — try
// the binary upgrade, and if the coordinator answers with a plain HTTP
// status instead of 101 Switching Protocols, fall back to HTTP/JSON for
// the life of the worker.

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"net/url"
	"sync"
	"time"

	"repro/internal/cellstore"
	"repro/internal/dist/wire"
)

// transport is one worker's protocol plumbing. Lease returns (nil, nil)
// when the coordinator has no work. All methods are safe for concurrent
// use across slots.
//
// Advert publishes the worker's current cell-store indicator and returns
// roughly how many bytes the advertisement cost on the wire (the caller
// paces the next advert against its bandwidth budget with that figure).
// The transport owns full-versus-delta strategy: it remembers the last
// filter the coordinator applied and sends the XOR delta when geometry and
// session line up, a full filter otherwise.
type transport interface {
	Lease(ctx context.Context, req leaseRequest) (*leaseResponse, error)
	Heartbeat(ctx context.Context, req heartbeatRequest) (*heartbeatResponse, error)
	Result(ctx context.Context, req resultRequest) (*resultResponse, error)
	Advert(ctx context.Context, f *cellFilter) (sentBytes int, err error)
	Fetch(ctx context.Context, req fetchRequest) (*fetchResponse, error)
	Submit(ctx context.Context, req SubmitRequest) (*SubmitResponse, error)
	Close() error
}

// newTransport builds the transport selected by o.Wire.
func newTransport(o WorkerOptions) (transport, error) {
	switch o.Wire {
	case "http":
		return &httpTransport{opt: o}, nil
	case "binary":
		bt, err := newBinaryTransport(o, true)
		if err != nil {
			return nil, err
		}
		return bt, nil
	case "", "auto":
		if o.Client != nil {
			// A custom client (the loopback co-execution transport, tests
			// with shortened timeouts) has no socket to upgrade.
			return &httpTransport{opt: o}, nil
		}
		bt, err := newBinaryTransport(o, false)
		if err != nil || bt == nil {
			// A URL the binary dialer cannot use (https, opaque) degrades
			// to the HTTP transport in auto mode.
			return &httpTransport{opt: o}, nil
		}
		return bt, nil
	default:
		return nil, fmt.Errorf("dist: unknown WorkerOptions.Wire %q (want \"\", \"auto\", \"binary\", or \"http\")", o.Wire)
	}
}

// --- HTTP/JSON ----------------------------------------------------------

// httpTransport is one JSON POST per protocol action (the v2 protocol).
type httpTransport struct {
	opt WorkerOptions

	// Advert delta state: the last filter the coordinator acknowledged and
	// its generation. HTTP has no session, so NeedFull replies (coordinator
	// restarted, request lost) trigger an immediate full resend.
	advMu    sync.Mutex
	lastSent *cellFilter
	advGen   uint64
}

func (t *httpTransport) Close() error { return nil }

func (t *httpTransport) Advert(ctx context.Context, f *cellFilter) (int, error) {
	t.advMu.Lock()
	defer t.advMu.Unlock()
	req := advertRequest{Worker: t.opt.name(), Gen: t.advGen + 1, M: f.m, K: f.k}
	if t.lastSent != nil && f.sameShape(t.lastSent) {
		req.Bits = f.xor(t.lastSent)
	} else {
		req.Full = true
		req.Bits = f.bits
	}
	sent, resp, err := t.postAdvert(ctx, req)
	if err != nil {
		return sent, err
	}
	if resp.NeedFull {
		req.Full = true
		req.Gen++
		req.Bits = f.bits
		n, resp2, err := t.postAdvert(ctx, req)
		sent += n
		if err != nil {
			return sent, err
		}
		if resp2.NeedFull {
			return sent, fmt.Errorf("advert: coordinator demanded a full filter twice")
		}
	}
	t.lastSent = f.clone()
	t.advGen = req.Gen
	return sent, nil
}

func (t *httpTransport) postAdvert(ctx context.Context, req advertRequest) (int, advertResponse, error) {
	// Marshal once up front for the byte count the budget pacing needs;
	// postJSONBody re-marshals, which is noise next to the filter bytes.
	body, err := json.Marshal(req)
	if err != nil {
		return 0, advertResponse{}, err
	}
	var resp advertResponse
	status, err := postJSONBody(ctx, t.opt, "/dist/advert", req, &resp)
	if err != nil {
		return 0, advertResponse{}, err
	}
	switch status {
	case http.StatusOK:
		return len(body), resp, nil
	case http.StatusUnauthorized:
		return len(body), advertResponse{}, &AuthError{Coordinator: t.opt.Coordinator}
	default:
		return len(body), advertResponse{}, fmt.Errorf("advert: HTTP %d", status)
	}
}

func (t *httpTransport) Fetch(ctx context.Context, req fetchRequest) (*fetchResponse, error) {
	if req.Worker == "" {
		req.Worker = t.opt.name()
	}
	var resp fetchResponse
	status, err := postJSONBody(ctx, t.opt, "/dist/fetch", req, &resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &resp, nil
	case http.StatusUnauthorized:
		return nil, &AuthError{Coordinator: t.opt.Coordinator}
	default:
		return nil, fmt.Errorf("fetch: HTTP %d", status)
	}
}

// postJSONBody sends one JSON request and decodes the response body (if
// any) into out, returning the HTTP status.
func postJSONBody(ctx context.Context, o WorkerOptions, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, o.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if o.Secret != "" {
		req.Header.Set(secretHeader, o.Secret)
	}
	resp, err := o.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// Submit posts one named sweep submission; rejection by a coordinator that
// is not a sweep service travels in-band as SubmitResponse.Err.
func (t *httpTransport) Submit(ctx context.Context, req SubmitRequest) (*SubmitResponse, error) {
	var resp SubmitResponse
	status, err := postJSONBody(ctx, t.opt, "/dist/submit", req, &resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &resp, nil
	case http.StatusUnauthorized:
		return nil, &AuthError{Coordinator: t.opt.Coordinator}
	default:
		return nil, fmt.Errorf("submit: HTTP %d", status)
	}
}

func (t *httpTransport) Lease(ctx context.Context, req leaseRequest) (*leaseResponse, error) {
	var resp leaseResponse
	status, err := postJSONBody(ctx, t.opt, "/dist/lease", req, &resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		return &resp, nil
	case http.StatusUnauthorized:
		return nil, &AuthError{Coordinator: t.opt.Coordinator}
	default:
		return nil, fmt.Errorf("lease: HTTP %d", status)
	}
}

func (t *httpTransport) Heartbeat(ctx context.Context, req heartbeatRequest) (*heartbeatResponse, error) {
	var resp heartbeatResponse
	status, err := postJSONBody(ctx, t.opt, "/dist/heartbeat", req, &resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &resp, nil
	case http.StatusUnauthorized:
		return nil, &AuthError{Coordinator: t.opt.Coordinator}
	default:
		return nil, fmt.Errorf("heartbeat: HTTP %d", status)
	}
}

func (t *httpTransport) Result(ctx context.Context, req resultRequest) (*resultResponse, error) {
	var resp resultResponse
	status, err := postJSONBody(ctx, t.opt, "/dist/result", req, &resp)
	if err != nil {
		return nil, err
	}
	switch status {
	case http.StatusOK:
		return &resp, nil
	case http.StatusUnauthorized:
		return nil, &AuthError{Coordinator: t.opt.Coordinator}
	default:
		return nil, fmt.Errorf("result: HTTP %d", status)
	}
}

// --- Binary wire --------------------------------------------------------

// Reconnect backoff: exponential from base to cap, with jitter in
// [delay/2, delay) so a fleet severed by one coordinator restart does not
// redial in lockstep.
const (
	wireBackoffBase = 100 * time.Millisecond
	wireBackoffMax  = 5 * time.Second
)

func reconnectDelay(fails int) time.Duration {
	if fails < 1 {
		fails = 1
	}
	d := wireBackoffBase
	for i := 1; i < fails && d < wireBackoffMax; i++ {
		d *= 2
	}
	if d > wireBackoffMax {
		d = wireBackoffMax
	}
	return d/2 + rand.N(d/2)
}

// wireReply is one response frame routed to its waiting stream.
type wireReply struct {
	h       wire.Header
	payload []byte
	err     error
}

// wireSession is one established connection: a writer shared by all slots
// and a reader goroutine demultiplexing response frames by stream id.
type wireSession struct {
	conn net.Conn
	wr   *wire.Writer

	mu      sync.Mutex
	dead    bool
	err     error
	next    uint32
	waiters map[uint32]chan wireReply
}

// register claims a fresh stream id and parks a reply channel on it.
func (s *wireSession) register() (uint32, chan wireReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return 0, nil, s.err
	}
	s.next++
	// Stream 0 is connection scope and the high bit marks
	// coordinator-initiated (relay) streams; worker streams stay between.
	if s.next == 0 || s.next&serverStreamBit != 0 {
		s.next = 1
	}
	ch := make(chan wireReply, 1)
	s.waiters[s.next] = ch
	return s.next, ch, nil
}

func (s *wireSession) unregister(stream uint32) {
	s.mu.Lock()
	delete(s.waiters, stream)
	s.mu.Unlock()
}

// deliver routes one response frame; unknown streams (canceled waiters)
// are dropped.
func (s *wireSession) deliver(h wire.Header, payload []byte) {
	s.mu.Lock()
	ch := s.waiters[h.Stream]
	delete(s.waiters, h.Stream)
	s.mu.Unlock()
	if ch != nil {
		ch <- wireReply{h: h, payload: payload}
	}
}

// fail marks the session dead and wakes every waiter with err. Idempotent.
func (s *wireSession) fail(err error) {
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	s.dead = true
	s.err = err
	waiters := s.waiters
	s.waiters = map[uint32]chan wireReply{}
	s.mu.Unlock()
	s.conn.Close()
	for _, ch := range waiters {
		ch <- wireReply{err: err}
	}
}

// binaryTransport dials, upgrades, authenticates, and multiplexes; it owns
// reconnection policy and the sticky auth/fallback states.
type binaryTransport struct {
	opt    WorkerOptions
	name   string
	host   string           // dial target from the coordinator URL
	forced bool             // -wire=binary: never fall back to HTTP
	store  *cellstore.Store // serves relayed FETCHes; nil when no CacheDir

	mu       sync.Mutex
	sess     *wireSession
	fails    int       // consecutive connect failures (drops count as one)
	nextDial time.Time // backoff gate
	authErr  error     // sticky: terminal auth rejection
	fallback transport // sticky: negotiated down to HTTP/JSON

	// Advert delta state, valid only for the session it was sent on: a
	// reconnect starts over with a full filter (the coordinator's table
	// entry may be stale or gone, and frame ordering only holds within one
	// connection).
	advMu    sync.Mutex
	advSess  *wireSession
	lastSent *cellFilter
	advGen   uint64
}

func newBinaryTransport(o WorkerOptions, forced bool) (*binaryTransport, error) {
	u, err := url.Parse(o.Coordinator)
	if err != nil {
		return nil, fmt.Errorf("dist: coordinator URL %q: %w", o.Coordinator, err)
	}
	if u.Scheme != "http" || u.Host == "" {
		if forced {
			return nil, fmt.Errorf("dist: the binary wire transport needs an http://host:port coordinator URL, got %q", o.Coordinator)
		}
		return nil, nil // caller falls back to HTTP
	}
	return &binaryTransport{opt: o, name: o.name(), host: u.Host, forced: forced, store: cellstore.For(o.CacheDir)}, nil
}

func (t *binaryTransport) Close() error {
	t.mu.Lock()
	s := t.sess
	t.mu.Unlock()
	if s != nil {
		s.fail(fmt.Errorf("dist: transport closed"))
	}
	return nil
}

// ensure returns the live session, dialing (with backoff) when none exists.
func (t *binaryTransport) ensure(ctx context.Context) (*wireSession, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.authErr != nil {
		return nil, t.authErr
	}
	if t.fallback != nil {
		return nil, nil // caller delegates
	}
	if t.sess != nil {
		return t.sess, nil
	}
	if wait := time.Until(t.nextDial); wait > 0 {
		return nil, fmt.Errorf("dist: wire reconnect backing off %v (attempt %d)", wait.Round(time.Millisecond), t.fails)
	}
	sess, err := t.dial(ctx)
	if err != nil {
		if t.authErr == nil && t.fallback == nil {
			t.fails++
			t.nextDial = time.Now().Add(reconnectDelay(t.fails))
		}
		return nil, err
	}
	t.fails = 0
	t.sess = sess
	return sess, nil
}

// dial establishes one connection: TCP, HTTP upgrade, HELLO/WELCOME. It
// runs with t.mu held (every slot needs the same connection anyway).
func (t *binaryTransport) dial(ctx context.Context) (*wireSession, error) {
	d := net.Dialer{Timeout: wireHandshakeTimeout}
	conn, err := d.DialContext(ctx, "tcp", t.host)
	if err != nil {
		return nil, fmt.Errorf("dist: dial coordinator: %w", err)
	}
	conn.SetDeadline(time.Now().Add(wireHandshakeTimeout))
	if _, err := fmt.Fprintf(conn, "POST /dist/wire HTTP/1.1\r\nHost: %s\r\nContent-Length: 0\r\nConnection: Upgrade\r\nUpgrade: %s\r\n\r\n",
		t.host, wireProtoName); err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: wire upgrade request: %w", err)
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, &http.Request{Method: http.MethodPost})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: wire upgrade response: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		resp.Body.Close()
		conn.Close()
		// A well-formed HTTP refusal is negotiation, not an outage: the
		// coordinator (old build, or -wire=http) does not speak the wire.
		if t.forced {
			return nil, fmt.Errorf("%w (HTTP %d; coordinator built before the binary wire, or -wire=http)", wire.ErrNotWire, resp.StatusCode)
		}
		t.fallback = &httpTransport{opt: t.opt}
		t.opt.logf("worker %s: coordinator %s answered HTTP %d to the wire upgrade; falling back to HTTP/JSON",
			t.name, t.opt.Coordinator, resp.StatusCode)
		return nil, nil
	}

	wr := wire.NewWriter(conn)
	digest := sha256.Sum256([]byte(t.opt.Secret))
	hello := wire.GetBuffer()
	*hello = appendHello(*hello, t.name, digest[:], t.opt.PeerAddr)
	err = wr.WriteFrame(wire.FrameHello, 0, 0, *hello)
	wire.PutBuffer(hello)
	if err != nil {
		conn.Close()
		return nil, err
	}
	rd := wire.NewReader(br)
	h, payload, err := rd.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("dist: wire handshake: %w", err)
	}
	switch {
	case h.Type == wire.FrameError && h.Flags&wire.FlagAuthFailed != 0:
		conn.Close()
		t.authErr = &AuthError{Coordinator: t.opt.Coordinator}
		return nil, t.authErr
	case h.Type == wire.FrameError:
		conn.Close()
		return nil, fmt.Errorf("dist: coordinator rejected the connection: %s", parseErrorFrame(payload))
	case h.Type != wire.FrameWelcome:
		conn.Close()
		return nil, fmt.Errorf("dist: wire handshake: expected WELCOME, got %s", wire.TypeName(h.Type))
	}
	if err := parseWelcome(payload); err != nil {
		conn.Close()
		return nil, err
	}
	conn.SetDeadline(time.Time{})

	sess := &wireSession{conn: conn, wr: wr, waiters: map[uint32]chan wireReply{}}
	go t.readLoop(sess, rd)
	return sess, nil
}

// readLoop demultiplexes response frames until the connection dies, then
// fails the session (slots redial via ensure's backoff gate).
func (t *binaryTransport) readLoop(sess *wireSession, rd *wire.Reader) {
	for {
		h, payload, err := rd.ReadFrame()
		if err != nil {
			t.dropSession(sess, fmt.Errorf("dist: wire connection lost: %w", err))
			return
		}
		if h.Type == wire.FrameError {
			msg := parseErrorFrame(payload)
			var terr error = fmt.Errorf("dist: coordinator error: %s", msg)
			if h.Flags&wire.FlagAuthFailed != 0 {
				terr = &AuthError{Coordinator: t.opt.Coordinator}
			}
			t.dropSession(sess, terr)
			return
		}
		if h.Type == wire.FrameFetch && h.Stream&serverStreamBit != 0 {
			// Coordinator-initiated relay: another worker asked for a cell
			// this one advertised. Served off the read loop so a slow disk
			// read never stalls reply demultiplexing; the Writer serializes
			// the CELL against concurrent request frames.
			req, err := parseFetchRequest(payload)
			if err != nil {
				t.dropSession(sess, err)
				return
			}
			go t.serveRelayFetch(sess, h.Stream, req)
			continue
		}
		// The reader reuses its frame buffer; the waiter owns its copy.
		cp := append([]byte(nil), payload...)
		sess.deliver(h, cp)
	}
}

// serveRelayFetch answers one relayed FETCH from this worker's local store
// (not-found when the store lacks the key — an indicator false positive —
// or the worker has no store at all).
func (t *binaryTransport) serveRelayFetch(sess *wireSession, stream uint32, req fetchRequest) {
	var resp fetchResponse
	if t.store != nil {
		if raw, ok := t.store.GetRaw(req.Key); ok {
			resp = fetchResponse{Found: true, Raw: raw}
		}
	}
	buf := wire.GetBuffer()
	*buf = appendCell(*buf, resp)
	if err := sess.wr.WriteFrame(wire.FrameCell, 0, stream, *buf); err != nil {
		t.dropSession(sess, err)
	}
	wire.PutBuffer(buf)
}

// dropSession fails sess and arms the reconnect backoff (or the sticky
// auth error).
func (t *binaryTransport) dropSession(sess *wireSession, err error) {
	t.mu.Lock()
	if t.sess == sess {
		t.sess = nil
		if ae, ok := err.(*AuthError); ok {
			t.authErr = ae
		} else {
			t.fails++
			t.nextDial = time.Now().Add(reconnectDelay(t.fails))
			t.opt.logf("worker %s: %v; reconnecting in <= %v", t.name, err, reconnectDelay(t.fails).Round(time.Millisecond))
		}
	}
	t.mu.Unlock()
	sess.fail(err)
}

// rpc performs one request/reply frame exchange on a fresh stream.
func (t *binaryTransport) rpc(ctx context.Context, reqType byte, payload []byte, wantType byte) ([]byte, error) {
	sess, err := t.ensure(ctx)
	if err != nil {
		return nil, err
	}
	if sess == nil {
		return nil, errUseFallback
	}
	stream, ch, err := sess.register()
	if err != nil {
		return nil, err
	}
	if err := sess.wr.WriteFrame(reqType, 0, stream, payload); err != nil {
		sess.unregister(stream)
		t.dropSession(sess, err)
		return nil, err
	}
	select {
	case <-ctx.Done():
		sess.unregister(stream)
		return nil, ctx.Err()
	case reply := <-ch:
		if reply.err != nil {
			return nil, reply.err
		}
		if reply.h.Type != wantType {
			err := fmt.Errorf("dist: expected %s reply, got %s", wire.TypeName(wantType), wire.TypeName(reply.h.Type))
			t.dropSession(sess, err)
			return nil, err
		}
		return reply.payload, nil
	}
}

// errUseFallback signals (internally) that negotiation selected HTTP.
var errUseFallback = fmt.Errorf("dist: use HTTP fallback")

// delegate returns the sticky HTTP fallback transport, if negotiated.
func (t *binaryTransport) delegate() transport {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fallback
}

func (t *binaryTransport) Lease(ctx context.Context, req leaseRequest) (*leaseResponse, error) {
	if d := t.delegate(); d != nil {
		return d.Lease(ctx, req)
	}
	buf := wire.GetBuffer()
	*buf = appendLeaseRequest(*buf, req)
	payload, err := t.rpc(ctx, wire.FrameLease, *buf, wire.FrameGrant)
	wire.PutBuffer(buf)
	if err == errUseFallback {
		return t.delegate().Lease(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	resp, err := parseGrant(payload)
	if err != nil {
		return nil, err
	}
	if len(resp.Jobs) == 0 {
		// An empty grant is the binary spelling of HTTP 204: no work.
		return nil, nil
	}
	return &resp, nil
}

func (t *binaryTransport) Heartbeat(ctx context.Context, req heartbeatRequest) (*heartbeatResponse, error) {
	if d := t.delegate(); d != nil {
		return d.Heartbeat(ctx, req)
	}
	buf := wire.GetBuffer()
	*buf = appendHeartbeatRequest(*buf, req)
	payload, err := t.rpc(ctx, wire.FrameHeartbeat, *buf, wire.FrameBeatAck)
	wire.PutBuffer(buf)
	if err == errUseFallback {
		return t.delegate().Heartbeat(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	resp, err := parseHeartbeatResponse(payload)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

func (t *binaryTransport) Result(ctx context.Context, req resultRequest) (*resultResponse, error) {
	if d := t.delegate(); d != nil {
		return d.Result(ctx, req)
	}
	buf := wire.GetBuffer()
	*buf = appendResultRequest(*buf, req)
	payload, err := t.rpc(ctx, wire.FrameResult, *buf, wire.FrameResultAck)
	wire.PutBuffer(buf)
	if err == errUseFallback {
		return t.delegate().Result(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	grant, err := parseGrant(payload)
	if err != nil {
		return nil, err
	}
	resp := resultResponse(grant)
	return &resp, nil
}

// Advert sends the indicator as a fire-and-forget ADVERT frame on stream 0
// (the coordinator never replies; per-connection frame ordering makes
// deltas safe without acknowledgment). The reported size is the
// uncompressed payload plus header — an overestimate once the shared
// deflate context warms up, which errs the budget pacing conservative.
func (t *binaryTransport) Advert(ctx context.Context, f *cellFilter) (int, error) {
	if d := t.delegate(); d != nil {
		return d.Advert(ctx, f)
	}
	sess, err := t.ensure(ctx)
	if err != nil {
		return 0, err
	}
	if sess == nil {
		return t.delegate().Advert(ctx, f)
	}
	t.advMu.Lock()
	defer t.advMu.Unlock()
	req := advertRequest{Worker: t.name, Gen: t.advGen + 1, M: f.m, K: f.k}
	if sess == t.advSess && t.lastSent != nil && f.sameShape(t.lastSent) {
		req.Bits = f.xor(t.lastSent)
	} else {
		req.Full = true
		req.Gen = 1
		req.Bits = f.bits
	}
	buf := wire.GetBuffer()
	*buf = appendAdvert(*buf, req)
	sent := len(*buf) + wire.HeaderSize
	err = sess.wr.WriteFrame(wire.FrameAdvert, 0, 0, *buf)
	wire.PutBuffer(buf)
	if err != nil {
		t.dropSession(sess, err)
		return 0, err
	}
	t.advSess = sess
	t.lastSent = f.clone()
	t.advGen = req.Gen
	return sent, nil
}

// Submit carries one named sweep submission as a SUBMIT/SWEEP frame pair
// (request/reply like any other RPC).
func (t *binaryTransport) Submit(ctx context.Context, req SubmitRequest) (*SubmitResponse, error) {
	if d := t.delegate(); d != nil {
		return d.Submit(ctx, req)
	}
	buf := wire.GetBuffer()
	*buf = appendSubmit(*buf, req)
	payload, err := t.rpc(ctx, wire.FrameSubmit, *buf, wire.FrameSweep)
	wire.PutBuffer(buf)
	if err == errUseFallback {
		return t.delegate().Submit(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	resp, err := parseSweep(payload)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Fetch asks the coordinator for one raw cell entry (request/reply like
// any other RPC; the reply may have been relayed from a peer, but this
// worker only ever sees the coordinator).
func (t *binaryTransport) Fetch(ctx context.Context, req fetchRequest) (*fetchResponse, error) {
	if d := t.delegate(); d != nil {
		return d.Fetch(ctx, req)
	}
	if req.Worker == "" {
		req.Worker = t.name
	}
	buf := wire.GetBuffer()
	*buf = appendFetchRequest(*buf, req)
	payload, err := t.rpc(ctx, wire.FrameFetch, *buf, wire.FrameCell)
	wire.PutBuffer(buf)
	if err == errUseFallback {
		return t.delegate().Fetch(ctx, req)
	}
	if err != nil {
		return nil, err
	}
	resp, err := parseCell(payload)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}
