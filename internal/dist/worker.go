package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"time"

	"repro/internal/runner"
)

// WorkerOptions configures one worker process (or in-process worker loop).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8497".
	Coordinator string
	// Name identifies the worker in leases and logs; empty derives
	// "host:pid".
	Name string
	// Slots is the number of jobs executed concurrently (one pooled
	// simulation each). Zero or negative selects 1; sweep cells are
	// single-threaded, so one slot per core is the useful maximum.
	Slots int
	// Kinds restricts which job kinds this worker leases; nil advertises
	// every executor registered in this process (runner.Kinds).
	Kinds []string
	// Poll is the idle re-poll interval when the coordinator has no work.
	// Zero selects 500ms.
	Poll time.Duration
	// Client overrides the HTTP client (tests shorten timeouts).
	Client *http.Client
	// Log, when non-nil, receives one line per lifecycle event (lease,
	// completion, failure); nil is silent.
	Log func(format string, args ...any)
}

func (o WorkerOptions) name() string {
	if o.Name != "" {
		return o.Name
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

func (o WorkerOptions) slots() int {
	if o.Slots < 1 {
		return 1
	}
	return o.Slots
}

func (o WorkerOptions) poll() time.Duration {
	if o.Poll > 0 {
		return o.Poll
	}
	return 500 * time.Millisecond
}

func (o WorkerOptions) kinds() []string {
	if o.Kinds != nil {
		return o.Kinds
	}
	return runner.Kinds()
}

func (o WorkerOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// RunWorker leases and executes jobs until ctx is canceled, then returns
// ctx's error. Each slot loops independently: lease one job, heartbeat at a
// third of the lease TTL while the registered executor runs, post the
// result (or the captured panic). Connection errors — coordinator not up
// yet, restarting, partitioned — degrade to idle polling, so workers may be
// started before the coordinator and survive coordinator restarts.
//
// A worker killed mid-job simply stops heartbeating: the coordinator
// reassigns the job when the lease expires, and any cells the dead worker
// already published remain in the shared store, so nothing completed is
// ever re-simulated.
//
// A worker with nothing to advertise — no Kinds configured and no
// executors registered — refuses to start: the coordinator grants such a
// worker nothing, so it could only ever poll uselessly.
func RunWorker(ctx context.Context, o WorkerOptions) error {
	if len(o.kinds()) == 0 {
		return fmt.Errorf("dist: worker has no job kinds: register executors (e.g. experiments.RegisterCellExecutor) or set WorkerOptions.Kinds before starting")
	}
	w := &worker{opt: o, name: o.name()}
	done := make(chan struct{})
	for i := 0; i < o.slots(); i++ {
		go func() {
			w.loop(ctx)
			done <- struct{}{}
		}()
	}
	for i := 0; i < o.slots(); i++ {
		<-done
	}
	return ctx.Err()
}

type worker struct {
	opt  WorkerOptions
	name string
}

func (w *worker) loop(ctx context.Context) {
	for {
		lease, err := w.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.opt.logf("worker %s: lease: %v (will retry)", w.name, err)
			lease = nil
		}
		if lease == nil {
			select {
			case <-ctx.Done():
				return
			case <-time.After(w.opt.poll()):
			}
			continue
		}
		w.execute(ctx, lease)
		if ctx.Err() != nil {
			return
		}
	}
}

// lease asks for one job; nil means no work available.
func (w *worker) lease(ctx context.Context) (*leaseResponse, error) {
	var resp leaseResponse
	status, err := w.post(ctx, "/dist/lease", leaseRequest{Worker: w.name, Kinds: w.opt.kinds()}, &resp)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("lease: HTTP %d", status)
	}
	return &resp, nil
}

// execute runs one leased job with heartbeats and posts its outcome.
func (w *worker) execute(ctx context.Context, lease *leaseResponse) {
	w.opt.logf("worker %s: job %d (%s)", w.name, lease.JobID, lease.Label)

	// Heartbeat at a third of the TTL while the executor runs, so one
	// missed beat (GC pause, transient network loss) never costs the lease.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := time.Duration(lease.LeaseMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-t.C:
				var hb heartbeatResponse
				w.post(hbCtx, "/dist/heartbeat", heartbeatRequest{Worker: w.name, JobIDs: []int64{lease.JobID}}, &hb)
			}
		}
	}()

	res := w.runJob(lease)
	stopHB()
	<-hbDone
	if ctx.Err() != nil {
		// Killed mid-job: do not post — the lease will expire and the job
		// will be reassigned, exactly as if the process had died.
		return
	}
	// Retry the result post a few times: losing a finished result to one
	// dropped packet would waste a whole simulation.
	for attempt := 0; ; attempt++ {
		status, err := w.post(ctx, "/dist/result", res, nil)
		if err == nil && status == http.StatusOK {
			return
		}
		if attempt >= 2 || ctx.Err() != nil {
			w.opt.logf("worker %s: job %d result lost: status=%d err=%v", w.name, lease.JobID, status, err)
			return
		}
		time.Sleep(w.opt.poll())
	}
}

// runJob executes the job's registered executor, capturing panics into the
// result message (they surface coordinator-side as *runner.PanicError).
func (w *worker) runJob(lease *leaseResponse) (res resultRequest) {
	res = resultRequest{Worker: w.name, JobID: lease.JobID}
	defer func() {
		if r := recover(); r != nil {
			res.Panic = fmt.Sprint(r)
			res.Stack = debug.Stack()
		}
	}()
	fn := runner.ExecutorFor(lease.Kind)
	if fn == nil {
		res.Error = fmt.Sprintf("no executor registered for job kind %q", lease.Kind)
		return res
	}
	out, err := fn(lease.Spec)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Result = out
	return res
}

// post sends one JSON request and decodes the response body (if any) into
// out, returning the HTTP status.
func (w *worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.opt.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// Status fetches a coordinator's progress snapshot (the CLI's aggregated
// progress line and the smoke tests use it).
func Status(ctx context.Context, client *http.Client, coordinator string) (done, total, workers int, active bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordinator+"/dist/status", nil)
	if err != nil {
		return 0, 0, 0, false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, 0, false, err
	}
	defer resp.Body.Close()
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, 0, 0, false, err
	}
	return st.Done, st.Total, st.Workers, st.Active, nil
}
