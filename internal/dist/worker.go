package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellstore"
	"repro/internal/runner"
)

// WorkerOptions configures one worker process (or in-process worker loop).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8497".
	Coordinator string
	// Name identifies the worker in leases and logs; empty derives
	// "host:pid".
	Name string
	// Slots is the number of jobs executed concurrently (one pooled
	// simulation each). Zero or negative selects 1; sweep cells are
	// single-threaded, so one slot per core is the useful maximum.
	Slots int
	// Kinds restricts which job kinds this worker leases; nil advertises
	// every executor registered in this process (runner.Kinds).
	Kinds []string
	// Poll is the idle re-poll interval when the coordinator has no work.
	// Zero selects 500ms.
	Poll time.Duration
	// Client overrides the HTTP client (tests shorten timeouts; the
	// coordinator's co-execution loop substitutes a loopback transport).
	Client *http.Client
	// Log, when non-nil, receives one line per lifecycle event (lease,
	// completion, failure, fleet progress); nil is silent.
	Log func(format string, args ...any)
	// Secret is the shared secret sent in the X-Bashsim-Secret header of
	// every request. It must match the coordinator's; a 401 is fatal (see
	// AuthError) — retrying cannot fix wrong credentials.
	Secret string
	// MaxBatch, when positive, caps how many jobs this worker accepts per
	// lease below the coordinator's LeaseBatch (bounded queue memory);
	// zero accepts the coordinator's default.
	MaxBatch int
	// Wire selects the transport. "" (or "auto") negotiates: the binary
	// framed protocol over one persistent connection when the coordinator
	// speaks it, HTTP/JSON otherwise (and always HTTP when Client is set —
	// the loopback co-execution path has no socket to upgrade). "binary"
	// and "http" force their transport; forcing binary against a
	// coordinator that only speaks HTTP retries with backoff forever.
	Wire string
	// CacheDir, when non-empty, is this worker's cell store: adverts cover
	// its keys, relayed fetches are served from it, and fetched cells are
	// installed into it. Empty disables advertising (the worker still
	// fetches — it just never serves).
	CacheDir string
	// AdvertBudget caps the advertisement stream at roughly this many
	// bytes per second: filters shrink (fewer bits per key, more false
	// positives) and refreshes stretch out to stay under it. Zero means
	// unpaced full-density adverts.
	AdvertBudget int
	// AdvertInterval is the base re-advertisement cadence (stretched by
	// AdvertBudget pacing, skipped entirely while the store is unchanged).
	// Zero selects 1s.
	AdvertInterval time.Duration
	// PeerAddr, when non-empty, starts a peer listener on this address
	// serving the worker's cell store directly to other workers (FETCH) and
	// accepting replication pushes (PUT), taking the coordinator off the
	// bulk-data path. The address is advertised to the coordinator, so it
	// must be dialable by peers — "host:0" works only if the resolved host
	// is reachable from the rest of the fleet. Requires CacheDir (without a
	// store there is nothing to serve); empty keeps the v4 relay-only
	// behavior.
	PeerAddr string
}

func (o WorkerOptions) name() string {
	if o.Name != "" {
		return o.Name
	}
	host, _ := os.Hostname()
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

func (o WorkerOptions) slots() int {
	if o.Slots < 1 {
		return 1
	}
	return o.Slots
}

func (o WorkerOptions) poll() time.Duration {
	if o.Poll > 0 {
		return o.Poll
	}
	return 500 * time.Millisecond
}

func (o WorkerOptions) kinds() []string {
	if o.Kinds != nil {
		return o.Kinds
	}
	return runner.Kinds()
}

func (o WorkerOptions) advertInterval() time.Duration {
	if o.AdvertInterval > 0 {
		return o.AdvertInterval
	}
	return time.Second
}

func (o WorkerOptions) client() *http.Client {
	if o.Client != nil {
		return o.Client
	}
	return http.DefaultClient
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// AuthError reports that the coordinator rejected this worker's shared
// secret — an HTTP 401 on the JSON transport, a terminal ERROR frame
// flagged auth-failed on the binary one. It is terminal: unlike a
// connection error, retrying with the same credentials can never succeed,
// so RunWorker returns it instead of degrading to idle polling.
type AuthError struct {
	Coordinator string
}

func (e *AuthError) Error() string {
	return fmt.Sprintf("dist: coordinator %s rejected this worker's credentials (HTTP 401): shared secret mismatch — start the worker with the coordinator's -dist-secret", e.Coordinator)
}

// RunWorker leases and executes jobs until ctx is canceled, then returns
// ctx's error. Each slot loops independently: lease a batch of jobs,
// heartbeat every in-flight job at a third of the lease TTL, execute the
// batch in order, and stream each job's result back the moment it completes
// — the result reply refills the batch, so a saturated slot stays off the
// lease endpoint entirely. Connection errors — coordinator not up yet,
// restarting, partitioned — degrade to idle polling, so workers may be
// started before the coordinator and survive coordinator restarts. A 401,
// by contrast, is fatal: RunWorker returns an *AuthError immediately
// (wrong credentials do not fix themselves).
//
// A worker killed mid-batch simply stops heartbeating: the coordinator
// reassigns the unfinished jobs of the batch when their leases expire —
// results already streamed back stay completed — and any cells the dead
// worker already published remain in the shared store, so nothing completed
// is ever re-simulated.
//
// A worker with nothing to advertise — no Kinds configured and no
// executors registered — refuses to start: the coordinator grants such a
// worker nothing, so it could only ever poll uselessly.
func RunWorker(ctx context.Context, o WorkerOptions) error {
	if len(o.kinds()) == 0 {
		return fmt.Errorf("dist: worker has no job kinds: register executors (e.g. experiments.RegisterCellExecutor) or set WorkerOptions.Kinds before starting")
	}
	store := cellstore.For(o.CacheDir)
	var peer *peerServer
	if o.PeerAddr != "" {
		if store == nil {
			return fmt.Errorf("dist: WorkerOptions.PeerAddr requires CacheDir: a peer listener with no cell store has nothing to serve")
		}
		var err error
		peer, err = startPeerServer(o.PeerAddr, o.Secret, store)
		if err != nil {
			return fmt.Errorf("dist: peer listener: %w", err)
		}
		defer peer.Close()
		// Advertise the resolved address (":0" resolves to the kernel's
		// pick) — it rides the binary HELLO and every lease request.
		o.PeerAddr = peer.Addr()
		o.logf("worker %s: peer listener on %s", o.name(), o.PeerAddr)
	}
	tr, err := newTransport(o)
	if err != nil {
		return err
	}
	defer tr.Close()
	w := &worker{
		opt: o, name: o.name(), tr: tr,
		store: store,
		hints: map[string]jobHint{},
	}
	slotCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Route the executors' cell misses through the fleet: held-hinted keys
	// are fetched before being simulated. Process-global like the executor
	// registry (one worker per process); deliberately not cleared on exit —
	// a canceled co-execution worker may outlive its Run by one cell, and a
	// stale fetcher failing closed beats a fresh one torn down mid-fetch.
	runner.SetKeyFetcher(w.fetchKey)
	if w.store != nil {
		go w.advertise(slotCtx)
	}
	errs := make(chan error, o.slots())
	for i := 0; i < o.slots(); i++ {
		go func() { errs <- w.loop(slotCtx) }()
	}
	var fatal error
	for i := 0; i < o.slots(); i++ {
		if err := <-errs; err != nil && fatal == nil {
			fatal = err
			cancel() // one slot's fatal error (401) stops the others
		}
	}
	if fatal != nil {
		return fatal
	}
	return ctx.Err()
}

type worker struct {
	opt   WorkerOptions
	name  string
	tr    transport
	store *cellstore.Store // nil when no CacheDir

	// progressMu guards the last fleet progress seen across slots, so the
	// log shows each (done, total) step once no matter which slot's reply
	// carried it.
	progressMu          sync.Mutex
	lastDone, lastTotal int

	// hints maps leased job keys to the coordinator's likely-held verdict
	// and the holder peer addresses for the direct data path; fetchKey
	// consults it so cells nobody claims skip the fetch round-trip and
	// claimed ones try their holders peer-to-peer before the coordinator
	// relay. Entries are dropped as jobs complete.
	hintMu sync.Mutex
	hints  map[string]jobHint

	// Direct-path delta counters, drained onto the next result post (the
	// coordinator cannot see peer-to-peer traffic, so workers report it).
	fetchDirect, fetchFallback, peerPuts atomic.Uint64
}

// jobHint is the per-key slice of a grant that fetchKey needs.
type jobHint struct {
	held    bool
	holders []string // peer addresses, freshest first
}

// noteHints records the held hints and holder addresses carried on a grant.
func (w *worker) noteHints(jobs []leasedJob) {
	w.hintMu.Lock()
	for _, j := range jobs {
		w.hints[j.Key] = jobHint{held: j.Held, holders: j.Holders}
	}
	w.hintMu.Unlock()
}

// dropHint forgets a completed job's hint.
func (w *worker) dropHint(key string) {
	w.hintMu.Lock()
	delete(w.hints, key)
	w.hintMu.Unlock()
}

// fetchKey is the runner.SetKeyFetcher hook: fetch key's raw entry from
// the fleet, but only when the coordinator hinted someone likely holds it.
// Holders with peer listeners are tried directly first (cheapest path, no
// coordinator in the loop), then the coordinator relay. Any failure — no
// hint, transport error, verification failure, not found — reports
// ok=false and the executor simulates locally; a direct fetch is verified
// against the key before use, so a confused or malicious peer costs a
// fallback, never a wrong result.
func (w *worker) fetchKey(key string) ([]byte, bool) {
	w.hintMu.Lock()
	hint := w.hints[key]
	w.hintMu.Unlock()
	if !hint.held {
		return nil, false
	}
	for _, addr := range hint.holders {
		raw, ok := peerFetch(context.Background(), addr, w.name, w.opt.Secret, key)
		if !ok || cellstore.VerifyRaw(key, raw) != nil {
			continue
		}
		w.fetchDirect.Add(1)
		return raw, true
	}
	// Bounded independently of any job context: a fetch is an optimization
	// with a cheap fallback, never worth a long stall.
	ctx, cancel := context.WithTimeout(context.Background(), relayTimeout+2*time.Second)
	defer cancel()
	resp, err := w.tr.Fetch(ctx, fetchRequest{Worker: w.name, Key: key})
	if err != nil || !resp.Found {
		return nil, false
	}
	if len(hint.holders) > 0 {
		// Direct was attempted and lost; the relay saved the simulation.
		w.fetchFallback.Add(1)
	}
	return resp.Raw, true
}

// replicate pushes job's freshly published cell entry to the ring owners'
// peer listeners, best-effort and asynchronous: the sweep never waits on
// replication, and a failed push only means the next fetch for the key
// relays through the coordinator instead.
func (w *worker) replicate(job leasedJob) {
	if w.store == nil || len(job.Owners) == 0 {
		return
	}
	raw, ok := w.store.GetRaw(job.Key)
	if !ok {
		return
	}
	go func() {
		for _, addr := range job.Owners {
			if peerPut(context.Background(), addr, w.name, w.opt.Secret, job.Key, raw) {
				w.peerPuts.Add(1)
			}
		}
	}()
}

// advertise periodically rebuilds the store indicator and publishes it,
// bandwidth-adaptively: the filter's bits-per-key shrink until a full send
// fits the budget, an unchanged filter is not re-sent, and each send
// defers the next by at least sentBytes/budget seconds so the advert
// stream's long-run rate stays under AdvertBudget.
// advertRetryDelay is how soon a failed advertisement is retried — fast
// relative to the base cadence, because until the first advert lands the
// coordinator computes every held hint against a table missing this worker.
const advertRetryDelay = 100 * time.Millisecond

func (w *worker) advertise(ctx context.Context) {
	var last *cellFilter
	timer := time.NewTimer(0) // first advert immediately: a cold fleet wants hints early
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		delay := w.opt.advertInterval()
		keys := w.store.Keys()
		f := buildFilter(keys, budgetBitsPerKey(len(keys), w.opt.AdvertBudget))
		if last == nil || !f.equal(last) {
			if sent, err := w.tr.Advert(ctx, f); err == nil {
				last = f
				if d := time.Duration(advertDelayMillis(sent, w.opt.AdvertBudget)) * time.Millisecond; d > delay {
					delay = d
				}
			} else if delay > advertRetryDelay {
				// The coordinator is unreachable (e.g. it starts after its
				// workers, as fleets usually do): retry well under the base
				// cadence so the first grants still carry held hints.
				delay = advertRetryDelay
			}
		}
		timer.Reset(delay)
	}
}

// noteProgress logs sweep-wide progress carried on lease, heartbeat, and
// result replies, deduplicated across slots and strictly increasing.
func (w *worker) noteProgress(done, total int) {
	if total == 0 || w.opt.Log == nil {
		return
	}
	w.progressMu.Lock()
	defer w.progressMu.Unlock()
	if total == w.lastTotal && done <= w.lastDone {
		return
	}
	w.lastDone, w.lastTotal = done, total
	w.opt.logf("worker %s: sweep %d/%d cells done fleet-wide", w.name, done, total)
}

// resetProgress forgets the last sweep's counts once a slot goes idle, so
// the next sweep — which may have the same total — logs from its start
// instead of being swallowed by the strictly-increasing guard.
func (w *worker) resetProgress() {
	w.progressMu.Lock()
	w.lastDone, w.lastTotal = 0, 0
	w.progressMu.Unlock()
}

// loop is one slot: lease a batch, execute it (streaming results and
// refilling), repeat. It returns nil on cancellation and the error on a
// fatal condition (auth rejection).
func (w *worker) loop(ctx context.Context) error {
	for {
		lease, err := w.lease(ctx)
		if err != nil {
			var ae *AuthError
			if errors.As(err, &ae) {
				w.opt.logf("worker %s: %v", w.name, err)
				return err
			}
			if ctx.Err() != nil {
				return nil
			}
			w.opt.logf("worker %s: lease: %v (will retry)", w.name, err)
			lease = nil
		}
		if lease == nil || len(lease.Jobs) == 0 {
			// Idle: the sweep (if any) finished or has no work for us.
			// Forget its progress so the next sweep's lines are not
			// suppressed by the strictly-increasing guard when the totals
			// happen to match. Another slot mid-batch may re-log one line
			// after this; better one duplicate than a silent sweep.
			w.resetProgress()
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.opt.poll()):
			}
			continue
		}
		if err := w.executeBatch(ctx, lease); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
	}
}

// lease asks for a batch of jobs; (nil, nil) means no work available.
func (w *worker) lease(ctx context.Context) (*leaseResponse, error) {
	resp, err := w.tr.Lease(ctx, leaseRequest{Worker: w.name, Kinds: w.opt.kinds(), Max: w.opt.MaxBatch, Peer: w.opt.PeerAddr})
	if err != nil || resp == nil {
		return nil, err
	}
	w.noteProgress(resp.Done, resp.Total)
	return resp, nil
}

// inflight is the set of job IDs a slot currently holds leases for —
// executing or queued — shared with its heartbeat goroutine.
type inflight struct {
	mu  sync.Mutex
	ids []int64
}

func (f *inflight) add(jobs []leasedJob) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, j := range jobs {
		f.ids = append(f.ids, j.JobID)
	}
}

func (f *inflight) remove(id int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, have := range f.ids {
		if have == id {
			f.ids = append(f.ids[:i], f.ids[i+1:]...)
			return
		}
	}
}

func (f *inflight) snapshot() []int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int64(nil), f.ids...)
}

// executeBatch runs one leased batch in order with heartbeats covering
// every held job, streaming each result back as it completes and appending
// any refill jobs the replies carry. It returns only fatal errors (auth).
func (w *worker) executeBatch(ctx context.Context, lease *leaseResponse) error {
	held := &inflight{}
	held.add(lease.Jobs)
	w.noteHints(lease.Jobs)
	queue := append([]leasedJob(nil), lease.Jobs...)

	// Heartbeat at a third of the TTL while the batch runs, so one missed
	// beat (GC pause, transient network loss) never costs a lease. Every
	// held job is covered, queued ones included: a slow cell in front of
	// them must not let their leases lapse.
	hbCtx, stopHB := context.WithCancel(ctx)
	hbDone := make(chan struct{})
	go w.heartbeat(hbCtx, hbDone, held, lease.LeaseMillis)
	defer func() {
		stopHB()
		<-hbDone
	}()

	for len(queue) > 0 {
		job := queue[0]
		queue = queue[1:]
		w.opt.logf("worker %s: job %d (%s)", w.name, job.JobID, job.Label)
		res := w.runJob(job)
		if ctx.Err() != nil {
			// Killed mid-batch: do not post — the held leases will expire
			// and the unfinished jobs (this one included) will be
			// reassigned, exactly as if the process had died. Results
			// already posted stay completed.
			return nil
		}
		if res.Error == "" && res.Panic == "" {
			// The cell just published locally; push it to its ring owners so
			// the keyspace's designated holders can serve future direct
			// fetches without a coordinator relay.
			w.replicate(job)
		}
		// Ask for one replacement job per completed job: the queue holds
		// its granted depth while work remains and drains naturally as the
		// coordinator runs out (near exhaustion it grants nothing, so tail
		// jobs spread across whoever finishes first).
		res.Kinds = w.opt.kinds()
		res.Refill = 1
		refill, err := w.postResult(ctx, job, res)
		held.remove(job.JobID)
		w.dropHint(job.Key)
		if err != nil {
			var ae *AuthError
			if errors.As(err, &ae) {
				w.opt.logf("worker %s: %v", w.name, err)
				return err
			}
			// Non-auth post failures were already logged (result lost);
			// keep draining the rest of the batch.
		}
		if refill != nil {
			w.noteProgress(refill.Done, refill.Total)
			if len(refill.Jobs) > 0 {
				held.add(refill.Jobs)
				w.noteHints(refill.Jobs)
				queue = append(queue, refill.Jobs...)
			}
		}
	}
	return nil
}

// heartbeat extends the slot's held leases at a third of the TTL until
// stopped, logging fleet progress carried on the replies.
func (w *worker) heartbeat(ctx context.Context, done chan<- struct{}, held *inflight, leaseMillis int64) {
	defer close(done)
	interval := time.Duration(leaseMillis) * time.Millisecond / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ids := held.snapshot()
			if len(ids) == 0 {
				continue
			}
			if hb, err := w.tr.Heartbeat(ctx, heartbeatRequest{Worker: w.name, JobIDs: ids}); err == nil && hb != nil {
				w.noteProgress(hb.Done, hb.Total)
			}
		}
	}
}

// postResult streams one job's outcome, retrying a few times (losing a
// finished result to one dropped packet would waste a whole simulation) and
// returning any refill grant carried on the reply. An auth rejection
// returns *AuthError immediately.
func (w *worker) postResult(ctx context.Context, job leasedJob, res resultRequest) (*resultResponse, error) {
	// Drain the direct-path delta counters onto this post. Advisory
	// totals: a post lost after the coordinator applied it undercounts
	// (the deltas were already zeroed), but never double-counts.
	res.FetchDirect = w.fetchDirect.Swap(0)
	res.FetchFallback = w.fetchFallback.Swap(0)
	res.PeerPuts = w.peerPuts.Swap(0)
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Only the first attempt asks for a refill: a lost reply may
			// have carried a grant this worker never saw (that orphaned
			// job's lease expires and reassigns, like any lost lease
			// reply), and re-asking on every retry would orphan another
			// grant per attempt.
			res.Refill = 0
		}
		resp, err := w.tr.Result(ctx, res)
		if err == nil {
			return resp, nil
		}
		var ae *AuthError
		if errors.As(err, &ae) {
			return nil, ae
		}
		if attempt >= 2 || ctx.Err() != nil {
			w.opt.logf("worker %s: job %d result lost: %v", w.name, job.JobID, err)
			return nil, fmt.Errorf("result post failed: %w", err)
		}
		time.Sleep(w.opt.poll())
	}
}

// runJob executes the job's registered executor, capturing panics into the
// result message (they surface coordinator-side as *runner.PanicError).
func (w *worker) runJob(job leasedJob) (res resultRequest) {
	res = resultRequest{Worker: w.name, JobID: job.JobID}
	end := runner.JobBegin()
	defer func() {
		end()
		if r := recover(); r != nil {
			runner.NotePanic()
			res.Panic = fmt.Sprint(r)
			res.Stack = debug.Stack()
		}
	}()
	fn := runner.ExecutorFor(job.Kind)
	if fn == nil {
		res.Error = fmt.Sprintf("no executor registered for job kind %q", job.Kind)
		return res
	}
	out, err := fn(job.Spec)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Result = out
	return res
}

// FetchStatus fetches a coordinator's full /dist/status snapshot — progress,
// lifetime counters, wire connections. secret must match the coordinator's
// -dist-secret; pass "" for an unauthenticated coordinator.
func FetchStatus(ctx context.Context, client *http.Client, coordinator, secret string) (StatusSnapshot, error) {
	var st StatusSnapshot
	if ctx == nil {
		ctx = context.Background()
	}
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, coordinator+"/dist/status", nil)
	if err != nil {
		return st, err
	}
	if secret != "" {
		req.Header.Set(secretHeader, secret)
	}
	resp, err := client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusUnauthorized {
		return st, &AuthError{Coordinator: coordinator}
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

// Status fetches a coordinator's progress snapshot (the CLI's aggregated
// progress line and the smoke tests use it). secret must match the
// coordinator's -dist-secret; pass "" for an unauthenticated coordinator.
func Status(ctx context.Context, client *http.Client, coordinator, secret string) (done, total, workers int, active bool, err error) {
	st, err := FetchStatus(ctx, client, coordinator, secret)
	if err != nil {
		return 0, 0, 0, false, err
	}
	return st.Done, st.Total, st.Workers, st.Active, nil
}
