package dist_test

// End-to-end worker-to-worker data path tests: with a holder serving its
// store on a peer listener, a cold worker must warm up entirely over direct
// peer fetches — the coordinator never relays a byte — and when the holder
// dies with its indicator still fresh, every fetch must degrade direct →
// relay → local simulation. Both paths are asserted with the sweep TSV
// byte-identical to the serial run: the direct path is an optimization,
// never a correctness dependency.

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
)

// TestDistDirectFetchBypassesCoordinator: coordinator (no store) + warm
// holder-only worker serving a peer listener + cold worker. Every grant to
// the cold worker carries the holder's peer address, so each cell arrives
// over a direct worker-to-worker connection: zero coordinator fetches, zero
// relays, zero simulations, TSV byte-identical to the serial run.
func TestDistDirectFetchBypassesCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale sweep twice")
	}
	warm, cold := t.TempDir(), t.TempDir()

	// Serial baseline publishes all cells into the warm store.
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{CacheDir: warm})

	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cold})
	coord := dist.NewCoordinator(dist.CoordinatorOptions{LeaseTTL: 2 * time.Second})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	// The warm worker holds, serves, and — new here — listens for peers.
	go dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: srv.URL, Name: "warm", Poll: 50 * time.Millisecond,
		Wire: "binary", CacheDir: warm, AdvertInterval: 20 * time.Millisecond,
		Kinds:    []string{"exchange.holder-only"},
		PeerAddr: "127.0.0.1:0",
	})
	waitForAdverts(t, coord, 1)

	go dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: srv.URL, Name: "cold", Poll: 10 * time.Millisecond,
		Wire: "binary", CacheDir: cold, AdvertInterval: 20 * time.Millisecond,
	})

	experiments.ResetMemo()
	sims, fetches := experiments.Simulations(), experiments.Fetched()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord})
	if got != want {
		t.Errorf("direct-fetch TSV differs from serial TSV:\n--- serial ---\n%s\n--- direct ---\n%s", want, got)
	}
	if d := experiments.Simulations() - sims; d != 0 {
		t.Errorf("cold worker simulated %d published cells, want 0", d)
	}
	if d := experiments.Fetched() - fetches; d != fig1Cells {
		t.Errorf("cold worker fetched %d cells, want %d", d, fig1Cells)
	}
	st := coord.Stats()
	if st.Completed != fig1Cells {
		t.Errorf("coordinator completed %d jobs, want %d", st.Completed, fig1Cells)
	}
	// The tentpole claim: the whole warm-up went worker-to-worker. The
	// coordinator saw no fetch traffic at all, only the result posts'
	// delta counters reporting what happened behind its back.
	if st.FetchDirect != fig1Cells {
		t.Errorf("FetchDirect = %d, want %d", st.FetchDirect, fig1Cells)
	}
	if st.Fetches != 0 || st.FetchRelayed != 0 || st.FetchFallback != 0 {
		t.Errorf("coordinator fetch counters = %d fetches / %d relayed / %d fallbacks, want 0 of each (every fetch should go direct)",
			st.Fetches, st.FetchRelayed, st.FetchFallback)
	}
	if st.RingWorkers != 2 {
		t.Errorf("RingWorkers = %d, want 2", st.RingWorkers)
	}
}

// TestDistHolderDeathFallsBackToSimulation: the holder advertises its store
// and its peer address, then dies before the sweep starts — deterministic
// stand-in for dying mid-sweep, since every subsequent fetch exercises the
// identical degradation chain. Its indicator and peer address are still
// fresh coordinator-side, so every grant hints held with a dead holder
// address: the direct dial fails, the relay finds no live holder
// connection, and the worker simulates locally. The sweep must complete
// with TSV byte-identical to the serial run — the fallback chain never
// produces a wrong result, only slower ones.
func TestDistHolderDeathFallsBackToSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale sweep twice")
	}
	warm, cold := t.TempDir(), t.TempDir()

	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{CacheDir: warm})

	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cold})
	// Generous TTL: the liveness window (3x TTL) must outlast the whole
	// sweep so the dead holder's indicator and peer address keep being
	// handed out — the point is to hit the fallback chain on every cell.
	coord := dist.NewCoordinator(dist.CoordinatorOptions{LeaseTTL: 10 * time.Second})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)

	holderCtx, killHolder := context.WithCancel(context.Background())
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		dist.RunWorker(holderCtx, dist.WorkerOptions{
			Coordinator: srv.URL, Name: "warm", Poll: 50 * time.Millisecond,
			Wire: "binary", CacheDir: warm, AdvertInterval: 20 * time.Millisecond,
			Kinds:    []string{"exchange.holder-only"},
			PeerAddr: "127.0.0.1:0",
		})
	}()
	waitForAdverts(t, coord, 1)
	killHolder()
	<-holderDone // peer listener closed, wire connection torn down

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: srv.URL, Name: "cold", Poll: 10 * time.Millisecond,
		Wire: "binary", CacheDir: cold, AdvertInterval: 20 * time.Millisecond,
	})

	experiments.ResetMemo()
	sims, fetches := experiments.Simulations(), experiments.Fetched()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord})
	if got != want {
		t.Errorf("holder-death TSV differs from serial TSV:\n--- serial ---\n%s\n--- fallback ---\n%s", want, got)
	}
	if d := experiments.Fetched() - fetches; d != 0 {
		t.Errorf("worker installed %d fetched cells, want 0 (the only holder is dead)", d)
	}
	if d := experiments.Simulations() - sims; d != fig1Cells {
		t.Errorf("worker simulated %d cells, want %d (every fetch must fall back)", d, fig1Cells)
	}
	st := coord.Stats()
	if st.FetchDirect != 0 || st.FetchFallback != 0 {
		t.Errorf("FetchDirect = %d / FetchFallback = %d, want 0 of each (no fetch can succeed)",
			st.FetchDirect, st.FetchFallback)
	}
	// Every direct failure fell through to the relay, which found no live
	// holder connection: all of them count as coordinator false positives.
	if st.Fetches != fig1Cells || st.FetchFalsePos != fig1Cells {
		t.Errorf("fetch counters = %d fetches / %d false positives, want %d of each",
			st.Fetches, st.FetchFalsePos, fig1Cells)
	}
	if st.FetchServed != 0 || st.FetchRelayed != 0 {
		t.Errorf("served %d / relayed %d from a dead holder, want 0", st.FetchServed, st.FetchRelayed)
	}
}
