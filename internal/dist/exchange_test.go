package dist

// Tests for the peer cell exchange: the Bloom indicator itself, the
// coordinator's advert table and budget adaptation, fetch routing from the
// coordinator's store, relay routing through an advertised holder's wire
// connection, and the false-positive fallback. Where a store is needed the
// tests use real cellstore directories — the exchange's fail-closed
// verification is exactly the envelope check these produce.

import (
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cellstore"
)

// --- indicator ----------------------------------------------------------

func TestFilterMembership(t *testing.T) {
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-key-%04d", i)
	}
	f := buildFilter(keys, defaultBitsPerKey)
	for _, k := range keys {
		if !f.contains(k) {
			t.Fatalf("filter lost its own key %q (Bloom filters must not false-negative)", k)
		}
	}
	// False positives exist but must be rare at the default density.
	fp := 0
	for i := 0; i < 2000; i++ {
		if f.contains(fmt.Sprintf("absent-key-%04d", i)) {
			fp++
		}
	}
	if fp > 100 { // 5%; the target at 12 bits/key is ~0.5%
		t.Errorf("false-positive rate %d/2000 is far above the design point", fp)
	}
	var nilFilter *cellFilter
	if nilFilter.contains("anything") {
		t.Error("nil filter claimed membership")
	}
	if buildFilter(nil, defaultBitsPerKey).contains("anything") {
		t.Error("empty filter claimed membership")
	}
}

func TestFilterDelta(t *testing.T) {
	keys := []string{"a", "b", "c"}
	old := buildFilter(keys, defaultBitsPerKey)
	grown := old.clone()
	grown.add("d")
	grown.add("e")
	if !grown.sameShape(old) {
		t.Fatal("clone+add changed filter shape")
	}
	applied := old.clone()
	applied.applyDelta(grown.xor(old))
	if !applied.equal(grown) {
		t.Fatal("applying the XOR delta did not reconstruct the grown filter")
	}
}

func TestBudgetAdaptation(t *testing.T) {
	// A tight budget halves bits-per-key until a full send fits (or the
	// floor is hit); an unlimited budget keeps full density.
	if bpk := budgetBitsPerKey(100_000, 0); bpk != defaultBitsPerKey {
		t.Errorf("unlimited budget: bpk = %d, want %d", bpk, defaultBitsPerKey)
	}
	full := budgetBitsPerKey(100_000, 1<<30)
	if full != defaultBitsPerKey {
		t.Errorf("huge budget: bpk = %d, want %d", full, defaultBitsPerKey)
	}
	tight := budgetBitsPerKey(100_000, 32<<10)
	if tight >= full {
		t.Errorf("tight budget did not shrink the filter: bpk = %d", tight)
	}
	if tight < minBitsPerKey {
		t.Errorf("budget adaptation went below the floor: bpk = %d", tight)
	}
	// Pacing: sending sentBytes against budget B defers at least
	// sentBytes/B seconds.
	if ms := advertDelayMillis(8192, 4096); ms != 2000 {
		t.Errorf("advertDelayMillis(8192, 4096) = %d, want 2000", ms)
	}
	if ms := advertDelayMillis(100, 0); ms != 0 {
		t.Errorf("unlimited budget delayed %dms", ms)
	}
}

// --- advert table -------------------------------------------------------

func TestNoteAdvertFullDeltaAndGaps(t *testing.T) {
	x := newExchange("")
	f := buildFilter([]string{"k1", "k2"}, defaultBitsPerKey)

	// A delta with no prior full must be refused.
	if resp := x.noteAdvert(advertRequest{Worker: "w", Gen: 1, M: f.m, K: f.k, Bits: f.bits}, 10); !resp.NeedFull {
		t.Fatal("delta without a prior full filter was accepted")
	}
	if resp := x.noteAdvert(advertRequest{Worker: "w", Gen: 1, Full: true, M: f.m, K: f.k, Bits: f.bits}, 10); resp.NeedFull {
		t.Fatal("full advert refused")
	}
	window, now := time.Minute, time.Now()
	if !x.likelyHeld("other", "k1", window, now) {
		t.Fatal("advertised key not reported held")
	}
	if x.likelyHeld("w", "k1", window, now) {
		t.Fatal("a worker's own indicator satisfied its hint (it would fetch from itself)")
	}

	// A gen-successor, same-shape delta applies.
	grown := f.clone()
	grown.add("k3")
	if resp := x.noteAdvert(advertRequest{Worker: "w", Gen: 2, M: f.m, K: f.k, Bits: grown.xor(f)}, 10); resp.NeedFull {
		t.Fatal("successor delta refused")
	}
	if !x.likelyHeld("other", "k3", window, now) {
		t.Fatal("delta-advertised key not reported held")
	}

	// A generation gap (lost advert) must demand a full resend.
	if resp := x.noteAdvert(advertRequest{Worker: "w", Gen: 4, M: f.m, K: f.k, Bits: grown.bits}, 10); !resp.NeedFull {
		t.Fatal("generation gap accepted as a delta")
	}

	// Stale indicators neither hint nor route.
	if x.likelyHeld("other", "k1", time.Nanosecond, now.Add(time.Hour)) {
		t.Fatal("stale indicator satisfied a hint")
	}
	if hs := x.holders("other", "k1", time.Nanosecond, now.Add(time.Hour)); len(hs) != 0 {
		t.Fatalf("stale indicator routed: holders = %v", hs)
	}

	if got := x.adverts.Load(); got != 4 {
		t.Errorf("adverts counter = %d, want 4", got)
	}
	if got := x.advertBytes.Load(); got != 40 {
		t.Errorf("advertBytes counter = %d, want 40", got)
	}
}

func TestHoldersFreshestFirst(t *testing.T) {
	x := newExchange("")
	f := buildFilter([]string{"k"}, defaultBitsPerKey)
	for i, w := range []string{"old", "mid", "new"} {
		x.noteAdvert(advertRequest{Worker: w, Gen: 1, Full: true, M: f.m, K: f.k, Bits: f.bits}, 1)
		x.mu.Lock()
		// Stamp explicit recency (noteAdvert uses wall-clock now).
		x.table[w].when = time.Now().Add(time.Duration(i) * time.Second)
		x.mu.Unlock()
	}
	hs := x.holders("requester", "k", time.Hour, time.Now())
	if len(hs) != 3 || hs[0] != "new" || hs[2] != "old" {
		t.Fatalf("holders = %v, want [new mid old]", hs)
	}
	if hs := x.holders("new", "k", time.Hour, time.Now()); len(hs) != 2 || hs[0] != "mid" {
		t.Fatalf("holders excluding requester = %v, want [mid old]", hs)
	}
}

// --- fetch routing ------------------------------------------------------

type cellPayload struct {
	Name string
	X    float64
}

// storeWith creates a cell store in a temp dir holding the given keys.
func storeWith(t *testing.T, keys ...string) (string, *cellstore.Store) {
	t.Helper()
	dir := t.TempDir()
	st, err := cellstore.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	for i, k := range keys {
		if err := st.Put(k, cellPayload{Name: k, X: float64(i)}); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	return dir, st
}

func TestFetchServedFromCoordinatorStore(t *testing.T) {
	dir, _ := storeWith(t, "held-key")
	coord := NewCoordinator(CoordinatorOptions{CacheDir: dir})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()

	var resp fetchResponse
	if st := postJSON(t, srv.URL+"/dist/fetch", fetchRequest{Worker: "cold", Key: "held-key"}, &resp); st != 200 {
		t.Fatalf("fetch: HTTP %d", st)
	}
	if !resp.Found {
		t.Fatal("coordinator store did not serve the fetch")
	}
	if err := cellstore.VerifyRaw("held-key", resp.Raw); err != nil {
		t.Fatalf("served bytes fail verification: %v", err)
	}
	var got cellPayload
	if err := cellstore.DecodeRaw(resp.Raw, "held-key", &got); err != nil || got.Name != "held-key" {
		t.Fatalf("decode served cell: %+v, %v", got, err)
	}

	// Hints on grants come from the same store.
	jobs := []leasedJob{{Key: "held-key"}, {Key: "nobody-has-this"}}
	coord.annotateHints("cold", jobs)
	if !jobs[0].Held || jobs[1].Held {
		t.Fatalf("hints = %v/%v, want true/false", jobs[0].Held, jobs[1].Held)
	}

	// A miss for an unheld key counts as a false positive.
	if st := postJSON(t, srv.URL+"/dist/fetch", fetchRequest{Worker: "cold", Key: "nobody-has-this"}, &resp); st != 200 || resp.Found {
		t.Fatalf("fetch of absent key: HTTP %d, found %v", st, resp.Found)
	}
	st := coord.Stats()
	if st.Fetches != 2 || st.FetchServed != 1 || st.FetchFalsePos != 1 {
		t.Errorf("counters = %d fetches / %d served / %d missed, want 2/1/1", st.Fetches, st.FetchServed, st.FetchFalsePos)
	}
}

// TestFetchRelayedThroughHolder: the coordinator has no store; a worker
// with the cell in its store connects over the binary wire and advertises.
// A fetch from a third party must be relayed down the holder's connection,
// answered from its store, verified, and returned.
func TestFetchRelayedThroughHolder(t *testing.T) {
	dir, _ := storeWith(t, "relayed-key")
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 2 * time.Second})
	url := serveWire(t, coord)
	ctx, cancel := testContext(t)
	defer cancel()

	// The holder only holds: its kind matches no job, so it polls idle,
	// advertises its store, and serves relays.
	go RunWorker(ctx, WorkerOptions{
		Coordinator: url, Name: "holder", Poll: 5 * time.Millisecond,
		Kinds: []string{"holder.no-jobs"}, Wire: "binary",
		CacheDir: dir, AdvertInterval: 10 * time.Millisecond,
	})

	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Adverts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("holder never advertised")
		}
		time.Sleep(5 * time.Millisecond)
	}

	var resp fetchResponse
	if st := postJSON(t, url+"/dist/fetch", fetchRequest{Worker: "cold", Key: "relayed-key"}, &resp); st != 200 {
		t.Fatalf("fetch: HTTP %d", st)
	}
	if !resp.Found {
		t.Fatal("fetch was not relayed to the advertised holder")
	}
	var got cellPayload
	if err := cellstore.DecodeRaw(resp.Raw, "relayed-key", &got); err != nil || got.Name != "relayed-key" {
		t.Fatalf("decode relayed cell: %+v, %v", got, err)
	}
	st := coord.Stats()
	if st.FetchRelayed != 1 {
		t.Errorf("FetchRelayed = %d, want 1", st.FetchRelayed)
	}
}

// TestFetchFalsePositiveFallsThrough: an indicator claiming everything (all
// bits set) routes a fetch to a holder whose store is empty; the relay
// comes back not-found and the requester is told to simulate.
func TestFetchFalsePositiveFallsThrough(t *testing.T) {
	emptyDir := t.TempDir()
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 2 * time.Second})
	url := serveWire(t, coord)
	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{
		Coordinator: url, Name: "braggart", Poll: 5 * time.Millisecond,
		Kinds: []string{"holder.no-jobs"}, Wire: "binary",
		CacheDir: emptyDir, AdvertInterval: 10 * time.Millisecond,
	})
	deadline := time.Now().Add(5 * time.Second)
	for coord.Workers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never connected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Overwrite the worker's honest (empty) indicator with an all-claiming
	// one via the JSON endpoint — a phantom advertisement.
	f := buildFilter([]string{"x"}, defaultBitsPerKey)
	for i := range f.bits {
		f.bits[i] = 0xFF
	}
	var aresp advertResponse
	if st := postJSON(t, url+"/dist/advert",
		advertRequest{Worker: "braggart", Gen: 99, Full: true, M: f.m, K: f.k, Bits: f.bits}, &aresp); st != 200 {
		t.Fatalf("advert: HTTP %d", st)
	}

	var resp fetchResponse
	if st := postJSON(t, url+"/dist/fetch", fetchRequest{Worker: "cold", Key: "never-simulated"}, &resp); st != 200 {
		t.Fatalf("fetch: HTTP %d", st)
	}
	if resp.Found {
		t.Fatal("empty-store holder produced a cell")
	}
	if st := coord.Stats(); st.FetchFalsePos != 1 {
		t.Errorf("FetchFalsePos = %d, want 1", st.FetchFalsePos)
	}
}

// TestAdvertEndpointRejectsMalformedGeometry mirrors the binary codec's
// strictness on the JSON path.
func TestAdvertEndpointRejectsMalformedGeometry(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{})
	srv := httptest.NewServer(coord.Handler())
	defer srv.Close()
	bad := []advertRequest{
		{Worker: "w", Gen: 1, Full: true, M: 128, K: 4, Bits: make([]byte, 3)},  // geometry mismatch
		{Worker: "w", Gen: 1, Full: true, M: 64, K: 0, Bits: make([]byte, 8)},   // no hashes
		{Worker: "w", Gen: 1, Full: true, M: 64, K: 200, Bits: make([]byte, 8)}, // absurd hashes
	}
	for i, req := range bad {
		if st := postJSON(t, srv.URL+"/dist/advert", req, nil); st != 400 {
			t.Errorf("malformed advert %d: HTTP %d, want 400", i, st)
		}
	}
	if got := coord.Stats().Adverts; got != 0 {
		t.Errorf("malformed adverts were counted: %d", got)
	}
}
