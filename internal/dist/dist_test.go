package dist_test

// End-to-end distributed-sweep tests: an in-process coordinator with real
// HTTP workers runs actual experiment sweeps and must reproduce the
// goroutine backend byte for byte — including after a worker dies mid-sweep
// and after an interrupted run resumes from the shared cell store.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cellstore"
	"repro/internal/dist"
	"repro/internal/experiments"
)

// fig1Cells is the quick-scale fig1 grid: 3 protocols x 5 bandwidths x 1 seed.
const fig1Cells = 15

// tsvOf regenerates one experiment and concatenates its artifacts' TSV.
func tsvOf(t *testing.T, id string, o experiments.Options) string {
	t.Helper()
	arts, err := experiments.Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, a := range arts {
		b.WriteString(a.TSV())
	}
	return b.String()
}

// cluster starts a coordinator and n workers sharing one cell store.
func cluster(t *testing.T, cacheDir string, workers int, ttl time.Duration) (*dist.Coordinator, context.CancelFunc) {
	t.Helper()
	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cacheDir})
	coord := dist.NewCoordinator(dist.CoordinatorOptions{LeaseTTL: ttl})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < workers; i++ {
		go dist.RunWorker(ctx, dist.WorkerOptions{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("worker-%d", i),
			Poll:        10 * time.Millisecond,
		})
	}
	t.Cleanup(func() {
		cancel()
		srv.Close()
	})
	return coord, cancel
}

// TestDistSweepByteIdentical: a sweep dispatched to two worker processes
// over the wire produces a TSV byte-identical to the in-process goroutine
// backend, and every cell was actually executed remotely.
func TestDistSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale sweep twice")
	}
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{})

	cache := t.TempDir()
	coord, _ := cluster(t, cache, 2, 2*time.Second)
	experiments.ResetMemo()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord, CacheDir: cache})
	if got != want {
		t.Errorf("distributed TSV differs from in-process TSV:\n--- in-process ---\n%s\n--- distributed ---\n%s", want, got)
	}
	if st := coord.Stats(); st.Completed != fig1Cells {
		t.Errorf("coordinator completed %d jobs, want %d (every cell dispatched)", st.Completed, fig1Cells)
	}

	// A second distributed run serves everything from memo + store: no new
	// dispatches, byte-identical output.
	before := coord.Stats().Completed
	again := tsvOf(t, "fig1", experiments.Options{Backend: coord, CacheDir: cache})
	if again != want {
		t.Error("warm distributed re-run TSV differs")
	}
	if st := coord.Stats(); st.Completed != before {
		t.Errorf("warm re-run dispatched %d new jobs, want 0", st.Completed-before)
	}
}

// TestDistSweepRecycledMatchesNoRecycle: the hot-path free lists (packet,
// message, line/txn and directory-entry recycling — enabled by default on
// every worker) change nothing: a sweep fanned across two real HTTP workers
// running fully recycled simulations reproduces, byte for byte, an
// in-process sweep that allocates every record fresh (Options.NoRecycle).
// Not skipped in -short so the CI race job exercises the recycled path
// under the race detector across real worker goroutines.
func TestDistSweepRecycledMatchesNoRecycle(t *testing.T) {
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{NoRecycle: true, NoReuse: true})

	cache := t.TempDir()
	coord, _ := cluster(t, cache, 2, 2*time.Second)
	experiments.ResetMemo()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord, CacheDir: cache})
	if got != want {
		t.Errorf("recycled two-worker TSV differs from fresh-allocation in-process TSV:\n--- fresh ---\n%s\n--- recycled/dist ---\n%s", want, got)
	}
	if st := coord.Stats(); st.Completed != fig1Cells {
		t.Errorf("coordinator completed %d jobs, want %d", st.Completed, fig1Cells)
	}
}

// TestDistSweepHardenedByteIdentical: the full hardened path — shared-
// secret auth over the binary wire transport, batched leases with
// result-reply refills, and coordinator co-execution racing two real
// workers — still reproduces the serial in-process TSV byte for byte, and
// batching collapses the protocol's round-trips: at least 4x fewer leases
// than cells.
func TestDistSweepHardenedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale sweep twice")
	}
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{})

	cache := t.TempDir()
	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cache})
	coord := dist.NewCoordinator(dist.CoordinatorOptions{
		LeaseTTL:   2 * time.Second,
		LeaseBatch: 4,
		Secret:     "hardened-sweep",
		CoExecute:  1,
	})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < 2; i++ {
		go dist.RunWorker(ctx, dist.WorkerOptions{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("worker-%d", i),
			Poll:        10 * time.Millisecond,
			Secret:      "hardened-sweep",
			Wire:        "binary",
		})
	}

	experiments.ResetMemo()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord, CacheDir: cache})
	if got != want {
		t.Errorf("hardened distributed TSV differs from in-process TSV:\n--- in-process ---\n%s\n--- distributed ---\n%s", want, got)
	}
	st := coord.Stats()
	if st.Completed != fig1Cells {
		t.Errorf("coordinator completed %d jobs, want %d", st.Completed, fig1Cells)
	}
	// 3 slots (2 workers + 1 co-execution) each lease once; refills carry
	// the rest of the sweep on result replies.
	if st.Leases == 0 || st.Leases*4 > st.Completed {
		t.Errorf("Leases = %d for %d cells, want >= 4x fewer leases than cells", st.Leases, st.Completed)
	}
	if st.Refills == 0 {
		t.Error("Refills = 0: result replies never refilled a batch")
	}
	// The external workers forced the binary wire, so frames must have
	// flowed (socket byte counters stay 0 under httptest — no Serve).
	if st.FramesIn == 0 || st.FramesOut == 0 {
		t.Errorf("frame counters = %d in / %d out, want both > 0 (binary wire unused)", st.FramesIn, st.FramesOut)
	}
}

// TestDistResumeAfterInterruption: killing a sweep mid-flight loses nothing
// that was already published — the re-run serves published cells from the
// shared store and only simulates the remainder, and the total simulation
// count across both runs equals one full sweep.
func TestDistResumeAfterInterruption(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick-scale sweep across two phases")
	}
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{})

	cache := t.TempDir()
	coord, _ := cluster(t, cache, 2, 2*time.Second)
	st := cellstore.For(cache)

	// Phase 1: cancel the sweep once a handful of cells completed.
	experiments.ResetMemo()
	simBefore := experiments.Simulations()
	ctx, cancel := context.WithCancel(context.Background())
	_, err := experiments.Run("fig1", experiments.Options{
		Backend: coord, CacheDir: cache, Context: ctx,
		Progress: func(done, total int) {
			if done >= 5 {
				cancel()
			}
		},
	})
	cancel()
	if err == nil {
		t.Fatal("interrupted sweep reported success")
	}

	// Drain stragglers: a cell in flight at cancellation still finishes on
	// its worker and is published; wait for the store to go quiet.
	stableSince := time.Now()
	_, _, lastWrites := st.Counters()
	for time.Since(stableSince) < 300*time.Millisecond {
		time.Sleep(25 * time.Millisecond)
		if _, _, w := st.Counters(); w != lastWrites {
			lastWrites, stableSince = w, time.Now()
		}
	}
	_, _, published := st.Counters()
	if published < 5 || published >= fig1Cells {
		t.Fatalf("phase 1 published %d cells, want a strict subset of %d with at least 5", published, fig1Cells)
	}
	phase1Sims := experiments.Simulations() - simBefore

	// Phase 2: a fresh run (fresh memo, same store) completes the sweep.
	experiments.ResetMemo()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord, CacheDir: cache})
	if got != want {
		t.Errorf("resumed TSV differs from in-process TSV:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	phase2Sims := experiments.Simulations() - simBefore - phase1Sims
	if phase1Sims+phase2Sims != fig1Cells {
		t.Errorf("simulated %d+%d cells across both phases, want exactly %d (zero re-simulation of published cells)",
			phase1Sims, phase2Sims, fig1Cells)
	}
	if phase2Sims != fig1Cells-uint64(published) {
		t.Errorf("phase 2 simulated %d cells, want %d (the unpublished remainder)", phase2Sims, fig1Cells-uint64(published))
	}
}

// TestDistWorkerKilledMidSweep: one of two workers dies (its context is
// canceled, so it stops heartbeating and never posts again) partway through
// a sweep; lease reassignment lets the survivor finish, and the output is
// still byte-identical.
func TestDistWorkerKilledMidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick-scale sweep")
	}
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{})

	cache := t.TempDir()
	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cache})
	coord := dist.NewCoordinator(dist.CoordinatorOptions{LeaseTTL: 300 * time.Millisecond})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)

	victimCtx, killVictim := context.WithCancel(context.Background())
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	t.Cleanup(stopSurvivor)
	t.Cleanup(killVictim)
	go dist.RunWorker(victimCtx, dist.WorkerOptions{Coordinator: srv.URL, Name: "victim", Poll: 10 * time.Millisecond})
	go dist.RunWorker(survivorCtx, dist.WorkerOptions{Coordinator: srv.URL, Name: "survivor", Poll: 10 * time.Millisecond})

	experiments.ResetMemo()
	got := tsvOf(t, "fig1", experiments.Options{
		Backend: coord, CacheDir: cache,
		Progress: func(done, total int) {
			if done == 3 {
				killVictim() // the victim dies a third of the way in
			}
		},
	})
	if got != want {
		t.Errorf("TSV with a mid-sweep worker death differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
