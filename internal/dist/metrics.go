package dist

// Metrics seam: the coordinator's existing atomic counters register as
// read-through instruments on an obs.Registry — the scrape loads the same
// atomics /dist/status reports, so /metrics and the persisted status file
// can never disagree about a shared counter. Registration is optional (the
// one-shot CLI path never calls it) and adds nothing to the lease hot path
// beyond one atomic pointer load for the grant-size histogram.

import "repro/internal/obs"

// grantSizeBuckets covers the useful LeaseBatch range: 1 (the pre-batching
// protocol) through typical fleet batch depths.
var grantSizeBuckets = []float64{1, 2, 4, 8, 16, 32}

// RegisterMetrics registers the coordinator's counters on r under the
// bashsim_ namespace. Call at most once per registry (obs panics on
// duplicates, by design).
func (c *Coordinator) RegisterMetrics(r *obs.Registry) {
	r.CounterFunc("bashsim_leases_total", "non-empty lease grants handed to workers", c.leases.Load)
	r.CounterFunc("bashsim_lease_refills_total", "jobs granted piggybacked on result replies", c.refills.Load)
	r.CounterFunc("bashsim_jobs_dispatched_total", "jobs handed out (re-dispatch after an expiry counts again)", c.dispatched.Load)
	r.CounterFunc("bashsim_jobs_completed_total", "jobs that returned a successful result", c.completed.Load)
	r.CounterFunc("bashsim_jobs_failed_total", "jobs that ended in an error or exhausted their lease budget", c.failed.Load)
	r.CounterFunc("bashsim_lease_reassigned_total", "leases that expired and were requeued", c.reassigned.Load)

	r.CounterFunc("bashsim_adverts_total", "cell-store indicator advertisements received", c.exch.adverts.Load)
	r.CounterFunc("bashsim_advert_bytes_total", "on-wire payload bytes of received adverts", c.exch.advertBytes.Load)
	r.CounterFunc("bashsim_fetches_total", "peer cell fetch requests", c.exch.fetches.Load)
	r.CounterFunc("bashsim_fetch_served_total", "fetches answered from the coordinator's own store", c.exch.served.Load)
	r.CounterFunc("bashsim_fetch_relayed_total", "fetches answered by relaying to an advertised holder", c.exch.relayed.Load)
	r.CounterFunc("bashsim_fetch_false_positive_total", "fetches that found nothing anywhere (indicator false positives)", c.exch.fetchMissing.Load)
	r.CounterFunc("bashsim_fetch_direct_total", "worker-reported direct peer-to-peer fetches (bypassed the coordinator)", c.exch.direct.Load)
	r.CounterFunc("bashsim_fetch_fallback_total", "worker-reported relay fetches after a failed direct attempt", c.exch.fallback.Load)
	r.CounterFunc("bashsim_peer_puts_total", "worker-reported replication pushes accepted by ring owners", c.exch.peerPuts.Load)
	r.CounterFunc("bashsim_ring_owner_grants_total", "jobs granted to their key's consistent-hash ring owner", c.ringOwnerGrants.Load)

	r.Collect("bashsim_wire_bytes_total", "socket-level bytes through Coordinator.Serve by direction", "counter",
		func(emit func(v float64, labels ...obs.Label)) {
			emit(float64(c.bytesIn.Load()), obs.Label{Name: "direction", Value: "in"})
			emit(float64(c.bytesOut.Load()), obs.Label{Name: "direction", Value: "out"})
		})
	r.Collect("bashsim_wire_frames_total", "binary wire frames across all connections by direction", "counter",
		func(emit func(v float64, labels ...obs.Label)) {
			emit(float64(c.framesIn.Load()), obs.Label{Name: "direction", Value: "in"})
			emit(float64(c.framesOut.Load()), obs.Label{Name: "direction", Value: "out"})
		})

	r.GaugeFunc("bashsim_workers", "workers heard from within the liveness window", func() float64 {
		return float64(c.Workers())
	})
	r.GaugeFunc("bashsim_ring_workers", "workers currently on the placement ring", func() float64 {
		c.mu.Lock()
		n := c.placement.size()
		c.mu.Unlock()
		return float64(n)
	})
	r.GaugeFunc("bashsim_wire_conns", "live binary wire connections", func() float64 {
		c.wireMu.Lock()
		n := len(c.wireConns)
		c.wireMu.Unlock()
		return float64(n)
	})
	r.Collect("bashsim_wire_conn_bytes_total", "per-connection socket bytes (live connections)", "counter",
		func(emit func(v float64, labels ...obs.Label)) {
			for _, st := range c.liveConnStatuses() {
				w := obs.Label{Name: "worker", Value: st.Worker}
				rm := obs.Label{Name: "remote", Value: st.Remote}
				emit(float64(st.BytesIn), w, rm, obs.Label{Name: "direction", Value: "in"})
				emit(float64(st.BytesOut), w, rm, obs.Label{Name: "direction", Value: "out"})
			}
		})
	r.Collect("bashsim_wire_conn_frames_total", "per-connection wire frames (live connections)", "counter",
		func(emit func(v float64, labels ...obs.Label)) {
			for _, st := range c.liveConnStatuses() {
				w := obs.Label{Name: "worker", Value: st.Worker}
				rm := obs.Label{Name: "remote", Value: st.Remote}
				emit(float64(st.FramesIn), w, rm, obs.Label{Name: "direction", Value: "in"})
				emit(float64(st.FramesOut), w, rm, obs.Label{Name: "direction", Value: "out"})
			}
		})

	c.grantSize.Store(r.Histogram("bashsim_lease_grant_size", "jobs per non-empty grant (leases and refills)", grantSizeBuckets))
}

// liveConnStatuses snapshots the live wire connections for per-connection
// metric emission.
func (c *Coordinator) liveConnStatuses() []WireConnStatus {
	c.wireMu.Lock()
	defer c.wireMu.Unlock()
	out := make([]WireConnStatus, 0, len(c.wireConns))
	for wc := range c.wireConns {
		out = append(out, wc.status())
	}
	return out
}
