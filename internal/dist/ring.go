package dist

// Consistent-hash cell placement: a ring of SHA-256 points over the
// registered workers. The coordinator uses it for two things:
//
//   - dispatch preference: when granting leases it first offers a worker
//     the jobs whose cell keys the ring assigns to that worker, so in the
//     steady state a cell is simulated (and therefore published) by its
//     owner and stays where fetches will look for it;
//   - replication targets: grants name the ring owners of each cell so the
//     publisher can push the finished cell to its owner(s) directly,
//     keeping placement converged even when a non-owner had to run the job.
//
// Placement is advisory only — correctness never depends on it. A fetch
// that misses the owner falls back to the coordinator relay and finally to
// local simulation, and results are byte-identical on every path.
//
// Hashing is SHA-256 like the rest of the exchange (see indicator.go):
// deterministic across processes, builds, and architectures, so every
// coordinator and worker derives the same ownership from the same
// membership. Each worker contributes ringVnodes virtual points, which
// bounds the load skew between workers (ring_test.go pins the bound) and
// makes join/leave move only ~1/n of the keyspace.

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringVnodes is the number of virtual points each worker contributes.
const ringVnodes = 64

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// worker.
type ringPoint struct {
	hash   uint64
	worker string
}

// ring is a consistent-hash ring over worker names. The zero value is an
// empty ring; it is not safe for concurrent use (the coordinator guards it
// with its own mutex).
type ring struct {
	points  []ringPoint // sorted by hash, ties broken by worker name
	members map[string]bool
}

// ringPointHash places virtual node i of worker on the ring.
func ringPointHash(worker string, i int) uint64 {
	sum := sha256.Sum256([]byte(worker + "\x00" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[0:8])
}

// ringKeyHash places a cell key on the ring.
func ringKeyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[0:8])
}

// add registers a worker's virtual points. Adding a present member is a
// no-op, so contact-driven registration can call it on every request.
func (r *ring) add(worker string) {
	if r.members[worker] {
		return
	}
	if r.members == nil {
		r.members = make(map[string]bool)
	}
	r.members[worker] = true
	for i := 0; i < ringVnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringPointHash(worker, i), worker: worker})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].worker < r.points[b].worker
	})
}

// remove drops a worker's virtual points. Removing an absent member is a
// no-op.
func (r *ring) remove(worker string) {
	if !r.members[worker] {
		return
	}
	delete(r.members, worker)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.worker != worker {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// size is the number of member workers.
func (r *ring) size() int { return len(r.members) }

// owner is the worker owning key: the first ring point at or clockwise
// after the key's hash. Empty ring returns "".
func (r *ring) owner(key string) string { return r.ownerHash(ringKeyHash(key)) }

// ownerHash is owner over a precomputed key hash (the coordinator caches
// each job's hash so grant scans don't rehash under its mutex).
func (r *ring) ownerHash(h uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}

// owners returns up to n distinct workers clockwise from key — the owner
// first, then the successor replicas. n <= 0 or an empty ring returns nil.
func (r *ring) owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringKeyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for scanned := 0; scanned < len(r.points) && len(out) < n; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}
