package dist

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// CoordinatorOptions tunes the lease protocol.
type CoordinatorOptions struct {
	// LeaseTTL is how long a worker may hold a job between contacts
	// (lease grant, heartbeat) before the job is reassigned. Zero selects
	// 15s. Workers heartbeat at a third of the TTL, so the TTL bounds how
	// long a dead worker delays its jobs, not how long a job may run.
	LeaseTTL time.Duration
	// MaxLeaseExpiries bounds how many times one job may be reassigned
	// after expired leases before it fails the batch (a job cannot
	// ping-pong forever between dying workers). Zero selects 3.
	MaxLeaseExpiries int
	// LeaseBatch is the maximum number of jobs granted per lease (and
	// therefore the depth of each worker slot's local queue, sustained by
	// result-reply refills). Zero or one grants single jobs, the
	// pre-batching protocol. Grants shrink adaptively near queue
	// exhaustion — at most ceil(pending / live workers) — so the tail of a
	// sweep rebalances across the fleet instead of piling onto one
	// straggler.
	LeaseBatch int
	// Secret, when non-empty, is the shared secret every request must
	// carry in the X-Bashsim-Secret header (compared in constant time).
	// Requests without it are rejected with 401 and never touch the queue.
	Secret string
	// CoExecute, when positive, runs that many in-process loopback worker
	// slots for the duration of every Run: the coordinator leases jobs to
	// itself through the same protocol path (auth included) whenever it
	// has idle cores, so a lone coordinator still makes progress with no
	// external workers at all. The process must have the jobs' executors
	// registered (e.g. experiments.RegisterCellExecutor), exactly like a
	// worker process; kinds with no registered executor are never leased
	// to the loopback worker.
	CoExecute int
	// Wire selects the transports served. "" (or "binary"/"auto") serves
	// both the binary framed protocol (workers upgrade via POST
	// /dist/wire) and the HTTP/JSON fallback; "http" disables the binary
	// upgrade so every worker negotiates down to JSON. /dist/status is
	// always plain HTTP either way.
	Wire string
	// CacheDir, when non-empty, opens the coordinator's own cell store
	// there. Fetches are served from it before any relay is attempted, and
	// relayed entries are written through to it, so one warm coordinator
	// can feed an arbitrarily cold fleet. Empty disables the local store;
	// fetches then rely entirely on advertised holders.
	CacheDir string
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return defaultLeaseTTL
}

func (o CoordinatorOptions) maxExpiries() int {
	if o.MaxLeaseExpiries > 0 {
		return o.MaxLeaseExpiries
	}
	return defaultMaxLeaseExpiries
}

func (o CoordinatorOptions) leaseBatch() int {
	if o.LeaseBatch < 1 {
		return 1
	}
	return o.LeaseBatch
}

// jobState is the lifecycle of one tracked job.
type jobState int

const (
	jobPending jobState = iota // queued, waiting for a lease
	jobLeased                  // held by a worker, deadline armed
	jobDone                    // result or terminal failure recorded
)

// trackedJob is one job of a batch in flight.
type trackedJob struct {
	id       int64
	index    int    // index into the batch's job list
	b        *batch // owning batch (concurrent Runs interleave in one queue)
	job      runner.Job
	keyHash  uint64 // ring position of job.Key, computed once at enqueue
	state    jobState
	worker   string    // current (or last) lease holder
	deadline time.Time // lease expiry when leased
	expiries int       // expired-lease count
}

// batch is one Backend.Run invocation in flight.
type batch struct {
	jobs      []*trackedJob
	results   [][]byte
	errs      []error
	remaining int
	completed int
	priority  int // grant order: higher drains first, ties FIFO by job id
	progress  func(done, total int)
	done      chan struct{} // closed when remaining reaches zero
	closed    bool          // abandoned (canceled); late results are dropped

	// progressMu serializes notifyProgress; lastReported keeps the
	// reported count strictly increasing when notifications race.
	progressMu   sync.Mutex
	lastReported int
}

// notifyProgress fires the batch's progress callback. It must be called
// WITHOUT holding the coordinator mutex: the callback is user code and may
// call back into the Coordinator (the CLI's progress line asks Workers()).
// Counts that lost the race to a later completion are dropped, so done is
// strictly increasing as Options.Progress promises.
func (b *batch) notifyProgress(done int) {
	if b == nil || b.progress == nil || done == 0 {
		return
	}
	b.progressMu.Lock()
	defer b.progressMu.Unlock()
	if done <= b.lastReported {
		return
	}
	b.lastReported = done
	b.progress(done, len(b.jobs))
}

// Coordinator owns the job queue and lease table and serves the wire
// protocol. It implements runner.Backend: Run enqueues a batch and blocks
// until workers drain it (or the context cancels). Concurrent Run calls
// interleave their jobs in one shared queue — ordered by batch priority,
// then FIFO — so a long-lived sweep service can schedule several sweeps
// across one worker fleet at once.
type Coordinator struct {
	opt     CoordinatorOptions
	handler http.Handler // built once: HTTP servers and the loopback share it
	exch    *exchange    // peer cell exchange: indicator table + fetch routing

	mu       sync.Mutex
	nextID   int64
	queue    []*trackedJob         // pending jobs, sorted by (priority desc, id asc)
	pending  int                   // jobPending entries in queue (O(1) grant sizing)
	leased   map[int64]*trackedJob // in-flight jobs by id
	batches  map[*batch]struct{}   // batches in flight, one per active Run
	workers  map[string]time.Time  // worker name -> last contact
	draining bool                  // Drain called: grant nothing, let leases finish

	// Consistent-hash placement over the registered workers (ring.go):
	// every contact adds the worker, liveness expiry removes it, and
	// grantLocked prefers offering each job to its Key's ring owner.
	// peerAddrs maps workers to their advertised peer listener addresses
	// (only workers serving peers appear). Both guarded by mu.
	placement ring
	peerAddrs map[string]string

	// submitMu guards the sweep-submission hook, installed by the service
	// layer (internal/svc). Nil rejects submissions in-band: a plain
	// one-shot coordinator is not a sweep service.
	submitMu sync.Mutex
	submit   func(SubmitRequest) SubmitResponse

	// coMu guards the refcounted loopback worker: concurrent Runs share one
	// in-process worker rather than stacking CoExecute slots per sweep.
	coMu     sync.Mutex
	coRuns   int
	coCancel context.CancelFunc

	// wireMu guards the live binary connections (per-connection counters
	// surface in /dist/status) plus a bounded history of closed ones; frame
	// totals also count closed connections.
	wireMu      sync.Mutex
	wireConns   map[*wireConn]struct{}
	closedConns []closedWireConn

	// grantSize, when set by RegisterMetrics, observes the size of every
	// non-empty grant (atomic pointer: metrics wiring must not add a lock to
	// the lease path).
	grantSize atomic.Pointer[obs.Histogram]

	leases, refills, dispatched, completed, failed, reassigned atomic.Uint64
	bytesIn, bytesOut                                          atomic.Uint64 // socket-level, via Serve
	framesIn, framesOut                                        atomic.Uint64 // binary frames, via /dist/wire
	ringOwnerGrants                                            atomic.Uint64 // jobs granted to their ring owner
}

// NewCoordinator returns an idle coordinator.
func NewCoordinator(opt CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		opt:       opt,
		exch:      newExchange(opt.CacheDir),
		leased:    map[int64]*trackedJob{},
		batches:   map[*batch]struct{}{},
		workers:   map[string]time.Time{},
		peerAddrs: map[string]string{},
		wireConns: map[*wireConn]struct{}{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /dist/lease", c.handleLease)
	mux.HandleFunc("POST /dist/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /dist/result", c.handleResult)
	mux.HandleFunc("POST /dist/advert", c.handleAdvert)
	mux.HandleFunc("POST /dist/fetch", c.handleFetch)
	mux.HandleFunc("POST /dist/submit", c.handleSubmit)
	mux.HandleFunc("GET /dist/status", c.handleStatus)
	c.handler = c.authenticate(mux)
	if opt.Wire != "http" {
		// The binary upgrade endpoint mounts outside the shared-secret
		// middleware: its authentication is in-band (the HELLO frame
		// carries the secret digest, checked in constant time before any
		// protocol state is touched), and hijacked connections cannot use
		// HTTP status codes anyway.
		outer := http.NewServeMux()
		outer.HandleFunc("POST /dist/wire", c.handleWire)
		outer.Handle("/", c.handler)
		c.handler = outer
	}
	return c
}

// Handler returns the HTTP handler serving the job protocol; mount it on
// any server (the bashsim CLI serves it via Serve, tests use httptest).
// When Options.Secret is set, every request — status included — must carry
// it in the X-Bashsim-Secret header or is rejected with 401; the binary
// upgrade at POST /dist/wire instead authenticates in-band via its HELLO
// frame. Mounting on a server that does not go through Serve works, but
// leaves the socket-level byte counters at zero.
func (c *Coordinator) Handler() http.Handler { return c.handler }

// Serve accepts connections on l and serves the protocol — HTTP/JSON and,
// unless Wire == "http", the binary framed upgrade — until l closes. Every
// connection is wrapped in a byte counter feeding Stats.BytesIn/BytesOut,
// so HTTP header overhead and binary frames are measured at the same place:
// the socket.
func (c *Coordinator) Serve(l net.Listener) error {
	return c.ServeHandler(l, c.handler)
}

// ServeHandler is Serve with a caller-supplied HTTP handler: the sweep
// service (internal/svc) mounts the protocol under /dist/ next to its own
// routes — /sweeps, /metrics, the status page — while connections still flow
// through the socket-level byte counters. h must delegate /dist/ paths to
// Handler() or workers cannot reach the protocol.
func (c *Coordinator) ServeHandler(l net.Listener, h http.Handler) error {
	srv := &http.Server{Handler: h}
	return srv.Serve(countingListener{Listener: l, c: c})
}

// countingListener wraps accepted connections in socket-level byte
// counters. Hijacked (binary) connections keep the wrapper, so the counters
// see both transports uniformly.
type countingListener struct {
	net.Listener
	c *Coordinator
}

func (l countingListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return countingConn{Conn: conn, c: l.c}, nil
}

type countingConn struct {
	net.Conn
	c *Coordinator
}

func (cc countingConn) Read(p []byte) (int, error) {
	n, err := cc.Conn.Read(p)
	cc.c.bytesIn.Add(uint64(n))
	return n, err
}

func (cc countingConn) Write(p []byte) (int, error) {
	n, err := cc.Conn.Write(p)
	cc.c.bytesOut.Add(uint64(n))
	return n, err
}

// authenticate wraps the protocol mux in the shared-secret check. Secrets
// are compared in constant time over their SHA-256 digests, so neither
// length nor prefix of the configured secret leaks through timing.
func (c *Coordinator) authenticate(next http.Handler) http.Handler {
	if c.opt.Secret == "" {
		return next
	}
	want := sha256.Sum256([]byte(c.opt.Secret))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got := sha256.Sum256([]byte(r.Header.Get(secretHeader)))
		if subtle.ConstantTimeCompare(want[:], got[:]) != 1 {
			http.Error(w, "unauthorized: bad or missing "+secretHeader+" header (shared secret mismatch)",
				http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Stats returns lifetime dispatch and transport counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	ringWorkers := c.placement.size()
	c.mu.Unlock()
	return Stats{
		RingWorkers: ringWorkers,

		Leases:     c.leases.Load(),
		Refills:    c.refills.Load(),
		Dispatched: c.dispatched.Load(),
		Completed:  c.completed.Load(),
		Failed:     c.failed.Load(),
		Reassigned: c.reassigned.Load(),
		BytesIn:    c.bytesIn.Load(),
		BytesOut:   c.bytesOut.Load(),
		FramesIn:   c.framesIn.Load(),
		FramesOut:  c.framesOut.Load(),

		Adverts:       c.exch.adverts.Load(),
		AdvertBytes:   c.exch.advertBytes.Load(),
		Fetches:       c.exch.fetches.Load(),
		FetchServed:   c.exch.served.Load(),
		FetchRelayed:  c.exch.relayed.Load(),
		FetchFalsePos: c.exch.fetchMissing.Load(),

		FetchDirect:     c.exch.direct.Load(),
		FetchFallback:   c.exch.fallback.Load(),
		PeerPuts:        c.exch.peerPuts.Load(),
		RingOwnerGrants: c.ringOwnerGrants.Load(),
	}
}

// Workers counts workers heard from within the liveness window.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveWorkersLocked(time.Now())
}

func (c *Coordinator) liveWorkersLocked(now time.Time) int {
	window := workerTTLFactor * c.opt.leaseTTL()
	n := 0
	for name, last := range c.workers {
		if now.Sub(last) <= window {
			n++
		} else {
			delete(c.workers, name)
			c.placement.remove(name)
			delete(c.peerAddrs, name)
		}
	}
	return n
}

// registerWorkerLocked records a worker contact: liveness timestamp, ring
// membership, and (when the contact carried one) its peer listener address.
// peer == "" leaves any previously registered address alone — heartbeats
// and results don't re-send it.
func (c *Coordinator) registerWorkerLocked(name, peer string, now time.Time) {
	c.workers[name] = now
	c.placement.add(name)
	if peer != "" {
		c.peerAddrs[name] = peer
	}
}

// Run implements runner.Backend: it enqueues the jobs, waits for workers to
// drain them, and folds results in job-index order. Error semantics mirror
// runner.Map: the lowest-indexed failed job wins, worker panics surface as
// *runner.PanicError with the job's label and remote stack, and on
// cancellation the partial results are still returned. With
// Options.CoExecute > 0, loopback worker slots run in-process for the
// duration of the call, so the batch drains even with no external workers.
// Concurrent Runs are safe: each gets its own batch, their jobs interleave
// in the shared queue, and the fleet drains them together.
func (c *Coordinator) Run(jobs []runner.Job, opt runner.Options) ([][]byte, error) {
	return c.RunPriority(jobs, opt, 0)
}

// RunPriority is Run with an explicit batch priority: pending jobs from a
// higher-priority batch are always granted before lower ones; equal
// priorities drain FIFO. Leases already held are never preempted.
func (c *Coordinator) RunPriority(jobs []runner.Job, opt runner.Options, priority int) ([][]byte, error) {
	b := &batch{
		jobs:      make([]*trackedJob, len(jobs)),
		results:   make([][]byte, len(jobs)),
		errs:      make([]error, len(jobs)),
		remaining: len(jobs),
		priority:  priority,
		progress:  opt.Progress,
		done:      make(chan struct{}),
	}
	if len(jobs) == 0 {
		return b.results, nil
	}
	ctx, cancel := opt.RunContext()
	defer cancel()

	c.mu.Lock()
	for i, j := range jobs {
		c.nextID++
		tj := &trackedJob{id: c.nextID, index: i, b: b, job: j, keyHash: ringKeyHash(j.Key)}
		b.jobs[i] = tj
		c.enqueueLocked(tj)
	}
	c.batches[b] = struct{}{}
	c.mu.Unlock()

	stopCoExec := c.acquireCoExecution()
	defer stopCoExec()

	// Expired leases are also reclaimed lazily on every lease request, but
	// if every worker died there are no more requests — the ticker
	// guarantees reassignment bookkeeping (and terminal failure once a
	// job's expiry budget is spent) still happens.
	ticker := time.NewTicker(c.opt.leaseTTL() / 2)
	defer ticker.Stop()
	var canceled error
wait:
	for {
		select {
		case <-b.done:
			break wait
		case <-ctx.Done():
			canceled = ctx.Err()
			c.abandon(b)
			break wait
		case <-ticker.C:
			c.mu.Lock()
			notes := c.reclaimExpiredLocked(time.Now())
			c.mu.Unlock()
			notes.notify()
		}
	}

	c.mu.Lock()
	delete(c.batches, b)
	c.mu.Unlock()

	label := func(i int) string {
		if opt.Label != nil {
			return opt.Label(i)
		}
		return jobs[i].Label
	}
	for i, err := range b.errs {
		if err == nil {
			continue
		}
		if pe, ok := err.(*runner.PanicError); ok {
			return b.results, pe
		}
		return b.results, fmt.Errorf("dist: %s: %w", label(i), err)
	}
	if canceled != nil {
		return b.results, canceled
	}
	return b.results, nil
}

// acquireCoExecution refcounts the in-process loopback worker (a no-op
// closure when CoExecute is 0 or no executors are registered): the first
// active Run starts it, the last one's release cancels it, and concurrent
// Runs in between share it — a sweep service with N queued sweeps runs
// CoExecute loopback slots total, not N stacks of them. The loopback worker
// speaks the full wire protocol against the coordinator's own handler —
// auth, batched leases, heartbeats, streamed results — so every hardening
// test that covers external workers covers it too.
func (c *Coordinator) acquireCoExecution() (release func()) {
	if c.opt.CoExecute <= 0 || len(runner.Kinds()) == 0 {
		return func() {}
	}
	c.coMu.Lock()
	c.coRuns++
	if c.coRuns == 1 {
		loopCtx, cancel := context.WithCancel(context.Background())
		c.coCancel = cancel
		go func() {
			// Errors other than cancellation (e.g. a future kindless start)
			// only disable co-execution; external workers still drain the run.
			RunWorker(loopCtx, WorkerOptions{
				Coordinator: "http://loopback",
				Name:        "coordinator",
				Slots:       c.opt.CoExecute,
				Secret:      c.opt.Secret,
				Poll:        50 * time.Millisecond,
				Client:      &http.Client{Transport: loopbackTransport{h: c.handler}},
			})
		}()
	}
	c.coMu.Unlock()
	// Cancel without joining: executors are synchronous simulations, so a
	// slot mid-job cannot be interrupted — waiting for it would hold a
	// canceled (or even a completed) Run hostage for up to one full cell.
	// Canceled slots stop heartbeating at once (their leases expire and
	// reassign), finish the cell they are on, post nothing, and exit; a
	// straggler's late duplicate is dropped like any other.
	return func() {
		c.coMu.Lock()
		c.coRuns--
		if c.coRuns == 0 {
			c.coCancel()
			c.coCancel = nil
		}
		c.coMu.Unlock()
	}
}

// Drain puts the coordinator in drain mode and waits for every leased job
// to complete or expire: no new jobs are granted (leases and refills return
// empty), results and heartbeats are still accepted, and expired leases are
// reclaimed back into a queue nobody is granted from. Pending jobs stay queued —
// their Runs only return when the service layer cancels them — so nothing
// is lost or double-counted across a SIGTERM teardown. Returns ctx.Err if
// the deadline passes with leases still outstanding.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	for {
		c.mu.Lock()
		notes := c.reclaimExpiredLocked(time.Now())
		outstanding := len(c.leased)
		c.mu.Unlock()
		notes.notify()
		if outstanding == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Draining reports whether Drain has been called.
func (c *Coordinator) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// abandon drops a canceled batch: pending jobs leave the queue, leased jobs
// are forgotten (a late result is ignored), and the batch stops accepting
// completions.
func (c *Coordinator) abandon(b *batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b.closed = true
	var keep []*trackedJob
	for _, tj := range c.queue {
		if tj.state == jobPending && tj.b == b {
			tj.state = jobDone
			c.pending--
			continue
		}
		keep = append(keep, tj)
	}
	c.queue = keep
	for id, tj := range c.leased {
		if tj.b == b {
			tj.state = jobDone
			delete(c.leased, id)
		}
	}
}

// enqueueLocked inserts tj into the pending queue, keeping it sorted by
// (batch priority desc, job id asc). Same-priority batches therefore drain
// FIFO exactly as before; an expired lease's requeue reinserts by its
// original id, so retries go ahead of its batch's untouched tail.
func (c *Coordinator) enqueueLocked(tj *trackedJob) {
	i := len(c.queue)
	for i > 0 {
		prev := c.queue[i-1]
		if prev.b.priority > tj.b.priority ||
			(prev.b.priority == tj.b.priority && prev.id < tj.id) {
			break
		}
		i--
	}
	c.queue = append(c.queue, nil)
	copy(c.queue[i+1:], c.queue[i:])
	c.queue[i] = tj
	c.pending++
}

// progressNotes carries per-batch completion counts out of the coordinator
// mutex: with several batches in flight one reclaim pass can finish jobs in
// more than one of them, and every notifyProgress must run unlocked.
type progressNotes []progressNote

type progressNote struct {
	b    *batch
	done int
}

func (ns progressNotes) notify() {
	for _, n := range ns {
		n.b.notifyProgress(n.done)
	}
}

// reclaimExpiredLocked requeues (or terminally fails) every leased job
// whose deadline passed. It returns the per-batch completion counts to
// report via notifyProgress once the coordinator mutex is released (empty
// when nothing terminal happened).
func (c *Coordinator) reclaimExpiredLocked(now time.Time) progressNotes {
	var notes progressNotes
	for id, tj := range c.leased {
		if now.Before(tj.deadline) {
			continue
		}
		delete(c.leased, id)
		tj.expiries++
		if tj.expiries > c.opt.maxExpiries() {
			done := c.finishLocked(tj.b, tj, nil, fmt.Errorf(
				"lease expired %d times (last worker %q lost); giving up", tj.expiries, tj.worker))
			if done > 0 {
				notes = append(notes, progressNote{tj.b, done})
			}
			continue
		}
		c.reassigned.Add(1)
		tj.state = jobPending
		c.enqueueLocked(tj)
	}
	return notes
}

// finishLocked records a job's terminal result (value or error), closes the
// batch when it was the last one, and returns the new completion count for
// the caller to report via notifyProgress after releasing the coordinator
// mutex (zero when the job was already finished or the batch abandoned).
func (c *Coordinator) finishLocked(b *batch, tj *trackedJob, result []byte, err error) int {
	if b.closed || tj.state == jobDone {
		return 0
	}
	tj.state = jobDone
	b.results[tj.index] = result
	b.errs[tj.index] = err
	if err == nil {
		c.completed.Add(1)
	} else {
		c.failed.Add(1)
	}
	b.remaining--
	b.completed++
	if b.remaining == 0 {
		close(b.done)
	}
	return b.completed
}

// grantLocked dequeues up to max pending jobs matching the worker's kinds
// and leases them to it. A worker advertising no kinds can execute nothing:
// grant it nothing rather than jobs it would terminally fail (one
// misconfigured worker must not abort a healthy fleet's batch).
//
// With more than one worker on the placement ring the scan runs twice:
// first over jobs whose Key the ring assigns to this worker (so cells are
// simulated — and published — where fetches will look for them), then over
// anything else to fill the batch. Placement preference never starves a
// worker: an owner that is slow or gone just sees its jobs taken in some
// other worker's second pass.
func (c *Coordinator) grantLocked(now time.Time, worker string, kinds map[string]bool, max int) []*trackedJob {
	if c.draining {
		return nil // drain mode: let held leases finish, hand out nothing new
	}
	var grants []*trackedJob
	// The queue is sorted by (priority desc, id asc); placement preference
	// reorders only within one priority segment, so a higher-priority
	// batch's jobs are still always granted first (the RunPriority
	// contract).
	prefer := c.placement.size() > 1 && c.placement.members[worker]
	for lo := 0; lo < len(c.queue) && len(grants) < max; {
		hi := lo + 1
		for hi < len(c.queue) && c.queue[hi].b.priority == c.queue[lo].b.priority {
			hi++
		}
		if prefer {
			grants = c.scanSegmentLocked(now, worker, kinds, max, grants, lo, &hi, true)
		}
		grants = c.scanSegmentLocked(now, worker, kinds, max, grants, lo, &hi, false)
		lo = hi
	}
	if c.placement.size() > 0 {
		for _, tj := range grants {
			if c.placement.ownerHash(tj.keyHash) == worker {
				c.ringOwnerGrants.Add(1)
			}
		}
	}
	c.dispatched.Add(uint64(len(grants)))
	return grants
}

// scanSegmentLocked is one grant pass over the queue segment [lo, *hi): it
// appends pending jobs matching the worker's kinds (and, when ownedOnly,
// owned by it on the placement ring) to grants until max, leasing each.
// Granted jobs are removed from the queue in place, shrinking *hi so the
// caller's segment bounds stay valid.
func (c *Coordinator) scanSegmentLocked(now time.Time, worker string, kinds map[string]bool, max int, grants []*trackedJob, lo int, hi *int, ownedOnly bool) []*trackedJob {
	for qi := lo; qi < *hi && len(grants) < max; {
		tj := c.queue[qi]
		if tj.state != jobPending || !kinds[tj.job.Kind] ||
			(ownedOnly && c.placement.ownerHash(tj.keyHash) != worker) {
			qi++
			continue
		}
		// In-place removal: shifting within the existing backing array
		// avoids reallocating and copying the whole queue on every grant.
		c.queue = append(c.queue[:qi], c.queue[qi+1:]...)
		clearTail := c.queue[:len(c.queue)+1]
		clearTail[len(clearTail)-1] = nil // release the shifted-out tail slot
		*hi--
		tj.state = jobLeased
		tj.worker = worker
		tj.deadline = now.Add(c.opt.leaseTTL())
		c.leased[tj.id] = tj
		c.pending--
		grants = append(grants, tj)
	}
	return grants
}

// leaseSizeLocked is the adaptive grant bound for one lease: the configured
// LeaseBatch, capped by the worker's own request and — near queue
// exhaustion — by the pending jobs' fair share across live workers, so the
// last cells of a sweep spread over the fleet instead of queueing behind
// one straggler's batch.
func (c *Coordinator) leaseSizeLocked(now time.Time, reqMax int) int {
	max := c.opt.leaseBatch()
	if reqMax > 0 && reqMax < max {
		max = reqMax
	}
	live := c.liveWorkersLocked(now)
	if live < 1 {
		live = 1
	}
	if fair := (c.pending + live - 1) / live; fair < max {
		max = fair
	}
	if max < 1 {
		max = 1
	}
	return max
}

// progressLocked snapshots done/total summed across every batch in flight
// (zeros when idle), so worker logs and /dist/status show fleet-wide sweep
// progress even with several sweeps interleaved.
func (c *Coordinator) progressLocked() (done, total int) {
	for b := range c.batches {
		done += b.completed
		total += len(b.jobs)
	}
	return done, total
}

func kindSet(kinds []string) map[string]bool {
	set := make(map[string]bool, len(kinds))
	for _, k := range kinds {
		set[k] = true
	}
	return set
}

func leasedJobs(grants []*trackedJob) []leasedJob {
	jobs := make([]leasedJob, len(grants))
	for i, tj := range grants {
		jobs[i] = leasedJob{
			JobID: tj.id,
			Kind:  tj.job.Kind,
			Key:   tj.job.Key,
			Label: tj.job.Label,
			Spec:  tj.job.Spec,
		}
	}
	return jobs
}

// leaseRPC is the transport-independent lease handler: the JSON endpoint
// and the binary LEASE frame both land here. An empty Jobs slice means "no
// work right now" (HTTP surfaces it as 204, the wire as an empty GRANT).
func (c *Coordinator) leaseRPC(req leaseRequest) leaseResponse {
	kinds := kindSet(req.Kinds)
	now := time.Now()

	c.mu.Lock()
	c.registerWorkerLocked(req.Worker, req.Peer, now)
	notes := c.reclaimExpiredLocked(now)
	grants := c.grantLocked(now, req.Worker, kinds, c.leaseSizeLocked(now, req.Max))
	pdone, ptotal := c.progressLocked()
	c.mu.Unlock()
	notes.notify()

	resp := leaseResponse{Done: pdone, Total: ptotal}
	if len(grants) > 0 {
		c.leases.Add(1)
		c.observeGrant(len(grants))
		resp.Jobs = leasedJobs(grants)
		c.annotateHints(req.Worker, resp.Jobs)
		resp.LeaseMillis = c.opt.leaseTTL().Milliseconds()
	}
	return resp
}

// heartbeatRPC extends the worker's named leases (shared by transports).
func (c *Coordinator) heartbeatRPC(req heartbeatRequest) heartbeatResponse {
	now := time.Now()
	c.mu.Lock()
	c.registerWorkerLocked(req.Worker, "", now)
	for _, id := range req.JobIDs {
		if tj, ok := c.leased[id]; ok && tj.worker == req.Worker {
			tj.deadline = now.Add(c.opt.leaseTTL())
		}
	}
	resp := heartbeatResponse{Active: len(c.batches) > 0}
	resp.Done, resp.Total = c.progressLocked()
	c.mu.Unlock()
	return resp
}

// resultRPC records one job's outcome and serves any requested refill
// (shared by transports).
func (c *Coordinator) resultRPC(req resultRequest) resultResponse {
	// Fold the worker's fetch-path delta counters into the exchange totals
	// (direct fetches and peer puts never touch the coordinator's socket,
	// so this is the only place it learns about them).
	c.exch.direct.Add(req.FetchDirect)
	c.exch.fallback.Add(req.FetchFallback)
	c.exch.peerPuts.Add(req.PeerPuts)
	now := time.Now()
	c.mu.Lock()
	c.registerWorkerLocked(req.Worker, "", now)
	tj, ok := c.leased[req.JobID]
	if ok {
		delete(c.leased, req.JobID)
	}
	var b *batch
	done := 0
	if ok {
		b = tj.b
		switch {
		case req.Panic != "":
			// Mirror the in-process pool: a worker-side panic becomes a
			// *runner.PanicError carrying the job's label and the remote
			// stack, attributed to the job that raised it.
			done = c.finishLocked(b, tj, nil, &runner.PanicError{
				Index: tj.index,
				Label: tj.job.Label,
				Value: fmt.Sprintf("%s (on worker %q)", req.Panic, req.Worker),
				Stack: req.Stack,
			})
		case req.Error != "":
			done = c.finishLocked(b, tj, nil, fmt.Errorf("%s (on worker %q)", req.Error, req.Worker))
		default:
			done = c.finishLocked(b, tj, req.Result, nil)
		}
	}
	// Refill: the result post doubles as a lease request, so a saturated
	// worker streams results and receives replacement jobs on the same
	// round-trips, never revisiting the lease path until the queue drains.
	var grants []*trackedJob
	if req.Refill > 0 {
		// leaseSizeLocked caps at req.Refill (the reqMax bound), so the
		// grant never exceeds what the worker asked to absorb.
		grants = c.grantLocked(now, req.Worker, kindSet(req.Kinds), c.leaseSizeLocked(now, req.Refill))
	}
	pdone, ptotal := c.progressLocked()
	c.mu.Unlock()
	b.notifyProgress(done)
	// A result for an unknown job (lease expired and completed elsewhere,
	// or batch canceled) is acknowledged and dropped: results are
	// content-addressed, so duplicates are interchangeable.
	resp := resultResponse{Done: pdone, Total: ptotal}
	if len(grants) > 0 {
		c.refills.Add(uint64(len(grants)))
		c.observeGrant(len(grants))
		resp.Jobs = leasedJobs(grants)
		c.annotateHints(req.Worker, resp.Jobs)
		resp.LeaseMillis = c.opt.leaseTTL().Milliseconds()
	}
	return resp
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp := c.leaseRPC(req)
	if len(resp.Jobs) == 0 {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, c.heartbeatRPC(req))
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var req resultRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, c.resultRPC(req))
}

func (c *Coordinator) handleAdvert(w http.ResponseWriter, r *http.Request) {
	var req advertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if int64(len(req.Bits)) > maxFilterBytes || req.M > maxFilterBytes*8 ||
		req.K < 1 || req.K > maxFilterHashes || len(req.Bits) != int(req.M+7)/8 {
		http.Error(w, "bad request: malformed indicator geometry", http.StatusBadRequest)
		return
	}
	// Budget accounting charges the HTTP body size (headers are fallback
	// overhead the binary transport doesn't pay).
	wireBytes := int(r.ContentLength)
	if wireBytes < 0 {
		wireBytes = len(req.Bits)
	}
	writeJSON(w, c.advertRPC(req, wireBytes))
}

func (c *Coordinator) handleFetch(w http.ResponseWriter, r *http.Request) {
	var req fetchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	writeJSON(w, c.fetchRPC(r.Context(), req))
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.statusSnapshot())
}

// Snapshot returns the same aggregate the /dist/status endpoint serves —
// the in-process equivalent of FetchStatus for the service layer's status
// page and drain persistence.
func (c *Coordinator) Snapshot() StatusSnapshot { return c.statusSnapshot() }

func (c *Coordinator) statusSnapshot() StatusSnapshot {
	now := time.Now()
	st := c.Stats()
	c.mu.Lock()
	resp := StatusSnapshot{
		Workers:    c.liveWorkersLocked(now),
		Leases:     st.Leases,
		Refills:    st.Refills,
		Dispatched: st.Dispatched,
		Completed:  st.Completed,
		Failed:     st.Failed,
		Reassigned: st.Reassigned,
		BytesIn:    st.BytesIn,
		BytesOut:   st.BytesOut,
		FramesIn:   st.FramesIn,
		FramesOut:  st.FramesOut,

		Adverts:       st.Adverts,
		AdvertBytes:   st.AdvertBytes,
		Fetches:       st.Fetches,
		FetchServed:   st.FetchServed,
		FetchRelayed:  st.FetchRelayed,
		FetchFalsePos: st.FetchFalsePos,

		FetchDirect:     st.FetchDirect,
		FetchFallback:   st.FetchFallback,
		PeerPuts:        st.PeerPuts,
		RingOwnerGrants: st.RingOwnerGrants,
	}
	resp.Active = len(c.batches) > 0
	resp.Draining = c.draining
	resp.RingWorkers = c.placement.size()
	resp.Done, resp.Total = c.progressLocked()
	c.mu.Unlock()
	c.wireMu.Lock()
	c.gcClosedConnsLocked(now)
	for wc := range c.wireConns {
		resp.WireConns = append(resp.WireConns, wc.status())
	}
	for _, cc := range c.closedConns {
		resp.WireConns = append(resp.WireConns, cc.st)
	}
	c.wireMu.Unlock()
	// Live connections sort first, then the closed history; within each
	// group, by worker and remote address.
	slices.SortFunc(resp.WireConns, func(a, b WireConnStatus) int {
		if a.Closed != b.Closed {
			if a.Closed {
				return 1
			}
			return -1
		}
		return strings.Compare(a.Worker+a.Remote, b.Worker+b.Remote)
	})
	return resp
}

// Closed-connection retention: /dist/status keeps a short history of dead
// binary connections (final counters, Closed=true) so a post-mortem can see
// what a departed worker moved — but bounded by count and age, so a
// week-long sweep service with churning workers never grows its status
// payload or status-page table without limit.
const (
	maxClosedConns      = 16
	closedConnRetention = 10 * time.Minute
)

// closedWireConn is one retained dead connection and when it closed.
type closedWireConn struct {
	st WireConnStatus
	at time.Time
}

// gcClosedConnsLocked drops retained closed connections past the age
// window (the count cap is enforced at insert). Caller holds wireMu.
func (c *Coordinator) gcClosedConnsLocked(now time.Time) {
	keep := c.closedConns[:0]
	for _, cc := range c.closedConns {
		if now.Sub(cc.at) <= closedConnRetention {
			keep = append(keep, cc)
		}
	}
	c.closedConns = keep
}

// retireWireConn moves a dying connection from the live table to the
// bounded closed history.
func (c *Coordinator) retireWireConn(wc *wireConn) {
	st := wc.status()
	st.Closed = true
	now := time.Now()
	c.wireMu.Lock()
	delete(c.wireConns, wc)
	c.closedConns = append(c.closedConns, closedWireConn{st: st, at: now})
	if n := len(c.closedConns) - maxClosedConns; n > 0 {
		c.closedConns = append(c.closedConns[:0], c.closedConns[n:]...)
	}
	c.gcClosedConnsLocked(now)
	c.wireMu.Unlock()
}

// observeGrant feeds the grant-size histogram when metrics are registered
// (one atomic load on the path otherwise).
func (c *Coordinator) observeGrant(n int) {
	if h := c.grantSize.Load(); h != nil {
		h.Observe(float64(n))
	}
}

// WriteStatus writes the coordinator's current /dist/status JSON — the
// exact bytes a GET would return — to w. The CLI uses it to persist the
// final status snapshot as a CI artifact without an extra HTTP round-trip.
func (c *Coordinator) WriteStatus(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.statusSnapshot())
}

// maxBody bounds request bodies; specs are small (a cell config is well
// under a kilobyte) but results may carry full reports.
const maxBody = 64 << 20

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
