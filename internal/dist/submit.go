package dist

// Sweep submissions: the client half of the sweep service. A long-lived
// coordinator (internal/svc) installs a submission hook via HandleSubmit;
// submissions arrive over either transport plane — POST /dist/submit on
// HTTP/JSON, a SUBMIT/SWEEP frame pair on the binary wire — and land in the
// same hook. A coordinator with no hook (the classic one-shot -serve, or a
// bare NewCoordinator in tests) rejects in-band with a descriptive error
// rather than queueing work it would never run.

import (
	"context"
	"fmt"
	"net/http"
)

// SubmitRequest asks a sweep-service coordinator to queue one named sweep.
type SubmitRequest struct {
	// Exp is the experiment id (experiments.IDs), e.g. "fig1".
	Exp string `json:"exp"`
	// Scale selects the sweep density ("quick" or "full"); empty takes the
	// service's default.
	Scale string `json:"scale,omitempty"`
	// Priority orders the sweep against others: higher-priority sweeps are
	// scheduled (and their jobs granted) first; equal priorities run FIFO.
	// Must be in [0, 1<<20].
	Priority int `json:"priority,omitempty"`
	// Seeds overrides the sweep's per-cell seed list (experiments
	// Options.Seeds); empty takes the per-scale default. The service
	// validates the list (non-empty after parse, no duplicates) and rejects
	// bad lists in-band.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// SubmitResponse acknowledges a submission. Err is the in-band rejection
// (unknown experiment, coordinator not a sweep service, service draining);
// when empty, ID names the queued sweep and Position is its 1-based place
// in the queue at submission time.
type SubmitResponse struct {
	ID       string `json:"id,omitempty"`
	Position int    `json:"position,omitempty"`
	Err      string `json:"err,omitempty"`
}

// HandleSubmit installs fn as the coordinator's sweep-submission hook; the
// service layer calls this once at startup. A nil hook (the default)
// rejects every submission in-band.
func (c *Coordinator) HandleSubmit(fn func(SubmitRequest) SubmitResponse) {
	c.submitMu.Lock()
	c.submit = fn
	c.submitMu.Unlock()
}

// submitRPC is the transport-independent submission handler: the JSON
// endpoint and the binary SUBMIT frame both land here.
func (c *Coordinator) submitRPC(req SubmitRequest) SubmitResponse {
	c.submitMu.Lock()
	fn := c.submit
	c.submitMu.Unlock()
	if fn == nil {
		return SubmitResponse{Err: "coordinator is not a sweep service (start one with bashsim -serve and no -exp)"}
	}
	return fn(req)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Priority < 0 || req.Priority > maxSweepPriority {
		http.Error(w, fmt.Sprintf("bad request: sweep priority %d out of range [0, %d]", req.Priority, maxSweepPriority),
			http.StatusBadRequest)
		return
	}
	writeJSON(w, c.submitRPC(req))
}

// SubmitSweep submits one named sweep to a sweep-service coordinator and
// returns its acknowledgment. The submission travels whatever transport o
// selects — the binary wire by default, HTTP/JSON with o.Wire == "http" or
// a custom o.Client — and an in-band rejection surfaces as an error with
// the coordinator's description.
func SubmitSweep(ctx context.Context, o WorkerOptions, req SubmitRequest) (SubmitResponse, error) {
	if req.Priority < 0 || req.Priority > maxSweepPriority {
		return SubmitResponse{}, fmt.Errorf("dist: sweep priority %d out of range [0, %d]", req.Priority, maxSweepPriority)
	}
	tr, err := newTransport(o)
	if err != nil {
		return SubmitResponse{}, err
	}
	defer tr.Close()
	resp, err := tr.Submit(ctx, req)
	if err != nil {
		return SubmitResponse{}, err
	}
	if resp.Err != "" {
		return *resp, fmt.Errorf("dist: coordinator %s rejected the sweep: %s", o.Coordinator, resp.Err)
	}
	return *resp, nil
}
