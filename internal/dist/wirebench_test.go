package dist

// BenchmarkWireRoundTrip compares the two transports on the protocol's hot
// cycle — lease a batch, execute, stream the result, refill — with payloads
// sized like the real sweep's gob cells (~227-byte specs, ~244-byte
// results, near-identical across jobs: exactly the shape the binary wire's
// per-connection compression context feeds on). The CI bench step archives
// the output; the binary transport must show fewer coordinator bytes per
// op and lower latency than HTTP/JSON at the same batch size.

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/runner"
)

const benchKind = "dist-bench.cell"

func init() {
	runner.RegisterExecutor(benchKind, func(spec []byte) ([]byte, error) {
		// ~244 bytes, mostly constant: a stand-in for a gob-encoded metrics
		// struct, which differs between cells in only a handful of fields.
		out := make([]byte, 244)
		copy(out, "metrics:")
		copy(out[8:], spec[:16])
		return out, nil
	})
}

func benchJobs(n int, tag byte) []runner.Job {
	base := make([]byte, 227)
	for i := range base {
		base[i] = byte('a' + i%23)
	}
	jobs := make([]runner.Job, n)
	for i := range jobs {
		spec := append([]byte(nil), base...)
		binary.BigEndian.PutUint64(spec, uint64(i))
		spec[8] = tag
		jobs[i] = runner.Job{
			Kind:  benchKind,
			Key:   fmt.Sprintf("bench-%c-%d", tag, i),
			Label: fmt.Sprintf("bench job %d", i),
			Spec:  spec,
		}
	}
	return jobs
}

func BenchmarkWireRoundTrip(b *testing.B) {
	for _, mode := range []string{"binary", "http"} {
		b.Run(mode, func(b *testing.B) {
			coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 5 * time.Second, LeaseBatch: 4})
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatalf("listen: %v", err)
			}
			defer l.Close()
			go coord.Serve(l)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < 2; i++ {
				go RunWorker(ctx, WorkerOptions{
					Coordinator: "http://" + l.Addr().String(),
					Name:        fmt.Sprintf("bench-%s-%d", mode, i),
					Poll:        2 * time.Millisecond,
					Kinds:       []string{benchKind},
					Wire:        mode,
				})
			}
			// Warm: establish connections (and the binary transport's
			// compression context) before the timed section.
			if _, err := coord.Run(benchJobs(8, 'w'), runner.Options{}); err != nil {
				b.Fatalf("warm run: %v", err)
			}

			jobs := benchJobs(b.N, 'b')
			before := coord.Stats()
			b.ResetTimer()
			outs, err := coord.Run(jobs, runner.Options{})
			b.StopTimer()
			if err != nil {
				b.Fatalf("Run: %v", err)
			}
			if len(outs) != b.N {
				b.Fatalf("got %d results, want %d", len(outs), b.N)
			}
			after := coord.Stats()
			delta := (after.BytesIn + after.BytesOut) - (before.BytesIn + before.BytesOut)
			b.ReportMetric(float64(delta)/float64(b.N), "coordB/op")
		})
	}
}
