package dist

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/dist/wire"
)

// TestClosedConnRetention: the /dist/status wire-conn list keeps a bounded
// history of dead connections — capped by count at insert and by age at
// snapshot — so a long-lived service with churning workers never grows its
// status payload without limit.
func TestClosedConnRetention(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{})
	total := maxClosedConns + 9
	for i := 0; i < total; i++ {
		wc := &wireConn{
			worker: fmt.Sprintf("w%02d", i),
			remote: fmt.Sprintf("10.0.0.%d:1", i),
			rd:     wire.NewReader(strings.NewReader("")),
			wr:     wire.NewWriter(io.Discard),
		}
		c.wireMu.Lock()
		c.wireConns[wc] = struct{}{}
		c.wireMu.Unlock()
		c.retireWireConn(wc)
	}

	st := c.Snapshot()
	if len(st.WireConns) != maxClosedConns {
		t.Fatalf("retained %d closed conns, want %d", len(st.WireConns), maxClosedConns)
	}
	for _, wcs := range st.WireConns {
		if !wcs.Closed {
			t.Fatalf("conn %q reported live after retirement", wcs.Worker)
		}
		// The earliest retirements are the ones evicted by the count cap.
		if wcs.Worker < fmt.Sprintf("w%02d", total-maxClosedConns) {
			t.Fatalf("conn %q should have been evicted by the count cap", wcs.Worker)
		}
	}

	// Backdate everything past the age window: the next snapshot GCs it all.
	c.wireMu.Lock()
	for i := range c.closedConns {
		c.closedConns[i].at = c.closedConns[i].at.Add(-closedConnRetention - time.Minute)
	}
	c.wireMu.Unlock()
	if n := len(c.Snapshot().WireConns); n != 0 {
		t.Fatalf("age GC left %d closed conns, want 0", n)
	}
}
