package dist

import (
	"crypto/sha256"
	"reflect"
	"testing"
)

func TestCodecRoundTrips(t *testing.T) {
	digest := sha256.Sum256([]byte("secret"))

	t.Run("hello", func(t *testing.T) {
		b := appendHello(nil, "worker-7", digest[:])
		worker, got, err := parseHello(b)
		if err != nil || worker != "worker-7" || !reflect.DeepEqual(got, digest[:]) {
			t.Fatalf("parseHello = %q, %x, %v", worker, got, err)
		}
	})

	t.Run("welcome", func(t *testing.T) {
		if err := parseWelcome(appendWelcome(nil)); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("lease request", func(t *testing.T) {
		want := leaseRequest{Worker: "w", Kinds: []string{"bashsim.cell", "other"}, Max: 4}
		got, err := parseLeaseRequest(appendLeaseRequest(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
	})

	t.Run("grant", func(t *testing.T) {
		want := leaseResponse{
			Jobs: []leasedJob{
				{JobID: 12, Kind: "bashsim.cell", Key: "abcd", Label: "cell 1", Spec: []byte{1, 2, 3}},
				{JobID: 13, Kind: "bashsim.cell", Key: "ef01", Label: "cell 2"},
			},
			LeaseMillis: 15000, Done: 3, Total: 15,
		}
		got, err := parseGrant(appendGrant(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
		// Empty grant ("no work right now") round-trips too.
		empty, err := parseGrant(appendGrant(nil, leaseResponse{Done: 15, Total: 15}))
		if err != nil || len(empty.Jobs) != 0 || empty.Done != 15 {
			t.Fatalf("empty grant: %+v, %v", empty, err)
		}
	})

	t.Run("heartbeat", func(t *testing.T) {
		wantReq := heartbeatRequest{Worker: "w", JobIDs: []int64{3, 9, 27}}
		gotReq, err := parseHeartbeatRequest(appendHeartbeatRequest(nil, wantReq))
		if err != nil || !reflect.DeepEqual(gotReq, wantReq) {
			t.Fatalf("request: got %+v, %v", gotReq, err)
		}
		wantResp := heartbeatResponse{Active: true, Done: 7, Total: 15}
		gotResp, err := parseHeartbeatResponse(appendHeartbeatResponse(nil, wantResp))
		if err != nil || gotResp != wantResp {
			t.Fatalf("response: got %+v, %v", gotResp, err)
		}
	})

	t.Run("result request", func(t *testing.T) {
		want := resultRequest{
			Worker: "w", JobID: 44, Refill: 1, Kinds: []string{"bashsim.cell"},
			Result: []byte("gob bytes"),
		}
		got, err := parseResultRequest(appendResultRequest(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
		panicky := resultRequest{Worker: "w", JobID: 45, Panic: "boom", Stack: []byte("stack...")}
		got, err = parseResultRequest(appendResultRequest(nil, panicky))
		if err != nil || !reflect.DeepEqual(got, panicky) {
			t.Fatalf("panic result: got %+v, %v", got, err)
		}
	})
}

// TestCodecRejectsMalformed: strict parsing — truncation, overrun lengths,
// and trailing bytes are all terminal errors.
func TestCodecRejectsMalformed(t *testing.T) {
	grant := appendGrant(nil, leaseResponse{
		Jobs:        []leasedJob{{JobID: 1, Kind: "k", Key: "x", Label: "l", Spec: []byte{9}}},
		LeaseMillis: 1000, Total: 1,
	})
	if _, err := parseGrant(grant[:len(grant)-2]); err == nil {
		t.Error("truncated grant parsed")
	}
	if _, err := parseGrant(append(grant, 0)); err == nil {
		t.Error("grant with trailing bytes parsed")
	}
	if _, _, err := parseHello([]byte{0xFF}); err == nil {
		t.Error("garbage hello parsed")
	}
	if _, err := parseLeaseRequest([]byte{1, 'w', 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Error("lease request with absurd kind count parsed")
	}
}

// FuzzCodecParsers: every payload parser must be total — no panics, no
// out-of-bounds — over arbitrary bytes.
func FuzzCodecParsers(f *testing.F) {
	f.Add(appendGrant(nil, leaseResponse{Jobs: []leasedJob{{JobID: 1, Kind: "k", Spec: []byte{1}}}, LeaseMillis: 5}))
	f.Add(appendResultRequest(nil, resultRequest{Worker: "w", JobID: 2, Result: []byte("r")}))
	f.Add(appendHello(nil, "w", make([]byte, sha256.Size)))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parseHello(data)
		parseWelcome(data)
		parseLeaseRequest(data)
		parseGrant(data)
		parseHeartbeatRequest(data)
		parseHeartbeatResponse(data)
		parseResultRequest(data)
	})
}
