package dist

import (
	"crypto/sha256"
	"reflect"
	"testing"
)

func TestCodecRoundTrips(t *testing.T) {
	digest := sha256.Sum256([]byte("secret"))

	t.Run("hello", func(t *testing.T) {
		b := appendHello(nil, "worker-7", digest[:], "")
		worker, got, peer, err := parseHello(b)
		if err != nil || worker != "worker-7" || !reflect.DeepEqual(got, digest[:]) || peer != "" {
			t.Fatalf("parseHello = %q, %x, %q, %v", worker, got, peer, err)
		}
		b = appendHello(nil, "worker-7", digest[:], "10.0.0.7:9102")
		worker, got, peer, err = parseHello(b)
		if err != nil || worker != "worker-7" || !reflect.DeepEqual(got, digest[:]) || peer != "10.0.0.7:9102" {
			t.Fatalf("parseHello with peer = %q, %x, %q, %v", worker, got, peer, err)
		}
	})

	t.Run("welcome", func(t *testing.T) {
		if err := parseWelcome(appendWelcome(nil)); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("lease request", func(t *testing.T) {
		want := leaseRequest{Worker: "w", Kinds: []string{"bashsim.cell", "other"}, Max: 4}
		got, err := parseLeaseRequest(appendLeaseRequest(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
		withPeer := leaseRequest{Worker: "w", Peer: "127.0.0.1:9102", Kinds: []string{"bashsim.cell"}}
		got, err = parseLeaseRequest(appendLeaseRequest(nil, withPeer))
		if err != nil || !reflect.DeepEqual(got, withPeer) {
			t.Fatalf("with peer: got %+v, %v; want %+v", got, err, withPeer)
		}
	})

	t.Run("grant", func(t *testing.T) {
		want := leaseResponse{
			Jobs: []leasedJob{
				{JobID: 12, Kind: "bashsim.cell", Key: "abcd", Label: "cell 1", Spec: []byte{1, 2, 3}},
				{JobID: 13, Kind: "bashsim.cell", Key: "ef01", Label: "cell 2"},
			},
			LeaseMillis: 15000, Done: 3, Total: 15,
		}
		got, err := parseGrant(appendGrant(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
		// Empty grant ("no work right now") round-trips too.
		empty, err := parseGrant(appendGrant(nil, leaseResponse{Done: 15, Total: 15}))
		if err != nil || len(empty.Jobs) != 0 || empty.Done != 15 {
			t.Fatalf("empty grant: %+v, %v", empty, err)
		}
	})

	t.Run("heartbeat", func(t *testing.T) {
		wantReq := heartbeatRequest{Worker: "w", JobIDs: []int64{3, 9, 27}}
		gotReq, err := parseHeartbeatRequest(appendHeartbeatRequest(nil, wantReq))
		if err != nil || !reflect.DeepEqual(gotReq, wantReq) {
			t.Fatalf("request: got %+v, %v", gotReq, err)
		}
		wantResp := heartbeatResponse{Active: true, Done: 7, Total: 15}
		gotResp, err := parseHeartbeatResponse(appendHeartbeatResponse(nil, wantResp))
		if err != nil || gotResp != wantResp {
			t.Fatalf("response: got %+v, %v", gotResp, err)
		}
	})

	t.Run("result request", func(t *testing.T) {
		want := resultRequest{
			Worker: "w", JobID: 44, Refill: 1, Kinds: []string{"bashsim.cell"},
			Result: []byte("gob bytes"),
		}
		got, err := parseResultRequest(appendResultRequest(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
		panicky := resultRequest{Worker: "w", JobID: 45, Panic: "boom", Stack: []byte("stack...")}
		got, err = parseResultRequest(appendResultRequest(nil, panicky))
		if err != nil || !reflect.DeepEqual(got, panicky) {
			t.Fatalf("panic result: got %+v, %v", got, err)
		}
		counted := resultRequest{
			Worker: "w", JobID: 46, Result: []byte("r"),
			FetchDirect: 3, FetchFallback: 1, PeerPuts: 2,
		}
		got, err = parseResultRequest(appendResultRequest(nil, counted))
		if err != nil || !reflect.DeepEqual(got, counted) {
			t.Fatalf("counted result: got %+v, %v", got, err)
		}
	})

	t.Run("put", func(t *testing.T) {
		want := putRequest{Worker: "w", Key: "abcd", Raw: []byte("gob envelope bytes")}
		got, err := parsePut(appendPut(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
		accepted := putResponse{Accepted: true}
		gotAck, err := parsePutAck(appendPutAck(nil, accepted))
		if err != nil || gotAck != accepted {
			t.Fatalf("ack: got %+v, %v", gotAck, err)
		}
		refused, err := parsePutAck(appendPutAck(nil, putResponse{}))
		if err != nil || refused.Accepted {
			t.Fatalf("refusal: got %+v, %v", refused, err)
		}
	})

	t.Run("grant held hint", func(t *testing.T) {
		want := leaseResponse{
			Jobs:        []leasedJob{{JobID: 1, Kind: "k", Key: "x", Held: true}, {JobID: 2, Kind: "k", Key: "y"}},
			LeaseMillis: 1000, Total: 2,
		}
		got, err := parseGrant(appendGrant(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
	})

	t.Run("grant peer addresses", func(t *testing.T) {
		want := leaseResponse{
			Jobs: []leasedJob{
				{JobID: 1, Kind: "k", Key: "x", Held: true,
					Holders: []string{"10.0.0.2:9102", "10.0.0.3:9102"},
					Owners:  []string{"10.0.0.4:9102"}},
				{JobID: 2, Kind: "k", Key: "y", Owners: []string{"10.0.0.2:9102"}},
			},
			LeaseMillis: 1000, Total: 2,
		}
		got, err := parseGrant(appendGrant(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
	})

	t.Run("advert", func(t *testing.T) {
		full := advertRequest{Worker: "w", Gen: 1, Full: true, M: 128, K: 5, Bits: make([]byte, 16)}
		full.Bits[3] = 0xA5
		got, err := parseAdvert(appendAdvert(nil, full))
		if err != nil || !reflect.DeepEqual(got, full) {
			t.Fatalf("full: got %+v, %v; want %+v", got, err, full)
		}
		delta := advertRequest{Worker: "w", Gen: 2, M: 128, K: 5, Bits: make([]byte, 16)}
		got, err = parseAdvert(appendAdvert(nil, delta))
		if err != nil || !reflect.DeepEqual(got, delta) {
			t.Fatalf("delta: got %+v, %v; want %+v", got, err, delta)
		}
	})

	t.Run("fetch request", func(t *testing.T) {
		want := fetchRequest{Worker: "w", Key: "abcdef0123456789"}
		got, err := parseFetchRequest(appendFetchRequest(nil, want))
		if err != nil || got != want {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
	})

	t.Run("cell", func(t *testing.T) {
		found := fetchResponse{Found: true, Raw: []byte("gob envelope bytes")}
		got, err := parseCell(appendCell(nil, found))
		if err != nil || !reflect.DeepEqual(got, found) {
			t.Fatalf("found: got %+v, %v", got, err)
		}
		miss, err := parseCell(appendCell(nil, fetchResponse{}))
		if err != nil || miss.Found || len(miss.Raw) != 0 {
			t.Fatalf("miss: got %+v, %v", miss, err)
		}
	})

	t.Run("submit", func(t *testing.T) {
		want := SubmitRequest{Exp: "fig1", Scale: "quick", Priority: 7}
		got, err := parseSubmit(appendSubmit(nil, want))
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("got %+v, %v; want %+v", got, err, want)
		}
		seeded := SubmitRequest{Exp: "fig8", Priority: 1, Seeds: []uint64{11, 23, 1 << 60}}
		got, err = parseSubmit(appendSubmit(nil, seeded))
		if err != nil || !reflect.DeepEqual(got, seeded) {
			t.Fatalf("seeded: got %+v, %v; want %+v", got, err, seeded)
		}
	})

	t.Run("sweep", func(t *testing.T) {
		accepted := SubmitResponse{ID: "s003", Position: 2}
		got, err := parseSweep(appendSweep(nil, accepted))
		if err != nil || got != accepted {
			t.Fatalf("accepted: got %+v, %v; want %+v", got, err, accepted)
		}
		rejected := SubmitResponse{Err: "unknown experiment \"fig99\""}
		got, err = parseSweep(appendSweep(nil, rejected))
		if err != nil || got != rejected {
			t.Fatalf("rejected: got %+v, %v; want %+v", got, err, rejected)
		}
	})
}

// TestCodecRejectsMalformed: strict parsing — truncation, overrun lengths,
// and trailing bytes are all terminal errors.
func TestCodecRejectsMalformed(t *testing.T) {
	grant := appendGrant(nil, leaseResponse{
		Jobs:        []leasedJob{{JobID: 1, Kind: "k", Key: "x", Label: "l", Spec: []byte{9}}},
		LeaseMillis: 1000, Total: 1,
	})
	if _, err := parseGrant(grant[:len(grant)-2]); err == nil {
		t.Error("truncated grant parsed")
	}
	if _, err := parseGrant(append(grant, 0)); err == nil {
		t.Error("grant with trailing bytes parsed")
	}
	if _, _, _, err := parseHello([]byte{0xFF}); err == nil {
		t.Error("garbage hello parsed")
	}
	if _, err := parseLeaseRequest([]byte{1, 'w', 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}); err == nil {
		t.Error("lease request with absurd kind count parsed")
	}

	advert := appendAdvert(nil, advertRequest{Worker: "w", Gen: 1, Full: true, M: 128, K: 4, Bits: make([]byte, 16)})
	if _, err := parseAdvert(advert[:len(advert)-3]); err == nil {
		t.Error("truncated advert parsed")
	}
	if _, err := parseAdvert(append(advert, 0)); err == nil {
		t.Error("advert with trailing bytes parsed")
	}
	// A filter claiming more bits than the wire bound must be rejected
	// before any allocation sized from it.
	huge := appendString(nil, "w")
	huge = appendUvarint(huge, 1)
	huge = appendBool(huge, true)
	huge = appendUvarint(huge, maxFilterBytes*8+1)
	huge = appendUvarint(huge, 4)
	huge = appendBytes(huge, nil)
	if _, err := parseAdvert(huge); err == nil {
		t.Error("advert with oversized filter claim parsed")
	}
	for _, k := range []uint64{0, maxFilterHashes + 1} {
		bad := appendString(nil, "w")
		bad = appendUvarint(bad, 1)
		bad = appendBool(bad, true)
		bad = appendUvarint(bad, 128)
		bad = appendUvarint(bad, k)
		bad = appendBytes(bad, make([]byte, 16))
		if _, err := parseAdvert(bad); err == nil {
			t.Errorf("advert with hash count %d parsed", k)
		}
	}
	// Bit array length must match the claimed geometry exactly.
	skewed := appendString(nil, "w")
	skewed = appendUvarint(skewed, 1)
	skewed = appendBool(skewed, true)
	skewed = appendUvarint(skewed, 128)
	skewed = appendUvarint(skewed, 4)
	skewed = appendBytes(skewed, make([]byte, 15))
	if _, err := parseAdvert(skewed); err == nil {
		t.Error("advert with geometry-mismatched bit array parsed")
	}
	// Booleans are strictly 0/1 on the wire.
	bogus := appendString(nil, "w")
	bogus = appendUvarint(bogus, 1)
	bogus = append(bogus, 2) // full flag = 2
	bogus = appendUvarint(bogus, 128)
	bogus = appendUvarint(bogus, 4)
	bogus = appendBytes(bogus, make([]byte, 16))
	if _, err := parseAdvert(bogus); err == nil {
		t.Error("advert with bogus bool parsed")
	}

	fetch := appendFetchRequest(nil, fetchRequest{Worker: "w", Key: "k"})
	if _, err := parseFetchRequest(fetch[:len(fetch)-1]); err == nil {
		t.Error("truncated fetch request parsed")
	}
	if _, err := parseFetchRequest(append(fetch, 0)); err == nil {
		t.Error("fetch request with trailing bytes parsed")
	}

	submit := appendSubmit(nil, SubmitRequest{Exp: "fig1", Scale: "quick", Priority: 1})
	if _, err := parseSubmit(submit[:len(submit)-1]); err == nil {
		t.Error("truncated submit parsed")
	}
	if _, err := parseSubmit(append(submit, 0)); err == nil {
		t.Error("submit with trailing bytes parsed")
	}
	// A priority beyond the wire bound is rejected before it can skew the
	// queue ordering arithmetic.
	absurd := appendString(nil, "fig1")
	absurd = appendString(absurd, "quick")
	absurd = appendUvarint(absurd, maxSweepPriority+1)
	if _, err := parseSubmit(absurd); err == nil {
		t.Error("submit with absurd priority parsed")
	}

	sweep := appendSweep(nil, SubmitResponse{ID: "s001", Position: 1})
	if _, err := parseSweep(sweep[:len(sweep)-1]); err == nil {
		t.Error("truncated sweep parsed")
	}
	if _, err := parseSweep(append(sweep, 0)); err == nil {
		t.Error("sweep with trailing bytes parsed")
	}

	// A grant whose holder-address count exceeds the wire bound must be
	// rejected before any allocation sized from it.
	hogGrant := appendUvarint(nil, 1)                  // one job
	hogGrant = appendUvarint(hogGrant, 1)              // job id
	hogGrant = appendString(hogGrant, "k")             // kind
	hogGrant = appendString(hogGrant, "x")             // key
	hogGrant = appendString(hogGrant, "l")             // label
	hogGrant = appendBytes(hogGrant, nil)              // spec
	hogGrant = appendBool(hogGrant, false)             // held
	hogGrant = appendUvarint(hogGrant, maxWireAddrs+1) // holder count past the bound
	if _, err := parseGrant(hogGrant); err == nil {
		t.Error("grant with absurd holder count parsed")
	}

	put := appendPut(nil, putRequest{Worker: "w", Key: "k", Raw: []byte("raw")})
	if _, err := parsePut(put[:len(put)-1]); err == nil {
		t.Error("truncated put parsed")
	}
	if _, err := parsePut(append(put, 0)); err == nil {
		t.Error("put with trailing bytes parsed")
	}
	// A PUT with no payload is contradictory — there is nothing to install.
	hollow := appendString(nil, "w")
	hollow = appendString(hollow, "k")
	hollow = appendBytes(hollow, nil)
	if _, err := parsePut(hollow); err == nil {
		t.Error("empty-payload put parsed")
	}
	ack := appendPutAck(nil, putResponse{Accepted: true})
	if _, err := parsePutAck(ack[:len(ack)-1]); err == nil {
		t.Error("truncated put-ack parsed")
	}
	if _, err := parsePutAck(append(ack, 0)); err == nil {
		t.Error("put-ack with trailing bytes parsed")
	}

	cell := appendCell(nil, fetchResponse{Found: true, Raw: []byte("raw")})
	if _, err := parseCell(cell[:len(cell)-1]); err == nil {
		t.Error("truncated cell parsed")
	}
	if _, err := parseCell(append(cell, 0)); err == nil {
		t.Error("cell with trailing bytes parsed")
	}
	// A not-found reply carrying payload bytes is contradictory: reject it
	// rather than let a confused peer smuggle data past the found check.
	contradictory := appendBool(nil, false)
	contradictory = appendBytes(contradictory, []byte("smuggled"))
	if _, err := parseCell(contradictory); err == nil {
		t.Error("not-found cell with payload parsed")
	}
}

// FuzzCodecParsers: every payload parser must be total — no panics, no
// out-of-bounds — over arbitrary bytes.
func FuzzCodecParsers(f *testing.F) {
	f.Add(appendGrant(nil, leaseResponse{Jobs: []leasedJob{{JobID: 1, Kind: "k", Spec: []byte{1}}}, LeaseMillis: 5}))
	f.Add(appendGrant(nil, leaseResponse{Jobs: []leasedJob{{JobID: 1, Kind: "k", Key: "x", Held: true, Holders: []string{"h:1"}, Owners: []string{"o:1"}}}, LeaseMillis: 5}))
	f.Add(appendResultRequest(nil, resultRequest{Worker: "w", JobID: 2, Result: []byte("r")}))
	f.Add(appendResultRequest(nil, resultRequest{Worker: "w", JobID: 2, Result: []byte("r"), FetchDirect: 1, FetchFallback: 2, PeerPuts: 3}))
	f.Add(appendHello(nil, "w", make([]byte, sha256.Size), "peer:9102"))
	f.Add(appendPut(nil, putRequest{Worker: "w", Key: "k", Raw: []byte("raw")}))
	f.Add(appendPutAck(nil, putResponse{Accepted: true}))
	f.Add(appendAdvert(nil, advertRequest{Worker: "w", Gen: 1, Full: true, M: 64, K: 3, Bits: make([]byte, 8)}))
	f.Add(appendFetchRequest(nil, fetchRequest{Worker: "w", Key: "k"}))
	f.Add(appendCell(nil, fetchResponse{Found: true, Raw: []byte("raw entry")}))
	f.Add(appendSubmit(nil, SubmitRequest{Exp: "fig1", Scale: "quick", Priority: 1}))
	f.Add(appendSweep(nil, SubmitResponse{ID: "s001", Position: 1}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parseHello(data)
		parseWelcome(data)
		parseLeaseRequest(data)
		parseGrant(data)
		parseHeartbeatRequest(data)
		parseHeartbeatResponse(data)
		parseResultRequest(data)
		parseAdvert(data)
		parseFetchRequest(data)
		parseCell(data)
		parseSubmit(data)
		parseSweep(data)
		parsePut(data)
		parsePutAck(data)
	})
}

// FuzzPeerCodec: the peer-to-peer data-path parsers — everything a worker's
// peer listener or peer client decodes from a socket another worker wrote —
// must be total over arbitrary bytes. Narrower than FuzzCodecParsers so the
// fuzzer's whole budget lands on the frames a (possibly hostile) peer can
// actually send.
func FuzzPeerCodec(f *testing.F) {
	digest := sha256.Sum256([]byte("secret"))
	f.Add(appendHello(nil, "w", digest[:], "10.0.0.7:9102"))
	f.Add(appendFetchRequest(nil, fetchRequest{Worker: "w", Key: "abcd"}))
	f.Add(appendCell(nil, fetchResponse{Found: true, Raw: []byte("raw entry")}))
	f.Add(appendPut(nil, putRequest{Worker: "w", Key: "abcd", Raw: []byte("raw entry")}))
	f.Add(appendPutAck(nil, putResponse{Accepted: true}))
	f.Add(appendWelcome(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		parseHello(data)
		parseWelcome(data)
		parseFetchRequest(data)
		parseCell(data)
		parsePut(data)
		parsePutAck(data)
	})
}
