package dist_test

// End-to-end peer cell exchange tests: a cold worker joining a fleet whose
// cells are already published must download them over the wire instead of
// re-simulating (the tentpole claim), and indicator false positives must
// degrade to local simulation — never to wrong results. Both paths are
// asserted with the sweep TSV byte-identical to the serial run.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
)

// waitForAdverts blocks until the coordinator has absorbed at least n
// indicator advertisements (hints are computed at grant time, so the sweep
// must not start before the holders are in the table).
func waitForAdverts(t *testing.T, coord *dist.Coordinator, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for coord.Stats().Adverts < n {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator absorbed %d adverts, want >= %d", coord.Stats().Adverts, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDistColdWorkerFetchesEverything: coordinator + warm (holder-only)
// worker + cold worker. Every cell is already published in the warm
// worker's store; the coordinator's own store is empty, so each fetch
// relays through the holder. The cold worker — the only executor — must
// complete the sweep simulating 0 cells, fetching all of them, with TSV
// byte-identical to the serial in-process run.
func TestDistColdWorkerFetchesEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale sweep twice")
	}
	warm, cold := t.TempDir(), t.TempDir()

	// Serial baseline publishes all cells into the warm store.
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{CacheDir: warm})

	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cold})
	coord := dist.NewCoordinator(dist.CoordinatorOptions{LeaseTTL: 2 * time.Second})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	// The warm worker only holds and serves: its kind list matches no job,
	// so it advertises its store and answers relayed fetches, nothing else.
	go dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: srv.URL, Name: "warm", Poll: 50 * time.Millisecond,
		Wire: "binary", CacheDir: warm, AdvertInterval: 20 * time.Millisecond,
		Kinds: []string{"exchange.holder-only"},
	})
	waitForAdverts(t, coord, 1)

	// The cold worker registers the process-global key fetcher last, so the
	// executor's fetch path is its transport.
	go dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: srv.URL, Name: "cold", Poll: 10 * time.Millisecond,
		Wire: "binary", CacheDir: cold, AdvertInterval: 20 * time.Millisecond,
	})

	experiments.ResetMemo()
	sims, fetches := experiments.Simulations(), experiments.Fetched()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord})
	if got != want {
		t.Errorf("cold-fetch TSV differs from serial TSV:\n--- serial ---\n%s\n--- fetched ---\n%s", want, got)
	}
	if d := experiments.Simulations() - sims; d != 0 {
		t.Errorf("cold worker simulated %d published cells, want 0", d)
	}
	if d := experiments.Fetched() - fetches; d != fig1Cells {
		t.Errorf("cold worker fetched %d cells, want %d", d, fig1Cells)
	}
	st := coord.Stats()
	if st.Completed != fig1Cells {
		t.Errorf("coordinator completed %d jobs, want %d", st.Completed, fig1Cells)
	}
	if st.Fetches != fig1Cells || st.FetchRelayed != fig1Cells {
		t.Errorf("fetch counters = %d fetches / %d relayed, want %d of each (coordinator store is empty — every hit relays)",
			st.Fetches, st.FetchRelayed, fig1Cells)
	}
	if st.FetchFalsePos != 0 {
		t.Errorf("FetchFalsePos = %d, want 0", st.FetchFalsePos)
	}
}

// TestDistFalsePositiveFallsBackToSimulation: a phantom holder advertises
// an all-ones filter (every key "held"), so the worker fetches every cell
// and every fetch misses. The sweep must still complete with byte-identical
// TSV — each miss degrades to local simulation — and the misses must be
// visible in the false-positive counter.
func TestDistFalsePositiveFallsBackToSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full quick-scale sweep twice")
	}
	experiments.ResetMemo()
	want := tsvOf(t, "fig1", experiments.Options{})

	cold := t.TempDir()
	experiments.RegisterCellExecutor(experiments.Options{CacheDir: cold})
	coord := dist.NewCoordinator(dist.CoordinatorOptions{LeaseTTL: 2 * time.Second})
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(srv.Close)

	// Phantom advert: 64 set bits claim every possible key. No connection
	// backs the name, so routing finds no holder and every fetch misses.
	ones := make([]byte, 8)
	for i := range ones {
		ones[i] = 0xFF
	}
	body, err := json.Marshal(map[string]any{
		"worker": "phantom", "gen": 1, "full": true, "m": 64, "k": 2, "bits": ones,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/dist/advert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("phantom advert: status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go dist.RunWorker(ctx, dist.WorkerOptions{
		Coordinator: srv.URL, Name: "duped", Poll: 10 * time.Millisecond,
		Wire: "binary", CacheDir: cold,
	})

	experiments.ResetMemo()
	sims, fetches := experiments.Simulations(), experiments.Fetched()
	got := tsvOf(t, "fig1", experiments.Options{Backend: coord})
	if got != want {
		t.Errorf("false-positive TSV differs from serial TSV:\n--- serial ---\n%s\n--- duped ---\n%s", want, got)
	}
	if d := experiments.Fetched() - fetches; d != 0 {
		t.Errorf("worker installed %d fetched cells, want 0 (every fetch must miss)", d)
	}
	if d := experiments.Simulations() - sims; d != fig1Cells {
		t.Errorf("worker simulated %d cells, want %d (every fetch falls back)", d, fig1Cells)
	}
	st := coord.Stats()
	if st.Fetches != fig1Cells || st.FetchFalsePos != fig1Cells {
		t.Errorf("fetch counters = %d fetches / %d false positives, want %d of each",
			st.Fetches, st.FetchFalsePos, fig1Cells)
	}
	if st.FetchServed != 0 || st.FetchRelayed != 0 {
		t.Errorf("served %d / relayed %d fetches from a phantom, want 0", st.FetchServed, st.FetchRelayed)
	}
}
