package dist

// Coordinator side of the peer cell exchange: the per-worker indicator
// table fed by ADVERT frames (or POST /dist/advert), the likely-holder
// hints piggybacked on grants, and the FETCH routing that serves raw cell
// entries from the coordinator's own store or relays the request down an
// advertised holder's live wire connection. Everything here is advisory
// bookkeeping around the content-addressed store: a wrong hint or a stale
// indicator costs a round-trip or a redundant simulation, never a wrong
// result, because the requester verifies every fetched entry against its
// fingerprinted key before use (cellstore.DecodeRaw, fail closed).

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellstore"
)

// relayTimeout bounds one coordinator->holder relay round-trip; past it the
// coordinator tries the next holder (or reports not-found and lets the
// requester simulate). Generous against a worker mid-GC, tight enough that
// a hung holder cannot stall a fetch behind it for long.
const relayTimeout = 3 * time.Second

// indicatorEntry is one worker's last applied indicator.
type indicatorEntry struct {
	filter *cellFilter
	gen    uint64
	when   time.Time
}

// exchange is the coordinator's indicator table plus exchange counters.
type exchange struct {
	store *cellstore.Store // coordinator's own cell store; nil = none

	mu    sync.Mutex
	table map[string]*indicatorEntry // worker -> indicator

	adverts, advertBytes                   atomic.Uint64
	fetches, served, relayed, fetchMissing atomic.Uint64
	// Worker-reported direct-path totals, folded in from the delta counters
	// on result posts (the traffic itself bypasses the coordinator).
	direct, fallback, peerPuts atomic.Uint64
}

func newExchange(cacheDir string) *exchange {
	return &exchange{store: cellstore.For(cacheDir), table: map[string]*indicatorEntry{}}
}

// noteAdvert applies one advertisement. wireBytes is the on-wire payload
// size (post-compression for binary frames), which is what the
// advert-budget accounting reports. A delta applies only when the worker's
// previous filter has the same geometry and the generation is exactly the
// successor; anything else asks for a full resend — on the binary
// transport that cannot happen (frames on one connection are ordered and
// every new connection opens with a full send), on HTTP it recovers from
// lost requests and coordinator restarts.
func (x *exchange) noteAdvert(req advertRequest, wireBytes int) advertResponse {
	x.adverts.Add(1)
	x.advertBytes.Add(uint64(wireBytes))
	f := &cellFilter{m: req.M, k: req.K, bits: req.Bits}
	x.mu.Lock()
	defer x.mu.Unlock()
	if req.Full {
		x.table[req.Worker] = &indicatorEntry{filter: f.clone(), gen: req.Gen, when: time.Now()}
		return advertResponse{}
	}
	prev := x.table[req.Worker]
	if prev == nil || req.Gen != prev.gen+1 || !prev.filter.sameShape(f) {
		return advertResponse{NeedFull: true}
	}
	prev.filter.applyDelta(req.Bits)
	prev.gen = req.Gen
	prev.when = time.Now()
	return advertResponse{}
}

// holders lists workers (excluding the requester) whose fresh indicators
// claim key, most recently advertised first. Entries older than the
// liveness window are dropped — a departed worker's indicator must not
// route fetches forever.
func (x *exchange) holders(requester, key string, window time.Duration, now time.Time) []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	type cand struct {
		name string
		when time.Time
	}
	var cands []cand
	for name, e := range x.table {
		if now.Sub(e.when) > window {
			delete(x.table, name)
			continue
		}
		if name == requester || !e.filter.contains(key) {
			continue
		}
		cands = append(cands, cand{name, e.when})
	}
	out := make([]string, 0, len(cands))
	for len(cands) > 0 {
		best := 0
		for i, c := range cands {
			if c.when.After(cands[best].when) {
				best = i
			}
		}
		out = append(out, cands[best].name)
		cands = append(cands[:best], cands[best+1:]...)
	}
	return out
}

// likelyHeld is the grant-hint predicate: the coordinator's own store has
// the key, or some other worker's fresh indicator claims it. A worker
// whose hint is false skips the fetch round-trip entirely (nobody claims
// the cell, so fetching could only waste the advert budget's savings); a
// false positive here costs one failed fetch before simulating.
func (x *exchange) likelyHeld(requester, key string, window time.Duration, now time.Time) bool {
	if x.store != nil && x.store.Contains(key) {
		return true
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	for name, e := range x.table {
		if name == requester || now.Sub(e.when) > window {
			continue
		}
		if e.filter.contains(key) {
			return true
		}
	}
	return false
}

// advertRPC records one worker's advertisement (transport-independent; the
// JSON endpoint and the binary ADVERT frame both land here). Adverts count
// as worker contact, like every other protocol action.
func (c *Coordinator) advertRPC(req advertRequest, wireBytes int) advertResponse {
	c.mu.Lock()
	c.registerWorkerLocked(req.Worker, "", time.Now())
	c.mu.Unlock()
	return c.exch.noteAdvert(req, wireBytes)
}

// maxGrantAddrs caps how many holder and owner peer addresses ride on one
// granted job: enough for a primary plus a backup on each list, small
// enough that grants stay cheap even on a large fleet.
const maxGrantAddrs = 2

// annotateHints marks each granted job with the exchange's likely-holder
// verdict and, when peers serve their stores, the holder/owner peer
// addresses for the direct data path. Runs outside the coordinator mutex:
// Contains stats the store's filesystem and the indicator table has its own
// lock (the peer-address snapshot re-takes c.mu briefly).
func (c *Coordinator) annotateHints(worker string, jobs []leasedJob) {
	window := workerTTLFactor * c.opt.leaseTTL()
	now := time.Now()
	for i := range jobs {
		jobs[i].Held = c.exch.likelyHeld(worker, jobs[i].Key, window, now)
	}
	c.annotatePeers(worker, jobs, window, now)
}

// annotatePeers fills each job's Holders (advertised holders with a peer
// listener, freshest first) and Owners (the Key's ring owners' peer
// addresses, for replication pushes). Both lists exclude the leased worker
// and workers without a peer listener; with no peer listeners registered
// anywhere the grant shape is exactly the v4 one.
func (c *Coordinator) annotatePeers(worker string, jobs []leasedJob, window time.Duration, now time.Time) {
	c.mu.Lock()
	if len(c.peerAddrs) == 0 {
		c.mu.Unlock()
		return
	}
	addrs := make(map[string]string, len(c.peerAddrs))
	for w, a := range c.peerAddrs {
		addrs[w] = a
	}
	owners := make([][]string, len(jobs))
	for i := range jobs {
		owners[i] = c.placement.owners(jobs[i].Key, maxGrantAddrs+1)
	}
	c.mu.Unlock()

	for i := range jobs {
		if jobs[i].Held {
			for _, h := range c.exch.holders(worker, jobs[i].Key, window, now) {
				if a := addrs[h]; a != "" {
					jobs[i].Holders = append(jobs[i].Holders, a)
					if len(jobs[i].Holders) == maxGrantAddrs {
						break
					}
				}
			}
		}
		for _, o := range owners[i] {
			if o == worker {
				continue
			}
			if a := addrs[o]; a != "" {
				jobs[i].Owners = append(jobs[i].Owners, a)
				if len(jobs[i].Owners) == maxGrantAddrs {
					break
				}
			}
		}
	}
}

// fetchRPC answers one FETCH: the coordinator's own store first, then each
// advertised holder in freshness order via a relay down its live wire
// connection. Relayed entries are verified (envelope + key, so a confused
// holder cannot poison anyone) and written through to the coordinator's
// store when it has one — the next cold worker asking for the same cell is
// served locally. A fetch that finds nothing counts as a false positive:
// the requester's hint said "held" but no holder produced the bytes, and
// the requester falls back to simulating.
func (c *Coordinator) fetchRPC(ctx context.Context, req fetchRequest) fetchResponse {
	x := c.exch
	x.fetches.Add(1)
	if x.store != nil {
		if raw, ok := x.store.GetRaw(req.Key); ok {
			x.served.Add(1)
			return fetchResponse{Found: true, Raw: raw}
		}
	}
	window := workerTTLFactor * c.opt.leaseTTL()
	for _, holder := range x.holders(req.Worker, req.Key, window, time.Now()) {
		wc := c.wireConnFor(holder)
		if wc == nil {
			continue
		}
		raw, ok := c.relayFetch(ctx, wc, req.Key)
		if !ok || cellstore.VerifyRaw(req.Key, raw) != nil {
			continue
		}
		x.relayed.Add(1)
		if x.store != nil {
			x.store.PutRaw(req.Key, raw) // best-effort cache of the relay
		}
		return fetchResponse{Found: true, Raw: raw}
	}
	x.fetchMissing.Add(1)
	return fetchResponse{}
}

// wireConnFor returns some live binary connection belonging to worker (nil
// when the worker is not currently wire-connected — its HTTP fallback or a
// reconnect gap; the fetch then tries the next holder).
func (c *Coordinator) wireConnFor(worker string) *wireConn {
	c.wireMu.Lock()
	defer c.wireMu.Unlock()
	for wc := range c.wireConns {
		if wc.worker == worker {
			return wc
		}
	}
	return nil
}
