package dist

// Worker-to-worker data path: an optional per-worker peer listener serving
// the worker's local cell store to other workers directly, taking the
// coordinator off the bulk-data path. The listener speaks the same framed
// wire as everything else — raw TCP (both ends already speak frames, so no
// HTTP upgrade), a HELLO/WELCOME handshake authenticated with the same
// shared-secret digest as coordinator connections, then exactly two
// request/reply pairs: FETCH→CELL (serve one raw entry) and PUT→PUT-ACK
// (install one replicated entry, verified fail-closed before it touches the
// store). Anything else is a terminal ERROR, like the coordinator's wire.
//
// Clients dial per operation: direct fetches happen in bursts during a cold
// worker's warm-up and replication pushes at publish time, so connection
// reuse buys little against the simplicity of no per-peer session state.
// Every failure — dial, handshake, timeout, verification — degrades to the
// next tier (coordinator relay, then local simulation), never to a wrong
// result.

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"net"
	"sync"
	"time"

	"repro/internal/cellstore"
	"repro/internal/dist/wire"
)

// peerIdleTimeout bounds how long an established peer connection may sit
// silent before the server closes it (clients dial per operation, so idle
// connections are leaks, not sessions worth keeping).
const peerIdleTimeout = time.Minute

// peerOpTimeout bounds one whole client-side peer operation: dial,
// handshake, request, reply. Tighter than the coordinator relay path — a
// slow peer should lose to the relay fallback quickly, not serialize behind
// the full relay timeout twice.
const peerOpTimeout = relayTimeout

// secretDigestOK compares a HELLO's secret digest against secret in
// constant time; an empty secret accepts any HELLO (matching the
// coordinator's HTTP middleware being absent).
func secretDigestOK(secret string, digest []byte) bool {
	if secret == "" {
		return true
	}
	want := sha256.Sum256([]byte(secret))
	if len(digest) != sha256.Size {
		return false
	}
	return subtle.ConstantTimeCompare(want[:], digest) == 1
}

// peerServer is one worker's peer listener. Serving is deliberately
// counter-free on this side: the fetching worker reports direct-path
// traffic to the coordinator as deltas on its result posts, so the fleet
// totals live in one place.
type peerServer struct {
	secret string
	store  *cellstore.Store
	ln     net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// startPeerServer listens on addr and serves the store to peers until
// Close. The returned server's Addr is the resolved listen address (port 0
// resolves to the kernel's pick) — but note the *advertised* address must
// be dialable by peers, so a wildcard host is advertised as given.
func startPeerServer(addr, secret string, store *cellstore.Store) (*peerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &peerServer{
		secret: secret, store: store, ln: ln,
		conns: map[net.Conn]struct{}{},
	}
	go p.acceptLoop()
	return p, nil
}

// Addr is the resolved listen address.
func (p *peerServer) Addr() string { return p.ln.Addr().String() }

// Close stops accepting and closes every open peer connection.
func (p *peerServer) Close() error {
	p.mu.Lock()
	p.closed = true
	for conn := range p.conns {
		conn.Close()
	}
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *peerServer) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[conn] = struct{}{}
	return true
}

func (p *peerServer) untrack(conn net.Conn) {
	p.mu.Lock()
	delete(p.conns, conn)
	p.mu.Unlock()
}

func (p *peerServer) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go p.serve(conn)
	}
}

// serve runs one peer connection: handshake, then FETCH/PUT frames until
// the peer hangs up, idles out, or violates the protocol.
func (p *peerServer) serve(conn net.Conn) {
	defer conn.Close()
	if !p.track(conn) {
		return
	}
	defer p.untrack(conn)

	rd := wire.NewReader(conn)
	wr := wire.NewWriter(conn)
	conn.SetReadDeadline(time.Now().Add(wireHandshakeTimeout))
	h, payload, err := rd.ReadFrame()
	if err != nil || h.Type != wire.FrameHello {
		return
	}
	_, digest, _, err := parseHello(payload)
	if err != nil {
		wr.WriteFrame(wire.FrameError, 0, 0, []byte(err.Error()))
		return
	}
	if !secretDigestOK(p.secret, digest) {
		wr.WriteFrame(wire.FrameError, wire.FlagAuthFailed, 0,
			[]byte("unauthorized: shared secret mismatch on peer HELLO"))
		return
	}
	if wr.WriteFrame(wire.FrameWelcome, 0, 0, appendWelcome(nil)) != nil {
		return
	}

	for {
		conn.SetReadDeadline(time.Now().Add(peerIdleTimeout))
		h, payload, err := rd.ReadFrame()
		if err != nil {
			return
		}
		switch h.Type {
		case wire.FrameFetch:
			req, err := parseFetchRequest(payload)
			if err != nil {
				wr.WriteFrame(wire.FrameError, 0, h.Stream, []byte(err.Error()))
				return
			}
			var resp fetchResponse
			if raw, ok := p.store.GetRaw(req.Key); ok {
				resp = fetchResponse{Found: true, Raw: raw}
			}
			buf := wire.GetBuffer()
			*buf = appendCell(*buf, resp)
			err = wr.WriteFrame(wire.FrameCell, 0, h.Stream, *buf)
			wire.PutBuffer(buf)
			if err != nil {
				return
			}
		case wire.FramePut:
			req, err := parsePut(payload)
			if err != nil {
				wr.WriteFrame(wire.FrameError, 0, h.Stream, []byte(err.Error()))
				return
			}
			// Fail closed exactly like a fetched cell: a replica that does
			// not verify against its key never touches the store.
			var resp putResponse
			if cellstore.VerifyRaw(req.Key, req.Raw) == nil && p.store.PutRaw(req.Key, req.Raw) == nil {
				resp.Accepted = true
			}
			buf := wire.GetBuffer()
			*buf = appendPutAck(*buf, resp)
			err = wr.WriteFrame(wire.FramePutAck, 0, h.Stream, *buf)
			wire.PutBuffer(buf)
			if err != nil {
				return
			}
		default:
			wr.WriteFrame(wire.FrameError, 0, h.Stream,
				[]byte("dist: unexpected "+wire.TypeName(h.Type)+" frame on a peer connection"))
			return
		}
	}
}

// --- Peer client ---------------------------------------------------------

// dialPeer establishes one authenticated peer connection within ctx's
// deadline. The caller owns the returned conn.
func dialPeer(ctx context.Context, addr, worker, secret string) (net.Conn, *wire.Reader, *wire.Writer, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, nil, nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	wr := wire.NewWriter(conn)
	digest := sha256.Sum256([]byte(secret))
	hello := wire.GetBuffer()
	*hello = appendHello(*hello, worker, digest[:], "")
	err = wr.WriteFrame(wire.FrameHello, 0, 0, *hello)
	wire.PutBuffer(hello)
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	rd := wire.NewReader(conn)
	h, payload, err := rd.ReadFrame()
	if err != nil || h.Type != wire.FrameWelcome || parseWelcome(payload) != nil {
		conn.Close()
		if err == nil {
			err = wire.ErrNotWire
		}
		return nil, nil, nil, err
	}
	return conn, rd, wr, nil
}

// peerFetch fetches one raw cell entry directly from a holder's peer
// listener. Returns ok=false on any failure — the caller falls back to the
// coordinator relay. The returned bytes are unverified; the caller checks
// them against the key before trusting anything.
func peerFetch(ctx context.Context, addr, worker, secret, key string) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(ctx, peerOpTimeout)
	defer cancel()
	conn, rd, wr, err := dialPeer(ctx, addr, worker, secret)
	if err != nil {
		return nil, false
	}
	defer conn.Close()
	buf := wire.GetBuffer()
	*buf = appendFetchRequest(*buf, fetchRequest{Worker: worker, Key: key})
	err = wr.WriteFrame(wire.FrameFetch, 0, 1, *buf)
	wire.PutBuffer(buf)
	if err != nil {
		return nil, false
	}
	h, payload, err := rd.ReadFrame()
	if err != nil || h.Type != wire.FrameCell {
		return nil, false
	}
	resp, err := parseCell(payload)
	if err != nil || !resp.Found {
		return nil, false
	}
	return resp.Raw, true
}

// peerPut pushes one raw cell entry to a ring owner's peer listener
// (best-effort: a refusal or failure is fine, the relay path covers
// misses).
func peerPut(ctx context.Context, addr, worker, secret, key string, raw []byte) bool {
	ctx, cancel := context.WithTimeout(ctx, peerOpTimeout)
	defer cancel()
	conn, rd, wr, err := dialPeer(ctx, addr, worker, secret)
	if err != nil {
		return false
	}
	defer conn.Close()
	buf := wire.GetBuffer()
	*buf = appendPut(*buf, putRequest{Worker: worker, Key: key, Raw: raw})
	err = wr.WriteFrame(wire.FramePut, 0, 1, *buf)
	wire.PutBuffer(buf)
	if err != nil {
		return false
	}
	h, payload, err := rd.ReadFrame()
	if err != nil || h.Type != wire.FramePutAck {
		return false
	}
	resp, err := parsePutAck(payload)
	return err == nil && resp.Accepted
}
