package dist

// Cell-store membership indicators: compact Bloom filters workers advertise
// over their cellstore keys so the coordinator can route fetches to likely
// holders instead of letting every cold worker re-simulate. The design
// follows the cache-indicator literature the paper's bandwidth-adaptivity
// idea comes from: a filter answers "might this peer hold key K" with a
// tunable false-positive rate, and its size (bits per key) plus refresh
// cadence adapt to an advertisement bandwidth budget — a false positive
// costs one failed fetch round-trip before the requester simulates, never
// a wrong result.
//
// Hashing is double hashing over SHA-256(key): deterministic across
// processes and builds, so any worker's filter is meaningful to any
// coordinator. Filter capacity grows in powers of two, so a steadily
// growing store keeps one filter geometry for a while and deltas (XOR of
// bit arrays, sent when geometry and generation line up) stay small.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
)

// Filter geometry bounds.
const (
	// minFilterBits is the smallest filter ever built (even an empty store
	// advertises something, which tells the coordinator "I hold nothing").
	minFilterBits = 64
	// maxFilterBytes bounds a filter on both ends of the wire: parse
	// rejects anything larger, and builders shrink bits-per-key before
	// ever exceeding it.
	maxFilterBytes = 1 << 22
	// defaultBitsPerKey targets a ~0.5% false-positive rate (k≈8); the
	// budget adaptation halves it (to minBitsPerKey) when a full send
	// would blow the advert budget.
	defaultBitsPerKey = 12
	minBitsPerKey     = 2
	maxFilterHashes   = 16
)

// cellFilter is one Bloom filter over store keys.
type cellFilter struct {
	m    uint32 // bits
	k    uint8  // hash functions
	bits []byte // (m+7)/8 bytes
}

// filterHashes derives the two double-hashing bases for key.
func filterHashes(key string) (h1, h2 uint64) {
	sum := sha256.Sum256([]byte(key))
	h1 = binary.BigEndian.Uint64(sum[0:8])
	h2 = binary.BigEndian.Uint64(sum[8:16])
	// An even h2 would cycle over a fraction of a power-of-two m.
	h2 |= 1
	return h1, h2
}

// hashCount is the standard k ≈ bpk·ln2 rounded, clamped to a useful range.
func hashCount(bitsPerKey int) uint8 {
	k := (bitsPerKey*69 + 50) / 100
	if k < 1 {
		k = 1
	}
	if k > maxFilterHashes {
		k = maxFilterHashes
	}
	return uint8(k)
}

// filterBits picks the power-of-two size holding n keys at bitsPerKey.
func filterBits(n, bitsPerKey int) uint32 {
	need := n * bitsPerKey
	m := uint32(minFilterBits)
	for int(m) < need && m < maxFilterBytes*8 {
		m <<= 1
	}
	return m
}

// buildFilter constructs a filter over keys at the given bits-per-key.
func buildFilter(keys []string, bitsPerKey int) *cellFilter {
	f := &cellFilter{m: filterBits(len(keys), bitsPerKey), k: hashCount(bitsPerKey)}
	f.bits = make([]byte, (f.m+7)/8)
	for _, key := range keys {
		f.add(key)
	}
	return f
}

func (f *cellFilter) add(key string) {
	h1, h2 := filterHashes(key)
	for i := uint8(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % uint64(f.m)
		f.bits[idx>>3] |= 1 << (idx & 7)
	}
}

// contains reports whether key may be in the set (false positives possible,
// false negatives not).
func (f *cellFilter) contains(key string) bool {
	if f == nil || f.m == 0 {
		return false
	}
	h1, h2 := filterHashes(key)
	for i := uint8(0); i < f.k; i++ {
		idx := (h1 + uint64(i)*h2) % uint64(f.m)
		if f.bits[idx>>3]&(1<<(idx&7)) == 0 {
			return false
		}
	}
	return true
}

// equal reports whether two filters have identical geometry and contents.
func (f *cellFilter) equal(o *cellFilter) bool {
	return o != nil && f.m == o.m && f.k == o.k && bytes.Equal(f.bits, o.bits)
}

// sameShape reports whether a delta between the two filters is meaningful.
func (f *cellFilter) sameShape(o *cellFilter) bool {
	return o != nil && f.m == o.m && f.k == o.k && len(f.bits) == len(o.bits)
}

// xor returns f ⊕ o (caller guarantees sameShape). Applying the result to o
// reconstructs f, which is how delta adverts work: bits only ever turn on
// as a store grows, so deltas are sparse and compress to almost nothing
// under the wire's shared deflate context.
func (f *cellFilter) xor(o *cellFilter) []byte {
	out := make([]byte, len(f.bits))
	for i := range out {
		out[i] = f.bits[i] ^ o.bits[i]
	}
	return out
}

// applyDelta XORs delta into the filter in place.
func (f *cellFilter) applyDelta(delta []byte) {
	for i := range f.bits {
		f.bits[i] ^= delta[i]
	}
}

// clone returns an independent copy (table entries must not alias a
// builder's buffer).
func (f *cellFilter) clone() *cellFilter {
	return &cellFilter{m: f.m, k: f.k, bits: append([]byte(nil), f.bits...)}
}

// budgetBitsPerKey adapts the filter density to the advert budget: starting
// from defaultBitsPerKey, halve until a full filter send fits within one
// budget-second (or the floor is hit). A tight budget therefore costs
// false-positive rate — wasted fetch round-trips — rather than blowing the
// byte cap; budget <= 0 means unlimited.
func budgetBitsPerKey(nkeys, budget int) int {
	bpk := defaultBitsPerKey
	if budget <= 0 {
		return bpk
	}
	for bpk > minBitsPerKey && int(filterBits(nkeys, bpk))/8 > budget {
		if bpk /= 2; bpk < minBitsPerKey {
			bpk = minBitsPerKey
		}
	}
	return bpk
}

// advertDelay is the bandwidth-adaptive refresh pacing: after sending
// sentBytes against a bytes/sec budget, the next advert waits at least
// sentBytes/budget seconds (expressed in integer milliseconds), so the
// advert stream's long-run rate stays under budget no matter how fast the
// store churns. The caller takes the max of this and its base interval.
func advertDelayMillis(sentBytes, budget int) int64 {
	if budget <= 0 || sentBytes <= 0 {
		return 0
	}
	return int64(sentBytes) * 1000 / int64(budget)
}
