package dist

// Loopback transport: co-execution's bridge between the coordinator's own
// HTTP handler and an in-process worker. The worker's requests never touch
// a socket, but they traverse the full protocol path — routing, the shared-
// secret check, JSON decoding, lease bookkeeping — so the loopback worker
// behaves exactly like a remote one, auth failures included.

import (
	"bytes"
	"io"
	"net/http"
)

// loopbackTransport serves every round-trip directly from an http.Handler.
type loopbackTransport struct {
	h http.Handler
}

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &responseRecorder{header: http.Header{}, code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:        http.StatusText(rec.code),
		StatusCode:    rec.code,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        rec.header,
		Body:          io.NopCloser(&rec.body),
		ContentLength: int64(rec.body.Len()),
		Request:       req,
	}, nil
}

// responseRecorder is the minimal in-memory http.ResponseWriter the
// loopback needs (httptest.ResponseRecorder without the test-only surface,
// so the shipped binary does not depend on net/http/httptest).
type responseRecorder struct {
	header http.Header
	body   bytes.Buffer
	code   int
	wrote  bool
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wrote {
		r.code = code
		r.wrote = true
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.body.Write(p)
}
