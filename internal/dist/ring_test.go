package dist

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell/fig1/proto=%d/bw=%d/seed=%d", i%3, i%16, i)
	}
	return keys
}

// TestRingSkewBound pins the load balance the vnode count buys: across
// fleet sizes 2..32, no worker owns more than 2x (or fewer than 1/4 of)
// its fair share of 10k keys.
func TestRingSkewBound(t *testing.T) {
	keys := ringKeys(10000)
	for workers := 2; workers <= 32; workers++ {
		var r ring
		for w := 0; w < workers; w++ {
			r.add(fmt.Sprintf("worker-%d", w))
		}
		counts := make(map[string]int)
		for _, k := range keys {
			owner := r.owner(k)
			if owner == "" {
				t.Fatalf("%d workers: no owner for %q", workers, k)
			}
			counts[owner]++
		}
		if len(counts) != workers {
			t.Fatalf("%d workers: only %d own any keys", workers, len(counts))
		}
		fair := float64(len(keys)) / float64(workers)
		for w, c := range counts {
			if f := float64(c); f > 2*fair || f < fair/4 {
				t.Errorf("%d workers: %s owns %d keys (fair share %.0f)", workers, w, c, fair)
			}
		}
	}
}

// TestRingMinimalMovement: a join moves keys only onto the new worker, and
// a leave moves only the departed worker's keys.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(5000)
	var r ring
	for w := 0; w < 8; w++ {
		r.add(fmt.Sprintf("worker-%d", w))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.owner(k)
	}

	r.add("worker-8")
	moved := 0
	for _, k := range keys {
		now := r.owner(k)
		if now != before[k] {
			if now != "worker-8" {
				t.Fatalf("join: %q moved %s -> %s (not to the joiner)", k, before[k], now)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("join: new worker took over no keys")
	}
	// ~1/9 of the keyspace should move; allow generous slack.
	if frac := float64(moved) / float64(len(keys)); frac > 0.3 {
		t.Errorf("join moved %.1f%% of keys, want ~11%%", 100*frac)
	}

	after := make(map[string]string, len(keys))
	for _, k := range keys {
		after[k] = r.owner(k)
	}
	r.remove("worker-3")
	for _, k := range keys {
		now := r.owner(k)
		if after[k] == "worker-3" {
			if now == "worker-3" {
				t.Fatalf("leave: %q still owned by removed worker", k)
			}
		} else if now != after[k] {
			t.Fatalf("leave: %q moved %s -> %s though worker-3 never owned it", k, after[k], now)
		}
	}
}

// TestRingDeterminism: ownership is a pure function of the membership set —
// insertion order doesn't matter, and a golden sample pins the hash layout
// so separate processes (and future builds) agree.
func TestRingDeterminism(t *testing.T) {
	var a, b ring
	names := []string{"alpha", "beta", "gamma", "delta"}
	for _, n := range names {
		a.add(n)
	}
	for i := len(names) - 1; i >= 0; i-- {
		b.add(names[i])
	}
	b.add("beta") // duplicate add must be a no-op
	for _, k := range ringKeys(2000) {
		if a.owner(k) != b.owner(k) {
			t.Fatalf("owner of %q differs with insertion order: %s vs %s", k, a.owner(k), b.owner(k))
		}
	}

	// Golden assignments: SHA-256 is stable everywhere, so these values
	// only change if the ring's hash derivation changes — which would
	// invalidate every placement in a mixed-version fleet.
	golden := map[string]string{
		"cell-0": "delta",
		"cell-1": "delta",
		"cell-2": "alpha",
		"cell-3": "beta",
		"cell-4": "delta",
	}
	for k, want := range golden {
		if got := a.owner(k); got != want {
			t.Errorf("golden owner(%q) = %s, want %s", k, got, want)
		}
	}
}

// TestRingOwners: replica sets are distinct, owner-first, and bounded by
// membership.
func TestRingOwners(t *testing.T) {
	var r ring
	if r.owners("k", 2) != nil {
		t.Fatal("empty ring returned owners")
	}
	for _, n := range []string{"a", "b", "c"} {
		r.add(n)
	}
	for _, k := range ringKeys(500) {
		owners := r.owners(k, 2)
		if len(owners) != 2 {
			t.Fatalf("owners(%q, 2) = %v", k, owners)
		}
		if owners[0] != r.owner(k) {
			t.Fatalf("owners(%q)[0] = %s, owner = %s", k, owners[0], r.owner(k))
		}
		if owners[0] == owners[1] {
			t.Fatalf("owners(%q) repeats %s", k, owners[0])
		}
	}
	if got := r.owners("k", 10); len(got) != 3 {
		t.Fatalf("owners capped at membership: got %v", got)
	}
	if got := r.owners("k", 0); got != nil {
		t.Fatalf("owners(k, 0) = %v", got)
	}
}
