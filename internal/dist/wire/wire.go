// Package wire is the framed binary transport under the dist plane: a
// length-prefixed frame protocol spoken over one persistent TCP connection
// per worker, replacing one JSON-over-HTTP request per protocol action.
//
// Every frame is a fixed 20-byte header followed by a payload:
//
//	offset  size  field
//	0       4     magic "BSWF"
//	4       1     protocol version (currently 2)
//	5       1     frame type (FrameHello .. FrameSweep)
//	6       2     flags, big-endian (FlagAuthFailed, FlagDeflate)
//	8       4     stream id, big-endian (0 = connection scope)
//	12      4     payload length, big-endian (bounded by MaxPayload)
//	16      4     CRC-32 (IEEE) of bytes 0..15, big-endian
//
// The header CRC means a desynchronized or corrupted stream is detected at
// the next frame boundary instead of being misread as a giant length; the
// decoder never trusts a length whose header failed the checksum.
//
// Frames with FlagDeflate carry a deflate-compressed payload (a uvarint of
// the raw length, then the compressed bytes) with per-connection context
// takeover: both ends keep one flate stream alive for the life of the
// connection, so the near-identical gob payloads of a sweep — thousands of
// cell specs and metric blobs differing only in a few floats — compress
// against each other, not from scratch. That is where the dist plane's
// bandwidth goes from "HTTP with less framing" to a small fraction of it.
// Handshake frames (Hello, Welcome, Error) are never compressed, so auth
// and version negotiation never depend on codec state.
//
// Reader and Writer reuse their frame buffers across calls (the payload
// returned by ReadFrame is only valid until the next call), keeping the
// per-frame hot path allocation-free in steady state, consistent with the
// simulator's own free-list discipline.
package wire

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

const (
	// HeaderSize is the fixed frame header length in bytes.
	HeaderSize = 20
	// Version is the protocol version spoken by this package. v2 added the
	// peer cell exchange: the ADVERT/FETCH/CELL frames and a per-job
	// likely-holder hint inside GRANT payloads (a strict codec change, so
	// mixed builds reject each other at the handshake instead of failing
	// mid-sweep on a parse error). The SUBMIT/SWEEP pair (sweep service
	// submissions) was appended without a bump: the new types only ever
	// flow client -> coordinator after negotiation, and an older build
	// rejects them cleanly as unknown frame types at the header parse.
	// v3 is consistent-hash placement and direct peer fetch: HELLO gains
	// the worker's peer listener address and GRANT jobs gain holder/owner
	// peer-address lists, plus RESULT gains the worker's fetch-path delta
	// counters — strict codec-shape changes again, so the version bumps.
	// The PUT/PUT-ACK pair (peer-to-peer cell replication) is appended
	// under the same no-bump rule as SUBMIT/SWEEP.
	Version = 3
	// MaxPayload bounds a frame's payload (raw or compressed), mirroring
	// the HTTP transport's request-body cap.
	MaxPayload = 64 << 20
	// CompressMin is the smallest data-frame payload worth deflating;
	// below it the flush marker overhead rivals the savings.
	CompressMin = 64
)

// Frame types. Hello/Welcome/Error are connection-scope (stream 0);
// the rest carry one protocol action each on a worker slot's stream.
const (
	FrameHello     byte = 1 + iota // worker -> coordinator: name + secret digest
	FrameWelcome                   // coordinator -> worker: connection accepted
	FrameError                     // either direction: terminal error, connection closes
	FrameLease                     // worker -> coordinator: lease request
	FrameGrant                     // coordinator -> worker: granted jobs (may be empty)
	FrameHeartbeat                 // worker -> coordinator: extend held leases
	FrameBeatAck                   // coordinator -> worker: heartbeat reply
	FrameResult                    // worker -> coordinator: one job's outcome
	FrameResultAck                 // coordinator -> worker: ack + optional refill grant
	FrameAdvert                    // worker -> coordinator: cell-store membership indicator (no reply)
	FrameFetch                     // either direction: request one raw cell entry by key
	FrameCell                      // either direction: FETCH reply (found flag + raw entry bytes)
	FrameSubmit                    // client -> coordinator: submit one named sweep (exp, scale, priority)
	FrameSweep                     // coordinator -> client: SUBMIT reply (sweep id + queue position, or error)
	FramePut                       // worker -> peer: replicate one raw cell entry (key + raw bytes)
	FramePutAck                    // peer -> worker: PUT reply (accepted flag)
	frameTypeEnd
)

// Flags.
const (
	// FlagAuthFailed marks a FrameError as an authentication rejection:
	// the worker must not reconnect with the same credentials.
	FlagAuthFailed uint16 = 1 << 0
	// FlagDeflate marks a payload as deflate-compressed (uvarint raw
	// length + compressed bytes) under the connection's shared context.
	FlagDeflate uint16 = 1 << 1
)

// magic identifies a bashsim wire frame.
var magic = [4]byte{'B', 'S', 'W', 'F'}

// Header is one parsed frame header. Length is the on-wire payload length
// (the compressed length for FlagDeflate frames).
type Header struct {
	Version byte
	Type    byte
	Flags   uint16
	Stream  uint32
	Length  int
}

// TypeName names a frame type for logs and errors.
func TypeName(t byte) string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameWelcome:
		return "WELCOME"
	case FrameError:
		return "ERROR"
	case FrameLease:
		return "LEASE"
	case FrameGrant:
		return "GRANT"
	case FrameHeartbeat:
		return "HEARTBEAT"
	case FrameBeatAck:
		return "BEAT-ACK"
	case FrameResult:
		return "RESULT"
	case FrameResultAck:
		return "RESULT-ACK"
	case FrameAdvert:
		return "ADVERT"
	case FrameFetch:
		return "FETCH"
	case FrameCell:
		return "CELL"
	case FrameSubmit:
		return "SUBMIT"
	case FrameSweep:
		return "SWEEP"
	case FramePut:
		return "PUT"
	case FramePutAck:
		return "PUT-ACK"
	default:
		return fmt.Sprintf("type-%d", t)
	}
}

// putHeader encodes h into b, computing the CRC.
func putHeader(b *[HeaderSize]byte, h Header) {
	copy(b[0:4], magic[:])
	b[4] = h.Version
	b[5] = h.Type
	binary.BigEndian.PutUint16(b[6:8], h.Flags)
	binary.BigEndian.PutUint32(b[8:12], h.Stream)
	binary.BigEndian.PutUint32(b[12:16], uint32(h.Length))
	binary.BigEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(b[0:16]))
}

// ParseHeader decodes and validates one frame header. Every failure is
// closed and descriptive: bad magic, unsupported version, corrupt CRC, and
// oversized length each name what was found.
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, fmt.Errorf("wire: truncated frame header: %d of %d bytes", len(b), HeaderSize)
	}
	if !bytes.Equal(b[0:4], magic[:]) {
		return h, fmt.Errorf("wire: bad frame magic %q (want %q): stream is not the bashsim wire protocol or desynchronized", b[0:4], magic[:])
	}
	if want, got := binary.BigEndian.Uint32(b[16:20]), crc32.ChecksumIEEE(b[0:16]); want != got {
		return h, fmt.Errorf("wire: corrupt frame header: CRC %08x, computed %08x", want, got)
	}
	h.Version = b[4]
	if h.Version != Version {
		return h, fmt.Errorf("wire: unsupported protocol version %d (this build speaks %d)", h.Version, Version)
	}
	h.Type = b[5]
	if h.Type == 0 || h.Type >= frameTypeEnd {
		return h, fmt.Errorf("wire: unknown frame type %d", h.Type)
	}
	h.Flags = binary.BigEndian.Uint16(b[6:8])
	h.Stream = binary.BigEndian.Uint32(b[8:12])
	n := binary.BigEndian.Uint32(b[12:16])
	if n > MaxPayload {
		return h, fmt.Errorf("wire: frame payload of %d bytes exceeds the %d-byte bound", n, MaxPayload)
	}
	h.Length = int(n)
	return h, nil
}

// bufPool recycles message-encode scratch buffers across frames and
// connections (the dist codec appends into these, writes the frame, and
// returns them).
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// GetBuffer returns a reusable zero-length scratch buffer.
func GetBuffer() *[]byte { b := bufPool.Get().(*[]byte); *b = (*b)[:0]; return b }

// PutBuffer returns a buffer obtained from GetBuffer to the pool.
func PutBuffer(b *[]byte) {
	if b != nil && cap(*b) <= MaxPayload {
		bufPool.Put(b)
	}
}

// coalesceMax is the largest frame assembled into one contiguous write;
// larger raw payloads are written with vectored I/O instead of copying.
const coalesceMax = 4096

// Writer frames and writes messages. It is safe for concurrent use: one
// mutex serializes frames, which is also what keeps the shared compression
// context coherent across a worker's slot streams.
type Writer struct {
	// NoCompress disables FlagDeflate frames (benchmarks compare raw
	// framing; set it before the first WriteFrame and never change it).
	NoCompress bool

	mu   sync.Mutex
	w    io.Writer
	out  []byte        // reused frame-assembly buffer
	comp *flate.Writer // per-connection context takeover; created lazily
	cbuf bytes.Buffer  // compressed-payload scratch

	frames, bytes atomic.Uint64
}

// NewWriter returns a Writer framing onto w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Stats reports frames and bytes written so far (header bytes included).
func (w *Writer) Stats() (frames, bytes uint64) {
	return w.frames.Load(), w.bytes.Load()
}

// compressible reports whether a frame type's payload may be deflated:
// data frames only, never the handshake.
func compressible(typ byte) bool { return typ >= FrameLease }

// WriteFrame writes one frame with the given payload segments (concatenated
// in order; segments let large gob blobs pass through without an
// intermediate copy). Flags are augmented with FlagDeflate when the payload
// is compressed.
func (w *Writer) WriteFrame(typ byte, flags uint16, stream uint32, segs ...[]byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > MaxPayload {
		return fmt.Errorf("wire: %s payload of %d bytes exceeds the %d-byte bound", TypeName(typ), total, MaxPayload)
	}

	var hdr [HeaderSize]byte
	if compressible(typ) && !w.NoCompress && total >= CompressMin {
		w.cbuf.Reset()
		if w.comp == nil {
			// One flate stream per connection: never Reset, so every
			// frame's payload extends the shared dictionary.
			w.comp, _ = flate.NewWriter(&w.cbuf, flate.BestSpeed)
		}
		for _, s := range segs {
			if _, err := w.comp.Write(s); err != nil {
				return fmt.Errorf("wire: deflate: %w", err)
			}
		}
		if err := w.comp.Flush(); err != nil {
			return fmt.Errorf("wire: deflate flush: %w", err)
		}
		w.out = w.out[:0]
		w.out = binary.AppendUvarint(w.out, uint64(total))
		prefix := len(w.out)
		putHeader(&hdr, Header{Version: Version, Type: typ, Flags: flags | FlagDeflate, Stream: stream, Length: prefix + w.cbuf.Len()})
		w.out = append(w.out[:0], hdr[:]...)
		w.out = binary.AppendUvarint(w.out, uint64(total))
		w.out = append(w.out, w.cbuf.Bytes()...)
		return w.flush(w.out)
	}

	putHeader(&hdr, Header{Version: Version, Type: typ, Flags: flags, Stream: stream, Length: total})
	if total <= coalesceMax {
		// Coalesce small frames into one write: Go sets TCP_NODELAY, so
		// separate header/payload writes would each become a packet.
		w.out = append(w.out[:0], hdr[:]...)
		for _, s := range segs {
			w.out = append(w.out, s...)
		}
		return w.flush(w.out)
	}
	bufs := make(net.Buffers, 0, len(segs)+1)
	bufs = append(bufs, hdr[:])
	for _, s := range segs {
		if len(s) > 0 {
			bufs = append(bufs, s)
		}
	}
	n, err := bufs.WriteTo(w.w)
	w.bytes.Add(uint64(n))
	if err != nil {
		return fmt.Errorf("wire: write %s frame: %w", TypeName(typ), err)
	}
	w.frames.Add(1)
	return nil
}

func (w *Writer) flush(b []byte) error {
	n, err := w.w.Write(b)
	w.bytes.Add(uint64(n))
	if err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	w.frames.Add(1)
	return nil
}

// Reader decodes frames from a stream. Not safe for concurrent use (one
// reader goroutine per connection); Stats may be read from anywhere.
type Reader struct {
	r    io.Reader
	err  error // sticky: a failed stream stays failed
	hdr  [HeaderSize]byte
	pbuf bytes.Buffer  // on-wire payload, reused
	raw  []byte        // decompressed payload, reused
	fed  bytes.Buffer  // compressed bytes pending inflation
	infl io.ReadCloser // per-connection inflate context; created lazily

	frames, bytes atomic.Uint64
}

// NewReader returns a Reader decoding frames from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Stats reports frames and bytes read so far (header bytes included).
func (r *Reader) Stats() (frames, bytes uint64) {
	return r.frames.Load(), r.bytes.Load()
}

// ReadFrame reads and validates the next frame, returning its header and
// decompressed payload. The payload is only valid until the next call. A
// cleanly closed stream returns io.EOF; every other failure is a
// descriptive, terminal error — the decoder never panics, and once a
// stream has failed it stays failed rather than resynchronizing on
// whatever bytes follow the corruption.
func (r *Reader) ReadFrame() (Header, []byte, error) {
	if r.err != nil {
		return Header{}, nil, r.err
	}
	h, payload, err := r.readFrame()
	if err != nil {
		r.err = err
	}
	return h, payload, err
}

func (r *Reader) readFrame() (Header, []byte, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, fmt.Errorf("wire: truncated frame header: %w", err)
	}
	h, err := ParseHeader(r.hdr[:])
	if err != nil {
		return Header{}, nil, err
	}
	// CopyN into the reused buffer grows it only as far as data actually
	// arrives, so a crafted header cannot force a MaxPayload allocation.
	r.pbuf.Reset()
	if n, err := io.CopyN(&r.pbuf, r.r, int64(h.Length)); err != nil {
		return Header{}, nil, fmt.Errorf("wire: truncated %s payload: %d of %d bytes: %w", TypeName(h.Type), n, h.Length, err)
	}
	r.frames.Add(1)
	r.bytes.Add(uint64(HeaderSize + h.Length))
	payload := r.pbuf.Bytes()

	if h.Flags&FlagDeflate == 0 {
		return h, payload, nil
	}
	rawLen, n := binary.Uvarint(payload)
	if n <= 0 {
		return Header{}, nil, fmt.Errorf("wire: %s frame: malformed deflate raw-length prefix", TypeName(h.Type))
	}
	if rawLen > MaxPayload {
		return Header{}, nil, fmt.Errorf("wire: %s frame: deflated payload of %d bytes exceeds the %d-byte bound", TypeName(h.Type), rawLen, MaxPayload)
	}
	r.fed.Write(payload[n:])
	if r.infl == nil {
		r.infl = flate.NewReader(&r.fed)
	}
	if cap(r.raw) < int(rawLen) {
		r.raw = make([]byte, rawLen)
	}
	out := r.raw[:rawLen]
	if _, err := io.ReadFull(r.infl, out); err != nil {
		return Header{}, nil, fmt.Errorf("wire: %s frame: inflate: %w", TypeName(h.Type), err)
	}
	return h, out, nil
}

// ErrNotWire lets callers distinguish "peer does not speak this protocol"
// (negotiate down to the HTTP transport) from transient connection failures.
var ErrNotWire = errors.New("wire: peer does not speak the bashsim wire protocol")
