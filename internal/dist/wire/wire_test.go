package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

// frame builds one raw frame with a freshly computed CRC.
func frame(t *testing.T, typ byte, flags uint16, stream uint32, payload []byte) []byte {
	t.Helper()
	var hdr [HeaderSize]byte
	putHeader(&hdr, Header{Version: Version, Type: typ, Flags: flags, Stream: stream, Length: len(payload)})
	return append(hdr[:], payload...)
}

func TestRoundTripRawFrames(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte{0xAB}, 10_000), // above coalesceMax: vectored path
	}
	w.NoCompress = true
	for i, p := range payloads {
		if err := w.WriteFrame(FrameResult, 0, uint32(i+1), p); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	r := NewReader(&buf)
	for i, p := range payloads {
		h, got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if h.Type != FrameResult || h.Stream != uint32(i+1) {
			t.Errorf("frame %d: header %+v", i, h)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: payload mismatch: %d vs %d bytes", i, len(got), len(p))
		}
	}
	if _, _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
	wf, wb := w.Stats()
	rf, rb := r.Stats()
	if wf != 3 || rf != 3 || wb == 0 || wb != rb {
		t.Errorf("counters: writer %d frames/%d bytes, reader %d frames/%d bytes", wf, wb, rf, rb)
	}
}

// TestCompressionContextTakeover: near-identical payloads — the dist
// plane's cell specs and metric gobs — must compress against each other
// across frames, not from scratch, and round-trip exactly.
func TestCompressionContextTakeover(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	mk := func(i int) []byte {
		return []byte(strings.Repeat("cellspec-fields-and-gob-type-descriptors ", 8) + string(rune('a'+i)))
	}
	const n = 16
	for i := 0; i < n; i++ {
		if err := w.WriteFrame(FrameGrant, 0, 1, mk(i)); err != nil {
			t.Fatalf("WriteFrame %d: %v", i, err)
		}
	}
	r := NewReader(&buf)
	var sizes []int
	for i := 0; i < n; i++ {
		h, got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if h.Flags&FlagDeflate == 0 {
			t.Fatalf("frame %d not deflated", i)
		}
		if !bytes.Equal(got, mk(i)) {
			t.Fatalf("frame %d: payload corrupted by compression round-trip", i)
		}
		sizes = append(sizes, h.Length)
	}
	// Context takeover: after the first frame primes the dictionary, each
	// repeat costs a small fraction of the raw payload.
	raw := len(mk(0))
	if sizes[n-1]*4 > raw {
		t.Errorf("context takeover ineffective: frame %d moved %d wire bytes for a %d-byte payload (want <= 1/4)", n-1, sizes[n-1], raw)
	}
}

// TestHandshakeFramesNeverCompressed: auth and negotiation must not depend
// on codec state.
func TestHandshakeFramesNeverCompressed(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	big := bytes.Repeat([]byte("hello "), 100)
	for _, typ := range []byte{FrameHello, FrameWelcome, FrameError} {
		if err := w.WriteFrame(typ, 0, 0, big); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i := 0; i < 3; i++ {
		h, _, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if h.Flags&FlagDeflate != 0 {
			t.Errorf("%s frame was compressed", TypeName(h.Type))
		}
	}
}

// TestDecoderFailsClosed enumerates the malformed-stream cases the fuzz
// target explores, pinning the descriptive message of each.
func TestDecoderFailsClosed(t *testing.T) {
	good := func() []byte { return frame(t, FrameLease, 0, 7, []byte("payload")) }
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"truncated header", func(b []byte) []byte { return b[:HeaderSize-5] }, "truncated frame header"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }, "truncated LEASE payload"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad frame magic"},
		{"bad version", func(b []byte) []byte {
			b[4] = 99
			binary.BigEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(b[0:16]))
			return b
		}, "unsupported protocol version"},
		{"unknown type", func(b []byte) []byte {
			b[5] = 200
			binary.BigEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(b[0:16]))
			return b
		}, "unknown frame type"},
		{"corrupt CRC", func(b []byte) []byte { b[17] ^= 0xFF; return b }, "corrupt frame header"},
		{"oversized length", func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[12:16], MaxPayload+1)
			binary.BigEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(b[0:16]))
			return b
		}, "exceeds"},
		{"bad deflate stream", func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[6:8], FlagDeflate)
			binary.BigEndian.PutUint32(b[16:20], crc32.ChecksumIEEE(b[0:16]))
			return b // payload "payload" is neither a uvarint-prefixed flate stream
		}, "inflate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewReader(bytes.NewReader(tc.mutate(good())))
			_, _, err := r.ReadFrame()
			if err == nil {
				t.Fatal("decoder accepted a malformed frame")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %q, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestOversizedWriteRejected(t *testing.T) {
	w := NewWriter(io.Discard)
	if err := w.WriteFrame(FrameResult, 0, 1, make([]byte, MaxPayload/2), make([]byte, MaxPayload/2+1)); err == nil {
		t.Fatal("WriteFrame accepted a payload above MaxPayload")
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	b := GetBuffer()
	*b = append(*b, "scratch"...)
	PutBuffer(b)
	c := GetBuffer()
	defer PutBuffer(c)
	if len(*c) != 0 {
		t.Errorf("pooled buffer not reset: len %d", len(*c))
	}
}
