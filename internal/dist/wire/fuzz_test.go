package wire

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"testing"
)

// FuzzFrameDecoder drives ReadFrame over arbitrary byte streams: the
// decoder must never panic, must terminate, and every rejection must carry
// a descriptive error (fail closed — a malformed stream kills the
// connection, it never yields a frame). Valid prefixes decode normally;
// the properties are checked frame by frame until the stream errors out.
func FuzzFrameDecoder(f *testing.F) {
	seed := func(typ byte, flags uint16, stream uint32, payload []byte) []byte {
		var hdr [HeaderSize]byte
		putHeader(&hdr, Header{Version: Version, Type: typ, Flags: flags, Stream: stream, Length: len(payload)})
		return append(hdr[:], payload...)
	}
	// A healthy frame, then each malformed shape the decoder must reject.
	f.Add(seed(FrameLease, 0, 1, []byte("lease me")))
	f.Add(seed(FrameHello, 0, 0, nil))
	f.Add(seed(FrameResult, 0, 3, []byte("result"))[:HeaderSize-1]) // truncated header
	f.Add(seed(FrameGrant, 0, 2, []byte("grant"))[:HeaderSize+2])   // truncated payload
	f.Add([]byte("GET /dist/lease HTTP/1.1\r\n\r\n"))               // bad magic: HTTP on the wire port
	bad := seed(FrameHeartbeat, 0, 4, nil)
	bad[4] = 42 // wrong version
	binary.BigEndian.PutUint32(bad[16:20], crc32.ChecksumIEEE(bad[0:16]))
	f.Add(bad)
	huge := seed(FrameResult, 0, 5, nil)
	binary.BigEndian.PutUint32(huge[12:16], MaxPayload+1) // oversized length
	binary.BigEndian.PutUint32(huge[16:20], crc32.ChecksumIEEE(huge[0:16]))
	f.Add(huge)
	crc := seed(FrameResult, 0, 6, []byte("x"))
	crc[18] ^= 0x55 // corrupt CRC
	f.Add(crc)
	f.Add(seed(FrameResult, FlagDeflate, 7, []byte{0x05, 0xFF, 0xFF})) // bogus deflate body
	// Sweep-service frames: a healthy SUBMIT/SWEEP pair, a truncated
	// SUBMIT payload, and the first type past the table (must be rejected).
	f.Add(seed(FrameSubmit, 0, 8, []byte("\x04fig1\x05quick\x00")))
	f.Add(seed(FrameSweep, 0, 8, []byte("\x04s001\x01\x00")))
	f.Add(seed(FrameSubmit, 0, 9, []byte("submit"))[:HeaderSize+1])
	unknown := seed(frameTypeEnd, 0, 10, nil)
	binary.BigEndian.PutUint32(unknown[16:20], crc32.ChecksumIEEE(unknown[0:16]))
	f.Add(unknown)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		// Each frame consumes >= HeaderSize bytes, so this terminates.
		for i := 0; i <= len(data)/HeaderSize+1; i++ {
			h, payload, err := r.ReadFrame()
			if err == io.EOF {
				return // clean end of stream
			}
			if err != nil {
				if err.Error() == "" {
					t.Fatal("decoder failed without a descriptive error")
				}
				// Fail closed: a stream that errored must keep erroring,
				// never resynchronize into yielding frames.
				if _, _, err2 := r.ReadFrame(); err2 == nil {
					t.Fatal("decoder yielded a frame after a terminal error")
				}
				return
			}
			if h.Length > MaxPayload || len(payload) > MaxPayload {
				t.Fatalf("decoder exceeded MaxPayload: header %d, payload %d", h.Length, len(payload))
			}
		}
		t.Fatal("decoder failed to consume the stream")
	})
}
