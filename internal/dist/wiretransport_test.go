package dist

// White-box tests for the binary wire transport: negotiation, auth,
// counters, and reconnection across a coordinator restart. These drive real
// TCP listeners through Coordinator.Serve so the socket-level byte counters
// are live (httptest bypasses Serve, so tests that only need the protocol
// keep using it elsewhere).

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/runner"
)

// serveWire binds a real listener and serves the coordinator on it.
func serveWire(t *testing.T, coord *Coordinator) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	go coord.Serve(l)
	return "http://" + l.Addr().String()
}

// TestWireFleetCountersAndStatus: a sweep over two forced-binary workers
// completes with correct results, and the coordinator's socket and frame
// counters — plus the per-connection detail in the status snapshot — all
// report the traffic.
func TestWireFleetCountersAndStatus(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 2 * time.Second, LeaseBatch: 4})
	url := serveWire(t, coord)
	ctx, cancel := testContext(t)
	defer cancel()
	for i := 0; i < 2; i++ {
		go RunWorker(ctx, WorkerOptions{
			Coordinator: url, Name: fmt.Sprintf("bin-%d", i),
			Poll: 5 * time.Millisecond, Kinds: []string{echoKind}, Wire: "binary",
		})
	}

	jobs := echoJobs(12)
	outs, err := coord.Run(jobs, runner.Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, out := range outs {
		if want := "ok:" + string(jobs[i].Spec); string(out) != want {
			t.Errorf("job %d = %q, want %q", i, out, want)
		}
	}

	st := coord.Stats()
	if st.FramesIn == 0 || st.FramesOut == 0 {
		t.Errorf("frame counters = %d in / %d out, want both > 0 (binary transport unused?)", st.FramesIn, st.FramesOut)
	}
	if st.BytesIn == 0 || st.BytesOut == 0 {
		t.Errorf("socket byte counters = %d in / %d out, want both > 0", st.BytesIn, st.BytesOut)
	}
	snap := coord.statusSnapshot()
	if len(snap.WireConns) == 0 {
		t.Fatal("status snapshot lists no live wire connections")
	}
	for _, wc := range snap.WireConns {
		if wc.Worker == "" || wc.Remote == "" || wc.FramesIn == 0 || wc.FramesOut == 0 {
			t.Errorf("wire conn status incomplete: %+v", wc)
		}
	}
}

// TestWireAuthRejectedOnHello: a forced-binary worker with the wrong secret
// exits with *AuthError — the terminal ERROR frame on HELLO must surface
// exactly like an HTTP 401 does.
func TestWireAuthRejectedOnHello(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{Secret: "right"})
	url := serveWire(t, coord)
	ctx, cancel := testContext(t)
	defer cancel()
	err := RunWorker(ctx, WorkerOptions{
		Coordinator: url, Name: "intruder", Poll: 5 * time.Millisecond,
		Kinds: []string{echoKind}, Secret: "wrong", Wire: "binary",
	})
	var ae *AuthError
	if !errors.As(err, &ae) {
		t.Fatalf("wrong-secret binary RunWorker returned %v (%T), want *AuthError", err, err)
	}
}

// TestWireNegotiationFallsBackToHTTP: against a coordinator built with
// Wire: "http" (no binary endpoint), an auto worker negotiates down to
// HTTP/JSON and the sweep still completes — with zero binary frames.
func TestWireNegotiationFallsBackToHTTP(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 2 * time.Second, Wire: "http"})
	url := serveWire(t, coord)
	ctx, cancel := testContext(t)
	defer cancel()
	go RunWorker(ctx, WorkerOptions{
		Coordinator: url, Name: "legacy", Poll: 5 * time.Millisecond, Kinds: []string{echoKind},
	})

	outs, err := coord.Run(echoJobs(4), runner.Options{})
	if err != nil {
		t.Fatalf("Run over negotiated HTTP: %v", err)
	}
	if len(outs) != 4 {
		t.Fatalf("got %d results, want 4", len(outs))
	}
	if st := coord.Stats(); st.FramesIn != 0 || st.FramesOut != 0 {
		t.Errorf("binary frames flowed (%d in / %d out) despite Wire: \"http\"", st.FramesIn, st.FramesOut)
	}
	if st := coord.Stats(); st.BytesIn == 0 {
		t.Error("socket byte counter stayed 0: HTTP fallback bypassed Serve accounting")
	}
}

// killableListener records accepted connections so a test can sever every
// live wire at once, simulating a coordinator restart.
type killableListener struct {
	net.Listener
	mu    sync.Mutex
	conns []net.Conn
}

func (l *killableListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

func (l *killableListener) kill() {
	l.Listener.Close()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, c := range l.conns {
		c.Close()
	}
	l.conns = nil
}

// TestWireReconnectAfterCoordinatorRestart: mid-sweep, every connection and
// the listener die; the coordinator rebinds the same port and the
// forced-binary workers reconnect (capped backoff) and finish the sweep.
// Leases lost in the cut reassign via the normal TTL machinery.
func TestWireReconnectAfterCoordinatorRestart(t *testing.T) {
	coord := NewCoordinator(CoordinatorOptions{LeaseTTL: 500 * time.Millisecond, LeaseBatch: 2})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	kl := &killableListener{Listener: inner}
	go coord.Serve(kl)
	addr := inner.Addr().String()

	ctx, cancel := testContext(t)
	defer cancel()
	for i := 0; i < 2; i++ {
		go RunWorker(ctx, WorkerOptions{
			Coordinator: "http://" + addr, Name: fmt.Sprintf("phoenix-%d", i),
			Poll: 5 * time.Millisecond, Kinds: []string{echoKind}, Wire: "binary",
		})
	}

	var once sync.Once
	jobs := echoJobs(12)
	outs, err := coord.Run(jobs, runner.Options{
		Progress: func(done, total int) {
			if done < 4 {
				return
			}
			once.Do(func() {
				kl.kill()
				// Rebind the same address: the workers' redial loop must find
				// the reborn coordinator without help.
				var l2 net.Listener
				for i := 0; i < 50; i++ {
					if l2, err = net.Listen("tcp", addr); err == nil {
						break
					}
					time.Sleep(20 * time.Millisecond)
				}
				if l2 == nil {
					t.Errorf("rebind %s: %v", addr, err)
					cancel()
					return
				}
				t.Cleanup(func() { l2.Close() })
				go coord.Serve(l2)
			})
		},
	})
	if err != nil {
		t.Fatalf("Run across restart: %v", err)
	}
	for i, out := range outs {
		if want := "ok:" + string(jobs[i].Spec); string(out) != want {
			t.Errorf("job %d = %q, want %q", i, out, want)
		}
	}
}

// TestReconnectDelayBackoff: the redial delay grows exponentially from the
// base, caps at the max, and always jitters inside [d/2, d).
func TestReconnectDelayBackoff(t *testing.T) {
	for fails := 1; fails <= 12; fails++ {
		want := wireBackoffBase << (fails - 1)
		if want > wireBackoffMax || want <= 0 {
			want = wireBackoffMax
		}
		for i := 0; i < 32; i++ {
			d := reconnectDelay(fails)
			if d < want/2 || d >= want {
				t.Fatalf("reconnectDelay(%d) = %v, want in [%v, %v)", fails, d, want/2, want)
			}
		}
	}
}
