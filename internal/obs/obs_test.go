package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"bashsim_leases_total": "bashsim_leases_total",
		"sweep.done":           "sweep_done",
		"1weird":               "_weird",
		"spaces and-dashes":    "spaces_and_dashes",
		"ok:colon":             "ok:colon",
		"":                     "_",
		"héllo":                "h__llo", // two UTF-8 bytes, two underscores
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	cases := map[string]string{
		`plain`:            `plain`,
		`a"b`:              `a\"b`,
		`back\slash`:       `back\\slash`,
		"line\nbreak":      `line\nbreak`,
		`all"of\it` + "\n": `all\"of\\it\n`,
	}
	for in, want := range cases {
		if got := EscapeLabelValue(in); got != want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestExpositionShape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs seen")
	c.Add(3)
	g := r.Gauge("queue depth", "queued sweeps") // name sanitized
	g.Set(-2)
	r.CounterFunc("read_through_total", "from a closure", func() uint64 { return 7 })
	r.GaugeFunc("temp", "read gauge", func() float64 { return 1.5 })
	r.Collect("sweep_done", "per-sweep progress", "gauge", func(emit func(v float64, labels ...Label)) {
		emit(4, Label{"id", `s"1`}, Label{"exp", "fig1"})
		emit(9, Label{"id", "s2"}, Label{"exp", "fig2"})
	})

	out := r.Expose()
	for _, want := range []string{
		"# HELP jobs_total jobs seen\n# TYPE jobs_total counter\njobs_total 3\n",
		"# TYPE queue_depth gauge\nqueue_depth -2\n",
		"read_through_total 7\n",
		"temp 1.5\n",
		`sweep_done{id="s\"1",exp="fig1"} 4` + "\n",
		`sweep_done{id="s2",exp="fig2"} 9` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families render sorted by name.
	if i, j := strings.Index(out, "jobs_total"), strings.Index(out, "queue_depth"); i > j {
		t.Errorf("families not sorted: jobs_total at %d, queue_depth at %d", i, j)
	}
}

func TestHistogramBucketCumulativity(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("grant_size", "jobs per grant", []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1, 3, 5, 100} {
		h.Observe(v)
	}
	out := r.Expose()
	want := []string{
		`grant_size_bucket{le="1"} 3`,
		`grant_size_bucket{le="2"} 3`,
		`grant_size_bucket{le="4"} 4`,
		`grant_size_bucket{le="8"} 5`,
		`grant_size_bucket{le="+Inf"} 6`,
		`grant_size_sum 110.5`,
		`grant_size_count 6`,
	}
	for _, w := range want {
		if !strings.Contains(out, w+"\n") {
			t.Errorf("histogram missing %q in:\n%s", w, out)
		}
	}
	// Buckets must be non-decreasing and +Inf must equal _count.
	if !bucketInvariant(out, "grant_size") {
		t.Errorf("bucket cumulativity violated:\n%s", out)
	}
}

// bucketInvariant checks that name's buckets render non-decreasing and that
// the +Inf bucket equals _count.
func bucketInvariant(out, name string) bool {
	var prev, inf, count float64
	for _, line := range strings.Split(out, "\n") {
		var v float64
		switch {
		case strings.HasPrefix(line, name+"_bucket{"):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v)
			if v < prev {
				return false
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, name+"_count "):
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &count)
		}
	}
	return inf == count
}

// TestConcurrentIncrementWhileScrape races owned instruments against
// scrapes; run under -race this is the data-race check, and the invariant
// check catches torn histogram reads either way.
func TestConcurrentIncrementWhileScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("inflight", "in flight")
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(float64((seed*31 + j) % 200))
				g.Add(-1)
			}
		}(i)
	}
	for i := 0; i < 50; i++ {
		out := r.Expose()
		if !bucketInvariant(out, "lat") {
			t.Fatalf("scrape %d: bucket invariant violated mid-race:\n%s", i, out)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1\n") {
		t.Errorf("handler body missing sample:\n%s", rec.Body.String())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("second registration of dup_total did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}
