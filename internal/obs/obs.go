// Package obs is a dependency-free metrics subsystem: a registry of
// counters, gauges, and histograms with atomic hot paths, exposed in the
// Prometheus text exposition format (a GET /metrics handler). It exists so
// the long-lived sweep service can be scraped by stock tooling without
// pulling a client library into the module.
//
// Two registration styles cover every producer in the tree:
//
//   - Owned instruments (Counter, Gauge, Histogram) for call sites that
//     want to increment something directly — lock-free atomics on the hot
//     path, read at scrape time.
//   - Read-through instruments (CounterFunc, GaugeFunc, Collect) for
//     subsystems that already keep their own atomic counters (dist,
//     cellstore, runner, experiments): the registry reads them at scrape
//     time through a closure instead of forcing a parallel bespoke struct.
//     Collect additionally emits a dynamic label set per scrape (per-sweep
//     progress gauges, per-connection byte counters).
//
// Scrapes are deterministic (families sort by name) and race-clean: every
// value is read through an atomic or a caller-supplied closure, never a
// lock shared with the hot path. Metric and label names are sanitized to
// the Prometheus charset and label values escaped per the text format, so
// a hostile sweep name cannot corrupt the exposition.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair attached to a sample.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotonically increasing uint64 with an atomic hot path.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable signed value with an atomic hot path.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Observe is lock-free: one atomic
// add on the bucket, one CAS loop on the float sum. The exposition computes
// cumulative bucket counts at scrape time, so `le="+Inf"` always equals
// `_count` even while observations race the scrape.
type Histogram struct {
	bounds []float64 // sorted upper bounds; the +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// metricKind is the TYPE line's value.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one registered metric name: its metadata plus how to read its
// samples at scrape time.
type family struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	readC   func() uint64
	readG   func() float64
	collect func(emit func(v float64, labels ...Label))
	labels  []Label // static labels for the owned/read-through forms
}

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: map[string]*family{}} }

// register adds f, panicking on a duplicate name: double registration is a
// wiring bug, and failing at startup beats silently shadowing a metric.
func (r *Registry) register(f *family) {
	f.name = SanitizeName(f.name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[f.name]; dup {
		panic("obs: metric " + f.name + " registered twice")
	}
	r.fams[f.name] = f
}

// Counter registers and returns an owned counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, counter: c, labels: labels})
	return c
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, gauge: g, labels: labels})
	return g
}

// Histogram registers and returns an owned histogram with the given bucket
// upper bounds (sorted ascending; the +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
	r.register(&family{name: name, help: help, kind: kindHistogram, hist: h, labels: labels})
	return h
}

// CounterFunc registers a counter read through fn at scrape time — the seam
// by which subsystems expose the atomic counters they already keep.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(&family{name: name, help: help, kind: kindCounter, readC: fn, labels: labels})
}

// GaugeFunc registers a gauge read through fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&family{name: name, help: help, kind: kindGauge, readG: fn, labels: labels})
}

// Collect registers a metric whose sample set is produced per scrape:
// collect is called with an emit function and may emit any number of
// samples, each with its own labels (per-sweep progress, per-connection
// counters). kind must be "counter" or "gauge".
func (r *Registry) Collect(name, help, kind string, collect func(emit func(v float64, labels ...Label))) {
	k := metricKind(kind)
	if k != kindCounter && k != kindGauge {
		panic("obs: Collect kind must be counter or gauge, got " + kind)
	}
	r.register(&family{name: name, help: help, kind: k, collect: collect})
}

// WritePrometheus renders every family in the text exposition format,
// sorted by metric name so scrapes are diffable and golden-testable.
func (r *Registry) WritePrometheus(w *strings.Builder) {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.write(w)
	}
}

// Expose returns the full exposition as a string (one allocation chain per
// scrape; scraping is a cold path next to the simulators it observes).
func (r *Registry) Expose() string {
	var b strings.Builder
	r.WritePrometheus(&b)
	return b.String()
}

// Handler returns the GET /metrics handler.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.Expose())
	})
}

func (f *family) write(b *strings.Builder) {
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteByte('\n')
	b.WriteString("# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(string(f.kind))
	b.WriteByte('\n')

	switch {
	case f.counter != nil:
		writeSample(b, f.name, f.labels, float64(f.counter.Value()))
	case f.gauge != nil:
		writeSample(b, f.name, f.labels, float64(f.gauge.Value()))
	case f.readC != nil:
		writeSample(b, f.name, f.labels, float64(f.readC()))
	case f.readG != nil:
		writeSample(b, f.name, f.labels, f.readG())
	case f.collect != nil:
		f.collect(func(v float64, labels ...Label) {
			writeSample(b, f.name, labels, v)
		})
	case f.hist != nil:
		f.hist.write(b, f.name, f.labels)
	}
}

// write renders one histogram: cumulative buckets, then sum and count.
// Bucket counts are loaded once and summed, so the rendered buckets are
// cumulative by construction and le="+Inf" equals _count exactly, even
// while Observe races the scrape.
func (h *Histogram) write(b *strings.Builder, name string, labels []Label) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", append(labels[:len(labels):len(labels)],
			Label{"le", formatFloat(bound)}), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, name+"_bucket", append(labels[:len(labels):len(labels)],
		Label{"le", "+Inf"}), float64(cum))
	writeSample(b, name+"_sum", labels, math.Float64frombits(h.sum.Load()))
	writeSample(b, name+"_count", labels, float64(cum))
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(SanitizeName(l.Name))
			b.WriteString(`="`)
			b.WriteString(EscapeLabelValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SanitizeName maps an arbitrary string onto the Prometheus metric/label
// name charset [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with
// '_' (and prefixing one when the first rune is a digit). Deterministic, so
// the same source name always scrapes under the same metric name.
func SanitizeName(s string) string {
	if s == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil { // first invalid rune: copy the clean prefix
			b = append(b, s[:i]...)
		}
		b = append(b, '_')
	}
	if b == nil {
		return s
	}
	return string(b)
}

// EscapeLabelValue escapes a label value per the text exposition format:
// backslash, double quote, and newline.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line: backslash and newline (quotes are legal).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}
