package core_test

// Scenario test for the owner predictor across sharing patterns: the
// last-owner table should be nearly useless on migratory sharing (the owner
// changes on every episode, so the past mispredicts the future) and highly
// accurate on producer-consumer sharing (each block has one stable writer).
// This is the qualitative result that motivates destination-set prediction
// in the follow-up literature, pinned here as a regression test for both
// the predictor and the producer-consumer generator.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/workload"
)

// predictorHitRate runs a named workload on unicast-only BASH with the
// owner predictor attached and returns PredictedHits/Predicted.
func predictorHitRate(t *testing.T, name string) float64 {
	t.Helper()
	const nodes = 16
	sys := core.NewSystem(core.Config{
		Protocol:         core.BashAlwaysUnicast, // isolate prediction from adaptivity
		Nodes:            nodes,
		BandwidthMBs:     1600,
		Predictor:        true,
		Seed:             11,
		WatchdogInterval: 500_000_000,
	})
	w := workload.ByName(name)
	if w == nil {
		t.Fatalf("workload %q not registered", name)
	}
	for i, a := range w.WarmBlocks() {
		sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return w })
	m := sys.Measure(1000, 4000)
	if m.Ops == 0 {
		t.Fatalf("%s: no operations measured", name)
	}
	st := sys.CacheStats()
	if st.Predicted == 0 {
		t.Fatalf("%s: predictor never extended a mask", name)
	}
	return float64(st.PredictedHits) / float64(st.Predicted)
}

// TestProducerConsumerPredictorAdvantage: the producer-consumer workload's
// stable per-block writer makes last-owner prediction far more accurate
// than on migratory sharing.
func TestProducerConsumerPredictorAdvantage(t *testing.T) {
	mig := predictorHitRate(t, "migratory")
	pc := predictorHitRate(t, "producer-consumer")
	t.Logf("predicted-first-instance hit rate: migratory %.3f, producer-consumer %.3f", mig, pc)
	if pc <= mig {
		t.Errorf("producer-consumer hit rate %.3f not above migratory %.3f", pc, mig)
	}
	if pc < 0.5 {
		t.Errorf("producer-consumer hit rate %.3f implausibly low for a stable-owner pattern", pc)
	}
}

// TestProducerConsumerRegistered: the generator resolves through ByName
// under both spellings and appears in Names.
func TestProducerConsumerRegistered(t *testing.T) {
	for _, n := range []string{"producer-consumer", "ProducerConsumer"} {
		if workload.ByName(n) == nil {
			t.Errorf("ByName(%q) = nil", n)
		}
	}
	found := false
	for _, n := range workload.Names() {
		if n == "ProducerConsumer" {
			found = true
		}
	}
	if !found {
		t.Error("ProducerConsumer missing from workload.Names()")
	}
}
