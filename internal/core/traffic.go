package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/coherence"
	"repro/internal/stats"
)

// TrafficStats counts delivered messages and bytes by protocol message kind
// — the interconnect demand each protocol places per transaction, the raw
// material of the paper's bandwidth argument.
type TrafficStats struct {
	Messages map[coherence.Kind]uint64
	Bytes    map[coherence.Kind]uint64
}

func newTrafficStats() *TrafficStats {
	return &TrafficStats{
		Messages: make(map[coherence.Kind]uint64),
		Bytes:    make(map[coherence.Kind]uint64),
	}
}

// reset clears the per-kind counters for a new run, keeping the maps.
func (t *TrafficStats) reset() {
	clear(t.Messages)
	clear(t.Bytes)
}

func (t *TrafficStats) record(kind coherence.Kind, bytes int) {
	t.Messages[kind]++
	t.Bytes[kind] += uint64(bytes)
}

// TotalBytes sums all delivered bytes.
func (t *TrafficStats) TotalBytes() uint64 {
	var total uint64
	for _, b := range t.Bytes {
		total += b
	}
	return total
}

// ControlBytes sums bytes of 8-byte control messages.
func (t *TrafficStats) ControlBytes() uint64 {
	return t.TotalBytes() - t.Bytes[coherence.Data] - t.Bytes[coherence.DataWB]
}

// DataBytes sums bytes of data-carrying messages.
func (t *TrafficStats) DataBytes() uint64 {
	return t.Bytes[coherence.Data] + t.Bytes[coherence.DataWB]
}

// String renders a per-kind breakdown, largest first.
func (t *TrafficStats) String() string {
	type row struct {
		kind  coherence.Kind
		bytes uint64
	}
	var rows []row
	for k, b := range t.Bytes {
		rows = append(rows, row{k, b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].bytes > rows[j].bytes })
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s: %d msgs, %d B\n", r.kind, t.Messages[r.kind], r.bytes)
	}
	return b.String()
}

// Traffic returns the system's delivered-traffic breakdown.
func (s *System) Traffic() *TrafficStats { return s.traffic }

// LatencyHistogram merges every cache controller's miss-latency histogram.
func (s *System) LatencyHistogram() *stats.Histogram {
	h := stats.NewLatencyHistogram()
	for _, n := range s.Nodes {
		h.Merge(n.Cache.LatencyHistogram())
	}
	return h
}
