// Package core assembles the paper's target system: N integrated
// processor/memory nodes, each with a blocking processor, an L2 cache
// controller, a slice of the globally shared memory (with home state), and a
// single full-duplex endpoint link into the interconnect. It is the public
// entry point the examples, experiments, and benchmarks build on.
package core

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/network"
	"repro/internal/sim"
)

// Protocol selects a coherence protocol for the system.
type Protocol int

// Protocols. The two Bash* ablations run the hybrid engine with a static
// mask policy, separating the value of adaptivity from the hybrid machinery.
const (
	Snooping Protocol = iota
	Directory
	BASH
	BashAlwaysBroadcast
	BashAlwaysUnicast
	BashSwitch // the unstable all-or-nothing mechanism (Section 2.1)
	// BashPredictive is BASH with the Section 7 destination-set predictor:
	// non-broadcast requests add the predicted owner to their mask.
	BashPredictive
)

func (p Protocol) String() string {
	switch p {
	case Snooping:
		return "Snooping"
	case Directory:
		return "Directory"
	case BASH:
		return "BASH"
	case BashAlwaysBroadcast:
		return "BASH-bcast"
	case BashAlwaysUnicast:
		return "BASH-ucast"
	case BashSwitch:
		return "BASH-switch"
	case BashPredictive:
		return "BASH-pred"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// Config describes a target system.
type Config struct {
	Protocol Protocol
	Nodes    int
	// BandwidthMBs is the endpoint link bandwidth per node (MB/s).
	BandwidthMBs float64
	// BroadcastCost multiplies the link occupancy of broadcast requests
	// (4 for the paper's large-system approximation; default 1).
	BroadcastCost float64
	// Cache geometry; zero selects the paper's 4 MB 4-way 64 B L2.
	Cache cache.Config
	// Adaptive parameterizes the BASH mechanism (defaults per the paper).
	Adaptive adaptive.Config
	// RetryBuffer bounds concurrently retried transactions per memory
	// controller (BASH); 0 selects the default.
	RetryBuffer int
	// Predictor attaches the destination-set predictor to any BASH variant
	// (implied by Protocol BashPredictive). Size 0 selects the default.
	Predictor     bool
	PredictorSize int
	// EnableChecker turns on SWMR/value invariant checking (tests).
	EnableChecker bool
	// WatchdogInterval trips on loss of forward progress; 0 disables.
	WatchdogInterval sim.Time
	// Seed perturbs workloads and per-node LFSRs.
	Seed uint64
	// JitterNs adds uniform random delay to message traversals (testing).
	JitterNs int
	// NoRecycle disables the hot-path free lists (packets, network
	// messages, line/txn records, directory entries): every record is
	// allocated fresh and dropped to the garbage collector. Results are
	// byte-identical either way — the determinism tests assert it — so the
	// switch exists for benchmarking the free lists and for fault
	// isolation. It is per-run state: Reset may flip it freely.
	NoRecycle bool
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.BandwidthMBs == 0 {
		c.BandwidthMBs = 1600
	}
	if c.Cache.Sets == 0 || c.Cache.Ways == 0 {
		c.Cache = cache.DefaultConfig()
	}
	return c
}

// structural identifies the allocation shape of a System: the fields that
// size or select its large structures (controllers, arrays, directory and
// retry tables, predictor, checker, watchdog). Two defaulted Configs with
// equal structural keys describe Systems that differ only in per-run
// parameters — bandwidth, seeds, jitter, adaptive tuning, watchdog interval
// — all of which Reset re-applies, so a System built for one can be reused
// for the other. Pool buckets by this key.
type structural struct {
	protocol    Protocol
	nodes       int
	sets, ways  int
	retryBuffer int
	predictor   bool
	predSize    int
	checker     bool
	watchdog    bool
}

// structuralKey derives the reuse-compatibility key from a defaulted Config.
func (c Config) structuralKey() structural {
	return structural{
		protocol:    c.Protocol,
		nodes:       c.Nodes,
		sets:        c.Cache.Sets,
		ways:        c.Cache.Ways,
		retryBuffer: c.RetryBuffer,
		predictor:   c.Predictor || c.Protocol == BashPredictive,
		predSize:    c.PredictorSize,
		checker:     c.EnableChecker,
		watchdog:    c.WatchdogInterval > 0,
	}
}

// Node is one integrated processor/memory node.
type Node struct {
	ID       network.NodeID
	Cache    coherence.CacheController
	Mem      coherence.MemController
	Adaptive *adaptive.Adaptive // non-nil for Protocol BASH / BashSwitch
	Proc     *Processor
	sys      *System
}

// DeliverOrdered implements network.Handler: both the cache and the memory
// slice snoop the totally ordered network. The node holds the packet's
// per-delivery reference for the duration of the call and releases it when
// both controllers have returned; a controller that parks the packet
// (deferral, MemWB waiting, a delayed directory apply) retains its own
// reference first.
func (n *Node) DeliverOrdered(m *network.Message) {
	n.sys.recordOrdered(n.ID, m)
	pkt := m.Payload.(*coherence.Packet)
	n.sys.traffic.record(pkt.Kind, m.Size)
	n.Cache.OnOrdered(m)
	n.Mem.OnOrdered(m)
	n.sys.packets.Release(pkt)
}

// DeliverUnordered implements network.Handler, routing by message kind and
// releasing the delivery's packet reference afterwards.
func (n *Node) DeliverUnordered(m *network.Message) {
	n.sys.recordUnordered(n.ID, m)
	pkt := m.Payload.(*coherence.Packet)
	n.sys.traffic.record(pkt.Kind, m.Size)
	switch pkt.Kind {
	case coherence.Data, coherence.Ack, coherence.Nack:
		n.Cache.OnUnordered(pkt)
	case coherence.DataWB, coherence.GetS, coherence.GetM, coherence.PutM:
		n.Mem.OnUnordered(pkt)
	default:
		panic(fmt.Sprintf("core: unroutable %s", pkt.Kind))
	}
	n.sys.packets.Release(pkt)
}

// System is a complete simulated machine.
type System struct {
	Kernel   *sim.Kernel
	Net      *network.Network
	Nodes    []*Node
	Checker  *coherence.Checker
	Watchdog *sim.Watchdog
	cfg      Config
	trace    *Trace
	traffic  *TrafficStats
	packets  *coherence.Recycler // shared packet + record free lists
	totalOps uint64              // running sum of Processor.Completed (hot-path cache)
}

// Recycler exposes the system's shared free lists (tests and diagnostics:
// after Quiesce, Live() reports leaked packets — zero in a correct run).
func (s *System) Recycler() *coherence.Recycler { return s.packets }

// NewSystem builds and wires a machine; processors are attached with
// AttachWorkload and started by Run/Measure.
//
// Construction is two-phase: build allocates every structure sized by the
// structural config (kernel, interconnect, controllers, checker, watchdog),
// then wire seeds the per-run state (bandwidth, seeds, adaptive tuning,
// watchdog interval). Reset re-runs only the wire phase, so a pooled System
// re-seeded for a compatible config is indistinguishable from a fresh one.
func NewSystem(cfg Config) *System {
	cfg = cfg.withDefaults()
	s := build(cfg)
	s.wire(cfg)
	return s
}

// build is the allocation phase: it constructs everything whose shape is
// fixed by the structural config, leaving per-run state to wire.
func build(cfg Config) *System {
	k := sim.NewKernel()
	net := network.New(k, network.Config{
		Nodes:         cfg.Nodes,
		BandwidthMBs:  cfg.BandwidthMBs,
		BroadcastCost: cfg.BroadcastCost,
		JitterNs:      cfg.JitterNs,
		JitterSeed:    cfg.Seed,
		Recycle:       !cfg.NoRecycle,
	})
	s := &System{
		Kernel:  k,
		Net:     net,
		cfg:     cfg,
		traffic: newTrafficStats(),
		packets: coherence.NewRecycler(),
	}
	if cfg.EnableChecker {
		s.Checker = coherence.NewChecker()
	}
	if cfg.WatchdogInterval > 0 {
		s.Watchdog = sim.NewWatchdog(k, cfg.WatchdogInterval, nil)
	}
	homeOf := func(a coherence.Addr) network.NodeID {
		return network.NodeID(a % coherence.Addr(cfg.Nodes))
	}
	for i := 0; i < cfg.Nodes; i++ {
		id := network.NodeID(i)
		env := coherence.Env{
			Kernel:   k,
			Net:      net,
			Self:     id,
			HomeOf:   homeOf,
			Checker:  s.Checker,
			Recycler: s.packets,
		}
		if s.Watchdog != nil {
			env.Progress = s.Watchdog.Progress
		}
		n := &Node{ID: id, sys: s}
		switch cfg.Protocol {
		case Snooping:
			n.Cache = coherence.NewSnoopCache(env, cfg.Cache)
			n.Mem = coherence.NewSnoopMem(env)
		case Directory:
			n.Cache = coherence.NewDirCache(env, cfg.Cache)
			n.Mem = coherence.NewDirMem(env)
		case BASH, BashSwitch, BashPredictive:
			// The adaptive unit's parameters (threshold, interval, width,
			// seed) are per-run state; wire re-applies them and arms the
			// sampler.
			ad := adaptive.New(cfg.Adaptive, net.InChannel(id))
			n.Adaptive = ad
			bc := coherence.NewBashCache(env, cfg.Cache, ad)
			if cfg.Predictor || cfg.Protocol == BashPredictive {
				bc.EnablePredictor(cfg.PredictorSize)
			}
			n.Cache = bc
			n.Mem = coherence.NewBashMem(env, cfg.RetryBuffer)
		case BashAlwaysBroadcast:
			n.Cache = coherence.NewBashCache(env, cfg.Cache, adaptive.AlwaysBroadcast{})
			n.Mem = coherence.NewBashMem(env, cfg.RetryBuffer)
		case BashAlwaysUnicast:
			bc := coherence.NewBashCache(env, cfg.Cache, adaptive.AlwaysUnicast{})
			if cfg.Predictor {
				bc.EnablePredictor(cfg.PredictorSize)
			}
			n.Cache = bc
			n.Mem = coherence.NewBashMem(env, cfg.RetryBuffer)
		default:
			panic(fmt.Sprintf("core: unknown protocol %v", cfg.Protocol))
		}
		if s.Checker != nil {
			s.Checker.Register(n.Cache)
		}
		net.SetHandler(id, n)
		s.Nodes = append(s.Nodes, n)
	}
	return s
}

// wire is the seeding phase shared by NewSystem and Reset: it returns every
// layer to its run-start state and applies cfg's per-run parameters. On a
// freshly built System the resets are no-ops over empty structures; on a
// reused one they clear the previous run while retaining every grown
// allocation (event queue storage, map buckets, materialized cache sets,
// histogram buckets, predictor tables).
func (s *System) wire(cfg Config) {
	s.Kernel.Reset()
	s.Net.Reset(network.Config{
		Nodes:         cfg.Nodes,
		BandwidthMBs:  cfg.BandwidthMBs,
		BroadcastCost: cfg.BroadcastCost,
		JitterNs:      cfg.JitterNs,
		JitterSeed:    cfg.Seed,
		Recycle:       !cfg.NoRecycle,
	})
	// The recycle switch is applied before the controllers Reset, so their
	// free lists drain (or not) consistently with the new run's setting.
	s.packets.SetRecycle(!cfg.NoRecycle)
	if s.Watchdog != nil {
		s.Watchdog.Reset(cfg.WatchdogInterval)
	}
	if s.Checker != nil {
		s.Checker.Reset()
	}
	for i, n := range s.Nodes {
		n.Cache.Reset()
		n.Mem.Reset()
		if n.Adaptive != nil {
			acfg := cfg.Adaptive
			acfg.Seed = uint16(cfg.Seed>>4) ^ uint16(3*i+1)
			acfg.Switch = cfg.Protocol == BashSwitch
			n.Adaptive.Reset(acfg)
			n.Adaptive.Start(s.Kernel)
		}
		n.Proc = nil
	}
	s.cfg = cfg
	s.trace = nil
	s.traffic.reset()
	s.totalOps = 0
}

// Reset re-seeds the System for a new run of a structurally compatible
// configuration — same protocol, node count, cache geometry, retry buffer,
// predictor and checker/watchdog presence — without reallocating any of its
// large structures. Per-run parameters (bandwidth, broadcast cost, seed,
// jitter, adaptive tuning, watchdog interval) may differ freely. A reset
// System produces byte-identical results to a freshly constructed one; an
// incompatible config is reported as an error and leaves the System
// untouched. Attach a workload and Measure as usual afterwards.
func (s *System) Reset(cfg Config) error {
	cfg = cfg.withDefaults()
	if have, want := s.cfg.structuralKey(), cfg.structuralKey(); have != want {
		return fmt.Errorf("core: reset with structurally incompatible config (have %+v, want %+v)", have, want)
	}
	s.wire(cfg)
	return nil
}

// Config returns the (defaulted) system configuration.
func (s *System) Config() Config { return s.cfg }

// HomeOf returns the home node of a block.
func (s *System) HomeOf(a coherence.Addr) network.NodeID {
	return network.NodeID(a % coherence.Addr(s.cfg.Nodes))
}

// PreheatOwned installs a block as Modified in one cache, with consistent
// home state, without generating traffic. Used to warm-start workloads so
// sharing misses dominate from the first access (the paper reaches the same
// state via warm-up runs).
func (s *System) PreheatOwned(a coherence.Addr, owner network.NodeID, token uint64) {
	s.Nodes[owner].Cache.Preheat(a, coherence.Modified, token)
	s.Nodes[s.HomeOf(a)].Mem.Preheat(a, owner, 0)
	if s.Checker != nil {
		s.Checker.WriteCommit(owner, a, 0, token, 0)
	}
}

// AttachWorkload gives every node a processor driven by the per-node
// generator returned by gen.
func (s *System) AttachWorkload(gen func(id network.NodeID) Workload) {
	for _, n := range s.Nodes {
		n.Proc = NewProcessor(s, n, gen(n.ID))
	}
}

// Start launches all processors.
func (s *System) Start() {
	for _, n := range s.Nodes {
		if n.Proc != nil {
			n.Proc.Start()
		}
	}
}

// TotalOps returns the number of completed processor operations. It is a
// cached running sum: Measure's RunUntil predicate calls it after every
// event, so summing the per-node counters here would cost O(nodes) per
// simulated event.
func (s *System) TotalOps() uint64 { return s.totalOps }

// StopAll halts the processors (outstanding transactions drain).
func (s *System) StopAll() {
	for _, n := range s.Nodes {
		if n.Proc != nil {
			n.Proc.Stop()
		}
	}
}

// Quiesce stops processors, samplers and the watchdog, then drains every
// in-flight event so the system reaches a stable global state.
func (s *System) Quiesce() {
	s.StopAll()
	for _, n := range s.Nodes {
		if n.Adaptive != nil {
			n.Adaptive.Stop()
		}
	}
	if s.Watchdog != nil {
		s.Watchdog.Stop()
	}
	s.Kernel.Drain()
}

// CacheStats aggregates cache controller stats across nodes.
func (s *System) CacheStats() coherence.CacheStats {
	var agg coherence.CacheStats
	for _, n := range s.Nodes {
		st := n.Cache.Stats()
		agg.Loads += st.Loads
		agg.Stores += st.Stores
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.SharingMisses += st.SharingMisses
		agg.MemoryMisses += st.MemoryMisses
		agg.Upgrades += st.Upgrades
		agg.Writebacks += st.Writebacks
		agg.BroadcastRequests += st.BroadcastRequests
		agg.UnicastRequests += st.UnicastRequests
		agg.Reissues += st.Reissues
		agg.StaleDataDropped += st.StaleDataDropped
		agg.Predicted += st.Predicted
		agg.PredictedHits += st.PredictedHits
		agg.MissLatencySum += st.MissLatencySum
		agg.MissLatencyCount += st.MissLatencyCount
	}
	return agg
}
