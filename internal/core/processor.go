package core

import (
	"repro/internal/coherence"
	"repro/internal/network"
	"repro/internal/sim"
)

// Workload generates the memory reference stream of one processor: think
// time (cycles of computation between memory-system events) and the next
// operation. Implementations live in internal/workload.
type Workload interface {
	Next(rng *sim.RNG, self network.NodeID) (think sim.Time, op coherence.Op)
}

// Processor is the paper's blocking processor model: it interleaves think
// time with blocking requests to the unified L2, at most one outstanding
// demand miss at a time.
type Processor struct {
	sys     *System
	node    *Node
	gen     Workload
	rng     *sim.RNG
	stopped bool

	// Completed counts finished memory operations.
	Completed uint64
	// ThinkTime accumulates simulated compute time (diagnostics).
	ThinkTime sim.Time
}

// NewProcessor builds a processor for a node.
func NewProcessor(sys *System, node *Node, gen Workload) *Processor {
	seed := sys.cfg.Seed*1000003 + uint64(node.ID)*7919 + 17
	return &Processor{sys: sys, node: node, gen: gen, rng: sim.NewRNG(seed)}
}

// Start begins the fetch-execute loop.
func (p *Processor) Start() { p.next() }

// Stop halts the loop after the current operation completes.
func (p *Processor) Stop() { p.stopped = true }

func (p *Processor) next() {
	if p.stopped {
		return
	}
	think, op := p.gen.Next(p.rng, p.node.ID)
	p.ThinkTime += think
	issue := func() {
		if p.stopped {
			return
		}
		p.node.Cache.Access(op, func() {
			p.Completed++
			p.sys.totalOps++
			p.next()
		})
	}
	if think > 0 {
		p.sys.Kernel.Schedule(think, issue)
	} else {
		issue()
	}
}
