package core

import (
	"repro/internal/coherence"
	"repro/internal/network"
	"repro/internal/sim"
)

// Workload generates the memory reference stream of one processor: think
// time (cycles of computation between memory-system events) and the next
// operation. Implementations live in internal/workload.
type Workload interface {
	Next(rng *sim.RNG, self network.NodeID) (think sim.Time, op coherence.Op)
}

// Processor is the paper's blocking processor model: it interleaves think
// time with blocking requests to the unified L2, at most one outstanding
// demand miss at a time.
//
// The fetch-execute loop runs on two closures bound once at construction
// (issueFn, doneFn) with the pending operation carried in a field — the
// processor is blocking, so at most one operation is in flight and the
// field is never overwritten early. A billion-op run therefore allocates
// nothing in this loop.
type Processor struct {
	sys     *System
	node    *Node
	gen     Workload
	rng     *sim.RNG
	stopped bool

	pendingOp coherence.Op
	issueFn   func()
	doneFn    func()

	// Completed counts finished memory operations.
	Completed uint64
	// ThinkTime accumulates simulated compute time (diagnostics).
	ThinkTime sim.Time
}

// NewProcessor builds a processor for a node.
func NewProcessor(sys *System, node *Node, gen Workload) *Processor {
	seed := sys.cfg.Seed*1000003 + uint64(node.ID)*7919 + 17
	p := &Processor{sys: sys, node: node, gen: gen, rng: sim.NewRNG(seed)}
	p.issueFn = p.issue
	p.doneFn = p.opDone
	return p
}

// Start begins the fetch-execute loop.
func (p *Processor) Start() { p.next() }

// Stop halts the loop after the current operation completes.
func (p *Processor) Stop() { p.stopped = true }

func (p *Processor) next() {
	if p.stopped {
		return
	}
	think, op := p.gen.Next(p.rng, p.node.ID)
	p.ThinkTime += think
	p.pendingOp = op
	if think > 0 {
		p.sys.Kernel.Schedule(think, p.issueFn)
	} else {
		p.issue()
	}
}

func (p *Processor) issue() {
	if p.stopped {
		return
	}
	p.node.Cache.Access(p.pendingOp, p.doneFn)
}

func (p *Processor) opDone() {
	p.Completed++
	p.sys.totalOps++
	p.next()
}
