package core

import "sync"

// Pool recycles Systems across runs. The dominant per-cell cost of a sweep
// after the event kernel rewrite is construction — a fresh System allocates
// the kernel, the interconnect channels, and per node a cache controller
// (with its set-array table), a memory controller and an adaptive unit,
// only to be discarded a few milliseconds later. A Pool keeps quiesced
// Systems bucketed by structural configuration (protocol, node count, cache
// geometry, retry buffer, predictor/checker/watchdog presence) and re-seeds
// one via System.Reset on the next lease, so steady-state sweeps stop
// paying the allocation bill entirely.
//
// Get either reuses a compatible pooled System (resetting it for cfg) or
// builds a fresh one; Put returns a System for reuse. Reset guarantees a
// leased System is byte-for-byte equivalent to a fresh one, so pooling
// never changes results — the determinism tests assert exactly that. A
// System must not be used after Put.
//
// Pool is safe for concurrent use; each leased System remains
// single-threaded, as all simulations are. The per-bucket free list is
// bounded by MaxFreePerKey to cap retained memory when a sweep visits many
// structural shapes.
type Pool struct {
	mu   sync.Mutex
	free map[structural][]*System

	// MaxFreePerKey bounds idle Systems retained per structural bucket;
	// Put drops the System instead when the bucket is full. Zero selects
	// DefaultMaxFreePerKey. With one leased System per sweep worker, the
	// bucket never needs to exceed the worker count.
	MaxFreePerKey int

	gets, builds, puts uint64
}

// DefaultMaxFreePerKey is the default per-bucket free-list bound.
const DefaultMaxFreePerKey = 32

// NewPool returns an empty System pool.
func NewPool() *Pool {
	return &Pool{free: make(map[structural][]*System)}
}

// Get leases a System for cfg: a pooled structurally compatible one,
// re-seeded via Reset, or a freshly built one. Return it with Put when the
// run's results have been extracted.
func (p *Pool) Get(cfg Config) *System {
	cfg = cfg.withDefaults()
	key := cfg.structuralKey()

	p.mu.Lock()
	p.gets++
	var s *System
	if bucket := p.free[key]; len(bucket) > 0 {
		s = bucket[len(bucket)-1]
		bucket[len(bucket)-1] = nil
		p.free[key] = bucket[:len(bucket)-1]
	} else {
		p.builds++
	}
	p.mu.Unlock()

	if s == nil {
		return NewSystem(cfg)
	}
	if err := s.Reset(cfg); err != nil {
		// Unreachable by construction (the bucket key is the structural
		// key), but fail safe rather than corrupt a run.
		return NewSystem(cfg)
	}
	return s
}

// Put returns a leased System to the pool. Pending events need not be
// drained: each System owns a private kernel, and the next Get's Reset
// drops whatever the previous run left scheduled.
func (p *Pool) Put(s *System) {
	if s == nil {
		return
	}
	key := s.cfg.structuralKey()
	max := p.MaxFreePerKey
	if max <= 0 {
		max = DefaultMaxFreePerKey
	}
	p.mu.Lock()
	p.puts++
	if len(p.free[key]) < max {
		p.free[key] = append(p.free[key], s)
	}
	p.mu.Unlock()
}

// Stats reports lifetime lease and construction counts: gets is total
// leases, builds how many required fresh construction (gets-builds were
// served by reuse), puts how many Systems were returned.
func (p *Pool) Stats() (gets, builds, puts uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.gets, p.builds, p.puts
}
