package core_test

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/workload"
)

func measuredSystem(t *testing.T, p core.Protocol, bw float64) (*core.System, core.Metrics) {
	t.Helper()
	const nodes = 8
	sys := core.NewSystem(core.Config{
		Protocol:         p,
		Nodes:            nodes,
		BandwidthMBs:     bw,
		EnableChecker:    true,
		WatchdogInterval: 50_000_000,
	})
	lk := workload.NewLocking(64*nodes, 0)
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
	return sys, sys.Measure(500, 2500)
}

// TestMeasureWindowAccounting: the measurement window must contain exactly
// the requested operations and internally consistent rates.
func TestMeasureWindowAccounting(t *testing.T) {
	_, m := measuredSystem(t, core.Snooping, 1600)
	if m.Ops < 2500 {
		t.Fatalf("ops = %d, want >= 2500", m.Ops)
	}
	if m.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	got := float64(m.Ops) / float64(m.Elapsed)
	if got != m.Throughput {
		t.Fatalf("throughput %v != ops/elapsed %v", m.Throughput, got)
	}
	if m.BroadcastFraction != 1 {
		t.Fatalf("snooping broadcast fraction = %v", m.BroadcastFraction)
	}
}

// TestTrafficBreakdown: snooping traffic on a sharing-miss workload is
// requests + data; the data share per op is ~72 bytes plus writebacks.
func TestTrafficBreakdown(t *testing.T) {
	sys, m := measuredSystem(t, core.Snooping, 1600)
	tr := sys.Traffic()
	if tr.Bytes[coherence.GetM] == 0 {
		t.Fatal("no GetM traffic recorded")
	}
	if tr.Bytes[coherence.Data] == 0 {
		t.Fatal("no data traffic recorded")
	}
	if tr.TotalBytes() != tr.ControlBytes()+tr.DataBytes() {
		t.Fatal("traffic breakdown does not sum")
	}
	// A lock acquire that misses costs one broadcast (8 B to each of 8
	// nodes) plus one 72 B data delivery = 136 B; one pick in eight is the
	// processor's own lock (a hit, no traffic), so ~119 B per operation.
	if m.BytesPerOp < 110 || m.BytesPerOp > 145 {
		t.Fatalf("bytes/op = %.0f, want ~119", m.BytesPerOp)
	}
	if !strings.Contains(tr.String(), "Data") {
		t.Fatal("traffic String missing Data row")
	}
}

// TestDirectoryTrafficLighter: on the same workload, Directory must move
// fewer request-network bytes per op than Snooping (the paper's bandwidth
// argument), while BASH sits between.
func TestDirectoryTrafficLighter(t *testing.T) {
	_, ms := measuredSystem(t, core.Snooping, 1600)
	_, md := measuredSystem(t, core.Directory, 1600)
	if md.ControlBytesPerOp >= ms.ControlBytesPerOp {
		t.Fatalf("directory control bytes/op %.0f should undercut snooping %.0f",
			md.ControlBytesPerOp, ms.ControlBytesPerOp)
	}
}

// TestPendedDemandAfterWriteback: a demand access to a block whose
// writeback is still in flight must wait for the writeback and then fetch.
func TestPendedDemandAfterWriteback(t *testing.T) {
	for _, p := range protocolsUnderTest {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := core.NewSystem(core.Config{
				Protocol:         p,
				Nodes:            4,
				BandwidthMBs:     2000,
				EnableChecker:    true,
				WatchdogInterval: 10_000_000,
				Cache:            cacheTiny(),
			})
			const a = coherence.Addr(4) // set 0
			sys.PreheatOwned(a, 0, 0x9)
			sys.PreheatOwned(12, 0, 0xA) // fills set 0's second way
			// Store to 20 (set 0) evicts LRU block 4 -> writeback; then an
			// immediate load of 4 must pend behind the writeback.
			d1 := access(sys, 0, true, 20)
			d2 := access(sys, 0, false, a)
			waitAll(t, sys, d1, d2)
			sys.Quiesce()
			if st := sys.Nodes[0].Cache.StateOf(a); st != coherence.Shared {
				t.Fatalf("refetched block state %v, want S", st)
			}
			if got := sys.Nodes[0].Cache.ValueOf(a); got != 0x9 {
				t.Fatalf("refetched value %x, want 0x9 (via memory)", got)
			}
		})
	}
}

// TestMetricsString is a smoke test for the human-readable summary.
func TestMetricsString(t *testing.T) {
	_, m := measuredSystem(t, core.BASH, 1600)
	s := m.String()
	if !strings.Contains(s, "BASH") || !strings.Contains(s, "ops/ns") {
		t.Fatalf("summary %q", s)
	}
}
