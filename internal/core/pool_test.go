package core

import (
	"testing"

	"repro/internal/network"
	"repro/internal/workload"
)

// measureCell runs one small locking cell on sys and returns its metrics.
func measureCell(sys *System) Metrics {
	nodes := sys.Net.Nodes()
	lk := workload.NewLocking(64*nodes, 0)
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(network.NodeID) Workload { return lk })
	return sys.Measure(300, 900)
}

// cellConfigs is a structurally varied set of per-run configurations that
// are pairwise pool-compatible per protocol.
func cellConfigs() []Config {
	return []Config{
		{Protocol: BASH, Nodes: 8, BandwidthMBs: 800, Seed: 11, WatchdogInterval: 500_000_000},
		{Protocol: BASH, Nodes: 8, BandwidthMBs: 4000, Seed: 23, WatchdogInterval: 500_000_000},
		{Protocol: Snooping, Nodes: 8, BandwidthMBs: 800, Seed: 11, WatchdogInterval: 500_000_000},
		{Protocol: Directory, Nodes: 8, BandwidthMBs: 800, Seed: 11, WatchdogInterval: 500_000_000},
		{Protocol: BASH, Nodes: 8, BandwidthMBs: 800, Seed: 11, JitterNs: 40, WatchdogInterval: 500_000_000},
	}
}

// TestResetMatchesFresh: a System reused via Reset produces exactly the
// metrics a freshly constructed System produces, across protocols, seeds,
// bandwidths and jitter — including when the reused System previously ran a
// *different* compatible configuration (stale-state leak detection).
func TestResetMatchesFresh(t *testing.T) {
	cfgs := cellConfigs()
	fresh := make([]Metrics, len(cfgs))
	for i, cfg := range cfgs {
		fresh[i] = measureCell(NewSystem(cfg))
	}
	// One reused System per protocol, cycled through its compatible cells
	// twice in different orders.
	reused := map[Protocol]*System{}
	lease := func(cfg Config) *System {
		s := reused[cfg.Protocol]
		if s == nil {
			s = NewSystem(cfg)
			reused[cfg.Protocol] = s
			return s
		}
		if err := s.Reset(cfg); err != nil {
			t.Fatalf("Reset(%+v): %v", cfg, err)
		}
		return s
	}
	for pass := 0; pass < 2; pass++ {
		for i := range cfgs {
			j := i
			if pass == 1 {
				j = len(cfgs) - 1 - i
			}
			if got := measureCell(lease(cfgs[j])); got != fresh[j] {
				t.Errorf("pass %d cfg %d: reused metrics differ:\n fresh:  %+v\n reused: %+v",
					pass, j, fresh[j], got)
			}
		}
	}
}

// TestResetStructuralMismatch: Reset refuses configs that change the
// allocation shape and leaves the System usable.
func TestResetStructuralMismatch(t *testing.T) {
	sys := NewSystem(Config{Protocol: BASH, Nodes: 8, WatchdogInterval: 500_000_000})
	for _, bad := range []Config{
		{Protocol: Snooping, Nodes: 8, WatchdogInterval: 500_000_000},        // protocol
		{Protocol: BASH, Nodes: 16, WatchdogInterval: 500_000_000},           // nodes
		{Protocol: BASH, Nodes: 8},                                           // watchdog presence
		{Protocol: BASH, Nodes: 8, EnableChecker: true, WatchdogInterval: 1}, // checker
		{Protocol: BASH, Nodes: 8, Predictor: true, WatchdogInterval: 1},     // predictor
	} {
		if err := sys.Reset(bad); err == nil {
			t.Errorf("Reset accepted structurally incompatible %+v", bad)
		}
	}
	// Still usable for a compatible config after the rejections.
	if err := sys.Reset(Config{Protocol: BASH, Nodes: 8, BandwidthMBs: 2000, WatchdogInterval: 500_000_000}); err != nil {
		t.Fatalf("compatible Reset failed: %v", err)
	}
	if m := measureCell(sys); m.Ops == 0 {
		t.Fatal("system unusable after rejected resets")
	}
}

// TestPoolReuse: the pool reuses compatible Systems, buckets incompatible
// ones separately, and leased runs reproduce fresh results.
func TestPoolReuse(t *testing.T) {
	p := NewPool()
	cfg := Config{Protocol: BASH, Nodes: 8, BandwidthMBs: 800, Seed: 11, WatchdogInterval: 500_000_000}
	want := measureCell(NewSystem(cfg))

	a := p.Get(cfg)
	if m := measureCell(a); m != want {
		t.Errorf("first lease: %+v != fresh %+v", m, want)
	}
	p.Put(a)
	b := p.Get(cfg)
	if a != b {
		t.Error("pool did not reuse the returned System")
	}
	if m := measureCell(b); m != want {
		t.Errorf("reused lease: %+v != fresh %+v", m, want)
	}
	p.Put(b)

	// A structurally different config must not receive the pooled System.
	c := p.Get(Config{Protocol: Snooping, Nodes: 8, WatchdogInterval: 500_000_000})
	if c == b {
		t.Error("pool handed a BASH system to a Snooping lease")
	}
	p.Put(c)

	gets, builds, puts := p.Stats()
	if gets != 3 || builds != 2 || puts != 3 {
		t.Errorf("stats = %d gets, %d builds, %d puts; want 3, 2, 3", gets, builds, puts)
	}
}
