package core_test

// Allocation-budget gates for the simulation hot path. The pooled lifecycle
// (PR 2) removed construction costs from sweep cells; these tests pin the
// remaining claim: a *warmed* System executes operations with ZERO
// steady-state heap allocations. Every record the hot path materializes —
// protocol packets, network messages and scheduling tasks, line and
// transaction records, directory entries, pended queues — recycles through
// the system's shared free lists, and every per-event closure has been
// hoisted into a bound-once function or a free-listed task.
//
// "Warmed" is load-bearing: free lists and map buckets grow toward the
// run's high-water marks (which the protocol hard-bounds: one owner per
// block, one outstanding demand per processor) before allocation stops.
// The tests burn rounds until two consecutive measurement rounds allocate
// nothing, then assert the steady state holds across further rounds — so a
// regression that re-introduces a per-op or per-message allocation fails
// loudly, while one-time capacity growth does not flake.

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/workload"
)

// allocCell builds a warmed locking cell: geometry small enough that the
// cache arrays' lazily materialized sets are all touched during burn-in,
// with the lock pool sized to the array so no capacity evictions occur
// (eviction/writeback recycling has its own lifecycle tests).
func allocCell(p core.Protocol, nodes int) (*core.System, func()) {
	cfg := core.Config{
		Protocol:     p,
		Nodes:        nodes,
		BandwidthMBs: 1600,
		Cache:        cache.Config{Sets: 32, Ways: 4},
		Seed:         11,
	}
	sys := core.NewSystem(cfg)
	locks := 16 * nodes
	if locks > 128 {
		locks = 128
	}
	lk := workload.NewLocking(locks, 0)
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
	sys.Start()
	target := uint64(0)
	cond := func() bool { return sys.TotalOps() >= target }
	round := uint64(200 * nodes)
	return sys, func() {
		target += round
		sys.Kernel.RunUntil(cond)
	}
}

// TestZeroSteadyStateAllocs: snooping, directory and BASH execute a warmed
// 4-, 16- and 64-node System with zero steady-state heap allocations per
// operation, and a drained run leaks no packets.
func TestZeroSteadyStateAllocs(t *testing.T) {
	for _, p := range []core.Protocol{core.Snooping, core.Directory, core.BASH} {
		for _, nodes := range []int{4, 16, 64} {
			if nodes > 16 && testing.Short() {
				continue
			}
			t.Run(fmt.Sprintf("%s/%dnodes", p, nodes), func(t *testing.T) {
				sys, run := allocCell(p, nodes)

				// Burn in until the free lists and buckets reach their
				// high-water marks: two consecutive all-zero rounds.
				zeros := 0
				for i := 0; i < 25 && zeros < 2; i++ {
					if testing.AllocsPerRun(1, run) == 0 {
						zeros++
					} else {
						zeros = 0
					}
				}
				if zeros < 2 {
					t.Fatalf("hot path never became allocation-free: free lists still growing after 25 burn-in rounds")
				}

				// The steady state must hold.
				if got := testing.AllocsPerRun(5, run); got != 0 {
					t.Errorf("warmed %s %d-node System allocates %.2f times per round, want 0", p, nodes, got)
				}

				// And a drained run releases every packet it allocated.
				sys.Quiesce()
				if live := sys.Recycler().Live(); live != 0 {
					t.Errorf("quiesced system leaks %d packets", live)
				}
			})
		}
	}
}

// TestZeroSteadyStateAllocsPooledReuse: the warmed capacity survives
// System.Reset — a pooled System re-seeded for a new run reaches the
// zero-allocation steady state again (its free lists were drained, not
// freed), and with recycling disabled the same reused System allocates on
// every round, which is what the escape hatch is for.
func TestZeroSteadyStateAllocsPooledReuse(t *testing.T) {
	cfg := core.Config{
		Protocol:     core.BASH,
		Nodes:        16,
		BandwidthMBs: 1600,
		Cache:        cache.Config{Sets: 32, Ways: 4},
		Seed:         11,
	}
	sys := core.NewSystem(cfg)
	runCell := func(seed uint64, noRecycle bool) float64 {
		c := cfg
		c.Seed = seed
		c.NoRecycle = noRecycle
		if err := sys.Reset(c); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		lk := workload.NewLocking(128, 0)
		for i, a := range lk.WarmBlocks() {
			sys.PreheatOwned(a, network.NodeID(i%16), uint64(i)+1)
		}
		sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
		sys.Start()
		target := uint64(0)
		cond := func() bool { return sys.TotalOps() >= target }
		run := func() {
			target += 2000
			sys.Kernel.RunUntil(cond)
		}
		zeros := 0
		for i := 0; i < 25 && zeros < 2; i++ {
			if testing.AllocsPerRun(1, run) == 0 {
				zeros++
			} else {
				zeros = 0
			}
		}
		return testing.AllocsPerRun(3, run)
	}

	// First run warms the free lists; subsequent re-seeded runs must reach
	// zero again (and faster, since capacity was retained).
	for i, seed := range []uint64{11, 23, 42} {
		if got := runCell(seed, false); got != 0 {
			t.Errorf("reused run %d (seed %d) allocates %.2f per round, want 0", i, seed, got)
		}
	}
	// The NoRecycle escape hatch really does allocate every round.
	if got := runCell(99, true); got == 0 {
		t.Error("NoRecycle run reported zero allocations; the escape hatch is not disabling the free lists")
	}
}
