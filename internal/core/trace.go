package core

import (
	"fmt"
	"strings"

	"repro/internal/coherence"
	"repro/internal/network"
	"repro/internal/sim"
)

// TraceEntry records one message delivery (Figure 4 walkthroughs and
// debugging).
type TraceEntry struct {
	At      sim.Time
	Ordered bool
	Seq     uint64
	From    network.NodeID
	To      network.NodeID
	Kind    coherence.Kind
	Addr    coherence.Addr
	Req     network.NodeID
	Size    int
}

// String renders one line of a message-sequence chart.
func (e TraceEntry) String() string {
	net := "resp "
	if e.Ordered {
		net = "order"
	}
	return fmt.Sprintf("t=%4d  %s  %-8s a=%d  %d -> %d (req P%d, %dB)",
		e.At, net, e.Kind, e.Addr, e.From, e.To, e.Req, e.Size)
}

// Trace collects deliveries when enabled on a System.
type Trace struct {
	Entries []TraceEntry
}

// EnableTrace starts recording every delivery.
func (s *System) EnableTrace() *Trace {
	s.trace = &Trace{}
	return s.trace
}

func (s *System) recordOrdered(to network.NodeID, m *network.Message) {
	if s.trace == nil {
		return
	}
	pkt := m.Payload.(*coherence.Packet)
	s.trace.Entries = append(s.trace.Entries, TraceEntry{
		At: s.Kernel.Now(), Ordered: true, Seq: m.Seq,
		From: m.From, To: to, Kind: pkt.Kind, Addr: pkt.Addr,
		Req: pkt.Requestor, Size: m.Size,
	})
}

func (s *System) recordUnordered(to network.NodeID, m *network.Message) {
	if s.trace == nil {
		return
	}
	pkt := m.Payload.(*coherence.Packet)
	s.trace.Entries = append(s.trace.Entries, TraceEntry{
		At: s.Kernel.Now(), From: m.From, To: to, Kind: pkt.Kind,
		Addr: pkt.Addr, Req: pkt.Requestor, Size: m.Size,
	})
}

// String renders the whole trace.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
