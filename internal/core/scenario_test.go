package core_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/workload"
)

// scenarioSystem builds a small checked system for directed interleavings.
func scenarioSystem(t *testing.T, p core.Protocol, nodes int, retryBuf int) *core.System {
	t.Helper()
	return core.NewSystem(core.Config{
		Protocol:         p,
		Nodes:            nodes,
		BandwidthMBs:     2000,
		EnableChecker:    true,
		RetryBuffer:      retryBuf,
		WatchdogInterval: 10_000_000,
	})
}

// access issues one blocking operation and returns a completion probe.
func access(sys *core.System, n network.NodeID, store bool, a coherence.Addr) *bool {
	done := new(bool)
	sys.Nodes[n].Cache.Access(coherence.Op{Store: store, Addr: a}, func() { *done = true })
	return done
}

func waitAll(t *testing.T, sys *core.System, probes ...*bool) {
	t.Helper()
	sys.Kernel.RunUntil(func() bool {
		for _, p := range probes {
			if !*p {
				return false
			}
		}
		return true
	})
	for _, p := range probes {
		if !*p {
			t.Fatal("operation did not complete")
		}
	}
}

// protocolsUnderTest covers the three paper protocols plus the hybrid
// ablations and the predictive extension.
var protocolsUnderTest = []core.Protocol{
	core.Snooping, core.Directory, core.BASH,
	core.BashAlwaysBroadcast, core.BashAlwaysUnicast, core.BashPredictive,
}

// TestUpgradeRace: two sharers upgrade the same block simultaneously. One
// must win at the ordering point; the loser must convert to a full miss and
// observe the winner's value (checked by the value checker).
func TestUpgradeRace(t *testing.T) {
	for _, p := range protocolsUnderTest {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := scenarioSystem(t, p, 4, 0)
			const a = coherence.Addr(6)
			sys.PreheatOwned(a, 3, 0xEE)
			// Give nodes 0 and 1 S copies.
			d0 := access(sys, 0, false, a)
			d1 := access(sys, 1, false, a)
			waitAll(t, sys, d0, d1)
			// Simultaneous upgrades.
			u0 := access(sys, 0, true, a)
			u1 := access(sys, 1, true, a)
			waitAll(t, sys, u0, u1)
			sys.Quiesce()
			// Exactly one M copy, holding the later writer's token.
			owners := 0
			for _, n := range sys.Nodes {
				if n.Cache.StateOf(a) == coherence.Modified {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("%d Modified copies after racing upgrades", owners)
			}
		})
	}
}

// TestWritebackRace: the owner evicts while another node fetches the same
// block; every interleaving must deliver current data (value-checked) and
// leave a consistent owner.
func TestWritebackRace(t *testing.T) {
	for _, p := range protocolsUnderTest {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			// A tiny cache forces node 2's eviction traffic.
			sys := core.NewSystem(core.Config{
				Protocol:         p,
				Nodes:            4,
				BandwidthMBs:     2000,
				EnableChecker:    true,
				WatchdogInterval: 10_000_000,
				Cache:            cacheTiny(),
			})
			// Node 2 owns several blocks mapping to the same set.
			blocks := []coherence.Addr{4, 12, 20, 28, 36} // set 0 with 4 sets
			for i, b := range blocks {
				sys.PreheatOwned(b, 2, uint64(0x100+i))
			}
			// Node 2 stores to a fresh same-set block, evicting an owned
			// one (PutM), while node 0 fetches each preheated block.
			d2 := access(sys, 2, true, 44)
			probes := []*bool{d2}
			for _, b := range blocks {
				probes = append(probes, access(sys, 0, false, b))
			}
			waitAll(t, sys, probes...)
			sys.Quiesce()
		})
	}
}

func cacheTiny() cache.Config { return cache.Config{Sets: 4, Ways: 2} }

// TestBashEscalation: with every request unicast and ownership bouncing, a
// chain of insufficient instances must escalate to broadcast by the third
// retry rather than looping.
func TestBashEscalation(t *testing.T) {
	sys := scenarioSystem(t, core.BashAlwaysUnicast, 8, 0)
	const a = coherence.Addr(5)
	sys.PreheatOwned(a, 7, 0xAB)
	// A convoy of stores to the same block from every node: ownership
	// bounces, so retry masks computed from stale owners keep missing.
	var probes []*bool
	for n := 0; n < 8; n++ {
		probes = append(probes, access(sys, network.NodeID(n), true, a))
	}
	waitAll(t, sys, probes...)
	sys.Quiesce()
	retries, _ := sys.BashRecoveryCounts()
	if retries == 0 {
		t.Fatal("expected retries in an all-unicast ownership convoy")
	}
}

// TestBashNackRecovery: a zero-size... the smallest buffer (1) with heavy
// same-block contention must produce nacks, and every nacked request must
// still complete via broadcast reissue.
func TestBashNackRecovery(t *testing.T) {
	sys := scenarioSystem(t, core.BashAlwaysUnicast, 10, 1)
	lk := workload.NewLocking(4, 0) // 4 locks, 10 nodes: constant collision
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, network.NodeID(i%10), uint64(i)+1)
	}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
	m := sys.Measure(200, 2000)
	if m.Ops < 2000 {
		t.Fatalf("only %d ops completed", m.Ops)
	}
	if m.Nacks == 0 {
		t.Fatal("expected nacks with a one-entry retry buffer")
	}
	st := sys.CacheStats()
	if st.Reissues == 0 {
		t.Fatal("nacks must trigger broadcast reissues")
	}
}

// TestSupersetStaleness: a silently dropped S copy leaves the node in the
// directory's sharer superset; subsequent invalidations to it must be
// harmless no-ops (Directory and BASH).
func TestSupersetStaleness(t *testing.T) {
	for _, p := range []core.Protocol{core.Directory, core.BashAlwaysUnicast} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := core.NewSystem(core.Config{
				Protocol:         p,
				Nodes:            4,
				BandwidthMBs:     2000,
				EnableChecker:    true,
				WatchdogInterval: 10_000_000,
				Cache:            cacheTiny(),
			})
			const a = coherence.Addr(9)
			sys.PreheatOwned(a, 3, 0x77)
			// Node 1 gets an S copy...
			waitAll(t, sys, access(sys, 1, false, a))
			// ...then silently drops it via conflict evictions (loads to
			// same-set blocks; S eviction is silent).
			for i := coherence.Addr(0); i < 8; i++ {
				waitAll(t, sys, access(sys, 1, false, 9+8*(i+1)))
			}
			if st := sys.Nodes[1].Cache.StateOf(a); st != coherence.Invalid {
				t.Fatalf("node 1 still holds %v; eviction pattern wrong", st)
			}
			// A GetM elsewhere invalidates the superset including node 1.
			waitAll(t, sys, access(sys, 2, true, a))
			sys.Quiesce()
			if got := sys.Nodes[2].Cache.StateOf(a); got != coherence.Modified {
				t.Fatalf("writer holds %v", got)
			}
		})
	}
}

// TestMigratoryChain: ownership migrates through every node in sequence;
// each writer must observe its predecessor's token exactly (the checker
// asserts it) and the final owner holds the last token.
func TestMigratoryChain(t *testing.T) {
	for _, p := range protocolsUnderTest {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := scenarioSystem(t, p, 8, 0)
			const a = coherence.Addr(3)
			sys.PreheatOwned(a, 0, 0x1)
			for round := 0; round < 3; round++ {
				for n := 0; n < 8; n++ {
					waitAll(t, sys, access(sys, network.NodeID(n), true, a))
				}
			}
			sys.Quiesce()
			if got := sys.Nodes[7].Cache.StateOf(a); got != coherence.Modified {
				t.Fatalf("final owner state %v", got)
			}
			want := sys.Checker.FinalValue(a)
			if got := sys.Nodes[7].Cache.ValueOf(a); got != want {
				t.Fatalf("final value %x, want %x", got, want)
			}
		})
	}
}

// TestReadSharingFanOut: one producer, many readers — the owner ends in O
// (Snooping/BASH) with every reader holding the producer's value.
func TestReadSharingFanOut(t *testing.T) {
	for _, p := range protocolsUnderTest {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := scenarioSystem(t, p, 8, 0)
			const a = coherence.Addr(2)
			sys.PreheatOwned(a, 1, 0x5)
			waitAll(t, sys, access(sys, 1, true, a)) // producer writes
			var probes []*bool
			for n := 0; n < 8; n++ {
				if n != 1 {
					probes = append(probes, access(sys, network.NodeID(n), false, a))
				}
			}
			waitAll(t, sys, probes...)
			sys.Quiesce()
			want := sys.Checker.FinalValue(a)
			for _, n := range sys.Nodes {
				st := n.Cache.StateOf(a)
				if st == coherence.Invalid {
					continue
				}
				if got := n.Cache.ValueOf(a); got != want {
					t.Fatalf("node %d holds %x, want %x", n.ID, got, want)
				}
			}
			if st := sys.Nodes[1].Cache.StateOf(a); st != coherence.Owned {
				t.Fatalf("producer state %v, want Owned", st)
			}
		})
	}
}

// TestPredictorImprovesRetryRate: on a migratory workload the predictive
// variant must need fewer memory retries per operation than plain unicast.
func TestPredictorImprovesRetryRate(t *testing.T) {
	run := func(pred bool) (retries, ops uint64) {
		sys := core.NewSystem(core.Config{
			Protocol:         core.BashAlwaysUnicast,
			Nodes:            8,
			BandwidthMBs:     2000,
			EnableChecker:    true,
			Predictor:        pred,
			WatchdogInterval: 10_000_000,
		})
		lk := workload.NewLocking(64, 0)
		for i, a := range lk.WarmBlocks() {
			sys.PreheatOwned(a, network.NodeID(i%8), uint64(i)+1)
		}
		sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
		m := sys.Measure(500, 3000)
		return m.Retries, m.Ops
	}
	r0, _ := run(false)
	r1, _ := run(true)
	// Random lock selection keeps the last-owner table partially stale, so
	// demand a solid but not heroic reduction.
	if float64(r1) >= 0.8*float64(r0) {
		t.Fatalf("predictor did not reduce retries by 20%%: %d -> %d", r0, r1)
	}
}

// TestBashWritebackWindowGetS drives the narrow II_A window: a cache whose
// writeback raced a conflicting GetM (entering II_A) observes a broadcast
// GetS for the same block before retiring its own PutM marker. The ordering
// is forced by issue order on the sequencer: GetM (seq 1), GetS (seq 2),
// PutM (seq 3).
func TestBashWritebackWindowGetS(t *testing.T) {
	sys := core.NewSystem(core.Config{
		Protocol:         core.BashAlwaysBroadcast,
		Nodes:            4,
		BandwidthMBs:     2000,
		EnableChecker:    true,
		WatchdogInterval: 10_000_000,
		Cache:            cacheTiny(), // 4 sets x 2 ways
	})
	const blockA = coherence.Addr(4)   // set 0
	const blockA2 = coherence.Addr(12) // set 0
	const blockB = coherence.Addr(20)  // set 0: storing it evicts blockA (LRU)
	sys.PreheatOwned(blockA, 3, 0x11)
	sys.PreheatOwned(blockA2, 3, 0x12)
	// Issue order fixes the total order: P0's GetM, P1's GetS, then node
	// 3's eviction PutM for blockA.
	d0 := access(sys, 0, true, blockA)
	d1 := access(sys, 1, false, blockA)
	d3 := access(sys, 3, true, blockB)
	waitAll(t, sys, d0, d1, d3)
	sys.Quiesce()
	// The war story: node 3 answered the GetM from MI_A (entering II_A),
	// ignored the GetS in II_A, and retired its stale PutM without data.
	fired, _ := sys.Nodes[3].Cache.Table().Coverage()
	if fired == 0 {
		t.Fatal("no transitions fired")
	}
	for _, u := range sys.Nodes[3].Cache.Table().Uncovered() {
		if u == "II_A/OtherGetS" {
			t.Fatal("II_A/OtherGetS did not fire; interleaving broken")
		}
	}
}

// TestUnicastHint: hinted operations never broadcast, even under an
// always-broadcast policy's opposite — here, with adaptive BASH at high
// bandwidth where the policy would broadcast everything.
func TestUnicastHint(t *testing.T) {
	sys := scenarioSystem(t, core.BASH, 4, 0)
	// High bandwidth: the adaptive policy stays at always-broadcast.
	var probes []*bool
	for i := 0; i < 50; i++ {
		done := new(bool)
		a := coherence.Addr(100 + i)
		sys.Nodes[0].Cache.Access(coherence.Op{Store: true, Addr: a, HintUnicast: true},
			func() { *done = true })
		probes = append(probes, done)
		waitAll(t, sys, done)
	}
	st := sys.Nodes[0].Cache.Stats()
	if st.BroadcastRequests != 0 {
		t.Fatalf("%d hinted requests broadcast", st.BroadcastRequests)
	}
	if st.UnicastRequests != 50 {
		t.Fatalf("unicasts = %d, want 50", st.UnicastRequests)
	}
}
