package core_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/workload"
)

// allProtocols lists every protocol variant the system can assemble.
var allProtocols = []core.Protocol{
	core.Snooping, core.Directory, core.BASH,
	core.BashAlwaysBroadcast, core.BashAlwaysUnicast, core.BashSwitch,
}

func newLockingSystem(t *testing.T, p core.Protocol, nodes int, seed uint64) *core.System {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Protocol:         p,
		Nodes:            nodes,
		BandwidthMBs:     1600,
		EnableChecker:    true,
		WatchdogInterval: 10_000_000,
		Seed:             seed,
	})
	locks := 64 * nodes
	for i := 0; i < locks; i++ {
		owner := network.NodeID(i % nodes)
		sys.PreheatOwned(coherence.Addr(i), owner, uint64(i)+1)
	}
	lk := workload.NewLocking(locks, 0)
	sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
	return sys
}

// TestLockingSmoke runs the locking microbenchmark on every protocol with
// the invariant checker enabled: every store must observe the latest write
// in the global order, and SWMR must hold throughout.
func TestLockingSmoke(t *testing.T) {
	for _, p := range allProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := newLockingSystem(t, p, 8, 42)
			m := sys.Measure(200, 1000)
			if m.Ops < 1000 {
				t.Fatalf("measured only %d ops", m.Ops)
			}
			if m.Throughput <= 0 {
				t.Fatalf("throughput %v", m.Throughput)
			}
			if m.AvgMissLatency < 100 {
				t.Errorf("implausible miss latency %.0f ns", m.AvgMissLatency)
			}
			if sys.Watchdog.Tripped() {
				t.Fatal("watchdog tripped")
			}
		})
	}
}

// TestUncontendedLatencies checks the paper's Section 4.2 uncontended
// numbers: 180 ns memory fetch for all protocols; 125 ns cache-to-cache for
// Snooping; 255 ns for Directory (one indirection).
func TestUncontendedLatencies(t *testing.T) {
	run := func(p core.Protocol, preOwner network.NodeID) float64 {
		sys := core.NewSystem(core.Config{
			Protocol:      p,
			Nodes:         4,
			BandwidthMBs:  100000, // effectively unconstrained
			EnableChecker: true,
		})
		addr := coherence.Addr(5) // home = node 1
		if preOwner >= 0 {
			sys.PreheatOwned(addr, preOwner, 99)
		}
		done := false
		sys.Nodes[0].Cache.Access(coherence.Op{Store: true, Addr: addr}, func() { done = true })
		sys.Kernel.RunUntil(func() bool { return done })
		st := sys.Nodes[0].Cache.Stats()
		return st.AvgMissLatency()
	}

	cases := []struct {
		name  string
		p     core.Protocol
		owner network.NodeID
		want  float64
	}{
		{"snooping/memory", core.Snooping, -1, 180},
		{"snooping/cache-to-cache", core.Snooping, 2, 125},
		{"directory/memory", core.Directory, -1, 180},
		{"directory/cache-to-cache", core.Directory, 2, 255},
		{"bash-bcast/memory", core.BashAlwaysBroadcast, -1, 180},
		{"bash-bcast/cache-to-cache", core.BashAlwaysBroadcast, 2, 125},
		{"bash-ucast/memory", core.BashAlwaysUnicast, -1, 180},
		{"bash-ucast/cache-to-cache", core.BashAlwaysUnicast, 2, 255},
	}
	for _, c := range cases {
		got := run(c.p, c.owner)
		// Allow a few ns of serialization rounding at very high bandwidth.
		if got < c.want-2 || got > c.want+5 {
			t.Errorf("%s: latency %.1f ns, want ~%.0f", c.name, got, c.want)
		}
	}
}

// TestDeterminism: identical configurations replay identically.
func TestDeterminism(t *testing.T) {
	for _, p := range []core.Protocol{core.Snooping, core.Directory, core.BASH} {
		a := newLockingSystem(t, p, 4, 7)
		b := newLockingSystem(t, p, 4, 7)
		ma := a.Measure(100, 500)
		mb := b.Measure(100, 500)
		if ma.Throughput != mb.Throughput || ma.Elapsed != mb.Elapsed {
			t.Errorf("%v: non-deterministic: %+v vs %+v", p, ma, mb)
		}
	}
}

// TestStress runs a longer, more contended configuration per protocol with
// low bandwidth to exercise queueing, retries and races under the checker.
func TestStress(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress run")
	}
	for _, p := range allProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := core.NewSystem(core.Config{
				Protocol:         p,
				Nodes:            16,
				BandwidthMBs:     400, // scarce: heavy queueing
				EnableChecker:    true,
				WatchdogInterval: 50_000_000,
				Seed:             1234,
			})
			locks := 96 // few locks: heavy same-block racing
			for i := 0; i < locks; i++ {
				sys.PreheatOwned(coherence.Addr(i), network.NodeID(i%16), uint64(i)+1)
			}
			lk := workload.NewLocking(locks, 0)
			sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
			m := sys.Measure(500, 4000)
			if m.Ops < 4000 {
				t.Fatalf("measured only %d ops", m.Ops)
			}
			var _ sim.Time
		})
	}
}
