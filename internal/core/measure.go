package core

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/sim"
)

// Metrics is the result of one measured run.
type Metrics struct {
	Protocol Protocol
	// Ops is the number of memory operations completed in the measurement
	// window; Elapsed is the window's simulated length.
	Ops     uint64
	Elapsed sim.Time
	// Throughput is ops per nanosecond — the paper's "performance" for the
	// locking microbenchmark (lock acquires per ns) and, with think time
	// standing in for computation, for the macro workloads.
	Throughput float64
	// AvgMissLatency is the mean demand miss latency in ns (Figure 9).
	AvgMissLatency float64
	// Utilization is the mean endpoint inbound-link utilization over the
	// window (Figure 6).
	Utilization float64
	// BroadcastFraction is the fraction of demand requests broadcast.
	BroadcastFraction float64
	// Retries and Nacks count BASH memory-side recovery actions.
	Retries, Nacks uint64
	// BytesPerOp is delivered interconnect bytes per completed operation in
	// the measurement window (the protocols' bandwidth cost).
	BytesPerOp float64
	// ControlBytesPerOp is the 8-byte-message share of BytesPerOp.
	ControlBytesPerOp float64
}

// String renders a compact single-line summary.
func (m Metrics) String() string {
	return fmt.Sprintf("%s: %.6f ops/ns, miss %.0f ns, util %.1f%%, bcast %.0f%%",
		m.Protocol, m.Throughput, m.AvgMissLatency, 100*m.Utilization, 100*m.BroadcastFraction)
}

// snapshot captures the counters that Measure differentiates.
type snapshot struct {
	ops        uint64
	at         sim.Time
	missLatSum sim.Time
	missCount  uint64
	busyIn     float64
	bcast      uint64
	ucast      uint64
	bytes      uint64
	ctrlBytes  uint64
}

func (s *System) snap() snapshot {
	cs := s.CacheStats()
	var busy float64
	for _, n := range s.Nodes {
		busy += s.Net.InChannel(n.ID).BusyNs()
	}
	return snapshot{
		ops:        s.TotalOps(),
		at:         s.Kernel.Now(),
		missLatSum: cs.MissLatencySum,
		missCount:  cs.MissLatencyCount,
		busyIn:     busy,
		bcast:      cs.BroadcastRequests,
		ucast:      cs.UnicastRequests,
		bytes:      s.traffic.TotalBytes(),
		ctrlBytes:  s.traffic.ControlBytes(),
	}
}

// Measure runs the attached workload for warmupOps operations (system-wide),
// then measures for measureOps more, returning window metrics. The warm-up
// brings the caches and the adaptive mechanism to steady state, as the
// paper's methodology does.
func (s *System) Measure(warmupOps, measureOps uint64) Metrics {
	s.Start()
	s.Kernel.RunUntil(func() bool { return s.TotalOps() >= warmupOps })
	before := s.snap()
	s.Kernel.RunUntil(func() bool { return s.TotalOps() >= warmupOps+measureOps })
	after := s.snap()
	s.StopAll()
	if s.Watchdog != nil {
		s.Watchdog.Stop()
	}

	elapsed := after.at - before.at
	m := Metrics{Protocol: s.cfg.Protocol, Ops: after.ops - before.ops, Elapsed: elapsed}
	if elapsed > 0 {
		m.Throughput = float64(m.Ops) / float64(elapsed)
		m.Utilization = (after.busyIn - before.busyIn) / (float64(elapsed) * float64(s.Net.Nodes()))
		if m.Utilization > 1 {
			m.Utilization = 1
		}
	}
	if dc := after.missCount - before.missCount; dc > 0 {
		m.AvgMissLatency = float64(after.missLatSum-before.missLatSum) / float64(dc)
	}
	if dr := (after.bcast - before.bcast) + (after.ucast - before.ucast); dr > 0 {
		m.BroadcastFraction = float64(after.bcast-before.bcast) / float64(dr)
	}
	if m.Ops > 0 {
		m.BytesPerOp = float64(after.bytes-before.bytes) / float64(m.Ops)
		m.ControlBytesPerOp = float64(after.ctrlBytes-before.ctrlBytes) / float64(m.Ops)
	}
	m.Retries, m.Nacks = s.BashRecoveryCounts()
	return m
}

// BashRecoveryCounts totals BASH memory-side retries and nacks (zero for the
// base protocols).
func (s *System) BashRecoveryCounts() (retries, nacks uint64) {
	for _, n := range s.Nodes {
		if bm, ok := n.Mem.(*coherence.BashMem); ok {
			retries += bm.Stats().Retries
			nacks += bm.Stats().Nacks
		}
	}
	return retries, nacks
}
