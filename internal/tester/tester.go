// Package tester is the stand-alone random protocol tester of Section 3.4:
// it drives a protocol through "a myriad of corner cases" using false
// sharing (many processors hammering a handful of blocks), random
// action/check (store/load) pairs, and widely variable message latencies,
// while the coherence checker validates SWMR and data values against the
// global total order. It reports transition coverage, mirroring the paper's
// "full coverage for all state transitions with no detected errors".
package tester

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cellstore"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/sim"
)

// Config parameterizes one tester run.
type Config struct {
	Protocol core.Protocol
	Nodes    int
	// Blocks is the number of falsely shared blocks (small = more racing).
	Blocks int
	// Ops is the total number of operations across all processors.
	Ops uint64
	// MaxThink bounds the random think time between operations.
	MaxThink sim.Time
	// StoreFraction is the probability an operation is a store.
	StoreFraction float64
	// JitterNs randomizes message latencies (0 disables).
	JitterNs int
	// BandwidthMBs throttles links (low values force deep queues).
	BandwidthMBs float64
	// RetryBuffer bounds BASH retries (small values exercise the nack path).
	RetryBuffer int
	// TinyCache forces a small cache so replacements and writebacks race
	// with demand traffic.
	TinyCache bool
	Seed      uint64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 8
	}
	if c.Blocks == 0 {
		c.Blocks = 12
	}
	if c.Ops == 0 {
		c.Ops = 20000
	}
	if c.MaxThink == 0 {
		c.MaxThink = 200
	}
	if c.StoreFraction == 0 {
		c.StoreFraction = 0.5
	}
	if c.BandwidthMBs == 0 {
		c.BandwidthMBs = 800
	}
	return c
}

// Report is the outcome of a tester run.
type Report struct {
	Config       Config
	Ops          uint64
	WriteCommits uint64
	ReadCommits  uint64
	Violations   []string
	// CacheCoverage and MemCoverage are fired/declared transition counts.
	CacheFired, CacheDeclared int
	MemFired, MemDeclared     int
	UncoveredCache            []string
	UncoveredMem              []string
	Retries, Nacks            uint64
	FinalStateErrors          []string
}

// OK reports whether the run found no violations.
func (r Report) OK() bool {
	return len(r.Violations) == 0 && len(r.FinalStateErrors) == 0
}

// Summary renders a human-readable digest.
func (r Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d ops (%d writes, %d reads checked), %d retries, %d nacks\n",
		r.Config.Protocol, r.Ops, r.WriteCommits, r.ReadCommits, r.Retries, r.Nacks)
	fmt.Fprintf(&b, "  cache transitions: %d/%d fired; memory: %d/%d fired\n",
		r.CacheFired, r.CacheDeclared, r.MemFired, r.MemDeclared)
	if !r.OK() {
		fmt.Fprintf(&b, "  VIOLATIONS: %d value/SWMR, %d final-state\n",
			len(r.Violations), len(r.FinalStateErrors))
	} else {
		fmt.Fprintf(&b, "  no violations detected\n")
	}
	return b.String()
}

// randomWL is the action/check workload: random load/store pairs over a
// small falsely-shared block set.
type randomWL struct {
	blocks   int
	maxThink sim.Time
	storeP   float64
}

func (w randomWL) Next(rng *sim.RNG, self network.NodeID) (sim.Time, coherence.Op) {
	think := sim.Time(rng.Intn(int(w.maxThink) + 1))
	op := coherence.Op{
		Store: rng.Float64() < w.storeP,
		Addr:  coherence.Addr(rng.Intn(w.blocks)),
	}
	return think, op
}

// sysPool recycles Systems across trials: worker goroutines lease a
// structurally compatible System per (protocol, seed) trial instead of
// constructing one. Reset re-seeds every layer, so a pooled trial's report
// is identical to a fresh-construction one.
var sysPool = core.NewPool()

// systemConfig maps a (defaulted) tester config to its machine config.
func systemConfig(cfg Config) core.Config {
	sysCfg := core.Config{
		Protocol:         cfg.Protocol,
		Nodes:            cfg.Nodes,
		BandwidthMBs:     cfg.BandwidthMBs,
		EnableChecker:    true,
		WatchdogInterval: 100_000_000,
		Seed:             cfg.Seed,
		JitterNs:         cfg.JitterNs,
		RetryBuffer:      cfg.RetryBuffer,
	}
	if cfg.TinyCache {
		// 4 sets x 2 ways: with >8 live blocks, replacements are constant.
		sysCfg.Cache.Sets = 4
		sysCfg.Cache.Ways = 2
	}
	return sysCfg
}

// Run executes one randomized test and returns the report. The System is
// leased from the trial pool; runOn carries the whole trial, so tests can
// drive it with a fresh-constructed System to pin pooled == fresh.
func Run(cfg Config) Report {
	cfg = cfg.withDefaults()
	sys := sysPool.Get(systemConfig(cfg))
	defer sysPool.Put(sys)
	return runOn(sys, cfg)
}

// runOn executes one randomized trial on the given (fresh or leased) System
// built for systemConfig(cfg). cfg must already be defaulted.
func runOn(sys *core.System, cfg Config) Report {
	sys.Checker.Panic = false

	wl := randomWL{blocks: cfg.Blocks, maxThink: cfg.MaxThink, storeP: cfg.StoreFraction}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return wl })
	sys.Start()
	sys.Kernel.RunUntil(func() bool { return sys.TotalOps() >= cfg.Ops })
	sys.Quiesce()

	rep := Report{Config: cfg, Ops: sys.TotalOps()}
	rep.Violations = sys.Checker.Violations
	rep.WriteCommits = sys.Checker.WriteCommits
	rep.ReadCommits = sys.Checker.ReadCommits
	rep.Retries, rep.Nacks = sys.BashRecoveryCounts()
	rep.FinalStateErrors = finalStateCheck(sys, cfg.Blocks)

	cacheTbl := sys.Nodes[0].Cache.Table()
	for _, n := range sys.Nodes[1:] {
		cacheTbl.Merge(n.Cache.Table())
	}
	memTbl := sys.Nodes[0].Mem.Table()
	for _, n := range sys.Nodes[1:] {
		memTbl.Merge(n.Mem.Table())
	}
	rep.CacheFired, rep.CacheDeclared = cacheTbl.Coverage()
	rep.MemFired, rep.MemDeclared = memTbl.Coverage()
	rep.UncoveredCache = cacheTbl.Uncovered()
	rep.UncoveredMem = memTbl.Uncovered()
	return rep
}

// RunConfigs executes one randomized trial per config across the runner's
// worker pool, folding the reports back in config order: the output is
// identical no matter how many workers execute it. Each trial is one shard
// — an independent single-threaded simulation. A trial that panics is
// reported as a *runner.PanicError naming its protocol and seed.
func RunConfigs(cfgs []Config, opt runner.Options) ([]Report, error) {
	applyDefaultLabel(cfgs, &opt)
	return runner.Map(len(cfgs), opt, func(i int) (Report, error) {
		return Run(cfgs[i]), nil
	})
}

// applyDefaultLabel fills opt.Label with the standard trial label when the
// caller supplied none.
func applyDefaultLabel(cfgs []Config, opt *runner.Options) {
	if opt.Label == nil {
		opt.Label = func(i int) string {
			return fmt.Sprintf("trial %s seed=%d", cfgs[i].Protocol, cfgs[i].Seed)
		}
	}
}

// reportFormat versions the persistent report cache; bump it when the
// tester's semantics or the Report layout change, orphaning stale entries.
const reportFormat = 2

// cacheKey renders a (defaulted) config as the persistent store's content
// address; every field that influences the trial appears, plus the binary
// fingerprint, so a rebuilt tester never replays another build's verdicts —
// cached PASS reports must not mask a freshly introduced protocol bug.
func (c Config) cacheKey() string {
	return fmt.Sprintf("bashtest-trial-v%d|bin=%s|proto=%d|nodes=%d|blocks=%d|ops=%d|think=%d|storep=%g|jitter=%d|bw=%g|retry=%d|tiny=%t|seed=%d",
		reportFormat, cellstore.Fingerprint(), int(c.Protocol), c.Nodes, c.Blocks, c.Ops, c.MaxThink,
		c.StoreFraction, c.JitterNs, c.BandwidthMBs, c.RetryBuffer, c.TinyCache, c.Seed)
}

// RunConfigsCached is RunConfigs backed by the persistent cell store under
// cacheDir: a trial whose exact config was already run (by this or any
// earlier process) replays its stored Report instead of simulating, so an
// interrupted multi-seed soak resumes where it stopped. An empty cacheDir
// disables persistence. Every trial is a pure deterministic function of its
// Config, so replayed and fresh reports are identical.
func RunConfigsCached(cfgs []Config, opt runner.Options, cacheDir string) ([]Report, error) {
	st := cellstore.For(cacheDir)
	if st == nil {
		return RunConfigs(cfgs, opt)
	}
	applyDefaultLabel(cfgs, &opt)
	return runner.Map(len(cfgs), opt, func(i int) (Report, error) {
		key := cfgs[i].withDefaults().cacheKey()
		var rep Report
		if st.Get(key, &rep) {
			return rep, nil
		}
		rep = Run(cfgs[i])
		st.Put(key, rep) // best-effort; a failed write re-runs later
		return rep, nil
	})
}

// RunMany shards one base config across seeds — trial i runs cfg with
// Seed=seeds[i] — and returns the reports in seed order. Use
// runner.Seeds(base, n) to derive a well-spread deterministic seed set.
func RunMany(cfg Config, seeds []uint64, opt runner.Options) ([]Report, error) {
	cfgs := make([]Config, len(seeds))
	for i, s := range seeds {
		cfgs[i] = cfg
		cfgs[i].Seed = s
	}
	return RunConfigs(cfgs, opt)
}

// finalStateCheck validates the quiesced system: per block, every valid copy
// carries the last committed value, exactly one agent owns the block, and
// memory's copy is current whenever memory is the owner.
func finalStateCheck(sys *core.System, blocks int) []string {
	var errs []string
	for b := 0; b < blocks; b++ {
		addr := coherence.Addr(b)
		want := sys.Checker.FinalValue(addr)
		owners := 0
		for _, n := range sys.Nodes {
			st := n.Cache.StateOf(addr)
			if !st.IsStable() {
				errs = append(errs, fmt.Sprintf("block %d: node %d quiesced in %s", b, n.ID, st))
				continue
			}
			if st.IsOwnerState() {
				owners++
			}
			if st.HasValidData() {
				if got := n.Cache.ValueOf(addr); got != want {
					errs = append(errs, fmt.Sprintf("block %d: node %d holds %x, want %x", b, n.ID, got, want))
				}
			}
		}
		home := sys.Nodes[sys.HomeOf(addr)]
		val, memOwner := home.Mem.HomeValue(addr)
		if memOwner && owners > 0 {
			errs = append(errs, fmt.Sprintf("block %d: memory and %d caches both own", b, owners))
		}
		if !memOwner && owners != 1 {
			errs = append(errs, fmt.Sprintf("block %d: cache-owned with %d cache owners", b, owners))
		}
		if memOwner && owners == 0 && val != want {
			errs = append(errs, fmt.Sprintf("block %d: memory holds %x, want %x", b, val, want))
		}
	}
	sort.Strings(errs)
	return errs
}
