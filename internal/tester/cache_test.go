package tester

import (
	"reflect"
	"testing"

	"repro/internal/cellstore"
	"repro/internal/core"
	"repro/internal/runner"
)

// TestPooledRunMatchesFresh: tester trials lease Systems from a pool; a
// trial that reuses the System a previous trial ran on must report exactly
// what a fresh-construction trial reports, including across configs that
// share a structural shape but differ in seed, bandwidth and jitter. The
// baseline bypasses the pool entirely (runOn over core.NewSystem), so a
// Reset bug that corrupts state the same way on every reuse cannot hide.
func TestPooledRunMatchesFresh(t *testing.T) {
	cfgs := []Config{
		{Protocol: core.BASH, Nodes: 4, Blocks: 8, Ops: 3000, Seed: 13, JitterNs: 50},
		{Protocol: core.BASH, Nodes: 4, Blocks: 8, Ops: 3000, Seed: 99, BandwidthMBs: 1500},
		{Protocol: core.Directory, Nodes: 4, Blocks: 8, Ops: 3000, Seed: 13},
		{Protocol: core.BASH, Nodes: 4, Blocks: 20, Ops: 3000, Seed: 13, TinyCache: true},
	}
	fresh := make([]Report, len(cfgs))
	for i, c := range cfgs {
		c = c.withDefaults()
		fresh[i] = runOn(core.NewSystem(systemConfig(c)), c)
	}
	// Two pooled passes: the first may build, the second definitely reuses.
	for pass := 0; pass < 2; pass++ {
		for i, c := range cfgs {
			if got := Run(c); !reflect.DeepEqual(got, fresh[i]) {
				t.Errorf("pass %d config %d: pooled report differs from fresh:\n fresh:  %+v\n pooled: %+v",
					pass, i, fresh[i], got)
			}
		}
	}
}

// TestRunConfigsCached: a second invocation against a warm cache replays
// every report from disk (all hits, no new writes) and returns identical
// reports; an empty cacheDir falls back to plain RunConfigs.
func TestRunConfigsCached(t *testing.T) {
	dir := t.TempDir()
	cfgs := []Config{
		{Protocol: core.BASH, Nodes: 4, Blocks: 8, Ops: 2000, Seed: 7},
		{Protocol: core.Snooping, Nodes: 4, Blocks: 8, Ops: 2000, Seed: 7},
	}
	cold, err := RunConfigsCached(cfgs, runner.Options{Workers: 1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	st := cellstore.For(dir)
	_, _, writesAfterCold := st.Counters()
	if writesAfterCold != uint64(len(cfgs)) {
		t.Fatalf("cold run wrote %d entries, want %d", writesAfterCold, len(cfgs))
	}

	warm, err := RunConfigsCached(cfgs, runner.Options{Workers: 1}, dir)
	if err != nil {
		t.Fatal(err)
	}
	hits, _, writesAfterWarm := st.Counters()
	if hits != uint64(len(cfgs)) || writesAfterWarm != writesAfterCold {
		t.Errorf("warm run: %d hits (want %d), %d writes (want %d)",
			hits, len(cfgs), writesAfterWarm, writesAfterCold)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("replayed reports differ from simulated reports")
	}

	plain, err := RunConfigsCached(cfgs, runner.Options{Workers: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, plain) {
		t.Error("uncached reports differ from cached-run reports")
	}
}
