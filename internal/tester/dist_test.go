package tester

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// distCfgs is a small trial grid exercising two protocols and two seeds.
func distCfgs() []Config {
	var cfgs []Config
	for _, p := range []core.Protocol{core.Snooping, core.BASH} {
		for s := uint64(1); s <= 2; s++ {
			cfgs = append(cfgs, Config{Protocol: p, Ops: 3000, Seed: s})
		}
	}
	return cfgs
}

// TestRunConfigsOnMatchesInProcess: trials routed through the backend seam
// report identically to the direct path, and a second run is served
// entirely from the store.
func TestRunConfigsOnMatchesInProcess(t *testing.T) {
	cfgs := distCfgs()
	direct, err := RunConfigs(cfgs, runner.Options{})
	if err != nil {
		t.Fatalf("RunConfigs: %v", err)
	}

	dir := t.TempDir()
	RegisterTrialExecutor(dir)
	backed, err := RunConfigsOn(runner.LocalBackend{}, cfgs, runner.Options{}, dir)
	if err != nil {
		t.Fatalf("RunConfigsOn: %v", err)
	}
	if !reflect.DeepEqual(direct, backed) {
		t.Errorf("backend reports differ from in-process reports:\n got %+v\nwant %+v", backed, direct)
	}

	// Everything is in the store now: a backend that refuses to run jobs
	// still serves the full report set.
	refused, err := RunConfigsOn(failingBackend{t}, cfgs, runner.Options{}, dir)
	if err != nil {
		t.Fatalf("store-served RunConfigsOn: %v", err)
	}
	if !reflect.DeepEqual(direct, refused) {
		t.Error("store-served reports differ from in-process reports")
	}
}

// TestRunConfigsOnNilBackend falls back to the in-process cached path.
func TestRunConfigsOnNilBackend(t *testing.T) {
	cfgs := distCfgs()[:1]
	dir := t.TempDir()
	reps, err := RunConfigsOn(nil, cfgs, runner.Options{}, dir)
	if err != nil {
		t.Fatalf("RunConfigsOn(nil): %v", err)
	}
	direct, _ := RunConfigs(cfgs, runner.Options{})
	if !reflect.DeepEqual(reps, direct) {
		t.Error("nil-backend reports differ from in-process reports")
	}
}

// failingBackend fails the test if any job reaches it.
type failingBackend struct{ t *testing.T }

func (f failingBackend) Run(jobs []runner.Job, opt runner.Options) ([][]byte, error) {
	f.t.Errorf("backend dispatched %d jobs, want 0 (store should have served them)", len(jobs))
	return make([][]byte, len(jobs)), nil
}
