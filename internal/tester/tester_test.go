package tester

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

func protocols() []core.Protocol {
	return []core.Protocol{
		core.Snooping, core.Directory, core.BASH,
		core.BashAlwaysBroadcast, core.BashAlwaysUnicast,
	}
}

// TestRandomBasic: moderate run per protocol, jittered latencies.
func TestRandomBasic(t *testing.T) {
	for i, p := range protocols() {
		p, i := p, i
		t.Run(p.String(), func(t *testing.T) {
			rep := Run(Config{Protocol: p, Ops: 15000, JitterNs: 120, Seed: uint64(100 + i)})
			if !rep.OK() {
				t.Fatalf("violations:\n%v\n%v", rep.Violations, rep.FinalStateErrors)
			}
			if rep.WriteCommits == 0 || rep.ReadCommits == 0 {
				t.Fatalf("checker saw no commits: %+v", rep)
			}
		})
	}
}

// TestRandomFalseSharingTiny: tiny caches force replacement/writeback races
// against demand traffic on very few blocks.
func TestRandomFalseSharingTiny(t *testing.T) {
	for i, p := range protocols() {
		p, i := p, i
		t.Run(p.String(), func(t *testing.T) {
			rep := Run(Config{
				Protocol: p, Nodes: 6, Blocks: 10, Ops: 12000,
				MaxThink: 60, JitterNs: 200, TinyCache: true,
				BandwidthMBs: 500, Seed: uint64(7_000 + i),
			})
			if !rep.OK() {
				t.Fatalf("violations:\n%v\n%v", rep.Violations, rep.FinalStateErrors)
			}
		})
	}
}

// TestBashNackPath: a one-entry retry buffer with all-unicast traffic forces
// nacks and broadcast reissues (the paper's deadlock-avoidance path).
func TestBashNackPath(t *testing.T) {
	rep := Run(Config{
		Protocol: core.BashAlwaysUnicast, Nodes: 10, Blocks: 6,
		Ops: 15000, MaxThink: 40, RetryBuffer: 1, JitterNs: 150,
		BandwidthMBs: 600, Seed: 99,
	})
	if !rep.OK() {
		t.Fatalf("violations:\n%v\n%v", rep.Violations, rep.FinalStateErrors)
	}
	if rep.Retries == 0 {
		t.Error("expected memory-side retries")
	}
	if rep.Nacks == 0 {
		t.Error("expected nacks with a one-entry retry buffer")
	}
}

// TestManySeeds shakes each protocol across seeds (short mode: fewer),
// sharded one trial per seed through the orchestration layer.
func TestManySeeds(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 3
	}
	for _, p := range protocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfgs := make([]Config, seeds)
			for s := range cfgs {
				cfgs[s] = Config{
					Protocol: p, Ops: 6000, Blocks: 8, Nodes: 7,
					JitterNs: 80 + 10*s, Seed: uint64(s)*77 + 5,
					RetryBuffer: 2 + s%3,
				}
			}
			reps, err := RunConfigs(cfgs, runner.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for s, rep := range reps {
				if !rep.OK() {
					t.Fatalf("seed %d violations:\n%v\n%v", s, rep.Violations, rep.FinalStateErrors)
				}
			}
		})
	}
}

// TestRunManyDeterminism: the same seed set run serially and with a
// parallel worker pool yields identical reports in identical order.
func TestRunManyDeterminism(t *testing.T) {
	cfg := Config{Protocol: core.BASH, Ops: 5000, Blocks: 8, Nodes: 6, JitterNs: 90}
	seeds := runner.Seeds(42, 4)
	serial, err := RunMany(cfg, seeds, runner.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunMany(cfg, seeds, runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Config.Seed != seeds[i] {
			t.Fatalf("report %d out of seed order: seed %d, want %d", i, serial[i].Config.Seed, seeds[i])
		}
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("report %d differs between serial and parallel:\n%s\n%s",
				i, serial[i].Summary(), parallel[i].Summary())
		}
		if !serial[i].OK() {
			t.Fatalf("seed %d violations:\n%v", seeds[i], serial[i].Violations)
		}
	}
}
