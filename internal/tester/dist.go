package tester

// Distributed trial execution: the tester's bridge to runner.Backend
// implementations, mirroring the experiment harness's cell bridge. A trial
// travels as a gob-encoded Config (already all-exported), keyed by the same
// content address the persistent report cache uses, and returns a
// gob-encoded Report. Trials are pure functions of their Config, so a
// worker's report equals the in-process one field for field.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cellstore"
	"repro/internal/runner"
)

// TrialKind is the job kind of one random-tester trial (see runner.Job).
const TrialKind = "bashsim.trial"

// RegisterTrialExecutor makes this process able to execute TrialKind jobs:
// worker processes (and the in-process runner.LocalBackend) call it at
// startup, as does a co-executing coordinator (its loopback worker leases
// through the same registry). The executor serves trials already in the
// store under cacheDir without simulating and publishes fresh reports into
// it; an empty cacheDir always simulates.
func RegisterTrialExecutor(cacheDir string) {
	runner.RegisterExecutor(TrialKind, func(spec []byte) ([]byte, error) {
		var cfg Config
		if err := gob.NewDecoder(bytes.NewReader(spec)).Decode(&cfg); err != nil {
			return nil, fmt.Errorf("trial spec: %w", err)
		}
		rep, served := Report{}, false
		st := cellstore.For(cacheDir)
		key := cfg.withDefaults().cacheKey()
		if st != nil && st.Get(key, &rep) {
			served = true
		}
		if !served {
			rep = Run(cfg)
			if st != nil {
				st.Put(key, rep) // best-effort; a failed write re-runs later
			}
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rep); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// RunConfigsOn is RunConfigsCached executed through an arbitrary backend: a
// nil backend selects the in-process path unchanged; otherwise every trial
// not already in the local store under cacheDir is dispatched as a TrialKind
// job and the reports fold back in config order, byte-identical to the
// in-process path. Completed reports are written through to the local store,
// so an interrupted soak resumes wherever it stopped.
func RunConfigsOn(backend runner.Backend, cfgs []Config, opt runner.Options, cacheDir string) ([]Report, error) {
	if backend == nil {
		return RunConfigsCached(cfgs, opt, cacheDir)
	}
	applyDefaultLabel(cfgs, &opt)

	reps := make([]Report, len(cfgs))
	st := cellstore.For(cacheDir)
	var miss []int
	for i, cfg := range cfgs {
		if st != nil && st.Get(cfg.withDefaults().cacheKey(), &reps[i]) {
			continue
		}
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return reps, nil
	}
	jobs := make([]runner.Job, len(miss))
	for k, i := range miss {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(cfgs[i]); err != nil {
			return reps, fmt.Errorf("tester: encode %s: %w", opt.Label(i), err)
		}
		jobs[k] = runner.Job{
			Kind:  TrialKind,
			Key:   cfgs[i].withDefaults().cacheKey(),
			Label: opt.Label(i),
			Spec:  buf.Bytes(),
		}
	}
	jopt := opt
	jopt.Label = func(k int) string { return jobs[k].Label }
	outs, err := backend.Run(jobs, jopt)
	for k, i := range miss {
		if outs[k] == nil {
			continue // failed or canceled before completion; err reports it
		}
		if derr := gob.NewDecoder(bytes.NewReader(outs[k])).Decode(&reps[i]); derr != nil {
			if err == nil {
				err = fmt.Errorf("tester: decode report of %s: %w", jobs[k].Label, derr)
			}
			continue
		}
		if st != nil {
			st.Put(cfgs[i].withDefaults().cacheKey(), reps[i])
		}
	}
	return reps, err
}
