package tester

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// coverageBattery is a set of tester configurations chosen to reach every
// corner of a protocol: mixed adaptive traffic, all-unicast traffic (retry
// paths), tiny caches (replacement and writeback races), tiny retry buffers
// (nack paths), and heavy jitter (reordering windows).
func coverageBattery(p core.Protocol) []Config {
	battery := []Config{
		{Protocol: p, Ops: 40000, Blocks: 12, Nodes: 8, JitterNs: 120, Seed: 1},
		{Protocol: p, Ops: 40000, Blocks: 8, Nodes: 8, TinyCache: true, JitterNs: 200, Seed: 2,
			MaxThink: 60, BandwidthMBs: 500},
		{Protocol: p, Ops: 40000, Blocks: 6, Nodes: 10, RetryBuffer: 1, JitterNs: 150, Seed: 3,
			MaxThink: 40, BandwidthMBs: 600},
		{Protocol: p, Ops: 30000, Blocks: 10, Nodes: 6, TinyCache: true, RetryBuffer: 1,
			JitterNs: 300, Seed: 4, MaxThink: 20, StoreFraction: 0.7, BandwidthMBs: 400},
		{Protocol: p, Ops: 30000, Blocks: 16, Nodes: 12, JitterNs: 80, Seed: 5,
			StoreFraction: 0.25, MaxThink: sim.Time(300)},
		// Read-heavy with heavy jitter: data-vs-marker reordering windows
		// (Directory) and sharer-set churn.
		{Protocol: p, Ops: 30000, Blocks: 8, Nodes: 8, JitterNs: 400, Seed: 6,
			StoreFraction: 0.3, MaxThink: 50, BandwidthMBs: 700},
		// Ultra-contended writeback races: very few blocks, tiny caches,
		// store-heavy, maximal jitter — stale PutMs land on MemOwner/MemWB.
		{Protocol: p, Ops: 50000, Blocks: 3, Nodes: 6, TinyCache: true, JitterNs: 400,
			Seed: 7, MaxThink: 10, StoreFraction: 0.9, BandwidthMBs: 300},
		{Protocol: p, Ops: 50000, Blocks: 2, Nodes: 8, TinyCache: true, JitterNs: 350,
			Seed: 8, MaxThink: 5, StoreFraction: 0.95, BandwidthMBs: 500},
	}
	if p == core.BASH {
		// The hybrid's static-mask variants share the same controller
		// tables and reach the corners adaptive traffic rarely visits:
		// all-unicast hammers the retry/nack/insufficient machinery,
		// all-broadcast the ownership-steal window around writebacks.
		battery = append(battery,
			Config{Protocol: core.BashAlwaysUnicast, Ops: 40000, Blocks: 6, Nodes: 10,
				RetryBuffer: 1, JitterNs: 200, Seed: 9, MaxThink: 30, BandwidthMBs: 600},
			Config{Protocol: core.BashAlwaysUnicast, Ops: 30000, Blocks: 10, Nodes: 8,
				JitterNs: 150, Seed: 10, StoreFraction: 0.3, MaxThink: 60},
			Config{Protocol: core.BashAlwaysBroadcast, Ops: 40000, Blocks: 3, Nodes: 6,
				TinyCache: true, JitterNs: 400, Seed: 11, MaxThink: 10,
				StoreFraction: 0.9, BandwidthMBs: 300},
		)
	}
	return battery
}

// mergedCoverage runs the battery and intersects the uncovered sets: a
// transition is uncovered overall only if no run in the battery fired it.
func mergedCoverage(t *testing.T, p core.Protocol) (uncoveredCache, uncoveredMem []string) {
	t.Helper()
	intersect := func(acc map[string]bool, run []string, first bool) map[string]bool {
		cur := make(map[string]bool, len(run))
		for _, u := range run {
			cur[u] = true
		}
		if first {
			return cur
		}
		out := map[string]bool{}
		for k := range acc {
			if cur[k] {
				out[k] = true
			}
		}
		return out
	}
	var accCache, accMem map[string]bool
	for i, cfg := range coverageBattery(p) {
		rep := Run(cfg)
		if !rep.OK() {
			t.Fatalf("config %d: violations %v %v", i, rep.Violations, rep.FinalStateErrors)
		}
		accCache = intersect(accCache, rep.UncoveredCache, i == 0)
		accMem = intersect(accMem, rep.UncoveredMem, i == 0)
	}
	for k := range accCache {
		uncoveredCache = append(uncoveredCache, k)
	}
	for k := range accMem {
		uncoveredMem = append(uncoveredMem, k)
	}
	return uncoveredCache, uncoveredMem
}

// allowedUncovered pins the declared-but-not-randomly-reachable residue per
// protocol. Each entry is a defensive table row whose triggering interleaving
// needs an extreme alignment of jitter draws; the derivations:
//
//   - MemOwner/MemPutMStale and MemWB/MemPutMStale: a stale PutM arriving
//     after the stealing writer has *itself* written back. For the ordered
//     protocols this needs the first PutM's sequencing jitter to exceed the
//     thief's entire miss + eviction + writeback cycle; for Directory it
//     needs the unordered PutM's jitter to do the same.
//   - SM_A/Data (Directory): data must overtake an earlier invalidation on
//     the ordered network, i.e. a maximal ordered-jitter draw against a
//     minimal unordered draw within one directory occupancy window.
//
// The II_A/OtherGetS window is NOT allowed here: it is covered
// deterministically by TestBashWritebackWindowGetS in internal/core.
var allowedUncovered = map[core.Protocol]map[string]bool{
	core.Snooping: {
		"MemOwner/MemPutMStale": true,
		"MemWB/MemPutMStale":    true,
	},
	core.Directory: {
		"MemOwner/MemPutMStale": true,
		"MemWB/MemPutMStale":    true,
		"SM_A/Data":             true,
	},
	core.BASH: {
		"MemOwner/MemPutMStale": true,
		"MemWB/MemPutMStale":    true,
		"II_A/OtherGetS":        true, // covered by the directed core test
	},
}

// TestTransitionCoverage mirrors the paper's verification result: "our tool
// reported full coverage for all state transitions with no detected
// errors". Every declared transition of every protocol must fire across the
// battery, except the pinned defensive residue above — and nothing outside
// that residue may regress.
func TestTransitionCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("coverage battery is a long run")
	}
	for _, p := range []core.Protocol{core.Snooping, core.Directory, core.BASH} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			uc, um := mergedCoverage(t, p)
			for _, u := range uc {
				if !allowedUncovered[p][u] {
					t.Errorf("cache transition never fired: %s", u)
				}
			}
			for _, u := range um {
				if !allowedUncovered[p][u] {
					t.Errorf("memory transition never fired: %s", u)
				}
			}
		})
	}
}
