package svc

// The status page: one HTML document rendered server-side from the same
// Status snapshot that feeds drain persistence (and the same atomics
// /metrics scrapes), refreshed by a plain <meta http-equiv=refresh> — no
// JavaScript, so it works from curl-only hosts' text browsers and keeps
// the service dependency-free.

import (
	"fmt"
	"html/template"
	"net/http"
	"time"
)

// pageView is the template's root.
type pageView struct {
	Now      time.Time
	Uptime   string
	Draining bool
	Status   Status
	Sweeps   []sweepRow
}

// sweepRow decorates one SweepStatus with precomputed rendering fields
// (html/template stays logic-free).
type sweepRow struct {
	SweepStatus
	Percent  int    // progress bar width
	Cells    string // "done/total" or "-"
	Duration string // run time so far (or final)
}

func (s *Service) pageView() pageView {
	st := s.Status()
	now := time.Now()
	v := pageView{
		Now:      now,
		Uptime:   now.Sub(s.started).Truncate(time.Second).String(),
		Draining: st.Dist.Draining,
		Status:   st,
	}
	for _, sw := range st.Sweeps {
		row := sweepRow{SweepStatus: sw, Cells: "-", Duration: "-"}
		if sw.Total > 0 {
			row.Percent = 100 * sw.Done / sw.Total
			row.Cells = fmt.Sprintf("%d/%d", sw.Done, sw.Total)
		} else if sw.State == Done {
			row.Percent = 100
		}
		switch {
		case !sw.Finished.IsZero() && !sw.Started.IsZero():
			row.Duration = sw.Finished.Sub(sw.Started).Truncate(time.Second).String()
		case !sw.Started.IsZero():
			row.Duration = now.Sub(sw.Started).Truncate(time.Second).String()
		}
		v.Sweeps = append(v.Sweeps, row)
	}
	return v
}

var pageTmpl = template.Must(template.New("status").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>bashsim sweep service</title>
<style>
body { font-family: sans-serif; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.05em; margin-top: 1.5em; }
table { border-collapse: collapse; }
th, td { text-align: left; padding: 0.25em 0.9em 0.25em 0; font-variant-numeric: tabular-nums; }
th { border-bottom: 1px solid #999; }
.bar { background: #eee; width: 12em; height: 0.8em; display: inline-block; vertical-align: middle; }
.bar span { background: #4a8; height: 100%; display: block; }
.state-running { color: #261; } .state-failed { color: #a22; }
.state-canceled, .state-queued { color: #777; }
.drain { background: #fc6; padding: 0.4em 0.8em; display: inline-block; }
.muted { color: #777; }
</style>
</head>
<body>
<h1>bashsim sweep service</h1>
<p class="muted">up {{.Uptime}} · {{.Status.Dist.Workers}} worker(s) ·
rendered {{.Now.Format "15:04:05"}} (auto-refreshes)</p>
{{if .Draining}}<p class="drain">draining: no new grants, waiting for leased batches</p>{{end}}

<h2>Sweeps</h2>
{{if .Sweeps}}<table>
<tr><th>id</th><th>exp</th><th>scale</th><th>prio</th><th>state</th><th>progress</th><th>cells</th><th>time</th><th></th></tr>
{{range .Sweeps}}<tr>
<td>{{.ID}}</td><td>{{.Exp}}</td><td>{{.Scale}}</td><td>{{.Priority}}</td>
<td class="state-{{.State}}">{{.State}}</td>
<td><span class="bar"><span style="width: {{.Percent}}%"></span></span></td>
<td>{{.Cells}}</td><td>{{.Duration}}</td>
<td>{{if eq .State "done"}}<a href="/sweeps/{{.ID}}/result.tsv">result.tsv</a>{{else if .Err}}{{.Err}}{{end}}</td>
</tr>{{end}}
</table>{{else}}<p class="muted">none submitted — try: bashsim -submit http://this-host -exp fig1</p>{{end}}

<h2>Fleet</h2>
<table>
<tr><th>leases</th><th>refills</th><th>dispatched</th><th>completed</th><th>failed</th><th>reassigned</th><th>bytes in/out</th></tr>
<tr><td>{{.Status.Dist.Leases}}</td><td>{{.Status.Dist.Refills}}</td><td>{{.Status.Dist.Dispatched}}</td>
<td>{{.Status.Dist.Completed}}</td><td>{{.Status.Dist.Failed}}</td><td>{{.Status.Dist.Reassigned}}</td>
<td>{{.Status.Dist.BytesIn}} / {{.Status.Dist.BytesOut}}</td></tr>
</table>

<h2>Peer cell exchange</h2>
<table>
<tr><th>adverts</th><th>advert bytes</th><th>fetches</th><th>served</th><th>relayed</th><th>false positives</th></tr>
<tr><td>{{.Status.Dist.Adverts}}</td><td>{{.Status.Dist.AdvertBytes}}</td><td>{{.Status.Dist.Fetches}}</td>
<td>{{.Status.Dist.FetchServed}}</td><td>{{.Status.Dist.FetchRelayed}}</td><td>{{.Status.Dist.FetchFalsePos}}</td></tr>
</table>

{{if .Status.Dist.WireConns}}<h2>Wire connections</h2>
<table>
<tr><th>worker</th><th>remote</th><th>frames in/out</th><th>bytes in/out</th><th></th></tr>
{{range .Status.Dist.WireConns}}<tr{{if .Closed}} class="muted"{{end}}>
<td>{{.Worker}}</td><td>{{.Remote}}</td>
<td>{{.FramesIn}} / {{.FramesOut}}</td><td>{{.BytesIn}} / {{.BytesOut}}</td>
<td>{{if .Closed}}closed{{end}}</td>
</tr>{{end}}
</table>{{end}}

<p class="muted"><a href="/metrics">/metrics</a> · <a href="/sweeps">/sweeps</a></p>
</body>
</html>
`))

// handlePage serves GET /: the live status page.
func (s *Service) handlePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := pageTmpl.Execute(w, s.pageView()); err != nil {
		// Headers are gone; all we can do is log.
		s.logf("svc: status page: %v", err)
	}
}
