// Package svc is the long-lived sweep service: a dist.Coordinator that
// stays up across sweeps, accepts named submissions (POST /dist/submit on
// the HTTP/JSON plane, the SUBMIT/SWEEP frame pair on the binary wire),
// schedules a FIFO+priority queue of sweeps across one shared worker fleet,
// and serves live observability — per-sweep progress and TSV retrieval
// under /sweeps, a Prometheus scrape at /metrics, and a no-JS HTML status
// page at /.
//
// One Service owns one Coordinator. Each active sweep is one
// Coordinator.RunPriority loop; their jobs interleave in the coordinator's
// shared queue (ordered by sweep priority, then FIFO), so the fleet drains
// every active sweep at once and workers need no notion of "sweep" at all —
// jobs are already self-describing. Drain stops the scheduler and the
// coordinator's grants, lets leased batches finish or expire, cancels
// whatever is left, and leaves a final status snapshot for persistence.
package svc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"slices"
	"sync"
	"time"

	"repro/internal/cellstore"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Options configures a sweep service.
type Options struct {
	// Coordinator tunes the embedded dist.Coordinator (lease TTL, batching,
	// shared secret, co-execution, wire selection, cache directory).
	Coordinator dist.CoordinatorOptions
	// Experiments is the base options every sweep runs with — cache
	// directory, parallelism, watchdog, and the default Scale for
	// submissions that leave theirs empty. Scale, Backend, Context, and
	// Progress are overridden per sweep.
	Experiments experiments.Options
	// MaxActive bounds concurrently running sweeps (each is one coordinator
	// run loop; their jobs share the fleet). Zero selects 2.
	MaxActive int
	// Registry receives the service's metrics; nil creates a fresh one.
	// The /metrics endpoint serves whatever registry ends up here.
	Registry *obs.Registry
	// Log, when non-nil, receives one line per sweep lifecycle event.
	Log func(format string, args ...any)
}

func (o Options) maxActive() int {
	if o.MaxActive > 0 {
		return o.MaxActive
	}
	return 2
}

// SweepState is the lifecycle of one submitted sweep.
type SweepState string

// Sweep states. Queued sweeps wait for a scheduler slot; Canceled covers
// both drain-time cancellation and a sweep cut short mid-run.
const (
	Queued   SweepState = "queued"
	Running  SweepState = "running"
	Done     SweepState = "done"
	Failed   SweepState = "failed"
	Canceled SweepState = "canceled"
)

// SweepStatus is one sweep's externally visible state, served as JSON by
// GET /sweeps and GET /sweeps/{id} and persisted on drain.
type SweepStatus struct {
	ID       string     `json:"id"`
	Exp      string     `json:"exp"`
	Scale    string     `json:"scale"`
	Priority int        `json:"priority,omitempty"`
	Seeds    []uint64   `json:"seeds,omitempty"`
	State    SweepState `json:"state"`
	// Done/Total count simulation cells across the sweep's figures so far
	// (Total grows as each figure's sweep starts; a queued sweep reports
	// 0/0).
	Done      int       `json:"done"`
	Total     int       `json:"total"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitzero"`
	Finished  time.Time `json:"finished,omitzero"`
	Err       string    `json:"err,omitempty"`
}

// sweep is the service-internal sweep record; all fields are guarded by
// Service.mu.
type sweep struct {
	id        string
	exp       string
	scale     experiments.Scale
	scaleName string
	priority  int
	seeds     []uint64 // per-sweep seed override; nil takes scale defaults
	state     SweepState
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    []byte // concatenated artifact TSV, exactly the CLI's bytes
	errText   string
	cancel    context.CancelFunc

	// Cell progress accumulates across the experiment's sweeps: runner
	// progress callbacks count (done, total) within one sweep, so a new
	// sweep (done at or below the last report with a changed shape) banks
	// the previous one into the base.
	baseDone, baseTotal int
	lastDone, lastTotal int
}

func (sw *sweep) status() SweepStatus {
	return SweepStatus{
		ID:        sw.id,
		Exp:       sw.exp,
		Scale:     sw.scaleName,
		Priority:  sw.priority,
		Seeds:     sw.seeds,
		State:     sw.state,
		Done:      sw.baseDone + sw.lastDone,
		Total:     sw.baseTotal + sw.lastTotal,
		Submitted: sw.submitted,
		Started:   sw.started,
		Finished:  sw.finished,
		Err:       sw.errText,
	}
}

// Service is a running sweep service. Create with New, serve with Serve,
// tear down with Drain.
type Service struct {
	opt     Options
	coord   *dist.Coordinator
	reg     *obs.Registry
	mux     *http.ServeMux
	started time.Time

	mu       sync.Mutex
	sweeps   []*sweep // submission order
	byID     map[string]*sweep
	nextID   int
	active   int
	draining bool
	wg       sync.WaitGroup // one per running sweep goroutine
}

// New builds a sweep service: coordinator, metrics registry (coordinator,
// cellstore, runner, and experiments seams all registered), submission
// hook, and HTTP routes. With Coordinator.CoExecute > 0 the process's cell
// executor is registered so a lone service still makes progress.
func New(opt Options) *Service {
	s := &Service{
		opt:     opt,
		coord:   dist.NewCoordinator(opt.Coordinator),
		reg:     opt.Registry,
		byID:    map[string]*sweep{},
		started: time.Now(),
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	if opt.Coordinator.CoExecute > 0 {
		experiments.RegisterCellExecutor(experiments.Options{
			CacheDir: opt.Experiments.CacheDir,
			NoReuse:  opt.Experiments.NoReuse,
		})
	}
	s.coord.RegisterMetrics(s.reg)
	s.registerMetrics()
	s.coord.HandleSubmit(s.submit)

	mux := http.NewServeMux()
	mux.Handle("/dist/", s.coord.Handler())
	mux.HandleFunc("GET /sweeps", s.handleSweeps)
	mux.HandleFunc("GET /sweeps/{id}", s.handleSweep)
	mux.HandleFunc("GET /sweeps/{id}/result.tsv", s.handleResult)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.HandleFunc("GET /{$}", s.handlePage)
	s.mux = mux
	return s
}

// Coordinator returns the embedded coordinator (tests reach its Stats and
// Snapshot through here).
func (s *Service) Coordinator() *dist.Coordinator { return s.coord }

// Registry returns the metrics registry serving /metrics.
func (s *Service) Registry() *obs.Registry { return s.reg }

// Handler returns the service's full HTTP handler: the job protocol under
// /dist/ (shared-secret auth applies there as configured), read-only sweep
// and metrics endpoints, and the status page. Mount via Serve so the
// socket byte counters and the binary wire upgrade work.
func (s *Service) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until it closes, serving every plane —
// HTTP/JSON, the binary wire upgrade, and the service's own routes.
func (s *Service) Serve(l net.Listener) error {
	return s.coord.ServeHandler(l, s.mux)
}

// registerMetrics wires the cross-package counter seams and the per-sweep
// progress gauges into the registry. Everything is read-through: scrapes
// load the same atomics the status endpoints report.
func (s *Service) registerMetrics() {
	r := s.reg
	r.GaugeFunc("bashsim_jobs_in_flight", "pool jobs executing right now (all consumers)", func() float64 {
		return float64(runner.InFlight())
	})
	r.CounterFunc("bashsim_runner_panics_total", "jobs that panicked and were captured", runner.Panics)
	r.CounterFunc("bashsim_cells_simulated_total", "simulation cells actually executed", experiments.Simulations)
	r.CounterFunc("bashsim_cells_fetched_total", "cells installed via the peer cell exchange", experiments.Fetched)
	r.CounterFunc("bashsim_cells_memo_hits_total", "cells served from the in-process memo", experiments.MemoHits)

	// The cell store opens lazily (first sweep), so each scrape re-resolves
	// it; before that the counters read zero.
	dir := s.opt.Experiments.CacheDir
	store := func() *cellstore.Store { return cellstore.For(dir) }
	r.CounterFunc("bashsim_cellstore_hits_total", "persistent cell store hits", func() uint64 {
		if st := store(); st != nil {
			h, _, _ := st.Counters()
			return h
		}
		return 0
	})
	r.CounterFunc("bashsim_cellstore_misses_total", "persistent cell store misses", func() uint64 {
		if st := store(); st != nil {
			_, m, _ := st.Counters()
			return m
		}
		return 0
	})
	r.CounterFunc("bashsim_cellstore_writes_total", "persistent cell store writes", func() uint64 {
		if st := store(); st != nil {
			_, _, w := st.Counters()
			return w
		}
		return 0
	})
	r.CounterFunc("bashsim_cellstore_evictions_total", "cell store entries evicted (defective reads + GC)", func() uint64 {
		if st := store(); st != nil {
			return st.Evictions()
		}
		return 0
	})

	r.Collect("bashsim_sweeps", "sweeps by lifecycle state", "gauge",
		func(emit func(v float64, labels ...obs.Label)) {
			counts := map[SweepState]int{}
			s.mu.Lock()
			for _, sw := range s.sweeps {
				counts[sw.state]++
			}
			s.mu.Unlock()
			for _, st := range []SweepState{Queued, Running, Done, Failed, Canceled} {
				emit(float64(counts[st]), obs.Label{Name: "state", Value: string(st)})
			}
		})
	r.Collect("bashsim_sweep_done", "cells completed per sweep", "gauge",
		func(emit func(v float64, labels ...obs.Label)) {
			for _, st := range s.SweepStatuses() {
				emit(float64(st.Done),
					obs.Label{Name: "id", Value: st.ID}, obs.Label{Name: "exp", Value: st.Exp})
			}
		})
	r.Collect("bashsim_sweep_total", "cells planned per sweep (grows per figure)", "gauge",
		func(emit func(v float64, labels ...obs.Label)) {
			for _, st := range s.SweepStatuses() {
				emit(float64(st.Total),
					obs.Label{Name: "id", Value: st.ID}, obs.Label{Name: "exp", Value: st.Exp})
			}
		})
}

// SweepStatuses snapshots every sweep in submission order.
func (s *Service) SweepStatuses() []SweepStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SweepStatus, len(s.sweeps))
	for i, sw := range s.sweeps {
		out[i] = sw.status()
	}
	return out
}

// parseScale maps a submission's scale name onto experiments.Scale; the
// empty name takes the service default.
func (s *Service) parseScale(name string) (experiments.Scale, string, error) {
	switch name {
	case "":
		def := s.opt.Experiments.Scale
		if def == experiments.Full {
			return experiments.Full, "full", nil
		}
		return experiments.Quick, "quick", nil
	case "quick":
		return experiments.Quick, "quick", nil
	case "full":
		return experiments.Full, "full", nil
	}
	return 0, "", fmt.Errorf("unknown scale %q (want quick or full)", name)
}

// submit is the coordinator's submission hook: validate, queue, schedule.
// Rejections travel in-band (SubmitResponse.Err) on both transport planes.
func (s *Service) submit(req dist.SubmitRequest) dist.SubmitResponse {
	if req.Exp == "" {
		return dist.SubmitResponse{Err: "missing experiment id (see bashsim -list)"}
	}
	if req.Exp != "all" && !slices.Contains(experiments.IDs(), req.Exp) {
		return dist.SubmitResponse{Err: fmt.Sprintf("unknown experiment %q (have %v)", req.Exp, experiments.IDs())}
	}
	scale, scaleName, err := s.parseScale(req.Scale)
	if err != nil {
		return dist.SubmitResponse{Err: err.Error()}
	}
	if len(req.Seeds) > 0 {
		if err := experiments.ValidateSeeds(req.Seeds); err != nil {
			return dist.SubmitResponse{Err: err.Error()}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return dist.SubmitResponse{Err: "service is draining"}
	}
	s.nextID++
	sw := &sweep{
		id:        fmt.Sprintf("s%03d", s.nextID),
		exp:       req.Exp,
		scale:     scale,
		scaleName: scaleName,
		priority:  req.Priority,
		seeds:     slices.Clone(req.Seeds),
		state:     Queued,
		submitted: time.Now(),
	}
	s.sweeps = append(s.sweeps, sw)
	s.byID[sw.id] = sw
	pos := 0
	for _, other := range s.sweeps {
		if other.state == Queued {
			pos++
		}
	}
	s.logf("svc: queued sweep %s: %s -scale %s (priority %d, position %d)",
		sw.id, sw.exp, sw.scaleName, sw.priority, pos)
	s.scheduleLocked()
	return dist.SubmitResponse{ID: sw.id, Position: pos}
}

// scheduleLocked starts queued sweeps while slots are free: highest
// priority first, FIFO within a priority. Caller holds s.mu.
func (s *Service) scheduleLocked() {
	for !s.draining && s.active < s.opt.maxActive() {
		var next *sweep
		for _, sw := range s.sweeps { // submission order breaks priority ties
			if sw.state == Queued && (next == nil || sw.priority > next.priority) {
				next = sw
			}
		}
		if next == nil {
			return
		}
		ctx, cancel := context.WithCancel(context.Background())
		next.state = Running
		next.started = time.Now()
		next.cancel = cancel
		s.active++
		s.wg.Add(1)
		go s.runSweep(next, ctx)
	}
}

// runSweep executes one sweep through the coordinator at the sweep's
// priority and records its artifacts. The TSV bytes are assembled exactly
// as the CLI writes them — one Fprintln per artifact — so a service-run
// sweep's result.tsv is byte-identical to a serial `bashsim -exp` run.
func (s *Service) runSweep(sw *sweep, ctx context.Context) {
	defer s.wg.Done()
	o := s.opt.Experiments
	o.Scale = sw.scale
	if len(sw.seeds) > 0 {
		o.Seeds = sw.seeds
	}
	o.Context = ctx
	o.Backend = priorityBackend{c: s.coord, priority: sw.priority}
	o.Progress = func(done, total int) { s.observeProgress(sw, done, total) }

	ids := []string{sw.exp}
	if sw.exp == "all" {
		ids = experiments.IDs()
	}
	var buf bytes.Buffer
	var runErr error
	for _, id := range ids {
		arts, err := experiments.Run(id, o)
		if err != nil {
			runErr = err
			break
		}
		for _, a := range arts {
			fmt.Fprintln(&buf, a.TSV())
		}
	}

	s.mu.Lock()
	sw.finished = time.Now()
	switch {
	case runErr == nil:
		sw.state = Done
		sw.result = buf.Bytes()
	case ctx.Err() != nil:
		sw.state = Canceled
		sw.errText = runErr.Error()
	default:
		sw.state = Failed
		sw.errText = runErr.Error()
	}
	state, dur := sw.state, sw.finished.Sub(sw.started)
	s.active--
	s.scheduleLocked()
	s.mu.Unlock()
	if runErr != nil {
		s.logf("svc: sweep %s (%s) %s after %.1fs: %v", sw.id, sw.exp, state, dur.Seconds(), runErr)
	} else {
		s.logf("svc: sweep %s (%s) %s in %.1fs", sw.id, sw.exp, state, dur.Seconds())
	}
}

// observeProgress folds one runner progress callback into the sweep's
// cumulative cell counts. Within one sweep done rises strictly; a report at
// or below the last one means a new figure's sweep started, so the previous
// one is banked into the base.
func (s *Service) observeProgress(sw *sweep, done, total int) {
	s.mu.Lock()
	if done <= sw.lastDone {
		sw.baseDone += sw.lastDone
		sw.baseTotal += sw.lastTotal
	}
	sw.lastDone, sw.lastTotal = done, total
	s.mu.Unlock()
}

// priorityBackend adapts one sweep onto the shared coordinator: every
// Backend.Run it issues carries the sweep's priority into the job queue.
type priorityBackend struct {
	c        *dist.Coordinator
	priority int
}

func (b priorityBackend) Run(jobs []runner.Job, opt runner.Options) ([][]byte, error) {
	return b.c.RunPriority(jobs, opt, b.priority)
}

// Drain tears the service down gracefully: refuse new submissions, cancel
// queued sweeps, stop granting jobs and wait (bounded by ctx) for every
// leased batch to finish or expire, then cancel whatever is still running
// and join the sweep goroutines. A sweep whose last cells completed during
// the drain still finishes Done with its full result; one with pending
// work left is Canceled with partial progress intact — nothing is lost or
// double-counted. Returns ctx.Err if leases were still outstanding at the
// deadline.
func (s *Service) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	now := time.Now()
	for _, sw := range s.sweeps {
		if sw.state == Queued {
			sw.state = Canceled
			sw.errText = "service draining"
			sw.finished = now
		}
	}
	s.mu.Unlock()

	err := s.coord.Drain(ctx)

	s.mu.Lock()
	for _, sw := range s.sweeps {
		if sw.state == Running && sw.cancel != nil {
			sw.cancel()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Status is the combined service snapshot: the coordinator's /dist/status
// aggregate plus every sweep. Drain persistence and the status page render
// from this one struct, so they can never disagree with /metrics about a
// shared counter — all three read the same atomics.
type Status struct {
	Dist   dist.StatusSnapshot `json:"dist"`
	Sweeps []SweepStatus       `json:"sweeps"`
}

// Status snapshots the service.
func (s *Service) Status() Status {
	return Status{Dist: s.coord.Snapshot(), Sweeps: s.SweepStatuses()}
}

// WriteStatus writes the combined snapshot as indented JSON; the CLI
// persists this to -dist-status after a drain.
func (s *Service) WriteStatus(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Status())
}

func (s *Service) logf(format string, args ...any) {
	if s.opt.Log != nil {
		s.opt.Log(format, args...)
	}
}

// handleSweeps serves GET /sweeps: every sweep, submission order.
func (s *Service) handleSweeps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.SweepStatuses())
}

func (s *Service) lookup(id string) (SweepStatus, []byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.byID[id]
	if !ok {
		return SweepStatus{}, nil, false
	}
	return sw.status(), sw.result, true
}

// handleSweep serves GET /sweeps/{id}.
func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	st, _, ok := s.lookup(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown sweep "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// handleResult serves GET /sweeps/{id}/result.tsv: the sweep's artifacts,
// byte-identical to a serial CLI run of the same experiment and scale.
func (s *Service) handleResult(w http.ResponseWriter, r *http.Request) {
	st, result, ok := s.lookup(r.PathValue("id"))
	if !ok {
		http.Error(w, "unknown sweep "+r.PathValue("id"), http.StatusNotFound)
		return
	}
	switch st.State {
	case Done:
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
		w.Write(result)
	case Failed, Canceled:
		http.Error(w, fmt.Sprintf("sweep %s %s: %s", st.ID, st.State, st.Err), http.StatusInternalServerError)
	default:
		http.Error(w, fmt.Sprintf("sweep %s is %s (%d/%d cells)", st.ID, st.State, st.Done, st.Total),
			http.StatusConflict)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
