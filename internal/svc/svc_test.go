package svc_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/svc"
)

// serialTSV runs one experiment in-process (no backend) and returns the
// exact bytes the CLI would write: one Fprintln per artifact.
func serialTSV(t *testing.T, id string) string {
	t.Helper()
	arts, err := experiments.Run(id, experiments.Options{Scale: experiments.Quick})
	if err != nil {
		t.Fatalf("serial %s: %v", id, err)
	}
	var buf bytes.Buffer
	for _, a := range arts {
		fmt.Fprintln(&buf, a.TSV())
	}
	return buf.String()
}

// TestServiceEndToEnd is the full sweep-service lifecycle: two sweeps
// submitted concurrently from independent clients (binary wire, shared
// secret), scheduled across one shared fleet, each result.tsv byte-identical
// to its serial run; a metrics scrape matching the golden shape with live
// fleet counters; then a drain whose persisted status agrees with /metrics
// on every shared counter.
func TestServiceEndToEnd(t *testing.T) {
	want := map[string]string{
		"fig1": serialTSV(t, "fig1"),
		"fig2": serialTSV(t, "fig2"),
	}
	// Drop the memo so the service run actually dispatches jobs through the
	// coordinator instead of serving every cell from this process's cache.
	experiments.ResetMemo()

	const secret = "svc-test-secret"
	s := svc.New(svc.Options{
		Coordinator: dist.CoordinatorOptions{CoExecute: 2, LeaseBatch: 4, Secret: secret},
		Experiments: experiments.Options{Scale: experiments.Quick, CacheDir: t.TempDir()},
		Log:         t.Logf,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go s.Serve(l)
	base := "http://" + l.Addr().String()

	// Submit both sweeps concurrently, like two separate bashsim -submit
	// processes would.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ids := make(map[string]string) // exp -> sweep id
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, exp := range []string{"fig1", "fig2"} {
		wg.Add(1)
		go func(exp string, prio int) {
			defer wg.Done()
			resp, err := dist.SubmitSweep(ctx, dist.WorkerOptions{Coordinator: base, Secret: secret},
				dist.SubmitRequest{Exp: exp, Scale: "quick", Priority: prio})
			if err != nil {
				t.Errorf("submit %s: %v", exp, err)
				return
			}
			mu.Lock()
			ids[exp] = resp.ID
			mu.Unlock()
		}(exp, i)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("submission failed")
	}

	for exp, id := range ids {
		st := awaitSweep(t, base, id)
		if st.State != svc.Done {
			t.Fatalf("sweep %s (%s) ended %s: %s", id, exp, st.State, st.Err)
		}
		if st.Done != st.Total || st.Total == 0 && exp == "fig1" {
			t.Errorf("sweep %s progress %d/%d", id, st.Done, st.Total)
		}
		got := httpGet(t, base+"/sweeps/"+id+"/result.tsv")
		if got != want[exp] {
			t.Errorf("sweep %s (%s): result.tsv differs from serial run\ngot:\n%s\nwant:\n%s", id, exp, got, want[exp])
		}
	}

	// The fleet actually moved: the shared lease counter is nonzero on the
	// raw scrape, and the scrape's normalized shape matches the golden file.
	scrape := httpGet(t, base+"/metrics")
	if v := metricValue(t, scrape, "bashsim_leases_total"); v <= 0 {
		t.Errorf("bashsim_leases_total = %v, want > 0", v)
	}
	if v := metricValue(t, scrape, "bashsim_jobs_completed_total"); v <= 0 {
		t.Errorf("bashsim_jobs_completed_total = %v, want > 0", v)
	}
	checkGolden(t, scrape)

	// Drain: everything leased completes, nothing is lost, the persisted
	// snapshot and the registry agree on every shared counter.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var out bytes.Buffer
	if err := s.WriteStatus(&out); err != nil {
		t.Fatalf("write status: %v", err)
	}
	var persisted svc.Status
	if err := json.Unmarshal(out.Bytes(), &persisted); err != nil {
		t.Fatalf("persisted status is not JSON: %v", err)
	}
	if !persisted.Dist.Draining {
		t.Error("persisted status not marked draining")
	}
	if persisted.Dist.Completed+persisted.Dist.Failed != persisted.Dist.Dispatched {
		t.Errorf("jobs lost or double-counted: %d completed + %d failed != %d dispatched",
			persisted.Dist.Completed, persisted.Dist.Failed, persisted.Dist.Dispatched)
	}
	final := s.Registry().Expose()
	for name, got := range map[string]float64{
		"bashsim_leases_total":               float64(persisted.Dist.Leases),
		"bashsim_lease_refills_total":        float64(persisted.Dist.Refills),
		"bashsim_jobs_dispatched_total":      float64(persisted.Dist.Dispatched),
		"bashsim_jobs_completed_total":       float64(persisted.Dist.Completed),
		"bashsim_jobs_failed_total":          float64(persisted.Dist.Failed),
		"bashsim_lease_reassigned_total":     float64(persisted.Dist.Reassigned),
		"bashsim_adverts_total":              float64(persisted.Dist.Adverts),
		"bashsim_fetches_total":              float64(persisted.Dist.Fetches),
		"bashsim_fetch_false_positive_total": float64(persisted.Dist.FetchFalsePos),
	} {
		if v := metricValue(t, final, name); v != got {
			t.Errorf("%s: /metrics says %v, persisted status says %v", name, v, got)
		}
	}

	// Draining services refuse new work, in-band, on both planes.
	if _, err := dist.SubmitSweep(ctx, dist.WorkerOptions{Coordinator: base, Secret: secret},
		dist.SubmitRequest{Exp: "fig1"}); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Errorf("submission during drain: err = %v, want draining rejection", err)
	}
}

// TestSubmitRejections: bad submissions are rejected in-band with a
// description, before anything is queued.
func TestSubmitRejections(t *testing.T) {
	s := svc.New(svc.Options{
		Coordinator: dist.CoordinatorOptions{},
		Experiments: experiments.Options{Scale: experiments.Quick},
	})
	srv := &http.Server{Handler: s.Handler()}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	base := "http://" + l.Addr().String()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, tc := range []struct {
		req  dist.SubmitRequest
		frag string
	}{
		{dist.SubmitRequest{}, "missing experiment"},
		{dist.SubmitRequest{Exp: "fig99"}, "unknown experiment"},
		{dist.SubmitRequest{Exp: "fig1", Scale: "medium"}, "unknown scale"},
	} {
		_, err := dist.SubmitSweep(ctx, dist.WorkerOptions{Coordinator: base, Wire: "http"}, tc.req)
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Errorf("submit %+v: err = %v, want %q", tc.req, err, tc.frag)
		}
	}

	// Unknown sweep ids 404 on every read endpoint.
	for _, path := range []string{"/sweeps/s999", "/sweeps/s999/result.tsv"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// awaitSweep polls GET /sweeps/{id} until the sweep reaches a terminal
// state.
func awaitSweep(t *testing.T, base, id string) svc.SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st svc.SweepStatus
		if err := json.Unmarshal([]byte(httpGet(t, base+"/sweeps/"+id)), &st); err != nil {
			t.Fatalf("sweep %s status: %v", id, err)
		}
		switch st.State {
		case svc.Done, svc.Failed, svc.Canceled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still %s (%d/%d) at deadline", id, st.State, st.Done, st.Total)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return string(body)
}

// metricValue extracts one unlabeled sample's value from a Prometheus text
// scrape.
func metricValue(t *testing.T, scrape, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(scrape, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
		if err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not in scrape", name)
	return 0
}

// normalizeScrape reduces a scrape to its shape: values are dropped, label
// values are dropped (names kept), and consecutive duplicate series lines
// collapse — so per-connection and per-sweep cardinality doesn't churn the
// golden file while names, types, help text, and label structure stay
// pinned.
func normalizeScrape(scrape string) string {
	var b strings.Builder
	last := ""
	for _, line := range strings.Split(scrape, "\n") {
		if line == "" {
			continue
		}
		out := line
		if !strings.HasPrefix(line, "#") {
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				continue
			}
			series := line[:sp]
			if open := strings.IndexByte(series, '{'); open >= 0 {
				series = series[:open] + "{" + labelNames(series[open+1:len(series)-1]) + "}"
			}
			out = series
		}
		if out != last {
			b.WriteString(out)
			b.WriteByte('\n')
			last = out
		}
	}
	return b.String()
}

// labelNames strips the quoted values out of a label set, keeping names.
func labelNames(inner string) string {
	var names []string
	for i := 0; i < len(inner); {
		eq := strings.IndexByte(inner[i:], '=')
		if eq < 0 {
			break
		}
		names = append(names, inner[i:i+eq])
		// Skip ="..." with escapes, then an optional comma.
		j := i + eq + 2
		for j < len(inner) && inner[j] != '"' {
			if inner[j] == '\\' {
				j++
			}
			j++
		}
		i = j + 1
		if i < len(inner) && inner[i] == ',' {
			i++
		}
	}
	return strings.Join(names, ",")
}

// checkGolden compares the normalized scrape against testdata/metrics.golden
// (regenerate with UPDATE_GOLDEN=1 go test ./internal/svc/).
func checkGolden(t *testing.T, scrape string) {
	t.Helper()
	got := normalizeScrape(scrape)
	path := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Errorf("normalized /metrics scrape differs from %s (regenerate with UPDATE_GOLDEN=1)\ngot:\n%s", path, got)
	}
}
