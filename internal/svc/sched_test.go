package svc

// White-box scheduling test: the campaign runner submits its sweeps with a
// priority and relies on scheduleLocked's contract — highest priority
// first, FIFO within a priority — so that contract is pinned here.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/experiments"
)

// TestScheduleLockedPriorityFIFO: with the single slot artificially held,
// three equal-priority sweeps and one later high-priority sweep queue up;
// once the slot frees, the high-priority sweep jumps the queue and the
// equal-priority ones start in submission order. MaxActive 1 serializes
// execution, so the finish-log order is exactly the start order.
func TestScheduleLockedPriorityFIFO(t *testing.T) {
	var mu sync.Mutex
	var order []string
	s := New(Options{
		MaxActive:   1,
		Coordinator: dist.CoordinatorOptions{CoExecute: 2},
		Experiments: experiments.Options{Scale: experiments.Quick},
		Log: func(format string, args ...any) {
			line := fmt.Sprintf(format, args...)
			// "svc: sweep s001 (fig2) done in 0.1s" marks one completion.
			if strings.Contains(line, ") done in ") {
				fields := strings.Fields(line)
				mu.Lock()
				order = append(order, fields[2])
				mu.Unlock()
			}
		},
	})

	// Hold the only scheduler slot so submissions queue without starting.
	s.mu.Lock()
	s.active = 1
	s.mu.Unlock()

	submit := func(exp string, prio int) string {
		t.Helper()
		resp := s.submit(dist.SubmitRequest{Exp: exp, Scale: "quick", Priority: prio})
		if resp.Err != "" {
			t.Fatalf("submit %s: %s", exp, resp.Err)
		}
		return resp.ID
	}
	a := submit("fig2", 0)
	b := submit("fig3", 0)
	c := submit("fig4", 0)
	d := submit("table1", 7) // submitted last, must start first

	// Release the slot and let the scheduler run.
	s.mu.Lock()
	s.active = 0
	s.scheduleLocked()
	s.mu.Unlock()

	deadline := time.Now().Add(60 * time.Second)
	for {
		done := 0
		for _, st := range s.SweepStatuses() {
			switch st.State {
			case Done:
				done++
			case Failed, Canceled:
				t.Fatalf("sweep %s (%s) ended %s: %s", st.ID, st.Exp, st.State, st.Err)
			}
		}
		if done == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweeps did not finish; statuses: %+v", s.SweepStatuses())
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	want := strings.Join([]string{d, a, b, c}, ",")
	if got != want {
		t.Fatalf("start order %s, want %s (priority jumps the queue, FIFO within a priority)", got, want)
	}
}
