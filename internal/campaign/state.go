package campaign

// Checkpointing. The state file is one JSON document: a hash binding it to
// the exact grid definition, convergence knobs, seed list, scale, and
// binary fingerprint it was produced by, plus per-panel progress — the
// per-cell seed counts and summaries of the escalation frontier, and the
// rendered TSV of every completed panel. Writes are atomic (temp file +
// rename in the same directory), so a kill at any instant leaves either
// the previous checkpoint or the new one, never a torn file.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cellstore"
	"repro/internal/experiments"
)

// stateFormat versions the checkpoint schema itself.
const stateFormat = 1

// cellState is the checkpointed escalation state of one (protocol, x) cell.
type cellState struct {
	// Seeds is how many seeds of the deterministic per-campaign sequence
	// this cell has been assigned so far.
	Seeds int `json:"seeds"`
	// Mean and CoV summarize the panel metric across those seeds.
	Mean float64 `json:"mean"`
	CoV  float64 `json:"cov"`
	// Converged records whether the cell met the CoV target (or hit the
	// seed cap) as of the last completed round.
	Converged bool `json:"converged"`
}

// panelState is one panel's checkpointed progress.
type panelState struct {
	// Done marks a fully converged panel; TSV holds its rendered artifact,
	// replayed verbatim on resume so output is byte-identical.
	Done bool   `json:"done,omitempty"`
	TSV  string `json:"tsv,omitempty"`
	// Cells maps cell ids ("<protocol>@<x>") to escalation state.
	Cells map[string]*cellState `json:"cells,omitempty"`
}

// state is the whole checkpoint document.
type state struct {
	Format   int                    `json:"format"`
	GridHash string                 `json:"grid_hash"`
	GridName string                 `json:"grid_name"`
	Panels   map[string]*panelState `json:"panels"`
}

// gridHash binds a checkpoint to everything that shapes its results: the
// grid definition, the CoV target and seed cap, the seed sequence, the
// scale (it selects per-cell operation counts), the checkpoint schema, and
// the binary fingerprint (a different build's cells are different cells —
// the store would re-simulate them, so the checkpoint must not claim them
// done).
func gridHash(g *Grid, covTarget float64, maxSeeds int, seeds []uint64, scale experiments.Scale) string {
	doc, err := json.Marshal(struct {
		Format    int
		Bin       string
		Grid      *Grid
		CovTarget float64
		MaxSeeds  int
		Seeds     []uint64
		Scale     int
	}{stateFormat, cellstore.Fingerprint(), g, covTarget, maxSeeds, seeds, int(scale)})
	if err != nil {
		panic(fmt.Sprintf("campaign: hashing grid: %v", err)) // plain data, cannot fail
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}

// loadState reads the checkpoint at path, returning a fresh state when the
// file does not exist and an error when it exists but does not match hash
// — resuming under a different grid, knob set, seed list, scale, or binary
// would silently mix incompatible results, so it is refused with the
// remedy spelled out.
func loadState(path, hash, gridName string) (*state, error) {
	st := &state{Format: stateFormat, GridHash: hash, GridName: gridName, Panels: map[string]*panelState{}}
	if path == "" {
		return st, nil
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: reading state %s: %w", path, err)
	}
	var got state
	if err := json.Unmarshal(raw, &got); err != nil {
		return nil, fmt.Errorf("campaign: state %s is not valid JSON (%v): delete it to start over", path, err)
	}
	if got.Format != stateFormat {
		return nil, fmt.Errorf("campaign: state %s has format %d, this binary writes %d: delete it or point -campaign-state elsewhere",
			path, got.Format, stateFormat)
	}
	if got.GridHash != hash {
		return nil, fmt.Errorf("campaign: state %s was written for a different campaign (grid/seeds/cov-target/max-seeds/scale/binary changed; hash %.12s != %.12s): delete it or point -campaign-state elsewhere",
			path, got.GridHash, hash)
	}
	if got.Panels == nil {
		got.Panels = map[string]*panelState{}
	}
	return &got, nil
}

// save atomically writes the checkpoint: temp file in the same directory,
// fsync-free rename (the campaign tolerates losing the very last round to
// a power cut — it only costs replaying that round from the cell store).
func (st *state) save(path string) error {
	if path == "" {
		return nil
	}
	doc, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding state: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-campaign-*")
	if err != nil {
		return fmt.Errorf("campaign: writing state: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(append(doc, '\n')); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("campaign: writing state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("campaign: writing state: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("campaign: writing state: %w", err)
	}
	return nil
}

// panel returns the named panel's state, creating it on first use.
func (st *state) panel(name string) *panelState {
	ps := st.Panels[name]
	if ps == nil {
		ps = &panelState{Cells: map[string]*cellState{}}
		st.Panels[name] = ps
	}
	if ps.Cells == nil {
		ps.Cells = map[string]*cellState{}
	}
	return ps
}
