package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// testGrid is a tiny two-panel grid: small enough for unit tests, but with
// both axis kinds and multiple cells per panel so resume, escalation, and
// rendering are all exercised.
func testGrid() *Grid {
	return &Grid{Name: "test", Panels: []Panel{
		{Name: "p1", Kind: KindBandwidth, Nodes: 4, Xs: []float64{400, 1600}},
		{Name: "p2", Kind: KindScaling, BandwidthMBs: 1600, Xs: []float64{2, 4}},
	}}
}

func runCampaign(t *testing.T, o Options) (*Result, uint64, error) {
	t.Helper()
	experiments.ResetMemo()
	c, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	before := experiments.Simulations()
	res, err := c.Run()
	return res, experiments.Simulations() - before, err
}

// TestResumeSimulatesNothingTwice is the campaign's core contract: a
// campaign killed mid-grid and restarted re-simulates zero already-completed
// cells, and its final TSVs are byte-identical to an uninterrupted run's.
func TestResumeSimulatesNothingTwice(t *testing.T) {
	grid := testGrid()
	// A loose CoV target converges every cell in one round, which keeps the
	// seed schedule trivially deterministic across the interrupted and the
	// uninterrupted run.
	base := Options{Grid: grid, CovTarget: 10, MaxSeeds: 4}

	// Uninterrupted reference run.
	ref := base
	ref.Experiments = experiments.Options{Scale: experiments.Quick, CacheDir: t.TempDir()}
	ref.StatePath = filepath.Join(t.TempDir(), "ref.json")
	refRes, refSims, err := runCampaign(t, ref)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if refSims == 0 {
		t.Fatalf("reference run simulated nothing")
	}

	// Interrupted run: cancel as soon as the first panel checkpoints done.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cacheDir, statePath := t.TempDir(), filepath.Join(t.TempDir(), "camp.json")
	intr := base
	intr.Experiments = experiments.Options{Scale: experiments.Quick, CacheDir: cacheDir, Context: ctx}
	intr.StatePath = statePath
	intr.Log = func(format string, args ...any) {
		if strings.Contains(format, "done:") {
			cancel()
		}
	}
	_, intrSims, err := runCampaign(t, intr)
	if err == nil {
		t.Fatalf("interrupted run finished without error")
	}
	if !strings.Contains(err.Error(), "interrupted") {
		t.Fatalf("interrupted run error = %v, want interruption", err)
	}
	if intrSims == 0 || intrSims >= refSims {
		t.Fatalf("interrupted run simulated %d cells, want in (0, %d)", intrSims, refSims)
	}

	// Resume with the same state and cache (fresh process memo): it must
	// finish, simulate only what the interrupted run did not, and render
	// byte-identical TSVs.
	resume := base
	resume.Experiments = experiments.Options{Scale: experiments.Quick, CacheDir: cacheDir}
	resume.StatePath = statePath
	resRes, resSims, err := runCampaign(t, resume)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if intrSims+resSims != refSims {
		t.Errorf("interrupted %d + resumed %d simulations != uninterrupted %d: resumed run re-simulated completed cells",
			intrSims, resSims, refSims)
	}
	if len(resRes.Panels) != len(refRes.Panels) {
		t.Fatalf("resumed run rendered %d panels, want %d", len(resRes.Panels), len(refRes.Panels))
	}
	if !resRes.Panels[0].Resumed {
		t.Errorf("first panel not replayed from checkpoint")
	}
	for i := range refRes.Panels {
		if resRes.Panels[i].TSV != refRes.Panels[i].TSV {
			t.Errorf("panel %s TSV differs between uninterrupted and resumed runs:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
				refRes.Panels[i].Name, refRes.Panels[i].TSV, resRes.Panels[i].TSV)
		}
	}
}

// TestCovTargetControlsSeeds: a looser CoV target provably runs fewer seeds
// than a target that can never be met.
func TestCovTargetControlsSeeds(t *testing.T) {
	grid := testGrid()
	cacheDir := t.TempDir() // shared: the strict run extends the loose run's cells

	loose := Options{Grid: grid, CovTarget: 10, MaxSeeds: 4,
		Experiments: experiments.Options{Scale: experiments.Quick, CacheDir: cacheDir}}
	looseRes, _, err := runCampaign(t, loose)
	if err != nil {
		t.Fatalf("loose run: %v", err)
	}

	strict := Options{Grid: grid, CovTarget: -1, MaxSeeds: 4,
		Experiments: experiments.Options{Scale: experiments.Quick, CacheDir: cacheDir}}
	strictRes, _, err := runCampaign(t, strict)
	if err != nil {
		t.Fatalf("strict run: %v", err)
	}

	if looseRes.SeedsRun >= strictRes.SeedsRun {
		t.Errorf("loose target ran %d seeds, strict ran %d: want loose < strict",
			looseRes.SeedsRun, strictRes.SeedsRun)
	}
	// Loose target converges every cell at the starting minimum; a negative
	// target drives every cell to the seed cap.
	if want := looseRes.Cells * 2; looseRes.SeedsRun != want {
		t.Errorf("loose run SeedsRun = %d, want %d (minimum seeds per cell)", looseRes.SeedsRun, want)
	}
	if want := strictRes.Cells * 4; strictRes.SeedsRun != want {
		t.Errorf("strict run SeedsRun = %d, want %d (seed cap per cell)", strictRes.SeedsRun, want)
	}
	if looseRes.Converged != looseRes.Cells {
		t.Errorf("loose run converged %d/%d cells", looseRes.Converged, looseRes.Cells)
	}
	if strictRes.Converged != 0 {
		t.Errorf("strict run converged %d cells, want 0 (target is unreachable)", strictRes.Converged)
	}
	if strictRes.Escalated == 0 {
		t.Errorf("strict run escalated no seeds")
	}
}

// TestStateMismatchRefused: resuming a checkpoint under different campaign
// knobs is an error naming the remedy, not a silent mix of results.
func TestStateMismatchRefused(t *testing.T) {
	grid := testGrid()
	statePath := filepath.Join(t.TempDir(), "camp.json")
	first := Options{Grid: grid, CovTarget: 10, MaxSeeds: 4, StatePath: statePath,
		Experiments: experiments.Options{Scale: experiments.Quick, CacheDir: t.TempDir()}}
	if _, _, err := runCampaign(t, first); err != nil {
		t.Fatalf("first run: %v", err)
	}

	second := first
	second.MaxSeeds = 8 // changes the grid hash
	_, _, err := runCampaign(t, second)
	if err == nil {
		t.Fatalf("resume with different -max-seeds succeeded, want refusal")
	}
	for _, want := range []string{"different campaign", "delete it"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("mismatch error %q does not mention %q", err, want)
		}
	}

	if err := os.WriteFile(statePath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = runCampaign(t, first)
	if err == nil || !strings.Contains(err.Error(), "not valid JSON") {
		t.Errorf("corrupt state error = %v, want a descriptive JSON error", err)
	}
}

// TestSeedSequenceDeterministicAndDistinct: the escalation seed sequence
// starts with the base list, never repeats a seed, and is reproducible.
func TestSeedSequenceDeterministicAndDistinct(t *testing.T) {
	base := []uint64{11, 23, 37}
	a := seedSequence(base, 16)
	b := seedSequence(base, 16)
	if len(a) != 16 {
		t.Fatalf("sequence length %d, want 16", len(a))
	}
	for i := range base {
		if a[i] != base[i] {
			t.Errorf("sequence[%d] = %d, want base seed %d", i, a[i], base[i])
		}
	}
	seen := map[uint64]bool{}
	for i, s := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence not deterministic at %d: %d != %d", i, a[i], b[i])
		}
		if seen[s] {
			t.Fatalf("duplicate seed %d in sequence", s)
		}
		seen[s] = true
	}
}

// TestDefaultGridValid: both built-in grids pass their own validation and
// the full grid covers the paper's macro panels and 256-node scaling.
func TestDefaultGridValid(t *testing.T) {
	for _, scale := range []experiments.Scale{experiments.Quick, experiments.Full} {
		g := DefaultGrid(scale)
		if err := g.validate(); err != nil {
			t.Errorf("DefaultGrid(%d): %v", scale, err)
		}
	}
	full := DefaultGrid(experiments.Full)
	if len(full.Panels) < 12 {
		t.Errorf("full grid has %d panels, want at least the 12 macro + 3 headline panels", len(full.Panels))
	}
	max := 0.0
	for _, p := range full.Panels {
		if p.Kind == KindScaling {
			for _, x := range p.Xs {
				if x > max {
					max = x
				}
			}
		}
	}
	if max < 256 {
		t.Errorf("full grid scaling tops out at %g nodes, want >= 256", max)
	}
}
