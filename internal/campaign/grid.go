// Package campaign is the long-running, resumable campaign runner: it
// drives the paper's full-scale figure set — dense log-spaced bandwidth
// grids, scaling points up to 256 nodes, all three protocols — as a
// sequence of named panels through the experiment harness (and through
// whatever runner.Backend the harness is given, so a campaign runs equally
// on the in-process pool or a dist fleet), escalating the number of seeds
// per cell until the coefficient of variation drops under a target or a
// seed cap is hit. Progress checkpoints atomically to a JSON state file
// after every completed round, so a killed campaign — or a torn-down fleet
// — resumes without re-simulating anything: finished panels replay from
// the checkpoint byte-for-byte and unfinished cells come back from the
// content-addressed cell store.
package campaign

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
)

// protocols is the evaluation's fixed protocol set, in the paper's order.
var protocols = []core.Protocol{core.Snooping, core.BASH, core.Directory}

// Panel kinds: what the panel's x axis varies.
const (
	KindBandwidth = "bandwidth" // x is endpoint bandwidth in MB/s
	KindScaling   = "scaling"   // x is the node count
	KindThink     = "think"     // x is workload think time in simulated ns
)

// Panel metrics: which core.Metrics field the panel plots and converges on.
const (
	MetricThroughput  = "throughput"
	MetricMissLatency = "miss-latency"
	MetricUtilization = "utilization"
	MetricBroadcast   = "broadcast-fraction"
)

// Panel is one declarative sub-grid of a campaign: a named sweep of all
// three protocols over Xs, with every other cell coordinate fixed. Panels
// are plain data (JSON-stable) because the campaign's resume contract
// hashes them into the checkpoint.
type Panel struct {
	Name  string `json:"name"`
	Title string `json:"title,omitempty"`
	// Kind selects the x axis (KindBandwidth, KindScaling, KindThink).
	Kind string `json:"kind"`
	// Metric selects the y axis and the convergence signal; empty means
	// MetricThroughput.
	Metric string `json:"metric,omitempty"`
	// Fixed cell coordinates. Nodes is ignored by scaling panels and
	// BandwidthMBs by bandwidth panels (the x value supplies them).
	Nodes         int       `json:"nodes,omitempty"`
	BandwidthMBs  float64   `json:"bandwidth_mbs,omitempty"`
	BroadcastCost float64   `json:"broadcast_cost,omitempty"`
	Workload      string    `json:"workload,omitempty"` // "" = locking microbenchmark
	Xs            []float64 `json:"xs"`
}

// Grid is a named, ordered set of panels — the campaign's unit of
// definition and of checkpoint compatibility.
type Grid struct {
	Name   string  `json:"name"`
	Panels []Panel `json:"panels"`
}

func (p Panel) validate() error {
	switch p.Kind {
	case KindBandwidth, KindScaling, KindThink:
	default:
		return fmt.Errorf("panel %q: unknown kind %q", p.Name, p.Kind)
	}
	switch p.Metric {
	case "", MetricThroughput, MetricMissLatency, MetricUtilization, MetricBroadcast:
	default:
		return fmt.Errorf("panel %q: unknown metric %q", p.Name, p.Metric)
	}
	if p.Name == "" {
		return fmt.Errorf("campaign: panel with empty name")
	}
	if len(p.Xs) == 0 {
		return fmt.Errorf("panel %q: no x values", p.Name)
	}
	for _, x := range p.Xs {
		if p.Kind == KindScaling && (x != math.Trunc(x) || x < 1) {
			return fmt.Errorf("panel %q: scaling x %g is not a positive node count", p.Name, x)
		}
		if p.Kind == KindBandwidth && x <= 0 {
			return fmt.Errorf("panel %q: bandwidth x %g must be positive", p.Name, x)
		}
	}
	return nil
}

func (g *Grid) validate() error {
	if len(g.Panels) == 0 {
		return fmt.Errorf("campaign: grid %q has no panels", g.Name)
	}
	seen := map[string]bool{}
	for _, p := range g.Panels {
		if err := p.validate(); err != nil {
			return err
		}
		if seen[p.Name] {
			return fmt.Errorf("campaign: duplicate panel name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}

// cell materializes one (protocol, x, seed) point of the panel.
func (p Panel) cell(proto core.Protocol, x float64, seed uint64) experiments.Cell {
	c := experiments.Cell{
		Protocol:      proto,
		Nodes:         p.Nodes,
		BandwidthMBs:  p.BandwidthMBs,
		BroadcastCost: p.BroadcastCost,
		Workload:      p.Workload,
		Seed:          seed,
	}
	switch p.Kind {
	case KindBandwidth:
		c.BandwidthMBs = x
	case KindScaling:
		c.Nodes = int(x)
	case KindThink:
		c.Think = sim.Time(x)
	}
	return c
}

// metricOf extracts the panel's convergence/plot metric from m.
func (p Panel) metricOf(m core.Metrics) float64 {
	switch p.Metric {
	case MetricMissLatency:
		return m.AvgMissLatency
	case MetricUtilization:
		return m.Utilization
	case MetricBroadcast:
		return m.BroadcastFraction
	default:
		return m.Throughput
	}
}

func (p Panel) xLabel() string {
	switch p.Kind {
	case KindScaling:
		return "nodes"
	case KindThink:
		return "think_ns"
	default:
		return "bandwidth_MBs"
	}
}

func (p Panel) yLabel() string {
	if p.Metric == "" {
		return MetricThroughput
	}
	return p.Metric
}

// logSpace returns n log-spaced values from lo to hi inclusive, rounded to
// whole units so the grid reads cleanly in TSVs and cache keys.
func logSpace(lo, hi float64, n int) []float64 {
	xs := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range xs {
		xs[i] = math.Round(v)
		v *= ratio
	}
	xs[n-1] = hi
	return xs
}

// DefaultGrid returns the campaign grid for a scale. Full is the paper's
// evaluation: a dense 16-point log-spaced bandwidth grid for the
// microbenchmark at 64 nodes and for every Figure 10/11 workload panel at
// both broadcast costs, the Figure 8 scaling panel up to 256 nodes, and
// the Figure 9 think-time panel on miss latency. Quick is a small grid
// with the same shape for tests and the CI smoke.
func DefaultGrid(scale experiments.Scale) *Grid {
	if scale != experiments.Full {
		return &Grid{Name: "quick", Panels: []Panel{
			{Name: "micro-bandwidth", Title: "Microbenchmark bandwidth sweep",
				Kind: KindBandwidth, Nodes: 16, Xs: []float64{200, 1600, 10000}},
			{Name: "scaling", Title: "System-size scaling at 1600 MB/s",
				Kind: KindScaling, BandwidthMBs: 1600, Xs: []float64{4, 8, 16}},
		}}
	}
	dense := logSpace(100, 14000, 16)
	g := &Grid{Name: "full", Panels: []Panel{
		{Name: "micro-bandwidth", Title: "Microbenchmark bandwidth sweep (64 nodes)",
			Kind: KindBandwidth, Nodes: 64, Xs: dense},
		{Name: "scaling", Title: "System-size scaling at 1600 MB/s",
			Kind: KindScaling, BandwidthMBs: 1600, Xs: []float64{4, 8, 16, 32, 64, 128, 256}},
		{Name: "think-latency", Title: "Miss latency vs think time (64 nodes, 1600 MB/s)",
			Kind: KindThink, Metric: MetricMissLatency, Nodes: 64, BandwidthMBs: 1600,
			Xs: []float64{0, 100, 200, 400, 700, 1000}},
	}}
	for _, bc := range []float64{1, 4} {
		for _, wl := range []string{"", "Apache", "Barnes-Hut", "OLTP", "Slashcode", "SPECjbb"} {
			name := wl
			if name == "" {
				name = "Microbenchmark"
			}
			g.Panels = append(g.Panels, Panel{
				Name:          fmt.Sprintf("macro-%s-bc%g", name, bc),
				Title:         fmt.Sprintf("%s bandwidth sweep (16 nodes, %gx broadcast cost)", name, bc),
				Kind:          KindBandwidth,
				Nodes:         16,
				BroadcastCost: bc,
				Workload:      wl,
				Xs:            dense,
			})
		}
	}
	return g
}
