package campaign

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Options configures one campaign.
type Options struct {
	// Experiments is the harness configuration every cell runs with: cache
	// directory, parallelism, scale (it selects the default grid and the
	// per-cell operation counts), backend, cancellation context, watchdog,
	// and the base seed list (Seeds; resolved like the figure sweeps).
	Experiments experiments.Options
	// Grid overrides the campaign grid; nil selects
	// DefaultGrid(Experiments.Scale).
	Grid *Grid
	// CovTarget is the per-cell convergence target on the panel metric's
	// coefficient of variation: seeds escalate until CoV <= CovTarget or
	// the seed cap. Zero selects the paper's 1%; a negative target never
	// converges early, driving every cell to MaxSeeds.
	CovTarget float64
	// MaxSeeds caps seeds per cell. Zero selects 16. It is raised to the
	// starting seed count when smaller.
	MaxSeeds int
	// StatePath is the checkpoint file; empty disables checkpointing (the
	// cell store still makes re-runs cheap, but completed panels re-fold).
	StatePath string
	// Priority tags the campaign's job submissions when the backend
	// supports priorities (dist.Coordinator, the service's shared fleet),
	// so interactive sweeps can outrank — or yield to — a campaign.
	Priority int
	// Log, when non-nil, receives one line per campaign event.
	Log func(format string, args ...any)
}

const (
	defaultCovTarget = 0.01
	defaultMaxSeeds  = 16
)

func (o Options) covTarget() float64 {
	if o.CovTarget != 0 {
		return o.CovTarget
	}
	return defaultCovTarget
}

func (o Options) maxSeeds() int {
	if o.MaxSeeds > 0 {
		return o.MaxSeeds
	}
	return defaultMaxSeeds
}

// PanelResult is one finished panel's artifact.
type PanelResult struct {
	Name string
	TSV  string
	// Resumed marks a panel replayed verbatim from the checkpoint.
	Resumed bool
}

// Result summarizes a completed campaign.
type Result struct {
	Panels []PanelResult
	// Cells counts distinct (panel, protocol, x) cells.
	Cells int
	// SeedsRun sums the final per-cell seed counts.
	SeedsRun int
	// Escalated counts seeds assigned beyond each cell's starting minimum.
	Escalated int
	// PanelsResumed counts panels served from the checkpoint.
	PanelsResumed int
	// Converged counts cells that met the CoV target (the rest hit the
	// seed cap).
	Converged int
}

// panelProgress is the live per-panel view behind the campaign gauges.
type panelProgress struct {
	cells, converged, seeds int
	maxCoV                  float64
	done                    bool
}

// Campaign is one configured campaign run. Create with New, optionally
// RegisterMetrics, then Run once.
type Campaign struct {
	opt      Options
	grid     *Grid
	target   float64
	maxSeeds int
	minSeeds int
	seeds    []uint64 // deterministic per-campaign seed sequence, maxSeeds long

	mu       sync.Mutex
	progress map[string]*panelProgress
}

// New validates the grid and knobs and prepares the seed sequence: the
// base list first (Options.Experiments.Seeds, or the per-scale defaults),
// then deterministically derived extras (runner.Seeds) up to MaxSeeds —
// the same campaign configuration always simulates the same cells.
func New(o Options) (*Campaign, error) {
	grid := o.Grid
	if grid == nil {
		grid = DefaultGrid(o.Experiments.Scale)
	}
	if err := grid.validate(); err != nil {
		return nil, err
	}
	base := o.Experiments.SeedList()
	if err := experiments.ValidateSeeds(base); err != nil {
		return nil, err
	}
	// CoV needs at least two observations (one seed reads as perfectly
	// converged), so every cell starts with two seeds even when the base
	// list has one.
	minSeeds := len(base)
	if minSeeds < 2 {
		minSeeds = 2
	}
	maxSeeds := o.maxSeeds()
	if maxSeeds < minSeeds {
		maxSeeds = minSeeds
	}
	c := &Campaign{
		opt:      o,
		grid:     grid,
		target:   o.covTarget(),
		maxSeeds: maxSeeds,
		minSeeds: minSeeds,
		seeds:    seedSequence(base, maxSeeds),
		progress: map[string]*panelProgress{},
	}
	for _, p := range grid.Panels {
		c.progress[p.Name] = &panelProgress{cells: len(protocols) * len(p.Xs)}
	}
	return c, nil
}

// seedSequence extends base to n seeds with deterministic SplitMix64
// derivations, skipping any candidate that would duplicate an earlier seed.
func seedSequence(base []uint64, n int) []uint64 {
	seq := make([]uint64, 0, n)
	seen := make(map[uint64]bool, n)
	for _, s := range base {
		if len(seq) == n {
			break
		}
		seq = append(seq, s)
		seen[s] = true
	}
	for batch := uint64(0); len(seq) < n; batch++ {
		for _, s := range runner.Seeds(base[0]^(0x9e3779b97f4a7c15+batch<<32), n) {
			if len(seq) == n {
				break
			}
			if !seen[s] {
				seen[s] = true
				seq = append(seq, s)
			}
		}
	}
	return seq
}

// runPrioritizer is the optional backend capability campaign submissions
// use to carry their priority (dist.Coordinator implements it; the sweep
// service wraps it the same way).
type runPrioritizer interface {
	RunPriority(jobs []runner.Job, opt runner.Options, priority int) ([][]byte, error)
}

// priorityAdapter tags every backend run with the campaign's priority.
type priorityAdapter struct {
	rp       runPrioritizer
	priority int
}

func (a priorityAdapter) Run(jobs []runner.Job, opt runner.Options) ([][]byte, error) {
	return a.rp.RunPriority(jobs, opt, a.priority)
}

// RegisterMetrics exposes the campaign's live per-panel convergence state
// on reg: the largest per-cell CoV, converged/total cells, and assigned
// seeds, each labelled by panel, plus campaign-wide panel counters.
func (c *Campaign) RegisterMetrics(reg *obs.Registry) {
	each := func(emit func(v float64, labels ...obs.Label), f func(*panelProgress) float64) {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, p := range c.grid.Panels {
			emit(f(c.progress[p.Name]), obs.Label{Name: "panel", Value: p.Name})
		}
	}
	reg.Collect("bashsim_campaign_panel_cov_max", "largest per-cell CoV of the panel metric (last completed round)", "gauge",
		func(emit func(v float64, labels ...obs.Label)) {
			each(emit, func(p *panelProgress) float64 { return p.maxCoV })
		})
	reg.Collect("bashsim_campaign_panel_cells", "cells per panel", "gauge",
		func(emit func(v float64, labels ...obs.Label)) {
			each(emit, func(p *panelProgress) float64 { return float64(p.cells) })
		})
	reg.Collect("bashsim_campaign_panel_cells_converged", "cells that met the CoV target (or the seed cap)", "gauge",
		func(emit func(v float64, labels ...obs.Label)) {
			each(emit, func(p *panelProgress) float64 { return float64(p.converged) })
		})
	reg.Collect("bashsim_campaign_panel_seeds", "seeds assigned across the panel's cells", "gauge",
		func(emit func(v float64, labels ...obs.Label)) {
			each(emit, func(p *panelProgress) float64 { return float64(p.seeds) })
		})
	reg.GaugeFunc("bashsim_campaign_panels_done", "panels finished (including checkpoint replays)", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, p := range c.progress {
			if p.done {
				n++
			}
		}
		return float64(n)
	})
}

// Run executes the campaign: every panel in grid order, each escalating
// seeds per cell until its CoV target (or the seed cap), checkpointing
// after every completed round and every finished panel. On a resumed run,
// panels the checkpoint marks done replay their TSV verbatim without
// touching the harness, and in-progress panels re-fold their completed
// cells from the memo/cell store — nothing already simulated is simulated
// again. Run returns the first error (cancellation included); the
// checkpoint on disk then reflects the last completed round.
func (c *Campaign) Run() (*Result, error) {
	eo := c.opt.Experiments
	if c.opt.Priority > 0 && eo.Backend != nil {
		if rp, ok := eo.Backend.(runPrioritizer); ok {
			eo.Backend = priorityAdapter{rp: rp, priority: c.opt.Priority}
		}
	}
	hash := gridHash(c.grid, c.target, c.maxSeeds, c.seeds, eo.Scale)
	st, err := loadState(c.opt.StatePath, hash, c.grid.Name)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for _, p := range c.grid.Panels {
		ps := st.panel(p.Name)
		if ps.Done {
			c.logf("campaign: panel %s replayed from checkpoint (%d cells)", p.Name, len(ps.Cells))
			c.noteProgress(p.Name, ps, 0, true)
			res.Panels = append(res.Panels, PanelResult{Name: p.Name, TSV: ps.TSV, Resumed: true})
			res.PanelsResumed++
			c.tally(res, ps)
			continue
		}
		tsv, err := c.runPanel(eo, p, ps, st)
		if err != nil {
			return nil, err
		}
		res.Panels = append(res.Panels, PanelResult{Name: p.Name, TSV: tsv})
		c.tally(res, ps)
	}
	return res, nil
}

// tally folds one finished panel's cell states into the campaign totals.
func (c *Campaign) tally(res *Result, ps *panelState) {
	for _, cs := range ps.Cells {
		res.Cells++
		res.SeedsRun += cs.Seeds
		if cs.Seeds > c.minSeeds {
			res.Escalated += cs.Seeds - c.minSeeds
		}
		if cs.CoV <= c.target {
			res.Converged++
		}
	}
}

// noteProgress publishes one panel's state to the metrics gauges.
func (c *Campaign) noteProgress(name string, ps *panelState, maxCoV float64, done bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.progress[name]
	p.converged = 0
	p.seeds = 0
	for _, cs := range ps.Cells {
		p.seeds += cs.Seeds
		if cs.Converged {
			p.converged++
		}
	}
	p.maxCoV = maxCoV
	p.done = done
}

// runPanel escalates one panel to convergence. Every round runs the full
// (cell, seed) frontier through experiments.RunCells — previously
// completed seeds come back from the in-process memo or the cell store for
// free, so each round only simulates the newly assigned seeds — then
// refolds per-cell accumulators in deterministic seed order, marks cells
// converged, escalates the rest (×1.5, capped), and checkpoints.
func (c *Campaign) runPanel(eo experiments.Options, p Panel, ps *panelState, st *state) (string, error) {
	type cellRef struct {
		proto core.Protocol
		x     float64
		id    string
	}
	refs := make([]cellRef, 0, len(protocols)*len(p.Xs))
	for _, proto := range protocols {
		for _, x := range p.Xs {
			id := fmt.Sprintf("%s@%g", proto, x)
			refs = append(refs, cellRef{proto: proto, x: x, id: id})
			if ps.Cells[id] == nil {
				ps.Cells[id] = &cellState{Seeds: c.minSeeds}
			}
		}
	}

	for round := 1; ; round++ {
		if ctx := eo.Context; ctx != nil && ctx.Err() != nil {
			return "", fmt.Errorf("campaign: panel %s interrupted: %w", p.Name, ctx.Err())
		}
		var cells []experiments.Cell
		var owner []int
		for ri, ref := range refs {
			for si := 0; si < ps.Cells[ref.id].Seeds; si++ {
				cells = append(cells, p.cell(ref.proto, ref.x, c.seeds[si]))
				owner = append(owner, ri)
			}
		}
		ms, err := experiments.RunCells(eo, cells)
		if err != nil {
			return "", fmt.Errorf("campaign: panel %s round %d: %w", p.Name, round, err)
		}

		accs := make([]stats.Accumulator, len(refs))
		for i, m := range ms {
			accs[owner[i]].Add(p.metricOf(m))
		}
		escalated, converged := 0, 0
		maxCoV := 0.0
		for ri, ref := range refs {
			cs := ps.Cells[ref.id]
			cov := accs[ri].CoV()
			cs.Mean = accs[ri].Mean()
			cs.CoV = cov
			if cov > maxCoV {
				maxCoV = cov
			}
			cs.Converged = cov <= c.target || cs.Seeds >= c.maxSeeds
			if cs.Converged {
				converged++
				continue
			}
			next := cs.Seeds + (cs.Seeds+1)/2
			if next > c.maxSeeds {
				next = c.maxSeeds
			}
			cs.Seeds = next
			escalated++
		}

		if escalated == 0 {
			ps.TSV = c.renderFigure(p, accs, ps).TSV()
			ps.Done = true
			c.noteProgress(p.Name, ps, maxCoV, true)
			if err := st.save(c.opt.StatePath); err != nil {
				return "", err
			}
			c.logf("campaign: panel %s done: %d/%d cells under CoV target %.3g after %d rounds (max CoV %.3g)",
				p.Name, converged, len(refs), c.target, round, maxCoV)
			return ps.TSV, nil
		}
		c.noteProgress(p.Name, ps, maxCoV, false)
		if err := st.save(c.opt.StatePath); err != nil {
			return "", err
		}
		c.logf("campaign: panel %s round %d: %d/%d cells converged (max CoV %.3g), escalating %d cells",
			p.Name, round, converged, len(refs), maxCoV, escalated)
	}
}

// renderFigure builds the panel's artifact: one series per protocol, the
// metric mean per x, and — per the paper's reporting rule — an error bar
// of one standard deviation only where CoV exceeds 1%.
func (c *Campaign) renderFigure(p Panel, accs []stats.Accumulator, ps *panelState) *experiments.Figure {
	minUsed, maxUsed := c.maxSeeds, 0
	for _, cs := range ps.Cells {
		if cs.Seeds < minUsed {
			minUsed = cs.Seeds
		}
		if cs.Seeds > maxUsed {
			maxUsed = cs.Seeds
		}
	}
	fig := &experiments.Figure{
		ID:     p.Name,
		Title:  p.Title,
		XLabel: p.xLabel(),
		YLabel: p.yLabel(),
		Notes: []string{
			fmt.Sprintf("campaign grid %s: cov target %g, seed cap %d, seeds per cell %d..%d",
				c.grid.Name, c.target, c.maxSeeds, minUsed, maxUsed),
			"error bars: one standard deviation, drawn when CoV > 1% (the paper's rule)",
		},
	}
	for pi, proto := range protocols {
		s := experiments.Series{Name: proto.String()}
		for xi, x := range p.Xs {
			a := accs[pi*len(p.Xs)+xi]
			s.X = append(s.X, x)
			s.Y = append(s.Y, a.Mean())
			e := 0.0
			if a.CoV() > 0.01 {
				e = a.StdDev()
			}
			s.Err = append(s.Err, e)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

func (c *Campaign) logf(format string, args ...any) {
	if c.opt.Log != nil {
		c.opt.Log(format, args...)
	}
}
