package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
)

// macroNodes is the full-system workload system size (the paper's 16).
const macroNodes = 16

// workloadPanels lists the Figure 10/11 panels in the paper's layout:
// the microbenchmark plus the five Table 2 workloads.
func workloadPanels() []string {
	return []string{"Microbenchmark", "Apache", "Barnes-Hut", "OLTP", "Slashcode", "SPECjbb"}
}

func panelWorkloadName(panel string) string {
	if panel == "Microbenchmark" {
		return ""
	}
	return panel
}

// macroSweep runs one Figure 10/11 panel: a bandwidth sweep of the three
// protocols on one workload, normalized to Snooping at the highest
// bandwidth (the paper's normalization).
func macroSweep(o Options, panel string, broadcastCost float64) *Figure {
	warm, measure := o.ops()
	xs := o.bandwidths()
	base := runConfig{
		nodes:         macroNodes,
		broadcastCost: broadcastCost,
		workloadName:  panelWorkloadName(panel),
		warm:          warm,
		measure:       measure,
	}
	res := runSweep(o, evalProtocols, xs, base, o.seeds(), func(rc *runConfig, x float64) {
		rc.bandwidth = x
	})
	snoop := res[core.Snooping]
	norm := snoop[len(xs)-1].throughput.Mean()
	if norm == 0 {
		norm = 1
	}
	f := &Figure{
		ID:     "panel-" + panel,
		Title:  fmt.Sprintf("%s: performance vs. bandwidth (16 processors, %gx broadcast cost)", panel, bc(broadcastCost)),
		XLabel: "endpoint bandwidth (MB/s)",
		YLabel: "performance (normalized to Snooping at max bandwidth)",
	}
	for _, p := range evalProtocols {
		f.Series = append(f.Series, seriesFrom(p.String(), xs, res[p],
			func(c *sweepResult) *stats.Accumulator { return &c.throughput }, norm))
	}
	return f
}

func bc(c float64) float64 {
	if c == 0 {
		return 1
	}
	return c
}

// Fig10 reproduces Figure 10: performance vs. bandwidth for 16 processors
// across the microbenchmark and the five workloads.
func Fig10(o Options) []*Figure {
	var out []*Figure
	for _, panel := range workloadPanels() {
		f := macroSweep(o, panel, 1)
		f.ID = "fig10-" + panel
		out = append(out, f)
	}
	out[0].Notes = append(out[0].Notes,
		"expected: at 16 processors Snooping and BASH perform similarly; both outperform Directory")
	return out
}

// Fig11 reproduces Figure 11: the Figure 10 sweep with the bandwidth cost
// of broadcasts quadrupled (the paper's large-system approximation).
func Fig11(o Options) []*Figure {
	var out []*Figure
	for _, panel := range workloadPanels() {
		f := macroSweep(o, panel, 4)
		f.ID = "fig11-" + panel
		out = append(out, f)
	}
	out[0].Notes = append(out[0].Notes,
		"expected: BASH performs as well as or better than both Snooping and Directory")
	return out
}

// Migratory is the migratory-sharing bandwidth sweep from the
// destination-set-prediction follow-up work: every episode is a remote
// read-modify-write, so the sweep isolates the protocols' behaviour on pure
// cache-to-cache migration — Snooping's best case per miss, Directory's
// worst (every episode pays the 3-hop indirection), with BASH expected to
// track Snooping once bandwidth allows.
func Migratory(o Options) *Figure {
	f := macroSweep(o, "Migratory", 1)
	f.ID = "migratory"
	f.Notes = append(f.Notes,
		"expected: the widest Snooping-over-Directory latency gap of any workload;",
		"BASH converges to Snooping as bandwidth grows")
	return f
}

// ProducerConsumer is the producer-consumer bandwidth sweep from the
// destination-set-prediction follow-up work: every block has one stable
// writer, so the last-owner predictor's mask is almost always right — the
// counterpoint to Migratory, whose owner moves every episode.
func ProducerConsumer(o Options) *Figure {
	f := macroSweep(o, "ProducerConsumer", 1)
	f.ID = "producer-consumer"
	f.Notes = append(f.Notes,
		"expected: a stable per-block writer; the owner predictor's best case",
		"(see the predictive experiment for the hit-rate comparison)")
	return f
}

// Fig12 reproduces Figure 12: per-workload bars at 1600 MB/s with 4x
// broadcast cost, normalized to BASH.
func Fig12(o Options) *TableResult {
	warm, measure := o.ops()
	t := &TableResult{
		ID:      "fig12",
		Title:   "Adapting to workload behaviour (16 processors, 1600 MB/s, 4x broadcast cost)",
		Columns: []string{"workload", "BASH", "Snooping", "Directory"},
		Notes: []string{
			"performance normalized to BASH per workload (paper Figure 12)",
			"expected: Snooping wins Barnes-Hut and OLTP, Directory wins SPECjbb,",
			"BASH matches or exceeds both on all five workloads",
		},
	}
	names := []string{"Apache", "Barnes-Hut", "OLTP", "Slashcode", "SPECjbb"}
	seeds := o.seeds()

	// One job per (workload, protocol, seed) cell, folded back workload-
	// major so the rows are identical at any worker count. The 1600 MB/s
	// 4x-broadcast cells are shared with Figure 11's sweep via runMemo.
	type job struct {
		name string
		p    core.Protocol
		seed uint64
	}
	var jobs []job
	for _, name := range names {
		for _, p := range evalProtocols {
			for _, seed := range seeds {
				jobs = append(jobs, job{name: name, p: p, seed: seed})
			}
		}
	}
	label := func(i int) string {
		j := jobs[i]
		return fmt.Sprintf("cell %s %s seed=%d", j.name, j.p, j.seed)
	}
	rcs := make([]runConfig, len(jobs))
	for i, j := range jobs {
		rcs[i] = runConfig{
			protocol: j.p, nodes: macroNodes, bandwidth: 1600,
			broadcastCost: 4, workloadName: j.name, seed: j.seed,
			warm: warm, measure: measure, watchdog: o.WatchdogInterval,
		}
	}
	ms := runCells(o, rcs, label)

	for ni, name := range names {
		vals := map[core.Protocol]*stats.Accumulator{}
		for pi, p := range evalProtocols {
			acc := &stats.Accumulator{}
			for si := range seeds {
				acc.Add(ms[(ni*len(evalProtocols)+pi)*len(seeds)+si].Throughput)
			}
			vals[p] = acc
		}
		norm := vals[core.BASH].Mean()
		if norm == 0 {
			norm = 1
		}
		row := []string{name}
		for _, p := range []core.Protocol{core.BASH, core.Snooping, core.Directory} {
			row = append(row, fmt.Sprintf("%.3f", vals[p].Mean()/norm))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}
