package experiments

// Distributed cell execution: the bridge between the experiment harness and
// runner.Backend implementations. A simulation cell travels as a gob-encoded
// cellSpec (the exported mirror of runConfig), keyed by the same content
// address the persistent store uses, and comes back as gob-encoded
// core.Metrics. Cells are pure functions of their spec, so a worker
// anywhere produces the exact bytes the in-process pool would have — the
// determinism guarantee every backend inherits.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/sim"
)

// CellKind is the job kind of one experiment cell (see runner.Job).
const CellKind = "bashsim.cell"

// cellSpec is the wire form of runConfig: exported fields for gob, nothing
// else. Keep in lockstep with runConfig — cacheKey covers every field, so a
// drift would change content addresses, never silently corrupt results.
type cellSpec struct {
	Protocol      int
	Nodes         int
	Bandwidth     float64
	BroadcastCost float64
	Think         sim.Time
	Workload      string
	Threshold     int
	Interval      sim.Time
	PolicyBits    uint
	Seed          uint64
	Warm, Measure uint64
	Watchdog      sim.Time
}

func (rc runConfig) spec() cellSpec {
	return cellSpec{
		Protocol: int(rc.protocol), Nodes: rc.nodes, Bandwidth: rc.bandwidth,
		BroadcastCost: rc.broadcastCost, Think: rc.think, Workload: rc.workloadName,
		Threshold: rc.threshold, Interval: rc.interval, PolicyBits: rc.policyBits,
		Seed: rc.seed, Warm: rc.warm, Measure: rc.measure, Watchdog: rc.watchdog,
	}
}

func (cs cellSpec) runConfig() runConfig {
	return runConfig{
		protocol: core.Protocol(cs.Protocol), nodes: cs.Nodes, bandwidth: cs.Bandwidth,
		broadcastCost: cs.BroadcastCost, think: cs.Think, workloadName: cs.Workload,
		threshold: cs.Threshold, interval: cs.Interval, policyBits: cs.PolicyBits,
		seed: cs.Seed, warm: cs.Warm, measure: cs.Measure, watchdog: cs.Watchdog,
	}
}

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}

// RegisterCellExecutor makes this process able to execute CellKind jobs:
// worker processes (and the in-process runner.LocalBackend) call it at
// startup, and so does a coordinator that co-executes
// (dist.CoordinatorOptions.CoExecute) — its loopback worker runs through
// this same registry. The executor runs each decoded cell through the full
// memo / store / simulate path with the given options, so a worker serves
// cells already in its (shared) store without simulating and publishes
// fresh ones into it — which is what lets an interrupted sweep resume with
// zero re-simulation. Only CacheDir and NoReuse are consulted; everything
// else that shapes a cell travels in the spec.
func RegisterCellExecutor(o Options) {
	runner.RegisterExecutor(CellKind, func(spec []byte) ([]byte, error) {
		var cs cellSpec
		if err := gobDecode(spec, &cs); err != nil {
			return nil, fmt.Errorf("cell spec: %w", err)
		}
		return gobEncode(runMemo(o, cs.runConfig()))
	})
}

// runCells evaluates one simulation cell per runConfig and returns their
// metrics in job order; every sweep and table funnels through here. A sweep
// failure — cancellation, a captured panic, a backend error — aborts the
// enclosing figure via panic(abort{err}), as runner.Map errors always have.
//
// With Options.Backend nil the cells run on the in-process worker pool via
// the memoized direct path. With a Backend, cells the memo or store already
// hold are served locally and only the misses are dispatched as jobs; the
// backend's results are written through both cache layers, so the next
// figure sharing those cells costs no dispatch at all.
func runCells(o Options, rcs []runConfig, label func(i int) string) []core.Metrics {
	if o.Backend == nil {
		ms, err := runner.Map(len(rcs), o.runnerOptions(label),
			func(i int) (core.Metrics, error) { return runMemo(o, rcs[i]), nil })
		if err != nil {
			panic(abort{err})
		}
		return ms
	}

	ms := make([]core.Metrics, len(rcs))
	var miss []int
	for i, rc := range rcs {
		if m, ok := lookupCell(o, rc); ok {
			ms[i] = m
		} else {
			miss = append(miss, i)
		}
	}
	served := len(rcs) - len(miss)
	if o.Progress != nil && served > 0 {
		o.Progress(served, len(rcs))
	}
	if len(miss) == 0 {
		return ms
	}

	jobs := make([]runner.Job, len(miss))
	for k, i := range miss {
		spec, err := gobEncode(rcs[i].spec())
		if err != nil {
			panic(abort{fmt.Errorf("encode %s: %w", label(i), err)})
		}
		jobs[k] = runner.Job{Kind: CellKind, Key: rcs[i].cacheKey(), Label: label(i), Spec: spec}
	}
	opt := o.runnerOptions(func(k int) string { return jobs[k].Label })
	if prog := o.Progress; prog != nil {
		// Report progress over the whole cell list, counting locally
		// served cells as already done.
		opt.Progress = func(done, _ int) { prog(served+done, len(rcs)) }
	}
	outs, err := o.Backend.Run(jobs, opt)
	if err != nil {
		panic(abort{err})
	}
	for k, i := range miss {
		var m core.Metrics
		if err := gobDecode(outs[k], &m); err != nil {
			panic(abort{fmt.Errorf("decode result of %s: %w", jobs[k].Label, err)})
		}
		ms[i] = storeCell(o, rcs[i], m)
	}
	return ms
}
