package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

// microNodes is the microbenchmark system size (Figures 1, 5–9 use 64).
func microNodes(o Options) int {
	if o.Scale == Full {
		return 64
	}
	return 16 // keep CI-quick runs tractable; Full reproduces the paper's 64
}

// microSweep runs the locking microbenchmark bandwidth sweep shared by
// Figures 1, 5 and 6. The three figures present the same runs three ways;
// the per-cell memo (runMemo) makes the repeats free.
func microSweep(o Options) (xs []float64, res map[core.Protocol][]*sweepResult, nodes int) {
	nodes = microNodes(o)
	warm, measure := o.ops()
	xs = o.bandwidths()
	base := runConfig{nodes: nodes, warm: warm, measure: measure}
	res = runSweep(o, evalProtocols, xs, base, o.seeds(), func(rc *runConfig, x float64) {
		rc.bandwidth = x
	})
	return xs, res, nodes
}

// Fig1 reproduces Figure 1: performance vs. available bandwidth for the
// locking microbenchmark (raw curves, normalized to the best point).
func Fig1(o Options) *Figure {
	xs, res, nodes := microSweep(o)
	best := maxThroughput(res)
	f := &Figure{
		ID:     "fig1",
		Title:  fmt.Sprintf("Performance vs. available bandwidth (locking microbenchmark, %d processors)", nodes),
		XLabel: "endpoint bandwidth (MB/s)",
		YLabel: "performance (normalized lock acquires/ns)",
	}
	for _, p := range evalProtocols {
		f.Series = append(f.Series, seriesFrom(p.String(), xs, res[p],
			func(c *sweepResult) *stats.Accumulator { return &c.throughput }, best))
	}
	f.Notes = append(f.Notes,
		"expected shape: Snooping saturates at ~5x the bandwidth of Directory;",
		"BASH tracks Directory at low bandwidth and Snooping at high bandwidth")
	return f
}

// Fig5 reproduces Figure 5: the same sweep normalized to BASH at each
// bandwidth.
func Fig5(o Options) *Figure {
	xs, res, nodes := microSweep(o)
	f := &Figure{
		ID:     "fig5",
		Title:  fmt.Sprintf("Normalized performance vs. available bandwidth (%d processors)", nodes),
		XLabel: "endpoint bandwidth (MB/s)",
		YLabel: "performance normalized to BASH",
	}
	bash := res[core.BASH]
	for _, p := range evalProtocols {
		s := Series{Name: p.String()}
		for i, x := range xs {
			norm := bash[i].throughput.Mean()
			if norm == 0 {
				norm = 1
			}
			a := res[p][i].throughput
			s.X = append(s.X, x)
			s.Y = append(s.Y, a.Mean()/norm)
			s.Err = append(s.Err, a.StdDev()/norm)
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		"expected: BASH within ~10% of Directory at the low end (marker overhead),",
		"above both protocols in the mid-range (paper: up to 25%), converging to Snooping")
	return f
}

// Fig6 reproduces Figure 6: endpoint link utilization vs. bandwidth, with
// the 75% target line.
func Fig6(o Options) *Figure {
	xs, res, nodes := microSweep(o)
	f := &Figure{
		ID:     "fig6",
		Title:  fmt.Sprintf("Endpoint link utilization vs. available bandwidth (%d processors)", nodes),
		XLabel: "endpoint bandwidth (MB/s)",
		YLabel: "inbound link utilization (percent)",
	}
	for _, p := range evalProtocols {
		f.Series = append(f.Series, seriesFrom(p.String(), xs, res[p],
			func(c *sweepResult) *stats.Accumulator { return &c.utilization }, 0.01))
	}
	target := Series{Name: "75% target"}
	for _, x := range xs {
		target.X = append(target.X, x)
		target.Y = append(target.Y, 75)
		target.Err = append(target.Err, 0)
	}
	f.Series = append(f.Series, target)
	f.Notes = append(f.Notes,
		"expected: BASH holds ~75% utilization until even always-broadcast cannot reach it")
	return f
}

// Fig7 reproduces Figure 7: BASH's sensitivity to the utilization threshold
// (55%, 75%, 95%) against the Snooping and Directory references.
func Fig7(o Options) *Figure {
	nodes := microNodes(o)
	warm, measure := o.ops()
	xs := o.bandwidths()
	base := runConfig{nodes: nodes, warm: warm, measure: measure}
	// Threshold sensitivity is a qualitative plot; one seed keeps the
	// five-series sweep tractable at full scale.
	seeds := o.seeds()[:1]

	refs := runSweep(o, []core.Protocol{core.Snooping, core.Directory}, xs, base, seeds,
		func(rc *runConfig, x float64) { rc.bandwidth = x })

	f := &Figure{
		ID:     "fig7",
		Title:  fmt.Sprintf("Sensitivity to utilization threshold (%d processors)", nodes),
		XLabel: "endpoint bandwidth (MB/s)",
		YLabel: "performance (normalized)",
	}
	var all []map[core.Protocol][]*sweepResult
	all = append(all, refs)
	thresholds := []int{55, 75, 95}
	bashCells := make([][]*sweepResult, len(thresholds))
	for ti, th := range thresholds {
		th := th
		r := runSweep(o, []core.Protocol{core.BASH}, xs, base, seeds, func(rc *runConfig, x float64) {
			rc.bandwidth = x
			rc.threshold = th
		})
		bashCells[ti] = r[core.BASH]
		all = append(all, r)
	}
	best := 0.0
	for _, m := range all {
		if v := maxThroughput(m); v > best {
			best = v
		}
	}
	f.Series = append(f.Series, seriesFrom("Snooping", xs, refs[core.Snooping],
		func(c *sweepResult) *stats.Accumulator { return &c.throughput }, best))
	for ti, th := range thresholds {
		f.Series = append(f.Series, seriesFrom(fmt.Sprintf("BASH: %d%%", th), xs, bashCells[ti],
			func(c *sweepResult) *stats.Accumulator { return &c.throughput }, best))
	}
	f.Series = append(f.Series, seriesFrom("Directory", xs, refs[core.Directory],
		func(c *sweepResult) *stats.Accumulator { return &c.throughput }, best))
	f.Notes = append(f.Notes, "expected: qualitative behaviour insensitive to threshold 55-95%")
	return f
}

// Fig8 reproduces Figure 8: performance per processor vs. system size at a
// fixed 1600 MB/s per-processor endpoint bandwidth.
func Fig8(o Options) *Figure {
	sizes := []float64{4, 8, 16, 32, 64}
	if o.Scale == Full {
		sizes = []float64{4, 8, 16, 32, 64, 128, 256}
	}
	warm, measure := o.ops()
	base := runConfig{bandwidth: 1600, warm: warm, measure: measure}
	res := runSweep(o, evalProtocols, sizes, base, o.seeds(), func(rc *runConfig, x float64) {
		rc.nodes = int(x) // runOne scales the op counts with system size
	})
	// Normalize per-processor throughput to the best cell.
	best := 0.0
	for _, cells := range res {
		for i, c := range cells {
			if v := c.throughput.Mean() / sizes[i]; v > best {
				best = v
			}
		}
	}
	if best == 0 {
		best = 1
	}
	f := &Figure{
		ID:     "fig8",
		Title:  "Performance per processor vs. system size (1600 MB/s per processor)",
		XLabel: "processors",
		YLabel: "performance per processor (normalized)",
	}
	for _, p := range evalProtocols {
		s := Series{Name: p.String()}
		for i, x := range sizes {
			a := res[p][i].throughput
			s.X = append(s.X, x)
			s.Y = append(s.Y, a.Mean()/x/best)
			s.Err = append(s.Err, a.StdDev()/x/best)
		}
		f.Series = append(f.Series, s)
	}
	f.Notes = append(f.Notes,
		"expected: Directory nearly flat (near-perfect scaling); Snooping collapses at",
		"large N; BASH tracks the better protocol at both extremes")
	return f
}

// Fig9 reproduces Figure 9: average miss latency vs. think time on the
// 64-processor microbenchmark at 1600 MB/s per processor.
func Fig9(o Options) *Figure {
	nodes := microNodes(o)
	warm, measure := o.ops()
	thinks := []float64{0, 100, 200, 300, 400, 500, 600, 800, 1000}
	if o.Scale != Full {
		thinks = []float64{0, 200, 400, 700, 1000}
	}
	base := runConfig{nodes: nodes, bandwidth: 1600, warm: warm, measure: measure}
	res := runSweep(o, evalProtocols, thinks, base, o.seeds(), func(rc *runConfig, x float64) {
		rc.think = sim.Time(x)
	})
	f := &Figure{
		ID:     "fig9",
		Title:  fmt.Sprintf("Average miss latency vs. think time (%d processors, 1600 MB/s)", nodes),
		XLabel: "think time (cycles)",
		YLabel: "average miss latency (ns)",
	}
	for _, p := range evalProtocols {
		f.Series = append(f.Series, seriesFrom(p.String(), thinks, res[p],
			func(c *sweepResult) *stats.Accumulator { return &c.missLatency }, 1))
	}
	f.Notes = append(f.Notes,
		"expected: at low think time (intense traffic) Directory's flat 255 ns indirection",
		"beats congested Snooping; as think time grows Snooping's 125 ns c2c wins; BASH tracks the better")
	return f
}
