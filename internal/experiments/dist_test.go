package experiments

import (
	"testing"

	"repro/internal/runner"
)

// TestBackendLocalByteIdentical: routing cells through the serialized
// backend seam (encode spec -> executor -> decode metrics) produces TSV
// byte-identical to the direct in-process path, for both a sweep-shaped
// experiment and a list-shaped one.
func TestBackendLocalByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs quick-scale experiments twice")
	}
	RegisterCellExecutor(Options{})
	for _, id := range []string{"fig1", "ablation", "migratory"} {
		ResetMemo()
		direct := tsvOf(t, id, Options{})
		ResetMemo()
		backed := tsvOf(t, id, Options{Backend: runner.LocalBackend{}})
		if direct != backed {
			t.Errorf("%s: backend TSV differs from direct TSV:\n--- direct ---\n%s\n--- backend ---\n%s",
				id, direct, backed)
		}
	}
}

// TestBackendServesMemoHitsLocally: cells already memoized are not
// re-dispatched — a second backend run executes zero jobs.
func TestBackendServesMemoHitsLocally(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a quick-scale sweep")
	}
	RegisterCellExecutor(Options{})
	ResetMemo()
	var calls int
	counting := countingBackend{inner: runner.LocalBackend{}, calls: &calls}
	first := tsvOf(t, "fig1", Options{Backend: counting})
	if calls == 0 {
		t.Fatal("first run dispatched no jobs")
	}
	callsAfterFirst := calls
	second := tsvOf(t, "fig1", Options{Backend: counting})
	if calls != callsAfterFirst {
		t.Errorf("memo-warm run dispatched %d jobs, want 0", calls-callsAfterFirst)
	}
	if first != second {
		t.Error("memo-served TSV differs from dispatched TSV")
	}
}

// TestCellSpecRoundTrip pins the wire form: every runConfig field survives
// encode/decode, so remote cells key and simulate identically.
func TestCellSpecRoundTrip(t *testing.T) {
	rc := runConfig{
		protocol: 2, nodes: 32, bandwidth: 1337.5, broadcastCost: 4,
		think: 250, workloadName: "Migratory", threshold: 55, interval: 512,
		policyBits: 12, seed: 99, warm: 100, measure: 400, watchdog: 123456,
	}
	if got := rc.spec().runConfig(); got != rc {
		t.Errorf("round trip changed the config:\n got %+v\nwant %+v", got, rc)
	}
	data, err := gobEncode(rc.spec())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	var cs cellSpec
	if err := gobDecode(data, &cs); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if cs.runConfig() != rc {
		t.Errorf("gob round trip changed the config: %+v", cs.runConfig())
	}
	if cs.runConfig().cacheKey() != rc.cacheKey() {
		t.Error("round-tripped config keys differently")
	}
}

// countingBackend counts Run invocations' jobs.
type countingBackend struct {
	inner runner.Backend
	calls *int
}

func (c countingBackend) Run(jobs []runner.Job, opt runner.Options) ([][]byte, error) {
	*c.calls += len(jobs)
	return c.inner.Run(jobs, opt)
}
