package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Ablation separates the value of adaptivity from the hybrid engine
// (DESIGN.md Section 7): the BASH machinery forced to always-broadcast or
// always-unicast against the adaptive policy at low, mid and high bandwidth,
// plus the sampling-interval and policy-counter-width sensitivity the paper
// discusses in Section 2.2.
func Ablation(o Options) *TableResult {
	warm, measure := o.ops()
	nodes := 16
	t := &TableResult{
		ID:    "ablation",
		Title: "BASH design-choice ablations (locking microbenchmark, 16 processors)",
		Columns: []string{
			"variant", "bandwidth (MB/s)", "throughput (ops/ns)",
			"bcast frac", "utilization", "retries",
		},
		Notes: []string{
			"adaptive vs. static masks: the hybrid engine with a static choice recovers the",
			"base protocols; adaptivity is what wins the mid-range",
		},
	}
	// Collect the variant list up front, fan the independent simulations
	// out through the runner, and fold the rows back in declaration order.
	type variant struct {
		label string
		rc    runConfig
	}
	var vs []variant
	for _, bw := range []float64{400, 1600, 8000} {
		for _, v := range []struct {
			label string
			p     core.Protocol
		}{
			{"BASH adaptive", core.BASH},
			{"BASH always-broadcast", core.BashAlwaysBroadcast},
			{"BASH always-unicast", core.BashAlwaysUnicast},
		} {
			vs = append(vs, variant{v.label, runConfig{
				protocol: v.p, nodes: nodes, bandwidth: bw,
				seed: 11, warm: warm, measure: measure,
				watchdog: o.WatchdogInterval,
			}})
		}
	}
	// Sampling-interval sensitivity (paper: smaller reacts faster but risks
	// oscillation) and policy-counter width at mid bandwidth.
	for _, iv := range []sim.Time{64, 512, 4096} {
		vs = append(vs, variant{fmt.Sprintf("BASH interval=%d", iv), runConfig{
			protocol: core.BASH, nodes: nodes, bandwidth: 1600,
			interval: iv, seed: 11, warm: warm, measure: measure,
			watchdog: o.WatchdogInterval,
		}})
	}
	for _, bits := range []uint{4, 8, 12} {
		vs = append(vs, variant{fmt.Sprintf("BASH policy-bits=%d", bits), runConfig{
			protocol: core.BASH, nodes: nodes, bandwidth: 1600,
			policyBits: bits, seed: 11, warm: warm, measure: measure,
			watchdog: o.WatchdogInterval,
		}})
	}
	label := func(i int) string { return "ablation " + vs[i].label }
	rcs := make([]runConfig, len(vs))
	for i, v := range vs {
		rcs[i] = v.rc
	}
	ms := runCells(o, rcs, label)
	for i, v := range vs {
		m := ms[i]
		t.Rows = append(t.Rows, []string{
			v.label, fmt.Sprintf("%g", v.rc.bandwidth),
			fmt.Sprintf("%.5f", m.Throughput),
			fmt.Sprintf("%.2f", m.BroadcastFraction),
			fmt.Sprintf("%.2f", m.Utilization),
			fmt.Sprint(m.Retries),
		})
	}
	return t
}
