package experiments

import (
	"strings"
	"testing"
)

// tsvOf regenerates one experiment and concatenates its artifacts' TSV.
func tsvOf(t *testing.T, id string, o Options) string {
	t.Helper()
	arts, err := Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, a := range arts {
		b.WriteString(a.TSV())
	}
	return b.String()
}

// TestSweepDeterminism: the same experiment produces byte-identical TSV
// when re-simulated from scratch, when run serially vs. with a parallel
// worker pool, and when served from the cell memo.
func TestSweepDeterminism(t *testing.T) {
	for _, id := range []string{"fig1", "ablation"} {
		seeds := []uint64{11, 23}
		if id == "ablation" {
			seeds = nil // ablation pins its own seed
		}

		ResetMemo()
		serial := tsvOf(t, id, Options{Seeds: seeds, Parallel: 1})

		ResetMemo()
		parallel := tsvOf(t, id, Options{Seeds: seeds, Parallel: 8})
		if serial != parallel {
			t.Errorf("%s: serial and parallel TSV differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}

		ResetMemo()
		again := tsvOf(t, id, Options{Seeds: seeds, Parallel: 8})
		if parallel != again {
			t.Errorf("%s: two fresh runs with the same seeds differ", id)
		}

		// No reset: the memo-served repeat must match the simulated run.
		memoized := tsvOf(t, id, Options{Seeds: seeds, Parallel: 8})
		if memoized != again {
			t.Errorf("%s: memoized TSV differs from freshly simulated TSV", id)
		}
	}
}

// TestSweepProgress: the progress callback sees every cell of a sweep.
func TestSweepProgress(t *testing.T) {
	ResetMemo()
	var last, total int
	o := Options{Progress: func(d, n int) { last, total = d, n }}
	Fig1(o)
	// fig1 quick scale: 3 protocols x 5 bandwidths x 1 seed.
	if last != 15 || total != 15 {
		t.Errorf("progress ended at %d/%d, want 15/15", last, total)
	}
}
