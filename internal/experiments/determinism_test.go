package experiments

import (
	"strings"
	"testing"
)

// tsvOf regenerates one experiment and concatenates its artifacts' TSV.
func tsvOf(t *testing.T, id string, o Options) string {
	t.Helper()
	arts, err := Run(id, o)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var b strings.Builder
	for _, a := range arts {
		b.WriteString(a.TSV())
	}
	return b.String()
}

// TestSweepDeterminism: the same experiment produces byte-identical TSV
// when re-simulated from scratch, when run serially vs. with a parallel
// worker pool, and when served from the cell memo.
func TestSweepDeterminism(t *testing.T) {
	for _, id := range []string{"fig1", "ablation"} {
		seeds := []uint64{11, 23}
		if id == "ablation" {
			seeds = nil // ablation pins its own seed
		}

		ResetMemo()
		serial := tsvOf(t, id, Options{Seeds: seeds, Parallel: 1})

		ResetMemo()
		parallel := tsvOf(t, id, Options{Seeds: seeds, Parallel: 8})
		if serial != parallel {
			t.Errorf("%s: serial and parallel TSV differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}

		ResetMemo()
		again := tsvOf(t, id, Options{Seeds: seeds, Parallel: 8})
		if parallel != again {
			t.Errorf("%s: two fresh runs with the same seeds differ", id)
		}

		// No reset: the memo-served repeat must match the simulated run.
		memoized := tsvOf(t, id, Options{Seeds: seeds, Parallel: 8})
		if memoized != again {
			t.Errorf("%s: memoized TSV differs from freshly simulated TSV", id)
		}
	}
}

// TestPoolingDeterminism: a sweep with System pooling enabled produces
// byte-identical TSV to a pooling-disabled (fresh construction per cell)
// run, serially and with a parallel worker pool. This is the end-to-end
// guarantee behind core.Pool: leasing a re-seeded System never changes a
// result.
func TestPoolingDeterminism(t *testing.T) {
	for _, id := range []string{"fig1", "predictive"} {
		seeds := []uint64{11, 23}
		if id == "predictive" {
			seeds = nil // predictive pins its own seed
		}

		ResetMemo()
		fresh := tsvOf(t, id, Options{Seeds: seeds, Parallel: 1, NoReuse: true})

		ResetMemo()
		pooledSerial := tsvOf(t, id, Options{Seeds: seeds, Parallel: 1})
		if fresh != pooledSerial {
			t.Errorf("%s: pooled serial TSV differs from fresh-construction TSV:\n--- fresh ---\n%s\n--- pooled ---\n%s",
				id, fresh, pooledSerial)
		}

		ResetMemo()
		pooledParallel := tsvOf(t, id, Options{Seeds: seeds, Parallel: 8})
		if fresh != pooledParallel {
			t.Errorf("%s: pooled parallel TSV differs from fresh-construction TSV", id)
		}
	}
}

// TestRecyclingDeterminism: a sweep with the hot-path free lists enabled
// (the default) produces byte-identical TSV to a NoRecycle run that
// allocates every packet and record fresh — serially and with a parallel
// worker pool, with pooling both on and off. This is the end-to-end
// guarantee behind the zero-allocation hot path: recycling never changes a
// result.
func TestRecyclingDeterminism(t *testing.T) {
	seeds := []uint64{11, 23}

	ResetMemo()
	fresh := tsvOf(t, "fig1", Options{Seeds: seeds, Parallel: 1, NoRecycle: true, NoReuse: true})

	ResetMemo()
	recycledSerial := tsvOf(t, "fig1", Options{Seeds: seeds, Parallel: 1})
	if fresh != recycledSerial {
		t.Errorf("recycled serial TSV differs from fresh-allocation TSV:\n--- fresh ---\n%s\n--- recycled ---\n%s",
			fresh, recycledSerial)
	}

	ResetMemo()
	recycledParallel := tsvOf(t, "fig1", Options{Seeds: seeds, Parallel: 8})
	if fresh != recycledParallel {
		t.Errorf("recycled parallel TSV differs from fresh-allocation TSV")
	}

	// NoRecycle composed with pooled Systems (reuse on, free lists off).
	ResetMemo()
	pooledNoRecycle := tsvOf(t, "fig1", Options{Seeds: seeds, Parallel: 1, NoRecycle: true})
	if fresh != pooledNoRecycle {
		t.Errorf("pooled NoRecycle TSV differs from fresh-allocation TSV")
	}
}

// TestSweepProgress: the progress callback sees every cell of a sweep.
func TestSweepProgress(t *testing.T) {
	ResetMemo()
	var last, total int
	o := Options{Progress: func(d, n int) { last, total = d, n }}
	Fig1(o)
	// fig1 quick scale: 3 protocols x 5 bandwidths x 1 seed.
	if last != 15 || total != 15 {
		t.Errorf("progress ended at %d/%d, want 15/15", last, total)
	}
}
