package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/workload"
)

// Predictive evaluates the Section 7 future-work extension: BASH with a
// last-owner destination-set predictor. The predicted multicast makes most
// unicast-mode requests sufficient on their first instance, recovering
// snooping's cache-to-cache latency at close to unicast bandwidth — it
// should therefore beat plain BASH exactly where indirections dominate
// (scarce bandwidth, sharing-heavy traffic).
func Predictive(o Options) *TableResult {
	warm, measure := o.ops()
	nodes := 16
	t := &TableResult{
		ID:    "predictive",
		Title: "Destination-set prediction (Section 7 future work; locking microbenchmark, 16 processors)",
		Columns: []string{
			"protocol", "bandwidth (MB/s)", "throughput (ops/ns)",
			"miss latency (ns)", "retries/op", "pred hit rate",
		},
		Notes: []string{
			"BASH-pred adds the predicted owner to non-broadcast masks;",
			"a correct prediction avoids the 255 ns retry indirection entirely",
		},
	}
	// One job per (bandwidth, protocol) cell; the rows need CacheStats in
	// addition to Metrics, so each job renders its own row and the runner
	// folds them back in sweep order.
	type job struct {
		bw float64
		p  core.Protocol
	}
	var jobs []job
	for _, bw := range []float64{400, 800, 1600, 4000} {
		for _, p := range []core.Protocol{core.BASH, core.BashPredictive, core.Snooping, core.Directory} {
			jobs = append(jobs, job{bw: bw, p: p})
		}
	}
	label := func(i int) string {
		return fmt.Sprintf("predictive %s bw=%g", jobs[i].p, jobs[i].bw)
	}
	rows, err := runner.Map(len(jobs), o.runnerOptions(label), func(i int) ([]string, error) {
		j := jobs[i]
		sys, release := leaseSystem(o, core.Config{
			Protocol:         j.p,
			Nodes:            nodes,
			BandwidthMBs:     j.bw,
			Seed:             21,
			WatchdogInterval: o.watchdogInterval(),
		})
		defer release()
		lk := workload.NewLocking(128*nodes, 0)
		for i, a := range lk.WarmBlocks() {
			sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
		}
		sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
		m := sys.Measure(warm, measure)
		st := sys.CacheStats()
		hitRate := "-"
		if st.Predicted > 0 {
			hitRate = fmt.Sprintf("%.2f", float64(st.PredictedHits)/float64(st.Predicted))
		}
		retriesPerOp := float64(m.Retries) / float64(m.Ops+1)
		return []string{
			j.p.String(), fmt.Sprintf("%g", j.bw),
			fmt.Sprintf("%.5f", m.Throughput),
			fmt.Sprintf("%.0f", m.AvgMissLatency),
			fmt.Sprintf("%.3f", retriesPerOp),
			hitRate,
		}, nil
	})
	if err != nil {
		panic(abort{err})
	}
	t.Rows = rows
	return t
}
