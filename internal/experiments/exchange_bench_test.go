package experiments

// BenchmarkCellFetchVsSimulate quantifies the tentpole claim of the peer
// cell exchange: downloading a published cell over the wire (HTTP fetch +
// fail-closed decode + raw install) must be at least an order of magnitude
// cheaper than re-simulating it. The CI bench script parses the two
// sub-benchmark timings and fails the build if fetch*10 > simulate.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cellstore"
	"repro/internal/core"
	"repro/internal/dist"
)

func BenchmarkCellFetchVsSimulate(b *testing.B) {
	o := Options{}
	warm, measure := o.ops()
	rc := runConfig{
		protocol: core.BASH, nodes: 16, bandwidth: 1600,
		seed: 42, warm: warm, measure: measure,
	}
	key := rc.cacheKey()

	// Publish the cell once, then stand up a coordinator whose own store
	// holds it — the fetch path a cold worker would hit.
	warmDir, coldDir := b.TempDir(), b.TempDir()
	metrics := runOne(o, rc)
	if err := cellstore.For(warmDir).Put(key, metrics); err != nil {
		b.Fatalf("publish cell: %v", err)
	}
	coord := dist.NewCoordinator(dist.CoordinatorOptions{CacheDir: warmDir})
	srv := httptest.NewServer(coord.Handler())
	b.Cleanup(srv.Close)
	cold := cellstore.For(coldDir)

	b.Run("fetch", func(b *testing.B) {
		body, err := json.Marshal(map[string]string{"worker": "bench", "key": key})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(srv.URL+"/dist/fetch", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatalf("fetch: %v", err)
			}
			var out struct {
				Found bool   `json:"found"`
				Raw   []byte `json:"raw"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil || !out.Found {
				b.Fatalf("fetch reply: found=%v err=%v", out.Found, err)
			}
			var m core.Metrics
			if err := cellstore.DecodeRaw(out.Raw, key, &m); err != nil {
				b.Fatalf("decode fetched cell: %v", err)
			}
			if err := cold.PutRaw(key, out.Raw); err != nil {
				b.Fatalf("install fetched cell: %v", err)
			}
		}
	})

	b.Run("simulate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOne(o, rc)
		}
	})
}
