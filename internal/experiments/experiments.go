// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 4 and 5). Each runner returns a Figure (series of
// x/y points with error bars) or a TableResult, both renderable as TSV or
// aligned text. The experiment index is the registry: ExperimentIDs (IDs
// here) enumerates it programmatically, and `cmd/bashsim -list` from the
// command line.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cellstore"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Series is one labelled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Err  []float64 // one standard deviation (paper: drawn when CoV > 1%)
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// TSV renders the figure as one row per x value, one column per series.
func (f *Figure) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%s\t+/-", s.Name)
	}
	b.WriteByte('\n')
	xs := f.xs()
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if i := indexOf(s.X, x); i >= 0 {
				e := 0.0
				if i < len(s.Err) {
					e = s.Err[i]
				}
				fmt.Fprintf(&b, "\t%.6g\t%.2g", s.Y[i], e)
			} else {
				b.WriteString("\t\t")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (f *Figure) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func indexOf(xs []float64, x float64) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// TableResult is a reproduced table.
type TableResult struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// TSV renders the table.
func (t *TableResult) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Scale trades fidelity for runtime.
type Scale int

// Scales. Quick keeps unit tests and benchmarks fast; Full is the
// EXPERIMENTS.md configuration.
const (
	Quick Scale = iota
	Full
)

// Options configures the experiment runners.
type Options struct {
	Scale Scale
	// Seeds for multi-run error bars; nil selects per-scale defaults.
	Seeds []uint64
	// Parallel bounds the worker goroutines used for simulation sweeps:
	// 0 selects one per CPU, 1 runs serially. Results are folded in job
	// order either way, so the output is identical at any setting.
	Parallel int
	// Progress, if non-nil, observes sweep completion: it is called after
	// each simulated cell with (done, total) for the current sweep.
	Progress func(done, total int)
	// Context cancels long sweeps; Run returns its error. Nil means no
	// cancellation.
	Context context.Context
	// WatchdogInterval is the forward-progress watchdog interval for sweep
	// cells in simulated nanoseconds; 0 selects the 500 ms default. Raise
	// it for full-scale >=256-node cells, whose slowest protocol/bandwidth
	// corners can legitimately exceed the default between completions.
	WatchdogInterval sim.Time
	// CacheDir, when non-empty, persists simulated cell results in a
	// content-addressed store under this directory (see internal/cellstore)
	// so later invocations — including after an interrupted run — replay
	// unchanged cells without simulating. Empty disables persistence.
	CacheDir string
	// NoReuse disables System pooling: every cell constructs a fresh
	// core.System instead of leasing a re-seeded one. Results are identical
	// either way (the determinism tests assert it); the switch exists for
	// benchmarking and fault isolation.
	NoReuse bool
	// NoRecycle disables the simulator's hot-path free lists (packets,
	// network messages, line/txn records, directory entries) for every
	// cell: records are allocated fresh and garbage-collected instead of
	// recycled. Results are byte-identical either way (the determinism
	// tests assert it); the switch exists for benchmarking the free lists
	// and for fault isolation. Orthogonal to NoReuse.
	NoRecycle bool
	// Backend, when non-nil, executes simulation cells as serializable jobs
	// through the given runner.Backend (runner.LocalBackend for the
	// in-process executor path, a dist.Coordinator for worker processes on
	// other machines) instead of calling the simulator directly. Cells
	// already present in the in-process memo or the persistent store are
	// served locally; only misses are dispatched. Every backend folds
	// results in job order, so the output is byte-identical to the default
	// nil (direct in-process) path. The predictive experiment inspects
	// simulator internals beyond a cell's Metrics and always runs locally.
	Backend runner.Backend
}

// runnerOptions adapts Options to the orchestration layer for one sweep.
func (o Options) runnerOptions(label func(i int) string) runner.Options {
	return runner.Options{
		Workers:  o.Parallel,
		Context:  o.Context,
		Progress: o.Progress,
		Label:    label,
	}
}

func (o Options) seeds() []uint64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	if o.Scale == Full {
		return []uint64{11, 23}
	}
	return []uint64{11}
}

func (o Options) ops() (warm, measure uint64) {
	if o.Scale == Full {
		return 4000, 16000
	}
	return 800, 2400
}

// bandwidths returns the endpoint-bandwidth sweep (MB/s, log-spaced), the
// x-axis of Figures 1, 5, 6, 7, 10 and 11.
func (o Options) bandwidths() []float64 {
	if o.Scale == Full {
		return []float64{100, 200, 400, 600, 900, 1300, 1900, 2800, 4200, 6300, 9500, 14000}
	}
	return []float64{200, 600, 1600, 4200, 10000}
}

// the protocols compared throughout the evaluation, in the paper's order.
var evalProtocols = []core.Protocol{core.Snooping, core.BASH, core.Directory}

// runConfig describes one simulated data point. It is the key of both the
// in-process cell memo and (hashed, via cacheKey) the persistent cell
// store, so every field that influences the simulation must appear here.
type runConfig struct {
	protocol      core.Protocol
	nodes         int
	bandwidth     float64
	broadcastCost float64
	think         sim.Time
	workloadName  string // "" selects the locking microbenchmark
	threshold     int    // BASH utilization threshold (0 = default 75)
	interval      sim.Time
	policyBits    uint
	seed          uint64
	warm, measure uint64
	watchdog      sim.Time // watchdog interval (0 = default 500 ms)
}

// cellFormat versions the persistent cell store's key space: bump it when a
// cell's semantics change (simulation model, metrics definition, runConfig
// fields), orphaning stale entries instead of replaying them.
// (v2: BASH retry-buffer slots keyed by requestor+txn, fixing cross-node
// TxnID collisions that undercounted nacks.)
const cellFormat = 2

// defaultWatchdogInterval is the per-cell forward-progress watchdog default
// (simulated ns) applied when neither Options nor the cell specify one.
const defaultWatchdogInterval sim.Time = 500_000_000

// watchdogInterval resolves Options.WatchdogInterval against the default.
func (o Options) watchdogInterval() sim.Time {
	if o.WatchdogInterval > 0 {
		return o.WatchdogInterval
	}
	return defaultWatchdogInterval
}

// cacheKey renders the full configuration of one cell as the persistent
// store's content address. Every runConfig field appears, plus the format
// version and the binary fingerprint — results from a different build of
// the simulator are never replayed. Only the watchdog default is
// normalized (0 and the explicit default share an entry); the adaptive
// fields (threshold/interval/bits) are rendered raw, so a cell written
// with an explicit adaptive default keys separately from its zero-valued
// twin — same split the in-process memo has, costing at most one duplicate
// simulation per such pair. Two invocations with an equal key are
// guaranteed the same Metrics.
func (rc runConfig) cacheKey() string {
	wd := rc.watchdog
	if wd == 0 {
		wd = defaultWatchdogInterval
	}
	return fmt.Sprintf("bashsim-cell-v%d|bin=%s|proto=%d|nodes=%d|bw=%g|bcost=%g|think=%d|wl=%q|thresh=%d|interval=%d|bits=%d|seed=%d|warm=%d|measure=%d|watchdog=%d",
		cellFormat, cellstore.Fingerprint(), int(rc.protocol), rc.nodes, rc.bandwidth, rc.broadcastCost,
		rc.think, rc.workloadName, rc.threshold, rc.interval, rc.policyBits,
		rc.seed, rc.warm, rc.measure, wd)
}

// makeWorkload builds the generator and the warm-start block list.
func makeWorkload(rc runConfig) (core.Workload, []coherence.Addr) {
	if rc.workloadName == "" {
		locks := 128 * rc.nodes
		lk := workload.NewLocking(locks, rc.think)
		return lk, lk.WarmBlocks()
	}
	w := workload.ByName(rc.workloadName)
	if w == nil {
		panic("experiments: unknown workload " + rc.workloadName)
	}
	return w, w.WarmBlocks()
}

// sysPool recycles Systems across sweep cells. Workers lease a structurally
// compatible System per cell (re-seeded via core.System.Reset) instead of
// constructing one, which removes the dominant remaining per-cell cost; see
// BenchmarkSystemReuse. Options.NoReuse bypasses it.
var sysPool = core.NewPool()

// simCount counts actual simulations (runOne executions) process-wide. The
// persistent-cache tests assert a warm cache performs zero of them, and the
// CLIs report it alongside cache hit/miss counts.
var simCount atomic.Uint64

// Simulations returns the number of cells actually simulated (as opposed to
// served from the in-process memo or the persistent store) by this process.
func Simulations() uint64 { return simCount.Load() }

// leaseSystem checks a System for cfg out of the pool (or builds one fresh
// under Options.NoReuse) and returns it with its release function.
func leaseSystem(o Options, cfg core.Config) (*core.System, func()) {
	if o.NoReuse {
		return core.NewSystem(cfg), func() {}
	}
	s := sysPool.Get(cfg)
	return s, func() { sysPool.Put(s) }
}

// runOne simulates one data point. Warm-up and measurement operation
// counts are scaled with system size (relative to the 16-processor
// baseline) so that every processor sees enough misses for the adaptive
// mechanism to reach steady state — the paper's mechanism needs ~130k
// cycles (~1000 misses per processor) to swing across its full range.
func runOne(o Options, rc runConfig) core.Metrics {
	simCount.Add(1)
	if rc.nodes > 16 {
		scale := uint64(rc.nodes / 16)
		rc.warm *= scale
		rc.measure *= scale
	}
	wd := rc.watchdog
	if wd == 0 {
		wd = defaultWatchdogInterval
	}
	cfg := core.Config{
		Protocol:         rc.protocol,
		Nodes:            rc.nodes,
		BandwidthMBs:     rc.bandwidth,
		BroadcastCost:    rc.broadcastCost,
		Seed:             rc.seed,
		WatchdogInterval: wd,
		NoRecycle:        o.NoRecycle,
	}
	cfg.Adaptive.ThresholdPercent = rc.threshold
	cfg.Adaptive.Interval = rc.interval
	cfg.Adaptive.PolicyBits = rc.policyBits
	sys, release := leaseSystem(o, cfg)
	defer release()
	wl, warm := makeWorkload(rc)
	for i, a := range warm {
		sys.PreheatOwned(a, network.NodeID(i%rc.nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return wl })
	return sys.Measure(rc.warm, rc.measure)
}

// cellMemo caches runOne results per runConfig within one process. Several
// figures share identical (protocol, bandwidth, seed) cells — Figures 1, 5
// and 6 present one sweep three ways, Figure 12 re-measures Figure 11's
// 1600 MB/s column, Figure 9's zero-think point is Figure 1's mid cell —
// and every run is a pure deterministic function of its runConfig, so each
// distinct cell is simulated exactly once per process.
var cellMemo sync.Map // runConfig -> core.Metrics

// memoHits counts cells served straight from the in-process memo,
// process-wide like simCount; with Simulations and Fetched it completes the
// where-did-this-cell-come-from accounting on /metrics.
var memoHits atomic.Uint64

// MemoHits returns the number of cells this process served from the
// in-process memo rather than the persistent store, the fleet, or a fresh
// simulation.
func MemoHits() uint64 { return memoHits.Load() }

// lookupCell consults the in-process memo, then (when Options.CacheDir is
// set) the persistent cell store, without simulating.
func lookupCell(o Options, rc runConfig) (core.Metrics, bool) {
	if v, ok := cellMemo.Load(rc); ok {
		memoHits.Add(1)
		return v.(core.Metrics), true
	}
	if st := cellstore.For(o.CacheDir); st != nil {
		var m core.Metrics
		if st.Get(rc.cacheKey(), &m) {
			v, _ := cellMemo.LoadOrStore(rc, m)
			return v.(core.Metrics), true
		}
	}
	return core.Metrics{}, false
}

// storeCell writes a freshly obtained result through both cache layers (the
// persistent write is best-effort: a failure only re-simulates later) and
// returns the canonical memoized value.
func storeCell(o Options, rc runConfig, m core.Metrics) core.Metrics {
	if st := cellstore.For(o.CacheDir); st != nil {
		st.Put(rc.cacheKey(), m)
	}
	v, _ := cellMemo.LoadOrStore(rc, m)
	return v.(core.Metrics)
}

// fetchCount counts cells obtained from the fleet (peer cell exchange)
// instead of being simulated, process-wide like simCount.
var fetchCount atomic.Uint64

// Fetched returns the number of cells this process installed via the peer
// cell exchange rather than simulating.
func Fetched() uint64 { return fetchCount.Load() }

// fetchCell asks the fleet for rc's cell through the runner's key-fetcher
// seam (installed by dist.RunWorker; absent outside a worker). Fetched
// bytes are verified against the content-addressed key — the key embeds
// the binary fingerprint, so a mismatched build's entry can never decode
// here — then written through both cache layers. Every failure degrades to
// ok=false and the caller simulates: a false positive in a peer's
// indicator costs one round-trip, never a wrong result.
func fetchCell(o Options, rc runConfig) (core.Metrics, bool) {
	key := rc.cacheKey()
	raw, ok := runner.FetchKey(key)
	if !ok {
		return core.Metrics{}, false
	}
	var m core.Metrics
	if err := cellstore.DecodeRaw(raw, key, &m); err != nil {
		return core.Metrics{}, false
	}
	if st := cellstore.For(o.CacheDir); st != nil {
		st.PutRaw(key, raw) // best-effort: this worker can now serve relays for it
	}
	fetchCount.Add(1)
	v, _ := cellMemo.LoadOrStore(rc, m)
	return v.(core.Metrics), true
}

// runMemo returns the metrics for rc, consulting the in-process memo, then
// (when Options.CacheDir is set) the persistent cell store, then the fleet
// via the peer cell exchange, and simulating only when all three miss.
// Fresh results are written through to both cache layers, so an
// interrupted full-scale run resumes where it left off.
func runMemo(o Options, rc runConfig) core.Metrics {
	if m, ok := lookupCell(o, rc); ok {
		return m
	}
	if m, ok := fetchCell(o, rc); ok {
		return m
	}
	return storeCell(o, rc, runOne(o, rc))
}

// CacheCounters reports the persistent cell store's hit/miss/write counts
// for dir (zeros when no store was opened there). The CLIs print these with
// their progress output.
func CacheCounters(dir string) (hits, misses, writes uint64) {
	if st := cellstore.For(dir); st != nil {
		return st.Counters()
	}
	return 0, 0, 0
}

// ResetMemo drops every memoized cell, forcing subsequent runs to
// re-simulate. Benchmarks and determinism tests use it so repeated
// invocations measure simulation rather than cache lookups.
func ResetMemo() {
	cellMemo.Range(func(k, _ any) bool {
		cellMemo.Delete(k)
		return true
	})
}

// abort carries a sweep failure (cancellation or a captured simulation
// panic) out of a figure function; Run recovers it into an error, so the
// figure functions keep their plain signatures.
type abort struct{ err error }

func (a abort) Error() string { return a.err.Error() }

// sweepResult aggregates one (protocol, x) cell across seeds.
type sweepResult struct {
	throughput  stats.Accumulator
	utilization stats.Accumulator
	missLatency stats.Accumulator
	broadcast   stats.Accumulator
}

// runSweep evaluates base across seeds for every (protocol, x) combination,
// where vary mutates the config for each x. Every run is an independent
// single-threaded simulation, so the sweep fans out across the runner's
// worker pool; runner.Map folds results in job order, so cells accumulate
// seeds deterministically regardless of completion order or worker count.
func runSweep(o Options, protocols []core.Protocol, xs []float64, base runConfig,
	seeds []uint64, vary func(rc *runConfig, x float64)) map[core.Protocol][]*sweepResult {

	base.watchdog = o.WatchdogInterval
	type job struct {
		pi, xi int
		rc     runConfig
	}
	var jobs []job
	for pi, p := range protocols {
		for xi, x := range xs {
			for _, seed := range seeds {
				rc := base
				rc.protocol = p
				rc.seed = seed
				vary(&rc, x)
				jobs = append(jobs, job{pi: pi, xi: xi, rc: rc})
			}
		}
	}
	label := func(i int) string {
		j := jobs[i]
		return fmt.Sprintf("cell %s x=%g seed=%d", protocols[j.pi], xs[j.xi], j.rc.seed)
	}
	rcs := make([]runConfig, len(jobs))
	for i, j := range jobs {
		rcs[i] = j.rc
	}
	results := runCells(o, rcs, label)

	out := make(map[core.Protocol][]*sweepResult)
	for _, p := range protocols {
		cells := make([]*sweepResult, len(xs))
		for xi := range xs {
			cells[xi] = &sweepResult{}
		}
		out[p] = cells
	}
	for ji, j := range jobs {
		m := results[ji]
		cell := out[protocols[j.pi]][j.xi]
		cell.throughput.Add(m.Throughput)
		cell.utilization.Add(m.Utilization)
		cell.missLatency.Add(m.AvgMissLatency)
		cell.broadcast.Add(m.BroadcastFraction)
	}
	return out
}

// seriesFrom builds a Series from per-cell accumulators via sel, normalized
// by norm (pass 1 for raw values).
func seriesFrom(name string, xs []float64, cells []*sweepResult,
	sel func(*sweepResult) *stats.Accumulator, norm float64) Series {

	s := Series{Name: name}
	for i, x := range xs {
		a := sel(cells[i])
		s.X = append(s.X, x)
		s.Y = append(s.Y, a.Mean()/norm)
		s.Err = append(s.Err, a.StdDev()/norm)
	}
	return s
}

// maxThroughput finds the largest mean throughput across protocols/cells
// (the paper normalizes several figures to the best configuration).
func maxThroughput(m map[core.Protocol][]*sweepResult) float64 {
	best := 0.0
	for _, cells := range m {
		for _, c := range cells {
			if v := c.throughput.Mean(); v > best {
				best = v
			}
		}
	}
	if best == 0 {
		return 1
	}
	return best
}
