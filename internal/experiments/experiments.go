// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 4 and 5). Each runner returns a Figure (series of
// x/y points with error bars) or a TableResult, both renderable as TSV or
// aligned text. The experiment index is the registry: ExperimentIDs (IDs
// here) enumerates it programmatically, and `cmd/bashsim -list` from the
// command line.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Series is one labelled curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Err  []float64 // one standard deviation (paper: drawn when CoV > 1%)
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// TSV renders the figure as one row per x value, one column per series.
func (f *Figure) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	b.WriteString(f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\t%s\t+/-", s.Name)
	}
	b.WriteByte('\n')
	xs := f.xs()
	for _, x := range xs {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if i := indexOf(s.X, x); i >= 0 {
				e := 0.0
				if i < len(s.Err) {
					e = s.Err[i]
				}
				fmt.Fprintf(&b, "\t%.6g\t%.2g", s.Y[i], e)
			} else {
				b.WriteString("\t\t")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (f *Figure) xs() []float64 {
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	return xs
}

func indexOf(xs []float64, x float64) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

// TableResult is a reproduced table.
type TableResult struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// TSV renders the table.
func (t *TableResult) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	b.WriteString(strings.Join(t.Columns, "\t"))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Scale trades fidelity for runtime.
type Scale int

// Scales. Quick keeps unit tests and benchmarks fast; Full is the
// EXPERIMENTS.md configuration.
const (
	Quick Scale = iota
	Full
)

// Options configures the experiment runners.
type Options struct {
	Scale Scale
	// Seeds for multi-run error bars; nil selects per-scale defaults.
	Seeds []uint64
	// Parallel bounds the worker goroutines used for simulation sweeps:
	// 0 selects one per CPU, 1 runs serially. Results are folded in job
	// order either way, so the output is identical at any setting.
	Parallel int
	// Progress, if non-nil, observes sweep completion: it is called after
	// each simulated cell with (done, total) for the current sweep.
	Progress func(done, total int)
	// Context cancels long sweeps; Run returns its error. Nil means no
	// cancellation.
	Context context.Context
}

// runnerOptions adapts Options to the orchestration layer for one sweep.
func (o Options) runnerOptions(label func(i int) string) runner.Options {
	return runner.Options{
		Workers:  o.Parallel,
		Context:  o.Context,
		Progress: o.Progress,
		Label:    label,
	}
}

func (o Options) seeds() []uint64 {
	if len(o.Seeds) > 0 {
		return o.Seeds
	}
	if o.Scale == Full {
		return []uint64{11, 23}
	}
	return []uint64{11}
}

func (o Options) ops() (warm, measure uint64) {
	if o.Scale == Full {
		return 4000, 16000
	}
	return 800, 2400
}

// bandwidths returns the endpoint-bandwidth sweep (MB/s, log-spaced), the
// x-axis of Figures 1, 5, 6, 7, 10 and 11.
func (o Options) bandwidths() []float64 {
	if o.Scale == Full {
		return []float64{100, 200, 400, 600, 900, 1300, 1900, 2800, 4200, 6300, 9500, 14000}
	}
	return []float64{200, 600, 1600, 4200, 10000}
}

// the protocols compared throughout the evaluation, in the paper's order.
var evalProtocols = []core.Protocol{core.Snooping, core.BASH, core.Directory}

// runConfig describes one simulated data point.
type runConfig struct {
	protocol      core.Protocol
	nodes         int
	bandwidth     float64
	broadcastCost float64
	think         sim.Time
	workloadName  string // "" selects the locking microbenchmark
	threshold     int    // BASH utilization threshold (0 = default 75)
	interval      sim.Time
	policyBits    uint
	seed          uint64
	warm, measure uint64
}

// makeWorkload builds the generator and the warm-start block list.
func makeWorkload(rc runConfig) (core.Workload, []coherence.Addr) {
	if rc.workloadName == "" {
		locks := 128 * rc.nodes
		lk := workload.NewLocking(locks, rc.think)
		return lk, lk.WarmBlocks()
	}
	w := workload.ByName(rc.workloadName)
	if w == nil {
		panic("experiments: unknown workload " + rc.workloadName)
	}
	return w, w.WarmBlocks()
}

// runOne simulates one data point. Warm-up and measurement operation
// counts are scaled with system size (relative to the 16-processor
// baseline) so that every processor sees enough misses for the adaptive
// mechanism to reach steady state — the paper's mechanism needs ~130k
// cycles (~1000 misses per processor) to swing across its full range.
func runOne(rc runConfig) core.Metrics {
	if rc.nodes > 16 {
		scale := uint64(rc.nodes / 16)
		rc.warm *= scale
		rc.measure *= scale
	}
	cfg := core.Config{
		Protocol:         rc.protocol,
		Nodes:            rc.nodes,
		BandwidthMBs:     rc.bandwidth,
		BroadcastCost:    rc.broadcastCost,
		Seed:             rc.seed,
		WatchdogInterval: 500_000_000,
	}
	cfg.Adaptive.ThresholdPercent = rc.threshold
	cfg.Adaptive.Interval = rc.interval
	cfg.Adaptive.PolicyBits = rc.policyBits
	sys := core.NewSystem(cfg)
	wl, warm := makeWorkload(rc)
	for i, a := range warm {
		sys.PreheatOwned(a, network.NodeID(i%rc.nodes), uint64(i)+1)
	}
	sys.AttachWorkload(func(network.NodeID) core.Workload { return wl })
	return sys.Measure(rc.warm, rc.measure)
}

// cellMemo caches runOne results per runConfig within one process. Several
// figures share identical (protocol, bandwidth, seed) cells — Figures 1, 5
// and 6 present one sweep three ways, Figure 12 re-measures Figure 11's
// 1600 MB/s column, Figure 9's zero-think point is Figure 1's mid cell —
// and every run is a pure deterministic function of its runConfig, so each
// distinct cell is simulated exactly once per process.
var cellMemo sync.Map // runConfig -> core.Metrics

// runMemo returns the memoized metrics for rc, simulating on first use.
func runMemo(rc runConfig) core.Metrics {
	if v, ok := cellMemo.Load(rc); ok {
		return v.(core.Metrics)
	}
	m := runOne(rc)
	v, _ := cellMemo.LoadOrStore(rc, m)
	return v.(core.Metrics)
}

// ResetMemo drops every memoized cell, forcing subsequent runs to
// re-simulate. Benchmarks and determinism tests use it so repeated
// invocations measure simulation rather than cache lookups.
func ResetMemo() {
	cellMemo.Range(func(k, _ any) bool {
		cellMemo.Delete(k)
		return true
	})
}

// abort carries a sweep failure (cancellation or a captured simulation
// panic) out of a figure function; Run recovers it into an error, so the
// figure functions keep their plain signatures.
type abort struct{ err error }

func (a abort) Error() string { return a.err.Error() }

// sweepResult aggregates one (protocol, x) cell across seeds.
type sweepResult struct {
	throughput  stats.Accumulator
	utilization stats.Accumulator
	missLatency stats.Accumulator
	broadcast   stats.Accumulator
}

// runSweep evaluates base across seeds for every (protocol, x) combination,
// where vary mutates the config for each x. Every run is an independent
// single-threaded simulation, so the sweep fans out across the runner's
// worker pool; runner.Map folds results in job order, so cells accumulate
// seeds deterministically regardless of completion order or worker count.
func runSweep(o Options, protocols []core.Protocol, xs []float64, base runConfig,
	seeds []uint64, vary func(rc *runConfig, x float64)) map[core.Protocol][]*sweepResult {

	type job struct {
		pi, xi int
		rc     runConfig
	}
	var jobs []job
	for pi, p := range protocols {
		for xi, x := range xs {
			for _, seed := range seeds {
				rc := base
				rc.protocol = p
				rc.seed = seed
				vary(&rc, x)
				jobs = append(jobs, job{pi: pi, xi: xi, rc: rc})
			}
		}
	}
	label := func(i int) string {
		j := jobs[i]
		return fmt.Sprintf("cell %s x=%g seed=%d", protocols[j.pi], xs[j.xi], j.rc.seed)
	}
	results, err := runner.Map(len(jobs), o.runnerOptions(label),
		func(i int) (core.Metrics, error) { return runMemo(jobs[i].rc), nil })
	if err != nil {
		panic(abort{err})
	}

	out := make(map[core.Protocol][]*sweepResult)
	for _, p := range protocols {
		cells := make([]*sweepResult, len(xs))
		for xi := range xs {
			cells[xi] = &sweepResult{}
		}
		out[p] = cells
	}
	for ji, j := range jobs {
		m := results[ji]
		cell := out[protocols[j.pi]][j.xi]
		cell.throughput.Add(m.Throughput)
		cell.utilization.Add(m.Utilization)
		cell.missLatency.Add(m.AvgMissLatency)
		cell.broadcast.Add(m.BroadcastFraction)
	}
	return out
}

// seriesFrom builds a Series from per-cell accumulators via sel, normalized
// by norm (pass 1 for raw values).
func seriesFrom(name string, xs []float64, cells []*sweepResult,
	sel func(*sweepResult) *stats.Accumulator, norm float64) Series {

	s := Series{Name: name}
	for i, x := range xs {
		a := sel(cells[i])
		s.X = append(s.X, x)
		s.Y = append(s.Y, a.Mean()/norm)
		s.Err = append(s.Err, a.StdDev()/norm)
	}
	return s
}

// maxThroughput finds the largest mean throughput across protocols/cells
// (the paper normalizes several figures to the best configuration).
func maxThroughput(m map[core.Protocol][]*sweepResult) float64 {
	best := 0.0
	for _, cells := range m {
		for _, c := range cells {
			if v := c.throughput.Mean(); v > best {
				best = v
			}
		}
	}
	if best == 0 {
		return 1
	}
	return best
}
