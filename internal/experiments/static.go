package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/network"
	"repro/internal/queueing"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TextResult is a free-form reproduced artifact (message-sequence charts).
type TextResult struct {
	ID    string
	Title string
	Body  string
}

// TSV renders the text result with a header comment.
func (t *TextResult) TSV() string {
	return fmt.Sprintf("# %s: %s\n%s", t.ID, t.Title, t.Body)
}

// Table1 reproduces Table 1: states, events and transitions per protocol,
// derived by introspecting this implementation's transition tables. The
// absolute counts depend on how a protocol is expressed (the paper says as
// much); the signal is the ratio: BASH needs roughly half again as many
// events and about twice the transitions of either base protocol.
func Table1(o Options) *TableResult {
	t := &TableResult{
		ID:    "table1",
		Title: "States, events, and transitions for BASH, Snooping, and Directory",
		Columns: []string{
			"Protocol",
			"Total states", "Total events", "Total transitions",
			"Cache states", "Cache events", "Cache trans.",
			"Mem/Dir states", "Mem/Dir events", "Mem/Dir trans.",
		},
		Notes: []string{
			"counts introspected from this implementation's transition tables",
			"paper's counts (its own encoding): BASH 21/23/114, Snooping 19/13/68, Directory 21/13/75",
		},
	}
	for _, p := range []core.Protocol{core.BASH, core.Snooping, core.Directory} {
		sys := core.NewSystem(core.Config{Protocol: p, Nodes: 2})
		row := coherence.Complexity(p.String(), sys.Nodes[0].Cache.Table(), sys.Nodes[0].Mem.Table())
		t.Rows = append(t.Rows, []string{
			row.Protocol,
			fmt.Sprint(row.TotalStates), fmt.Sprint(row.TotalEvents), fmt.Sprint(row.TotalTransitions),
			fmt.Sprint(row.CacheStates), fmt.Sprint(row.CacheEvents), fmt.Sprint(row.CacheTransitions),
			fmt.Sprint(row.MemStates), fmt.Sprint(row.MemEvents), fmt.Sprint(row.MemTransitions),
		})
	}
	return t
}

// Fig2 reproduces Figure 2: average queueing delay vs. utilization of the
// closed queueing model (N=16, S~exp(1), Z~exp(varies)), analytically and
// by simulation.
func Fig2(o Options) *Figure {
	points := 12
	completions := 20000
	if o.Scale == Full {
		points = 24
		completions = 200000
	}
	f := &Figure{
		ID:     "fig2",
		Title:  "Average queueing delay vs. utilization (closed queue, N=16, S~exp(1))",
		XLabel: "utilization (percent)",
		YLabel: "average queueing delay (service times)",
		Notes:  []string{"the knee of this curve motivates the 75% utilization target"},
	}
	ana := Series{Name: "analytic"}
	simu := Series{Name: "simulated"}
	for _, r := range queueing.Sweep(16, points) {
		x := 100 * r.Utilization
		ana.X = append(ana.X, x)
		ana.Y = append(ana.Y, r.QueueDelay)
		ana.Err = append(ana.Err, 0)
		sr := queueing.Simulate(16, r.MeanThink, completions, 42)
		simu.X = append(simu.X, x)
		simu.Y = append(simu.Y, sr.QueueDelay)
		simu.Err = append(simu.Err, 0)
	}
	f.Series = append(f.Series, ana, simu)
	return f
}

// Fig3 reproduces Figure 3: the example operation of the utilization
// counter (4 busy cycles of 7 at a 75% threshold gives a negative sample),
// plus the policy counter integrating a persistent overload.
func Fig3(o Options) *TableResult {
	t := &TableResult{
		ID:      "fig3",
		Title:   "Example operation of the utilization counter (threshold 75%)",
		Columns: []string{"cycle", "link", "counter"},
		Notes: []string{
			"paper increments +1/busy and -3/idle at 75%; this implementation scales",
			"both by 25 (+25/-75), preserving the sign the sampler uses",
			"4 busy cycles of 7 (57%) ends at -125 = 25 x the paper's -5",
		},
	}
	u := adaptive.NewUtilizationCounter(75, 0)
	pattern := []bool{true, false, true, true, false, false, true} // 4 of 7 busy
	for i, busy := range pattern {
		u.Tick(busy)
		link := "idle"
		if busy {
			link = "busy"
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(i + 1), link, fmt.Sprint(u.Value())})
	}
	above := u.SampleAndReset()
	t.Rows = append(t.Rows, []string{"sample", fmt.Sprintf("above-threshold=%v", above), fmt.Sprint(u.Value())})
	return t
}

// Fig4 reproduces Figure 4: message-sequence walkthroughs of a
// memory-to-cache transfer and a cache-to-cache transfer (with an
// invalidation) for Snooping, Directory, BASH broadcast and BASH unicast.
func Fig4(o Options) *TextResult {
	var b strings.Builder
	scenarios := []struct {
		name string
		p    core.Protocol
	}{
		{"Snooping (broadcast)", core.Snooping},
		{"Directory", core.Directory},
		{"BASH broadcast", core.BashAlwaysBroadcast},
		{"BASH unicast", core.BashAlwaysUnicast},
	}
	for _, sc := range scenarios {
		fmt.Fprintf(&b, "== %s: memory-to-cache transfer (P0 GetM, memory owner) ==\n", sc.name)
		b.WriteString(fig4Trace(sc.p, false))
		fmt.Fprintf(&b, "\n== %s: cache-to-cache transfer (P0 GetM; P1 owner, P3 sharer) ==\n", sc.name)
		b.WriteString(fig4Trace(sc.p, true))
		b.WriteByte('\n')
	}
	return &TextResult{
		ID:    "fig4",
		Title: "Protocol transaction walkthroughs (4 processors, home at node 2)",
		Body:  b.String(),
	}
}

// fig4Trace runs one transaction and returns its message-sequence chart.
func fig4Trace(p core.Protocol, cacheToCache bool) string {
	sys := core.NewSystem(core.Config{
		Protocol:      p,
		Nodes:         4,
		BandwidthMBs:  100000,
		EnableChecker: true,
	})
	// Block 2 is homed at node 2, leaving P0 (requestor), P1 (owner) and
	// P3 (sharer) in the paper's roles.
	addr := coherence.Addr(2)
	if cacheToCache {
		sys.PreheatOwned(addr, 1, 7)
		// P3 obtains an S copy organically (GetS), downgrading P1 to O.
		done := false
		sys.Nodes[3].Cache.Access(coherence.Op{Addr: addr}, func() { done = true })
		sys.Kernel.RunUntil(func() bool { return done })
		sys.Kernel.Run(sys.Kernel.Now() + 2000)
	}
	tr := sys.EnableTrace()
	done := false
	sys.Nodes[0].Cache.Access(coherence.Op{Store: true, Addr: addr}, func() { done = true })
	sys.Kernel.RunUntil(func() bool { return done })
	start := sys.Kernel.Now()
	sys.Kernel.Run(start + 500) // let trailing messages land
	return tr.String()
}

// Stability compares the probabilistic adaptive mechanism with the
// all-or-nothing switch ablation the paper reports as unstable
// (Section 2.1): it reports the per-sample variance of the broadcast
// probability in the contended mid-range.
func Stability(o Options) *TableResult {
	warm, measure := o.ops()
	t := &TableResult{
		ID:      "stability",
		Title:   "Probabilistic vs. all-or-nothing adaptation (mid-range bandwidth)",
		Columns: []string{"mechanism", "throughput (ops/ns)", "mean unicast prob", "prob std-dev", "flips"},
		Notes: []string{
			"the switch mechanism oscillates between 0% and 100% broadcast;",
			"the probabilistic policy counter settles to an intermediate mix (Section 2.1)",
		},
	}
	for _, p := range []core.Protocol{core.BASH, core.BashSwitch} {
		sys, release := leaseSystem(o, core.Config{
			Protocol:         p,
			Nodes:            16,
			BandwidthMBs:     1200,
			Seed:             5,
			WatchdogInterval: o.watchdogInterval(),
		})
		lk := makeLocking(sys, 0)
		sys.AttachWorkload(func(network.NodeID) core.Workload { return lk })
		sys.Start()
		sys.Kernel.RunUntil(func() bool { return sys.TotalOps() >= warm })
		// Sample node 0's unicast probability every interval.
		var probs []float64
		flips := 0
		stop := false
		var tick func()
		tick = func() {
			if stop {
				return
			}
			pr := sys.Nodes[0].Adaptive.UnicastProbability()
			if n := len(probs); n > 0 && (probs[n-1] < 0.5) != (pr < 0.5) {
				flips++
			}
			probs = append(probs, pr)
			sys.Kernel.Schedule(512, tick)
		}
		sys.Kernel.Schedule(512, tick)
		sys.Kernel.RunUntil(func() bool { return sys.TotalOps() >= warm+measure })
		stop = true
		// Capture the clock before quiescing: draining fires the parked
		// watchdog event, which would inflate the elapsed time.
		elapsed := float64(sys.Kernel.Now())
		ops := float64(sys.TotalOps())
		sys.Quiesce()
		mean, sd := meanStd(probs)
		thr := ops / elapsed
		release()
		t.Rows = append(t.Rows, []string{
			p.String(), fmt.Sprintf("%.5f", thr),
			fmt.Sprintf("%.3f", mean), fmt.Sprintf("%.3f", sd), fmt.Sprint(flips),
		})
	}
	return t
}

func makeLocking(sys *core.System, think sim.Time) core.Workload {
	nodes := sys.Net.Nodes()
	lk := workload.NewLocking(128*nodes, think)
	for i, a := range lk.WarmBlocks() {
		sys.PreheatOwned(a, network.NodeID(i%nodes), uint64(i)+1)
	}
	return lk
}

func meanStd(xs []float64) (mean, sd float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		sd += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(sd / float64(len(xs)))
}
