package experiments

import (
	"fmt"
	"sort"
)

// Renderable is any reproduced artifact.
type Renderable interface {
	TSV() string
}

// Runner regenerates one experiment.
type Runner func(Options) []Renderable

func one(r Renderable) []Renderable { return []Renderable{r} }

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig1":   func(o Options) []Renderable { return one(Fig1(o)) },
	"fig2":   func(o Options) []Renderable { return one(Fig2(o)) },
	"fig3":   func(o Options) []Renderable { return one(Fig3(o)) },
	"fig4":   func(o Options) []Renderable { return one(Fig4(o)) },
	"table1": func(o Options) []Renderable { return one(Table1(o)) },
	"fig5":   func(o Options) []Renderable { return one(Fig5(o)) },
	"fig6":   func(o Options) []Renderable { return one(Fig6(o)) },
	"fig7":   func(o Options) []Renderable { return one(Fig7(o)) },
	"fig8":   func(o Options) []Renderable { return one(Fig8(o)) },
	"fig9":   func(o Options) []Renderable { return one(Fig9(o)) },
	"fig10": func(o Options) []Renderable {
		var out []Renderable
		for _, f := range Fig10(o) {
			out = append(out, f)
		}
		return out
	},
	"fig11": func(o Options) []Renderable {
		var out []Renderable
		for _, f := range Fig11(o) {
			out = append(out, f)
		}
		return out
	},
	"fig12":             func(o Options) []Renderable { return one(Fig12(o)) },
	"stability":         func(o Options) []Renderable { return one(Stability(o)) },
	"ablation":          func(o Options) []Renderable { return one(Ablation(o)) },
	"predictive":        func(o Options) []Renderable { return one(Predictive(o)) },
	"migratory":         func(o Options) []Renderable { return one(Migratory(o)) },
	"producer-consumer": func(o Options) []Renderable { return one(ProducerConsumer(o)) },
}

// IDs lists the registered experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run regenerates one experiment by id. Sweep failures — cancellation via
// Options.Context, a deadline, or a simulation panic captured by the
// orchestration layer — are returned as errors rather than crashing.
func Run(id string, o Options) (arts []Renderable, err error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	defer func() {
		if rec := recover(); rec != nil {
			a, ok := rec.(abort)
			if !ok {
				panic(rec)
			}
			arts, err = nil, fmt.Errorf("experiments: %s: %w", id, a.err)
		}
	}()
	return r(o), nil
}
