package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestPersistentCellCache: a second Run against a warm .cache directory
// performs zero simulations and yields identical figures; corrupted cache
// files are ignored (re-simulated), never fatal.
func TestPersistentCellCache(t *testing.T) {
	dir := t.TempDir()
	o := Options{CacheDir: dir}

	ResetMemo()
	first := tsvOf(t, "fig1", o)
	if Simulations() == 0 {
		t.Fatal("cold run simulated nothing")
	}

	// Drop the in-process memo so only the disk store can satisfy cells.
	ResetMemo()
	before := Simulations()
	second := tsvOf(t, "fig1", o)
	if n := Simulations() - before; n != 0 {
		t.Errorf("warm-cache run simulated %d cells, want 0", n)
	}
	if first != second {
		t.Errorf("warm-cache TSV differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", first, second)
	}

	// Corrupt every stored file: the store must treat them as misses and
	// the run must re-simulate to the same output.
	var corrupted int
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		corrupted++
		return os.WriteFile(path, []byte("garbage"), 0o644)
	})
	if err != nil || corrupted == 0 {
		t.Fatalf("corrupting cache files: %v (%d files)", err, corrupted)
	}
	ResetMemo()
	before = Simulations()
	third := tsvOf(t, "fig1", o)
	if n := Simulations() - before; n == 0 {
		t.Error("corrupted cache served hits instead of re-simulating")
	}
	if first != third {
		t.Error("re-simulated TSV differs after cache corruption")
	}

	// And the rewritten entries serve the next run again.
	ResetMemo()
	before = Simulations()
	fourth := tsvOf(t, "fig1", o)
	if n := Simulations() - before; n != 0 {
		t.Errorf("re-warmed cache simulated %d cells, want 0", n)
	}
	if first != fourth {
		t.Error("re-warmed TSV differs")
	}
}

// TestCacheDisabled: with no CacheDir nothing is written anywhere, and an
// unusable cache directory degrades to plain simulation instead of failing.
func TestCacheDisabled(t *testing.T) {
	ResetMemo()
	before := Simulations()
	tsvOf(t, "fig3", Options{}) // fig3 is pure table arithmetic: 0 cells
	tsvOf(t, "fig3", Options{CacheDir: string([]byte{0})})
	if n := Simulations() - before; n != 0 {
		t.Errorf("fig3 simulated %d cells, want 0", n)
	}
}
