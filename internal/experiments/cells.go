package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Cell describes one simulation point for the exported RunCells entry
// point. It is the public mirror of the internal runConfig: every field
// that influences the simulation appears here, and two equal Cells are
// guaranteed equal Metrics. The campaign runner (internal/campaign) drives
// the figure grids through it incrementally, cell by cell and seed by
// seed, instead of through the fixed per-figure sweeps.
type Cell struct {
	Protocol      core.Protocol
	Nodes         int
	BandwidthMBs  float64
	BroadcastCost float64
	Think         sim.Time
	Workload      string // "" selects the locking microbenchmark
	Threshold     int    // BASH utilization threshold (0 = default 75)
	Interval      sim.Time
	PolicyBits    uint
	Seed          uint64
	// Warm and Measure override the per-scale operation counts; when both
	// are zero the Options scale defaults apply (matching what the figure
	// sweeps simulate, so campaign cells share their cache entries).
	Warm, Measure uint64
}

// SeedList resolves Options.Seeds against the per-scale defaults — the
// exact list the figure sweeps run with. The campaign runner seeds its
// per-cell escalation sequences from it.
func (o Options) SeedList() []uint64 { return o.seeds() }

func (c Cell) runConfig(o Options) runConfig {
	warm, measure := c.Warm, c.Measure
	if warm == 0 && measure == 0 {
		warm, measure = o.ops()
	}
	return runConfig{
		protocol: c.Protocol, nodes: c.Nodes, bandwidth: c.BandwidthMBs,
		broadcastCost: c.BroadcastCost, think: c.Think, workloadName: c.Workload,
		threshold: c.Threshold, interval: c.Interval, policyBits: c.PolicyBits,
		seed: c.Seed, warm: warm, measure: measure, watchdog: o.WatchdogInterval,
	}
}

// Key returns the content address under which the cell's result persists
// in the cell store (it embeds the binary fingerprint and format version).
func (c Cell) Key(o Options) string { return c.runConfig(o).cacheKey() }

// RunCells evaluates one simulation cell per entry and returns their
// metrics in input order. It is the exported face of the internal cell
// funnel: cells already in the in-process memo or the persistent store are
// served locally, misses dispatch through Options.Backend when one is set
// (or the in-process pool otherwise), and fresh results write through both
// cache layers. Unlike the figure runners it reports failure as an error
// rather than a panic, so a long-running caller can checkpoint and retry.
func RunCells(o Options, cells []Cell) (ms []core.Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			a, ok := r.(abort)
			if !ok {
				panic(r)
			}
			ms, err = nil, a.err
		}
	}()
	rcs := make([]runConfig, len(cells))
	for i, c := range cells {
		rcs[i] = c.runConfig(o)
	}
	label := func(i int) string {
		c := cells[i]
		return fmt.Sprintf("cell %s nodes=%d bw=%g wl=%q seed=%d",
			c.Protocol, c.Nodes, c.BandwidthMBs, c.Workload, c.Seed)
	}
	return runCells(o, rcs, label), nil
}
