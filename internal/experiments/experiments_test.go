package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// findSeries returns the named series of a figure.
func findSeries(t *testing.T, f *Figure, name string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("%s: series %q not found (have %v)", f.ID, name, func() []string {
		var n []string
		for _, s := range f.Series {
			n = append(n, s.Name)
		}
		return n
	}())
	return Series{}
}

// TestFig1Shape asserts the headline result: Directory leads when bandwidth
// is scarce, Snooping when it is plentiful (by a wide margin over
// Directory), and BASH stays near the better protocol everywhere.
func TestFig1Shape(t *testing.T) {
	f := Fig1(Options{})
	snoop := findSeries(t, f, "Snooping")
	bash := findSeries(t, f, "BASH")
	dir := findSeries(t, f, "Directory")
	last := len(snoop.Y) - 1

	if dir.Y[0] < snoop.Y[0] {
		t.Errorf("scarce bandwidth: Directory %.3f should beat Snooping %.3f", dir.Y[0], snoop.Y[0])
	}
	if snoop.Y[last] < 1.5*dir.Y[last] {
		t.Errorf("plentiful bandwidth: Snooping %.3f should dwarf Directory %.3f", snoop.Y[last], dir.Y[last])
	}
	for i := range bash.Y {
		best := snoop.Y[i]
		if dir.Y[i] > best {
			best = dir.Y[i]
		}
		if bash.Y[i] < 0.85*best {
			t.Errorf("x=%g: BASH %.3f fell below 85%% of best %.3f (not robust)",
				bash.X[i], bash.Y[i], best)
		}
	}
	// The mid-range win: somewhere BASH beats both static protocols.
	won := false
	for i := range bash.Y {
		if bash.Y[i] >= snoop.Y[i] && bash.Y[i] >= dir.Y[i] {
			won = true
		}
	}
	if !won {
		t.Error("BASH never matched or beat both static protocols")
	}
}

// TestFig6Shape: BASH holds the 75% utilization target in the constrained
// region and converges with Snooping when bandwidth is plentiful.
func TestFig6Shape(t *testing.T) {
	f := Fig6(Options{})
	bash := findSeries(t, f, "BASH")
	snoop := findSeries(t, f, "Snooping")
	dir := findSeries(t, f, "Directory")
	last := len(bash.Y) - 1

	if bash.Y[0] < 70 {
		t.Errorf("scarce bandwidth: BASH utilization %.1f%% below target", bash.Y[0])
	}
	if dir.Y[last] > 25 {
		t.Errorf("plentiful bandwidth: Directory utilization %.1f%% too high", dir.Y[last])
	}
	if diff := bash.Y[last] - snoop.Y[last]; diff > 1 || diff < -1 {
		t.Errorf("plentiful bandwidth: BASH %.1f%% should equal Snooping %.1f%% (always broadcast)",
			bash.Y[last], snoop.Y[last])
	}
	// Directory always uses less of the network than Snooping.
	for i := range dir.Y {
		if dir.Y[i] > snoop.Y[i] {
			t.Errorf("x=%g: Directory utilization %.1f above Snooping %.1f", dir.X[i], dir.Y[i], snoop.Y[i])
		}
	}
}

// TestFig9Shape: protocol choice flips with workload intensity — Directory
// wins at zero think time, Snooping at 1000 cycles (16p at quick scale
// shifts the crossover, so assert the trend: the Snooping-minus-Directory
// latency gap shrinks or flips as think time grows).
func TestFig9Shape(t *testing.T) {
	f := Fig9(Options{})
	snoop := findSeries(t, f, "Snooping")
	dir := findSeries(t, f, "Directory")
	bash := findSeries(t, f, "BASH")
	last := len(snoop.Y) - 1

	gapAt0 := snoop.Y[0] - dir.Y[0]
	gapAtEnd := snoop.Y[last] - dir.Y[last]
	if gapAtEnd >= gapAt0 {
		t.Errorf("snooping-vs-directory latency gap should shrink with think time: %0.f -> %.0f",
			gapAt0, gapAtEnd)
	}
	// With plentiful think time, Snooping's 125 ns c2c beats Directory's 255.
	if snoop.Y[last] >= dir.Y[last] {
		t.Errorf("at think=1000, Snooping latency %.0f should beat Directory %.0f",
			snoop.Y[last], dir.Y[last])
	}
	// BASH stays within 15% of the better protocol at the extremes.
	for _, i := range []int{0, last} {
		best := snoop.Y[i]
		if dir.Y[i] < best {
			best = dir.Y[i]
		}
		if bash.Y[i] > 1.15*best {
			t.Errorf("think=%g: BASH latency %.0f vs best %.0f", bash.X[i], bash.Y[i], best)
		}
	}
}

// TestFig12Shape: the per-workload winners flip, and BASH matches or
// exceeds the static winner on every workload (within 3%).
func TestFig12Shape(t *testing.T) {
	tbl := Fig12(Options{})
	vals := map[string]map[string]float64{}
	for _, row := range tbl.Rows {
		vals[row[0]] = map[string]float64{
			"BASH":      parse(t, row[1]),
			"Snooping":  parse(t, row[2]),
			"Directory": parse(t, row[3]),
		}
	}
	if vals["SPECjbb"]["Directory"] <= vals["SPECjbb"]["Snooping"] {
		t.Errorf("SPECjbb: Directory %.3f should beat Snooping %.3f (4x broadcast cost)",
			vals["SPECjbb"]["Directory"], vals["SPECjbb"]["Snooping"])
	}
	if vals["OLTP"]["Snooping"] < vals["OLTP"]["Directory"] {
		t.Errorf("OLTP: Snooping %.3f should not lose to Directory %.3f",
			vals["OLTP"]["Snooping"], vals["OLTP"]["Directory"])
	}
	for wl, v := range vals {
		best := v["Snooping"]
		if v["Directory"] > best {
			best = v["Directory"]
		}
		if 1.0 < 0.97*best { // BASH is the 1.0 normalization base
			t.Errorf("%s: BASH lost to a static protocol by >3%% (best %.3f)", wl, best)
		}
	}
}

func parse(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// TestTable1Counts: BASH needs more events and transitions than either base
// protocol at the memory controller, where the adaptive machinery lives.
func TestTable1Counts(t *testing.T) {
	tbl := Table1(Options{})
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tbl.Rows {
		byName[r[0]] = r
	}
	bashMemTrans := parse(t, byName["BASH"][9])
	snoopMemTrans := parse(t, byName["Snooping"][9])
	dirMemTrans := parse(t, byName["Directory"][9])
	if bashMemTrans <= snoopMemTrans || bashMemTrans <= dirMemTrans {
		t.Errorf("BASH memory controller (%v transitions) should exceed Snooping (%v) and Directory (%v)",
			bashMemTrans, snoopMemTrans, dirMemTrans)
	}
}

// TestFig2Agreement: the analytic and simulated queueing curves agree.
func TestFig2Agreement(t *testing.T) {
	f := Fig2(Options{})
	ana := findSeries(t, f, "analytic")
	simu := findSeries(t, f, "simulated")
	for i := range ana.Y {
		tol := 0.2*ana.Y[i] + 0.15
		d := ana.Y[i] - simu.Y[i]
		if d < -tol || d > tol {
			t.Errorf("x=%.1f%%: analytic %.3f vs simulated %.3f", ana.X[i], ana.Y[i], simu.Y[i])
		}
	}
}

// TestFig3Trace matches the paper's worked example.
func TestFig3Trace(t *testing.T) {
	tbl := Fig3(Options{})
	lastRow := tbl.Rows[len(tbl.Rows)-2] // final cycle before the sample row
	if lastRow[2] != "-125" {
		t.Errorf("final counter = %s, want -125 (25x the paper's -5)", lastRow[2])
	}
	sample := tbl.Rows[len(tbl.Rows)-1]
	if !strings.Contains(sample[1], "above-threshold=false") {
		t.Errorf("sample row = %v, want below-threshold", sample)
	}
}

// TestFig4Walkthroughs: each protocol's trace contains the expected message
// kinds (e.g. the BASH unicast cache-to-cache case must show a retry).
func TestFig4Walkthroughs(t *testing.T) {
	txt := Fig4(Options{}).Body
	sections := strings.Split(txt, "== ")
	find := func(header string) string {
		t.Helper()
		for _, s := range sections {
			if strings.HasPrefix(s, header) {
				return s
			}
		}
		t.Fatalf("section %q missing", header)
		return ""
	}
	snoopC2C := find("Snooping (broadcast): cache-to-cache")
	if strings.Count(snoopC2C, "Data") != 1 {
		t.Errorf("snooping c2c should have exactly one data transfer:\n%s", snoopC2C)
	}
	dirC2C := find("Directory: cache-to-cache")
	if !strings.Contains(dirC2C, "FwdGetM") {
		t.Errorf("directory c2c missing forward:\n%s", dirC2C)
	}
	bashU := find("BASH unicast: cache-to-cache")
	// The unicast misses the owner; the memory controller retries it as a
	// multicast (the same GetM appears again with a wider mask).
	if strings.Count(bashU, "GetM") < 4 {
		t.Errorf("BASH unicast c2c should show a retried multicast:\n%s", bashU)
	}
	if !strings.Contains(bashU, "Data") {
		t.Errorf("BASH unicast c2c missing data:\n%s", bashU)
	}
}

// TestStabilityAblation: the all-or-nothing switch flips far more often
// than the probabilistic mechanism in the contended mid-range.
func TestStabilityAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-size run")
	}
	tbl := Stability(Options{})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	adaptiveFlips := parse(t, tbl.Rows[0][4])
	switchFlips := parse(t, tbl.Rows[1][4])
	if switchFlips <= adaptiveFlips {
		t.Errorf("switch mode flips (%v) should exceed adaptive flips (%v)",
			switchFlips, adaptiveFlips)
	}
}

// TestAblationStaticMasksRecoverBases: always-broadcast ≈ more broadcasts,
// always-unicast ≈ zero broadcasts, and the adaptive policy lands between.
func TestAblationStaticMasksRecoverBases(t *testing.T) {
	tbl := Ablation(Options{})
	var rows [][]string
	for _, r := range tbl.Rows {
		if r[1] == "1600" && strings.HasPrefix(r[0], "BASH a") {
			rows = append(rows, r)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 mid-bandwidth static/adaptive rows, got %d", len(rows))
	}
	// rows: adaptive, always-broadcast, always-unicast.
	bcastFrac := func(r []string) float64 { return parse(t, r[3]) }
	if bcastFrac(rows[1]) != 1 {
		t.Errorf("always-broadcast fraction = %v", bcastFrac(rows[1]))
	}
	if bcastFrac(rows[2]) != 0 {
		t.Errorf("always-unicast fraction = %v", bcastFrac(rows[2]))
	}
	a := bcastFrac(rows[0])
	if a <= 0 || a > 1 {
		t.Errorf("adaptive fraction = %v", a)
	}
}

// TestRegistryRunsEverything enumerates the registry (quick scale) to catch
// wiring regressions; heavyweight entries are exercised by their own tests.
func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, id := range IDs() {
		arts, err := Run(id, Options{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(arts) == 0 {
			t.Fatalf("%s: no artifacts", id)
		}
		for _, a := range arts {
			if a.TSV() == "" {
				t.Fatalf("%s: empty artifact", id)
			}
		}
	}
}

// TestRunUnknownID returns a helpful error.
func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown id did not error")
	}
}

// TestFig8Shape: Directory scales nearly flat with system size while
// Snooping's per-processor performance collapses, and BASH tracks the
// better protocol at both extremes (quick scale stops at 64 processors).
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-size sweep")
	}
	f := Fig8(Options{})
	snoop := findSeries(t, f, "Snooping")
	dir := findSeries(t, f, "Directory")
	bash := findSeries(t, f, "BASH")
	last := len(dir.Y) - 1

	if dir.Y[last] < 0.6*dir.Y[0] {
		t.Errorf("Directory per-processor perf fell %0.2f -> %0.2f; should be near flat",
			dir.Y[0], dir.Y[last])
	}
	if snoop.Y[last] > 0.8*snoop.Y[0] {
		t.Errorf("Snooping per-processor perf %0.2f -> %0.2f; should collapse at scale",
			snoop.Y[0], snoop.Y[last])
	}
	for _, i := range []int{0, last} {
		best := snoop.Y[i]
		if dir.Y[i] > best {
			best = dir.Y[i]
		}
		if bash.Y[i] < 0.8*best {
			t.Errorf("N=%g: BASH %0.3f below 80%% of best %0.3f", bash.X[i], bash.Y[i], best)
		}
	}
}

// TestPredictiveShape: the destination-set predictor must dominate plain
// BASH at scarce bandwidth and achieve a high first-instance hit rate.
func TestPredictiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth sweep")
	}
	tbl := Predictive(Options{})
	var bashThr, predThr, predHit float64
	for _, r := range tbl.Rows {
		if r[1] != "400" {
			continue
		}
		switch r[0] {
		case "BASH":
			bashThr = parse(t, r[2])
		case "BASH-pred":
			predThr = parse(t, r[2])
			predHit = parse(t, r[5])
		}
	}
	if predThr < bashThr {
		t.Errorf("at 400 MB/s predictive %.5f should be at least plain BASH %.5f", predThr, bashThr)
	}
	if predHit < 0.7 {
		t.Errorf("prediction hit rate %.2f below 0.7", predHit)
	}
}
