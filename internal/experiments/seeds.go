package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSeeds parses a comma-separated seed list as accepted by the CLIs'
// -seeds flag ("11,23,37"). Whitespace around entries is tolerated. The
// list must be non-empty, every entry must be an unsigned 64-bit integer,
// and duplicates are rejected — each seed contributes one independent
// observation per cell, so repeating one would silently narrow the error
// bars without adding information.
func ParseSeeds(s string) ([]uint64, error) {
	var seeds []uint64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseUint(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: want an unsigned integer (example: -seeds 11,23,37)", part)
		}
		seeds = append(seeds, v)
	}
	if err := ValidateSeeds(seeds); err != nil {
		return nil, err
	}
	return seeds, nil
}

// ValidateSeeds checks an already-parsed seed list: it must be non-empty
// and free of duplicates. Submission paths (-submit, the service) call
// this on lists that arrive over the wire rather than through ParseSeeds.
func ValidateSeeds(seeds []uint64) error {
	if len(seeds) == 0 {
		return fmt.Errorf("empty seed list: want comma-separated integers like 11,23,37")
	}
	seen := make(map[uint64]bool, len(seeds))
	for _, v := range seeds {
		if seen[v] {
			return fmt.Errorf("duplicate seed %d: each seed must appear once", v)
		}
		seen[v] = true
	}
	return nil
}
