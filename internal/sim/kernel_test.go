package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(30, func() { got = append(got, 3) })
	k.Schedule(10, func() { got = append(got, 1) })
	k.Schedule(20, func() { got = append(got, 2) })
	k.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("now = %d, want 30", k.Now())
	}
}

func TestKernelTieBreakByScheduleOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of schedule order: %v", got)
		}
	}
}

func TestKernelNestedScheduling(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recur func()
	recur = func() {
		depth++
		if depth < 100 {
			k.Schedule(1, recur)
		}
	}
	k.Schedule(0, recur)
	k.Drain()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if k.Now() != 99 {
		t.Fatalf("now = %d, want 99", k.Now())
	}
}

func TestKernelRunHorizon(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Schedule(100, func() { fired++ })
	k.Run(50)
	if fired != 1 {
		t.Fatalf("fired = %d before horizon 50", fired)
	}
	if k.Now() != 50 {
		t.Fatalf("now = %d, want 50", k.Now())
	}
	k.Drain()
	if fired != 2 {
		t.Fatalf("fired = %d after drain", fired)
	}
}

func TestKernelPastSchedulePanics(t *testing.T) {
	k := NewKernel()
	k.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Drain()
}

func TestKernelStepEmpty(t *testing.T) {
	k := NewKernel()
	if k.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// TestKernelHeapProperty: events always fire in nondecreasing time order,
// for arbitrary schedules.
func TestKernelHeapProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		var last Time = -1
		ok := true
		for _, d := range delays {
			k.Schedule(Time(d), func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
			})
		}
		k.Drain()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestKernelTotalOrder cross-checks the 4-ary heap against a reference
// sort: for arbitrary schedules, events fire in exactly (time, seq) order.
func TestKernelTotalOrder(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel()
		type key struct {
			at  Time
			seq int
		}
		var want []key
		var got []key
		for i, d := range delays {
			at := Time(d)
			i := i
			want = append(want, key{at, i})
			k.At(at, func() { got = append(got, key{at, i}) })
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].at != want[b].at {
				return want[a].at < want[b].at
			}
			return want[a].seq < want[b].seq
		})
		k.Drain()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelReset(t *testing.T) {
	k := NewKernel()
	fired := 0
	k.Schedule(10, func() { fired++ })
	k.Schedule(20, func() { fired++ })
	k.Step()
	k.Reset()
	if k.Now() != 0 || k.Fired() != 0 || k.Pending() != 0 {
		t.Fatalf("after Reset: now=%d fired=%d pending=%d", k.Now(), k.Fired(), k.Pending())
	}
	// The dropped event must not fire; the kernel must be fully reusable.
	k.Schedule(5, func() { fired += 100 })
	k.Drain()
	if fired != 101 {
		t.Fatalf("fired = %d, want 101 (one pre-reset, one post-reset)", fired)
	}
	if k.Now() != 5 || k.Fired() != 1 {
		t.Fatalf("after reuse: now=%d fired=%d", k.Now(), k.Fired())
	}
}

// TestKernelZeroAllocSteadyState: once the queue slice has grown to its
// high-water mark, Schedule and Step allocate nothing.
func TestKernelZeroAllocSteadyState(t *testing.T) {
	k := NewKernel()
	fn := func() {}
	// Warm the slice to its high-water mark.
	for i := 0; i < 256; i++ {
		k.Schedule(Time(i%13), fn)
	}
	k.Drain()
	k.Reset()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 256; i++ {
			k.Schedule(Time(i%13), fn)
		}
		for k.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocs per 256-event cycle = %v, want 0", allocs)
	}
}

func TestWatchdogTripsWithoutProgress(t *testing.T) {
	k := NewKernel()
	tripped := false
	NewWatchdog(k, 100, func(Time) { tripped = true })
	// Keep the clock moving without reporting progress.
	for i := 0; i < 10; i++ {
		k.Schedule(Time(50*i), func() {})
	}
	k.Drain()
	if !tripped {
		t.Fatal("watchdog did not trip")
	}
}

func TestWatchdogProgressPreventsTrip(t *testing.T) {
	k := NewKernel()
	w := NewWatchdog(k, 100, func(Time) { t.Error("tripped despite progress") })
	var tick func()
	n := 0
	tick = func() {
		w.Progress()
		if n++; n < 20 {
			k.Schedule(50, tick)
		} else {
			w.Stop()
		}
	}
	k.Schedule(1, tick)
	k.Drain()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	const mean = 500.0
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.ExpTime(mean))
	}
	got := sum / n
	// Integer truncation shifts the mean down by ~0.5.
	if math.Abs(got-mean) > mean*0.02 {
		t.Fatalf("exp mean = %.1f, want ~%.0f", got, mean)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}
