// Package sim provides the discrete-event simulation kernel used by every
// subsystem of the BASH reproduction: simulated time, a deterministic event
// queue, and a forward-progress watchdog.
//
// Time is measured in integer nanoseconds. The target system in the paper is
// clocked such that one cycle is one nanosecond, so cycle counts from the
// paper (e.g. the 512-cycle sampling interval) translate directly.
package sim

import "fmt"

// Time is a simulated timestamp or duration in nanoseconds (= cycles).
type Time int64

// Common durations from the paper's timing model (Section 4.2).
const (
	// NetworkTraversal is the fixed latency of one interconnect crossing
	// (wire propagation, synchronization, and routing).
	NetworkTraversal Time = 50
	// DRAMAccess is the memory access time for data or directory state.
	DRAMAccess Time = 80
	// CacheAccess is the time for a cache to provide data to the interconnect.
	CacheAccess Time = 25
)

// Task is a pre-allocated schedulable unit of work. Hot paths that would
// otherwise allocate a fresh closure per event (network deliveries, delayed
// protocol sends) implement Task on a free-listed struct and schedule it
// with ScheduleTask/AtTask, so steady-state event traffic performs zero heap
// allocations.
type Task interface {
	Run()
}

// event is a scheduled callback: either a closure or a Task (exactly one is
// set).
type event struct {
	at   Time
	seq  uint64 // tie-breaker: schedule order
	fn   func()
	task Task
}

// Kernel is a deterministic discrete-event scheduler. Events scheduled for
// the same instant fire in schedule order, so identical runs replay exactly.
//
// The queue is a concrete-typed 4-ary min-heap ordered by (time, seq). The
// flatter heap halves the sift depth versus a binary heap, and avoiding
// container/heap's interface{} API means Schedule and Step perform zero
// allocations in steady state: the backing slice is reused across pops, so
// once it has grown to the high-water mark of pending events no further
// allocation occurs.
//
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	fired  uint64
	events []event // 4-ary min-heap by (at, seq)
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Reset returns the kernel to time zero with an empty queue, retaining the
// queue's backing storage so a reused kernel reaches steady state (zero
// allocations per Schedule/Step) immediately. Pending event callbacks are
// dropped and their references released.
func (k *Kernel) Reset() {
	for i := range k.events {
		k.events[i].fn = nil // release closure references
		k.events[i].task = nil
	}
	k.events = k.events[:0]
	k.now = 0
	k.seq = 0
	k.fired = 0
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return len(k.events) }

// Schedule runs fn after delay simulated nanoseconds. A negative delay is an
// error in the caller; it panics to surface the bug immediately.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// At runs fn at the absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	k.seq++
	k.events = append(k.events, event{at: t, seq: k.seq, fn: fn})
	k.siftUp(len(k.events) - 1)
}

// ScheduleTask runs task after delay simulated nanoseconds. It is the
// allocation-free counterpart of Schedule: the task object is supplied by
// the caller (typically from a free-list), so nothing is allocated here.
func (k *Kernel) ScheduleTask(delay Time, task Task) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.AtTask(k.now+delay, task)
}

// AtTask runs task at the absolute time t, which must not be in the past.
func (k *Kernel) AtTask(t Time, task Task) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	k.seq++
	k.events = append(k.events, event{at: t, seq: k.seq, task: task})
	k.siftUp(len(k.events) - 1)
}

// before reports whether event i sorts before event j: earlier time first,
// schedule order breaking ties.
func (k *Kernel) before(i, j int) bool {
	a, b := &k.events[i], &k.events[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property after appending at index i.
func (k *Kernel) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !k.before(i, parent) {
			return
		}
		k.events[i], k.events[parent] = k.events[parent], k.events[i]
		i = parent
	}
}

// siftDown restores the heap property after replacing the root.
func (k *Kernel) siftDown() {
	n := len(k.events)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if k.before(c, best) {
				best = c
			}
		}
		if !k.before(best, i) {
			return
		}
		k.events[i], k.events[best] = k.events[best], k.events[i]
		i = best
	}
}

// Step fires the next event and reports whether one existed.
func (k *Kernel) Step() bool {
	n := len(k.events)
	if n == 0 {
		return false
	}
	e := k.events[0]
	k.events[0] = k.events[n-1]
	k.events[n-1].fn = nil // release closure reference
	k.events[n-1].task = nil
	k.events = k.events[:n-1]
	if n > 1 {
		k.siftDown()
	}
	k.now = e.at
	k.fired++
	if e.fn != nil {
		e.fn()
	} else {
		e.task.Run()
	}
	return true
}

// Run executes events until the queue is empty or the horizon is passed.
// It returns the time at which it stopped.
func (k *Kernel) Run(horizon Time) Time {
	for len(k.events) > 0 && k.events[0].at <= horizon {
		k.Step()
	}
	if k.now < horizon {
		k.now = horizon
	}
	return k.now
}

// RunUntil executes events while cond returns false, stopping as soon as it
// returns true or the queue drains. cond is evaluated after every event.
func (k *Kernel) RunUntil(cond func() bool) {
	for !cond() {
		if !k.Step() {
			return
		}
	}
}

// Drain executes every remaining event.
func (k *Kernel) Drain() {
	for k.Step() {
	}
}
