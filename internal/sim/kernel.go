// Package sim provides the discrete-event simulation kernel used by every
// subsystem of the BASH reproduction: simulated time, a deterministic event
// queue, and a forward-progress watchdog.
//
// Time is measured in integer nanoseconds. The target system in the paper is
// clocked such that one cycle is one nanosecond, so cycle counts from the
// paper (e.g. the 512-cycle sampling interval) translate directly.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp or duration in nanoseconds (= cycles).
type Time int64

// Common durations from the paper's timing model (Section 4.2).
const (
	// NetworkTraversal is the fixed latency of one interconnect crossing
	// (wire propagation, synchronization, and routing).
	NetworkTraversal Time = 50
	// DRAMAccess is the memory access time for data or directory state.
	DRAMAccess Time = 80
	// CacheAccess is the time for a cache to provide data to the interconnect.
	CacheAccess Time = 25
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-breaker: schedule order
	fn  func()
}

// eventHeap implements heap.Interface ordered by (time, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a deterministic discrete-event scheduler. Events scheduled for
// the same instant fire in schedule order, so identical runs replay exactly.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now    Time
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	k := &Kernel{}
	heap.Init(&k.events)
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Fired returns the number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (k *Kernel) Pending() int { return k.events.Len() }

// Schedule runs fn after delay simulated nanoseconds. A negative delay is an
// error in the caller; it panics to surface the bug immediately.
func (k *Kernel) Schedule(delay Time, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// At runs fn at the absolute time t, which must not be in the past.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, fn: fn})
}

// Step fires the next event and reports whether one existed.
func (k *Kernel) Step() bool {
	if k.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	k.fired++
	e.fn()
	return true
}

// Run executes events until the queue is empty or the horizon is passed.
// It returns the time at which it stopped.
func (k *Kernel) Run(horizon Time) Time {
	for k.events.Len() > 0 && k.events[0].at <= horizon {
		k.Step()
	}
	if k.now < horizon {
		k.now = horizon
	}
	return k.now
}

// RunUntil executes events while cond returns false, stopping as soon as it
// returns true or the queue drains. cond is evaluated after every event.
func (k *Kernel) RunUntil(cond func() bool) {
	for !cond() {
		if !k.Step() {
			return
		}
	}
}

// Drain executes every remaining event.
func (k *Kernel) Drain() {
	for k.Step() {
	}
}
