package sim

import "fmt"

// Watchdog detects loss of forward progress: if no unit of work is reported
// via Progress for longer than the configured interval of simulated time, the
// watchdog trips. The coherence system uses it to convert protocol deadlock
// or livelock into a loud, attributable failure instead of a hung run.
type Watchdog struct {
	kernel   *Kernel
	interval Time
	last     Time
	lastWork uint64
	work     uint64
	tripped  bool
	onTrip   func(sinceWork Time)
	stopped  bool
	checkFn  func() // check, bound once so rescheduling never allocates
}

// NewWatchdog arms a watchdog on k. onTrip is invoked (once) when no progress
// has been reported for interval simulated nanoseconds; it receives the time
// since the last reported progress. A nil onTrip panics on trip.
func NewWatchdog(k *Kernel, interval Time, onTrip func(sinceWork Time)) *Watchdog {
	if interval <= 0 {
		panic("sim: watchdog interval must be positive")
	}
	w := &Watchdog{kernel: k, interval: interval, onTrip: onTrip, last: k.Now()}
	w.checkFn = w.check
	w.schedule()
	return w
}

// Reset re-arms the watchdog for a new run on the same kernel, which must
// already have been Reset (the previously scheduled check was dropped with
// the rest of the queue). The interval may differ from the one the watchdog
// was built with; it must be positive.
func (w *Watchdog) Reset(interval Time) {
	if interval <= 0 {
		panic("sim: watchdog interval must be positive")
	}
	w.interval = interval
	w.last = w.kernel.Now()
	w.lastWork = 0
	w.work = 0
	w.tripped = false
	w.stopped = false
	w.schedule()
}

// Progress records that useful work happened (a transaction completed, a
// message was delivered, ...).
func (w *Watchdog) Progress() {
	w.work++
	w.last = w.kernel.Now()
}

// Tripped reports whether the watchdog has fired.
func (w *Watchdog) Tripped() bool { return w.tripped }

// Stop disarms the watchdog.
func (w *Watchdog) Stop() { w.stopped = true }

func (w *Watchdog) schedule() {
	w.kernel.Schedule(w.interval, w.checkFn)
}

func (w *Watchdog) check() {
	if w.stopped || w.tripped {
		return
	}
	if w.work == w.lastWork {
		w.tripped = true
		since := w.kernel.Now() - w.last
		if w.onTrip == nil {
			panic(fmt.Sprintf("sim: watchdog tripped after %d ns without progress", since))
		}
		w.onTrip(since)
		return
	}
	w.lastWork = w.work
	w.schedule()
}
