package sim

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator used for
// workload generation and experimental perturbation. The coherence
// controllers themselves use the LFSR in internal/adaptive, mirroring the
// paper's hardware mechanism; this generator is simulation infrastructure.
//
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator with the given seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Reseed restarts the generator from the given seed, as if freshly
// constructed. Reused simulation structures (see core.System.Reset) reseed
// their generators so a leased run replays exactly like a fresh one.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpTime returns an exponentially distributed duration with the given mean,
// rounded down to whole nanoseconds (minimum 0).
func (r *RNG) ExpTime(mean float64) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return Time(-mean * math.Log(u))
}
