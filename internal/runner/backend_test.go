package runner

import (
	"fmt"
	"strings"
	"testing"
)

// TestExecutorRegistry: registration, replacement, removal, and Kinds.
func TestExecutorRegistry(t *testing.T) {
	const kind = "runner-test.reg"
	RegisterExecutor(kind, func(spec []byte) ([]byte, error) { return []byte("v1"), nil })
	defer RegisterExecutor(kind, nil)
	out, err := ExecutorFor(kind)(nil)
	if err != nil || string(out) != "v1" {
		t.Fatalf("executor v1: %q, %v", out, err)
	}
	RegisterExecutor(kind, func(spec []byte) ([]byte, error) { return []byte("v2"), nil })
	if out, _ := ExecutorFor(kind)(nil); string(out) != "v2" {
		t.Fatalf("re-registration did not replace: %q", out)
	}
	found := false
	for _, k := range Kinds() {
		if k == kind {
			found = true
		}
	}
	if !found {
		t.Error("Kinds does not list the registered kind")
	}
	RegisterExecutor(kind, nil)
	if ExecutorFor(kind) != nil {
		t.Error("nil registration did not remove the executor")
	}
}

// TestLocalBackendRunsJobs: results fold in job order through the
// registered executor, with the jobs' own labels in errors.
func TestLocalBackendRunsJobs(t *testing.T) {
	const kind = "runner-test.echo"
	RegisterExecutor(kind, func(spec []byte) ([]byte, error) {
		if len(spec) > 0 && spec[0] == 'x' {
			return nil, fmt.Errorf("bad spec")
		}
		return append([]byte("got:"), spec...), nil
	})
	defer RegisterExecutor(kind, nil)

	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Kind: kind, Key: fmt.Sprintf("k%d", i), Label: fmt.Sprintf("j%d", i), Spec: []byte{byte('0' + i)}}
	}
	outs, err := (LocalBackend{}).Run(jobs, Options{Workers: 4})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, out := range outs {
		if want := "got:" + string(jobs[i].Spec); string(out) != want {
			t.Errorf("job %d: %q, want %q", i, out, want)
		}
	}

	// Errors carry the job's label.
	jobs[3].Spec = []byte("x")
	_, err = (LocalBackend{}).Run(jobs, Options{})
	if err == nil || !strings.Contains(err.Error(), "j3") {
		t.Errorf("error %v does not name job j3", err)
	}
}

// TestLocalBackendUnknownKind fails with a helpful error, not a panic.
func TestLocalBackendUnknownKind(t *testing.T) {
	_, err := (LocalBackend{}).Run([]Job{{Kind: "runner-test.absent", Label: "orphan"}}, Options{})
	if err == nil || !strings.Contains(err.Error(), "runner-test.absent") {
		t.Errorf("error %v does not name the missing kind", err)
	}
}

// TestLocalBackendPanicCapture: an executor panic is attributed to the job
// exactly like a closure panic in Map.
func TestLocalBackendPanicCapture(t *testing.T) {
	const kind = "runner-test.boom"
	RegisterExecutor(kind, func(spec []byte) ([]byte, error) { panic("boom") })
	defer RegisterExecutor(kind, nil)
	_, err := (LocalBackend{}).Run([]Job{{Kind: kind, Label: "tnt"}}, Options{})
	pe, ok := err.(*PanicError)
	if !ok {
		t.Fatalf("error %v (%T), want *PanicError", err, err)
	}
	if pe.Label != "tnt" || fmt.Sprint(pe.Value) != "boom" {
		t.Errorf("PanicError label %q value %v", pe.Label, pe.Value)
	}
}
