package runner

// Backends generalize Map from "fan closures across goroutines" to "fan
// serializable jobs across whatever executes them": the same job list the
// in-process pool runs can be leased to worker processes on other machines
// (see internal/dist). A Job carries an opaque serialized spec plus the kind
// of a registered executor, so the transport never needs to know what a job
// computes; the executor registry is how a worker process learns to run the
// coordinator's jobs — both sides register the same kinds at startup.
//
// Backend implementations must preserve Map's contract: results fold in
// job-index order regardless of which worker completed them or when, the
// lowest-indexed failure wins, and a panicking job surfaces as *PanicError
// with its label. The fold is per-job even when the transport moves jobs in
// batches (internal/dist leases several jobs per round-trip and streams
// their results back individually): batching is a transport detail that
// must never surface in result order or error attribution. That is what
// lets the experiment harness produce byte-identical artifacts whether a
// sweep ran on one goroutine or on a fleet of machines.

import (
	"context"
	"fmt"
	"sync"
)

// Job is one remotely executable unit of work.
type Job struct {
	// Kind names the registered executor that runs the job.
	Kind string
	// Key is a stable content address for the job's result (the cell
	// store's cache key): equal keys are guaranteed equal results, so any
	// holder of the key may serve or publish the result.
	Key string
	// Label describes the job in errors and progress output.
	Label string
	// Spec is the serialized job payload, opaque to the transport.
	Spec []byte
}

// Backend executes a batch of jobs and returns their serialized results in
// job-index order. Cancellation, timeout, progress, and worker bounds come
// from opt, exactly as for Map; opt.Label defaults to the jobs' own labels.
// Even on error, the returned slice holds every completed result (failed or
// never-run jobs hold nil).
type Backend interface {
	Run(jobs []Job, opt Options) ([][]byte, error)
}

// Executor runs one job payload of a registered kind, returning the
// serialized result. Executors run on whichever process executes the job —
// the coordinator's for the in-process backend, a worker's for a
// distributed one — and must be pure functions of the spec (plus caches
// keyed by the job Key) so placement never changes a result.
type Executor func(spec []byte) ([]byte, error)

var (
	execMu    sync.RWMutex
	executors = map[string]Executor{}
)

// RegisterExecutor installs the process-wide executor for a job kind.
// Registering a kind again replaces the previous executor (tests re-wire
// cache directories this way).
func RegisterExecutor(kind string, fn Executor) {
	execMu.Lock()
	defer execMu.Unlock()
	if fn == nil {
		delete(executors, kind)
		return
	}
	executors[kind] = fn
}

// ExecutorFor returns the registered executor for kind, nil if none.
func ExecutorFor(kind string) Executor {
	execMu.RLock()
	defer execMu.RUnlock()
	return executors[kind]
}

// Kinds lists the registered executor kinds (a worker advertises them when
// leasing jobs).
func Kinds() []string {
	execMu.RLock()
	defer execMu.RUnlock()
	out := make([]string, 0, len(executors))
	for k := range executors {
		out = append(out, k)
	}
	return out
}

// LocalBackend is the default Backend: the in-process goroutine pool. It
// runs every job through its registered executor via Map, so semantics —
// fold order, panic capture, cancellation, progress — are exactly those of
// the closure-based path.
type LocalBackend struct{}

// Run implements Backend.
func (LocalBackend) Run(jobs []Job, opt Options) ([][]byte, error) {
	if opt.Label == nil {
		opt.Label = func(i int) string { return jobs[i].Label }
	}
	return Map(len(jobs), opt, func(i int) ([]byte, error) {
		fn := ExecutorFor(jobs[i].Kind)
		if fn == nil {
			return nil, fmt.Errorf("no executor registered for job kind %q", jobs[i].Kind)
		}
		// An executor panic propagates into Map's recovery, which
		// attributes it to the job's label like any in-process job.
		return fn(jobs[i].Spec)
	})
}

// RunContext adapts opt for implementations that need a concrete context.
func (o Options) RunContext() (context.Context, context.CancelFunc) {
	ctx := o.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if o.Timeout > 0 {
		return context.WithTimeout(ctx, o.Timeout)
	}
	return context.WithCancel(ctx)
}
