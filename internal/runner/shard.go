package runner

// Seed sharding: sweeps are sharded one simulation per (config, seed) cell,
// so a reproducible fleet needs a deterministic way to derive many
// well-spread RNG seeds from one base seed. SplitMix64 (Steele et al.,
// "Fast splittable pseudorandom number generators") is the standard stream
// splitter: consecutive counters map to statistically independent values,
// and the derivation is a pure function, so shard i of a sweep replays
// identically no matter how many workers execute it.

// splitmix64 advances one SplitMix64 step from state x.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Seeds derives n deterministic, well-spread seeds from base: shard i of a
// sweep always receives Seeds(base, n)[i]. Seeds are never zero (some RNGs
// treat a zero seed as "unseeded").
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		s := splitmix64(base + uint64(i))
		if s == 0 {
			s = splitmix64(s + 1)
		}
		out[i] = s
	}
	return out
}

// Range is a half-open index interval [Start, End).
type Range struct{ Start, End int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.End - r.Start }

// Chunks splits [0, total) into at most shards contiguous ranges whose
// sizes differ by at most one, for batch-sharding a job list whose items
// are too cheap to dispatch individually. An empty or non-positive input
// yields no ranges.
func Chunks(total, shards int) []Range {
	if total <= 0 || shards <= 0 {
		return nil
	}
	if shards > total {
		shards = total
	}
	out := make([]Range, 0, shards)
	size, rem := total/shards, total%shards
	start := 0
	for i := 0; i < shards; i++ {
		end := start + size
		if i < rem {
			end++
		}
		out = append(out, Range{Start: start, End: end})
		start = end
	}
	return out
}
