package runner

import "sync"

// Key fetcher seam: the dist worker installs a function that retrieves a
// cell's raw store entry from the fleet (coordinator store or an
// advertised peer), and the experiment executors consult it before
// simulating a missed cell. It lives here — not in the dist package —
// because experiments must not import dist (dist imports runner to execute
// jobs; the seam keeps the dependency one-way).
//
// The fetcher is process-global, like the executor registry: a worker
// process runs one worker. It must be fast to reject — callers invoke it
// on every cell miss — and must return ok=false rather than error; a
// failed fetch always degrades to local simulation.

var (
	fetchMu    sync.RWMutex
	keyFetcher func(key string) ([]byte, bool)
)

// SetKeyFetcher installs (or, with nil, removes) the process's key
// fetcher. The last call wins.
func SetKeyFetcher(fn func(key string) ([]byte, bool)) {
	fetchMu.Lock()
	keyFetcher = fn
	fetchMu.Unlock()
}

// FetchKey asks the installed fetcher for key's raw store entry; ok is
// false when no fetcher is installed or the fleet does not hold the key.
// Callers must verify the bytes against the key before trusting them
// (cellstore.DecodeRaw does): the fetcher moves bytes, it does not vouch
// for them.
func FetchKey(key string) ([]byte, bool) {
	fetchMu.RLock()
	fn := keyFetcher
	fetchMu.RUnlock()
	if fn == nil {
		return nil, false
	}
	return fn(key)
}
