// Package runner is the sharded run-orchestration layer shared by the
// experiment harness, the random protocol tester, and the CLIs. The paper's
// evaluation is embarrassingly parallel — every (protocol, bandwidth, seed)
// cell is an independent single-threaded discrete-event simulation — so the
// mechanism every consumer needs is the same: fan a fixed job list out
// across a bounded worker pool and fold the results back deterministically.
//
// Map guarantees:
//
//   - Results are returned in job-index order, regardless of the order in
//     which workers complete them, so serial and parallel execution produce
//     byte-identical downstream artifacts.
//   - A panicking job is captured (with its label and stack) into a
//     *PanicError instead of crashing the process, and attributed to the
//     job that raised it.
//   - Cancellation (Options.Context) and deadlines (Options.Timeout) stop
//     dispatching promptly; in-flight jobs run to completion.
//   - Options.Progress observes completion monotonically and serialized.
//
// Seed-sharding helpers (see shard.go) derive well-spread deterministic
// seed sets so every shard of a sweep replays exactly.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Process-wide pool telemetry, exposed through InFlight/Panics for the
// metrics registry (internal/obs): every Map/Each job counts, whichever
// consumer dispatched it — in-process sweeps, the dist LocalBackend, and
// worker processes all fan through here.
var (
	inFlight atomic.Int64
	panics   atomic.Uint64
)

// InFlight reports the number of pool jobs currently executing.
func InFlight() int64 { return inFlight.Load() }

// Panics reports the lifetime count of jobs that panicked (each captured as
// a *PanicError rather than crashing the process).
func Panics() uint64 { return panics.Load() }

// JobBegin marks one externally executed job in flight and returns the
// closure that ends it. The dist worker's slots run executors outside Map
// (streaming results per job instead of folding a batch) but belong in the
// same in-flight gauge.
func JobBegin() (end func()) {
	inFlight.Add(1)
	return func() { inFlight.Add(-1) }
}

// NotePanic counts one captured executor panic for callers that recover
// panics themselves instead of letting Map's recovery see them.
func NotePanic() { panics.Add(1) }

// Options configures one Map/Each invocation.
type Options struct {
	// Workers bounds concurrently running jobs. Zero or negative selects
	// GOMAXPROCS; 1 runs the jobs serially (still in job order).
	Workers int
	// Context cancels dispatch when done; nil means context.Background().
	Context context.Context
	// Timeout, when positive, bounds the whole invocation (applied on top
	// of Context).
	Timeout time.Duration
	// Progress, when non-nil, is called after each job completes with the
	// number of completed jobs and the total. Calls are serialized and
	// done is strictly increasing, but the jobs themselves complete in an
	// arbitrary order.
	Progress func(done, total int)
	// Label describes job i in errors (panic reports, cancellation); nil
	// falls back to "job i".
	Label func(i int) string
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) label(i int) string {
	if o.Label != nil {
		return o.Label(i)
	}
	return fmt.Sprintf("job %d", i)
}

// PanicError reports a job that panicked, with enough context to replay it.
type PanicError struct {
	Index int    // job index
	Label string // Options.Label(Index), or "job Index"
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: %s panicked: %v", e.Label, e.Value)
}

// Map runs fn(0..n-1) across a bounded worker pool and returns the results
// in job-index order. The error is the failure of the lowest-indexed failed
// job (deterministic regardless of completion order); on cancellation with
// no job failure it is the context's error. Even on error, the returned
// slice holds every result completed before the failure was observed.
func Map[T any](n int, opt Options, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	ctx := opt.Context
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}

	errs := make([]error, n)
	var (
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	run := func(i int) {
		inFlight.Add(1)
		defer func() {
			inFlight.Add(-1)
			if r := recover(); r != nil {
				panics.Add(1)
				errs[i] = &PanicError{Index: i, Label: opt.label(i), Value: r, Stack: debug.Stack()}
			}
			mu.Lock()
			done++
			if opt.Progress != nil {
				opt.Progress(done, n)
			}
			mu.Unlock()
			wg.Done()
		}()
		results[i], errs[i] = fn(i)
	}

	sem := make(chan struct{}, opt.workers(n))
	var canceled error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			canceled = ctx.Err()
			break dispatch
		}
		wg.Add(1)
		go func(i int) {
			defer func() { <-sem }()
			run(i)
		}(i)
	}
	wg.Wait()
	// A deadline that expired after every job was dispatched (common when
	// the job count is at most the worker count) must still be reported:
	// the invocation exceeded its bound even though nothing was cut short.
	if canceled == nil {
		canceled = ctx.Err()
	}

	for i, err := range errs {
		if err == nil {
			continue
		}
		if pe, ok := err.(*PanicError); ok {
			return results, pe // already carries the job label
		}
		return results, fmt.Errorf("runner: %s: %w", opt.label(i), err)
	}
	if canceled != nil {
		return results, canceled
	}
	return results, nil
}

// Each is Map without per-job results: it runs fn(0..n-1) with the same
// ordering, panic-capture, and cancellation guarantees.
func Each(n int, opt Options, fn func(i int) error) error {
	_, err := Map(n, opt, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
