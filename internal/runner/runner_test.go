package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderDeterminism: results land in job order even when completion
// order is scrambled, and serial and parallel runs agree exactly.
func TestMapOrderDeterminism(t *testing.T) {
	fn := func(i int) (int, error) {
		// Later jobs finish first.
		time.Sleep(time.Duration(64-i) * 100 * time.Microsecond)
		return i * i, nil
	}
	parallel, err := Map(64, Options{Workers: 16}, fn)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Map(64, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel {
		if parallel[i] != i*i || serial[i] != i*i {
			t.Fatalf("index %d: parallel=%d serial=%d want %d", i, parallel[i], serial[i], i*i)
		}
	}
}

// TestMapPanicCapture: a panicking job becomes a *PanicError carrying the
// job's label, index, and stack instead of crashing the pool.
func TestMapPanicCapture(t *testing.T) {
	_, err := Map(8, Options{
		Workers: 4,
		Label:   func(i int) string { return fmt.Sprintf("cell p=%d", i) },
	}, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 5 || pe.Label != "cell p=5" || pe.Value != "boom" {
		t.Fatalf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "cell p=5") {
		t.Fatalf("missing stack or label: %v", err)
	}
}

// TestMapFirstErrorDeterministic: with several failing jobs, the reported
// error is always the lowest-indexed failure.
func TestMapFirstErrorDeterministic(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		_, err := Map(16, Options{Workers: 8}, func(i int) (int, error) {
			if i%3 == 1 { // jobs 1, 4, 7, ...
				return 0, fmt.Errorf("fail %d", i)
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "fail 1") {
			t.Fatalf("trial %d: err = %v, want lowest-index failure 1", trial, err)
		}
	}
}

// TestMapCancellation: a canceled context stops dispatch and surfaces the
// context error; already-dispatched jobs complete.
func TestMapCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	_, err := Map(1000, Options{Workers: 2, Context: ctx}, func(i int) (int, error) {
		if started.Add(1) == 4 {
			cancel()
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Fatalf("dispatch did not stop: %d jobs started", n)
	}
}

// TestMapTimeout: Options.Timeout bounds the invocation.
func TestMapTimeout(t *testing.T) {
	start := time.Now()
	_, err := Map(1000, Options{Workers: 1, Timeout: 20 * time.Millisecond},
		func(i int) (int, error) {
			time.Sleep(2 * time.Millisecond)
			return i, nil
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout did not bound the run: %v", elapsed)
	}
}

// TestMapTimeoutAfterFullDispatch: a deadline that expires after every job
// has been dispatched (jobs <= workers) is still reported, and the results
// of the jobs that completed are still returned.
func TestMapTimeoutAfterFullDispatch(t *testing.T) {
	out, err := Map(2, Options{Workers: 4, Timeout: 10 * time.Millisecond},
		func(i int) (int, error) {
			time.Sleep(40 * time.Millisecond)
			return i + 1, nil
		})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded (full-dispatch case)", err)
	}
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("in-flight results lost on timeout: %v", out)
		}
	}
}

// TestMapProgress: done counts are strictly increasing and end at total.
func TestMapProgress(t *testing.T) {
	var seen []int
	err := Each(32, Options{
		Workers:  8,
		Progress: func(done, total int) { seen = append(seen, done) },
	}, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 32 {
		t.Fatalf("progress calls = %d, want 32", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence %v not strictly increasing", seen)
		}
	}
}

// TestMapWorkerBound: no more than Workers jobs run at once.
func TestMapWorkerBound(t *testing.T) {
	var inFlight, peak atomic.Int32
	err := Each(64, Options{Workers: 3}, func(i int) error {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency = %d, want <= 3", p)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, Options{}, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

// TestSeedsDeterministicAndSpread: Seeds is a pure function, never yields
// zero, and produces distinct values across a large range.
func TestSeedsDeterministicAndSpread(t *testing.T) {
	a := Seeds(42, 1000)
	b := Seeds(42, 1000)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: Seeds not deterministic", i)
		}
		if a[i] == 0 {
			t.Fatalf("index %d: zero seed", i)
		}
		if seen[a[i]] {
			t.Fatalf("index %d: duplicate seed %d", i, a[i])
		}
		seen[a[i]] = true
	}
	// Prefixes are stable: growing the shard count keeps existing shards.
	short := Seeds(42, 10)
	for i := range short {
		if short[i] != a[i] {
			t.Fatalf("index %d: prefix not stable", i)
		}
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		total, shards int
		want          []Range
	}{
		{10, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
		{3, 5, []Range{{0, 1}, {1, 2}, {2, 3}}},
		{0, 4, nil},
		{4, 0, nil},
		{8, 2, []Range{{0, 4}, {4, 8}}},
	}
	for _, c := range cases {
		got := Chunks(c.total, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("Chunks(%d,%d) = %v, want %v", c.total, c.shards, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Chunks(%d,%d) = %v, want %v", c.total, c.shards, got, c.want)
			}
		}
		// Ranges must tile [0, total) exactly.
		next := 0
		for _, r := range got {
			if r.Start != next || r.Len() <= 0 {
				t.Fatalf("Chunks(%d,%d): bad tiling %v", c.total, c.shards, got)
			}
			next = r.End
		}
		if c.total > 0 && c.shards > 0 && next != c.total {
			t.Fatalf("Chunks(%d,%d): covers [0,%d), want [0,%d)", c.total, c.shards, next, c.total)
		}
	}
}
