package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if got := a.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := a.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

// TestAccumulatorMatchesNaive: Welford's method equals the two-pass formula.
func TestAccumulatorMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		// Constrain to finite, moderate values.
		var vals []float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				continue
			}
			vals = append(vals, x)
		}
		if len(vals) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range vals {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(vals))
		var ss float64
		for _, x := range vals {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(vals)-1)
		return math.Abs(a.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(a.Variance()-variance) < 1e-6*(1+variance)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryCoVRule(t *testing.T) {
	var steady Accumulator
	steady.Add(100)
	steady.Add(100.0001)
	if s := steady.Summarize().String(); s != "100" {
		t.Fatalf("low-CoV summary %q should omit the error bar", s)
	}
	var noisy Accumulator
	noisy.Add(90)
	noisy.Add(110)
	if s := noisy.Summarize().String(); s == "100" {
		t.Fatalf("high-CoV summary %q should include the error bar", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewLatencyHistogram()
	for _, v := range []float64{100, 125, 130, 200, 9999, 50000} {
		h.Add(v)
	}
	if h.N() != 6 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Bucket(0) != 2 { // <=125
		t.Fatalf("bucket0 = %d", h.Bucket(0))
	}
	if h.Bucket(h.Buckets()-1) != 1 { // overflow
		t.Fatalf("overflow = %d", h.Bucket(h.Buckets()-1))
	}
	if got := h.Percentile(0.5); got != 180 {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(1.0); got != 50000 {
		t.Fatalf("p100 = %v", got)
	}
}

func TestHistogramUnsortedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewHistogram(10, 5)
}

func TestHistogramMergeMismatchedBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging histograms with different bounds did not panic")
		}
	}()
	a := NewHistogram(10, 20, 30)
	b := NewHistogram(10, 20)
	a.Merge(b)
}

func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	for _, p := range []float64{0.01, 0.5, 0.99, 1.0} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty histogram p%g = %v, want 0", 100*p, got)
		}
	}
}

func TestHistogramPercentileSingleBucket(t *testing.T) {
	// A histogram with one bound has two buckets: [..100] and overflow.
	h := NewHistogram(100)
	for i := 0; i < 5; i++ {
		h.Add(50)
	}
	for _, p := range []float64{0.01, 0.5, 1.0} {
		if got := h.Percentile(p); got != 100 {
			t.Errorf("p%g = %v, want bound 100", 100*p, got)
		}
	}
	// All mass in the overflow bucket reports the observed max.
	o := NewHistogram(100)
	o.Add(250)
	o.Add(900)
	if got := o.Percentile(0.5); got != 900 {
		t.Errorf("overflow p50 = %v, want observed max 900", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewLatencyHistogram()
	h.Add(100)
	h.Add(50000)
	h.Reset()
	if h.N() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatalf("reset left moments: n=%d mean=%v max=%v", h.N(), h.Mean(), h.Max())
	}
	for i := 0; i < h.Buckets(); i++ {
		if h.Bucket(i) != 0 {
			t.Fatalf("reset left bucket %d = %d", i, h.Bucket(i))
		}
	}
	if got := h.Percentile(0.5); got != 0 {
		t.Fatalf("reset histogram p50 = %v", got)
	}
}

func TestAccumulatorCoVSmallN(t *testing.T) {
	var a Accumulator
	if got := a.CoV(); got != 0 {
		t.Errorf("empty accumulator CoV = %v, want 0", got)
	}
	a.Add(5)
	// n=1: variance is defined as 0, so CoV must be 0, not NaN.
	if got := a.CoV(); got != 0 {
		t.Errorf("n=1 CoV = %v, want 0", got)
	}
	// A single zero observation: zero mean must not divide.
	var z Accumulator
	z.Add(0)
	if got := z.CoV(); got != 0 {
		t.Errorf("zero-mean CoV = %v, want 0", got)
	}
	a.Add(10)
	if got := a.CoV(); got <= 0 {
		t.Errorf("n=2 CoV = %v, want > 0", got)
	}
}

// TestCoVNearZeroFloor: a mean that is merely *near* zero (floating-point
// noise around an all-zero metric, e.g. nack rates at high bandwidth) must
// read as perfectly converged, not astronomically noisy — otherwise
// CoV-targeted seed escalation would burn seeds forever on a dead metric.
func TestCoVNearZeroFloor(t *testing.T) {
	var a Accumulator
	a.Add(1e-15)
	a.Add(-1e-15)
	a.Add(2e-16)
	if got := a.CoV(); got != 0 {
		t.Errorf("near-zero observations CoV = %v, want 0", got)
	}
	// Whatever the tiny mean formats as, it must not carry an error bar.
	if s := a.Summarize().String(); containsPlusMinus(s) {
		t.Errorf("near-zero summary %q should omit the error bar", s)
	}
	// A genuinely small metric with genuine relative spread keeps its CoV.
	var small Accumulator
	small.Add(1e-6)
	small.Add(1.2e-6)
	if got := small.CoV(); got < 0.05 || got > 0.2 {
		t.Errorf("small-scale CoV = %v, want ~0.09", got)
	}
	// Real spread around a zero mean is NOT converged: the floor only
	// applies when the spread itself is negligible too.
	var sym Accumulator
	sym.Add(-5)
	sym.Add(5)
	if got := sym.CoV(); got <= 1 {
		t.Errorf("zero-mean wide-spread CoV = %v, want large", got)
	}
}

func containsPlusMinus(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == 0xc2 && s[i+1] == 0xb1 { // UTF-8 "±"
			return true
		}
	}
	return false
}
