// Package stats provides the small statistical toolkit used by the
// experiment harness: streaming mean/variance accumulators, latency
// histograms, and multi-seed summaries with the coefficient-of-variation
// reporting rule the paper uses for its error bars.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator is a streaming mean/variance accumulator (Welford's method).
// The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Reset returns the accumulator to its empty zero value.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the arithmetic mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the sample variance (0 for fewer than two observations).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// covEpsilon is the absolute-spread floor for CoV: when both |mean| and
// stddev sit below it, the signal is indistinguishable from zero and the
// ratio stddev/mean would only amplify floating-point noise (a near-zero
// mean — e.g. nack rates at saturating bandwidth — must not read as
// astronomically noisy and burn seeds under CoV-targeted escalation).
// Genuine metrics in this repo (throughputs in ops/ns, latencies in ns,
// rates per op) all sit many orders of magnitude above 1e-12.
const covEpsilon = 1e-12

// CoV returns the coefficient of variation (stddev/mean). It is defined as
// 0 when both |mean| and the standard deviation are below an absolute
// epsilon (the observations are all zero up to floating-point noise). The
// paper draws error bars only when CoV exceeds 1%.
func (a *Accumulator) CoV() float64 {
	sd := a.StdDev()
	if math.Abs(a.mean) < covEpsilon {
		if sd < covEpsilon {
			return 0
		}
		return sd / covEpsilon
	}
	return sd / math.Abs(a.mean)
}

// Summary is a point estimate with spread, as plotted in the paper
// (mean ± one standard deviation when CoV > 1%).
type Summary struct {
	Mean   float64
	StdDev float64
	CoV    float64
	N      int64
}

// Summarize collapses an accumulator into a Summary.
func (a *Accumulator) Summarize() Summary {
	return Summary{Mean: a.Mean(), StdDev: a.StdDev(), CoV: a.CoV(), N: a.n}
}

// String renders "mean" or "mean ±σ" following the paper's CoV>1% rule.
// Consistently with Accumulator.CoV's absolute-spread floor, a spread below
// epsilon never draws an error bar regardless of how small the mean is.
func (s Summary) String() string {
	if s.CoV > 0.01 && s.StdDev >= covEpsilon {
		return fmt.Sprintf("%.4g ±%.2g", s.Mean, s.StdDev)
	}
	return fmt.Sprintf("%.4g", s.Mean)
}

// Histogram is a fixed-bucket latency histogram with power-of-two-ish bounds
// suited to miss latencies in nanoseconds.
type Histogram struct {
	bounds []float64
	counts []int64
	acc    Accumulator
}

// NewHistogram creates a histogram with the given ascending bucket upper
// bounds; an implicit overflow bucket is appended.
func NewHistogram(bounds ...float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic("stats: histogram bounds must be ascending")
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// NewLatencyHistogram returns buckets appropriate for 0..10µs miss latencies.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(125, 180, 255, 400, 600, 1000, 2000, 5000, 10000)
}

// Reset zeroes every bucket and the moment accumulator, keeping the bounds
// and the counts slice, so a reused histogram is indistinguishable from a
// fresh one without reallocating.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.acc.Reset()
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.acc.Add(x)
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.acc.N() }

// Mean returns the mean of all observations.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.acc.Max() }

// Bucket returns the count of the i-th bucket; the last index is overflow.
func (h *Histogram) Bucket(i int) int64 { return h.counts[i] }

// Buckets returns the number of buckets including overflow.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Merge folds another histogram with identical bounds into h.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) {
		panic("stats: merging histograms with different bounds")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	// Rebuild the accumulator moments from the other side.
	h.acc.n += o.acc.n
	if o.acc.n > 0 {
		// Approximate merge of means (exact for the mean, approximate m2).
		total := h.acc.n
		if total > 0 {
			h.acc.mean += (o.acc.mean - h.acc.mean) * float64(o.acc.n) / float64(total)
		}
		if o.acc.max > h.acc.max || h.acc.n == o.acc.n {
			h.acc.max = o.acc.max
		}
		if o.acc.min < h.acc.min || h.acc.n == o.acc.n {
			h.acc.min = o.acc.min
		}
	}
}

// Percentile returns an upper bound on the p-th percentile (0 < p <= 1) using
// bucket boundaries; it returns the observed max for the overflow bucket.
func (h *Histogram) Percentile(p float64) float64 {
	if h.acc.N() == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(h.acc.N())))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.acc.Max()
		}
	}
	return h.acc.Max()
}
