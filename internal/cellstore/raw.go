package cellstore

// Raw-entry access: the peer cell exchange (internal/dist) moves store
// entries between machines as opaque byte blobs — the exact gob stream a
// file holds, envelope included — so a fetched cell installs with the same
// format guarantees a locally written one has. Keys enumerates what a store
// can serve, which is what a worker advertises to the fleet.
//
// The fingerprint contract: cache keys embed the binary fingerprint (see
// Fingerprint and the callers' key formats), so a key match on the envelope
// IS a fingerprint match — raw bytes produced by a different build carry a
// different key and are rejected at install, never silently replayed.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// keyStamp memoizes one file's decoded key against its stat identity, so
// repeated Keys scans (a worker re-advertising every second) decode only
// files that changed since the last scan.
type keyStamp struct {
	key   string
	size  int64
	mtime time.Time
}

// Keys enumerates every intact current-format entry's key, sorted. Entries
// whose envelope cannot be decoded, or that carry a foreign format version,
// are skipped (they cannot be served, so they must not be advertised).
// Results are cached per file against size+mtime, so steady-state rescans
// cost one directory walk and zero decodes.
func (s *Store) Keys() []string {
	s.keysMu.Lock()
	defer s.keysMu.Unlock()
	if s.keyCache == nil {
		s.keyCache = map[string]keyStamp{}
	}
	seen := map[string]bool{}
	var keys []string
	subdirs, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	for _, sub := range subdirs {
		if !sub.IsDir() || len(sub.Name()) != 2 {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(s.dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".gob") {
				continue
			}
			path := filepath.Join(s.dir, sub.Name(), e.Name())
			info, err := e.Info()
			if err != nil {
				continue
			}
			seen[path] = true
			if st, ok := s.keyCache[path]; ok && st.size == info.Size() && st.mtime.Equal(info.ModTime()) {
				if st.key != "" {
					keys = append(keys, st.key)
				}
				continue
			}
			key := entryKey(path)
			s.keyCache[path] = keyStamp{key: key, size: info.Size(), mtime: info.ModTime()}
			if key != "" {
				keys = append(keys, key)
			}
		}
	}
	for path := range s.keyCache {
		if !seen[path] {
			delete(s.keyCache, path)
		}
	}
	sort.Strings(keys)
	return keys
}

// entryKey decodes one file's envelope and returns its key, "" when the
// entry is not a servable current-format one.
func entryKey(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return ""
	}
	defer f.Close()
	var env envelope
	if gob.NewDecoder(f).Decode(&env) != nil || env.Format != formatVersion {
		return ""
	}
	return env.Key
}

// Contains reports whether an entry file exists for key without decoding
// it (one stat). The coordinator's grant-hint path calls this per granted
// job; a corrupt entry answering true only costs the requester one failed
// fetch before it simulates.
func (s *Store) Contains(key string) bool {
	_, err := os.Stat(s.path(key))
	return err == nil
}

// GetRaw returns the verbatim stored bytes for key — the full gob stream,
// envelope included — suitable for shipping to a peer and installing via
// PutRaw. Like Get, any defect is a miss, and a corrupt or mismatched file
// is removed so it cannot be re-advertised.
func (s *Store) GetRaw(key string) ([]byte, bool) {
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	if VerifyRaw(key, raw) != nil {
		os.Remove(path)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return raw, true
}

// PutRaw installs raw bytes (a peer's GetRaw output) under key, atomically
// (temp file + rename) like Put. The envelope is verified before anything
// touches the store: wrong format, wrong key — which, keys embedding the
// binary fingerprint, includes a fingerprint mismatch — or undecodable
// bytes are rejected, so a confused or malicious peer can never poison the
// local store (fail closed).
func (s *Store) PutRaw(key string, raw []byte) error {
	if err := VerifyRaw(key, raw); err != nil {
		return err
	}
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.writes.Add(1)
	return nil
}

// VerifyRaw checks that raw is an intact entry for key: a decodable
// envelope of the current format whose key matches exactly. It does not
// decode the value — DecodeRaw does that — so it is cheap enough for
// relay paths that never interpret the payload.
func VerifyRaw(key string, raw []byte) error {
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		return fmt.Errorf("cellstore: raw entry: undecodable envelope: %w", err)
	}
	if env.Format != formatVersion {
		return fmt.Errorf("cellstore: raw entry: format %d (this build stores %d)", env.Format, formatVersion)
	}
	if env.Key != key {
		return fmt.Errorf("cellstore: raw entry: key mismatch (entry %q): wrong cell or wrong binary fingerprint", env.Key)
	}
	return nil
}

// DecodeRaw decodes a raw entry's value into value (a pointer) after
// verifying its envelope against key. This is the fetch path's fail-closed
// gate: any defect returns an error and the caller falls back to
// simulating locally — a peer can cost a fetch round-trip, never a wrong
// result.
func DecodeRaw(raw []byte, key string, value any) error {
	dec := gob.NewDecoder(bytes.NewReader(raw))
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("cellstore: raw entry: undecodable envelope: %w", err)
	}
	if env.Format != formatVersion {
		return fmt.Errorf("cellstore: raw entry: format %d (this build stores %d)", env.Format, formatVersion)
	}
	if env.Key != key {
		return fmt.Errorf("cellstore: raw entry: key mismatch (entry %q): wrong cell or wrong binary fingerprint", env.Key)
	}
	if err := dec.Decode(value); err != nil {
		return fmt.Errorf("cellstore: raw entry: undecodable value: %w", err)
	}
	return nil
}
