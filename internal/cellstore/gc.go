package cellstore

import (
	"encoding/gob"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// GCResult summarizes one garbage-collection pass.
type GCResult struct {
	// Kept counts entries left in place; KeptBytes their total size.
	Kept      int
	KeptBytes int64
	// RemovedStale counts entries evicted because their envelope carried a
	// foreign format version or could not be decoded at all — they can
	// never hit again, only waste space.
	RemovedStale int
	// RemovedExpired counts intact entries evicted for age.
	RemovedExpired int
	// RemovedTemp counts abandoned temporary files (crashed writers).
	RemovedTemp  int
	RemovedBytes int64
}

// Removed is the total number of evicted files.
func (r GCResult) Removed() int {
	return r.RemovedStale + r.RemovedExpired + r.RemovedTemp
}

// tempMaxAge is how old an orphaned temp file must be before GC removes it;
// younger ones may belong to a writer that is still running.
const tempMaxAge = time.Hour

// GC walks the store and evicts entries that can no longer (or should no
// longer) hit: files whose envelope carries a stale format version or is
// unreadable, files older than maxAge (zero keeps any age — format-stale
// entries are still evicted), and temp-file litter from crashed writers.
// Age is the file's modification time, i.e. when the entry was written.
// Concurrent readers are safe: an entry disappearing under a Get is an
// ordinary miss. The walk continues past per-file errors; only a broken
// walk itself is returned.
func (s *Store) GC(maxAge time.Duration) (GCResult, error) {
	var res GCResult
	cutoff := time.Time{}
	// Temp litter must never outlive the entries themselves: under an
	// aggressive maxAge the default grace period is clamped down to it.
	tempAge := tempMaxAge
	if maxAge > 0 {
		cutoff = time.Now().Add(-maxAge)
		if maxAge < tempAge {
			tempAge = maxAge
		}
	}
	defer func() { s.evictions.Add(uint64(res.Removed())) }()
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // vanished underneath us
		}
		name := d.Name()
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			if time.Since(info.ModTime()) > tempAge {
				if os.Remove(path) == nil {
					res.RemovedTemp++
					res.RemovedBytes += info.Size()
				}
			}
		case strings.HasSuffix(name, ".gob"):
			switch {
			case !entryCurrent(path):
				if os.Remove(path) == nil {
					res.RemovedStale++
					res.RemovedBytes += info.Size()
				}
			case !cutoff.IsZero() && info.ModTime().Before(cutoff):
				if os.Remove(path) == nil {
					res.RemovedExpired++
					res.RemovedBytes += info.Size()
				}
			default:
				res.Kept++
				res.KeptBytes += info.Size()
			}
		}
		// Anything else (manifest.json, stray files) is not ours to touch.
		return nil
	})
	return res, err
}

// entryCurrent reports whether the file holds a decodable envelope with the
// current format version.
func entryCurrent(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var env envelope
	return gob.NewDecoder(f).Decode(&env) == nil && env.Format == formatVersion
}
