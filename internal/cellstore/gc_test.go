package cellstore

import (
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestGCEvictsStaleAndAged: a GC pass removes foreign-format and corrupt
// entries, removes aged entries when maxAge is set, keeps everything else,
// and never touches the manifest.
func TestGCEvictsStaleAndAged(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Four healthy entries.
	for _, k := range []string{"a", "b", "c", "d"} {
		if err := st.Put("key-"+k, k); err != nil {
			t.Fatal(err)
		}
	}
	// One aged entry (35 days old), one corrupt, one foreign-format.
	old := time.Now().Add(-35 * 24 * time.Hour)
	if err := os.Chtimes(st.path("key-a"), old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(st.path("key-b"), []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	foreign, err := os.Create(st.path("key-c"))
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(foreign)
	if err := enc.Encode(envelope{Format: formatVersion + 99, Key: "key-c"}); err != nil {
		t.Fatal(err)
	}
	foreign.Close()
	// Abandoned temp litter (old) and a fresh temp file (kept: a writer
	// might still own it).
	oldTmp := filepath.Join(dir, "00", ".tmp-dead")
	os.MkdirAll(filepath.Dir(oldTmp), 0o755)
	os.WriteFile(oldTmp, []byte("x"), 0o644)
	os.Chtimes(oldTmp, old, old)
	freshTmp := filepath.Join(dir, "00", ".tmp-live")
	os.WriteFile(freshTmp, []byte("x"), 0o644)
	// A manifest, which GC must leave alone.
	m := LoadManifest(dir)
	m.Record("fig1", 1, 2, 3)
	if err := m.Save(dir); err != nil {
		t.Fatal(err)
	}

	res, err := st.GC(30 * 24 * time.Hour)
	if err != nil {
		t.Fatalf("GC: %v", err)
	}
	if res.Kept != 1 {
		t.Errorf("Kept = %d, want 1 (only key-d survives)", res.Kept)
	}
	if res.RemovedStale != 2 || res.RemovedExpired != 1 || res.RemovedTemp != 1 {
		t.Errorf("Removed stale/expired/temp = %d/%d/%d, want 2/1/1",
			res.RemovedStale, res.RemovedExpired, res.RemovedTemp)
	}
	if res.Removed() != 4 {
		t.Errorf("Removed() = %d, want 4", res.Removed())
	}
	var v string
	if st.Get("key-a", &v) || st.Get("key-b", &v) || st.Get("key-c", &v) {
		t.Error("evicted entries still readable")
	}
	if !st.Get("key-d", &v) || v != "d" {
		t.Error("healthy entry lost")
	}
	if _, err := os.Stat(freshTmp); err != nil {
		t.Error("fresh temp file removed")
	}
	if got := LoadManifest(dir); got.Experiments["fig1"].Misses != 2 {
		t.Error("GC damaged the manifest")
	}
}

// TestGCZeroMaxAgeKeepsAnyAge: maxAge 0 evicts only unusable entries.
func TestGCZeroMaxAgeKeepsAnyAge(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if err := st.Put("ancient", 42); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-10 * 365 * 24 * time.Hour)
	os.Chtimes(st.path("ancient"), old, old)
	res, err := st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kept != 1 || res.Removed() != 0 {
		t.Errorf("GC(0) kept %d removed %d, want 1/0", res.Kept, res.Removed())
	}
}

// TestGCTempAgeClampedToMaxAge: under an aggressive maxAge, temp litter
// younger than the default one-hour grace period but older than maxAge is
// still evicted — crashed-writer droppings must not outlive the entries.
func TestGCTempAgeClampedToMaxAge(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if err := st.Put("live", 1); err != nil {
		t.Fatal(err)
	}
	// A temp file 10 minutes old: younger than tempMaxAge (1h) but older
	// than the aggressive 5-minute maxAge below.
	tmp := filepath.Join(dir, "00", ".tmp-crashed")
	os.MkdirAll(filepath.Dir(tmp), 0o755)
	os.WriteFile(tmp, []byte("x"), 0o644)
	tenMin := time.Now().Add(-10 * time.Minute)
	os.Chtimes(tmp, tenMin, tenMin)

	res, err := st.GC(5 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedTemp != 1 {
		t.Errorf("RemovedTemp = %d, want 1 (temp age clamped to maxAge)", res.RemovedTemp)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("clamped temp file still present")
	}

	// Without a maxAge the default one-hour grace period still protects it.
	tmp2 := filepath.Join(dir, "00", ".tmp-young")
	os.WriteFile(tmp2, []byte("x"), 0o644)
	os.Chtimes(tmp2, tenMin, tenMin)
	res, err = st.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemovedTemp != 0 {
		t.Errorf("GC(0) RemovedTemp = %d, want 0 (grace period applies)", res.RemovedTemp)
	}
}
