// Package cellstore is a persistent content-addressed result cache for
// simulation cells. Every cell of the paper's evaluation is a pure
// deterministic function of its configuration, so a result can be stored on
// disk under a hash of that configuration and replayed for free on any
// later invocation: `bashsim -exp all -scale full` resumes after an
// interruption, and unchanged cells cost zero simulations on re-run.
//
// Layout: <dir>/<hh>/<hash>.gob, where hash is the hex SHA-256 of the
// caller's key string and hh its first two digits (fan-out so no directory
// grows unboundedly). Each file is a gob stream of an envelope — format
// version plus the full key, guarding against format drift and hash
// collisions — followed by the caller's value. Files are written to a
// temporary name and renamed, so readers never observe partial writes.
//
// The store is forgiving by design: a missing, corrupt, stale-version or
// key-mismatched file is a miss, never an error — the caller simply
// re-simulates (and overwrites it). Callers version their key strings, so
// changing a cell's semantics orphans old entries rather than corrupting
// results.
package cellstore

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Fingerprint returns a hex digest of the running executable, computed once
// per process. Callers fold it into their cache keys so that results
// produced by one build of the simulator are never replayed by another: a
// code change — a protocol fix, a metrics tweak — changes the binary,
// which orphans every stale entry without anyone remembering to bump a
// format constant. Identical rebuilds keep their hits. If the executable
// cannot be read, the fingerprint is "unhashable", which still separates
// such processes from normally fingerprinted ones.
func Fingerprint() string {
	fingerprintOnce.Do(func() {
		fingerprint = "unhashable"
		exe, err := os.Executable()
		if err != nil {
			return
		}
		f, err := os.Open(exe)
		if err != nil {
			return
		}
		defer f.Close()
		h := sha256.New()
		if _, err := io.Copy(h, f); err != nil {
			return
		}
		fingerprint = hex.EncodeToString(h.Sum(nil))[:16]
	})
	return fingerprint
}

var (
	fingerprintOnce sync.Once
	fingerprint     string
)

// formatVersion is bumped whenever the on-disk envelope layout changes;
// files with any other version are ignored (treated as a miss).
const formatVersion = 1

// envelope prefixes every stored value.
type envelope struct {
	Format int
	Key    string
}

// Store is one on-disk cache directory. Safe for concurrent use.
type Store struct {
	dir                  string
	hits, misses, writes atomic.Uint64
	evictions            atomic.Uint64 // defective entries removed by Get, plus GC removals

	// keysMu guards keyCache, the per-file key memo behind Keys (raw.go).
	keysMu   sync.Mutex
	keyCache map[string]keyStamp
}

// Open returns the store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// stores memoizes For by directory so counters aggregate per process.
var stores sync.Map // dir -> *Store

// For returns the process-wide store for dir, opening it on first use, or
// nil when dir is empty or unusable (persistence is then simply off).
// Counters accumulate across every user of the same directory, which is
// what the CLIs report.
func For(dir string) *Store {
	if dir == "" {
		return nil
	}
	if v, ok := stores.Load(dir); ok {
		return v.(*Store)
	}
	st, err := Open(dir)
	if err != nil {
		return nil
	}
	v, _ := stores.LoadOrStore(dir, st)
	return v.(*Store)
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its file.
func (s *Store) path(key string) string {
	h := sha256.Sum256([]byte(key))
	hx := hex.EncodeToString(h[:])
	return filepath.Join(s.dir, hx[:2], hx+".gob")
}

// Get decodes the stored result for key into value (a pointer) and reports
// whether it was present and intact. Any defect — absent file, truncated or
// corrupt gob, foreign format version, colliding key — counts as a miss,
// and the defective file is removed: with stores advertised to peers (see
// Keys and the dist exchange), a poisoned entry left in place could be
// re-served forever, whereas removal costs at most one re-simulation. The
// removal can in principle race a concurrent Put refreshing the same path
// and delete the fresh entry; that, too, only costs a future re-simulation.
func (s *Store) Get(key string, value any) bool {
	path := s.path(key)
	f, err := os.Open(path)
	if err != nil {
		s.misses.Add(1)
		return false
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var env envelope
	if dec.Decode(&env) != nil || env.Format != formatVersion || env.Key != key {
		if os.Remove(path) == nil {
			s.evictions.Add(1)
		}
		s.misses.Add(1)
		return false
	}
	if dec.Decode(value) != nil {
		if os.Remove(path) == nil {
			s.evictions.Add(1)
		}
		s.misses.Add(1)
		return false
	}
	s.hits.Add(1)
	return true
}

// Put stores value under key, atomically (write to a temp file, then
// rename). Errors are returned for observability but are safe to ignore:
// a failed Put only costs a future re-simulation.
func (s *Store) Put(key string, value any) error {
	path := s.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(envelope{Format: formatVersion, Key: key}); err == nil {
		err = enc.Encode(value)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.writes.Add(1)
	return nil
}

// Counters reports lifetime hit/miss/write counts for progress output.
func (s *Store) Counters() (hits, misses, writes uint64) {
	return s.hits.Load(), s.misses.Load(), s.writes.Load()
}

// Evictions reports the lifetime count of entries this process removed from
// the store: defective files evicted by Get plus GC removals.
func (s *Store) Evictions() uint64 { return s.evictions.Load() }
