package cellstore

import (
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name string
	X    float64
	Ns   []int64
}

func TestRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "cell", X: 3.25, Ns: []int64{1, 2, 3}}
	var out payload
	if st.Get("k1", &out) {
		t.Fatal("hit on empty store")
	}
	if err := st.Put("k1", in); err != nil {
		t.Fatal(err)
	}
	if !st.Get("k1", &out) {
		t.Fatal("miss after Put")
	}
	if out.Name != in.Name || out.X != in.X || len(out.Ns) != 3 {
		t.Fatalf("round-trip mangled: %+v", out)
	}
	if st.Get("k2", &out) {
		t.Fatal("hit on absent key")
	}
	hits, misses, writes := st.Counters()
	if hits != 1 || misses != 2 || writes != 1 {
		t.Fatalf("counters = %d/%d/%d, want 1/2/1", hits, misses, writes)
	}
}

// corrupt locates the single stored file and rewrites it with content.
func corrupt(t *testing.T, dir string, content []byte) {
	t.Helper()
	var file string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			file = path
		}
		return err
	})
	if err != nil || file == "" {
		t.Fatalf("no stored file found: %v", err)
	}
	if err := os.WriteFile(file, content, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptAndStaleIgnored: truncated garbage, a foreign format version,
// and a colliding key all read as misses, never as errors or wrong data.
func TestCorruptAndStaleIgnored(t *testing.T) {
	t.Run("garbage", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := Open(dir)
		st.Put("k", payload{Name: "good"})
		corrupt(t, dir, []byte("not a gob stream"))
		var out payload
		if st.Get("k", &out) {
			t.Fatal("corrupt file read as a hit")
		}
	})
	t.Run("stale-version", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := Open(dir)
		st.Put("k", payload{Name: "good"})
		// Rewrite the entry with a future format version; it must be ignored.
		f, err := os.Create(st.path("k"))
		if err != nil {
			t.Fatal(err)
		}
		enc := gob.NewEncoder(f)
		if err := enc.Encode(envelope{Format: formatVersion + 1, Key: "k"}); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(payload{Name: "stale"}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		var out payload
		if st.Get("k", &out) {
			t.Fatal("stale-version file read as a hit")
		}
	})
	t.Run("key-mismatch", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := Open(dir)
		st.Put("other", payload{Name: "other"})
		// Copy the file to where "k" would live: the embedded key differs.
		src := st.path("other")
		dst := st.path("k")
		os.MkdirAll(filepath.Dir(dst), 0o755)
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		os.WriteFile(dst, data, 0o644)
		var out payload
		if st.Get("k", &out) {
			t.Fatal("key-mismatched file read as a hit")
		}
	})
}

func TestForMemoizes(t *testing.T) {
	if For("") != nil {
		t.Fatal("For(\"\") should be nil")
	}
	dir := t.TempDir()
	a, b := For(dir), For(dir)
	if a == nil || a != b {
		t.Fatal("For should memoize per directory")
	}
}
