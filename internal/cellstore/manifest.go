package cellstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// manifestName is the manifest's file name under the store directory. It is
// JSON (unlike the gob entries) so humans and dashboards can read cache
// effectiveness without the simulator.
const manifestName = "manifest.json"

// ManifestEntry accumulates one experiment's lifetime cache effectiveness.
type ManifestEntry struct {
	Runs    uint64    `json:"runs"`
	Hits    uint64    `json:"hits"`
	Misses  uint64    `json:"misses"`
	Writes  uint64    `json:"writes"`
	LastRun time.Time `json:"last_run"`
}

// HitRate is hits over lookups, 0 when the entry never looked anything up.
func (e ManifestEntry) HitRate() float64 {
	if e.Hits+e.Misses == 0 {
		return 0
	}
	return float64(e.Hits) / float64(e.Hits+e.Misses)
}

// Manifest records per-experiment hit/miss/write counts, persisted alongside
// the store's entries. The CLIs fold each run's counter deltas in and print
// the accumulated table afterwards, so cache effectiveness per experiment
// survives across invocations — the cache-content advertisement idea: the
// store says what it holds and how often that pays, without touching the
// entries themselves. Writers are expected to be single processes (the
// CLIs); concurrent saves are atomic individually, last one wins.
type Manifest struct {
	Experiments map[string]ManifestEntry `json:"experiments"`
}

// LoadManifest reads dir's manifest; a missing, unreadable, or corrupt
// manifest yields an empty one (the store's forgiving-by-design rule).
func LoadManifest(dir string) *Manifest {
	m := &Manifest{Experiments: map[string]ManifestEntry{}}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil || json.Unmarshal(data, m) != nil || m.Experiments == nil {
		m.Experiments = map[string]ManifestEntry{}
	}
	return m
}

// Record folds one run's counter deltas into the named experiment's entry.
func (m *Manifest) Record(experiment string, hits, misses, writes uint64) {
	e := m.Experiments[experiment]
	e.Runs++
	e.Hits += hits
	e.Misses += misses
	e.Writes += writes
	e.LastRun = time.Now().UTC()
	m.Experiments[experiment] = e
}

// Save writes the manifest atomically (temp + rename) under dir.
func (m *Manifest) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".tmp-manifest-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// String renders the manifest as an aligned table sorted by experiment id.
func (m *Manifest) String() string {
	if len(m.Experiments) == 0 {
		return "cell-store manifest: empty\n"
	}
	ids := make([]string, 0, len(m.Experiments))
	for id := range m.Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %10s %10s %10s %8s\n", "experiment", "runs", "hits", "misses", "writes", "hit-rate")
	for _, id := range ids {
		e := m.Experiments[id]
		fmt.Fprintf(&b, "%-24s %6d %10d %10d %10d %7.1f%%\n",
			id, e.Runs, e.Hits, e.Misses, e.Writes, 100*e.HitRate())
	}
	return b.String()
}
