package cellstore

import (
	"encoding/gob"
	"os"
	"testing"
)

// TestKeysEnumeratesServableEntries: Keys lists exactly the intact
// current-format entries, sorted, and skips anything it could not serve.
func TestKeysEnumeratesServableEntries(t *testing.T) {
	dir := t.TempDir()
	st, _ := Open(dir)
	if got := st.Keys(); len(got) != 0 {
		t.Fatalf("empty store Keys = %v, want none", got)
	}
	for _, k := range []string{"cell-b", "cell-a", "cell-c"} {
		if err := st.Put(k, payload{Name: k}); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Keys()
	want := []string{"cell-a", "cell-b", "cell-c"}
	if len(got) != len(want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	// A second scan must serve from the stat cache and agree.
	if again := st.Keys(); len(again) != len(want) {
		t.Fatalf("cached Keys = %v, want %v", again, want)
	}

	// A corrupt entry and a foreign-format entry must not be advertised.
	corrupt(t, dir, []byte("definitely not gob"))
	f, err := os.Create(st.path("cell-b"))
	if err != nil {
		t.Fatal(err)
	}
	enc := gob.NewEncoder(f)
	enc.Encode(envelope{Format: formatVersion + 7, Key: "cell-b"})
	enc.Encode(payload{Name: "future"})
	f.Close()
	got = st.Keys()
	if len(got) != 1 {
		t.Fatalf("Keys after corruption = %v, want exactly one survivor", got)
	}
}

// TestRawRoundTrip: GetRaw bytes install via PutRaw on a second store and
// decode to the original value.
func TestRawRoundTrip(t *testing.T) {
	src, _ := Open(t.TempDir())
	dst, _ := Open(t.TempDir())
	in := payload{Name: "cell", X: 1.5, Ns: []int64{4, 5}}
	if err := src.Put("k", in); err != nil {
		t.Fatal(err)
	}
	raw, ok := src.GetRaw("k")
	if !ok {
		t.Fatal("GetRaw missed a present entry")
	}
	var direct payload
	if err := DecodeRaw(raw, "k", &direct); err != nil {
		t.Fatalf("DecodeRaw: %v", err)
	}
	if direct.Name != in.Name || direct.X != in.X || len(direct.Ns) != len(in.Ns) {
		t.Fatalf("DecodeRaw value = %+v, want %+v", direct, in)
	}
	if err := dst.PutRaw("k", raw); err != nil {
		t.Fatalf("PutRaw: %v", err)
	}
	var out payload
	if !dst.Get("k", &out) {
		t.Fatal("installed raw entry missed on Get")
	}
	if out.Name != in.Name || out.X != in.X || len(out.Ns) != 2 {
		t.Fatalf("raw round-trip mangled: %+v", out)
	}
	if !dst.Contains("k") || dst.Contains("absent") {
		t.Fatal("Contains disagrees with the store's contents")
	}
}

// TestPutRawRejectsDefects: corrupt bytes, a foreign format, and a key (=
// fingerprint) mismatch are all rejected before anything touches disk.
func TestPutRawRejectsDefects(t *testing.T) {
	src, _ := Open(t.TempDir())
	dst, _ := Open(t.TempDir())
	src.Put("honest-key", payload{Name: "v"})
	raw, _ := src.GetRaw("honest-key")

	if err := dst.PutRaw("honest-key", []byte("garbage bytes")); err == nil {
		t.Fatal("PutRaw accepted undecodable bytes")
	}
	// A peer claiming these bytes belong to a different key — which is how
	// a binary-fingerprint mismatch manifests, keys embedding the
	// fingerprint — must be refused.
	if err := dst.PutRaw("key-with-other-fingerprint", raw); err == nil {
		t.Fatal("PutRaw accepted a key-mismatched entry")
	}
	var v payload
	if err := DecodeRaw(raw, "key-with-other-fingerprint", &v); err == nil {
		t.Fatal("DecodeRaw accepted a key-mismatched entry")
	}
	if err := DecodeRaw([]byte("garbage"), "honest-key", &v); err == nil {
		t.Fatal("DecodeRaw accepted garbage")
	}
	if dst.Contains("honest-key") || dst.Contains("key-with-other-fingerprint") {
		t.Fatal("a rejected PutRaw left a file behind")
	}
	if err := dst.PutRaw("honest-key", raw); err != nil {
		t.Fatalf("PutRaw rejected an intact entry: %v", err)
	}
}

// TestGetRemovesPoisonedEntries: a corrupt, stale-format, or key-mismatched
// file is deleted by the Get (and GetRaw) that discovers it, so it cannot
// linger and be re-advertised to peers.
func TestGetRemovesPoisonedEntries(t *testing.T) {
	t.Run("get", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := Open(dir)
		st.Put("k", payload{Name: "good"})
		corrupt(t, dir, []byte("not a gob stream"))
		var out payload
		if st.Get("k", &out) {
			t.Fatal("corrupt file read as a hit")
		}
		if _, err := os.Stat(st.path("k")); !os.IsNotExist(err) {
			t.Fatal("Get left the poisoned file in place")
		}
		if got := st.Keys(); len(got) != 0 {
			t.Fatalf("poisoned entry still advertised: %v", got)
		}
	})
	t.Run("getraw", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := Open(dir)
		st.Put("k", payload{Name: "good"})
		corrupt(t, dir, []byte("still not gob"))
		if _, ok := st.GetRaw("k"); ok {
			t.Fatal("corrupt file served raw")
		}
		if _, err := os.Stat(st.path("k")); !os.IsNotExist(err) {
			t.Fatal("GetRaw left the poisoned file in place")
		}
	})
	t.Run("truncated-value", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := Open(dir)
		st.Put("k", payload{Name: "good"})
		// An intact envelope with a truncated value body must also be
		// removed: VerifyRaw alone would pass it, Get must not.
		raw, _ := st.GetRaw("k")
		os.WriteFile(st.path("k"), raw[:len(raw)-3], 0o644)
		var out payload
		if st.Get("k", &out) {
			t.Fatal("truncated value read as a hit")
		}
		if _, err := os.Stat(st.path("k")); !os.IsNotExist(err) {
			t.Fatal("Get left the truncated file in place")
		}
	})
}
