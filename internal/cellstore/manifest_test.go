package cellstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestManifestRoundTrip: record, save, reload, accumulate.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := LoadManifest(dir)
	if len(m.Experiments) != 0 {
		t.Fatalf("missing manifest not empty: %+v", m.Experiments)
	}
	m.Record("fig1", 10, 5, 5)
	m.Record("fig8", 0, 21, 21)
	if err := m.Save(dir); err != nil {
		t.Fatalf("Save: %v", err)
	}

	got := LoadManifest(dir)
	e := got.Experiments["fig1"]
	if e.Runs != 1 || e.Hits != 10 || e.Misses != 5 || e.Writes != 5 {
		t.Errorf("fig1 entry = %+v", e)
	}
	if r := e.HitRate(); r < 0.66 || r > 0.67 {
		t.Errorf("fig1 hit rate = %v, want ~2/3", r)
	}
	if e.LastRun.IsZero() {
		t.Error("LastRun not stamped")
	}

	// A later run accumulates into the same entry.
	got.Record("fig1", 15, 0, 0)
	if err := got.Save(dir); err != nil {
		t.Fatal(err)
	}
	again := LoadManifest(dir)
	e = again.Experiments["fig1"]
	if e.Runs != 2 || e.Hits != 25 || e.Misses != 5 {
		t.Errorf("accumulated fig1 entry = %+v", e)
	}

	s := again.String()
	for _, want := range []string{"fig1", "fig8", "hit-rate"} {
		if !strings.Contains(s, want) {
			t.Errorf("manifest table missing %q:\n%s", want, s)
		}
	}
}

// TestManifestCorruptIsEmpty: a damaged manifest degrades to empty, never
// to an error (the store's forgiving-by-design rule).
func TestManifestCorruptIsEmpty(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := LoadManifest(dir)
	if len(m.Experiments) != 0 {
		t.Errorf("corrupt manifest not empty: %+v", m.Experiments)
	}
	m.Record("x", 1, 1, 1) // must not panic on the recovered map
}

// TestManifestEmptyString renders a placeholder rather than a bare header.
func TestManifestEmptyString(t *testing.T) {
	m := LoadManifest(t.TempDir())
	if !strings.Contains(m.String(), "empty") {
		t.Errorf("empty manifest renders %q", m.String())
	}
}
