package workload

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/network"
	"repro/internal/sim"
)

func TestLockingGeneratesStores(t *testing.T) {
	lk := NewLocking(100, 0)
	rng := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		think, op := lk.Next(rng, 0)
		if think != 0 {
			t.Fatalf("think = %d with zero think time", think)
		}
		if !op.Store {
			t.Fatal("lock acquire must be a store")
		}
		if op.Addr >= 100 {
			t.Fatalf("lock %d outside pool", op.Addr)
		}
	}
}

func TestLockingThinkTime(t *testing.T) {
	lk := NewLocking(100, 250)
	rng := sim.NewRNG(1)
	think, _ := lk.Next(rng, 0)
	if think != 250 {
		t.Fatalf("constant think = %d", think)
	}
	lk.Exponential = true
	var sum sim.Time
	const n = 50000
	for i := 0; i < n; i++ {
		th, _ := lk.Next(rng, 0)
		sum += th
	}
	mean := float64(sum) / n
	if mean < 230 || mean > 270 {
		t.Fatalf("exponential think mean = %.1f, want ~250", mean)
	}
}

func TestLockingWarmBlocksMatchPool(t *testing.T) {
	lk := NewLocking(64, 0)
	wb := lk.WarmBlocks()
	if len(wb) != 64 {
		t.Fatalf("warm blocks = %d", len(wb))
	}
	seen := map[coherence.Addr]bool{}
	for _, a := range wb {
		seen[a] = true
	}
	rng := sim.NewRNG(2)
	for i := 0; i < 1000; i++ {
		_, op := lk.Next(rng, 0)
		if !seen[op.Addr] {
			t.Fatalf("generated lock %d outside warm set", op.Addr)
		}
	}
}

func TestSyntheticMix(t *testing.T) {
	w := OLTP()
	rng := sim.NewRNG(3)
	shared, stores := 0, 0
	warm := map[coherence.Addr]bool{}
	for _, a := range w.WarmBlocks() {
		warm[a] = true
	}
	const n = 50000
	var think sim.Time
	for i := 0; i < n; i++ {
		th, op := w.Next(rng, 2)
		think += th
		if warm[op.Addr] {
			shared++
		}
		if op.Store {
			stores++
		}
	}
	sharedFrac := float64(shared) / n
	if sharedFrac < w.SharingFraction-0.02 || sharedFrac > w.SharingFraction+0.02 {
		t.Fatalf("shared fraction = %.3f, want ~%.2f", sharedFrac, w.SharingFraction)
	}
	storeFrac := float64(stores) / n
	if storeFrac < w.StoreFraction-0.02 || storeFrac > w.StoreFraction+0.02 {
		t.Fatalf("store fraction = %.3f, want ~%.2f", storeFrac, w.StoreFraction)
	}
	mean := float64(think) / n
	if mean < float64(w.MeanThink)*0.95 || mean > float64(w.MeanThink)*1.05 {
		t.Fatalf("think mean = %.1f, want ~%d", mean, w.MeanThink)
	}
}

func TestSyntheticPrivateRegionsDisjoint(t *testing.T) {
	w := Apache()
	rng := sim.NewRNG(4)
	regions := map[coherence.Addr]int{} // private block -> node
	warm := map[coherence.Addr]bool{}
	for _, a := range w.WarmBlocks() {
		warm[a] = true
	}
	for node := 0; node < 4; node++ {
		for i := 0; i < 5000; i++ {
			_, op := w.Next(rng, network.NodeID(node))
			if warm[op.Addr] {
				continue
			}
			if prev, ok := regions[op.Addr]; ok && prev != node {
				t.Fatalf("private block %d used by nodes %d and %d", op.Addr, prev, node)
			}
			regions[op.Addr] = node
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, n := range Names() {
		if ByName(n) == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName of unknown workload not nil")
	}
	if ByName("oltp").(*Synthetic).Name != "OLTP" {
		t.Fatal("lowercase lookup broken")
	}
	if ByName("migratory").(*Migratory).Name != "Migratory" {
		t.Fatal("migratory lookup broken")
	}
}

// TestMigratoryPattern: every episode is a load of a pool block followed by
// exactly Writes stores to the same block, and warm blocks cover the pool.
func TestMigratoryPattern(t *testing.T) {
	w := NewMigratory()
	if len(w.WarmBlocks()) != w.Blocks {
		t.Fatalf("warm blocks = %d, want %d", len(w.WarmBlocks()), w.Blocks)
	}
	pool := map[coherence.Addr]bool{}
	for _, a := range w.WarmBlocks() {
		pool[a] = true
	}
	rng := sim.NewRNG(7)
	for node := 0; node < 3; node++ {
		self := network.NodeID(node)
		for ep := 0; ep < 50; ep++ {
			_, op := w.Next(rng, self)
			if op.Store {
				t.Fatalf("node %d episode %d opened with a store", node, ep)
			}
			if !pool[op.Addr] {
				t.Fatalf("node %d accessed %d outside the migratory pool", node, op.Addr)
			}
			addr := op.Addr
			for s := 0; s < w.Writes; s++ {
				_, op := w.Next(rng, self)
				if !op.Store || op.Addr != addr {
					t.Fatalf("node %d episode %d store %d: got store=%t addr=%d, want store of %d",
						node, ep, s, op.Store, op.Addr, addr)
				}
			}
		}
	}
}

// TestMigratoryEpisodesInterleave: per-node episode state is independent,
// so interleaved callers never corrupt each other's bursts.
func TestMigratoryEpisodesInterleave(t *testing.T) {
	w := NewMigratory()
	rng := sim.NewRNG(9)
	_, opA := w.Next(rng, 0) // node 0 opens an episode
	_, opB := w.Next(rng, 1) // node 1 opens its own
	if opA.Store || opB.Store {
		t.Fatal("episode openings must be loads")
	}
	_, sA := w.Next(rng, 0)
	_, sB := w.Next(rng, 1)
	if !sA.Store || sA.Addr != opA.Addr {
		t.Fatalf("node 0 store went to %d, want %d", sA.Addr, opA.Addr)
	}
	if !sB.Store || sB.Addr != opB.Addr {
		t.Fatalf("node 1 store went to %d, want %d", sB.Addr, opB.Addr)
	}
}

func TestPrivateCursorWrapsWorkingSet(t *testing.T) {
	w := &Synthetic{Name: "t", MeanThink: 1, SharingFraction: 0,
		StoreFraction: 1, SharedBlocks: 1, PrivateBlocks: 10}
	rng := sim.NewRNG(5)
	seen := map[coherence.Addr]int{}
	for i := 0; i < 100; i++ {
		_, op := w.Next(rng, 1)
		seen[op.Addr]++
	}
	if len(seen) != 10 {
		t.Fatalf("private working set = %d blocks, want 10", len(seen))
	}
	for a, c := range seen {
		if c != 10 {
			t.Fatalf("block %d visited %d times, want 10 (cyclic)", a, c)
		}
	}
}
