// Package workload generates the memory reference streams of the paper's
// evaluation: the locking microbenchmark of Section 4.1 and synthetic
// equivalents of the five full-system workloads of Section 5.1.
//
// The paper drove its timing simulator from Simics full-system execution; we
// cannot run DB2, Apache, the JVM, MySQL or Solaris, so each workload is
// replaced by a parameterized generator that reproduces the properties the
// paper identifies as decisive: the miss rate (modeled as think time between
// misses), the fraction of sharing misses (cache-to-cache transfers), and
// the read/write mix. DESIGN.md Section 2 documents the substitution.
package workload

import (
	"repro/internal/coherence"
	"repro/internal/network"
	"repro/internal/sim"
)

// Locking is the microbenchmark of Section 4.1: each processor repeatedly
// acquires and releases generally-uncontended locks, picking a new random
// lock after each release. The lock pool is sized near the per-cache line
// count so that acquires are sharing misses almost exclusively; the paper
// reaches that state by warm-up, we reach it by preheating ownership (see
// core.System.PreheatOwned). ThinkTime models computation while holding or
// between locks (Figure 9's x-axis); the base microbenchmark uses zero.
type Locking struct {
	Locks     int
	ThinkTime sim.Time
	// Exponential draws think time from an exponential distribution with
	// mean ThinkTime instead of a constant.
	Exponential bool
	// lockBase offsets lock addresses away from other workloads' regions.
	lockBase coherence.Addr
}

// NewLocking returns the microbenchmark over the given pool size.
func NewLocking(locks int, think sim.Time) *Locking {
	if locks <= 0 {
		locks = 8192
	}
	return &Locking{Locks: locks, ThinkTime: think}
}

// WarmBlocks lists the lock blocks to preheat so acquires are sharing
// misses from the first access.
func (l *Locking) WarmBlocks() []coherence.Addr {
	out := make([]coherence.Addr, l.Locks)
	for i := range out {
		out[i] = coherence.Addr(i) + l.lockBase
	}
	return out
}

// Next implements core.Workload: one lock acquire (a store that must obtain
// exclusive ownership) per iteration. The release is a cache hit on the
// held M copy and is not modeled separately.
func (l *Locking) Next(rng *sim.RNG, self network.NodeID) (sim.Time, coherence.Op) {
	think := l.ThinkTime
	if l.Exponential && think > 0 {
		think = rng.ExpTime(float64(l.ThinkTime))
	}
	lock := coherence.Addr(rng.Intn(l.Locks)) + l.lockBase
	return think, coherence.Op{Store: true, Addr: lock}
}

// Synthetic models a full-system workload as a stream of L2 misses:
// each step thinks for an exponentially distributed time (the instructions
// between misses on the paper's 4-BIPS processor), then issues either a
// sharing miss (a block in the globally shared pool, likely owned by
// another cache) or a cold/capacity miss (a fresh private block, satisfied
// by memory; stores to such blocks later produce writebacks as the cache
// fills and evicts).
type Synthetic struct {
	// Name labels the workload in reports.
	Name string
	// MeanThink is the mean think time between misses in cycles.
	MeanThink sim.Time
	// SharingFraction is the probability a miss targets the shared pool.
	SharingFraction float64
	// StoreFraction is the probability an access is a store.
	StoreFraction float64
	// SharedBlocks sizes the globally shared pool.
	SharedBlocks int
	// PrivateBlocks sizes each processor's private region; private misses
	// cycle through it so reuse (and eviction traffic) emerges naturally.
	PrivateBlocks int
	// UnicastHintFraction marks that fraction of private misses with the
	// Section 7 unicast hint (e.g. instruction fetches): private-region
	// blocks are never cache-to-cache, so broadcasting for them is waste a
	// hint can eliminate without any adaptivity.
	UnicastHintFraction float64

	privCursor map[network.NodeID]int
}

// WarmBlocks lists the shared-pool blocks to preheat.
func (w *Synthetic) WarmBlocks() []coherence.Addr {
	out := make([]coherence.Addr, w.SharedBlocks)
	for i := range out {
		out[i] = sharedBase + coherence.Addr(i)
	}
	return out
}

// Next implements core.Workload.
func (w *Synthetic) Next(rng *sim.RNG, self network.NodeID) (sim.Time, coherence.Op) {
	think := rng.ExpTime(float64(w.MeanThink))
	store := rng.Float64() < w.StoreFraction
	if rng.Float64() < w.SharingFraction {
		a := sharedBase + coherence.Addr(rng.Intn(w.SharedBlocks))
		return think, coherence.Op{Store: store, Addr: a}
	}
	if w.privCursor == nil {
		w.privCursor = make(map[network.NodeID]int)
	}
	cur := w.privCursor[self]
	w.privCursor[self] = cur + 1
	a := privateBase(self) + coherence.Addr(cur%w.PrivateBlocks)
	hint := w.UnicastHintFraction > 0 && rng.Float64() < w.UnicastHintFraction
	return think, coherence.Op{Store: store, Addr: a, HintUnicast: hint}
}

// Generator is a registered workload generator: a reference stream
// (core.Workload's Next) plus the block list to preheat so the steady-state
// sharing pattern holds from the first access. ByName resolves one.
type Generator interface {
	Next(rng *sim.RNG, self network.NodeID) (sim.Time, coherence.Op)
	WarmBlocks() []coherence.Addr
}

// Migratory is the migratory-sharing microbenchmark from the
// destination-set-prediction follow-up work: data that moves processor to
// processor in read-modify-write episodes (per-object counters, work-queue
// entries, reference counts). Each episode loads a block last written by
// another processor — a sharing miss fetching the previous owner's M copy —
// then stores to it (upgrading to ownership) Writes times, then moves to a
// new random block, migrating the dirty copy onward. The pattern is the
// worst case for indirection protocols (every episode pays the 3-hop
// directory walk) and the cleanest win for owner prediction, which is why
// the follow-up papers single it out.
type Migratory struct {
	// Name labels the workload in reports.
	Name string
	// Blocks sizes the migratory object pool.
	Blocks int
	// MeanThink is the mean think time before an episode, in cycles
	// (exponentially distributed). Within an episode the stores follow at
	// a quarter of it, modeling the short read-modify-write window.
	MeanThink sim.Time
	// Writes is the number of stores per episode after the opening load.
	Writes int

	visits map[network.NodeID]*migVisit
}

// migVisit tracks one processor's in-progress episode.
type migVisit struct {
	addr coherence.Addr
	left int // stores still to issue
}

// NewMigratory returns the migratory workload with its standard shape.
func NewMigratory() *Migratory {
	return &Migratory{Name: "Migratory", Blocks: 512, MeanThink: 200, Writes: 2}
}

// WarmBlocks lists the migratory pool so episodes hit dirty remote copies
// from the first access.
func (w *Migratory) WarmBlocks() []coherence.Addr {
	out := make([]coherence.Addr, w.Blocks)
	for i := range out {
		out[i] = migratoryBase + coherence.Addr(i)
	}
	return out
}

// Next implements core.Workload.
func (w *Migratory) Next(rng *sim.RNG, self network.NodeID) (sim.Time, coherence.Op) {
	if w.visits == nil {
		w.visits = make(map[network.NodeID]*migVisit)
	}
	if v := w.visits[self]; v != nil && v.left > 0 {
		v.left--
		think := rng.ExpTime(float64(w.MeanThink) / 4)
		return think, coherence.Op{Store: true, Addr: v.addr}
	}
	addr := migratoryBase + coherence.Addr(rng.Intn(w.Blocks))
	w.visits[self] = &migVisit{addr: addr, left: w.Writes}
	return rng.ExpTime(float64(w.MeanThink)), coherence.Op{Addr: addr}
}

// ProducerConsumer is the producer-consumer microbenchmark from the
// destination-set-prediction follow-up work: each block has one fixed
// producer that periodically writes it (filling a buffer slot, publishing a
// result) and a population of consumers that read it. Ownership therefore
// ping-pongs between one stable writer and transient readers — the past
// reliably predicts the future — which makes the pattern the owner
// predictor's best case: after one observation the predicted owner is right
// almost every time, unlike Migratory, whose owner changes on every episode.
// It is the paper-adjacent counterpoint the ROADMAP calls for: prediction
// shines exactly where adaptive broadcasting alone cannot help, because the
// needed third party (the producer) is never the home node.
type ProducerConsumer struct {
	// Name labels the workload in reports.
	Name string
	// Blocks sizes the buffer pool.
	Blocks int
	// Producers is the number of distinct producer roles; block i is
	// produced by role i%Producers, and a node with self%Producers == role
	// acts as that role's producer. With Producers equal to the node count
	// every block has exactly one producing node.
	Producers int
	// MeanThink is the mean think time between steps in cycles
	// (exponentially distributed).
	MeanThink sim.Time
	// ProduceFraction is the probability a producer step writes (the rest
	// of its steps consume other roles' blocks, like everyone else).
	ProduceFraction float64
}

// NewProducerConsumer returns the microbenchmark with its standard shape.
func NewProducerConsumer() *ProducerConsumer {
	return &ProducerConsumer{
		Name: "ProducerConsumer", Blocks: 512, Producers: 16,
		MeanThink: 250, ProduceFraction: 0.5,
	}
}

// WarmBlocks lists the buffer pool so consumption hits dirty remote copies
// from the first access. Preheating owner i%nodes matches the producer
// assignment whenever Producers == nodes.
func (w *ProducerConsumer) WarmBlocks() []coherence.Addr {
	out := make([]coherence.Addr, w.Blocks)
	for i := range out {
		out[i] = producerBase + coherence.Addr(i)
	}
	return out
}

// producerOf returns the producing role of a block.
func (w *ProducerConsumer) producerOf(i int) int { return i % w.Producers }

// Next implements core.Workload: pick a block; its producer (re)writes it
// with probability ProduceFraction, every other node — and the producer's
// remaining steps — reads it.
func (w *ProducerConsumer) Next(rng *sim.RNG, self network.NodeID) (sim.Time, coherence.Op) {
	think := rng.ExpTime(float64(w.MeanThink))
	i := rng.Intn(w.Blocks)
	addr := producerBase + coherence.Addr(i)
	if w.producerOf(i) == int(self)%w.Producers && rng.Float64() < w.ProduceFraction {
		return think, coherence.Op{Store: true, Addr: addr}
	}
	return think, coherence.Op{Addr: addr}
}

// Address-space layout: locks at the bottom, the shared pool above them,
// the migratory pool between, then per-node private regions. Block
// addresses are abstract line numbers.
const (
	sharedBase    coherence.Addr = 1 << 24
	migratoryBase coherence.Addr = 1 << 26
	producerBase  coherence.Addr = 1 << 27
	privateStride coherence.Addr = 1 << 20
)

func privateBase(self network.NodeID) coherence.Addr {
	return coherence.Addr(1<<28) + coherence.Addr(self)*privateStride
}

// The five workloads of Table 2, calibrated to the qualitative properties
// the paper reports rather than to absolute miss rates: OLTP has abundant
// sharing misses (the biggest Snooping-over-Directory latency win); SPECjbb
// combines a high miss rate on private heap data with a notably small
// sharing fraction, which is why Directory overtakes Snooping on it once
// broadcasts cost 4x (Figure 12); Slashcode and Barnes-Hut have lower miss
// rates, shrinking all protocol differences. Mean think times are in cycles
// on the paper's 1 cycle/ns target.

// OLTP models the DB2/TPC-C workload.
func OLTP() *Synthetic {
	return &Synthetic{
		Name: "OLTP", MeanThink: 350, SharingFraction: 0.55,
		StoreFraction: 0.40, SharedBlocks: 16384, PrivateBlocks: 32768,
	}
}

// Apache models the Apache/SURGE static web serving workload.
func Apache() *Synthetic {
	return &Synthetic{
		Name: "Apache", MeanThink: 280, SharingFraction: 0.45,
		StoreFraction: 0.35, SharedBlocks: 16384, PrivateBlocks: 32768,
	}
}

// SPECjbb models the server-side Java workload: a high miss rate to private
// heap objects with the small sharing fraction the paper notes.
func SPECjbb() *Synthetic {
	return &Synthetic{
		Name: "SPECjbb", MeanThink: 150, SharingFraction: 0.12,
		StoreFraction: 0.45, SharedBlocks: 8192, PrivateBlocks: 49152,
	}
}

// Slashcode models the dynamic web serving workload (lower miss rate).
func Slashcode() *Synthetic {
	return &Synthetic{
		Name: "Slashcode", MeanThink: 550, SharingFraction: 0.40,
		StoreFraction: 0.35, SharedBlocks: 16384, PrivateBlocks: 32768,
	}
}

// BarnesHut models the SPLASH-2 scientific application (low miss rate,
// read-heavy force computation with migratory updates).
func BarnesHut() *Synthetic {
	return &Synthetic{
		Name: "Barnes-Hut", MeanThink: 650, SharingFraction: 0.35,
		StoreFraction: 0.25, SharedBlocks: 8192, PrivateBlocks: 24576,
	}
}

// ByName returns a fresh instance of a named workload generator, nil if
// unknown.
func ByName(name string) Generator {
	switch name {
	case "oltp", "OLTP":
		return OLTP()
	case "apache", "Apache":
		return Apache()
	case "specjbb", "SPECjbb":
		return SPECjbb()
	case "slashcode", "Slashcode":
		return Slashcode()
	case "barnes", "barnes-hut", "Barnes-Hut":
		return BarnesHut()
	case "migratory", "Migratory":
		return NewMigratory()
	case "producer-consumer", "ProducerConsumer":
		return NewProducerConsumer()
	}
	return nil
}

// Names lists the registered named workloads: the five Table 2 macro
// workloads in the paper's figure order, then the sharing-pattern
// microbenchmarks from the destination-set-prediction follow-ups.
func Names() []string {
	return []string{"Apache", "Barnes-Hut", "OLTP", "Slashcode", "SPECjbb", "Migratory", "ProducerConsumer"}
}
