package coherence

// Lifecycle tests for the hot-path free lists: line records recycled on
// eviction/invalidation, transactions recycled at completion (including the
// BASH retry and nack paths), directory entries recycled on reset, and —
// the part that catches real bugs — poisoned-reuse checks proving a record
// that comes back from a free list carries no state from its previous life.

import (
	"strings"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/cache"
	"repro/internal/network"
	"repro/internal/sim"
)

// clusterNode mirrors core.Node's delivery plumbing: both controllers see
// ordered deliveries, unordered messages route by kind, and the node
// releases the per-delivery packet reference afterwards.
type clusterNode struct {
	cache CacheController
	mem   MemController
	rec   *Recycler
}

func (n *clusterNode) DeliverOrdered(m *network.Message) {
	pkt := m.Payload.(*Packet)
	n.cache.OnOrdered(m)
	n.mem.OnOrdered(m)
	n.rec.Release(pkt)
}

func (n *clusterNode) DeliverUnordered(m *network.Message) {
	pkt := m.Payload.(*Packet)
	switch pkt.Kind {
	case Data, Ack, Nack:
		n.cache.OnUnordered(pkt)
	default:
		n.mem.OnUnordered(pkt)
	}
	n.rec.Release(pkt)
}

// cluster is a minimal multi-node machine built directly on the coherence
// controllers (no core dependency), enough to drive real protocol traffic.
type cluster struct {
	kernel *sim.Kernel
	net    *network.Network
	rec    *Recycler
	nodes  []*clusterNode
}

func newCluster(t *testing.T, protocol string, nodes int, arrayCfg cache.Config, retryBuffer int) *cluster {
	t.Helper()
	k := sim.NewKernel()
	net := network.New(k, network.Config{Nodes: nodes, BandwidthMBs: 100000, Recycle: true})
	rec := NewRecycler()
	c := &cluster{kernel: k, net: net, rec: rec}
	homeOf := func(a Addr) network.NodeID { return network.NodeID(a % Addr(nodes)) }
	for i := 0; i < nodes; i++ {
		env := Env{Kernel: k, Net: net, Self: network.NodeID(i), HomeOf: homeOf, Recycler: rec}
		n := &clusterNode{rec: rec}
		switch protocol {
		case "snooping":
			n.cache = NewSnoopCache(env, arrayCfg)
			n.mem = NewSnoopMem(env)
		case "bash-unicast":
			n.cache = NewBashCache(env, arrayCfg, adaptive.AlwaysUnicast{})
			n.mem = NewBashMem(env, retryBuffer)
		default:
			t.Fatalf("unknown cluster protocol %q", protocol)
		}
		net.SetHandler(network.NodeID(i), n)
		c.nodes = append(c.nodes, n)
	}
	return c
}

// store issues a blocking store and returns a *bool set on completion.
func (c *cluster) store(node int, addr Addr) *bool {
	done := new(bool)
	c.nodes[node].cache.Access(Op{Store: true, Addr: addr}, func() { *done = true })
	return done
}

// TestLifecycleRecycling drives each recycle seam end to end and then
// poisons the recycled records to prove reuse re-initializes them fully.
func TestLifecycleRecycling(t *testing.T) {
	tiny := cache.Config{Sets: 1, Ways: 1}

	t.Run("line-recycled-on-eviction", func(t *testing.T) {
		c := newCluster(t, "snooping", 2, tiny, 0)
		// Store to A fills the single way; store to B evicts A (Modified ->
		// writeback). When the writeback retires, A's line record must be
		// back on the free list with nothing left in it.
		a, b := Addr(2), Addr(4) // same (only) set, homes 0 and 0
		doneA := c.store(0, a)
		c.kernel.Drain()
		if !*doneA {
			t.Fatal("store to A did not complete")
		}
		if got := len(c.rec.lines); got != 0 {
			t.Fatalf("unexpected free lines before eviction: %d", got)
		}
		doneB := c.store(0, b)
		c.kernel.Drain()
		if !*doneB {
			t.Fatal("store to B did not complete")
		}
		if c.nodes[0].cache.StateOf(a) != Invalid {
			t.Fatalf("A not evicted: %s", c.nodes[0].cache.StateOf(a))
		}
		if len(c.rec.lines) == 0 {
			t.Fatal("evicted line record was not recycled")
		}
		for _, l := range c.rec.lines {
			if l.state != Invalid || l.txn != nil || l.value != 0 || !l.sharers.IsEmpty() || len(l.deferred) != 0 {
				t.Fatalf("recycled line leaks state: %+v", l)
			}
		}
		if c.rec.Live() != 0 {
			t.Fatalf("drained cluster leaks %d packets", c.rec.Live())
		}
	})

	t.Run("txn-recycled-on-completion", func(t *testing.T) {
		c := newCluster(t, "snooping", 2, cache.DefaultConfig(), 0)
		done := c.store(0, 7)
		c.kernel.Drain()
		if !*done {
			t.Fatal("store did not complete")
		}
		if len(c.rec.txns) == 0 {
			t.Fatal("completed transaction was not recycled")
		}
		for _, tx := range c.rec.txns {
			if !isZeroTxn(tx) {
				t.Fatalf("recycled txn leaks state: %+v", tx)
			}
		}
	})

	t.Run("txn-and-packets-across-bash-retry-and-nack", func(t *testing.T) {
		// Unicast-only BASH with a single-entry retry buffer at the shared
		// home node 0: node 1's GetM to A (owned by cache 2, not in the
		// dualcast mask) is insufficient and allocates the retry slot;
		// node 3's concurrent GetM to B (owned by cache 2) is insufficient
		// with the buffer full and is nacked, forcing a broadcast reissue
		// (BashMem.retry's two recovery paths).
		c := newCluster(t, "bash-unicast", 4, cache.DefaultConfig(), 1)
		a, b := Addr(4), Addr(8) // both homed at node 0
		c.nodes[2].cache.Preheat(a, Modified, 0xA)
		c.nodes[0].mem.Preheat(a, 2, 0)
		c.nodes[2].cache.Preheat(b, Modified, 0xB)
		c.nodes[0].mem.Preheat(b, 2, 0)
		doneA := c.store(1, a)
		doneB := c.store(3, b)
		c.kernel.Drain()
		if !*doneA || !*doneB {
			t.Fatalf("stores did not complete: A=%v B=%v", *doneA, *doneB)
		}
		bm := c.nodes[0].mem.(*BashMem)
		if st := bm.Stats(); st.Insufficient < 2 || st.Retries != 1 || st.Nacks != 1 {
			t.Fatalf("expected 2+ insufficient, 1 retry, 1 nack; got %+v", st)
		}
		if st := c.nodes[3].cache.Stats(); st.Reissues != 1 {
			t.Fatalf("nacked requestor reissued %d times, want 1", st.Reissues)
		}
		if len(c.rec.txns) < 2 {
			t.Fatalf("retried/nacked transactions not recycled: %d free", len(c.rec.txns))
		}
		for _, tx := range c.rec.txns {
			if !isZeroTxn(tx) {
				t.Fatalf("recycled txn leaks state: %+v", tx)
			}
		}
		// Every packet — original instances, the retried copy, the nack and
		// the broadcast reissue — must have been released exactly once.
		if c.rec.Live() != 0 {
			t.Fatalf("retry/nack flow leaks %d packets", c.rec.Live())
		}
	})

	t.Run("dir-entries-recycled-on-reset", func(t *testing.T) {
		c := newCluster(t, "snooping", 2, cache.DefaultConfig(), 0)
		done := c.store(0, 3) // home 1 materializes an entry
		c.kernel.Drain()
		if !*done {
			t.Fatal("store did not complete")
		}
		before := len(c.rec.entries)
		c.nodes[1].mem.Reset()
		if len(c.rec.entries) <= before {
			t.Fatal("reset did not drain directory entries into the free list")
		}
		for _, e := range c.rec.entries {
			if e.state != MemOwner || e.value != 0 || !e.sharers.IsEmpty() || len(e.waiting) != 0 {
				t.Fatalf("recycled dirEntry leaks state: %+v", e)
			}
		}
	})
}

// isZeroTxn reports whether a txn carries no state (txn contains a func
// field and cannot be compared directly).
func isZeroTxn(tx *txn) bool {
	return tx.id == 0 && tx.kind == 0 && tx.addr == 0 && !tx.hasData &&
		tx.token == 0 && tx.start == 0 && tx.markerSeq == 0 && tx.dataValue == 0 &&
		!tx.dataSeen && !tx.fromMem && !tx.needData && tx.effSeq == 0 && !tx.isWB &&
		!tx.broadcast && !tx.predicted && !tx.hinted && tx.done == nil
}

// TestPoisonedReuse plants garbage in recycled records and asserts a
// subsequent get returns a fully re-initialized record — the direct check
// that no field survives the free list.
func TestPoisonedReuse(t *testing.T) {
	rec := NewRecycler()

	// line
	l := rec.getLine(1, 4)
	l.state = Modified
	l.value = 0xDEAD
	l.sharers.Set(3)
	l.txn = &txn{id: 9}
	l.deferred = append(l.deferred, deferredMsg{seq: 5, pkt: &Packet{refs: 1}})
	l.txn = nil // caller contract: txn recycled separately before putLine
	rec.putLine(l)
	got := rec.getLine(42, 4)
	if got != l {
		t.Fatal("free list did not return the recycled line")
	}
	if got.addr != 42 || got.state != Invalid || got.value != 0 || !got.sharers.IsEmpty() ||
		got.txn != nil || len(got.deferred) != 0 {
		t.Fatalf("poisoned line not re-initialized: %+v", got)
	}
	if cap(got.deferred) == 0 {
		t.Fatal("recycled line lost its deferred-slice capacity")
	}

	// txn
	tx := rec.getTxn()
	tx.id, tx.kind, tx.token, tx.dataSeen, tx.isWB = 7, GetM, 0xBEEF, true, true
	tx.done = func() {}
	rec.putTxn(tx)
	gt := rec.getTxn()
	if gt != tx {
		t.Fatal("free list did not return the recycled txn")
	}
	if !isZeroTxn(gt) {
		t.Fatalf("poisoned txn not zeroed: %+v", gt)
	}

	// dirEntry
	e := rec.getDirEntry()
	e.state = MemWB
	e.owner = 5
	e.sharers.Set(1)
	e.value = 0xF00D
	e.wbFrom = 2
	e.waiting = append(e.waiting, memWait{seq: 3, pkt: &Packet{}})
	rec.putDirEntry(e)
	ge := rec.getDirEntry()
	if ge != e {
		t.Fatal("free list did not return the recycled dirEntry")
	}
	if ge.state != MemOwner || ge.owner != MemoryOwner || !ge.sharers.IsEmpty() ||
		ge.value != 0 || ge.wbFrom != 0 || len(ge.waiting) != 0 {
		t.Fatalf("poisoned dirEntry not re-initialized: %+v", ge)
	}

	// Packet, through the refcount path.
	pkt := rec.Get()
	pkt.Kind = Data
	pkt.Value = 0xAB
	pkt.Targets.Set(2)
	pkt.refs = 1
	rec.Release(pkt)
	gp := rec.Get()
	if gp != pkt {
		t.Fatal("free list did not return the recycled packet")
	}
	if *gp != (Packet{}) {
		t.Fatalf("poisoned packet not zeroed: %+v", gp)
	}
}

// TestPacketDoubleReleasePanics: releasing a packet past its last reference
// panics with a descriptive message rather than corrupting the free list.
func TestPacketDoubleReleasePanics(t *testing.T) {
	rec := NewRecycler()
	pkt := rec.Get()
	pkt.Kind = Data
	pkt.refs = 1
	rec.Release(pkt)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "double release") {
			t.Fatalf("double-release panic not descriptive: %v", r)
		}
	}()
	rec.Release(pkt)
}

// TestNoRecycleHatch: with recycling off nothing is pooled, but the
// reference counting (and its double-release guard) stays on.
func TestNoRecycleHatch(t *testing.T) {
	rec := NewRecycler()
	rec.SetRecycle(false)
	pkt := rec.Get()
	pkt.refs = 1
	rec.Release(pkt)
	if rec.FreeLen() != 0 || len(rec.lines) != 0 || len(rec.txns) != 0 {
		t.Fatal("NoRecycle recycler pooled a record")
	}
	l := rec.getLine(1, 4)
	rec.putLine(l)
	if got := rec.getLine(1, 4); got == l {
		t.Fatal("NoRecycle recycler reused a line record")
	}
}
