package coherence

import (
	"fmt"
	"sort"
)

// Token is a state or event enum usable in a transition table: it renders
// as a string for reports and panics, and exposes a small dense index for
// the allocation-free hot-path dispatch (State, MemState and Event all
// implement it).
type Token interface {
	fmt.Stringer
	Index() int
}

// Table records the legal (state, event) transitions of a controller, both
// to dispatch uniformly and to regenerate the paper's Table 1 complexity
// counts (states, events, transitions per controller). Transitions are
// registered statically at controller construction, so the counts do not
// depend on coverage.
//
// Fire is on the simulation hot path (every protocol event fires exactly
// one transition), so coverage is counted in a flat slice indexed through
// an integer-keyed map — no string is built or allocated per Fire. The
// string views used by reports are derived from declarations on demand.
type Table struct {
	name   string
	states map[string]bool
	events map[string]bool

	// transitions holds the declared keys ("S/E"); slotByIdx maps the packed
	// (state, event) index to a slot in counts, and keyBySlot translates a
	// slot back to its declared key for the coverage reports.
	transitions map[string]bool
	slotByIdx   map[uint32]int
	keyBySlot   []string
	counts      []uint64

	// mergedHits accumulates coverage folded in from other tables via Merge
	// (union tables for Table 1 never Fire themselves).
	mergedHits map[string]uint64
}

// NewTable returns an empty transition table.
func NewTable(name string) *Table {
	return &Table{
		name:        name,
		states:      make(map[string]bool),
		events:      make(map[string]bool),
		transitions: make(map[string]bool),
		slotByIdx:   make(map[uint32]int),
		mergedHits:  make(map[string]uint64),
	}
}

// Name returns the controller name.
func (t *Table) Name() string { return t.name }

func key(state, event string) string { return state + "/" + event }

// idxOf packs a (state, event) pair into the hot-path map key.
func idxOf(state, event Token) uint32 {
	return uint32(state.Index())<<8 | uint32(event.Index())
}

// Declare registers a legal transition.
func (t *Table) Declare(state, event Token) {
	s, e := state.String(), event.String()
	t.states[s] = true
	t.events[e] = true
	k := key(s, e)
	if t.transitions[k] {
		return
	}
	t.transitions[k] = true
	t.slotByIdx[idxOf(state, event)] = len(t.counts)
	t.keyBySlot = append(t.keyBySlot, k)
	t.counts = append(t.counts, 0)
}

// Fire records that a declared transition executed; it panics on an
// undeclared transition, which is how protocol bugs surface as loud,
// attributable failures in tests. Fire performs no allocation: small-enum
// interface conversion, an integer map lookup and a slice increment.
func (t *Table) Fire(state, event Token) {
	slot, ok := t.slotByIdx[idxOf(state, event)]
	if !ok {
		panic(fmt.Sprintf("%s: illegal transition %s + %s", t.name, state, event))
	}
	t.counts[slot]++
}

// ResetCoverage clears the fired-transition counts while keeping every
// declaration, returning the table to its just-constructed coverage state.
// Declarations are structural (registered once at controller construction)
// and survive reuse; coverage is per-run. Nothing is allocated or freed.
func (t *Table) ResetCoverage() {
	for i := range t.counts {
		t.counts[i] = 0
	}
	clear(t.mergedHits)
}

// hitCount returns the fired count for a declared key, including coverage
// merged in from other tables.
func (t *Table) hitCount(k string) uint64 {
	n := t.mergedHits[k]
	for slot, sk := range t.keyBySlot {
		if sk == k {
			return n + t.counts[slot]
		}
	}
	return n
}

// States returns the number of distinct states.
func (t *Table) States() int { return len(t.states) }

// Events returns the number of distinct events.
func (t *Table) Events() int { return len(t.events) }

// Transitions returns the number of declared transitions.
func (t *Table) Transitions() int { return len(t.transitions) }

// Coverage returns fired/declared transition counts.
func (t *Table) Coverage() (fired, declared int) {
	seen := make(map[string]bool, len(t.keyBySlot))
	for slot, k := range t.keyBySlot {
		if t.counts[slot] > 0 {
			seen[k] = true
		}
	}
	for k := range t.mergedHits {
		seen[k] = true
	}
	return len(seen), len(t.transitions)
}

// Uncovered lists declared transitions that never fired, sorted.
func (t *Table) Uncovered() []string {
	var out []string
	for k := range t.transitions {
		if t.hitCount(k) == 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Merge folds another table's declarations and coverage into t (used to
// total a protocol's cache and memory controllers, as Table 1 does). Merged
// transitions are counted and reported but cannot themselves be Fired on t;
// union tables exist for accounting only.
func (t *Table) Merge(o *Table) {
	for s := range o.states {
		t.states[s] = true
	}
	for e := range o.events {
		t.events[e] = true
	}
	for k := range o.transitions {
		t.transitions[k] = true
	}
	for slot, k := range o.keyBySlot {
		if n := o.counts[slot]; n > 0 {
			t.mergedHits[k] += n
		}
	}
	for k, n := range o.mergedHits {
		t.mergedHits[k] += n
	}
}

// ComplexityRow is one row of the paper's Table 1.
type ComplexityRow struct {
	Protocol                                   string
	TotalStates, TotalEvents, TotalTransitions int
	CacheStates, CacheEvents, CacheTransitions int
	MemStates, MemEvents, MemTransitions       int
}

// Complexity builds a Table 1 row from a protocol's cache and memory tables.
// Totals count the union of states/events and the sum of transitions, the
// paper's convention (its per-controller columns sum to the total
// transition count).
func Complexity(protocol string, cacheTbl, memTbl *Table) ComplexityRow {
	union := NewTable(protocol)
	union.Merge(cacheTbl)
	union.Merge(memTbl)
	return ComplexityRow{
		Protocol:         protocol,
		TotalStates:      union.States(),
		TotalEvents:      union.Events(),
		TotalTransitions: cacheTbl.Transitions() + memTbl.Transitions(),
		CacheStates:      cacheTbl.States(),
		CacheEvents:      cacheTbl.Events(),
		CacheTransitions: cacheTbl.Transitions(),
		MemStates:        memTbl.States(),
		MemEvents:        memTbl.Events(),
		MemTransitions:   memTbl.Transitions(),
	}
}
