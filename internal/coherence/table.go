package coherence

import (
	"fmt"
	"sort"
)

// Table records the legal (state, event) transitions of a controller, both
// to dispatch uniformly and to regenerate the paper's Table 1 complexity
// counts (states, events, transitions per controller). Transitions are
// registered statically at controller construction, so the counts do not
// depend on coverage.
type Table struct {
	name        string
	states      map[string]bool
	events      map[string]bool
	transitions map[string]bool
	hits        map[string]uint64 // coverage: fired transitions
}

// NewTable returns an empty transition table.
func NewTable(name string) *Table {
	return &Table{
		name:        name,
		states:      make(map[string]bool),
		events:      make(map[string]bool),
		transitions: make(map[string]bool),
		hits:        make(map[string]uint64),
	}
}

// Name returns the controller name.
func (t *Table) Name() string { return t.name }

func key(state, event string) string { return state + "/" + event }

// Declare registers a legal transition.
func (t *Table) Declare(state, event fmt.Stringer) {
	s, e := state.String(), event.String()
	t.states[s] = true
	t.events[e] = true
	t.transitions[key(s, e)] = true
}

// Fire records that a declared transition executed; it panics on an
// undeclared transition, which is how protocol bugs surface as loud,
// attributable failures in tests.
func (t *Table) Fire(state, event fmt.Stringer) {
	s, e := state.String(), event.String()
	k := key(s, e)
	if !t.transitions[k] {
		panic(fmt.Sprintf("%s: illegal transition %s + %s", t.name, s, e))
	}
	t.hits[k]++
}

// ResetCoverage clears the fired-transition counts while keeping every
// declaration, returning the table to its just-constructed coverage state.
// Declarations are structural (registered once at controller construction)
// and survive reuse; coverage is per-run.
func (t *Table) ResetCoverage() {
	clear(t.hits)
}

// States returns the number of distinct states.
func (t *Table) States() int { return len(t.states) }

// Events returns the number of distinct events.
func (t *Table) Events() int { return len(t.events) }

// Transitions returns the number of declared transitions.
func (t *Table) Transitions() int { return len(t.transitions) }

// Coverage returns fired/declared transition counts.
func (t *Table) Coverage() (fired, declared int) {
	return len(t.hits), len(t.transitions)
}

// Uncovered lists declared transitions that never fired, sorted.
func (t *Table) Uncovered() []string {
	var out []string
	for k := range t.transitions {
		if t.hits[k] == 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Merge folds another table's declarations and hits into t (used to total a
// protocol's cache and memory controllers, as Table 1 does).
func (t *Table) Merge(o *Table) {
	for s := range o.states {
		t.states[s] = true
	}
	for e := range o.events {
		t.events[e] = true
	}
	for k := range o.transitions {
		t.transitions[k] = true
	}
	for k, n := range o.hits {
		t.hits[k] += n
	}
}

// ComplexityRow is one row of the paper's Table 1.
type ComplexityRow struct {
	Protocol                                   string
	TotalStates, TotalEvents, TotalTransitions int
	CacheStates, CacheEvents, CacheTransitions int
	MemStates, MemEvents, MemTransitions       int
}

// Complexity builds a Table 1 row from a protocol's cache and memory tables.
// Totals count the union of states/events and the sum of transitions, the
// paper's convention (its per-controller columns sum to the total
// transition count).
func Complexity(protocol string, cacheTbl, memTbl *Table) ComplexityRow {
	union := NewTable(protocol)
	union.Merge(cacheTbl)
	union.Merge(memTbl)
	return ComplexityRow{
		Protocol:         protocol,
		TotalStates:      union.States(),
		TotalEvents:      union.Events(),
		TotalTransitions: cacheTbl.Transitions() + memTbl.Transitions(),
		CacheStates:      cacheTbl.States(),
		CacheEvents:      cacheTbl.Events(),
		CacheTransitions: cacheTbl.Transitions(),
		MemStates:        memTbl.States(),
		MemEvents:        memTbl.Events(),
		MemTransitions:   memTbl.Transitions(),
	}
}
