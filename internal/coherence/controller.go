package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
)

// txn is an outstanding cache transaction: a demand miss (GetS/GetM) or a
// victim writeback (PutM).
type txn struct {
	id        uint64
	kind      Kind
	addr      Addr
	hasData   bool
	token     uint64 // value this transaction will write (GetM)
	start     sim.Time
	markerSeq uint64 // first own ordered instance observed
	dataValue uint64 // value carried by a Data that arrived before the marker
	dataSeen  bool
	fromMem   bool // data was supplied by memory (miss-source accounting)
	needData  bool // Directory: marker said data is coming
	effSeq    uint64
	isWB      bool
	broadcast bool // issued (or reissued) as a broadcast
	predicted bool // mask extended by the owner predictor
	hinted    bool // carried Op.HintUnicast (bypass the broadcast decision)
	done      func()
}

// deferredMsg is a foreign ordered instance parked while this cache has an
// outstanding transaction on the block.
type deferredMsg struct {
	seq uint64
	pkt *Packet
}

// line is the controller's per-block record. Blocks in state I with no
// transaction and no deferred work are evicted from the map.
type line struct {
	addr     Addr
	state    State
	value    uint64
	sharers  network.Mask // BASH owner-side sharer tracking (footnote 2)
	txn      *txn
	deferred []deferredMsg
}

// pendedOp is a processor operation waiting for a same-block writeback to
// retire.
type pendedOp struct {
	op   Op
	done func()
}

// protoOps is the protocol-specific part of a cache controller.
type protoOps interface {
	// issueDemand transmits the request(s) for a demand transaction.
	issueDemand(l *line, t *txn)
	// issueWB transmits a writeback request.
	issueWB(l *line, t *txn)
	// foreign applies a foreign ordered instance to the line; it is used
	// both for direct delivery and for post-completion replay.
	foreign(l *line, seq uint64, pkt *Packet)
}

// ctrlCore is the machinery shared by the three protocol cache controllers:
// line storage, the cache array, transaction lifecycle, deferral/replay, and
// statistics.
type ctrlCore struct {
	env     Env
	ops     protoOps
	tbl     *Table
	array   *cache.Array
	lines   map[Addr]*line
	nextTxn uint64
	stats   CacheStats
	latHist *stats.Histogram
	pended  map[Addr][]pendedOp
	pending pendingStates
	// hitLatency is the L2 hit service time (breaks same-instant recursion).
	hitLatency sim.Time

	// deferCap is the deferral capacity fresh line records are born with
	// (the node count: the common-case bound on same-block deferrals).
	deferCap int

	// pinnedFn is the eviction-pinning predicate, bound once so missFetch
	// does not allocate a closure per demand miss.
	pinnedFn func(Addr) bool
}

// pendingStates selects the transient entered for each kind of demand miss:
// Snooping/Directory use the *_A marker-wait states, BASH the uniform *_P
// pending states.
type pendingStates struct {
	fetchLoad, fetchStore      State
	upgradeFromS, upgradeFromO State
}

func (c *ctrlCore) init(env Env, ops protoOps, tbl *Table, arrayCfg cache.Config) {
	if env.Recycler == nil {
		env.Recycler = NewRecycler()
	}
	c.env = env
	c.ops = ops
	c.tbl = tbl
	c.array = cache.New(arrayCfg)
	// Pre-size the line map toward its hard bound (array residency plus
	// in-flight work) so steady-state churn never grows its buckets; the
	// hint is capped to keep huge default geometries lazy.
	c.lines = make(map[Addr]*line, min(arrayCfg.Lines(), 1024))
	c.pended = make(map[Addr][]pendedOp)
	c.latHist = stats.NewLatencyHistogram()
	c.hitLatency = 1
	c.deferCap = 8
	if env.Net != nil && env.Net.Nodes() > c.deferCap {
		c.deferCap = env.Net.Nodes()
	}
	c.pinnedFn = c.isPinned
}

// Reset returns the controller to its freshly constructed state for a new
// run, retaining every allocation the previous run grew: the line and
// pended maps keep their buckets, the cache array keeps its materialized
// sets, the histogram keeps its buckets, the transition table keeps its
// declarations (coverage is cleared), and live line/txn records drain into
// the free lists rather than being freed, so the warmed capacity carries
// into the next run. Packets still parked on deferred lists are dropped for
// the garbage collector, never recycled — the same packet may be parked at
// several nodes. The environment — kernel, network, identity, checker,
// progress hook — is structural and survives unchanged.
func (c *ctrlCore) Reset() {
	rec := c.env.Recycler
	for _, l := range c.lines {
		if l.txn != nil {
			rec.putTxn(l.txn)
			l.txn = nil
		}
		rec.putLine(l)
	}
	for _, q := range c.pended {
		rec.putPendQueue(q)
	}
	clear(c.lines)
	clear(c.pended)
	c.array.Reset()
	c.latHist.Reset()
	c.tbl.ResetCoverage()
	c.nextTxn = 0
	c.stats = CacheStats{}
}

// LatencyHistogram exposes the demand-miss latency distribution.
func (c *ctrlCore) LatencyHistogram() *stats.Histogram { return c.latHist }

// Stats returns the controller counters.
func (c *ctrlCore) Stats() *CacheStats { return &c.stats }

// Table returns the transition table.
func (c *ctrlCore) Table() *Table { return c.tbl }

// StateOf reports the state held for a block (Invalid when absent).
func (c *ctrlCore) StateOf(a Addr) State {
	if l := c.lines[a]; l != nil {
		return l.state
	}
	return Invalid
}

// ValueOf reports the data token held for a block.
func (c *ctrlCore) ValueOf(a Addr) uint64 {
	if l := c.lines[a]; l != nil {
		return l.value
	}
	return 0
}

// line returns the record for addr, materializing an Invalid one.
func (c *ctrlCore) line(addr Addr) *line {
	l := c.lines[addr]
	if l == nil {
		l = c.env.Recycler.getLine(addr, c.deferCap)
		c.lines[addr] = l
	}
	return l
}

// release drops a line record if it holds nothing, recycling it. It is
// idempotent: a line can reach here twice (a deferred replay may release
// inside the loop, and replayDeferred releases once more at the end), so
// only the call that actually removes the record from the map recycles it —
// a double push onto the free list would hand one record to two blocks.
func (c *ctrlCore) release(l *line) {
	if l.state == Invalid && l.txn == nil && len(l.deferred) == 0 {
		if cur, ok := c.lines[l.addr]; ok && cur == l {
			delete(c.lines, l.addr)
			c.env.Recycler.putLine(l)
		}
	}
}

// isPinned reports whether a resident block cannot be evicted because it
// has in-flight work (the demand-insertion pinning predicate).
func (c *ctrlCore) isPinned(a Addr) bool {
	if vl := c.lines[a]; vl != nil {
		return vl.txn != nil || len(vl.deferred) > 0
	}
	return false
}

// token mints a unique store value for a transaction.
func (c *ctrlCore) token(txnID uint64) uint64 {
	return (uint64(c.env.Self)+1)<<40 | txnID
}

// Preheat installs a stable state without any protocol traffic (used to
// warm-start workloads; the system keeps directory state consistent).
func (c *ctrlCore) Preheat(addr Addr, st State, value uint64) {
	if !st.IsStable() {
		panic("coherence: preheat requires a stable state")
	}
	l := c.line(addr)
	l.state = st
	l.value = value
	if st != Invalid {
		if _, _, ok := c.array.Insert(addr, nil); !ok {
			panic("coherence: preheat insert failed")
		}
	}
}

// Access implements the blocking processor interface.
func (c *ctrlCore) Access(op Op, done func()) {
	l := c.line(op.Addr)
	if op.Store {
		c.stats.Stores++
	} else {
		c.stats.Loads++
	}
	if l.txn != nil {
		// A writeback for this very block is still in flight; the demand
		// must wait for it to retire (the demand itself is never
		// concurrent: the processor is blocking).
		q, ok := c.pended[op.Addr]
		if !ok {
			q = c.env.Recycler.getPendQueue()
		}
		c.pended[op.Addr] = append(q, pendedOp{op: op, done: done})
		return
	}
	switch l.state {
	case Modified:
		c.hit(l, op, done)
	case Owned, Shared:
		if !op.Store {
			c.hit(l, op, done)
			return
		}
		c.missUpgrade(l, op, done)
	case Invalid:
		c.missFetch(l, op, done)
	default:
		panic(fmt.Sprintf("coherence: access in transient state %s without txn", l.state))
	}
}

func (c *ctrlCore) hit(l *line, op Op, done func()) {
	c.stats.Hits++
	c.array.Touch(l.addr)
	c.env.Kernel.Schedule(c.hitLatency, done)
}

func (c *ctrlCore) newTxn(kind Kind, addr Addr, hasData bool, done func()) *txn {
	c.nextTxn++
	t := c.env.Recycler.getTxn()
	t.id = c.nextTxn
	t.kind = kind
	t.addr = addr
	t.hasData = hasData
	t.start = c.env.Kernel.Now()
	t.done = done
	t.token = c.token(t.id)
	return t
}

// missFetch handles a demand miss from Invalid: reserve an array slot
// (possibly starting a victim writeback) and issue GetS/GetM.
func (c *ctrlCore) missFetch(l *line, op Op, done func()) {
	c.stats.Misses++
	victim, evicted, ok := c.array.Insert(l.addr, c.pinnedFn)
	if !ok {
		// Every way is pinned by in-flight work; wait for this block's set
		// to free up by pending on our own (rare) condition: retry after
		// the next writeback completes. Simplest correct policy: pend on
		// the victim that will complete soonest is overkill — retry after
		// a short delay.
		c.env.Kernel.Schedule(sim.NetworkTraversal, func() { c.Access(op, done) })
		return
	}
	if evicted {
		c.evict(victim)
	}
	kind := GetS
	st := c.fetchPendingState(false)
	if op.Store {
		kind = GetM
		st = c.fetchPendingState(true)
	}
	t := c.newTxn(kind, l.addr, false, done)
	t.hinted = op.HintUnicast
	l.txn = t
	l.state = st
	c.ops.issueDemand(l, t)
}

// missUpgrade handles a store to an S or O copy.
func (c *ctrlCore) missUpgrade(l *line, op Op, done func()) {
	c.stats.Misses++
	c.array.Touch(l.addr)
	t := c.newTxn(GetM, l.addr, true, done)
	t.hinted = op.HintUnicast
	l.txn = t
	l.state = c.upgradePendingState(l.state)
	c.ops.issueDemand(l, t)
}

// evict removes a victim from the array and, for dirty states, starts a
// writeback transaction. The array slot is freed immediately; the line map
// keeps the transient writeback state.
func (c *ctrlCore) evict(victim Addr) {
	vl := c.line(victim)
	c.array.Remove(victim)
	switch vl.state {
	case Shared:
		// Silent S -> I downgrade (paper Section 3).
		c.tbl.Fire(Shared, EvReplace)
		vl.state = Invalid
		c.release(vl)
	case Modified, Owned:
		c.stats.Writebacks++
		t := c.newTxn(PutM, victim, true, nil)
		t.isWB = true
		if vl.state == Modified {
			vl.state = MI_A
		} else {
			vl.state = OI_A
		}
		vl.txn = t
		c.ops.issueWB(vl, t)
	case Invalid:
		// Preheat bookkeeping mismatch would land here; treat as a bug.
		panic("coherence: evicting an invalid block")
	default:
		panic(fmt.Sprintf("coherence: evicting block in transient state %s", vl.state))
	}
}

func (c *ctrlCore) fetchPendingState(store bool) State {
	if store {
		return c.pending.fetchStore
	}
	return c.pending.fetchLoad
}

func (c *ctrlCore) upgradePendingState(from State) State {
	if from == Owned {
		return c.pending.upgradeFromO
	}
	return c.pending.upgradeFromS
}

// completeDemand retires a demand transaction: installs the final state,
// records latency, notifies the processor, and replays deferred foreign
// instances (dropping those ordered before the effective instance).
func (c *ctrlCore) completeDemand(l *line, final State, effSeq uint64, observedOld uint64) {
	t := l.txn
	if t == nil || t.isWB {
		panic("coherence: completeDemand without demand txn")
	}
	lat := c.env.Kernel.Now() - t.start
	c.stats.MissLatencySum += lat
	c.stats.MissLatencyCount++
	c.latHist.Add(float64(lat))
	l.state = final
	if t.kind == GetM {
		if c.env.Checker != nil {
			c.env.Checker.WriteCommit(c.env.Self, l.addr, effSeq, t.token, observedOld)
		}
		l.value = t.token
		l.sharers = network.Mask{}
	} else {
		l.value = observedOld
		if c.env.Checker != nil {
			c.env.Checker.ReadCommit(c.env.Self, l.addr, effSeq, observedOld)
		}
	}
	done := t.done
	l.txn = nil
	c.env.Recycler.putTxn(t)
	c.env.progress()
	c.replayDeferred(l, effSeq)
	if done != nil {
		done()
	}
}

// completeWB retires a writeback transaction and re-dispatches any pended
// processor operation for the block.
func (c *ctrlCore) completeWB(l *line) {
	if l.txn == nil || !l.txn.isWB {
		panic("coherence: completeWB without WB txn")
	}
	t := l.txn
	l.txn = nil
	c.env.Recycler.putTxn(t)
	l.state = Invalid
	c.env.progress()
	pend, had := c.pended[l.addr]
	delete(c.pended, l.addr)
	c.release(l)
	for _, p := range pend {
		c.Access(p.op, p.done)
	}
	if had {
		c.env.Recycler.putPendQueue(pend)
	}
}

// defer_ parks a foreign instance until the outstanding transaction
// resolves, retaining the packet past its delivery.
func (c *ctrlCore) defer_(l *line, seq uint64, pkt *Packet) {
	c.env.Recycler.Retain(pkt)
	l.deferred = append(l.deferred, deferredMsg{seq: seq, pkt: pkt})
}

// replayDeferred applies parked instances: those ordered before the
// effective instance are subsumed by it and dropped; later ones apply to the
// post-transaction state in order. Every parked packet's retained reference
// is released here (a replayed instance that re-defers retains again).
func (c *ctrlCore) replayDeferred(l *line, effSeq uint64) {
	if len(l.deferred) == 0 {
		return
	}
	defs := l.deferred
	l.deferred = l.deferred[:0]
	for i := range defs {
		d := defs[i]
		defs[i] = deferredMsg{}
		if d.seq > effSeq {
			c.ops.foreign(l, d.seq, d.pkt)
		}
		c.env.Recycler.Release(d.pkt)
	}
	c.release(l)
}

// respondData supplies the block to a requestor: the cache takes CacheAccess
// (25 ns) to read the array, then sends a 72-byte Data on the response
// network.
func (c *ctrlCore) respondData(to network.NodeID, addr Addr, value uint64, effSeq, txnID uint64) {
	pkt := c.env.newPacket()
	pkt.Kind = Data
	pkt.Addr = addr
	pkt.Requestor = to
	pkt.Sender = c.env.Self
	pkt.TxnID = txnID
	pkt.EffSeq = effSeq
	pkt.Value = value
	c.env.sendUnorderedAfter(sim.CacheAccess, to, Data.Size(), pkt)
}

// respondWBData sends writeback data to the home memory controller, tagged
// with the writeback's position in the total order (its marker sequence).
func (c *ctrlCore) respondWBData(l *line, seq uint64) {
	pkt := c.env.newPacket()
	pkt.Kind = DataWB
	pkt.Addr = l.addr
	pkt.Sender = c.env.Self
	pkt.Value = l.value
	pkt.EffSeq = seq
	c.env.sendUnorderedAfter(sim.CacheAccess, c.env.HomeOf(l.addr), DataWB.Size(), pkt)
}
