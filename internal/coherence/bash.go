package coherence

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/cache"
	"repro/internal/network"
	"repro/internal/sim"
)

// BroadcastEscalationRetry is the retry generation at which the memory
// controller escalates a request to a full broadcast, which is guaranteed to
// succeed (the paper's livelock avoidance: broadcast on the third retry).
const BroadcastEscalationRetry = 3

// DefaultRetryBuffer is the number of concurrently outstanding retried
// transactions a memory controller supports before nacking (the paper's
// deadlock avoidance: when no network buffer can be allocated for a retry,
// the requestor is nacked and reissues its request as a broadcast).
const DefaultRetryBuffer = 16

// BashCache is the cache controller of the Bandwidth Adaptive Snooping
// Hybrid (Section 3.3). It behaves like Snooping from the requestor's point
// of view, except that each request is either broadcast or "unicast" — a
// dualcast to the home node and back to the requestor, whose returning copy
// is the ordering marker. Writebacks are always unicast.
//
// A BASH requestor cannot judge locally whether an instance of its request
// was sufficient (the memory controller may retry it as a multicast), so
// every transaction completes on a tagged Data or Ack, and foreign requests
// that arrive while a non-owner transaction is outstanding are deferred and
// replayed against the effective-instance order.
type BashCache struct {
	ctrlCore
	policy adaptive.Policy
	pred   *OwnerPredictor // nil unless destination-set prediction is on
}

// NewBashCache builds a BASH cache controller with the given broadcast
// policy (the adaptive mechanism, or a static policy for the ablations).
func NewBashCache(env Env, arrayCfg cache.Config, policy adaptive.Policy) *BashCache {
	b := &BashCache{policy: policy}
	b.init(env, b, bashCacheTable(), arrayCfg)
	b.pending = pendingStates{
		fetchLoad:    IS_P,
		fetchStore:   IM_P,
		upgradeFromS: SM_P,
		upgradeFromO: OM_P,
	}
	return b
}

// EnablePredictor attaches a last-owner destination-set predictor
// (Section 7 future work; see OwnerPredictor). size 0 selects the default.
func (b *BashCache) EnablePredictor(size int) *OwnerPredictor {
	b.pred = NewOwnerPredictor(size)
	return b.pred
}

// Predictor returns the attached predictor, nil when prediction is off.
func (b *BashCache) Predictor() *OwnerPredictor { return b.pred }

// Reset returns the controller (and its predictor, if attached) to the
// freshly constructed state. The broadcast policy is shared per-node state
// owned by the system, which resets it separately (see core.System.Reset).
func (b *BashCache) Reset() {
	b.ctrlCore.Reset()
	if b.pred != nil {
		b.pred.Reset()
	}
}

func bashCacheTable() *Table {
	t := NewTable("bash-cache")
	type se struct {
		s State
		e Event
	}
	for _, d := range []se{
		// Processor events.
		{Invalid, EvLoad}, {Invalid, EvStore},
		{Shared, EvLoad}, {Shared, EvStore}, {Shared, EvReplace},
		{Owned, EvLoad}, {Owned, EvStore}, {Owned, EvReplace},
		{Modified, EvLoad}, {Modified, EvStore}, {Modified, EvReplace},
		// Own instances (original, retried, or reissued requests).
		{IS_P, EvOwnReq}, {IM_P, EvOwnReq}, {SM_P, EvOwnReq}, {OM_P, EvOwnReq},
		{MI_A, EvOwnPutM}, {OI_A, EvOwnPutM}, {II_A, EvOwnPutM},
		// Foreign instances: stable states.
		{Shared, EvOtherGetS}, {Shared, EvOtherGetM},
		{Owned, EvOtherGetS}, {Owned, EvOtherGetM},
		{Modified, EvOtherGetS}, {Modified, EvOtherGetM},
		// Foreign instances: non-owner pending states defer uniformly.
		{IS_P, EvOtherGetS}, {IS_P, EvOtherGetM},
		{IM_P, EvOtherGetS}, {IM_P, EvOtherGetM},
		{SM_P, EvOtherGetS}, {SM_P, EvOtherGetM},
		// Foreign instances: owner-side transients respond immediately.
		{OM_P, EvOtherGetS}, {OM_P, EvOtherGetM},
		{MI_A, EvOtherGetS}, {MI_A, EvOtherGetM},
		{OI_A, EvOtherGetS}, {OI_A, EvOtherGetM},
		{II_A, EvOtherGetS}, {II_A, EvOtherGetM},
		// Responses.
		{IS_P, EvData}, {IM_P, EvData}, {SM_P, EvData},
		{SM_P, EvAck},
		{IS_P, EvNack}, {IM_P, EvNack}, {SM_P, EvNack}, {OM_P, EvNack},
	} {
		t.Declare(d.s, d.e)
	}
	return t
}

// Access dispatches processor operations.
func (b *BashCache) Access(op Op, done func()) {
	if l := b.lines[op.Addr]; l == nil || l.txn == nil {
		ev := EvLoad
		if op.Store {
			ev = EvStore
		}
		b.tbl.Fire(b.StateOf(op.Addr), ev)
	}
	b.ctrlCore.Access(op, done)
}

func (b *BashCache) issueDemand(l *line, t *txn) {
	// Hinted requests (e.g. instruction fetches, Section 7) skip the
	// probabilistic decision and always take the unicast path.
	if !t.hinted && b.policy.ShouldBroadcast() {
		t.broadcast = true
		b.stats.BroadcastRequests++
		b.send(l, t, b.env.Net.FullMask())
		return
	}
	b.stats.UnicastRequests++
	mask := network.MaskOf(b.env.HomeOf(l.addr), b.env.Self)
	if b.pred != nil {
		if owner, ok := b.pred.Predict(l.addr); ok && owner != b.env.Self {
			mask.Set(owner)
			t.predicted = true
			b.stats.Predicted++
		}
	}
	b.send(l, t, mask)
}

func (b *BashCache) issueWB(l *line, t *txn) {
	b.tbl.Fire(mustWBOrigin(l.state), EvReplace)
	// Writebacks are always unicast (dualcast home + self; the returning
	// copy is the marker).
	b.send(l, t, network.MaskOf(b.env.HomeOf(l.addr), b.env.Self))
}

func (b *BashCache) send(l *line, t *txn, targets network.Mask) {
	pkt := b.env.newPacket()
	pkt.Kind = t.kind
	pkt.Addr = l.addr
	pkt.Requestor = b.env.Self
	pkt.Sender = b.env.Self
	pkt.TxnID = t.id
	pkt.HasData = t.hasData
	pkt.Targets = targets
	b.env.sendOrdered(targets, t.kind.Size(), pkt)
}

// OnOrdered observes one totally ordered request instance.
func (b *BashCache) OnOrdered(m *network.Message) {
	pkt := m.Payload.(*Packet)
	if pkt.Requestor == b.env.Self {
		b.ownInstance(m.Seq, pkt)
		return
	}
	if pkt.Kind == PutM {
		return // foreign writebacks are invisible to caches
	}
	if b.pred != nil && pkt.Kind == GetM {
		// Observed foreign GetM instances train the owner predictor: the
		// requestor is the owner-to-be if the instance is effective, and a
		// cheap approximation of it otherwise.
		b.pred.Learn(pkt.Addr, pkt.Requestor)
	}
	l := b.lines[pkt.Addr]
	if l == nil {
		return
	}
	b.foreign(l, m.Seq, pkt)
}

func (b *BashCache) ownInstance(seq uint64, pkt *Packet) {
	l := b.lines[pkt.Addr]
	if l == nil || l.txn == nil || l.txn.id != pkt.TxnID {
		// An instance of a transaction that already completed: a retry that
		// was raced by the sufficient instance. Ignore it.
		b.stats.StaleDataDropped++
		return
	}
	t := l.txn
	if pkt.Kind == PutM {
		b.tbl.Fire(l.state, EvOwnPutM)
		switch l.state {
		case MI_A, OI_A:
			b.respondWBData(l, seq)
			b.completeWB(l)
		case II_A:
			b.completeWB(l)
		default:
			panic(fmt.Sprintf("bash: own PutM in %s", l.state))
		}
		return
	}
	b.tbl.Fire(l.state, EvOwnReq)
	if t.markerSeq == 0 {
		t.markerSeq = seq
	}
	// An owner upgrade is the one transaction whose requestor can judge
	// sufficiency locally: it is the owner and tracks the sharer set
	// (footnote 2), so it reaches the same verdict as the memory controller
	// at the same point in the total order and commits at its own marker.
	// Every other transaction completes on a tagged Data or Ack.
	if l.state == OM_P && pkt.Kind == GetM && l.sharers.SubsetOf(pkt.Targets) {
		b.stats.Upgrades++
		b.completeDemand(l, Modified, seq, l.value)
	}
}

// foreign applies a foreign instance; also the post-completion replay entry.
func (b *BashCache) foreign(l *line, seq uint64, pkt *Packet) {
	ev := EvOtherGetS
	if pkt.Kind == GetM {
		ev = EvOtherGetM
	}
	if l.state == Invalid {
		return
	}
	b.tbl.Fire(l.state, ev)
	switch l.state {
	case Shared:
		if ev == EvOtherGetM {
			l.state = Invalid
			b.array.Remove(l.addr)
			b.release(l)
		}
	case IS_P, IM_P, SM_P:
		// Non-owner transaction outstanding: defer until we learn our
		// effective instance, then drop-or-apply by sequence.
		b.defer_(l, seq, pkt)
	case Modified, Owned, OM_P, MI_A, OI_A:
		b.ownerForeign(l, seq, pkt, ev)
	case II_A:
		// Ownership already surrendered.
	default:
		panic(fmt.Sprintf("bash: foreign %s in %s", pkt.Kind, l.state))
	}
}

// ownerForeign is the owner's side of the sufficiency protocol: the owner
// tracks the sharer set (footnote 2) and reaches the same verdict as the
// memory controller for every instance it observes.
func (b *BashCache) ownerForeign(l *line, seq uint64, pkt *Packet, ev Event) {
	if ev == EvOtherGetS {
		// A GetS that reaches the owner is sufficient by definition.
		b.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		l.sharers.Set(pkt.Requestor)
		switch l.state {
		case Modified:
			l.state = Owned
		case MI_A:
			l.state = OI_A
		}
		return
	}
	// GetM: sufficient only if every sharer received the instance.
	if !l.sharers.SubsetOf(pkt.Targets) {
		return // the memory controller will retry with a wider mask
	}
	b.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
	switch l.state {
	case Modified, Owned:
		l.state = Invalid
		l.sharers = network.Mask{}
		b.array.Remove(l.addr)
		b.release(l)
	case OM_P:
		// Our owner-upgrade lost the race; it becomes a full miss and we
		// now defer like any non-owner.
		l.state = IM_P
		l.sharers = network.Mask{}
	case MI_A:
		l.state = II_A
	case OI_A:
		l.state = II_A
	}
}

// OnUnordered receives Data, Ack and Nack responses.
func (b *BashCache) OnUnordered(pkt *Packet) {
	l := b.lines[pkt.Addr]
	if l == nil || l.txn == nil || l.txn.id != pkt.TxnID {
		b.stats.StaleDataDropped++
		return
	}
	t := l.txn
	switch pkt.Kind {
	case Data:
		b.tbl.Fire(l.state, EvData)
		t.fromMem = pkt.FromMemory
		if b.pred != nil && !pkt.FromMemory {
			b.pred.Learn(pkt.Addr, pkt.Sender)
		}
		if t.predicted && pkt.EffSeq == t.markerSeq {
			// The predicted mask made the original instance sufficient.
			b.stats.PredictedHits++
		}
		switch l.state {
		case IS_P:
			b.recordMissSource(t)
			b.completeDemand(l, Shared, pkt.EffSeq, pkt.Value)
		case IM_P, SM_P:
			b.recordMissSource(t)
			b.completeDemand(l, Modified, pkt.EffSeq, pkt.Value)
		default:
			panic(fmt.Sprintf("bash: data in %s", l.state))
		}
	case Ack:
		b.tbl.Fire(l.state, EvAck)
		if l.state != SM_P {
			panic(fmt.Sprintf("bash: ack in %s", l.state))
		}
		if t.predicted && pkt.EffSeq == t.markerSeq {
			b.stats.PredictedHits++
		}
		// Upgrade granted with our copy intact.
		b.stats.Upgrades++
		b.completeDemand(l, Modified, pkt.EffSeq, l.value)
	case Nack:
		b.tbl.Fire(l.state, EvNack)
		// Retry buffer exhausted at the home: reissue as a broadcast, which
		// is guaranteed to succeed (deadlock avoidance, Section 3.4).
		b.stats.Reissues++
		t.broadcast = true
		b.send(l, t, b.env.Net.FullMask())
	default:
		panic(fmt.Sprintf("bash cache: unexpected %s", pkt.Kind))
	}
}

func (b *BashCache) recordMissSource(t *txn) {
	if t.fromMem {
		b.stats.MemoryMisses++
	} else {
		b.stats.SharingMisses++
	}
}

// BashMemStats counts memory-side BASH activity.
type BashMemStats struct {
	Sufficient   uint64
	Insufficient uint64
	Retries      uint64
	Escalations  uint64 // third-retry broadcasts
	Nacks        uint64
}

// BashMem is the BASH memory controller: it snoops every instance that
// includes the home node, compares the owner/sharer directory state against
// the instance's multicast mask, satisfies sufficient instances (data or ack
// when memory has the permissions), and retries insufficient instances as
// multicasts on the same totally ordered request network.
type BashMem struct {
	env      Env
	tbl      *Table
	dir      *dirState
	retryCap int
	retries  map[retryKey]bool // outstanding retried transactions
	stats    BashMemStats
}

// retryKey identifies an outstanding retried transaction. TxnIDs are
// requestor-scoped (every cache counts from 1), so the requestor must be
// part of the key — keying by TxnID alone made concurrent transactions from
// different nodes share one retry-buffer slot, undercounting nacks.
type retryKey struct {
	req network.NodeID
	txn uint64
}

// NewBashMem builds a BASH memory controller. retryBuffer <= 0 selects
// DefaultRetryBuffer.
func NewBashMem(env Env, retryBuffer int) *BashMem {
	if retryBuffer <= 0 {
		retryBuffer = DefaultRetryBuffer
	}
	t := NewTable("bash-memory")
	type se struct {
		s MemState
		e Event
	}
	for _, d := range []se{
		{MemOwner, EvMemGetS}, {CacheOwner, EvMemGetS},
		{MemOwner, EvMemGetM}, {CacheOwner, EvMemGetM},
		{MemOwner, EvMemInsufficient}, {CacheOwner, EvMemInsufficient},
		{CacheOwner, EvMemPutMOwner},
		{MemOwner, EvMemPutMStale}, {CacheOwner, EvMemPutMStale},
		{MemWB, EvMemGetS}, {MemWB, EvMemGetM}, {MemWB, EvMemPutMStale},
		{MemWB, EvMemDataWB},
	} {
		t.Declare(d.s, d.e)
	}
	if env.Recycler == nil {
		env.Recycler = NewRecycler()
	}
	return &BashMem{
		env:      env,
		tbl:      t,
		dir:      newDirState(env.Recycler),
		retryCap: retryBuffer,
		retries:  make(map[retryKey]bool),
	}
}

// Table returns the transition table.
func (m *BashMem) Table() *Table { return m.tbl }

// Reset clears the home-side block table, outstanding-retry set, statistics
// and coverage for a new run, draining live directory entries into the free
// list. The retry capacity is structural (systems pool by it) and is
// retained.
func (m *BashMem) Reset() {
	m.dir.reset()
	clear(m.retries)
	m.stats = BashMemStats{}
	m.tbl.ResetCoverage()
}

// Stats returns memory-side counters.
func (m *BashMem) Stats() *BashMemStats { return &m.stats }

// Preheat installs home state for warm-started workloads.
func (m *BashMem) Preheat(addr Addr, owner network.NodeID, value uint64) {
	e := m.dir.entry(addr)
	if owner == MemoryOwner {
		e.state = MemOwner
		e.owner = MemoryOwner
	} else {
		e.setCacheOwner(owner)
	}
	e.value = value
}

// OnOrdered observes one request instance.
func (m *BashMem) OnOrdered(msg *network.Message) {
	pkt := msg.Payload.(*Packet)
	if m.env.HomeOf(pkt.Addr) != m.env.Self {
		return
	}
	m.process(msg.Seq, pkt)
}

func (m *BashMem) process(seq uint64, pkt *Packet) {
	e := m.dir.entry(pkt.Addr)
	if e.state == MemWB {
		ev := EvMemGetS
		switch pkt.Kind {
		case GetM:
			ev = EvMemGetM
		case PutM:
			ev = EvMemPutMStale
		}
		m.tbl.Fire(e.state, ev)
		m.env.Recycler.Retain(pkt)
		e.waiting = append(e.waiting, memWait{seq: seq, pkt: pkt})
		return
	}
	if pkt.Kind == PutM {
		if e.state == CacheOwner && e.owner == pkt.Requestor {
			m.tbl.Fire(e.state, EvMemPutMOwner)
			e.acceptWB(pkt.Requestor)
		} else {
			m.tbl.Fire(e.state, EvMemPutMStale)
		}
		return
	}
	// Sufficiency: the instance must have reached the owner and, for GetM,
	// every (superset) sharer.
	ownerOK := e.state == MemOwner || pkt.Targets.Has(e.owner)
	sharersOK := pkt.Kind == GetS || e.sharers.SubsetOf(pkt.Targets)
	if !ownerOK || !sharersOK {
		m.tbl.Fire(e.state, EvMemInsufficient)
		m.stats.Insufficient++
		m.retry(e, pkt)
		return
	}
	m.stats.Sufficient++
	delete(m.retries, retryKey{pkt.Requestor, pkt.TxnID})
	req := pkt.Requestor
	switch pkt.Kind {
	case GetS:
		m.tbl.Fire(e.state, EvMemGetS)
		if e.state == MemOwner {
			m.sendData(req, pkt, seq, e.value)
		}
		e.addSharer(req)
	case GetM:
		m.tbl.Fire(e.state, EvMemGetM)
		switch {
		case e.state == MemOwner:
			if pkt.HasData && e.sharers.Has(req) {
				m.sendAck(req, pkt, seq)
			} else {
				m.sendData(req, pkt, seq, e.value)
			}
			e.setCacheOwner(req)
		case e.owner == req:
			// Owner upgrade: the requestor tracks the sharer set and
			// reaches the same sufficiency verdict at its own marker; no
			// ack is needed (and an ack could arrive after the requestor
			// has already lost ownership to a later request).
			e.setCacheOwner(req)
		default:
			// The owning cache saw the same instance, reached the same
			// verdict, and responds with data.
			e.setCacheOwner(req)
		}
	}
}

// retry re-multicasts an insufficient instance to the owner, sharers,
// requestor and home; the third retry escalates to a broadcast.
func (m *BashMem) retry(e *dirEntry, pkt *Packet) {
	gen := pkt.Retry + 1
	var targets network.Mask
	if int(gen) >= BroadcastEscalationRetry {
		targets = m.env.Net.FullMask()
		m.stats.Escalations++
	} else {
		targets = e.sharers
		targets.Set(pkt.Requestor)
		targets.Set(m.env.Self)
		if e.state == CacheOwner {
			targets.Set(e.owner)
		}
	}
	if rk := (retryKey{pkt.Requestor, pkt.TxnID}); !m.retries[rk] && len(m.retries) >= m.retryCap {
		// No buffer for the retry: nack; the requestor reissues as a
		// broadcast (deadlock avoidance).
		m.stats.Nacks++
		nack := m.env.newPacket()
		nack.Kind = Nack
		nack.Addr = pkt.Addr
		nack.Requestor = pkt.Requestor
		nack.Sender = m.env.Self
		nack.TxnID = pkt.TxnID
		m.env.sendUnordered(pkt.Requestor, Nack.Size(), nack)
		return
	}
	m.retries[retryKey{pkt.Requestor, pkt.TxnID}] = true
	m.stats.Retries++
	rp := m.env.newPacket()
	*rp = *pkt // wire fields; the refcount is overwritten at send below
	rp.Retry = gen
	rp.Sender = m.env.Self
	rp.Targets = targets
	// Directory access before the retry leaves the controller, giving the
	// paper's property that an insufficient unicast costs the same as a
	// directory-forwarded request (255 ns uncontended).
	m.env.sendOrderedAfter(sim.DRAMAccess, targets, rp.Kind.Size(), rp)
}

func (m *BashMem) sendData(to network.NodeID, req *Packet, seq uint64, value uint64) {
	resp := m.env.newPacket()
	resp.Kind = Data
	resp.Addr = req.Addr
	resp.Requestor = to
	resp.Sender = m.env.Self
	resp.TxnID = req.TxnID
	resp.EffSeq = seq
	resp.Value = value
	resp.FromMemory = true
	m.env.sendUnorderedAfter(sim.DRAMAccess, to, Data.Size(), resp)
}

func (m *BashMem) sendAck(to network.NodeID, req *Packet, seq uint64) {
	resp := m.env.newPacket()
	resp.Kind = Ack
	resp.Addr = req.Addr
	resp.Requestor = to
	resp.Sender = m.env.Self
	resp.TxnID = req.TxnID
	resp.EffSeq = seq
	resp.FromMemory = true
	m.env.sendUnorderedAfter(sim.DRAMAccess, to, Ack.Size(), resp)
}

// OnUnordered receives writeback data.
func (m *BashMem) OnUnordered(pkt *Packet) {
	if pkt.Kind != DataWB {
		panic(fmt.Sprintf("bash memory: unexpected %s", pkt.Kind))
	}
	e := m.dir.entry(pkt.Addr)
	if e.state != MemWB || e.wbFrom != pkt.Sender {
		panic("bash memory: unexpected writeback data")
	}
	m.tbl.Fire(e.state, EvMemDataWB)
	if m.env.Checker != nil {
		m.env.Checker.WBCommit(m.env.Self, pkt.Addr, pkt.EffSeq, pkt.Value)
	}
	e.completeWB(pkt.Value)
	m.env.progress()
	// Replay deferred same-block instances in arrival order (see the
	// snooping controller for the in-place truncation argument).
	waiting := e.waiting
	e.waiting = e.waiting[:0]
	for i := range waiting {
		w := waiting[i]
		waiting[i] = memWait{}
		m.process(w.seq, w.pkt)
		m.env.Recycler.Release(w.pkt)
	}
}

// HomeValue reports memory's copy and ownership for a block.
func (m *BashMem) HomeValue(addr Addr) (uint64, bool) { return m.dir.homeValue(addr) }
