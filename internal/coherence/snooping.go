package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/network"
	"repro/internal/sim"
)

// SnoopCache is the cache controller of the aggressive MOSI broadcast
// snooping protocol of Section 3.1 (loosely modeled on the Sun UE10000).
// Every request is broadcast on the totally ordered request network; the
// requestor snoops its own request as the ordering marker; the owner
// (possibly memory) supplies data on the unordered response network.
type SnoopCache struct {
	ctrlCore
}

// NewSnoopCache builds a snooping cache controller.
func NewSnoopCache(env Env, arrayCfg cache.Config) *SnoopCache {
	s := &SnoopCache{}
	s.init(env, s, snoopCacheTable(), arrayCfg)
	s.pending = pendingStates{
		fetchLoad:    IS_A,
		fetchStore:   IM_A,
		upgradeFromS: SM_A,
		upgradeFromO: OM_A,
	}
	return s
}

// snoopCacheTable declares the legal transitions (Table 1 accounting).
func snoopCacheTable() *Table {
	t := NewTable("snooping-cache")
	type se struct {
		s State
		e Event
	}
	for _, d := range []se{
		// Processor events.
		{Invalid, EvLoad}, {Invalid, EvStore},
		{Shared, EvLoad}, {Shared, EvStore}, {Shared, EvReplace},
		{Owned, EvLoad}, {Owned, EvStore}, {Owned, EvReplace},
		{Modified, EvLoad}, {Modified, EvStore}, {Modified, EvReplace},
		// Own requests on the ordered network (markers).
		{IS_A, EvOwnReq}, {IM_A, EvOwnReq}, {SM_A, EvOwnReq}, {OM_A, EvOwnReq},
		{MI_A, EvOwnPutM}, {OI_A, EvOwnPutM}, {II_A, EvOwnPutM},
		// Foreign requests.
		{Shared, EvOtherGetS}, {Shared, EvOtherGetM},
		{Owned, EvOtherGetS}, {Owned, EvOtherGetM},
		{Modified, EvOtherGetS}, {Modified, EvOtherGetM},
		{IS_A, EvOtherGetS}, {IS_A, EvOtherGetM},
		{IM_A, EvOtherGetS}, {IM_A, EvOtherGetM},
		{SM_A, EvOtherGetS}, {SM_A, EvOtherGetM},
		{OM_A, EvOtherGetS}, {OM_A, EvOtherGetM},
		{MI_A, EvOtherGetS}, {MI_A, EvOtherGetM},
		{OI_A, EvOtherGetS}, {OI_A, EvOtherGetM},
		{II_A, EvOtherGetS}, {II_A, EvOtherGetM},
		{IS_D, EvOtherGetS}, {IS_D, EvOtherGetM}, // deferred
		{IM_D, EvOtherGetS}, {IM_D, EvOtherGetM}, // deferred
		// Data responses. Data cannot overtake the requestor's own marker in
		// snooping: both cross the requestor's FIFO inbound link, and the
		// responder sees the request no earlier than the marker's delivery —
		// so there are no *_A data rows.
		{IS_D, EvData}, {IM_D, EvData},
	} {
		t.Declare(d.s, d.e)
	}
	return t
}

// Access dispatches processor operations and fires the processor-event rows
// of the transition table.
func (s *SnoopCache) Access(op Op, done func()) {
	st := s.StateOf(op.Addr)
	if l := s.lines[op.Addr]; l == nil || l.txn == nil {
		ev := EvLoad
		if op.Store {
			ev = EvStore
		}
		s.tbl.Fire(st, ev)
	}
	s.ctrlCore.Access(op, done)
}

func (s *SnoopCache) issueDemand(l *line, t *txn) {
	t.broadcast = true
	s.stats.BroadcastRequests++
	s.broadcastReq(l, t)
}

func (s *SnoopCache) issueWB(l *line, t *txn) {
	s.tbl.Fire(mustWBOrigin(l.state), EvReplace)
	t.broadcast = true
	s.broadcastReq(l, t)
}

func mustWBOrigin(st State) State {
	switch st {
	case MI_A:
		return Modified
	case OI_A:
		return Owned
	}
	panic(fmt.Sprintf("coherence: writeback from %s", st))
}

func (s *SnoopCache) broadcastReq(l *line, t *txn) {
	pkt := s.env.newPacket()
	pkt.Kind = t.kind
	pkt.Addr = l.addr
	pkt.Requestor = s.env.Self
	pkt.Sender = s.env.Self
	pkt.TxnID = t.id
	pkt.HasData = t.hasData
	s.env.sendOrdered(s.env.Net.FullMask(), t.kind.Size(), pkt)
}

// OnOrdered snoops one totally ordered request.
func (s *SnoopCache) OnOrdered(m *network.Message) {
	pkt := m.Payload.(*Packet)
	if pkt.Requestor == s.env.Self {
		s.ownReq(m.Seq, pkt)
		return
	}
	l := s.lines[pkt.Addr]
	if l == nil {
		return // no copy, no transaction: nothing to snoop
	}
	s.foreign(l, m.Seq, pkt)
}

func (s *SnoopCache) ownReq(seq uint64, pkt *Packet) {
	l := s.lines[pkt.Addr]
	if l == nil || l.txn == nil || l.txn.id != pkt.TxnID {
		panic("snooping: own request without matching transaction")
	}
	t := l.txn
	t.markerSeq = seq
	if pkt.Kind == PutM {
		s.tbl.Fire(l.state, EvOwnPutM)
		switch l.state {
		case MI_A, OI_A:
			s.respondWBData(l, seq)
			s.completeWB(l)
		case II_A:
			s.completeWB(l)
		default:
			panic(fmt.Sprintf("snooping: own PutM in %s", l.state))
		}
		return
	}
	s.tbl.Fire(l.state, EvOwnReq)
	switch l.state {
	case IS_A:
		l.state = IS_D
	case IM_A:
		l.state = IM_D
	case SM_A, OM_A:
		// The upgrade takes effect at the marker: the broadcast reached
		// every sharer, and the local copy is current (any earlier
		// conflicting write would have demoted this state).
		s.stats.Upgrades++
		s.completeDemand(l, Modified, seq, l.value)
	default:
		panic(fmt.Sprintf("snooping: own %s in %s", pkt.Kind, l.state))
	}
}

// foreign applies a foreign request instance to a line; it is also the
// replay entry point after completion.
func (s *SnoopCache) foreign(l *line, seq uint64, pkt *Packet) {
	if pkt.Kind == PutM {
		return // foreign writebacks are invisible to other caches
	}
	ev := EvOtherGetS
	if pkt.Kind == GetM {
		ev = EvOtherGetM
	}
	if l.state == Invalid {
		return
	}
	s.tbl.Fire(l.state, ev)
	switch l.state {
	case IS_A, IM_A, II_A:
		// No valid copy and no ownership: nothing to do.
	case Shared:
		if ev == EvOtherGetM {
			l.state = Invalid
			s.array.Remove(l.addr)
			s.release(l)
		}
	case SM_A:
		if ev == EvOtherGetM {
			// Lost the S copy before our own marker: the upgrade becomes a
			// full miss; data will come from the new owner chain. The array
			// slot stays reserved for the fill.
			l.state = IM_A
		}
	case OM_A:
		s.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvOtherGetM {
			l.state = IM_A
		}
	case Owned:
		s.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvOtherGetM {
			l.state = Invalid
			s.array.Remove(l.addr)
			s.release(l)
		}
	case Modified:
		s.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvOtherGetM {
			l.state = Invalid
			s.array.Remove(l.addr)
			s.release(l)
		} else {
			l.state = Owned
		}
	case MI_A:
		s.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvOtherGetM {
			l.state = II_A
		} else {
			l.state = OI_A
		}
	case OI_A:
		s.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvOtherGetM {
			l.state = II_A
		}
	case IS_D, IM_D:
		// Marker already observed: the foreign request is ordered after our
		// transaction; park it until data arrives.
		s.defer_(l, seq, pkt)
	default:
		panic(fmt.Sprintf("snooping: foreign %s in %s", pkt.Kind, l.state))
	}
}

// OnUnordered receives data responses.
func (s *SnoopCache) OnUnordered(pkt *Packet) {
	if pkt.Kind != Data {
		panic(fmt.Sprintf("snooping cache: unexpected %s", pkt.Kind))
	}
	l := s.lines[pkt.Addr]
	if l == nil || l.txn == nil || l.txn.id != pkt.TxnID {
		// Redundant data for an upgrade that completed at its marker.
		s.stats.StaleDataDropped++
		return
	}
	t := l.txn
	s.tbl.Fire(l.state, EvData)
	t.fromMem = pkt.FromMemory
	switch l.state {
	case IS_D:
		s.recordMissSource(t)
		s.completeDemand(l, Shared, t.markerSeq, pkt.Value)
	case IM_D:
		s.recordMissSource(t)
		s.completeDemand(l, Modified, t.markerSeq, pkt.Value)
	default:
		panic(fmt.Sprintf("snooping: data in %s", l.state))
	}
}

func (s *SnoopCache) recordMissSource(t *txn) {
	if t.fromMem {
		s.stats.MemoryMisses++
	} else {
		s.stats.SharingMisses++
	}
}

// SnoopMem is the snooping memory controller: it snoops every request in
// order, responds with data when memory is the owner, and tracks the owning
// cache so stale writebacks are ignored.
type SnoopMem struct {
	env Env
	tbl *Table
	dir *dirState
}

// NewSnoopMem builds the memory controller for one node's memory slice.
func NewSnoopMem(env Env) *SnoopMem {
	t := NewTable("snooping-memory")
	type se struct {
		s MemState
		e Event
	}
	for _, d := range []se{
		{MemOwner, EvMemGetS}, {CacheOwner, EvMemGetS},
		{MemOwner, EvMemGetM}, {CacheOwner, EvMemGetM},
		{CacheOwner, EvMemPutMOwner},
		{MemOwner, EvMemPutMStale}, {CacheOwner, EvMemPutMStale},
		{MemWB, EvMemGetS}, {MemWB, EvMemGetM}, {MemWB, EvMemPutMStale},
		{MemWB, EvMemDataWB},
	} {
		t.Declare(d.s, d.e)
	}
	if env.Recycler == nil {
		env.Recycler = NewRecycler()
	}
	return &SnoopMem{env: env, tbl: t, dir: newDirState(env.Recycler)}
}

// Table returns the transition table.
func (m *SnoopMem) Table() *Table { return m.tbl }

// Reset clears the home-side block table and coverage for a new run,
// draining live directory entries into the free list.
func (m *SnoopMem) Reset() {
	m.dir.reset()
	m.tbl.ResetCoverage()
}

// OwnerOf exposes the tracked owner (tests and preheating).
func (m *SnoopMem) OwnerOf(addr Addr) network.NodeID { return m.dir.entry(addr).ownerOf() }

// Preheat installs home state for warm-started workloads.
func (m *SnoopMem) Preheat(addr Addr, owner network.NodeID, value uint64) {
	e := m.dir.entry(addr)
	if owner == MemoryOwner {
		e.state = MemOwner
		e.owner = MemoryOwner
	} else {
		e.setCacheOwner(owner)
	}
	e.value = value
}

// OnOrdered snoops one request.
func (m *SnoopMem) OnOrdered(msg *network.Message) {
	pkt := msg.Payload.(*Packet)
	if m.env.HomeOf(pkt.Addr) != m.env.Self {
		return
	}
	m.process(msg.Seq, pkt)
}

func (m *SnoopMem) process(seq uint64, pkt *Packet) {
	e := m.dir.entry(pkt.Addr)
	if e.state == MemWB {
		ev := EvMemGetS
		switch pkt.Kind {
		case GetM:
			ev = EvMemGetM
		case PutM:
			ev = EvMemPutMStale
		}
		m.tbl.Fire(e.state, ev)
		m.env.Recycler.Retain(pkt)
		e.waiting = append(e.waiting, memWait{seq: seq, pkt: pkt})
		return
	}
	switch pkt.Kind {
	case GetS:
		m.tbl.Fire(e.state, EvMemGetS)
		if e.state == MemOwner {
			m.sendData(pkt, seq, e.value)
		}
		// CacheOwner: the owning cache snoops the same request and responds.
	case GetM:
		m.tbl.Fire(e.state, EvMemGetM)
		if e.state == MemOwner {
			// Memory always supplies data: the HasData hint can be stale
			// (the requestor may have lost its S copy to a racing GetM
			// whose owner has since written back), and snooping memory
			// keeps no sharer state to repair it.
			m.sendData(pkt, seq, e.value)
			e.setCacheOwner(pkt.Requestor)
		} else if e.owner != pkt.Requestor {
			e.setCacheOwner(pkt.Requestor)
		}
		// owner == requestor: an O->M upgrade; ownership unchanged.
	case PutM:
		if e.state == CacheOwner && e.owner == pkt.Requestor {
			m.tbl.Fire(e.state, EvMemPutMOwner)
			e.acceptWB(pkt.Requestor)
		} else {
			m.tbl.Fire(e.state, EvMemPutMStale)
		}
	default:
		panic(fmt.Sprintf("snooping memory: unexpected %s", pkt.Kind))
	}
}

func (m *SnoopMem) sendData(req *Packet, seq uint64, value uint64) {
	resp := m.env.newPacket()
	resp.Kind = Data
	resp.Addr = req.Addr
	resp.Requestor = req.Requestor
	resp.Sender = m.env.Self
	resp.TxnID = req.TxnID
	resp.EffSeq = seq
	resp.Value = value
	resp.FromMemory = true
	m.env.sendUnorderedAfter(sim.DRAMAccess, req.Requestor, Data.Size(), resp)
}

// OnUnordered receives writeback data.
func (m *SnoopMem) OnUnordered(pkt *Packet) {
	if pkt.Kind != DataWB {
		panic(fmt.Sprintf("snooping memory: unexpected %s", pkt.Kind))
	}
	e := m.dir.entry(pkt.Addr)
	if e.state != MemWB || e.wbFrom != pkt.Sender {
		panic("snooping memory: unexpected writeback data")
	}
	m.tbl.Fire(e.state, EvMemDataWB)
	if m.env.Checker != nil {
		m.env.Checker.WBCommit(m.env.Self, pkt.Addr, pkt.EffSeq, pkt.Value)
	}
	e.completeWB(pkt.Value)
	m.env.progress()
	// Replay the deferred same-block work in arrival order. The waiting
	// slice is truncated in place (capacity retained); an entry that
	// re-parks — the replayed work re-enters MemWB — appends behind the
	// read cursor, never overtaking it.
	waiting := e.waiting
	e.waiting = e.waiting[:0]
	for i := range waiting {
		w := waiting[i]
		waiting[i] = memWait{}
		m.process(w.seq, w.pkt)
		m.env.Recycler.Release(w.pkt)
	}
}

// HomeValue reports memory's copy and ownership for a block.
func (m *SnoopMem) HomeValue(addr Addr) (uint64, bool) { return m.dir.homeValue(addr) }
