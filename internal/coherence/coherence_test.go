package coherence

import (
	"testing"

	"repro/internal/network"
	"repro/internal/stats"
)

func TestKindSizes(t *testing.T) {
	for k := GetS; k < numKinds; k++ {
		want := ControlBytes
		if k == Data || k == DataWB {
			want = DataBytes
		}
		if k.Size() != want {
			t.Errorf("%s size = %d, want %d", k, k.Size(), want)
		}
	}
}

func TestStateClassification(t *testing.T) {
	owners := map[State]bool{
		Modified: true, Owned: true, OM_A: true, OM_P: true, MI_A: true, OI_A: true,
	}
	valid := map[State]bool{
		Shared: true, Owned: true, Modified: true, SM_A: true, SM_P: true,
		OM_A: true, OM_P: true, MI_A: true, OI_A: true,
	}
	for s := Invalid; s < numStates; s++ {
		if s.IsOwnerState() != owners[s] {
			t.Errorf("%s IsOwnerState = %v", s, s.IsOwnerState())
		}
		if s.HasValidData() != valid[s] {
			t.Errorf("%s HasValidData = %v", s, s.HasValidData())
		}
		if s.IsStable() != (s <= Modified) {
			t.Errorf("%s IsStable = %v", s, s.IsStable())
		}
	}
}

func TestTableCounting(t *testing.T) {
	tbl := NewTable("x")
	tbl.Declare(Invalid, EvLoad)
	tbl.Declare(Invalid, EvStore)
	tbl.Declare(Shared, EvLoad)
	if tbl.States() != 2 || tbl.Events() != 2 || tbl.Transitions() != 3 {
		t.Fatalf("counts = %d/%d/%d", tbl.States(), tbl.Events(), tbl.Transitions())
	}
	tbl.Fire(Invalid, EvLoad)
	fired, declared := tbl.Coverage()
	if fired != 1 || declared != 3 {
		t.Fatalf("coverage = %d/%d", fired, declared)
	}
	if got := len(tbl.Uncovered()); got != 2 {
		t.Fatalf("uncovered = %d", got)
	}
}

func TestTableIllegalTransitionPanics(t *testing.T) {
	tbl := NewTable("x")
	tbl.Declare(Invalid, EvLoad)
	defer func() {
		if recover() == nil {
			t.Error("undeclared transition did not panic")
		}
	}()
	tbl.Fire(Modified, EvData)
}

func TestComplexityRow(t *testing.T) {
	c := NewTable("cache")
	c.Declare(Invalid, EvLoad)
	c.Declare(Shared, EvLoad)
	m := NewTable("mem")
	m.Declare(MemOwner, EvMemGetS)
	row := Complexity("P", c, m)
	if row.TotalStates != 3 || row.TotalEvents != 2 || row.TotalTransitions != 3 {
		t.Fatalf("row = %+v", row)
	}
	if row.CacheTransitions != 2 || row.MemTransitions != 1 {
		t.Fatalf("row = %+v", row)
	}
}

func TestDirEntryLifecycle(t *testing.T) {
	d := newDirState(NewRecycler())
	e := d.entry(7)
	if e.state != MemOwner || e.ownerOf() != MemoryOwner {
		t.Fatal("default entry not memory-owned")
	}
	e.setCacheOwner(3)
	if e.ownerOf() != 3 || !e.sharers.IsEmpty() {
		t.Fatal("setCacheOwner broken")
	}
	e.addSharer(5)
	e.acceptWB(3)
	if e.state != MemWB || e.ownerOf() != MemoryOwner {
		t.Fatal("acceptWB broken")
	}
	if !e.sharers.Has(5) {
		t.Fatal("writeback must preserve sharers (S copies survive)")
	}
	e.completeWB(99)
	if e.state != MemOwner || e.value != 99 {
		t.Fatal("completeWB broken")
	}
	if v, memOwner := d.homeValue(7); v != 99 || !memOwner {
		t.Fatalf("homeValue = %v/%v", v, memOwner)
	}
	if v, memOwner := d.homeValue(1234); v != 0 || !memOwner {
		t.Fatalf("homeValue of untouched block = %v/%v", v, memOwner)
	}
}

func TestCheckerValueChain(t *testing.T) {
	c := NewChecker()
	c.Panic = false
	c.WriteCommit(1, 10, 100, 0xA, 0)   // first write observes initial 0
	c.ReadCommit(2, 10, 150, 0xA)       // read after the write sees it
	c.WriteCommit(3, 10, 200, 0xB, 0xA) // second write observes the first
	c.ReadCommit(4, 10, 180, 0xA)       // read ordered between the writes
	c.WBCommit(0, 10, 250, 0xB)         // writeback carries the latest
	if len(c.Violations) != 0 {
		t.Fatalf("false positives: %v", c.Violations)
	}
	c.ReadCommit(5, 10, 300, 0xA) // stale read after the second write
	if len(c.Violations) != 1 {
		t.Fatalf("stale read not caught: %v", c.Violations)
	}
	c.WriteCommit(6, 10, 190, 0xC, 0xB) // out-of-order commit
	if len(c.Violations) < 2 {
		t.Fatal("out-of-order write commit not caught")
	}
}

func TestCheckerSWMR(t *testing.T) {
	c := NewChecker()
	c.Panic = false
	c.Register(fakeCache{st: Modified})
	c.Register(fakeCache{st: Modified})
	c.WriteCommit(0, 1, 10, 0x1, 0)
	if len(c.Violations) == 0 {
		t.Fatal("two Modified copies not caught")
	}
}

type fakeCache struct{ st State }

func (f fakeCache) Access(Op, func())                  {}
func (f fakeCache) OnOrdered(*network.Message)         {}
func (f fakeCache) OnUnordered(*Packet)                {}
func (f fakeCache) Stats() *CacheStats                 { return &CacheStats{} }
func (f fakeCache) StateOf(Addr) State                 { return f.st }
func (f fakeCache) ValueOf(Addr) uint64                { return 0 }
func (f fakeCache) Table() *Table                      { return NewTable("fake") }
func (f fakeCache) Preheat(Addr, State, uint64)        {}
func (f fakeCache) LatencyHistogram() *stats.Histogram { return stats.NewLatencyHistogram() }
func (f fakeCache) Reset()                             {}
