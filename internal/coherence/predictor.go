package coherence

import "repro/internal/network"

// OwnerPredictor implements the paper's Section 7 future-work direction:
// "it might be preferable to predict based on sharing patterns ...
// integrating bandwidth adaptivity with multicast snooping". It is a
// tagged, direct-mapped last-owner table: when the adaptive policy chooses
// not to broadcast, the requestor adds the predicted owner to its mask,
// turning the dualcast into a three-way multicast. A correct prediction
// makes the first instance sufficient — snooping's 125 ns cache-to-cache
// latency at close to unicast bandwidth. A misprediction costs nothing new:
// the memory controller's retry path (Section 3.3) already handles
// insufficient masks.
//
// BASH remains "a special case of [Multicast Snooping]" (Section 3.3); this
// predictor is the smallest step from BASH toward the general protocol.
type OwnerPredictor struct {
	entries []predEntry
	mask    uint64

	// Lookups/Predictions count queries and confident answers.
	Lookups, Predictions uint64
}

type predEntry struct {
	tag        Addr
	owner      network.NodeID
	confidence int8
	valid      bool
}

// predictorConfidenceMax saturates the per-entry confidence counter; an
// entry predicts only when its counter is positive, so one stale
// observation does not flip a stable pattern.
const predictorConfidenceMax = 3

// NewOwnerPredictor returns a table with the given power-of-two size.
func NewOwnerPredictor(size int) *OwnerPredictor {
	if size <= 0 {
		size = 8192
	}
	if size&(size-1) != 0 {
		panic("coherence: predictor size must be a power of two")
	}
	return &OwnerPredictor{
		entries: make([]predEntry, size),
		mask:    uint64(size - 1),
	}
}

// Reset invalidates every entry and zeroes the counters in place, keeping
// the table storage, so a reused predictor starts cold like a fresh one.
func (p *OwnerPredictor) Reset() {
	clear(p.entries)
	p.Lookups = 0
	p.Predictions = 0
}

func (p *OwnerPredictor) slot(a Addr) *predEntry {
	return &p.entries[uint64(a)&p.mask]
}

// Learn records an observed owner for a block: the sender of a cache-sourced
// data response, or the requestor of an observed foreign GetM (who becomes
// owner at that instance).
func (p *OwnerPredictor) Learn(a Addr, owner network.NodeID) {
	e := p.slot(a)
	if !e.valid || e.tag != a {
		*e = predEntry{tag: a, owner: owner, confidence: 1, valid: true}
		return
	}
	if e.owner == owner {
		if e.confidence < predictorConfidenceMax {
			e.confidence++
		}
		return
	}
	e.confidence--
	if e.confidence <= 0 {
		e.owner = owner
		e.confidence = 1
	}
}

// Invalidate drops a block's entry (e.g. when memory reclaims ownership via
// a writeback, so predicting the old owner is known-wrong).
func (p *OwnerPredictor) Invalidate(a Addr) {
	e := p.slot(a)
	if e.valid && e.tag == a {
		e.valid = false
	}
}

// Predict returns the likely current owner of a block.
func (p *OwnerPredictor) Predict(a Addr) (network.NodeID, bool) {
	p.Lookups++
	e := p.slot(a)
	if !e.valid || e.tag != a || e.confidence <= 0 {
		return 0, false
	}
	p.Predictions++
	return e.owner, true
}

// HitRate reports the fraction of lookups that produced a prediction.
func (p *OwnerPredictor) HitRate() float64 {
	if p.Lookups == 0 {
		return 0
	}
	return float64(p.Predictions) / float64(p.Lookups)
}
