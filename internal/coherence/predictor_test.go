package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
)

func TestPredictorLearnsAndPredicts(t *testing.T) {
	p := NewOwnerPredictor(64)
	if _, ok := p.Predict(5); ok {
		t.Fatal("cold predictor predicted")
	}
	p.Learn(5, 3)
	owner, ok := p.Predict(5)
	if !ok || owner != 3 {
		t.Fatalf("predict = %v/%v, want 3", owner, ok)
	}
}

func TestPredictorHysteresis(t *testing.T) {
	p := NewOwnerPredictor(64)
	for i := 0; i < 3; i++ {
		p.Learn(9, 2) // confidence saturates at 3
	}
	p.Learn(9, 7) // one conflicting observation must not flip it
	if owner, ok := p.Predict(9); !ok || owner != 2 {
		t.Fatalf("one observation flipped a confident entry: %v/%v", owner, ok)
	}
	p.Learn(9, 7)
	p.Learn(9, 7) // confidence exhausted: flips
	if owner, ok := p.Predict(9); !ok || owner != 7 {
		t.Fatalf("predictor did not converge to the new owner: %v/%v", owner, ok)
	}
}

func TestPredictorConflictEviction(t *testing.T) {
	p := NewOwnerPredictor(8)
	p.Learn(1, 4)
	p.Learn(9, 5) // same slot (9 % 8 == 1): tag conflict replaces
	if _, ok := p.Predict(1); ok {
		t.Fatal("evicted entry still predicts")
	}
	if owner, _ := p.Predict(9); owner != 5 {
		t.Fatal("replacing entry lost")
	}
}

func TestPredictorInvalidate(t *testing.T) {
	p := NewOwnerPredictor(8)
	p.Learn(3, 1)
	p.Invalidate(3)
	if _, ok := p.Predict(3); ok {
		t.Fatal("invalidated entry predicts")
	}
	p.Invalidate(100) // no-op on absent entries
}

func TestPredictorSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size did not panic")
		}
	}()
	NewOwnerPredictor(100)
}

// TestPredictorConvergence: after enough consistent observations the
// predictor always reports the dominant owner, for any interleaving of a
// minority of noise observations.
func TestPredictorConvergence(t *testing.T) {
	f := func(noise []uint8) bool {
		if len(noise) > 3 {
			noise = noise[:3]
		}
		p := NewOwnerPredictor(16)
		for _, n := range noise {
			p.Learn(4, int16ToNode(n))
		}
		for i := 0; i < 8; i++ {
			p.Learn(4, 11)
		}
		owner, ok := p.Predict(4)
		return ok && owner == 11
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func int16ToNode(v uint8) network.NodeID { return network.NodeID(v % 8) }
