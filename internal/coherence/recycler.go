package coherence

import "fmt"

// Recycler bundles the free lists of a system's simulation hot path: the
// protocol Packets every message carries, and the line / transaction /
// pended-queue / directory-entry records the controllers materialize and
// drop as blocks move through the machine. One Recycler is shared by every
// controller of a System (core wires it through Env), which matters for
// convergence: the system-wide population of live records is pinned by the
// protocol itself — one owner per block, one outstanding demand per
// processor — so the shared lists reach their high-water marks within a few
// hundred operations, while per-controller lists would each have to random-
// walk to their own maxima before allocation stopped.
//
// Packet lifecycle contract:
//
//   - The sender obtains a Packet with Get and hands it to the network via
//     the Env send helpers, which set the reference count to the number of
//     deliveries (one per target node of an ordered multicast, one for an
//     unordered unicast).
//   - The delivery plumbing (core.Node) holds one reference for the duration
//     of each Deliver* call and releases it when the node's controllers have
//     returned. Everything a controller, the checker, the predictor or the
//     statistics read synchronously during delivery is therefore covered.
//   - A controller that needs the packet after its handler returns — a
//     deferred foreign instance, a MemWB waiting list, a directory apply
//     scheduled behind the DRAM latency — must Retain it and Release it when
//     that retained use ends.
//   - Release with no outstanding reference panics (a double release is a
//     protocol-lifecycle bug, surfaced loudly); the release that drops the
//     last reference zeroes the Packet and returns it to the free list.
//
// Reset-time orphans are deliberate: when a System is Reset mid-flight, any
// packet still scheduled, deferred or waiting is dropped with the kernel's
// event queue and garbage-collected — never returned to the free list, since
// the same packet may be parked at several nodes. The free lists themselves
// survive Reset, which is what keeps a warmed pooled System allocation-free.
//
// SetRecycle(false) is the escape hatch: reference counting (and its
// double-release check) stays on, but every get allocates and nothing is
// recycled, so a recycled run can be byte-compared against a fresh-
// allocation run. Behaviour is identical either way; the determinism tests
// assert it.
type Recycler struct {
	free      []*Packet
	noRecycle bool

	lines   []*line
	txns    []*txn
	pends   [][]pendedOp
	entries []*dirEntry
	applies []*dirApplyTask

	// live counts packets handed out and not yet fully released. After a
	// drained run (System.Quiesce) every packet has been released, so a
	// non-zero live count there is a leak; the lifecycle tests assert zero.
	live int

	// Gets and Reuses count packet allocations served in total and from the
	// free list (diagnostics and tests).
	Gets, Reuses uint64
}

// NewRecycler returns an empty recycler with recycling enabled.
func NewRecycler() *Recycler { return &Recycler{} }

// SetRecycle toggles free-list reuse; see the type comment. It also rebases
// the live-packet counter, since callers flip it only at run boundaries
// (core.System wiring), where any still-referenced packet is an orphan of
// the previous run.
func (p *Recycler) SetRecycle(on bool) {
	p.noRecycle = !on
	p.live = 0
}

// Recycling reports whether free-list reuse is enabled.
func (p *Recycler) Recycling() bool { return !p.noRecycle }

// Get returns a zeroed Packet, from the free list when possible.
func (p *Recycler) Get() *Packet {
	p.Gets++
	p.live++
	if n := len(p.free); n > 0 && !p.noRecycle {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.Reuses++
		return pkt
	}
	return &Packet{}
}

// Retain adds a reference for a consumer that will hold the packet beyond
// the current delivery (deferral, waiting lists, scheduled applies).
func (p *Recycler) Retain(pkt *Packet) { pkt.refs++ }

// Release drops one reference. The last release zeroes and recycles the
// packet; a release past zero panics descriptively.
func (p *Recycler) Release(pkt *Packet) {
	pkt.refs--
	if pkt.refs < 0 {
		panic(fmt.Sprintf("coherence: packet double release: %s (refs %d)", pkt, pkt.refs))
	}
	if pkt.refs > 0 {
		return
	}
	p.live--
	if p.noRecycle {
		return
	}
	*pkt = Packet{}
	p.free = append(p.free, pkt)
}

// Live reports packets handed out and not yet fully released. Zero after a
// drained run; packets orphaned by a mid-flight Reset are excluded by the
// SetRecycle rebase.
func (p *Recycler) Live() int { return p.live }

// FreeLen reports the current packet free-list depth (tests/diagnostics).
func (p *Recycler) FreeLen() int { return len(p.free) }

// getLine materializes a line record for addr. Fresh records are born with
// deferral capacity so a record's deferred slice almost never grows after
// creation (deferCap is the system's node count, the common-case bound on
// concurrent same-block deferrals).
func (p *Recycler) getLine(addr Addr, deferCap int) *line {
	if n := len(p.lines); n > 0 && !p.noRecycle {
		l := p.lines[n-1]
		p.lines[n-1] = nil
		p.lines = p.lines[:n-1]
		l.addr = addr
		l.state = Invalid
		return l
	}
	l := &line{addr: addr, state: Invalid}
	if !p.noRecycle {
		l.deferred = make([]deferredMsg, 0, deferCap)
	}
	return l
}

// putLine zeroes a line record (keeping its deferred-slice capacity) and
// returns it to the free list. The caller must have removed it from its
// line map and recycled/dropped its transaction.
func (p *Recycler) putLine(l *line) {
	if p.noRecycle {
		return
	}
	deferred := l.deferred
	clear(deferred) // release parked packet references to the GC
	*l = line{deferred: deferred[:0]}
	p.lines = append(p.lines, l)
}

func (p *Recycler) getTxn() *txn {
	if n := len(p.txns); n > 0 && !p.noRecycle {
		t := p.txns[n-1]
		p.txns[n-1] = nil
		p.txns = p.txns[:n-1]
		return t
	}
	return &txn{}
}

// putTxn zeroes a completed transaction and returns it to the free list.
func (p *Recycler) putTxn(t *txn) {
	if p.noRecycle {
		return
	}
	*t = txn{}
	p.txns = append(p.txns, t)
}

// getPendQueue returns an empty pended-op slice with retained capacity, or
// nil (append allocates one).
func (p *Recycler) getPendQueue() []pendedOp {
	if n := len(p.pends); n > 0 && !p.noRecycle {
		q := p.pends[n-1]
		p.pends[n-1] = nil
		p.pends = p.pends[:n-1]
		return q
	}
	return nil
}

func (p *Recycler) putPendQueue(q []pendedOp) {
	if q == nil || p.noRecycle {
		return
	}
	clear(q) // release op/done references
	p.pends = append(p.pends, q[:0])
}

// getDirEntry materializes a home-side block entry (memory-owned default).
func (p *Recycler) getDirEntry() *dirEntry {
	if n := len(p.entries); n > 0 && !p.noRecycle {
		e := p.entries[n-1]
		p.entries[n-1] = nil
		p.entries = p.entries[:n-1]
		e.state = MemOwner
		e.owner = MemoryOwner
		return e
	}
	e := &dirEntry{state: MemOwner, owner: MemoryOwner}
	if !p.noRecycle {
		e.waiting = make([]memWait, 0, 4)
	}
	return e
}

// getApplyTask materializes a directory-apply task for one request.
func (p *Recycler) getApplyTask(m *DirMem, pkt *Packet) *dirApplyTask {
	if n := len(p.applies); n > 0 && !p.noRecycle {
		t := p.applies[n-1]
		p.applies[n-1] = nil
		p.applies = p.applies[:n-1]
		t.m = m
		t.pkt = pkt
		return t
	}
	return &dirApplyTask{m: m, pkt: pkt}
}

func (p *Recycler) putApplyTask(t *dirApplyTask) {
	if p.noRecycle {
		return
	}
	t.m = nil
	t.pkt = nil
	p.applies = append(p.applies, t)
}

// putDirEntry zeroes an entry (keeping its waiting-slice capacity, dropping
// parked packets to the GC) and returns it to the free list.
func (p *Recycler) putDirEntry(e *dirEntry) {
	if p.noRecycle {
		return
	}
	waiting := e.waiting
	clear(waiting)
	*e = dirEntry{waiting: waiting[:0]}
	p.entries = append(p.entries, e)
}
