package coherence

import (
	"fmt"
	"sort"

	"repro/internal/network"
)

// Checker validates the two properties the paper's random tester targets:
//
//   - SWMR / coherence invariants: at most one owner per block; a Modified
//     copy excludes all other valid copies.
//   - Data value correctness: every transaction observes the value written
//     by the most recent conflicting write in the global total order
//     (the action/check pairs of Wood et al. that the paper cites).
//
// Each store writes a unique token. Commits are recorded against the
// sequence number of the transaction's effective ordered instance, and the
// per-block history must be consistent with that order.
type Checker struct {
	caches []CacheController
	hist   map[Addr][]commit
	// Violations collects failures when Panic is false.
	Violations []string
	// Panic makes any violation panic immediately (default true).
	Panic bool
	// WriteCommits and ReadCommits count checked operations.
	WriteCommits, ReadCommits uint64
}

type commit struct {
	seq   uint64
	value uint64
	node  network.NodeID
}

// NewChecker returns an empty checker that panics on violations.
func NewChecker() *Checker {
	return &Checker{hist: make(map[Addr][]commit), Panic: true}
}

// Register adds a cache controller to the SWMR scan set.
func (c *Checker) Register(cc CacheController) { c.caches = append(c.caches, cc) }

// checkerRetainBlocks bounds how many per-block history slices Reset keeps
// warm. Unlike the other free lists, history capacity is not pinned by a
// structural high-water mark — it scales with run length times the union of
// address sets across pooled runs — so past this bound Reset releases
// everything to the garbage collector instead.
const checkerRetainBlocks = 4096

// Reset clears the commit history, violations and counters for a new run,
// restoring the panic-on-violation default. The registered cache set is
// structural and survives (the controllers themselves are reused). The
// per-block history slices keep their grown capacity — the retain-on-Reset
// idiom — up to checkerRetainBlocks blocks; a checker that has touched more
// drops the whole history rather than retaining unbounded memory across
// pooled runs with disjoint address sets.
func (c *Checker) Reset() {
	if len(c.hist) > checkerRetainBlocks {
		clear(c.hist)
	} else {
		for a, h := range c.hist {
			c.hist[a] = h[:0]
		}
	}
	// Violations must be detached, not truncated: tester Reports alias this
	// slice after the System returns to the pool, and appending over a
	// truncated backing array would corrupt (and race with) their contents.
	// Passing runs have no violations, so there is nothing to retain anyway.
	c.Violations = nil
	c.Panic = true
	c.WriteCommits = 0
	c.ReadCommits = 0
}

func (c *Checker) fail(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if c.Panic {
		panic("checker: " + msg)
	}
	c.Violations = append(c.Violations, msg)
}

// valueAt returns the committed value visible at sequence position seq
// (i.e. from the latest write strictly before seq), defaulting to the
// initial memory value 0.
func (c *Checker) valueAt(addr Addr, seq uint64) uint64 {
	h := c.hist[addr]
	i := sort.Search(len(h), func(i int) bool { return h[i].seq >= seq })
	if i == 0 {
		return 0
	}
	return h[i-1].value
}

// WriteCommit records a store's commit at its effective instance and checks
// that the data it observed (the block content it overwrites) is the value
// of the immediately preceding write in the total order.
func (c *Checker) WriteCommit(node network.NodeID, addr Addr, seq, token, observedOld uint64) {
	c.WriteCommits++
	if want := c.valueAt(addr, seq); observedOld != want {
		c.fail("node %d write to %d at seq %d observed value %x, want %x",
			node, addr, seq, observedOld, want)
	}
	h := c.hist[addr]
	if n := len(h); n > 0 && h[n-1].seq >= seq {
		c.fail("node %d write to %d commits at seq %d out of order (last %d)",
			node, addr, seq, h[n-1].seq)
	}
	c.hist[addr] = append(h, commit{seq: seq, value: token, node: node})
	c.checkSWMR(addr)
}

// ReadCommit checks a load's observed value against the write history at its
// effective instance position.
func (c *Checker) ReadCommit(node network.NodeID, addr Addr, seq, value uint64) {
	c.ReadCommits++
	if want := c.valueAt(addr, seq); value != want {
		c.fail("node %d read of %d at seq %d observed value %x, want %x",
			node, addr, seq, value, want)
	}
}

// WBCommit checks writeback data landing at memory: it must carry the value
// of the most recent write ordered before the writeback's marker. (A later
// write may already have committed in physical time — e.g. an upgrade that
// completed at its own marker while the writeback data was in flight — so
// the comparison is at the writeback's order position, not at arrival time.)
func (c *Checker) WBCommit(home network.NodeID, addr Addr, seq uint64, value uint64) {
	if want := c.valueAt(addr, seq); value != want {
		c.fail("home %d writeback of %d at seq %d carries value %x, want %x",
			home, addr, seq, value, want)
	}
}

// checkSWMR scans every registered cache's state for the block.
//
// The instantaneous invariant checked here is deliberately weaker than
// logical-time SWMR: with a totally ordered request network, invalidations
// and downgrades are performed at the order point but delivered later, so a
// new Modified copy legally coexists with stale Shared (or even stale Owned)
// copies whose invalidations are still in flight — e.g. an S->M upgrade that
// commits at its own marker before the old owner has snooped it. Value
// correctness over the total order is checked by Read/WriteCommit instead.
// What can never coexist, even in physical time, is two Modified copies: a
// store commit requires every earlier conflicting request to have been
// delivered to this cache first (total order), demoting any would-be second
// Modified before it completes.
func (c *Checker) checkSWMR(addr Addr) {
	modified := 0
	for _, cc := range c.caches {
		if cc.StateOf(addr) == Modified {
			modified++
		}
	}
	if modified > 1 {
		c.fail("block %d has %d Modified copies", addr, modified)
	}
}

// FinalValue returns the last committed token for a block (quiesce checks).
func (c *Checker) FinalValue(addr Addr) uint64 {
	h := c.hist[addr]
	if len(h) == 0 {
		return 0
	}
	return h[len(h)-1].value
}
