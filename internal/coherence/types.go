// Package coherence implements the three MOSI cache coherence protocols of
// the paper: the UE10000-style broadcast Snooping protocol (Section 3.1),
// the GS320-style Directory protocol (Section 3.2), and BASH, the Bandwidth
// Adaptive Snooping Hybrid (Section 3.3).
//
// All three protocols are write-invalidate, use the MOSI states, allow
// silent S->I downgrades, and support GetS, GetM and PutM (writeback of an M
// or O copy) transactions. Processors are blocking: at most one outstanding
// demand miss plus one outstanding victim writeback, matching the paper's
// processor model.
//
// # Ordering discipline
//
// The totally ordered request network assigns every request instance a
// global sequence number; every controller observes same-block instances in
// that order. Responses (data/acks) are tagged with the sequence number of
// the instance that satisfied the transaction (its "effective instance"),
// which lets a requestor classify deferred foreign requests as ordered
// before or after its own transaction. Section 5 of DESIGN.md develops the
// full argument.
package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/network"
)

// Addr aliases the cache block address type.
type Addr = cache.Addr

// MemoryOwner is the sentinel "memory is the owner" node value in directory
// state and packets.
const MemoryOwner network.NodeID = -1

// Kind enumerates protocol message kinds across all three protocols.
type Kind uint8

// Message kinds. GetS/GetM/PutM travel on the ordered request network in
// Snooping and BASH and on the unordered network in Directory. Fwd*/Inval/
// Marker/WBMarker/WBStale are Directory messages on the ordered forwarded-
// request network. Data/DataWB/Ack/Nack travel on the unordered response
// network.
const (
	GetS Kind = iota
	GetM
	PutM
	FwdGetS
	FwdGetM
	Inval
	Marker
	WBMarker
	WBStale
	Data
	DataWB
	Ack
	Nack
	numKinds
)

var kindNames = [numKinds]string{
	"GetS", "GetM", "PutM", "FwdGetS", "FwdGetM", "Inval", "Marker",
	"WBMarker", "WBStale", "Data", "DataWB", "Ack", "Nack",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message sizes from the paper (Section 4.2): all request, forwarded
// request, retried request and control messages are 8 bytes; data responses
// are 72 bytes (64-byte block plus 8-byte header).
const (
	ControlBytes = 8
	DataBytes    = 72
)

// Size returns the wire size in bytes of a message of this kind.
func (k Kind) Size() int {
	if k == Data || k == DataWB {
		return DataBytes
	}
	return ControlBytes
}

// Packet is the protocol-level payload carried by network messages.
type Packet struct {
	Kind       Kind
	Addr       Addr
	Requestor  network.NodeID // transaction requestor
	Sender     network.NodeID // immediate sender
	TxnID      uint64         // unique transaction id (requestor-scoped)
	HasData    bool           // GetM: requestor already holds a valid copy
	Retry      uint8          // BASH: retry generation (0 = original)
	EffSeq     uint64         // responses: ordered seq of the effective instance
	Value      uint64         // data token for verification
	Owner      network.NodeID // Directory forwards: the node that must respond
	NeedsData  bool           // Directory forwards: owner must send data
	FromMemory bool           // Data: supplied by memory rather than a cache
	// Targets is the multicast mask of a BASH request instance. The memory
	// controller (and the owning cache, per the paper's footnote 2) compares
	// the directory state against the set of nodes that received the request
	// to decide sufficiency.
	Targets network.Mask

	// refs is the Recycler reference count: the number of pending
	// deliveries plus retained uses. Managed by the Env send helpers and
	// Recycler.Retain/Release; zero means the packet is reclaimable.
	refs int32
}

func (p *Packet) String() string {
	return fmt.Sprintf("%s[a=%d req=%d txn=%d]", p.Kind, p.Addr, p.Requestor, p.TxnID)
}

// State enumerates cache controller states: the four MOSI stable states plus
// the transient states of the three protocols. Names follow the primer
// convention: XY_Z means "moving from X to Y, waiting for Z", where A is the
// own request appearing on the ordered network (the marker) and D is data.
type State uint8

// Cache controller states. The BASH-specific *P states ("pending") cover
// both the marker and data/ack waits because a BASH requestor cannot
// locally distinguish a sufficient instance from one the memory controller
// will retry; completion is signalled by a tagged Data or Ack.
const (
	Invalid  State = iota // I
	Shared                // S
	Owned                 // O
	Modified              // M

	IS_A // GetS issued, waiting for own marker (Snooping/Directory)
	IS_D // marker seen, waiting for data
	IM_A // GetM issued from I, waiting for own marker
	IM_D // marker seen, waiting for data
	SM_A // GetM issued from S (upgrade), waiting for own marker
	SM_D // upgrade downgraded mid-flight or directory decided data needed
	OM_A // GetM issued from O (owner upgrade), waiting for own marker/ack
	MI_A // PutM issued from M, waiting for own marker
	OI_A // PutM issued from O, waiting for own marker
	II_A // PutM issued, ownership lost mid-flight; waiting to retire marker

	IS_P // BASH: GetS pending (uniform defer mode)
	IM_P // BASH: GetM pending, needs data
	SM_P // BASH: GetM pending from S
	OM_P // BASH: owner upgrade pending (owner duties continue)

	numStates
)

var stateNames = [numStates]string{
	"I", "S", "O", "M",
	"IS_A", "IS_D", "IM_A", "IM_D", "SM_A", "SM_D", "OM_A", "MI_A", "OI_A", "II_A",
	"IS_P", "IM_P", "SM_P", "OM_P",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Index returns the dense transition-table index of the state.
func (s State) Index() int { return int(s) }

// IsStable reports whether s is one of the four MOSI stable states.
func (s State) IsStable() bool { return s <= Modified }

// IsOwnerState reports whether a cache in this state holds the current data
// and must respond to foreign requests (M, O and the owner-side transients).
func (s State) IsOwnerState() bool {
	switch s {
	case Modified, Owned, OM_A, OM_P, MI_A, OI_A:
		return true
	}
	return false
}

// HasValidData reports whether the cache holds a readable copy in s.
func (s State) HasValidData() bool {
	switch s {
	case Shared, Owned, Modified, SM_A, SM_P, OM_A, OM_P, MI_A, OI_A:
		return true
	}
	return false
}

// Event enumerates cache and memory controller events for the transition
// tables (and for the Table 1 complexity counts).
type Event uint8

// Cache controller events.
const (
	EvLoad Event = iota
	EvStore
	EvReplace   // demand insertion chose this block as victim
	EvOwnReq    // own GetS/GetM instance observed on the ordered network
	EvOwnPutM   // own PutM instance observed (writeback marker)
	EvOtherGetS // foreign GetS instance (Snooping/BASH) or replayed
	EvOtherGetM // foreign GetM instance
	EvFwdGetS   // Directory: forwarded GetS addressed to this owner
	EvFwdGetM   // Directory: forwarded GetM addressed to this owner
	EvInval     // Directory: invalidation for a shared copy
	EvMarker    // Directory: marker for this requestor
	EvWBMarker  // Directory: writeback accepted
	EvWBStale   // Directory: writeback rejected (ownership already lost)
	EvData      // data response
	EvAck       // ack response (no data transfer needed)
	EvNack      // BASH: memory retry buffer full; reissue as broadcast

	// Memory controller events.
	EvMemGetS
	EvMemGetM
	EvMemPutMOwner    // PutM from the current owner (accept)
	EvMemPutMStale    // PutM from a non-owner (ignore)
	EvMemDataWB       // writeback data arrival
	EvMemInsufficient // BASH: instance whose mask misses the owner or sharers

	numEvents
)

var eventNames = [numEvents]string{
	"Load", "Store", "Replace", "OwnReq", "OwnPutM", "OtherGetS", "OtherGetM",
	"FwdGetS", "FwdGetM", "Inval", "Marker", "WBMarker", "WBStale", "Data",
	"Ack", "Nack",
	"MemGetS", "MemGetM", "MemPutMOwner", "MemPutMStale", "MemDataWB",
	"MemInsufficient",
}

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// Index returns the dense transition-table index of the event.
func (e Event) Index() int { return int(e) }

// MemState enumerates per-block memory/directory controller states.
type MemState uint8

// Memory controller states. MemWB is the transient "writeback accepted,
// waiting for data" state during which same-block requests are queued.
const (
	MemOwner   MemState = iota // memory is the owner
	CacheOwner                 // some cache is the owner
	MemWB                      // writeback accepted, data in flight

	numMemStates
)

var memStateNames = [numMemStates]string{"MemOwner", "CacheOwner", "MemWB"}

func (s MemState) String() string {
	if int(s) < len(memStateNames) {
		return memStateNames[s]
	}
	return fmt.Sprintf("MemState(%d)", uint8(s))
}

// Index returns the dense transition-table index of the memory state,
// offset past the cache-state range so a merged table never aliases the two
// (cache and memory controllers keep separate tables, but the offset makes
// the index space globally unambiguous).
func (s MemState) Index() int { return int(numStates) + int(s) }
