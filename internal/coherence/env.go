package coherence

import (
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Env is the per-node environment handed to cache and memory controllers:
// the kernel, the interconnect, the node's identity, and shared hooks.
type Env struct {
	Kernel *sim.Kernel
	Net    *network.Network
	Self   network.NodeID
	// HomeOf maps a block to its home memory node (address interleaving).
	HomeOf func(Addr) network.NodeID
	// Checker, when non-nil, validates SWMR and value invariants.
	Checker *Checker
	// Progress, when non-nil, feeds the forward-progress watchdog.
	Progress func()
	// Recycler recycles protocol packets and the controllers' per-block
	// records; shared by every controller of a system, with the delivery
	// plumbing releasing the per-delivery packet reference (see Recycler).
	// Controller constructors default a nil recycler so directly built
	// controllers work, but then each controller recycles privately —
	// core.System wires one shared instance.
	Recycler *Recycler
}

func (e *Env) progress() {
	if e.Progress != nil {
		e.Progress()
	}
}

// newPacket draws a zeroed packet from the pool.
func (e *Env) newPacket() *Packet { return e.Recycler.Get() }

// sendOrdered transmits pkt on the totally ordered network, setting its
// reference count to the delivery fan-out.
func (e *Env) sendOrdered(targets network.Mask, size int, pkt *Packet) {
	pkt.refs = int32(targets.Count())
	e.Net.SendOrdered(e.Self, targets, size, pkt)
}

// sendOrderedAfter is sendOrdered behind a fixed service delay (DRAM or
// cache access time), without a per-call closure.
func (e *Env) sendOrderedAfter(delay sim.Time, targets network.Mask, size int, pkt *Packet) {
	pkt.refs = int32(targets.Count())
	e.Net.SendOrderedDelayed(delay, e.Self, targets, size, pkt)
}

// sendUnordered transmits pkt point-to-point (one delivery reference).
func (e *Env) sendUnordered(to network.NodeID, size int, pkt *Packet) {
	pkt.refs = 1
	e.Net.SendUnordered(e.Self, to, size, pkt)
}

// sendUnorderedAfter is sendUnordered behind a fixed service delay.
func (e *Env) sendUnorderedAfter(delay sim.Time, to network.NodeID, size int, pkt *Packet) {
	pkt.refs = 1
	e.Net.SendUnorderedDelayed(delay, e.Self, to, size, pkt)
}

// Op is one processor memory operation presented to the cache controller.
type Op struct {
	Store bool
	Addr  Addr
	// HintUnicast marks requests the software/hardware knows need no
	// broadcast — the paper's Section 7 example is instruction-fetch
	// misses. BASH bypasses the probabilistic decision for hinted ops.
	HintUnicast bool
}

// CacheController is the processor-facing and network-facing interface of a
// protocol's cache controller.
type CacheController interface {
	// Access performs one blocking memory operation; done runs at completion.
	Access(op Op, done func())
	// OnOrdered observes one totally-ordered network delivery.
	OnOrdered(m *network.Message)
	// OnUnordered receives a point-to-point message addressed to the cache.
	OnUnordered(p *Packet)
	// Stats exposes the controller's counters.
	Stats() *CacheStats
	// StateOf reports the coherence state the cache holds for a block.
	StateOf(a Addr) State
	// ValueOf reports the data token the cache holds for a block.
	ValueOf(a Addr) uint64
	// Table exposes the transition table (Table 1 accounting).
	Table() *Table
	// Preheat installs a stable state without protocol traffic (warm start).
	Preheat(a Addr, st State, value uint64)
	// LatencyHistogram exposes the demand-miss latency distribution.
	LatencyHistogram() *stats.Histogram
	// Reset returns the controller to its freshly constructed state for a
	// new run, retaining grown allocations (pooled-lifecycle support).
	Reset()
}

// MemController is the memory/directory side of a node.
type MemController interface {
	OnOrdered(m *network.Message)
	OnUnordered(p *Packet)
	Table() *Table
	// Reset clears per-run home-side state (pooled-lifecycle support).
	Reset()
	// Preheat installs home-side state (owner, value) without traffic.
	Preheat(a Addr, owner network.NodeID, value uint64)
	// HomeValue reports the memory copy of a block and whether memory is
	// the current owner (quiesce-time agreement checks).
	HomeValue(a Addr) (value uint64, memOwner bool)
}

// CacheStats counts cache controller activity.
type CacheStats struct {
	Loads, Stores     uint64
	Hits, Misses      uint64
	SharingMisses     uint64 // satisfied by another cache (cache-to-cache)
	MemoryMisses      uint64 // satisfied by memory
	Upgrades          uint64 // completed without a data transfer
	Writebacks        uint64
	BroadcastRequests uint64
	UnicastRequests   uint64 // includes BASH dualcasts and predicted multicasts
	Reissues          uint64 // nack-driven broadcast reissues
	StaleDataDropped  uint64
	Predicted         uint64 // requests whose mask the owner predictor extended
	PredictedHits     uint64 // predicted requests satisfied by their first instance
	MissLatencySum    sim.Time
	MissLatencyCount  uint64
}

// AvgMissLatency returns the mean demand miss latency in nanoseconds.
func (s *CacheStats) AvgMissLatency() float64 {
	if s.MissLatencyCount == 0 {
		return 0
	}
	return float64(s.MissLatencySum) / float64(s.MissLatencyCount)
}
