package coherence

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/network"
	"repro/internal/sim"
)

// DirCache is the cache controller of the GS320-style directory protocol of
// Section 3.2: requests are unicast (unordered) to the home directory, which
// either responds directly (data on the unordered network plus a marker on
// the totally ordered multicast network) or forwards the request on the
// ordered network to the owner, sharers and requestor. The total order of
// the forwarded-request network eliminates explicit invalidation acks.
type DirCache struct {
	ctrlCore
}

// NewDirCache builds a directory-protocol cache controller.
func NewDirCache(env Env, arrayCfg cache.Config) *DirCache {
	d := &DirCache{}
	d.init(env, d, dirCacheTable(), arrayCfg)
	d.pending = pendingStates{
		fetchLoad:    IS_A,
		fetchStore:   IM_A,
		upgradeFromS: SM_A,
		upgradeFromO: OM_A,
	}
	return d
}

func dirCacheTable() *Table {
	t := NewTable("directory-cache")
	type se struct {
		s State
		e Event
	}
	for _, d := range []se{
		// Processor events.
		{Invalid, EvLoad}, {Invalid, EvStore},
		{Shared, EvLoad}, {Shared, EvStore}, {Shared, EvReplace},
		{Owned, EvLoad}, {Owned, EvStore}, {Owned, EvReplace},
		{Modified, EvLoad}, {Modified, EvStore}, {Modified, EvReplace},
		// Markers from the directory (direct response, forward copy, inval
		// copy).
		{IS_A, EvMarker}, {IM_A, EvMarker}, {SM_A, EvMarker}, {OM_A, EvMarker},
		// Forwards addressed to this cache as owner.
		{Modified, EvFwdGetS}, {Modified, EvFwdGetM},
		{Owned, EvFwdGetS}, {Owned, EvFwdGetM},
		{OM_A, EvFwdGetS}, {OM_A, EvFwdGetM},
		{MI_A, EvFwdGetS}, {MI_A, EvFwdGetM},
		{OI_A, EvFwdGetS}, {OI_A, EvFwdGetM},
		{IM_D, EvFwdGetS}, {IM_D, EvFwdGetM}, // deferred at the owner-designate
		{SM_D, EvFwdGetS}, {SM_D, EvFwdGetM}, // deferred at the owner-designate
		// Invalidations addressed to this cache as a (superset) sharer.
		{Shared, EvInval}, {SM_A, EvInval},
		{IS_A, EvInval}, {IM_A, EvInval},
		{IS_D, EvInval}, // deferred; a GetM requestor cannot be a sharer target
		// Writeback resolution. (No II_A forward rows: the directory set a
		// new owner when it emitted the forward that created II_A.)
		{MI_A, EvWBMarker}, {OI_A, EvWBMarker}, {II_A, EvWBStale},
		// Data responses.
		{IS_A, EvData}, {IM_A, EvData}, {SM_A, EvData},
		{IS_D, EvData}, {IM_D, EvData}, {SM_D, EvData},
	} {
		t.Declare(d.s, d.e)
	}
	return t
}

// Access dispatches processor operations.
func (d *DirCache) Access(op Op, done func()) {
	if l := d.lines[op.Addr]; l == nil || l.txn == nil {
		ev := EvLoad
		if op.Store {
			ev = EvStore
		}
		d.tbl.Fire(d.StateOf(op.Addr), ev)
	}
	d.ctrlCore.Access(op, done)
}

func (d *DirCache) issueDemand(l *line, t *txn) {
	d.stats.UnicastRequests++
	d.sendRequest(l, t)
}

func (d *DirCache) issueWB(l *line, t *txn) {
	d.tbl.Fire(mustWBOrigin(l.state), EvReplace)
	d.sendRequest(l, t)
}

func (d *DirCache) sendRequest(l *line, t *txn) {
	pkt := d.env.newPacket()
	pkt.Kind = t.kind
	pkt.Addr = l.addr
	pkt.Requestor = d.env.Self
	pkt.Sender = d.env.Self
	pkt.TxnID = t.id
	pkt.HasData = t.hasData
	d.env.sendUnordered(d.env.HomeOf(l.addr), t.kind.Size(), pkt)
}

// OnOrdered receives forwarded requests, invalidations, and markers.
func (d *DirCache) OnOrdered(m *network.Message) {
	pkt := m.Payload.(*Packet)
	switch pkt.Kind {
	case WBMarker, WBStale:
		if pkt.Requestor == d.env.Self {
			d.wbResolution(m.Seq, pkt)
		}
		return
	}
	if pkt.Owner == d.env.Self && pkt.Requestor != d.env.Self {
		l := d.lines[pkt.Addr]
		if l == nil {
			panic(fmt.Sprintf("directory: forward to owner with no line: self=%d pkt=%v owner=%d seq=%d", d.env.Self, pkt, pkt.Owner, m.Seq))
		}
		d.foreign(l, m.Seq, pkt)
		return
	}
	if pkt.Requestor == d.env.Self {
		d.marker(m.Seq, pkt)
		return
	}
	// Invalidation (or forward multicast copy) addressed to a sharer.
	l := d.lines[pkt.Addr]
	if l == nil {
		return // stale superset membership, no copy
	}
	d.shInval(l, m.Seq, pkt)
}

// marker processes the ordered message that fixes this requestor's place in
// the total order.
func (d *DirCache) marker(seq uint64, pkt *Packet) {
	l := d.lines[pkt.Addr]
	if l == nil || l.txn == nil || l.txn.id != pkt.TxnID {
		panic("directory: marker without matching transaction")
	}
	t := l.txn
	t.markerSeq = seq
	t.needData = pkt.NeedsData
	d.tbl.Fire(l.state, EvMarker)
	switch l.state {
	case IS_A:
		if t.dataSeen {
			d.recordMissSource(t)
			d.completeDemand(l, Shared, seq, t.dataValue)
		} else {
			l.state = IS_D
		}
	case IM_A:
		if t.dataSeen {
			d.recordMissSource(t)
			d.completeDemand(l, Modified, seq, t.dataValue)
		} else {
			l.state = IM_D
		}
	case SM_A:
		if !pkt.NeedsData {
			// Upgrade granted: the directory saw us still in the sharer set,
			// so no conflicting write intervened and our copy is current.
			d.stats.Upgrades++
			d.completeDemand(l, Modified, seq, l.value)
		} else if t.dataSeen {
			d.recordMissSource(t)
			d.completeDemand(l, Modified, seq, t.dataValue)
		} else {
			l.state = SM_D
		}
	case OM_A:
		if pkt.NeedsData {
			panic("directory: owner upgrade marked as needing data")
		}
		d.stats.Upgrades++
		d.completeDemand(l, Modified, seq, l.value)
	default:
		panic(fmt.Sprintf("directory: marker in %s", l.state))
	}
}

// foreign handles forwards addressed to this cache as owner; it is also the
// replay entry after completion, so it re-classifies the message the same
// way OnOrdered does (a FwdGetM multicast reaches the sharers too, as their
// invalidation).
func (d *DirCache) foreign(l *line, seq uint64, pkt *Packet) {
	if pkt.Kind == Inval || pkt.Owner != d.env.Self {
		d.shInval(l, seq, pkt)
		return
	}
	ev := EvFwdGetS
	if pkt.Kind == FwdGetM {
		ev = EvFwdGetM
	}
	d.tbl.Fire(l.state, ev)
	switch l.state {
	case Modified:
		d.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvFwdGetM {
			l.state = Invalid
			d.array.Remove(l.addr)
			d.release(l)
		} else {
			l.state = Owned
		}
	case Owned:
		d.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvFwdGetM {
			l.state = Invalid
			d.array.Remove(l.addr)
			d.release(l)
		}
	case OM_A:
		d.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvFwdGetM {
			l.state = IM_A
		}
	case MI_A:
		d.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvFwdGetM {
			l.state = II_A
		} else {
			l.state = OI_A
		}
	case OI_A:
		d.respondData(pkt.Requestor, l.addr, l.value, seq, pkt.TxnID)
		if ev == EvFwdGetM {
			l.state = II_A
		}
	case IM_D, SM_D:
		d.defer_(l, seq, pkt)
	default:
		// II_A and IS_D are impossible here: the directory set a new owner
		// when it emitted the forward that created II_A, and a GetS never
		// makes its requestor the owner.
		panic(fmt.Sprintf("directory: forward %s in %s", pkt.Kind, l.state))
	}
}

// shInval handles an invalidation addressed to a (superset) sharer.
func (d *DirCache) shInval(l *line, seq uint64, pkt *Packet) {
	if l.state == Invalid {
		return
	}
	d.tbl.Fire(l.state, EvInval)
	switch l.state {
	case Shared:
		l.state = Invalid
		d.array.Remove(l.addr)
		d.release(l)
	case SM_A:
		// Our S copy dies before our own upgrade is ordered; the directory
		// will see us out of the sharer set and arrange a data transfer.
		l.state = IM_A
	case IS_A, IM_A:
		// Stale superset membership; no copy to invalidate.
	case IS_D:
		d.defer_(l, seq, pkt)
	default:
		// IM_D/SM_D invals are impossible: the directory cleared the sharer
		// set when it made this cache the owner-designate.
		panic(fmt.Sprintf("directory: inval in %s", l.state))
	}
}

func (d *DirCache) wbResolution(seq uint64, pkt *Packet) {
	l := d.lines[pkt.Addr]
	if l == nil || l.txn == nil || !l.txn.isWB {
		panic("directory: writeback resolution without WB transaction")
	}
	if pkt.Kind == WBMarker {
		d.tbl.Fire(l.state, EvWBMarker)
		switch l.state {
		case MI_A, OI_A:
			d.respondWBData(l, seq)
			d.completeWB(l)
		default:
			panic(fmt.Sprintf("directory: WBMarker in %s", l.state))
		}
		return
	}
	d.tbl.Fire(l.state, EvWBStale)
	if l.state != II_A {
		panic(fmt.Sprintf("directory: WBStale in %s", l.state))
	}
	d.completeWB(l)
}

// OnUnordered receives data responses.
func (d *DirCache) OnUnordered(pkt *Packet) {
	if pkt.Kind != Data {
		panic(fmt.Sprintf("directory cache: unexpected %s", pkt.Kind))
	}
	l := d.lines[pkt.Addr]
	if l == nil || l.txn == nil || l.txn.id != pkt.TxnID {
		d.stats.StaleDataDropped++
		return
	}
	t := l.txn
	t.fromMem = pkt.FromMemory
	d.tbl.Fire(l.state, EvData)
	switch l.state {
	case IS_A, IM_A, SM_A:
		t.dataSeen = true
		t.dataValue = pkt.Value
	case IS_D:
		d.recordMissSource(t)
		d.completeDemand(l, Shared, t.markerSeq, pkt.Value)
	case IM_D, SM_D:
		d.recordMissSource(t)
		d.completeDemand(l, Modified, t.markerSeq, pkt.Value)
	default:
		panic(fmt.Sprintf("directory: data in %s", l.state))
	}
}

func (d *DirCache) recordMissSource(t *txn) {
	if t.fromMem {
		d.stats.MemoryMisses++
	} else {
		d.stats.SharingMisses++
	}
}

// debugAddr, when non-nil, traces directory applies for one block (tests).
var debugAddr *Addr

// SetDebugAddr enables directory apply tracing for a block (tests only).
func SetDebugAddr(a Addr) { debugAddr = &a }

// DirMem is the directory controller: it serializes racing requests, keeps
// the owner and a sharer superset per block, responds directly when it has
// sufficient permissions, and forwards on the totally ordered multicast
// network otherwise.
type DirMem struct {
	env Env
	tbl *Table
	dir *dirState
}

// dirApplyTask defers one request's directory apply behind the DRAM access
// latency (sim.Task implementation, free-listed on the shared Recycler so
// every home's pending applies draw from one warmed pool).
type dirApplyTask struct {
	m   *DirMem
	pkt *Packet
}

// Run applies the carried request and releases its retained reference. The
// task recycles itself first, so applies that schedule further work can
// reuse it immediately.
func (t *dirApplyTask) Run() {
	m, pkt := t.m, t.pkt
	m.env.Recycler.putApplyTask(t)
	m.apply(pkt)
	m.env.Recycler.Release(pkt)
}

// NewDirMem builds a directory controller for one node's memory slice.
func NewDirMem(env Env) *DirMem {
	t := NewTable("directory-memory")
	type se struct {
		s MemState
		e Event
	}
	for _, d := range []se{
		{MemOwner, EvMemGetS}, {CacheOwner, EvMemGetS},
		{MemOwner, EvMemGetM}, {CacheOwner, EvMemGetM},
		{CacheOwner, EvMemPutMOwner},
		{MemOwner, EvMemPutMStale}, {CacheOwner, EvMemPutMStale},
		{MemWB, EvMemGetS}, {MemWB, EvMemGetM}, {MemWB, EvMemPutMStale},
		{MemWB, EvMemDataWB},
	} {
		t.Declare(d.s, d.e)
	}
	if env.Recycler == nil {
		env.Recycler = NewRecycler()
	}
	return &DirMem{env: env, tbl: t, dir: newDirState(env.Recycler)}
}

// Table returns the transition table.
func (m *DirMem) Table() *Table { return m.tbl }

// Reset clears the directory's block table and coverage for a new run,
// draining live directory entries into the free list.
func (m *DirMem) Reset() {
	m.dir.reset()
	m.tbl.ResetCoverage()
}

// Preheat installs home state for warm-started workloads.
func (m *DirMem) Preheat(addr Addr, owner network.NodeID, value uint64) {
	e := m.dir.entry(addr)
	if owner == MemoryOwner {
		e.state = MemOwner
		e.owner = MemoryOwner
	} else {
		e.setCacheOwner(owner)
	}
	e.value = value
}

// OnOrdered: the directory emits onto the ordered network but receives
// nothing from it (its own node's cache handles those deliveries).
func (m *DirMem) OnOrdered(msg *network.Message) {}

// OnUnordered receives requests and writeback data.
func (m *DirMem) OnUnordered(pkt *Packet) {
	if pkt.Kind == DataWB {
		m.dataWB(pkt)
		return
	}
	// Directory access: 80 ns DRAM directory lookup before acting. Applies
	// are scheduled with a fixed delay, so they retire in arrival order.
	// The packet outlives its delivery; retain it for the apply.
	m.env.Recycler.Retain(pkt)
	m.env.Kernel.ScheduleTask(sim.DRAMAccess, m.env.Recycler.getApplyTask(m, pkt))
}

func (m *DirMem) apply(pkt *Packet) {
	e := m.dir.entry(pkt.Addr)
	if debugAddr != nil && *debugAddr == pkt.Addr {
		fmt.Printf("t=%d dir@%d apply %s req=%d txn=%d state=%s owner=%d sharers=%s\n",
			m.env.Kernel.Now(), m.env.Self, pkt.Kind, pkt.Requestor, pkt.TxnID, e.state, e.owner, e.sharers)
	}
	if e.state == MemWB {
		ev := EvMemGetS
		switch pkt.Kind {
		case GetM:
			ev = EvMemGetM
		case PutM:
			ev = EvMemPutMStale
		}
		m.tbl.Fire(e.state, ev)
		m.env.Recycler.Retain(pkt)
		e.waiting = append(e.waiting, memWait{pkt: pkt})
		return
	}
	req := pkt.Requestor
	switch pkt.Kind {
	case GetS:
		m.tbl.Fire(e.state, EvMemGetS)
		if e.state == MemOwner {
			m.sendData(req, pkt, e.value)
			m.emit(Marker, pkt, MemoryOwner, true, network.MaskOf(req))
		} else {
			m.emit(FwdGetS, pkt, e.owner, true, network.MaskOf(e.owner, req))
		}
		e.addSharer(req)
	case GetM:
		m.tbl.Fire(e.state, EvMemGetM)
		switch {
		case e.state == MemOwner:
			needData := !(pkt.HasData && e.sharers.Has(req))
			targets := e.sharers
			targets.Set(req)
			m.emit(Inval, pkt, MemoryOwner, needData, targets)
			if needData {
				m.sendData(req, pkt, e.value)
			}
			e.setCacheOwner(req)
		case e.owner == req:
			// O -> M upgrade by the owner: invalidate the sharers; the
			// requestor's copy of the multicast is its marker.
			targets := e.sharers
			targets.Set(req)
			m.emit(Inval, pkt, MemoryOwner, false, targets)
			e.setCacheOwner(req)
		default:
			targets := e.sharers
			targets.Set(req)
			targets.Set(e.owner)
			m.emit(FwdGetM, pkt, e.owner, true, targets)
			e.setCacheOwner(req)
		}
	case PutM:
		if e.state == CacheOwner && e.owner == pkt.Requestor {
			m.tbl.Fire(e.state, EvMemPutMOwner)
			e.acceptWB(pkt.Requestor)
			m.emit(WBMarker, pkt, 0, false, network.MaskOf(pkt.Requestor))
		} else {
			m.tbl.Fire(e.state, EvMemPutMStale)
			m.emit(WBStale, pkt, 0, false, network.MaskOf(pkt.Requestor))
		}
	default:
		panic(fmt.Sprintf("directory: unexpected request %s", pkt.Kind))
	}
}

// emit sends one ordered directory message derived from the request req:
// the marker/forward/invalidation multicasts and the writeback resolutions.
func (m *DirMem) emit(kind Kind, req *Packet, owner network.NodeID, needsData bool, targets network.Mask) {
	pkt := m.env.newPacket()
	pkt.Kind = kind
	pkt.Addr = req.Addr
	pkt.Requestor = req.Requestor
	pkt.Sender = m.env.Self
	pkt.TxnID = req.TxnID
	pkt.Owner = owner
	pkt.NeedsData = needsData
	m.env.sendOrdered(targets, kind.Size(), pkt)
}

func (m *DirMem) sendData(to network.NodeID, req *Packet, value uint64) {
	resp := m.env.newPacket()
	resp.Kind = Data
	resp.Addr = req.Addr
	resp.Requestor = to
	resp.Sender = m.env.Self
	resp.TxnID = req.TxnID
	resp.Value = value
	resp.FromMemory = true
	m.env.sendUnordered(to, Data.Size(), resp)
}

func (m *DirMem) dataWB(pkt *Packet) {
	e := m.dir.entry(pkt.Addr)
	if e.state != MemWB || e.wbFrom != pkt.Sender {
		panic("directory: unexpected writeback data")
	}
	m.tbl.Fire(e.state, EvMemDataWB)
	if m.env.Checker != nil {
		m.env.Checker.WBCommit(m.env.Self, pkt.Addr, pkt.EffSeq, pkt.Value)
	}
	e.completeWB(pkt.Value)
	m.env.progress()
	// Replay deferred same-block requests in arrival order (see the
	// snooping controller for the in-place truncation argument).
	waiting := e.waiting
	e.waiting = e.waiting[:0]
	for i := range waiting {
		w := waiting[i]
		waiting[i] = memWait{}
		m.apply(w.pkt)
		m.env.Recycler.Release(w.pkt)
	}
}

// HomeValue reports memory's copy and ownership for a block.
func (m *DirMem) HomeValue(addr Addr) (uint64, bool) { return m.dir.homeValue(addr) }
