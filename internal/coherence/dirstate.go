package coherence

import "repro/internal/network"

// memWait is one unit of same-block work parked while a writeback is in
// flight (state == MemWB): the ordered sequence (zero for the directory
// protocol's unordered requests) and the retained request packet.
type memWait struct {
	seq uint64
	pkt *Packet
}

// dirEntry is the per-block state a memory controller keeps for blocks it is
// home for. Snooping uses only the owner field ("one bit of state ... to
// indicate if it is the owner", strengthened to an identity so stale
// writebacks are locally detectable — see DESIGN.md Section 2). Directory
// and BASH additionally keep the sharer superset.
type dirEntry struct {
	state   MemState
	owner   network.NodeID // valid when state == CacheOwner
	sharers network.Mask   // superset of S copies, excluding the owner
	value   uint64         // memory's copy of the data token (verification)

	// wbFrom is the cache whose writeback is in flight while state == MemWB.
	wbFrom network.NodeID

	// waiting holds same-block work deferred while state == MemWB.
	waiting []memWait
}

// dirState is the home-side block table. Entries default to "memory owns,
// no sharers" (all memory is initially clean at memory). Entries recycle
// through the system's shared Recycler so a pooled System's warmed
// directory capacity survives reuse.
type dirState struct {
	blocks map[Addr]*dirEntry
	rec    *Recycler
}

func newDirState(rec *Recycler) *dirState {
	return &dirState{blocks: make(map[Addr]*dirEntry), rec: rec}
}

// reset returns every block to clean-at-memory, keeping the map's bucket
// storage and draining the live entries into the recycler (waiting-slice
// capacity retained, parked packets dropped to the GC) so the next run
// materializes its working set without allocating.
func (d *dirState) reset() {
	for _, e := range d.blocks {
		d.rec.putDirEntry(e)
	}
	clear(d.blocks)
}

// entry returns the entry for addr, materializing the default.
func (d *dirState) entry(addr Addr) *dirEntry {
	e := d.blocks[addr]
	if e == nil {
		e = d.rec.getDirEntry()
		d.blocks[addr] = e
	}
	return e
}

// peek returns the entry if present without materializing it.
func (d *dirState) peek(addr Addr) *dirEntry { return d.blocks[addr] }

// ownerOf returns the owner node, or MemoryOwner.
func (e *dirEntry) ownerOf() network.NodeID {
	if e.state == CacheOwner {
		return e.owner
	}
	return MemoryOwner
}

// setCacheOwner installs a new owning cache and resets the sharer set (a GetM
// invalidated every other copy).
func (e *dirEntry) setCacheOwner(n network.NodeID) {
	e.state = CacheOwner
	e.owner = n
	e.sharers = network.Mask{}
}

// addSharer records a new S copy (GetS by n).
func (e *dirEntry) addSharer(n network.NodeID) { e.sharers.Set(n) }

// acceptWB transitions to the writeback-pending state. Sharer state is
// preserved: S copies survive an owner writeback.
func (e *dirEntry) acceptWB(from network.NodeID) {
	e.state = MemWB
	e.owner = MemoryOwner
	e.wbFrom = from
}

// completeWB lands the writeback data.
func (e *dirEntry) completeWB(value uint64) {
	e.state = MemOwner
	e.value = value
}

// homeValue implements the MemController HomeValue query.
func (d *dirState) homeValue(addr Addr) (uint64, bool) {
	e := d.peek(addr)
	if e == nil {
		return 0, true
	}
	return e.value, e.state == MemOwner
}
